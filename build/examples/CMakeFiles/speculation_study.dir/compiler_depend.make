# Empty compiler generated dependencies file for speculation_study.
# This may be replaced when dependencies are built.
