file(REMOVE_RECURSE
  "CMakeFiles/speculation_study.dir/speculation_study.cpp.o"
  "CMakeFiles/speculation_study.dir/speculation_study.cpp.o.d"
  "speculation_study"
  "speculation_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speculation_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
