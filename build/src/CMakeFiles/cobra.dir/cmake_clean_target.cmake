file(REMOVE_RECURSE
  "libcobra.a"
)
