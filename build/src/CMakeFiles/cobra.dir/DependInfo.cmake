
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bpu/bpu.cpp" "src/CMakeFiles/cobra.dir/bpu/bpu.cpp.o" "gcc" "src/CMakeFiles/cobra.dir/bpu/bpu.cpp.o.d"
  "/root/repo/src/bpu/composer.cpp" "src/CMakeFiles/cobra.dir/bpu/composer.cpp.o" "gcc" "src/CMakeFiles/cobra.dir/bpu/composer.cpp.o.d"
  "/root/repo/src/bpu/topology.cpp" "src/CMakeFiles/cobra.dir/bpu/topology.cpp.o" "gcc" "src/CMakeFiles/cobra.dir/bpu/topology.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/cobra.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/cobra.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/cobra.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/cobra.dir/common/table.cpp.o.d"
  "/root/repo/src/components/bim.cpp" "src/CMakeFiles/cobra.dir/components/bim.cpp.o" "gcc" "src/CMakeFiles/cobra.dir/components/bim.cpp.o.d"
  "/root/repo/src/components/btb.cpp" "src/CMakeFiles/cobra.dir/components/btb.cpp.o" "gcc" "src/CMakeFiles/cobra.dir/components/btb.cpp.o.d"
  "/root/repo/src/components/gtag.cpp" "src/CMakeFiles/cobra.dir/components/gtag.cpp.o" "gcc" "src/CMakeFiles/cobra.dir/components/gtag.cpp.o.d"
  "/root/repo/src/components/ittage.cpp" "src/CMakeFiles/cobra.dir/components/ittage.cpp.o" "gcc" "src/CMakeFiles/cobra.dir/components/ittage.cpp.o.d"
  "/root/repo/src/components/loop.cpp" "src/CMakeFiles/cobra.dir/components/loop.cpp.o" "gcc" "src/CMakeFiles/cobra.dir/components/loop.cpp.o.d"
  "/root/repo/src/components/perceptron.cpp" "src/CMakeFiles/cobra.dir/components/perceptron.cpp.o" "gcc" "src/CMakeFiles/cobra.dir/components/perceptron.cpp.o.d"
  "/root/repo/src/components/stat_corrector.cpp" "src/CMakeFiles/cobra.dir/components/stat_corrector.cpp.o" "gcc" "src/CMakeFiles/cobra.dir/components/stat_corrector.cpp.o.d"
  "/root/repo/src/components/tage.cpp" "src/CMakeFiles/cobra.dir/components/tage.cpp.o" "gcc" "src/CMakeFiles/cobra.dir/components/tage.cpp.o.d"
  "/root/repo/src/components/tourney.cpp" "src/CMakeFiles/cobra.dir/components/tourney.cpp.o" "gcc" "src/CMakeFiles/cobra.dir/components/tourney.cpp.o.d"
  "/root/repo/src/components/yags.cpp" "src/CMakeFiles/cobra.dir/components/yags.cpp.o" "gcc" "src/CMakeFiles/cobra.dir/components/yags.cpp.o.d"
  "/root/repo/src/core/backend.cpp" "src/CMakeFiles/cobra.dir/core/backend.cpp.o" "gcc" "src/CMakeFiles/cobra.dir/core/backend.cpp.o.d"
  "/root/repo/src/core/cache.cpp" "src/CMakeFiles/cobra.dir/core/cache.cpp.o" "gcc" "src/CMakeFiles/cobra.dir/core/cache.cpp.o.d"
  "/root/repo/src/core/frontend.cpp" "src/CMakeFiles/cobra.dir/core/frontend.cpp.o" "gcc" "src/CMakeFiles/cobra.dir/core/frontend.cpp.o.d"
  "/root/repo/src/exec/oracle.cpp" "src/CMakeFiles/cobra.dir/exec/oracle.cpp.o" "gcc" "src/CMakeFiles/cobra.dir/exec/oracle.cpp.o.d"
  "/root/repo/src/phys/area_model.cpp" "src/CMakeFiles/cobra.dir/phys/area_model.cpp.o" "gcc" "src/CMakeFiles/cobra.dir/phys/area_model.cpp.o.d"
  "/root/repo/src/program/analysis.cpp" "src/CMakeFiles/cobra.dir/program/analysis.cpp.o" "gcc" "src/CMakeFiles/cobra.dir/program/analysis.cpp.o.d"
  "/root/repo/src/program/builder.cpp" "src/CMakeFiles/cobra.dir/program/builder.cpp.o" "gcc" "src/CMakeFiles/cobra.dir/program/builder.cpp.o.d"
  "/root/repo/src/program/program.cpp" "src/CMakeFiles/cobra.dir/program/program.cpp.o" "gcc" "src/CMakeFiles/cobra.dir/program/program.cpp.o.d"
  "/root/repo/src/program/workload.cpp" "src/CMakeFiles/cobra.dir/program/workload.cpp.o" "gcc" "src/CMakeFiles/cobra.dir/program/workload.cpp.o.d"
  "/root/repo/src/sim/core_area.cpp" "src/CMakeFiles/cobra.dir/sim/core_area.cpp.o" "gcc" "src/CMakeFiles/cobra.dir/sim/core_area.cpp.o.d"
  "/root/repo/src/sim/presets.cpp" "src/CMakeFiles/cobra.dir/sim/presets.cpp.o" "gcc" "src/CMakeFiles/cobra.dir/sim/presets.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/cobra.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/cobra.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/CMakeFiles/cobra.dir/trace/trace.cpp.o" "gcc" "src/CMakeFiles/cobra.dir/trace/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
