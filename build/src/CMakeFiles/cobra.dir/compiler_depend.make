# Empty compiler generated dependencies file for cobra.
# This may be replaced when dependencies are built.
