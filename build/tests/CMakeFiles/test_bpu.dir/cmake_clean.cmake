file(REMOVE_RECURSE
  "CMakeFiles/test_bpu.dir/test_bpu.cpp.o"
  "CMakeFiles/test_bpu.dir/test_bpu.cpp.o.d"
  "test_bpu"
  "test_bpu.pdb"
  "test_bpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
