# Empty dependencies file for test_bpu.
# This may be replaced when dependencies are built.
