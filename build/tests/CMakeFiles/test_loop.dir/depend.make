# Empty dependencies file for test_loop.
# This may be replaced when dependencies are built.
