file(REMOVE_RECURSE
  "CMakeFiles/test_loop.dir/test_loop.cpp.o"
  "CMakeFiles/test_loop.dir/test_loop.cpp.o.d"
  "test_loop"
  "test_loop.pdb"
  "test_loop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
