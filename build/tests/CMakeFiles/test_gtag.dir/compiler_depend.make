# Empty compiler generated dependencies file for test_gtag.
# This may be replaced when dependencies are built.
