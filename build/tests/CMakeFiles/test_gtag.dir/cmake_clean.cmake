file(REMOVE_RECURSE
  "CMakeFiles/test_gtag.dir/test_gtag.cpp.o"
  "CMakeFiles/test_gtag.dir/test_gtag.cpp.o.d"
  "test_gtag"
  "test_gtag.pdb"
  "test_gtag[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gtag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
