# Empty compiler generated dependencies file for test_btb.
# This may be replaced when dependencies are built.
