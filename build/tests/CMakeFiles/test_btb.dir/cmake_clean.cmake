file(REMOVE_RECURSE
  "CMakeFiles/test_btb.dir/test_btb.cpp.o"
  "CMakeFiles/test_btb.dir/test_btb.cpp.o.d"
  "test_btb"
  "test_btb.pdb"
  "test_btb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_btb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
