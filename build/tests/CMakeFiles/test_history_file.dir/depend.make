# Empty dependencies file for test_history_file.
# This may be replaced when dependencies are built.
