file(REMOVE_RECURSE
  "CMakeFiles/test_history_file.dir/test_history_file.cpp.o"
  "CMakeFiles/test_history_file.dir/test_history_file.cpp.o.d"
  "test_history_file"
  "test_history_file.pdb"
  "test_history_file[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_history_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
