# Empty compiler generated dependencies file for test_composer.
# This may be replaced when dependencies are built.
