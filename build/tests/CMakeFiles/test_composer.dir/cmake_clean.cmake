file(REMOVE_RECURSE
  "CMakeFiles/test_composer.dir/test_composer.cpp.o"
  "CMakeFiles/test_composer.dir/test_composer.cpp.o.d"
  "test_composer"
  "test_composer.pdb"
  "test_composer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_composer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
