# Empty dependencies file for test_refbig.
# This may be replaced when dependencies are built.
