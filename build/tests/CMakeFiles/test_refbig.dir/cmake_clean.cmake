file(REMOVE_RECURSE
  "CMakeFiles/test_refbig.dir/test_refbig.cpp.o"
  "CMakeFiles/test_refbig.dir/test_refbig.cpp.o.d"
  "test_refbig"
  "test_refbig.pdb"
  "test_refbig[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_refbig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
