file(REMOVE_RECURSE
  "CMakeFiles/test_ras.dir/test_ras.cpp.o"
  "CMakeFiles/test_ras.dir/test_ras.cpp.o.d"
  "test_ras"
  "test_ras.pdb"
  "test_ras[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
