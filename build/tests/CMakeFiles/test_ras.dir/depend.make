# Empty dependencies file for test_ras.
# This may be replaced when dependencies are built.
