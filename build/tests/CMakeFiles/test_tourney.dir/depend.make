# Empty dependencies file for test_tourney.
# This may be replaced when dependencies are built.
