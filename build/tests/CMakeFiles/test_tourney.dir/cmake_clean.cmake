file(REMOVE_RECURSE
  "CMakeFiles/test_tourney.dir/test_tourney.cpp.o"
  "CMakeFiles/test_tourney.dir/test_tourney.cpp.o.d"
  "test_tourney"
  "test_tourney.pdb"
  "test_tourney[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tourney.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
