# Empty compiler generated dependencies file for test_frontend_backend.
# This may be replaced when dependencies are built.
