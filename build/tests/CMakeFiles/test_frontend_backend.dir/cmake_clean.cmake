file(REMOVE_RECURSE
  "CMakeFiles/test_frontend_backend.dir/test_frontend_backend.cpp.o"
  "CMakeFiles/test_frontend_backend.dir/test_frontend_backend.cpp.o.d"
  "test_frontend_backend"
  "test_frontend_backend.pdb"
  "test_frontend_backend[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frontend_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
