# Empty compiler generated dependencies file for test_perceptron.
# This may be replaced when dependencies are built.
