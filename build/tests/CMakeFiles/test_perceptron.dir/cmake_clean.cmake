file(REMOVE_RECURSE
  "CMakeFiles/test_perceptron.dir/test_perceptron.cpp.o"
  "CMakeFiles/test_perceptron.dir/test_perceptron.cpp.o.d"
  "test_perceptron"
  "test_perceptron.pdb"
  "test_perceptron[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_perceptron.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
