file(REMOVE_RECURSE
  "CMakeFiles/test_area_model.dir/test_area_model.cpp.o"
  "CMakeFiles/test_area_model.dir/test_area_model.cpp.o.d"
  "test_area_model"
  "test_area_model.pdb"
  "test_area_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_area_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
