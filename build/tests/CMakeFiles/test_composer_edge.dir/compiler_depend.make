# Empty compiler generated dependencies file for test_composer_edge.
# This may be replaced when dependencies are built.
