file(REMOVE_RECURSE
  "CMakeFiles/test_composer_edge.dir/test_composer_edge.cpp.o"
  "CMakeFiles/test_composer_edge.dir/test_composer_edge.cpp.o.d"
  "test_composer_edge"
  "test_composer_edge.pdb"
  "test_composer_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_composer_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
