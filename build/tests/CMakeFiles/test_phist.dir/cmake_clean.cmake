file(REMOVE_RECURSE
  "CMakeFiles/test_phist.dir/test_phist.cpp.o"
  "CMakeFiles/test_phist.dir/test_phist.cpp.o.d"
  "test_phist"
  "test_phist.pdb"
  "test_phist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
