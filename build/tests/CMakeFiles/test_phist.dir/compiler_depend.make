# Empty compiler generated dependencies file for test_phist.
# This may be replaced when dependencies are built.
