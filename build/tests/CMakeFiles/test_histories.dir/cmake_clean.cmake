file(REMOVE_RECURSE
  "CMakeFiles/test_histories.dir/test_histories.cpp.o"
  "CMakeFiles/test_histories.dir/test_histories.cpp.o.d"
  "test_histories"
  "test_histories.pdb"
  "test_histories[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_histories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
