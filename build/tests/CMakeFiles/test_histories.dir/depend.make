# Empty dependencies file for test_histories.
# This may be replaced when dependencies are built.
