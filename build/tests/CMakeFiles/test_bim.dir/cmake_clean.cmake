file(REMOVE_RECURSE
  "CMakeFiles/test_bim.dir/test_bim.cpp.o"
  "CMakeFiles/test_bim.dir/test_bim.cpp.o.d"
  "test_bim"
  "test_bim.pdb"
  "test_bim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
