# Empty compiler generated dependencies file for test_bim.
# This may be replaced when dependencies are built.
