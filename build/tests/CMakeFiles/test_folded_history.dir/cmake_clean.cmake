file(REMOVE_RECURSE
  "CMakeFiles/test_folded_history.dir/test_folded_history.cpp.o"
  "CMakeFiles/test_folded_history.dir/test_folded_history.cpp.o.d"
  "test_folded_history"
  "test_folded_history.pdb"
  "test_folded_history[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_folded_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
