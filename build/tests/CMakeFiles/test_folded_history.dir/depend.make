# Empty dependencies file for test_folded_history.
# This may be replaced when dependencies are built.
