file(REMOVE_RECURSE
  "CMakeFiles/test_tage.dir/test_tage.cpp.o"
  "CMakeFiles/test_tage.dir/test_tage.cpp.o.d"
  "test_tage"
  "test_tage.pdb"
  "test_tage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
