# Empty compiler generated dependencies file for test_tage.
# This may be replaced when dependencies are built.
