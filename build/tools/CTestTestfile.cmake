# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_smoke "/root/repo/build/tools/cobra_sim" "--workload" "x264" "--insts" "5000" "--warmup" "1000")
set_tests_properties(cli_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_options "/root/repo/build/tools/cobra_sim" "--design" "b2" "--workload" "coremark" "--sfb" "--ghist" "repair" "--insts" "4000" "--warmup" "1000" "--stats" "--area")
set_tests_properties(cli_options PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_list "/root/repo/build/tools/cobra_sim" "--list")
set_tests_properties(cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
