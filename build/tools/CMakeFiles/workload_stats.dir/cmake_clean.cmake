file(REMOVE_RECURSE
  "CMakeFiles/workload_stats.dir/workload_stats.cpp.o"
  "CMakeFiles/workload_stats.dir/workload_stats.cpp.o.d"
  "workload_stats"
  "workload_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
