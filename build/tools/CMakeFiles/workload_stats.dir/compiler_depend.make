# Empty compiler generated dependencies file for workload_stats.
# This may be replaced when dependencies are built.
