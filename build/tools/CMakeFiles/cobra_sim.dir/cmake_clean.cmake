file(REMOVE_RECURSE
  "CMakeFiles/cobra_sim.dir/cobra_sim.cpp.o"
  "CMakeFiles/cobra_sim.dir/cobra_sim.cpp.o.d"
  "cobra_sim"
  "cobra_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cobra_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
