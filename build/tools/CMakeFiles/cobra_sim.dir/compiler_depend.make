# Empty compiler generated dependencies file for cobra_sim.
# This may be replaced when dependencies are built.
