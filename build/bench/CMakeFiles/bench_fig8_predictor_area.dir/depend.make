# Empty dependencies file for bench_fig8_predictor_area.
# This may be replaced when dependencies are built.
