file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_predictor_area.dir/bench_fig8_predictor_area.cpp.o"
  "CMakeFiles/bench_fig8_predictor_area.dir/bench_fig8_predictor_area.cpp.o.d"
  "bench_fig8_predictor_area"
  "bench_fig8_predictor_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_predictor_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
