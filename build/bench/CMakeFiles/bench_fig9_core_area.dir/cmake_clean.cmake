file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_core_area.dir/bench_fig9_core_area.cpp.o"
  "CMakeFiles/bench_fig9_core_area.dir/bench_fig9_core_area.cpp.o.d"
  "bench_fig9_core_area"
  "bench_fig9_core_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_core_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
