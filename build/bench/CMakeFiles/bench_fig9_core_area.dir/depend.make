# Empty dependencies file for bench_fig9_core_area.
# This may be replaced when dependencies are built.
