# Empty dependencies file for bench_via_tage_latency.
# This may be replaced when dependencies are built.
