file(REMOVE_RECURSE
  "CMakeFiles/bench_via_tage_latency.dir/bench_via_tage_latency.cpp.o"
  "CMakeFiles/bench_via_tage_latency.dir/bench_via_tage_latency.cpp.o.d"
  "bench_via_tage_latency"
  "bench_via_tage_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_via_tage_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
