file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_pipelines.dir/bench_fig7_pipelines.cpp.o"
  "CMakeFiles/bench_fig7_pipelines.dir/bench_fig7_pipelines.cpp.o.d"
  "bench_fig7_pipelines"
  "bench_fig7_pipelines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_pipelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
