# Empty compiler generated dependencies file for bench_fig7_pipelines.
# This may be replaced when dependencies are built.
