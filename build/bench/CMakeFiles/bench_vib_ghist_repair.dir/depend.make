# Empty dependencies file for bench_vib_ghist_repair.
# This may be replaced when dependencies are built.
