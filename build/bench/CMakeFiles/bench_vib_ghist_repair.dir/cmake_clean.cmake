file(REMOVE_RECURSE
  "CMakeFiles/bench_vib_ghist_repair.dir/bench_vib_ghist_repair.cpp.o"
  "CMakeFiles/bench_vib_ghist_repair.dir/bench_vib_ghist_repair.cpp.o.d"
  "bench_vib_ghist_repair"
  "bench_vib_ghist_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vib_ghist_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
