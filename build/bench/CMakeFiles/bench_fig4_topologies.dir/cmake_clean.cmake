file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_topologies.dir/bench_fig4_topologies.cpp.o"
  "CMakeFiles/bench_fig4_topologies.dir/bench_fig4_topologies.cpp.o.d"
  "bench_fig4_topologies"
  "bench_fig4_topologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
