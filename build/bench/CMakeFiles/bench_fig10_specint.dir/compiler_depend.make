# Empty compiler generated dependencies file for bench_fig10_specint.
# This may be replaced when dependencies are built.
