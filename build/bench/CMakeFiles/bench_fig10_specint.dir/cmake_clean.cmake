file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_specint.dir/bench_fig10_specint.cpp.o"
  "CMakeFiles/bench_fig10_specint.dir/bench_fig10_specint.cpp.o.d"
  "bench_fig10_specint"
  "bench_fig10_specint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_specint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
