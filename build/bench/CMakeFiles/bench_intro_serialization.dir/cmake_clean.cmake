file(REMOVE_RECURSE
  "CMakeFiles/bench_intro_serialization.dir/bench_intro_serialization.cpp.o"
  "CMakeFiles/bench_intro_serialization.dir/bench_intro_serialization.cpp.o.d"
  "bench_intro_serialization"
  "bench_intro_serialization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intro_serialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
