# Empty dependencies file for bench_intro_serialization.
# This may be replaced when dependencies are built.
