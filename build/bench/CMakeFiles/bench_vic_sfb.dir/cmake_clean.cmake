file(REMOVE_RECURSE
  "CMakeFiles/bench_vic_sfb.dir/bench_vic_sfb.cpp.o"
  "CMakeFiles/bench_vic_sfb.dir/bench_vic_sfb.cpp.o.d"
  "bench_vic_sfb"
  "bench_vic_sfb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vic_sfb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
