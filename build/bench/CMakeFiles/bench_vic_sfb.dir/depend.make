# Empty dependencies file for bench_vic_sfb.
# This may be replaced when dependencies are built.
