file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_storage.dir/bench_table1_storage.cpp.o"
  "CMakeFiles/bench_table1_storage.dir/bench_table1_storage.cpp.o.d"
  "bench_table1_storage"
  "bench_table1_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
