# Empty dependencies file for bench_table1_storage.
# This may be replaced when dependencies are built.
