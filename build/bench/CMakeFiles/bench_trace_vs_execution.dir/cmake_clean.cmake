file(REMOVE_RECURSE
  "CMakeFiles/bench_trace_vs_execution.dir/bench_trace_vs_execution.cpp.o"
  "CMakeFiles/bench_trace_vs_execution.dir/bench_trace_vs_execution.cpp.o.d"
  "bench_trace_vs_execution"
  "bench_trace_vs_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trace_vs_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
