# Empty dependencies file for bench_trace_vs_execution.
# This may be replaced when dependencies are built.
