#include "sim/sweep.hpp"

#include "common/json.hpp"
#include "guard/errors.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <type_traits>

namespace cobra::sim {

SweepPoint
SweepPoint::preset(Design d, const prog::Program& program)
{
    SweepPoint p;
    p.label = std::string(designName(d)) + "/" + program.name();
    p.topology = [d] { return buildTopology(d); };
    p.program = &program;
    p.cfg = makeConfig(d);
    return p;
}

SweepEngine::SweepEngine(unsigned jobs)
    : jobs_(jobs == 0 ? defaultJobs() : jobs)
{
    // COBRA_LOCKSTEP=1/0: enable/disable replica grouping
    // process-wide (results are bit-identical either way; only wall
    // clock moves). COBRA_LOCKSTEP_SLICE=N: override the rotation
    // slice, for tuning the cache-residency / fairness trade on a
    // given host.
    if (const char* env = std::getenv("COBRA_LOCKSTEP"))
        lockstep_ = env[0] == '1';
    if (const char* env = std::getenv("COBRA_LOCKSTEP_SLICE")) {
        const long n = std::strtol(env, nullptr, 10);
        if (n >= 1)
            lockstepSlice_ = static_cast<Cycle>(n);
    }
}

unsigned
SweepEngine::defaultJobs()
{
    if (const char* env = std::getenv("COBRA_JOBS")) {
        const long n = std::strtol(env, nullptr, 10);
        return n >= 1 ? static_cast<unsigned>(n) : 1u;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1u;
}

std::size_t
SweepEngine::add(SweepPoint p)
{
    if (!p.topology)
        throw std::invalid_argument("SweepPoint without a topology");
    if (p.program == nullptr)
        throw std::invalid_argument("SweepPoint without a program");
    points_.push_back(std::move(p));
    return points_.size() - 1;
}

namespace {

/**
 * Fill a failed outcome's error/errorClass from the exception in
 * flight (call from a catch block). Shared by the solo path and the
 * lockstep driver so degrouped replicas report the exact taxonomy a
 * solo run would.
 */
void
captureCurrentException(SweepOutcome& out)
{
    try {
        throw;
    } catch (const guard::DeadlockError& e) {
        // Keep the watchdog's pipeline post-mortem attached so CLI
        // consumers can still print it.
        out.error = std::string(e.what()) + "\n" + e.postMortem();
        out.errorClass = guard::errorClassOf(e);
    } catch (const std::exception& e) {
        out.error = e.what();
        out.errorClass = guard::errorClassOf(e);
    } catch (...) {
        // A non-std exception from a user-supplied topology factory
        // or execute hook must not tear down the worker pool either.
        out.error = "unknown non-std exception";
        out.errorClass = "internal";
    }
}

} // namespace

void
SweepEngine::finishPoint(std::size_t idx, const SweepPoint& pt,
                         Simulator& s, SweepOutcome& out,
                         const PostRun& postRun) const
{
    out.loop = s.loopVariant();
    out.host.simCycles = s.cycles();
    out.host.simInsts = s.backend().committedInsts();
    if (postRun) {
        std::ostringstream oss;
        postRun(idx, s, out.result, pt, oss);
        out.postRunText = oss.str();
    }
    // CobraScope renders on the worker, while the Simulator is
    // alive; the writers later concatenate in submission order.
    if (!pt.cfg.output.statsJsonPath.empty())
        out.statsJson = renderPointStats(pt.label, s, out.result);
    if (s.tracer() != nullptr) {
        std::ostringstream oss;
        s.tracer()->writeChromeTrace(oss, static_cast<unsigned>(idx),
                                     pt.label);
        out.traceEvents = oss.str();
    }
}

SweepOutcome
SweepEngine::runPoint(std::size_t idx, const SweepPoint& pt,
                      const PostRun& postRun) const
{
    SweepOutcome out;
    out.label = pt.label;
    const auto t0 = std::chrono::steady_clock::now();
    try {
        Simulator s(*pt.program, pt.topology(), pt.cfg);
        out.result = pt.execute ? pt.execute(s) : s.run();
        finishPoint(idx, pt, s, out, postRun);
    } catch (...) {
        captureCurrentException(out);
    }
    const auto t1 = std::chrono::steady_clock::now();
    out.host.wallSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    return out;
}

std::vector<std::vector<std::size_t>>
SweepEngine::buildTasks(const std::vector<SweepPoint>& points) const
{
    std::vector<std::vector<std::size_t>> tasks;
    if (!lockstep_) {
        for (std::size_t i = 0; i < points.size(); ++i)
            tasks.push_back({i});
        return tasks;
    }
    // Group by (Program, oracle seed, shared replay trace) in
    // first-seen submission order,
    // so task layout — and therefore scheduling — is deterministic.
    // Points with a custom execute hook drive their Simulator
    // themselves (warp interval runs restore checkpoints) and cannot
    // be sliced with advanceTo(), so they stay solo.
    for (std::size_t i = 0; i < points.size(); ++i) {
        bool joined = false;
        if (!points[i].execute) {
            for (auto& t : tasks) {
                const SweepPoint& head = points[t.front()];
                if (!head.execute &&
                    head.program == points[i].program &&
                    head.cfg.oracleSeed == points[i].cfg.oracleSeed &&
                    head.cfg.replayTrace == points[i].cfg.replayTrace) {
                    t.push_back(i);
                    joined = true;
                    break;
                }
            }
        }
        if (!joined)
            tasks.push_back({i});
    }
    return tasks;
}

std::vector<SweepOutcome>
SweepEngine::runLockstepGroup(const std::vector<std::size_t>& idxs,
                              const std::vector<SweepPoint>& points,
                              const PostRun& postRun) const
{
    struct Replica
    {
        std::unique_ptr<Simulator> sim;
        double wall = 0.0;
        bool active = false;
    };
    const std::size_t n = idxs.size();
    std::vector<SweepOutcome> outs(n);
    std::vector<Replica> reps(n);
    std::size_t active = 0;

    // Build every replica first; a topology factory or Simulator ctor
    // that throws (e.g. --specialize on an unregistered tuple) fails
    // only its own point, exactly as it would solo.
    for (std::size_t i = 0; i < n; ++i) {
        const SweepPoint& pt = points[idxs[i]];
        outs[i].label = pt.label;
        outs[i].replicaGroup = static_cast<unsigned>(n);
        const auto t0 = std::chrono::steady_clock::now();
        try {
            reps[i].sim = std::make_unique<Simulator>(
                *pt.program, pt.topology(), pt.cfg);
            reps[i].active = true;
            ++active;
        } catch (...) {
            captureCurrentException(outs[i]);
        }
        reps[i].wall += std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
        outs[i].host.wallSeconds = reps[i].wall;
    }

    // Advance the survivors round-robin in cycle slices: every active
    // replica consumes the same stretch of the shared oracle stream
    // before any moves on, so the stream's decode structures stay hot
    // across the whole group. Each replica's wall clock accumulates
    // only its own slices — per-point kcps keeps meaning.
    while (active > 0) {
        for (std::size_t i = 0; i < n; ++i) {
            if (!reps[i].active)
                continue;
            const SweepPoint& pt = points[idxs[i]];
            const auto t0 = std::chrono::steady_clock::now();
            try {
                Simulator& s = *reps[i].sim;
                if (!s.advanceTo(s.cycles() + lockstepSlice_)) {
                    outs[i].result = s.finishRun();
                    finishPoint(idxs[i], pt, s, outs[i], postRun);
                    reps[i].active = false;
                    --active;
                }
            } catch (...) {
                // Degroup: this replica reports its usual errorClass
                // and leaves; the rest of the group keeps advancing.
                captureCurrentException(outs[i]);
                reps[i].active = false;
                --active;
            }
            reps[i].wall += std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
            outs[i].host.wallSeconds = reps[i].wall;
            if (!reps[i].active)
                reps[i].sim.reset();
        }
    }
    return outs;
}

std::vector<SweepOutcome>
SweepEngine::run(const PostRun& postRun)
{
    std::vector<SweepPoint> points = std::move(points_);
    points_.clear();
    std::vector<SweepOutcome> outcomes(points.size());

    // Progress goes to stderr only (stdout must stay byte-identical
    // with and without it). The counter is shared across workers; the
    // line itself is a single atomic-enough fprintf.
    std::atomic<std::size_t> completed{0};
    auto report = [&](std::size_t idx, const SweepOutcome& o) {
        if (onOutcome_)
            onOutcome_(idx, o);
        if (!progress_)
            return;
        const std::size_t k = completed.fetch_add(1) + 1;
        std::fprintf(stderr, "[%zu/%zu] %s: %.0f kcps%s\n", k,
                     points.size(), o.label.c_str(),
                     o.host.kiloCyclesPerSec(),
                     o.ok() ? "" : " (FAILED)");
    };
    auto cancel = [&](std::size_t idx) {
        outcomes[idx].label = points[idx].label;
        outcomes[idx].error = "interrupted before start";
        outcomes[idx].errorClass = "interrupted";
    };

    // The schedulable unit is a task: a lockstep replica group when
    // grouping applies, a single point otherwise. The stop flag is
    // polled between tasks, so a cancelled group cancels whole.
    const std::vector<std::vector<std::size_t>> tasks =
        buildTasks(points);
    auto runTask = [&](const std::vector<std::size_t>& task) {
        if (stopped()) {
            for (std::size_t idx : task)
                cancel(idx);
            return;
        }
        if (task.size() == 1) {
            outcomes[task[0]] = runPoint(task[0], points[task[0]],
                                         postRun);
            report(task[0], outcomes[task[0]]);
            return;
        }
        std::vector<SweepOutcome> outs =
            runLockstepGroup(task, points, postRun);
        for (std::size_t k = 0; k < task.size(); ++k) {
            outcomes[task[k]] = std::move(outs[k]);
            report(task[k], outcomes[task[k]]);
        }
    };

    runTasks(tasks.size(),
             [&](std::size_t t) { runTask(tasks[t]); });
    return outcomes;
}

void
SweepEngine::runTasks(std::size_t num_tasks,
                      const std::function<void(std::size_t)>& task) const
{
    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(jobs_, num_tasks));

    if (workers <= 1) {
        // Inline serial path: the deterministic reference, and the
        // zero-overhead path for single-point "sweeps" (cobra_sim).
        for (std::size_t i = 0; i < num_tasks; ++i)
            task(i);
        return;
    }

    // Work-stealing deques: tasks are dealt round-robin; a worker
    // pops its own queue from the back (LIFO keeps its cache warm)
    // and steals from other queues' fronts (FIFO takes the oldest,
    // largest-remaining work first). Each task writes only its own
    // result slots, so no synchronisation is needed on results.
    struct WorkerQueue
    {
        std::mutex m;
        std::deque<std::size_t> q;
    };
    std::vector<WorkerQueue> queues(workers);
    for (std::size_t i = 0; i < num_tasks; ++i)
        queues[i % workers].q.push_back(i);

    auto work = [&](unsigned self) {
        for (;;) {
            std::size_t t = SIZE_MAX;
            {
                std::lock_guard<std::mutex> lk(queues[self].m);
                if (!queues[self].q.empty()) {
                    t = queues[self].q.back();
                    queues[self].q.pop_back();
                }
            }
            if (t == SIZE_MAX) {
                for (unsigned v = 1; v < workers && t == SIZE_MAX;
                     ++v) {
                    WorkerQueue& victim = queues[(self + v) % workers];
                    std::lock_guard<std::mutex> lk(victim.m);
                    if (!victim.q.empty()) {
                        t = victim.q.front();
                        victim.q.pop_front();
                    }
                }
            }
            if (t == SIZE_MAX)
                return; // All queues drained.
            task(t);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        pool.emplace_back(work, w);
    for (auto& t : pool)
        t.join();
}

std::string
jsonEscape(const std::string& s)
{
    return cobra::jsonEscape(s);
}

void
writeResultFields(std::ostream& os, const SimResult& r,
                  const std::string& pad, bool trailing_comma)
{
    r.forEachField([&](const char* name, const auto& v) {
        os << pad << "\"" << cobra::jsonKeyFromCamel(name) << "\": ";
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, bool>)
            os << (v ? "true" : "false");
        else if constexpr (std::is_same_v<T, std::string>)
            os << "\"" << cobra::jsonEscape(v) << "\"";
        else
            os << v;
        os << ",\n";
    });
    os << pad << "\"ipc\": " << r.ipc() << ",\n"
       << pad << "\"mpki\": " << r.mpki() << ",\n"
       << pad << "\"accuracy\": " << r.accuracy()
       << (trailing_comma ? ",\n" : "\n");
}

void
writeSweepJson(const std::string& path, const std::string& name,
               const std::vector<SweepOutcome>& outcomes, unsigned jobs,
               const std::string& extra)
{
    std::ofstream f(path);
    if (!f)
        throw std::runtime_error("cannot write " + path);
    f << "{\n  \"bench\": \"" << jsonEscape(name) << "\",\n"
      << "  \"jobs\": " << jobs << ",\n";
    if (!extra.empty())
        f << "  " << extra << ",\n";
    f << "  \"points\": [\n";
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const SweepOutcome& o = outcomes[i];
        f << "    {\n      \"label\": \"" << jsonEscape(o.label)
          << "\",\n";
        if (!o.ok()) {
            f << "      \"error_class\": \""
              << jsonEscape(o.errorClass.empty() ? "internal"
                                                 : o.errorClass)
              << "\",\n      \"error\": \"" << jsonEscape(o.error)
              << "\"\n    }";
        } else {
            writeResultFields(f, o.result, "      ",
                              /*trailing_comma=*/true);
            f << "      \"loop\": \""
              << jsonEscape(o.loop.empty() ? "generic" : o.loop)
              << "\",\n"
              << "      \"replica_group\": " << o.replicaGroup << ",\n"
              << "      \"host\": {\n"
              << "        \"wall_seconds\": " << o.host.wallSeconds
              << ",\n"
              << "        \"sim_cycles\": " << o.host.simCycles << ",\n"
              << "        \"sim_insts\": " << o.host.simInsts << ",\n"
              << "        \"kilocycles_per_sec\": "
              << o.host.kiloCyclesPerSec() << ",\n"
              << "        \"kips\": " << o.host.kips() << "\n"
              << "      }\n    }";
        }
        f << (i + 1 < outcomes.size() ? ",\n" : "\n");
    }
    f << "  ]\n}\n";
}

std::string
renderPointStats(const std::string& label, const Simulator& s,
                 const SimResult& r)
{
    std::ostringstream os;
    s.statRegistry().writeJson(os, 6);
    return renderPointStats(label, r, os.str());
}

std::string
renderPointStats(const std::string& label, const SimResult& r,
                 const std::string& groups_json)
{
    std::ostringstream os;
    os << "    {\n      \"label\": \"" << jsonEscape(label) << "\",\n"
       << "      \"result\": {\n";
    writeResultFields(os, r, "        ", /*trailing_comma=*/false);
    os << "      },\n      \"groups\": " << groups_json << "\n    }";
    return os.str();
}

void
writeStatsJson(const std::string& path, const std::string& tool,
               const std::vector<SweepOutcome>& outcomes, unsigned jobs)
{
    std::ofstream f(path);
    if (!f)
        throw std::runtime_error("cannot write " + path);
    f << "{\n  \"tool\": \"" << jsonEscape(tool) << "\",\n"
      << "  \"version\": 1,\n"
      << "  \"jobs\": " << jobs << ",\n"
      << "  \"points\": [\n";
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const SweepOutcome& o = outcomes[i];
        if (!o.statsJson.empty()) {
            f << o.statsJson;
        } else {
            f << "    {\n      \"label\": \"" << jsonEscape(o.label)
              << "\",\n      \"error\": \""
              << jsonEscape(o.ok() ? "stats not rendered" : o.error)
              << "\"\n    }";
        }
        f << (i + 1 < outcomes.size() ? ",\n" : "\n");
    }
    f << "  ]\n}\n";
}

void
writeTraceEvents(const std::string& path,
                 const std::vector<SweepOutcome>& outcomes)
{
    std::ofstream f(path);
    if (!f)
        throw std::runtime_error("cannot write " + path);
    f << "[\n";
    for (const SweepOutcome& o : outcomes)
        f << o.traceEvents;
    // Final no-comma metadata event closes the array legally even
    // when no point traced anything.
    f << "{\"name\": \"cobra_trace\", \"ph\": \"M\", \"pid\": 0, "
         "\"tid\": 0, \"args\": {\"points\": "
      << outcomes.size() << "}}\n]\n";
}

} // namespace cobra::sim
