#include "sim/sweep.hpp"

#include "guard/errors.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace cobra::sim {

SweepPoint
SweepPoint::preset(Design d, const prog::Program& program)
{
    SweepPoint p;
    p.label = std::string(designName(d)) + "/" + program.name();
    p.topology = [d] { return buildTopology(d); };
    p.program = &program;
    p.cfg = makeConfig(d);
    return p;
}

SweepEngine::SweepEngine(unsigned jobs)
    : jobs_(jobs == 0 ? defaultJobs() : jobs)
{
}

unsigned
SweepEngine::defaultJobs()
{
    if (const char* env = std::getenv("COBRA_JOBS")) {
        const long n = std::strtol(env, nullptr, 10);
        return n >= 1 ? static_cast<unsigned>(n) : 1u;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1u;
}

std::size_t
SweepEngine::add(SweepPoint p)
{
    if (!p.topology)
        throw std::invalid_argument("SweepPoint without a topology");
    if (p.program == nullptr)
        throw std::invalid_argument("SweepPoint without a program");
    points_.push_back(std::move(p));
    return points_.size() - 1;
}

SweepOutcome
SweepEngine::runPoint(std::size_t idx, const SweepPoint& pt,
                      const PostRun& postRun) const
{
    SweepOutcome out;
    out.label = pt.label;
    const auto t0 = std::chrono::steady_clock::now();
    try {
        Simulator s(*pt.program, pt.topology(), pt.cfg);
        out.result = s.run();
        out.host.simCycles = s.cycles();
        out.host.simInsts = s.backend().committedInsts();
        if (postRun) {
            std::ostringstream oss;
            postRun(idx, s, out.result, pt, oss);
            out.postRunText = oss.str();
        }
    } catch (const guard::DeadlockError& e) {
        // Keep the watchdog's pipeline post-mortem attached so CLI
        // consumers can still print it.
        out.error = std::string(e.what()) + "\n" + e.postMortem();
    } catch (const std::exception& e) {
        out.error = e.what();
    }
    const auto t1 = std::chrono::steady_clock::now();
    out.host.wallSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    return out;
}

std::vector<SweepOutcome>
SweepEngine::run(const PostRun& postRun)
{
    std::vector<SweepPoint> points = std::move(points_);
    points_.clear();
    std::vector<SweepOutcome> outcomes(points.size());

    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(jobs_, points.size()));

    if (workers <= 1) {
        // Inline serial path: the deterministic reference, and the
        // zero-overhead path for single-point "sweeps" (cobra_sim).
        for (std::size_t i = 0; i < points.size(); ++i)
            outcomes[i] = runPoint(i, points[i], postRun);
        return outcomes;
    }

    // Work-stealing deques: points are dealt round-robin; a worker
    // pops its own queue from the back (LIFO keeps its cache warm)
    // and steals from other queues' fronts (FIFO takes the oldest,
    // largest-remaining work first). Each point writes only its own
    // outcome slot, so no synchronisation is needed on results.
    struct WorkerQueue
    {
        std::mutex m;
        std::deque<std::size_t> q;
    };
    std::vector<WorkerQueue> queues(workers);
    for (std::size_t i = 0; i < points.size(); ++i)
        queues[i % workers].q.push_back(i);

    auto work = [&](unsigned self) {
        for (;;) {
            std::size_t idx = SIZE_MAX;
            {
                std::lock_guard<std::mutex> lk(queues[self].m);
                if (!queues[self].q.empty()) {
                    idx = queues[self].q.back();
                    queues[self].q.pop_back();
                }
            }
            if (idx == SIZE_MAX) {
                for (unsigned v = 1; v < workers && idx == SIZE_MAX;
                     ++v) {
                    WorkerQueue& victim = queues[(self + v) % workers];
                    std::lock_guard<std::mutex> lk(victim.m);
                    if (!victim.q.empty()) {
                        idx = victim.q.front();
                        victim.q.pop_front();
                    }
                }
            }
            if (idx == SIZE_MAX)
                return; // All queues drained.
            outcomes[idx] = runPoint(idx, points[idx], postRun);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        pool.emplace_back(work, w);
    for (auto& t : pool)
        t.join();
    return outcomes;
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
writeSweepJson(const std::string& path, const std::string& name,
               const std::vector<SweepOutcome>& outcomes, unsigned jobs,
               const std::string& extra)
{
    std::ofstream f(path);
    if (!f)
        throw std::runtime_error("cannot write " + path);
    f << "{\n  \"bench\": \"" << jsonEscape(name) << "\",\n"
      << "  \"jobs\": " << jobs << ",\n";
    if (!extra.empty())
        f << "  " << extra << ",\n";
    f << "  \"points\": [\n";
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const SweepOutcome& o = outcomes[i];
        const SimResult& r = o.result;
        f << "    {\n      \"label\": \"" << jsonEscape(o.label)
          << "\",\n";
        if (!o.ok()) {
            f << "      \"error\": \"" << jsonEscape(o.error)
              << "\"\n    }";
        } else {
            f << "      \"cycles\": " << r.cycles << ",\n"
              << "      \"insts\": " << r.insts << ",\n"
              << "      \"ipc\": " << r.ipc() << ",\n"
              << "      \"cond_branches\": " << r.condBranches << ",\n"
              << "      \"cond_mispredicts\": " << r.condMispredicts
              << ",\n"
              << "      \"jalr_mispredicts\": " << r.jalrMispredicts
              << ",\n"
              << "      \"mpki\": " << r.mpki() << ",\n"
              << "      \"accuracy\": " << r.accuracy() << ",\n"
              << "      \"deadlocked\": "
              << (r.deadlocked ? "true" : "false") << ",\n"
              << "      \"host\": {\n"
              << "        \"wall_seconds\": " << o.host.wallSeconds
              << ",\n"
              << "        \"sim_cycles\": " << o.host.simCycles << ",\n"
              << "        \"sim_insts\": " << o.host.simInsts << ",\n"
              << "        \"kilocycles_per_sec\": "
              << o.host.kiloCyclesPerSec() << ",\n"
              << "        \"kips\": " << o.host.kips() << "\n"
              << "      }\n    }";
        }
        f << (i + 1 < outcomes.size() ? ",\n" : "\n");
    }
    f << "  ]\n}\n";
}

} // namespace cobra::sim
