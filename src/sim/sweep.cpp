#include "sim/sweep.hpp"

#include "common/json.hpp"
#include "guard/errors.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <type_traits>

namespace cobra::sim {

SweepPoint
SweepPoint::preset(Design d, const prog::Program& program)
{
    SweepPoint p;
    p.label = std::string(designName(d)) + "/" + program.name();
    p.topology = [d] { return buildTopology(d); };
    p.program = &program;
    p.cfg = makeConfig(d);
    return p;
}

SweepEngine::SweepEngine(unsigned jobs)
    : jobs_(jobs == 0 ? defaultJobs() : jobs)
{
}

unsigned
SweepEngine::defaultJobs()
{
    if (const char* env = std::getenv("COBRA_JOBS")) {
        const long n = std::strtol(env, nullptr, 10);
        return n >= 1 ? static_cast<unsigned>(n) : 1u;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1u;
}

std::size_t
SweepEngine::add(SweepPoint p)
{
    if (!p.topology)
        throw std::invalid_argument("SweepPoint without a topology");
    if (p.program == nullptr)
        throw std::invalid_argument("SweepPoint without a program");
    points_.push_back(std::move(p));
    return points_.size() - 1;
}

SweepOutcome
SweepEngine::runPoint(std::size_t idx, const SweepPoint& pt,
                      const PostRun& postRun) const
{
    SweepOutcome out;
    out.label = pt.label;
    const auto t0 = std::chrono::steady_clock::now();
    try {
        Simulator s(*pt.program, pt.topology(), pt.cfg);
        out.result = pt.execute ? pt.execute(s) : s.run();
        out.host.simCycles = s.cycles();
        out.host.simInsts = s.backend().committedInsts();
        if (postRun) {
            std::ostringstream oss;
            postRun(idx, s, out.result, pt, oss);
            out.postRunText = oss.str();
        }
        // CobraScope renders on the worker, while the Simulator is
        // alive; the writers later concatenate in submission order.
        if (!pt.cfg.output.statsJsonPath.empty())
            out.statsJson = renderPointStats(pt.label, s, out.result);
        if (s.tracer() != nullptr) {
            std::ostringstream oss;
            s.tracer()->writeChromeTrace(
                oss, static_cast<unsigned>(idx), pt.label);
            out.traceEvents = oss.str();
        }
    } catch (const guard::DeadlockError& e) {
        // Keep the watchdog's pipeline post-mortem attached so CLI
        // consumers can still print it.
        out.error = std::string(e.what()) + "\n" + e.postMortem();
        out.errorClass = guard::errorClassOf(e);
    } catch (const std::exception& e) {
        out.error = e.what();
        out.errorClass = guard::errorClassOf(e);
    } catch (...) {
        // A non-std exception from a user-supplied topology factory
        // or execute hook must not tear down the worker pool either.
        out.error = "unknown non-std exception";
        out.errorClass = "internal";
    }
    const auto t1 = std::chrono::steady_clock::now();
    out.host.wallSeconds =
        std::chrono::duration<double>(t1 - t0).count();
    return out;
}

std::vector<SweepOutcome>
SweepEngine::run(const PostRun& postRun)
{
    std::vector<SweepPoint> points = std::move(points_);
    points_.clear();
    std::vector<SweepOutcome> outcomes(points.size());

    // Progress goes to stderr only (stdout must stay byte-identical
    // with and without it). The counter is shared across workers; the
    // line itself is a single atomic-enough fprintf.
    std::atomic<std::size_t> completed{0};
    auto report = [&](std::size_t idx, const SweepOutcome& o) {
        if (onOutcome_)
            onOutcome_(idx, o);
        if (!progress_)
            return;
        const std::size_t k = completed.fetch_add(1) + 1;
        std::fprintf(stderr, "[%zu/%zu] %s: %.0f kcps%s\n", k,
                     points.size(), o.label.c_str(),
                     o.host.kiloCyclesPerSec(),
                     o.ok() ? "" : " (FAILED)");
    };
    auto cancel = [&](std::size_t idx) {
        outcomes[idx].label = points[idx].label;
        outcomes[idx].error = "interrupted before start";
        outcomes[idx].errorClass = "interrupted";
    };

    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(jobs_, points.size()));

    if (workers <= 1) {
        // Inline serial path: the deterministic reference, and the
        // zero-overhead path for single-point "sweeps" (cobra_sim).
        for (std::size_t i = 0; i < points.size(); ++i) {
            if (stopped()) {
                cancel(i);
                continue;
            }
            outcomes[i] = runPoint(i, points[i], postRun);
            report(i, outcomes[i]);
        }
        return outcomes;
    }

    // Work-stealing deques: points are dealt round-robin; a worker
    // pops its own queue from the back (LIFO keeps its cache warm)
    // and steals from other queues' fronts (FIFO takes the oldest,
    // largest-remaining work first). Each point writes only its own
    // outcome slot, so no synchronisation is needed on results.
    struct WorkerQueue
    {
        std::mutex m;
        std::deque<std::size_t> q;
    };
    std::vector<WorkerQueue> queues(workers);
    for (std::size_t i = 0; i < points.size(); ++i)
        queues[i % workers].q.push_back(i);

    auto work = [&](unsigned self) {
        for (;;) {
            std::size_t idx = SIZE_MAX;
            {
                std::lock_guard<std::mutex> lk(queues[self].m);
                if (!queues[self].q.empty()) {
                    idx = queues[self].q.back();
                    queues[self].q.pop_back();
                }
            }
            if (idx == SIZE_MAX) {
                for (unsigned v = 1; v < workers && idx == SIZE_MAX;
                     ++v) {
                    WorkerQueue& victim = queues[(self + v) % workers];
                    std::lock_guard<std::mutex> lk(victim.m);
                    if (!victim.q.empty()) {
                        idx = victim.q.front();
                        victim.q.pop_front();
                    }
                }
            }
            if (idx == SIZE_MAX)
                return; // All queues drained.
            if (stopped()) {
                // Drain mode: mark the remaining claim cancelled and
                // keep pulling so every queued index gets an outcome.
                cancel(idx);
                continue;
            }
            outcomes[idx] = runPoint(idx, points[idx], postRun);
            report(idx, outcomes[idx]);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        pool.emplace_back(work, w);
    for (auto& t : pool)
        t.join();
    return outcomes;
}

std::string
jsonEscape(const std::string& s)
{
    return cobra::jsonEscape(s);
}

void
writeResultFields(std::ostream& os, const SimResult& r,
                  const std::string& pad, bool trailing_comma)
{
    r.forEachField([&](const char* name, const auto& v) {
        os << pad << "\"" << cobra::jsonKeyFromCamel(name) << "\": ";
        using T = std::decay_t<decltype(v)>;
        if constexpr (std::is_same_v<T, bool>)
            os << (v ? "true" : "false");
        else if constexpr (std::is_same_v<T, std::string>)
            os << "\"" << cobra::jsonEscape(v) << "\"";
        else
            os << v;
        os << ",\n";
    });
    os << pad << "\"ipc\": " << r.ipc() << ",\n"
       << pad << "\"mpki\": " << r.mpki() << ",\n"
       << pad << "\"accuracy\": " << r.accuracy()
       << (trailing_comma ? ",\n" : "\n");
}

void
writeSweepJson(const std::string& path, const std::string& name,
               const std::vector<SweepOutcome>& outcomes, unsigned jobs,
               const std::string& extra)
{
    std::ofstream f(path);
    if (!f)
        throw std::runtime_error("cannot write " + path);
    f << "{\n  \"bench\": \"" << jsonEscape(name) << "\",\n"
      << "  \"jobs\": " << jobs << ",\n";
    if (!extra.empty())
        f << "  " << extra << ",\n";
    f << "  \"points\": [\n";
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const SweepOutcome& o = outcomes[i];
        f << "    {\n      \"label\": \"" << jsonEscape(o.label)
          << "\",\n";
        if (!o.ok()) {
            f << "      \"error_class\": \""
              << jsonEscape(o.errorClass.empty() ? "internal"
                                                 : o.errorClass)
              << "\",\n      \"error\": \"" << jsonEscape(o.error)
              << "\"\n    }";
        } else {
            writeResultFields(f, o.result, "      ",
                              /*trailing_comma=*/true);
            f << "      \"host\": {\n"
              << "        \"wall_seconds\": " << o.host.wallSeconds
              << ",\n"
              << "        \"sim_cycles\": " << o.host.simCycles << ",\n"
              << "        \"sim_insts\": " << o.host.simInsts << ",\n"
              << "        \"kilocycles_per_sec\": "
              << o.host.kiloCyclesPerSec() << ",\n"
              << "        \"kips\": " << o.host.kips() << "\n"
              << "      }\n    }";
        }
        f << (i + 1 < outcomes.size() ? ",\n" : "\n");
    }
    f << "  ]\n}\n";
}

std::string
renderPointStats(const std::string& label, const Simulator& s,
                 const SimResult& r)
{
    std::ostringstream os;
    s.statRegistry().writeJson(os, 6);
    return renderPointStats(label, r, os.str());
}

std::string
renderPointStats(const std::string& label, const SimResult& r,
                 const std::string& groups_json)
{
    std::ostringstream os;
    os << "    {\n      \"label\": \"" << jsonEscape(label) << "\",\n"
       << "      \"result\": {\n";
    writeResultFields(os, r, "        ", /*trailing_comma=*/false);
    os << "      },\n      \"groups\": " << groups_json << "\n    }";
    return os.str();
}

void
writeStatsJson(const std::string& path, const std::string& tool,
               const std::vector<SweepOutcome>& outcomes, unsigned jobs)
{
    std::ofstream f(path);
    if (!f)
        throw std::runtime_error("cannot write " + path);
    f << "{\n  \"tool\": \"" << jsonEscape(tool) << "\",\n"
      << "  \"version\": 1,\n"
      << "  \"jobs\": " << jobs << ",\n"
      << "  \"points\": [\n";
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const SweepOutcome& o = outcomes[i];
        if (!o.statsJson.empty()) {
            f << o.statsJson;
        } else {
            f << "    {\n      \"label\": \"" << jsonEscape(o.label)
              << "\",\n      \"error\": \""
              << jsonEscape(o.ok() ? "stats not rendered" : o.error)
              << "\"\n    }";
        }
        f << (i + 1 < outcomes.size() ? ",\n" : "\n");
    }
    f << "  ]\n}\n";
}

void
writeTraceEvents(const std::string& path,
                 const std::vector<SweepOutcome>& outcomes)
{
    std::ofstream f(path);
    if (!f)
        throw std::runtime_error("cannot write " + path);
    f << "[\n";
    for (const SweepOutcome& o : outcomes)
        f << o.traceEvents;
    // Final no-comma metadata event closes the array legally even
    // when no point traced anything.
    f << "{\"name\": \"cobra_trace\", \"ph\": \"M\", \"pid\": 0, "
         "\"tid\": 0, \"args\": {\"points\": "
      << outcomes.size() << "}}\n]\n";
}

} // namespace cobra::sim
