/**
 * @file
 * Analytical core-area breakdown (Fig. 9 substrate): estimates the
 * area of each major block of the BOOM-like core from its
 * configuration, using the same FinFET-proxy model as the predictor
 * breakdown, so the predictor-to-core proportions are consistent.
 */

#ifndef COBRA_SIM_CORE_AREA_HPP
#define COBRA_SIM_CORE_AREA_HPP

#include "phys/area_model.hpp"
#include "sim/presets.hpp"

namespace cobra::sim {

struct DesignSpec;

/**
 * Full-core area report for a design: caches, backend structures,
 * execution units, and the COBRA-generated branch predictor.
 */
phys::AreaReport coreAreaReport(Design d, const phys::AreaModel& model);

/** Same report for an arbitrary (spec-described) design. */
phys::AreaReport coreAreaReport(const DesignSpec& spec,
                                const phys::AreaModel& model);

} // namespace cobra::sim

#endif // COBRA_SIM_CORE_AREA_HPP
