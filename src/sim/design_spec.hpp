/**
 * @file
 * DesignSpec: a declarative, serializable description of one COBRA
 * predictor design — the composer tree, the component kind in each
 * slot, every sizing knob, and the core/BPU management configuration.
 *
 * The spec is the single construction path for designs: the enum
 * presets of sim/presets.hpp are re-expressed as specs (presetSpec),
 * cobra_sim's --design flags and cobra_serve's "designs" lists resolve
 * through presetSpec(name), and the search driver (src/search/)
 * generates specs programmatically. buildDesign(spec) is where guard
 * decorators (--audit / fault injection) are interposed, so spec-built
 * and preset-built designs get byte-identical wrapping.
 *
 * Specs round-trip losslessly through JSON (toJson / fromJson) and are
 * validated with structured guard::ConfigError's naming the offending
 * field, so a malformed spec is always a diagnosable rejection, never
 * a mis-built topology.
 */

#ifndef COBRA_SIM_DESIGN_SPEC_HPP
#define COBRA_SIM_DESIGN_SPEC_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/presets.hpp"

namespace cobra::guard {
class FaultEngine;
class ContractAuditor;
} // namespace cobra::guard

namespace cobra::serve {
class Json;
} // namespace cobra::serve

namespace cobra::sim {

/** One tagged TAGE table (kind "tage" components only). */
struct TageTableSpec
{
    std::uint64_t sets = 512;
    std::uint64_t histLen = 8;
    std::uint64_t tagBits = 9;

    bool operator==(const TageTableSpec&) const = default;
};

/**
 * One predictor sub-component: a library kind plus sizing knobs.
 *
 * Kinds and their knobs (defaults match the C++ param structs):
 *  - "bim"     sets, ctr_bits, hist_bits, latency; mode = pc | ghist |
 *              lhist | gshare | lshare | path
 *  - "btb"     sets, ways, tag_bits, latency
 *  - "ubtb"    entries, ctr_bits
 *  - "gtag"    sets, ctr_bits, tag_bits, hist_bits, latency
 *  - "tage"    ctr_bits, u_bits, latency, u_decay_period; plus a
 *              non-empty `tables` array
 *  - "loop"    entries, tag_bits, count_bits, conf_max, conf_threshold,
 *              min_trip, latency
 *  - "tourney" sets, ctr_bits, hist_bits, latency  (arbiter)
 */
struct ComponentSpec
{
    std::string id;   ///< Display name, unique within the spec.
    std::string kind; ///< Library kind (see table above).
    /** Explicitly-set knobs; unset knobs take the kind's default. */
    std::map<std::string, std::uint64_t> knobs;
    std::string mode; ///< "bim" index mode; "" = pc.
    std::vector<TageTableSpec> tables; ///< "tage" only.

    bool operator==(const ComponentSpec&) const = default;
};

/** The composer expression tree over component ids (paper §IV-A). */
struct TreeSpec
{
    enum class Kind : std::uint8_t { Leaf, Chain, Arb };

    Kind kind = Kind::Leaf;
    std::string component;          ///< Leaf id / Arb arbiter id.
    std::vector<TreeSpec> children; ///< Chain / Arb children.

    static TreeSpec leaf(std::string id);
    static TreeSpec chain(std::vector<TreeSpec> children);
    static TreeSpec arb(std::string arbiter,
                        std::vector<TreeSpec> children);

    bool operator==(const TreeSpec&) const = default;
};

/** Core configuration block (defaults = the paper's Table II core). */
struct CoreSpec
{
    unsigned fetchBufferInsts = 32;
    unsigned rasEntries = 16;
    unsigned coreWidth = 4;
    unsigned robEntries = 128;
    unsigned intIqEntries = 32;
    unsigned memIqEntries = 32;
    unsigned fpIqEntries = 32;
    unsigned ldqEntries = 32;
    unsigned stqEntries = 32;
    unsigned aluPorts = 4;
    unsigned memPorts = 2;
    unsigned fpPorts = 2;
    /** Cache size overrides in bytes; 0 keeps the default hierarchy. */
    std::uint64_t l1iBytes = 0;
    std::uint64_t l1dBytes = 0;
    std::uint64_t l2Bytes = 0;
    std::uint64_t l3Bytes = 0;

    bool operator==(const CoreSpec&) const = default;
};

/** BPU management-structure block (histories, history file). */
struct BpuSpec
{
    unsigned ghistBits = 64;
    unsigned lhistSets = 256;
    unsigned lhistBits = 32;
    unsigned historyFileEntries = 64;
    unsigned updateWidth = 2;

    bool operator==(const BpuSpec&) const = default;
};

/**
 * A complete, self-contained design description. Everything cobra_sim
 * needs to evaluate the design — topology, sizing, and management
 * configuration — lives here; SimConfig run options (instruction
 * budgets, SFB, audit, ...) remain per-run and are layered on top.
 */
struct DesignSpec
{
    std::string name;        ///< Display name (header lines, labels).
    std::string description; ///< Table I-style description (optional).
    std::string notation;    ///< Paper notation (optional; derivable).
    unsigned fetchWidth = 4; ///< Applied to frontend, BPU, components.

    std::vector<ComponentSpec> components;
    TreeSpec tree;
    CoreSpec core;
    BpuSpec bpu;

    /**
     * Full structural + semantic validation. Throws guard::ConfigError
     * naming the offending field: unknown kinds/knobs, non-power-of-two
     * table sizes, dangling or reused tree references, non-arbiter at
     * an arb node, histories narrower than a component folds in, ...
     */
    void validate() const;

    /** Component by id; nullptr when absent. */
    const ComponentSpec* findComponent(const std::string& id) const;

    /**
     * Deterministic pretty-printed JSON document. fromJson(toJson())
     * reproduces the spec exactly (operator== holds), and two equal
     * specs serialize to byte-identical text.
     */
    std::string toJson() const;

    /**
     * Parse and validate one spec document. Throws guard::ConfigError
     * on malformed JSON, unknown fields of known blocks, or any
     * validate() violation.
     */
    static DesignSpec fromJson(const std::string& text);

    /**
     * Parse and validate a spec from an already-parsed JSON value
     * (e.g. an inline "design_spec" object inside a cobra_serve
     * request document). Same validation as the text overload.
     */
    static DesignSpec fromJson(const serve::Json& doc);

    bool operator==(const DesignSpec&) const = default;
};

/**
 * Guard-decorator options for buildDesign: the single place where
 * Topology::wrapEach is applied, so every construction path (presets,
 * spec files, search candidates) gets identical wrapping — fault
 * injector innermost, contract auditor outermost.
 */
struct GuardHooks
{
    bool audit = false;
    /** Wrap a FaultInjector around every component when enabled(). */
    guard::FaultEngine* faults = nullptr;
    /** Receives the auditors created when audit is set. */
    std::vector<guard::ContractAuditor*>* auditors = nullptr;
};

/** Apply the guard decorators of @p hooks to an existing topology. */
void applyGuardWrappers(bpu::Topology& topo, const GuardHooks& hooks);

/** Build the bare (unwrapped) topology described by @p spec. */
bpu::Topology buildTopology(const DesignSpec& spec);

/**
 * The one design-construction path: validate, build the topology, and
 * apply guard decorators per @p hooks.
 */
bpu::Topology buildDesign(const DesignSpec& spec,
                          const GuardHooks& hooks = {});

/**
 * SimConfig for @p spec: the spec's core/BPU/cache blocks layered over
 * the defaults (run options keep their SimConfig defaults).
 */
SimConfig makeConfig(const DesignSpec& spec);

/** Total architectural storage of the spec's components, in bits. */
std::uint64_t specStorageBits(const DesignSpec& spec);

/**
 * Predictor area of the spec under @p model, in um^2 (component
 * physical costs only; management structures excluded, matching the
 * Table I storage accounting).
 */
double specAreaUm2(const DesignSpec& spec,
                   const phys::AreaModel& model);

/** Pipeline depth: maximum component latency across the spec. */
unsigned specMaxLatency(const DesignSpec& spec);

/** The preset enum re-expressed as a spec (bit-identical designs). */
DesignSpec presetSpec(Design d);

/**
 * Preset spec from a CLI/request name: tourney | b2 | tagel | refbig
 * (aliases tage-l, ref-big accepted). Throws guard::ConfigError on an
 * unknown name.
 */
DesignSpec presetSpec(const std::string& name);

/** True when @p name names a preset (accepted by presetSpec). */
bool isPresetName(const std::string& name);

} // namespace cobra::sim

#endif // COBRA_SIM_DESIGN_SPEC_HPP
