/**
 * @file
 * Top-level simulator: wires a Program, the oracle executor, the
 * cache hierarchy, a COBRA-composed BranchPredictorUnit, and the
 * BOOM-like frontend/backend into a cycle loop, and reports the
 * metrics of the paper's Fig. 10 (IPC, branch-MPKI, accuracy).
 */

#ifndef COBRA_SIM_SIMULATOR_HPP
#define COBRA_SIM_SIMULATOR_HPP

#include <memory>
#include <string>
#include <vector>

#include "bpu/bpu.hpp"
#include "core/backend.hpp"
#include "core/cache.hpp"
#include "core/frontend.hpp"
#include "exec/oracle.hpp"
#include "guard/contract_auditor.hpp"
#include "guard/fault_injector.hpp"
#include "guard/post_mortem.hpp"
#include "program/program.hpp"
#include "scope/stat_registry.hpp"
#include "scope/tracer.hpp"
#include "trace/replay.hpp"

namespace cobra::sim {

/** Aggregated run metrics (post-warmup deltas). */
struct SimResult
{
    std::uint64_t cycles = 0;
    std::uint64_t insts = 0;
    std::uint64_t condBranches = 0;
    std::uint64_t cfis = 0;
    std::uint64_t condMispredicts = 0;
    std::uint64_t jalrMispredicts = 0;
    std::uint64_t sfbConversions = 0;
    /** Fetch replays forced by global-history repair (§VI-B). */
    std::uint64_t ghistReplays = 0;
    /** In-flight fetch packets killed by re-steers/replays/redirects. */
    std::uint64_t packetsKilled = 0;
    bool deadlocked = false;

    // ---- SimGuard -------------------------------------------------------

    /** Predictor-state / output faults injected (0 when disabled). */
    std::uint64_t faultsInjected = 0;
    /** Commit updates dropped by fault injection. */
    std::uint64_t updatesDropped = 0;
    /** Contract checks performed by the auditor (0 when off). */
    std::uint64_t auditChecks = 0;
    /** Watchdog report text; empty unless the run deadlocked. */
    std::string diagnostics;
    /** Structured watchdog snapshot (valid when deadlocked). */
    guard::PostMortem postMortem;

    double
    ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(insts) / cycles;
    }

    /** Branch misses per kilo-instruction (all mispredict flavours). */
    double
    mpki() const
    {
        return insts == 0 ? 0.0
                          : 1000.0 *
                                (condMispredicts + jalrMispredicts) /
                                static_cast<double>(insts);
    }

    double
    condMpki() const
    {
        return insts == 0 ? 0.0
                          : 1000.0 * condMispredicts /
                                static_cast<double>(insts);
    }

    /** Conditional-branch prediction accuracy. */
    double
    accuracy() const
    {
        return condBranches == 0
                   ? 1.0
                   : 1.0 - static_cast<double>(condMispredicts) /
                               static_cast<double>(condBranches);
    }

    /**
     * The single authoritative field list: visits (name, member
     * pointer) for every compared/exported field. Equality, the JSON
     * writers, and the sweep determinism diagnostics all derive from
     * this one enumeration, so a new metric added here is
     * automatically compared and exported everywhere. The structured
     * post-mortem is deliberately excluded; its text rendering is
     * covered via diagnostics.
     */
    template <typename V>
    static void
    visitFields(V&& v)
    {
        v("cycles", &SimResult::cycles);
        v("insts", &SimResult::insts);
        v("condBranches", &SimResult::condBranches);
        v("cfis", &SimResult::cfis);
        v("condMispredicts", &SimResult::condMispredicts);
        v("jalrMispredicts", &SimResult::jalrMispredicts);
        v("sfbConversions", &SimResult::sfbConversions);
        v("ghistReplays", &SimResult::ghistReplays);
        v("packetsKilled", &SimResult::packetsKilled);
        v("deadlocked", &SimResult::deadlocked);
        v("faultsInjected", &SimResult::faultsInjected);
        v("updatesDropped", &SimResult::updatesDropped);
        v("auditChecks", &SimResult::auditChecks);
        v("diagnostics", &SimResult::diagnostics);
    }

    /** Visit (name, value) for every field of this result. */
    template <typename V>
    void
    forEachField(V&& v) const
    {
        visitFields(
            [&](const char* name, auto mp) { v(name, this->*mp); });
    }

    /** Mutable variant (e.g. for field-sensitivity tests). */
    template <typename V>
    void
    forEachField(V&& v)
    {
        visitFields(
            [&](const char* name, auto mp) { v(name, this->*mp); });
    }

    /** Field-for-field equality over visitFields' enumeration. */
    bool
    operator==(const SimResult& o) const
    {
        bool eq = true;
        visitFields([&](const char*, auto mp) {
            eq = eq && this->*mp == o.*mp;
        });
        return eq;
    }
};

/** Names of the fields on which two results differ (empty if equal). */
inline std::vector<std::string>
diffFields(const SimResult& a, const SimResult& b)
{
    std::vector<std::string> out;
    SimResult::visitFields([&](const char* name, auto mp) {
        if (!(a.*mp == b.*mp))
            out.emplace_back(name);
    });
    return out;
}

/**
 * Where and how one run reports its results (CobraScope). All of
 * cobra_sim's output flags funnel through this one struct so their
 * interactions are validated in a single place.
 */
struct OutputConfig
{
    bool textStats = false; ///< Text stat dump after the run (--stats).
    bool textArea = false;  ///< Area report after the run (--area).
    std::string resultsJsonPath; ///< Sweep-results JSON (--json).
    std::string statsJsonPath;   ///< Full stat hierarchy (--stats-json).
    std::string traceEventsPath; ///< Chrome trace JSON (--trace-events).
    /** Tracer sampling window (--trace-start / --trace-cycles). */
    std::uint64_t traceStartCycle = 0;
    std::uint64_t traceCycles = 0; ///< 0 = unbounded.

    bool tracing() const { return !traceEventsPath.empty(); }

    /** Throws guard::ConfigError on inconsistent settings. */
    void validate() const;
};

/**
 * Specialized-loop selection (ROADMAP item 4). The fused
 * (devirtualized) loop is bit-identical to the generic path; the mode
 * only controls whether binding is attempted and whether a failure to
 * bind is an error.
 */
enum class SpecializeMode : std::uint8_t
{
    Auto,    ///< Fuse when the topology matches a registered tuple.
    Off,     ///< Always run the generic (virtual-dispatch) path.
    Require, ///< Error (guard::ConfigError) if fusing is unavailable.
};

const char* specializeModeName(SpecializeMode m);

/**
 * Would a Simulator built from @p topo and @p cfg bind the fused
 * specialized loop? Mirrors the construction-time decision: contract
 * audit and fault injection wrap components in guards (forcing the
 * generic loop), and the component tuple must render to a registered
 * key (bpu/specialize.hpp). CLIs use this to reject an explicit
 * specialize request up front as a usage error (exit 2) instead of
 * failing every sweep point at run time.
 */
bool specializeAvailable(const bpu::Topology& topo,
                         const struct SimConfig& cfg);

/** Full simulation configuration. */
struct SimConfig
{
    core::FrontendConfig frontend{};
    core::BackendConfig backend{};
    core::HierarchyParams caches{};
    bpu::BpuConfig bpu{};

    std::uint64_t maxInsts = 400'000;   ///< Committed-inst budget.
    std::uint64_t warmupInsts = 50'000; ///< Stats reset after this.
    std::uint64_t maxCycles = 40'000'000;
    std::uint64_t oracleSeed = 0xD15EA5E;

    /** Specialized-loop selection (cycle-exact either way). */
    SpecializeMode specialize = SpecializeMode::Auto;

    /**
     * When set, the oracle replays this captured trace instead of
     * evaluating behaviour hashes — bit-identical to execute mode
     * (same SimResult, same stats, interchangeable checkpoints). The
     * trace is immutable and shared: all replicas of a sweep hold the
     * same decoded object (prog::WorkloadCache::getTrace decodes each
     * workload once) while every Simulator walks it through its own
     * cursor. Validated against the run at construction: kind,
     * program fingerprint, oracle seed, and instruction budget must
     * all match or the constructor raises guard::ConfigError.
     */
    std::shared_ptr<const trace::DecodedTrace> replayTrace;

    // ---- SimGuard -------------------------------------------------------

    /** Watchdog: abort after this many cycles without a commit. */
    std::uint64_t deadlockCycles = 100'000;
    /** Interpose a ContractAuditor around every component. */
    bool audit = false;
    /** Per-event fault probability (0 disables injection). */
    double faultRate = 0.0;
    std::uint64_t faultSeed = 0x5EED;

    // ---- CobraScope -----------------------------------------------------

    OutputConfig output{};

    /**
     * Check invariants; throws guard::ConfigError on the first
     * violation. @p strict additionally enforces heuristics a
     * deliberate experiment may waive (e.g. warmup <= maxInsts);
     * the CLI validates strictly, the Simulator constructor only
     * structurally.
     */
    void validate(bool strict = true) const;
};

/**
 * Owns every model object for one run. Topologies are single-use
 * (components hold learned state), so each Simulator takes its own.
 */
class Simulator
{
  public:
    Simulator(const prog::Program& program, bpu::Topology topo,
              const SimConfig& cfg);

    /** Run to the instruction budget; returns post-warmup metrics. */
    SimResult run();

    /**
     * Like run(), but a deadlocked pipeline raises guard::DeadlockError
     * (carrying the post-mortem) instead of returning a flagged result.
     */
    SimResult runChecked();

    /**
     * Warp interval run: tick detailed for @p warmup_cycles (the
     * discarded cache/pipeline re-warming prefix), then measure until
     * @p measure_insts further instructions commit (or maxCycles).
     * Unlike run(), the warmup is cycle-denominated because interval
     * checkpoints restored from a fast-forward start with warm
     * predictors but a cold pipeline.
     */
    SimResult runInterval(std::uint64_t warmup_cycles,
                          std::uint64_t measure_insts);

    /**
     * Drive the run() state machine up to @p stop_cycle and pause,
     * leaving resumable mid-run state: checkpoint here (saveState),
     * and a later run() — on this simulator or on a restored one —
     * finishes with exactly the result an uninterrupted run() would
     * have produced. Returns true while the run has work left, false
     * once it has finished (budget reached, deadlocked, or out of
     * cycles).
     */
    bool advanceTo(Cycle stop_cycle);

    /**
     * Produce the final SimResult for a run that advanceTo() has
     * driven to completion (it returned false): exactly the result an
     * uninterrupted run() would have returned, including the deadlock
     * flag. Unlike calling run() after the fact, no further probe
     * tick is issued, so a stalled run reports the same cycle count
     * as the direct path. The lockstep sweep driver finishes each
     * replica through this.
     */
    SimResult finishRun();

    /**
     * Serialize the complete mid-flight simulation state — oracle,
     * caches, predictor composition, frontend (in-flight packets and
     * all), backend (ROB and all), fault RNG, run-loop progress
     * bookkeeping, and every registered stat — such that restoring
     * into an identically-configured Simulator and continuing yields
     * a bit-identical SimResult to the uninterrupted run. Pipeline
     * trace events (CobraScope tracer) are not checkpointed.
     */
    void saveState(warp::StateWriter& w) const;
    void restoreState(warp::StateReader& r);

    /**
     * Fingerprint of the restore-relevant configuration (program
     * image, composition, core parameters). Checkpoints embed it so a
     * restore into a differently-configured simulator fails up front
     * with a structured error instead of mid-stream.
     */
    std::uint64_t stateFingerprint() const;

    /** Advance exactly one cycle (for tests). */
    void tickOnce();

    /** The fault engine (counts are zero when injection is off). */
    const guard::FaultEngine& faultEngine() const { return *faults_; }

    /** Every StatGroup in this simulator tree, by hierarchical path. */
    const scope::StatRegistry& statRegistry() const { return registry_; }

    /** The pipeline event tracer; nullptr unless tracing is on. */
    scope::Tracer* tracer() { return tracer_.get(); }
    const scope::Tracer* tracer() const { return tracer_.get(); }

    /**
     * Which simulation loop this run uses: "specialized" when the
     * fused (devirtualized) loop bound, "generic" otherwise. Exported
     * into bench/sweep JSON so recorded throughput is attributable.
     */
    const char*
    loopVariant() const
    {
        return bpu_->predictor().specialized() ? "specialized"
                                               : "generic";
    }

    bpu::BranchPredictorUnit& bpu() { return *bpu_; }
    core::Frontend& frontend() { return *frontend_; }
    core::Backend& backend() { return *backend_; }
    core::CacheHierarchy& caches() { return *caches_; }
    exec::Oracle& oracle() { return *oracle_; }
    Cycle cycles() const { return now_; }

    const SimConfig& config() const { return cfg_; }

  private:
    struct Snapshot
    {
        std::uint64_t insts = 0;
        std::uint64_t branches = 0;
        std::uint64_t cfis = 0;
        std::uint64_t condMisp = 0;
        std::uint64_t jalrMisp = 0;
        Cycle cycles = 0;
    };

    Snapshot snapshot() const;

    /** Deadlock watchdog step over the progress members. */
    bool stalled();

    /** Deltas vs base_ plus the absolute event counters. */
    SimResult measuredResult(bool deadlocked);

    void saveStats(warp::StateWriter& w) const;
    void restoreStats(warp::StateReader& r);

    /** Capture pipeline state for the watchdog report. */
    guard::PostMortem buildPostMortem(std::uint64_t since_progress) const;

    /** Fill a result's guard counters and deadlock diagnostics. */
    void finishResult(SimResult& r, bool deadlocked,
                      std::uint64_t since_progress) const;

    SimConfig cfg_;
    const prog::Program& program_;
    std::unique_ptr<guard::FaultEngine> faults_;
    std::unique_ptr<trace::TraceCursor> replayCursor_;
    std::unique_ptr<exec::Oracle> oracle_;
    std::unique_ptr<core::CacheHierarchy> caches_;
    std::unique_ptr<bpu::BranchPredictorUnit> bpu_;
    std::unique_ptr<core::Frontend> frontend_;
    std::unique_ptr<core::Backend> backend_;
    std::vector<guard::ContractAuditor*> auditors_;
    scope::StatRegistry registry_;
    std::unique_ptr<scope::Tracer> tracer_;
    Cycle now_ = 0;

    // Run-loop state lives in members (not run() locals) so a
    // checkpoint taken mid-run resumes the measured region exactly.
    Snapshot base_{};
    bool baseCaptured_ = false;
    bool runStateValid_ = false;
    std::uint64_t lastProgress_ = 0;
    Cycle lastProgressCycle_ = 0;
};

} // namespace cobra::sim

#endif // COBRA_SIM_SIMULATOR_HPP
