/**
 * @file
 * SweepEngine: parallel evaluation of independent (design, workload,
 * config) simulation points — the paper's Figs. 4/7/10 are exactly
 * such grids. Each point owns its Simulator, Topology, and SimConfig
 * (isolation is structural: no predictor or pipeline state is shared
 * between points; workload Programs are shared read-only), so points
 * can run concurrently on a work-stealing thread pool while results
 * are collected in deterministic submission order.
 *
 * Determinism guarantee: a point's SimResult depends only on its own
 * inputs, never on the number of worker threads or the schedule, so a
 * sweep at --jobs N is byte-identical to the same sweep at --jobs 1
 * (tested in tests/test_sweep.cpp).
 */

#ifndef COBRA_SIM_SWEEP_HPP
#define COBRA_SIM_SWEEP_HPP

#include <atomic>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/presets.hpp"
#include "sim/simulator.hpp"

namespace cobra::sim {

/**
 * Host-side throughput counters for one simulation point: how fast
 * the *host* chewed through simulated time (the FireSim-style metric
 * the paper's evaluation methodology leans on).
 */
struct HostCounters
{
    double wallSeconds = 0.0;
    /** Total simulated cycles, including warmup. */
    std::uint64_t simCycles = 0;
    /** Total committed instructions, including warmup. */
    std::uint64_t simInsts = 0;

    /** Simulated kilocycles per host second. */
    double
    kiloCyclesPerSec() const
    {
        return wallSeconds <= 0.0
                   ? 0.0
                   : static_cast<double>(simCycles) / 1e3 / wallSeconds;
    }

    /** Committed kilo-instructions per host second. */
    double
    kips() const
    {
        return wallSeconds <= 0.0
                   ? 0.0
                   : static_cast<double>(simInsts) / 1e3 / wallSeconds;
    }
};

/**
 * One unit of sweep work. The topology is provided as a factory and
 * built on the worker that runs the point (topologies are single-use
 * and hold learned state); the Program is borrowed read-only and must
 * outlive the sweep.
 */
struct SweepPoint
{
    std::string label;
    /** Builds this point's (fresh) topology on the worker. */
    std::function<bpu::Topology()> topology;
    const prog::Program* program = nullptr;
    SimConfig cfg;

    /**
     * How to drive the point's Simulator; defaults to Simulator::run()
     * when empty. The warp driver submits interval points whose hook
     * restores a checkpoint and runs a bounded sample instead.
     */
    std::function<SimResult(Simulator&)> execute;

    /** Convenience: a preset design on a workload program. */
    static SweepPoint preset(Design d, const prog::Program& program);
};

/** Result of one point, delivered in submission order. */
struct SweepOutcome
{
    std::string label;
    SimResult result;
    HostCounters host;
    /** Exception text when the point failed; empty on success. */
    std::string error;
    /**
     * Machine-readable failure class when the point failed (see
     * guard::errorClassOf: "config", "contract", "deadlock",
     * "checkpoint", "timeout", "sim", "internal"), or "interrupted"
     * when a stop flag cancelled the point before it started. Empty
     * on success.
     */
    std::string errorClass;
    /**
     * Which simulation loop ran the point: "specialized" when the
     * topology matched a registered fused loop, "generic" otherwise.
     * Empty when the point failed before its Simulator was built.
     */
    std::string loop;
    /**
     * Size of the lockstep replica group this point ran in (points
     * sharing a workload Program and oracle seed advance together
     * against the same decoded oracle stream); 1 when the point ran
     * alone or lockstep was disabled.
     */
    unsigned replicaGroup = 1;
    /** Text captured from the post-run hook (stats/area dumps). */
    std::string postRunText;
    /** CobraScope: this point's stats document (JSON object), rendered
     *  on the worker when cfg.output.statsJsonPath is set. */
    std::string statsJson;
    /** CobraScope: this point's Chrome trace-event lines, rendered on
     *  the worker when cfg.output.traceEventsPath is set. */
    std::string traceEvents;

    bool ok() const { return error.empty(); }
};

/**
 * Work-stealing pool over sweep points. Submission is cheap (points
 * are stored until run()); run() executes every point and returns
 * outcomes indexed exactly like the add() calls. With jobs() == 1 the
 * points run inline on the calling thread — the serial reference the
 * determinism tests compare against.
 */
class SweepEngine
{
  public:
    /**
     * Hook run on the worker after a point's Simulator finishes,
     * while the Simulator is still alive; whatever it writes to the
     * stream is returned as SweepOutcome::postRunText (kept per-point
     * so parallel runs print in submission order). The first argument
     * is the point's submission index — hooks running concurrently
     * may use it to write into pre-sized per-point slots without
     * locking.
     */
    using PostRun =
        std::function<void(std::size_t, Simulator&, const SimResult&,
                           const SweepPoint&, std::ostream&)>;

    /**
     * Hook run as each point completes, on the worker that ran it
     * (concurrently under --jobs N — the callee synchronises). The
     * serve daemon journals per-point completion here so a crash
     * mid-sweep loses at most the points still in flight.
     */
    using OnOutcome =
        std::function<void(std::size_t, const SweepOutcome&)>;

    /** @param jobs Worker count; 0 means defaultJobs(). */
    explicit SweepEngine(unsigned jobs = 0);

    /**
     * Default worker count: COBRA_JOBS when set (clamped to >= 1),
     * else the hardware concurrency, else 1.
     */
    static unsigned defaultJobs();

    unsigned jobs() const { return jobs_; }

    /**
     * Run @p num_tasks independent tasks on this engine's
     * work-stealing pool: task indices are dealt round-robin across
     * min(jobs, num_tasks) workers; each worker pops its own deque
     * from the back (LIFO keeps its cache warm) and steals from
     * other queues' fronts (FIFO takes the oldest, largest-remaining
     * work first). Tasks must write only their own result slots —
     * completion order is unspecified, but every task has finished
     * when the call returns. With one worker the tasks run inline in
     * index order on the calling thread (the deterministic,
     * zero-overhead path). This is the scheduling primitive under
     * run(); the wavefront batch evaluator (trace/batch_eval.hpp)
     * schedules its lane chunks on it too.
     */
    void runTasks(std::size_t num_tasks,
                  const std::function<void(std::size_t)>& task) const;

    /**
     * Report each point's completion to stderr (`--progress`):
     * `[completed/total] label: N kcps`. Off by default; stdout is
     * never touched, so sweep output stays byte-identical.
     */
    void setProgress(bool on) { progress_ = on; }

    /**
     * Cooperative cancellation: when @p flag becomes true, workers
     * finish the points they are running but start no new ones;
     * cancelled points report errorClass "interrupted". The flag is
     * polled between points only (async-signal safe to set from a
     * SIGINT/SIGTERM handler). Pass nullptr to clear.
     */
    void setStopFlag(const std::atomic<bool>* flag) { stop_ = flag; }

    /** Per-point completion hook (see OnOutcome). */
    void setOnOutcome(OnOutcome cb) { onOutcome_ = std::move(cb); }

    /**
     * Lockstep replica grouping (opt-in; COBRA_LOCKSTEP=1 enables it
     * process-wide): points that share a workload Program and oracle
     * seed — and use the default run() driver — are advanced together
     * in cycle slices, so all replicas walk the same decoded oracle
     * stream while it is hot in host caches. Purely a host-side
     * schedule: every replica's SimResult is bit-identical to a solo
     * run (tested in test_sweep.cpp). A replica that throws is
     * degrouped with its usual errorClass and the rest of the group
     * continues. Off by default: on the 1-CPU reference container the
     * rotation costs about as much as the shared-stream residency
     * saves (oracle generation is ~3.5% of sim time; see
     * docs/PERFORMANCE.md "Lockstep multi-replica sweeps").
     */
    void setLockstep(bool on) { lockstep_ = on; }

    bool lockstep() const { return lockstep_; }

    /**
     * Cycles each replica advances per lockstep turn. Small enough
     * that group members stay within a cache-resident window of the
     * shared oracle stream, large enough to amortise the rotation.
     * Exposed for tests; the default is fine for benchmarks.
     */
    void setLockstepSlice(Cycle c) { lockstepSlice_ = c < 1 ? 1 : c; }

    /** Queue a point; returns its submission index. */
    std::size_t add(SweepPoint p);

    std::size_t pending() const { return points_.size(); }

    /**
     * Run all queued points and clear the queue. Outcomes are ordered
     * by submission index regardless of worker schedule. A point that
     * throws reports through SweepOutcome::error; the sweep continues.
     */
    std::vector<SweepOutcome> run(const PostRun& postRun = nullptr);

  private:
    SweepOutcome runPoint(std::size_t idx, const SweepPoint& pt,
                          const PostRun& postRun) const;

    /** Post-run bookkeeping shared by the solo and lockstep paths:
     *  loop variant, postRun hook, stats/trace rendering. */
    void finishPoint(std::size_t idx, const SweepPoint& pt,
                     Simulator& s, SweepOutcome& out,
                     const PostRun& postRun) const;

    /** Run a lockstep replica group (>= 2 points, same Program and
     *  oracle seed); returns one outcome per member, ordered like
     *  @p idxs. */
    std::vector<SweepOutcome>
    runLockstepGroup(const std::vector<std::size_t>& idxs,
                     const std::vector<SweepPoint>& points,
                     const PostRun& postRun) const;

    /** Partition point indices into schedulable tasks: lockstep
     *  groups when enabled, singletons otherwise. */
    std::vector<std::vector<std::size_t>>
    buildTasks(const std::vector<SweepPoint>& points) const;

    bool stopped() const
    {
        return stop_ != nullptr &&
               stop_->load(std::memory_order_relaxed);
    }

    unsigned jobs_;
    bool progress_ = false;
    bool lockstep_ = false;
    Cycle lockstepSlice_ = 8192;
    const std::atomic<bool>* stop_ = nullptr;
    OnOutcome onOutcome_;
    std::vector<SweepPoint> points_;
};

/**
 * Write sweep outcomes as a machine-readable JSON document:
 * per-point simulation metrics plus host throughput counters. The
 * parent directory must exist. @p extra, when non-empty, is spliced
 * verbatim as additional top-level fields (callers pass pre-formatted
 * `"key": value` pairs).
 */
void writeSweepJson(const std::string& path, const std::string& name,
                    const std::vector<SweepOutcome>& outcomes,
                    unsigned jobs, const std::string& extra = "");

/**
 * Render one point's full CobraScope stats document: the SimResult
 * (every visitFields field plus derived ipc/mpki/accuracy) and the
 * complete stat-group hierarchy from the simulator's registry. The
 * returned string is a JSON object indented for splicing into
 * writeStatsJson's "points" array.
 */
std::string renderPointStats(const std::string& label,
                             const Simulator& s, const SimResult& r);

/**
 * Variant for callers that no longer hold a live Simulator (the warp
 * driver, whose interval simulators die on the sweep workers):
 * @p groups_json is a pre-rendered stat-group hierarchy object at the
 * indentation StatRegistry::writeJson(os, 6) would produce.
 */
std::string renderPointStats(const std::string& label,
                             const SimResult& r,
                             const std::string& groups_json);

/**
 * Write the per-point stats documents gathered in
 * SweepOutcome::statsJson as one JSON file (`--stats-json`). Points
 * appear in submission order, so parallel sweeps emit byte-identical
 * documents. Failed or stats-less points appear as error stubs.
 */
void writeStatsJson(const std::string& path, const std::string& tool,
                    const std::vector<SweepOutcome>& outcomes,
                    unsigned jobs);

/**
 * Write the per-point Chrome trace fragments gathered in
 * SweepOutcome::traceEvents as one trace file (`--trace-events`),
 * loadable in Perfetto / chrome://tracing. Each point renders as its
 * own process (pid = submission index); submission order makes
 * parallel sweeps byte-identical.
 */
void writeTraceEvents(const std::string& path,
                      const std::vector<SweepOutcome>& outcomes);

/** JSON string escaping for writeSweepJson-style emitters. */
std::string jsonEscape(const std::string& s);

/**
 * Emit every SimResult field (snake_case keys from visitFields'
 * names) followed by the derived ipc/mpki/accuracy ratios, one
 * `pad"key": value` line each. The final line carries a comma iff
 * @p trailing_comma, so callers can append further members or close
 * the object. Shared by the sweep writers and the cobra_serve result
 * documents, so every consumer renders result fields identically.
 */
void writeResultFields(std::ostream& os, const SimResult& r,
                       const std::string& pad, bool trailing_comma);

} // namespace cobra::sim

#endif // COBRA_SIM_SWEEP_HPP
