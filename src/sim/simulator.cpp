#include "sim/simulator.hpp"

#include "bpu/specialize.hpp"
#include "sim/design_spec.hpp"
#include "warp/state_io.hpp"

namespace cobra::sim {

const char*
specializeModeName(SpecializeMode m)
{
    switch (m) {
      case SpecializeMode::Auto: return "auto";
      case SpecializeMode::Off: return "off";
      case SpecializeMode::Require: return "require";
    }
    return "?";
}

bool
specializeAvailable(const bpu::Topology& topo, const SimConfig& cfg)
{
    // Audit and fault injection wrap every component in a guard whose
    // typeKey is empty, so the Simulator's composed predictor will
    // refuse to fuse; mirror that here without building one.
    if (cfg.audit || cfg.faultRate > 0.0)
        return false;
    const std::string key = topo.specializedKey();
    return !key.empty() && bpu::spec::isRegisteredKey(key);
}

void
OutputConfig::validate() const
{
    auto require = [](bool ok, const char* field, const char* detail) {
        if (!ok)
            throw guard::ConfigError(field, detail);
    };
    require(traceEventsPath.empty()
                ? traceStartCycle == 0 && traceCycles == 0
                : true,
            "output.traceStartCycle",
            "trace window flags require --trace-events");
    auto distinct = [&](const std::string& a, const std::string& b,
                        const char* field) {
        require(a.empty() || b.empty() || a != b, field,
                "output paths must be distinct files");
    };
    distinct(resultsJsonPath, statsJsonPath, "output.statsJsonPath");
    distinct(resultsJsonPath, traceEventsPath, "output.traceEventsPath");
    distinct(statsJsonPath, traceEventsPath, "output.traceEventsPath");
}

void
SimConfig::validate(bool strict) const
{
    auto require = [](bool ok, const char* field, const char* detail) {
        if (!ok)
            throw guard::ConfigError(field, detail);
    };
    require(frontend.fetchWidth >= 1 &&
                frontend.fetchWidth <= bpu::kMaxFetchWidth,
            "frontend.fetchWidth", "must be in [1, 8]");
    require(frontend.fetchBufferInsts >= frontend.fetchWidth,
            "frontend.fetchBufferInsts",
            "must hold at least one fetch packet");
    require(backend.coreWidth >= 1, "backend.coreWidth", "must be >= 1");
    require(backend.robEntries >= 1, "backend.robEntries",
            "must be >= 1");
    require(maxInsts >= 1, "maxInsts", "must be >= 1");
    require(maxCycles >= 1, "maxCycles", "must be >= 1");
    require(deadlockCycles >= 1, "deadlockCycles",
            "must be >= 1 (the watchdog cannot be disabled; raise it "
            "instead)");
    require(faultRate >= 0.0 && faultRate <= 1.0, "faultRate",
            "must be a probability in [0, 1]");
    output.validate();
    bpu.validate();
    if (strict) {
        require(warmupInsts <= maxInsts, "warmupInsts",
                "exceeds the measured-instruction budget (maxInsts); "
                "the measured region would be empty");
    }
}

Simulator::Simulator(const prog::Program& program, bpu::Topology topo,
                     const SimConfig& cfg)
    : cfg_(cfg), program_(program)
{
    // Structural validation only: deliberate experiments (e.g. a
    // warmup-only run) may waive the strict heuristics.
    cfg_.validate(false);

    faults_ = std::make_unique<guard::FaultEngine>(cfg_.faultRate,
                                                   cfg_.faultSeed);
    // One wrapping path for every construction route (presets, spec
    // files, search candidates): the builder's guard hook applies the
    // fault injector innermost and the contract auditor outermost.
    applyGuardWrappers(topo,
                       GuardHooks{cfg_.audit, faults_.get(), &auditors_});

    oracle_ = std::make_unique<exec::Oracle>(program, cfg.oracleSeed);
    if (cfg_.replayTrace) {
        trace::validateReplayMeta(cfg_.replayTrace->meta, program,
                                  cfg_.oracleSeed,
                                  cfg_.warmupInsts + cfg_.maxInsts);
        replayCursor_ =
            std::make_unique<trace::TraceCursor>(cfg_.replayTrace);
        oracle_->bindCfSource(replayCursor_.get());
    }
    caches_ = std::make_unique<core::CacheHierarchy>(cfg.caches);
    bpu_ = std::make_unique<bpu::BranchPredictorUnit>(std::move(topo),
                                                      cfg.bpu);
    // Bind the fused (devirtualized) simulation loop when requested
    // and available. Guard wrappers installed above keep the generic
    // path (they must observe every virtual call), as do topologies
    // whose tuple is not registered. Bit-identical either way.
    if (cfg_.specialize != SpecializeMode::Off)
        bpu_->predictor().specialize();
    if (cfg_.specialize == SpecializeMode::Require &&
        !bpu_->predictor().specialized()) {
        throw guard::ConfigError(
            "specialize",
            "the fused loop is unavailable for this run (unregistered "
            "component tuple, or audit/fault-injection wrappers are "
            "active); drop the explicit specialize request or register "
            "the tuple (see docs/PERFORMANCE.md)");
    }

    frontend_ = std::make_unique<core::Frontend>(program, *oracle_, *bpu_,
                                                 *caches_, cfg.frontend);
    backend_ = std::make_unique<core::Backend>(*oracle_, *bpu_, *frontend_,
                                               *caches_, cfg.backend);

    // ---- CobraScope: the unified stat registry ------------------------
    registry_.add(frontend_->stats());
    registry_.add(backend_->stats());
    registry_.add(bpu_->stats());
    for (const auto& att : bpu_->predictor().attribution())
        registry_.add(att->group);
    registry_.add("caches.l1i", caches_->l1i().stats());
    registry_.add("caches.l1d", caches_->l1d().stats());
    registry_.add("caches.l2", caches_->l2().stats());
    registry_.add("caches.l3", caches_->l3().stats());
    registry_.add(faults_->stats());

    if (cfg_.output.tracing()) {
        tracer_ = std::make_unique<scope::Tracer>(
            scope::TraceWindow{cfg_.output.traceStartCycle,
                               cfg_.output.traceCycles});
        std::vector<std::string> names;
        for (const auto* c : bpu_->predictor().components())
            names.push_back(c->name());
        tracer_->setComponentNames(std::move(names));
        tracer_->setCycle(now_);
        frontend_->setTracer(tracer_.get());
        backend_->setTracer(tracer_.get());
        bpu_->setTracer(tracer_.get());
    }
}

void
Simulator::tickOnce()
{
    if (tracer_ != nullptr)
        tracer_->setCycle(now_);
    frontend_->tick(now_);
    backend_->tick(now_);
    bpu_->tick();
    ++now_;
}

Simulator::Snapshot
Simulator::snapshot() const
{
    Snapshot s;
    s.insts = backend_->committedInsts();
    s.branches = backend_->committedBranches();
    s.cfis = backend_->committedCfis();
    s.condMisp = backend_->condMispredicts();
    s.jalrMisp = backend_->jalrMispredicts();
    s.cycles = now_;
    return s;
}

guard::PostMortem
Simulator::buildPostMortem(std::uint64_t since_progress) const
{
    guard::PostMortem pm;
    pm.cycle = now_;
    pm.noProgressCycles = since_progress;
    pm.deadlockThreshold = cfg_.deadlockCycles;
    pm.committedInsts = backend_->committedInsts();

    const core::Backend::RobHeadView head = backend_->robHead();
    pm.robEntries = backend_->robSize();
    pm.robHeadValid = head.valid;
    pm.robHeadPc = head.pc;
    pm.robHeadSeq = head.seq;
    pm.robHeadState = head.state;
    pm.robHeadWrongPath = head.wrongPath;
    pm.robHeadFtq = head.ftq;

    pm.fetchPc = frontend_->fetchPc();
    pm.onOraclePath = frontend_->onOraclePath();
    pm.fetchBufferInsts = frontend_->bufferSize();
    for (const auto& p : frontend_->inFlightPackets())
        pm.fetchPackets.push_back({p.pc, p.stage, p.stallUntil});
    for (const auto& r : frontend_->recentRedirects())
        pm.recentRedirects.push_back({r.pc, r.cycle});

    pm.historyFileSize = bpu_->historyFile().size();
    pm.historyFileCapacity = bpu_->historyFile().capacity();
    pm.repairWalkBusy = bpu_->walkBusy();
    return pm;
}

void
Simulator::finishResult(SimResult& r, bool deadlocked,
                        std::uint64_t since_progress) const
{
    r.faultsInjected = faults_->faultsInjected();
    r.updatesDropped = faults_->droppedUpdates();
    for (const auto* a : auditors_)
        r.auditChecks += a->checks();
    if (deadlocked) {
        r.deadlocked = true;
        r.postMortem = buildPostMortem(since_progress);
        r.diagnostics = r.postMortem.format();
    }
}

bool
Simulator::stalled()
{
    if (backend_->committedInsts() != lastProgress_) {
        lastProgress_ = backend_->committedInsts();
        lastProgressCycle_ = now_;
        return false;
    }
    return now_ - lastProgressCycle_ > cfg_.deadlockCycles;
}

SimResult
Simulator::measuredResult(bool deadlocked)
{
    SimResult r;
    const Snapshot end = snapshot();
    r.cycles = end.cycles - base_.cycles;
    r.insts = end.insts - base_.insts;
    r.condBranches = end.branches - base_.branches;
    r.cfis = end.cfis - base_.cfis;
    r.condMispredicts = end.condMisp - base_.condMisp;
    r.jalrMispredicts = end.jalrMisp - base_.jalrMisp;
    r.sfbConversions = backend_->sfbConversions();
    r.ghistReplays = frontend_->stats().get("ghist_replays");
    r.packetsKilled = frontend_->stats().get("packets_killed");
    finishResult(r, deadlocked, now_ - lastProgressCycle_);
    return r;
}

SimResult
Simulator::run()
{
    SimResult r;
    if (!runStateValid_) {
        lastProgress_ = backend_->committedInsts();
        lastProgressCycle_ = now_;
        runStateValid_ = true;
    }

    // ---- Warmup ---------------------------------------------------------
    while (!baseCaptured_ &&
           backend_->committedInsts() < cfg_.warmupInsts &&
           now_ < cfg_.maxCycles) {
        tickOnce();
        if (stalled()) {
            // Deadlocked before the measured region: report with zero
            // metrics rather than spinning to maxCycles.
            finishResult(r, true, now_ - lastProgressCycle_);
            return r;
        }
    }
    if (!baseCaptured_) {
        base_ = snapshot();
        baseCaptured_ = true;
    }

    // ---- Measured region -------------------------------------------------
    bool deadlocked = false;
    const std::uint64_t target = cfg_.warmupInsts + cfg_.maxInsts;
    while (backend_->committedInsts() < target && now_ < cfg_.maxCycles) {
        tickOnce();
        if (stalled()) {
            deadlocked = true; // No commit progress: abort the run.
            break;
        }
    }
    return measuredResult(deadlocked);
}

bool
Simulator::advanceTo(Cycle stop_cycle)
{
    if (!runStateValid_) {
        lastProgress_ = backend_->committedInsts();
        lastProgressCycle_ = now_;
        runStateValid_ = true;
    }

    while (!baseCaptured_ &&
           backend_->committedInsts() < cfg_.warmupInsts &&
           now_ < cfg_.maxCycles && now_ < stop_cycle) {
        tickOnce();
        if (stalled())
            return false;
    }
    // Capture the measurement base exactly when run() would: at the
    // warmup loop's own exit condition, never at a stop_cycle pause.
    if (!baseCaptured_ &&
        (backend_->committedInsts() >= cfg_.warmupInsts ||
         now_ >= cfg_.maxCycles)) {
        base_ = snapshot();
        baseCaptured_ = true;
    }
    if (!baseCaptured_)
        return true;

    const std::uint64_t target = cfg_.warmupInsts + cfg_.maxInsts;
    while (backend_->committedInsts() < target &&
           now_ < cfg_.maxCycles && now_ < stop_cycle) {
        tickOnce();
        if (stalled())
            return false;
    }
    return backend_->committedInsts() < target && now_ < cfg_.maxCycles;
}

SimResult
Simulator::finishRun()
{
    if (!baseCaptured_) {
        // advanceTo() can only bail out before the measurement base is
        // captured on a warmup stall: report run()'s warmup-deadlock
        // result (zero metrics, deadlocked flag set).
        SimResult r;
        finishResult(r, true, now_ - lastProgressCycle_);
        return r;
    }
    // advanceTo() returned false either because the budget/cycle limit
    // was reached (the loop conditions below are false) or because the
    // watchdog saw a stall mid-region — exactly run()'s dichotomy.
    const std::uint64_t target = cfg_.warmupInsts + cfg_.maxInsts;
    const bool deadlocked =
        backend_->committedInsts() < target && now_ < cfg_.maxCycles;
    return measuredResult(deadlocked);
}

SimResult
Simulator::runInterval(std::uint64_t warmup_cycles,
                       std::uint64_t measure_insts)
{
    SimResult r;
    lastProgress_ = backend_->committedInsts();
    lastProgressCycle_ = now_;
    runStateValid_ = true;

    // ---- Detailed warmup (cycle-denominated, discarded) -----------------
    const Cycle warmupEnd = now_ + warmup_cycles;
    while (now_ < warmupEnd && now_ < cfg_.maxCycles) {
        tickOnce();
        if (stalled()) {
            finishResult(r, true, now_ - lastProgressCycle_);
            return r;
        }
    }
    base_ = snapshot();
    baseCaptured_ = true;

    // ---- Measured sample -------------------------------------------------
    bool deadlocked = false;
    const std::uint64_t target = base_.insts + measure_insts;
    while (backend_->committedInsts() < target && now_ < cfg_.maxCycles) {
        tickOnce();
        if (stalled()) {
            deadlocked = true;
            break;
        }
    }
    return measuredResult(deadlocked);
}

void
Simulator::saveStats(warp::StateWriter& w) const
{
    w.section("stats");
    w.u64(registry_.nodes().size());
    for (const scope::StatRegistry::Node& n : registry_.nodes()) {
        w.str(n.path);
        w.u64(n.group->entries().size());
        for (const StatGroup::Entry& e : n.group->entries()) {
            if (e.counter != nullptr) {
                w.u8(0);
                w.u64(e.counter->value());
            } else {
                w.u8(1);
                std::vector<std::uint64_t> buckets;
                buckets.reserve(e.histogram->numBuckets());
                for (std::size_t i = 0; i < e.histogram->numBuckets();
                     ++i)
                    buckets.push_back(e.histogram->bucket(i));
                w.vecU(buckets);
                w.u64(e.histogram->samples());
                w.u64(e.histogram->sum());
            }
        }
    }
}

void
Simulator::restoreStats(warp::StateReader& r)
{
    r.section("stats");
    if (r.u64() != registry_.nodes().size())
        r.fail("stat-group count does not match this configuration");
    for (const scope::StatRegistry::Node& n : registry_.nodes()) {
        if (r.str() != n.path)
            r.fail("stat group order diverges at '" + n.path + "'");
        if (r.u64() != n.group->entries().size())
            r.fail("stat count differs in group '" + n.path + "'");
        for (const StatGroup::Entry& e : n.group->entries()) {
            const std::uint8_t kind = r.u8();
            if (e.counter != nullptr) {
                if (kind != 0)
                    r.fail("expected a counter in group '" + n.path +
                           "'");
                e.counter->set(r.u64());
            } else {
                if (kind != 1)
                    r.fail("expected a histogram in group '" + n.path +
                           "'");
                const std::vector<std::uint64_t> buckets =
                    r.vecU<std::uint64_t>();
                const std::uint64_t samples = r.u64();
                const std::uint64_t sum = r.u64();
                if (buckets.size() != e.histogram->numBuckets())
                    r.fail("histogram bucket count differs in group '" +
                           n.path + "'");
                e.histogram->setState(buckets, samples, sum);
            }
        }
    }
}

void
Simulator::saveState(warp::StateWriter& w) const
{
    w.section("sim");
    w.u64(now_);
    w.boolean(runStateValid_);
    w.u64(lastProgress_);
    w.u64(lastProgressCycle_);
    w.boolean(baseCaptured_);
    w.u64(base_.insts);
    w.u64(base_.branches);
    w.u64(base_.cfis);
    w.u64(base_.condMisp);
    w.u64(base_.jalrMisp);
    w.u64(base_.cycles);

    w.section("oracle");
    oracle_->saveState(w);
    w.section("caches");
    caches_->saveState(w);
    bpu_->saveState(w); // Writes its own "bpu" section.
    w.section("frontend");
    frontend_->saveState(w);
    w.section("backend");
    backend_->saveState(w);
    w.section("faults");
    faults_->saveState(w);
    saveStats(w);
}

void
Simulator::restoreState(warp::StateReader& r)
{
    r.section("sim");
    now_ = r.u64();
    runStateValid_ = r.boolean();
    lastProgress_ = r.u64();
    lastProgressCycle_ = r.u64();
    baseCaptured_ = r.boolean();
    base_.insts = r.u64();
    base_.branches = r.u64();
    base_.cfis = r.u64();
    base_.condMisp = r.u64();
    base_.jalrMisp = r.u64();
    base_.cycles = r.u64();

    r.section("oracle");
    oracle_->restoreState(r);
    r.section("caches");
    caches_->restoreState(r);
    bpu_->restoreState(r); // Verifies its own "bpu" section.
    r.section("frontend");
    frontend_->restoreState(r);
    r.section("backend");
    backend_->restoreState(r);
    r.section("faults");
    faults_->restoreState(r);
    restoreStats(r);
}

std::uint64_t
Simulator::stateFingerprint() const
{
    // Serialize the restore-relevant configuration through the same
    // byte layer and hash it: a checkpoint produced under a different
    // program image, composition, or core geometry must not restore.
    warp::StateWriter w;
    w.u64(program_.size());
    w.u64(program_.base());
    w.u64(program_.entry());
    w.u64(cfg_.oracleSeed);
    w.u32(cfg_.frontend.fetchWidth);
    w.u32(cfg_.frontend.fetchBufferInsts);
    w.u32(cfg_.frontend.rasEntries);
    w.u8(static_cast<std::uint8_t>(cfg_.frontend.ghistMode));
    w.boolean(cfg_.frontend.serializeFetch);
    w.u32(cfg_.backend.coreWidth);
    w.u32(cfg_.backend.robEntries);
    w.boolean(cfg_.backend.sfbEnabled);
    w.boolean(cfg_.audit);
    w.f64(cfg_.faultRate);
    for (const auto* c : bpu_->predictor().components()) {
        w.str(c->name());
        w.u64(c->storageBits());
    }
    return warp::fnv1a(w.bytes().data(), w.bytes().size());
}

SimResult
Simulator::runChecked()
{
    SimResult r = run();
    if (r.deadlocked) {
        throw guard::DeadlockError(
            "pipeline deadlock: no commit progress for " +
                std::to_string(cfg_.deadlockCycles) +
                " cycles at cycle " + std::to_string(now_),
            r.diagnostics);
    }
    return r;
}

} // namespace cobra::sim
