#include "sim/simulator.hpp"

namespace cobra::sim {

void
OutputConfig::validate() const
{
    auto require = [](bool ok, const char* field, const char* detail) {
        if (!ok)
            throw guard::ConfigError(field, detail);
    };
    require(traceEventsPath.empty()
                ? traceStartCycle == 0 && traceCycles == 0
                : true,
            "output.traceStartCycle",
            "trace window flags require --trace-events");
    auto distinct = [&](const std::string& a, const std::string& b,
                        const char* field) {
        require(a.empty() || b.empty() || a != b, field,
                "output paths must be distinct files");
    };
    distinct(resultsJsonPath, statsJsonPath, "output.statsJsonPath");
    distinct(resultsJsonPath, traceEventsPath, "output.traceEventsPath");
    distinct(statsJsonPath, traceEventsPath, "output.traceEventsPath");
}

void
SimConfig::validate(bool strict) const
{
    auto require = [](bool ok, const char* field, const char* detail) {
        if (!ok)
            throw guard::ConfigError(field, detail);
    };
    require(frontend.fetchWidth >= 1 &&
                frontend.fetchWidth <= bpu::kMaxFetchWidth,
            "frontend.fetchWidth", "must be in [1, 8]");
    require(frontend.fetchBufferInsts >= frontend.fetchWidth,
            "frontend.fetchBufferInsts",
            "must hold at least one fetch packet");
    require(backend.coreWidth >= 1, "backend.coreWidth", "must be >= 1");
    require(backend.robEntries >= 1, "backend.robEntries",
            "must be >= 1");
    require(maxInsts >= 1, "maxInsts", "must be >= 1");
    require(maxCycles >= 1, "maxCycles", "must be >= 1");
    require(deadlockCycles >= 1, "deadlockCycles",
            "must be >= 1 (the watchdog cannot be disabled; raise it "
            "instead)");
    require(faultRate >= 0.0 && faultRate <= 1.0, "faultRate",
            "must be a probability in [0, 1]");
    output.validate();
    bpu.validate();
    if (strict) {
        require(warmupInsts <= maxInsts, "warmupInsts",
                "exceeds the measured-instruction budget (maxInsts); "
                "the measured region would be empty");
    }
}

Simulator::Simulator(const prog::Program& program, bpu::Topology topo,
                     const SimConfig& cfg)
    : cfg_(cfg), program_(program)
{
    // Structural validation only: deliberate experiments (e.g. a
    // warmup-only run) may waive the strict heuristics.
    cfg_.validate(false);

    faults_ = std::make_unique<guard::FaultEngine>(cfg_.faultRate,
                                                   cfg_.faultSeed);
    if (faults_->enabled()) {
        topo.wrapEach(
            [this](std::unique_ptr<bpu::PredictorComponent> c)
                -> std::unique_ptr<bpu::PredictorComponent> {
                return std::make_unique<guard::FaultInjector>(
                    std::move(c), *faults_);
            });
    }
    if (cfg_.audit) {
        // Auditor outermost: it observes the composer's calls, not the
        // injector's perturbations, so injected faults are (correctly)
        // not reported as contract violations.
        topo.wrapEach(
            [this](std::unique_ptr<bpu::PredictorComponent> c)
                -> std::unique_ptr<bpu::PredictorComponent> {
                auto a = std::make_unique<guard::ContractAuditor>(
                    std::move(c));
                auditors_.push_back(a.get());
                return a;
            });
    }

    oracle_ = std::make_unique<exec::Oracle>(program, cfg.oracleSeed);
    caches_ = std::make_unique<core::CacheHierarchy>(cfg.caches);
    bpu_ = std::make_unique<bpu::BranchPredictorUnit>(std::move(topo),
                                                      cfg.bpu);
    frontend_ = std::make_unique<core::Frontend>(program, *oracle_, *bpu_,
                                                 *caches_, cfg.frontend);
    backend_ = std::make_unique<core::Backend>(*oracle_, *bpu_, *frontend_,
                                               *caches_, cfg.backend);

    // ---- CobraScope: the unified stat registry ------------------------
    registry_.add(frontend_->stats());
    registry_.add(backend_->stats());
    registry_.add(bpu_->stats());
    for (const auto& att : bpu_->predictor().attribution())
        registry_.add(att->group);
    registry_.add("caches.l1i", caches_->l1i().stats());
    registry_.add("caches.l1d", caches_->l1d().stats());
    registry_.add("caches.l2", caches_->l2().stats());
    registry_.add("caches.l3", caches_->l3().stats());
    registry_.add(faults_->stats());

    if (cfg_.output.tracing()) {
        tracer_ = std::make_unique<scope::Tracer>(
            scope::TraceWindow{cfg_.output.traceStartCycle,
                               cfg_.output.traceCycles});
        std::vector<std::string> names;
        for (const auto* c : bpu_->predictor().components())
            names.push_back(c->name());
        tracer_->setComponentNames(std::move(names));
        tracer_->setCycle(now_);
        frontend_->setTracer(tracer_.get());
        backend_->setTracer(tracer_.get());
        bpu_->setTracer(tracer_.get());
    }
}

void
Simulator::tickOnce()
{
    if (tracer_ != nullptr)
        tracer_->setCycle(now_);
    frontend_->tick(now_);
    backend_->tick(now_);
    bpu_->tick();
    ++now_;
}

Simulator::Snapshot
Simulator::snapshot() const
{
    Snapshot s;
    s.insts = backend_->committedInsts();
    s.branches = backend_->committedBranches();
    s.cfis = backend_->committedCfis();
    s.condMisp = backend_->condMispredicts();
    s.jalrMisp = backend_->jalrMispredicts();
    s.cycles = now_;
    return s;
}

guard::PostMortem
Simulator::buildPostMortem(std::uint64_t since_progress) const
{
    guard::PostMortem pm;
    pm.cycle = now_;
    pm.noProgressCycles = since_progress;
    pm.deadlockThreshold = cfg_.deadlockCycles;
    pm.committedInsts = backend_->committedInsts();

    const core::Backend::RobHeadView head = backend_->robHead();
    pm.robEntries = backend_->robSize();
    pm.robHeadValid = head.valid;
    pm.robHeadPc = head.pc;
    pm.robHeadSeq = head.seq;
    pm.robHeadState = head.state;
    pm.robHeadWrongPath = head.wrongPath;
    pm.robHeadFtq = head.ftq;

    pm.fetchPc = frontend_->fetchPc();
    pm.onOraclePath = frontend_->onOraclePath();
    pm.fetchBufferInsts = frontend_->bufferSize();
    for (const auto& p : frontend_->inFlightPackets())
        pm.fetchPackets.push_back({p.pc, p.stage, p.stallUntil});
    for (const auto& r : frontend_->recentRedirects())
        pm.recentRedirects.push_back({r.pc, r.cycle});

    pm.historyFileSize = bpu_->historyFile().size();
    pm.historyFileCapacity = bpu_->historyFile().capacity();
    pm.repairWalkBusy = bpu_->walkBusy();
    return pm;
}

void
Simulator::finishResult(SimResult& r, bool deadlocked,
                        std::uint64_t since_progress) const
{
    r.faultsInjected = faults_->faultsInjected();
    r.updatesDropped = faults_->droppedUpdates();
    for (const auto* a : auditors_)
        r.auditChecks += a->checks();
    if (deadlocked) {
        r.deadlocked = true;
        r.postMortem = buildPostMortem(since_progress);
        r.diagnostics = r.postMortem.format();
    }
}

SimResult
Simulator::run()
{
    SimResult r;
    std::uint64_t lastProgress = backend_->committedInsts();
    Cycle lastProgressCycle = now_;
    auto stalled = [&]() -> bool {
        if (backend_->committedInsts() != lastProgress) {
            lastProgress = backend_->committedInsts();
            lastProgressCycle = now_;
            return false;
        }
        return now_ - lastProgressCycle > cfg_.deadlockCycles;
    };

    // ---- Warmup ---------------------------------------------------------
    while (backend_->committedInsts() < cfg_.warmupInsts &&
           now_ < cfg_.maxCycles) {
        tickOnce();
        if (stalled()) {
            // Deadlocked before the measured region: report with zero
            // metrics rather than spinning to maxCycles.
            finishResult(r, true, now_ - lastProgressCycle);
            return r;
        }
    }
    const Snapshot base = snapshot();

    // ---- Measured region -------------------------------------------------
    bool deadlocked = false;
    const std::uint64_t target = cfg_.warmupInsts + cfg_.maxInsts;
    while (backend_->committedInsts() < target && now_ < cfg_.maxCycles) {
        tickOnce();
        if (stalled()) {
            deadlocked = true; // No commit progress: abort the run.
            break;
        }
    }

    const Snapshot end = snapshot();
    r.cycles = end.cycles - base.cycles;
    r.insts = end.insts - base.insts;
    r.condBranches = end.branches - base.branches;
    r.cfis = end.cfis - base.cfis;
    r.condMispredicts = end.condMisp - base.condMisp;
    r.jalrMispredicts = end.jalrMisp - base.jalrMisp;
    r.sfbConversions = backend_->sfbConversions();
    r.ghistReplays = frontend_->stats().get("ghist_replays");
    r.packetsKilled = frontend_->stats().get("packets_killed");
    finishResult(r, deadlocked, now_ - lastProgressCycle);
    return r;
}

SimResult
Simulator::runChecked()
{
    SimResult r = run();
    if (r.deadlocked) {
        throw guard::DeadlockError(
            "pipeline deadlock: no commit progress for " +
                std::to_string(cfg_.deadlockCycles) +
                " cycles at cycle " + std::to_string(now_),
            r.diagnostics);
    }
    return r;
}

} // namespace cobra::sim
