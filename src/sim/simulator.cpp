#include "sim/simulator.hpp"

namespace cobra::sim {

Simulator::Simulator(const prog::Program& program, bpu::Topology topo,
                     const SimConfig& cfg)
    : cfg_(cfg), program_(program)
{
    oracle_ = std::make_unique<exec::Oracle>(program, cfg.oracleSeed);
    caches_ = std::make_unique<core::CacheHierarchy>(cfg.caches);
    bpu_ = std::make_unique<bpu::BranchPredictorUnit>(std::move(topo),
                                                      cfg.bpu);
    frontend_ = std::make_unique<core::Frontend>(program, *oracle_, *bpu_,
                                                 *caches_, cfg.frontend);
    backend_ = std::make_unique<core::Backend>(*oracle_, *bpu_, *frontend_,
                                               *caches_, cfg.backend);
}

void
Simulator::tickOnce()
{
    frontend_->tick(now_);
    backend_->tick(now_);
    bpu_->tick();
    ++now_;
}

Simulator::Snapshot
Simulator::snapshot() const
{
    Snapshot s;
    s.insts = backend_->committedInsts();
    s.branches = backend_->committedBranches();
    s.cfis = backend_->committedCfis();
    s.condMisp = backend_->condMispredicts();
    s.jalrMisp = backend_->jalrMispredicts();
    s.cycles = now_;
    return s;
}

SimResult
Simulator::run()
{
    // ---- Warmup ---------------------------------------------------------
    std::uint64_t lastProgress = 0;
    Cycle lastProgressCycle = 0;
    while (backend_->committedInsts() < cfg_.warmupInsts &&
           now_ < cfg_.maxCycles) {
        tickOnce();
    }
    const Snapshot base = snapshot();

    // ---- Measured region -------------------------------------------------
    SimResult r;
    const std::uint64_t target = cfg_.warmupInsts + cfg_.maxInsts;
    lastProgress = backend_->committedInsts();
    lastProgressCycle = now_;
    while (backend_->committedInsts() < target && now_ < cfg_.maxCycles) {
        tickOnce();
        if (backend_->committedInsts() != lastProgress) {
            lastProgress = backend_->committedInsts();
            lastProgressCycle = now_;
        } else if (now_ - lastProgressCycle > 100'000) {
            r.deadlocked = true; // No commit progress: abort the run.
            break;
        }
    }

    const Snapshot end = snapshot();
    r.cycles = end.cycles - base.cycles;
    r.insts = end.insts - base.insts;
    r.condBranches = end.branches - base.branches;
    r.cfis = end.cfis - base.cfis;
    r.condMispredicts = end.condMisp - base.condMisp;
    r.jalrMispredicts = end.jalrMisp - base.jalrMisp;
    r.sfbConversions = backend_->sfbConversions();
    r.ghistReplays = frontend_->stats().get("ghist_replays");
    r.packetsKilled = frontend_->stats().get("packets_killed");
    return r;
}

} // namespace cobra::sim
