#include "sim/presets.hpp"

#include "components/bim.hpp"
#include "components/btb.hpp"
#include "components/gtag.hpp"
#include "components/loop.hpp"
#include "components/tage.hpp"
#include "components/tourney.hpp"

namespace cobra::sim {

using namespace cobra::comps;

const char*
designName(Design d)
{
    switch (d) {
      case Design::Tourney: return "Tournament";
      case Design::B2: return "B2";
      case Design::TageL: return "TAGE-L";
      case Design::RefBig: return "REF-BIG";
    }
    return "?";
}

std::string
designDescription(Design d)
{
    switch (d) {
      case Design::Tourney:
        return "32-bit global, 256x32-bit local histories; "
               "2K-entry BTB w. 16K-entry 2-bit BHT; "
               "1K tournament counters";
      case Design::B2:
        return "16-bit global history; "
               "2K partially tagged + 16K untagged counters; "
               "2K-entry BTB";
      case Design::TageL:
        return "64-bit global history; 7 TAGE tables; "
               "2K-entry BTB w. 32-entry uBTB; "
               "256-entry loop predictor";
      case Design::RefBig:
        return "commercial-class stand-in: 8 large TAGE tables, "
               "4K-entry BTB, loop predictor, wide core";
    }
    return "";
}

std::string
designTopologyNotation(Design d)
{
    switch (d) {
      case Design::Tourney:
        return "TOURNEY3 > [GBIM2 > BTB2, LBIM2]";
      case Design::B2:
        return "GTAG3 > BTB2 > BIM2";
      case Design::TageL:
        return "LOOP3 > TAGE3 > BTB2 > BIM2 > uBTB1";
      case Design::RefBig:
        return "LOOP3 > TAGE3 > BTB2 > BIM2 > uBTB1 (enlarged)";
    }
    return "";
}

bpu::Topology
buildTopology(Design d, unsigned w)
{
    bpu::Topology topo;
    switch (d) {
      case Design::Tourney: {
        // TOURNEY3 > [GBIM2 > BTB2, LBIM2] (paper §V-A).
        HbimParams gp;
        gp.sets = 4096; // 16K 2-bit counters at w=4 ("16K-entry BHT").
        gp.mode = IndexMode::GshareHash;
        gp.histBits = 12;
        gp.latency = 2;
        gp.fetchWidth = w;
        auto* gbim = topo.make<Hbim>("GBIM", gp);

        HbimParams lp;
        lp.sets = 1024;
        lp.mode = IndexMode::LshareHash;
        lp.histBits = 10;
        lp.latency = 2;
        lp.fetchWidth = w;
        auto* lbim = topo.make<Hbim>("LBIM", lp);

        BtbParams bp;
        bp.sets = 256; // 2K entries at 2 ways x 4 slots.
        bp.ways = 2;
        bp.latency = 2;
        bp.fetchWidth = w;
        auto* btb = topo.make<Btb>("BTB", bp);

        TourneyParams tp;
        tp.sets = 1024;
        tp.histBits = 10;
        tp.latency = 3;
        tp.fetchWidth = w;
        auto* tourney = topo.make<Tourney>("TOURNEY", tp);

        auto globalSide = topo.chain({topo.leaf(gbim), topo.leaf(btb)});
        // NOTE: paper notation is "GBIM2 > BTB2": the direction table
        // overrides; the BTB supplies targets underneath.
        auto root = topo.arb(tourney, {globalSide, topo.leaf(lbim)});
        topo.setRoot(root);
        break;
      }
      case Design::B2: {
        // GTAG3 > BTB2 > BIM2.
        GtagParams gp;
        gp.sets = 512; // 2K partially tagged counters at w=4.
        gp.histBits = 16;
        gp.latency = 3;
        gp.fetchWidth = w;
        auto* gtag = topo.make<Gtag>("GTAG", gp);

        BtbParams bp;
        bp.sets = 256;
        bp.ways = 2;
        bp.latency = 2;
        bp.fetchWidth = w;
        auto* btb = topo.make<Btb>("BTB", bp);

        HbimParams ip;
        ip.sets = 4096; // 16K untagged counters.
        ip.mode = IndexMode::Pc;
        ip.latency = 2;
        ip.fetchWidth = w;
        auto* bim = topo.make<Hbim>("BIM", ip);

        topo.setRoot(topo.chainOf({gtag, btb, bim}));
        break;
      }
      case Design::TageL: {
        // LOOP3 > TAGE3 > BTB2 > BIM2 > uBTB1.
        LoopParams lp;
        lp.entries = 256;
        lp.latency = 3;
        lp.fetchWidth = w;
        auto* loop = topo.make<LoopPredictor>("LOOP", lp);

        TageParams tp = TageParams::tageL(w);
        for (auto& t : tp.tables)
            t.sets = 1024; // ~28 KB total (Table I).
        auto* tage = topo.make<Tage>("TAGE", tp);

        BtbParams bp;
        bp.sets = 256;
        bp.ways = 2;
        bp.latency = 2;
        bp.fetchWidth = w;
        auto* btb = topo.make<Btb>("BTB", bp);

        HbimParams ip;
        ip.sets = 4096;
        ip.mode = IndexMode::Pc;
        ip.latency = 2;
        ip.fetchWidth = w;
        auto* bim = topo.make<Hbim>("BIM", ip);

        MicroBtbParams up;
        up.entries = 32;
        up.fetchWidth = w;
        auto* ubtb = topo.make<MicroBtb>("uBTB", up);

        topo.setRoot(topo.chainOf({loop, tage, btb, bim, ubtb}));
        break;
      }
      case Design::RefBig: {
        // Commercial-class stand-in: enlarged TAGE-L.
        LoopParams lp;
        lp.entries = 512;
        lp.latency = 3;
        lp.fetchWidth = w;
        auto* loop = topo.make<LoopPredictor>("LOOP", lp);

        TageParams tp = TageParams::tageL(w);
        for (auto& t : tp.tables) {
            t.sets = 4096;
            t.tagBits += 2;
        }
        {
            // An eighth, even longer table.
            TageTableParams extra = tp.tables.back();
            extra.histLen = 64;
            tp.tables.push_back(extra);
        }
        auto* tage = topo.make<Tage>("TAGE", tp);

        BtbParams bp;
        bp.sets = 512;
        bp.ways = 4;
        bp.latency = 2;
        bp.fetchWidth = w;
        auto* btb = topo.make<Btb>("BTB", bp);

        HbimParams ip;
        ip.sets = 8192;
        ip.mode = IndexMode::Pc;
        ip.latency = 2;
        ip.fetchWidth = w;
        auto* bim = topo.make<Hbim>("BIM", ip);

        MicroBtbParams up;
        up.entries = 64;
        up.fetchWidth = w;
        auto* ubtb = topo.make<MicroBtb>("uBTB", up);

        topo.setRoot(topo.chainOf({loop, tage, btb, bim, ubtb}));
        break;
      }
    }
    topo.validate();
    return topo;
}

SimConfig
makeConfig(Design d)
{
    SimConfig cfg;

    // ---- Table II core --------------------------------------------------
    cfg.frontend.fetchWidth = 4; // 16-byte fetch.
    cfg.frontend.fetchBufferInsts = 32;
    cfg.frontend.rasEntries = 16;
    cfg.backend.coreWidth = 4;
    cfg.backend.robEntries = 128;
    cfg.backend.intIqEntries = 32;
    cfg.backend.memIqEntries = 32;
    cfg.backend.fpIqEntries = 32;
    cfg.backend.ldqEntries = 32;
    cfg.backend.stqEntries = 32;
    cfg.backend.aluPorts = 4;
    cfg.backend.memPorts = 2;
    cfg.backend.fpPorts = 2;

    cfg.bpu.fetchWidth = 4;
    cfg.bpu.historyFileEntries = 64;
    cfg.bpu.updateWidth = 2;

    switch (d) {
      case Design::Tourney:
        cfg.bpu.ghistBits = 32;
        cfg.bpu.lhistSets = 256;
        cfg.bpu.lhistBits = 32;
        break;
      case Design::B2:
        cfg.bpu.ghistBits = 16;
        break;
      case Design::TageL:
        cfg.bpu.ghistBits = 64;
        break;
      case Design::RefBig:
        cfg.bpu.ghistBits = 64;
        // A wider, deeper commercial-class core.
        cfg.backend.coreWidth = 6;
        cfg.backend.robEntries = 224;
        cfg.backend.aluPorts = 6;
        cfg.backend.memPorts = 3;
        cfg.backend.intIqEntries = 64;
        cfg.backend.memIqEntries = 48;
        cfg.caches.l1i.sizeBytes = 64 * 1024;
        cfg.caches.l1d.sizeBytes = 64 * 1024;
        cfg.caches.l2.sizeBytes = 1024 * 1024;
        cfg.caches.l3.sizeBytes = 16 * 1024 * 1024;
        break;
    }
    return cfg;
}

std::vector<Design>
paperDesigns()
{
    return {Design::Tourney, Design::B2, Design::TageL};
}

} // namespace cobra::sim
