#include "sim/presets.hpp"

#include "sim/design_spec.hpp"

namespace cobra::sim {

const char*
designName(Design d)
{
    switch (d) {
      case Design::Tourney: return "Tournament";
      case Design::B2: return "B2";
      case Design::TageL: return "TAGE-L";
      case Design::RefBig: return "REF-BIG";
    }
    return "?";
}

std::string
designDescription(Design d)
{
    switch (d) {
      case Design::Tourney:
        return "32-bit global, 256x32-bit local histories; "
               "2K-entry BTB w. 16K-entry 2-bit BHT; "
               "1K tournament counters";
      case Design::B2:
        return "16-bit global history; "
               "2K partially tagged + 16K untagged counters; "
               "2K-entry BTB";
      case Design::TageL:
        return "64-bit global history; 7 TAGE tables; "
               "2K-entry BTB w. 32-entry uBTB; "
               "256-entry loop predictor";
      case Design::RefBig:
        return "commercial-class stand-in: 8 large TAGE tables, "
               "4K-entry BTB, loop predictor, wide core";
    }
    return "";
}

std::string
designTopologyNotation(Design d)
{
    switch (d) {
      case Design::Tourney:
        return "TOURNEY3 > [GBIM2 > BTB2, LBIM2]";
      case Design::B2:
        return "GTAG3 > BTB2 > BIM2";
      case Design::TageL:
        return "LOOP3 > TAGE3 > BTB2 > BIM2 > uBTB1";
      case Design::RefBig:
        return "LOOP3 > TAGE3 > BTB2 > BIM2 > uBTB1 (enlarged)";
    }
    return "";
}

bpu::Topology
buildTopology(Design d, unsigned w)
{
    // The enum presets are thin wrappers over their DesignSpec
    // re-expression (presetSpec): one construction path, bit-identical
    // designs (tests/test_design_spec.cpp locks this down).
    DesignSpec spec = presetSpec(d);
    spec.fetchWidth = w;
    return sim::buildTopology(spec);
}

SimConfig
makeConfig(Design d)
{
    return sim::makeConfig(presetSpec(d));
}

std::vector<Design>
paperDesigns()
{
    return {Design::Tourney, Design::B2, Design::TageL};
}

} // namespace cobra::sim
