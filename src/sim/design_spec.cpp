#include "sim/design_spec.hpp"

#include <algorithm>
#include <sstream>

#include "common/bitutil.hpp"
#include "common/json.hpp"
#include "components/bim.hpp"
#include "components/btb.hpp"
#include "components/gtag.hpp"
#include "components/loop.hpp"
#include "components/tage.hpp"
#include "components/tourney.hpp"
#include "guard/contract_auditor.hpp"
#include "guard/errors.hpp"
#include "guard/fault_injector.hpp"
#include "serve/json.hpp"

namespace cobra::sim {

using namespace cobra::comps;
using guard::ConfigError;

namespace {

// ---- Knob registry ----------------------------------------------------

/** One sizing knob: name, default, legal range, pow2 requirement. */
struct KnobDef
{
    const char* name;
    std::uint64_t dflt;
    std::uint64_t min;
    std::uint64_t max;
    bool pow2 = false;
};

struct KindDef
{
    const char* kind;
    std::vector<KnobDef> knobs;
    bool hasMode = false;   ///< "bim" index-mode string.
    bool hasTables = false; ///< "tage" tagged-table array.
    bool arbiter = false;   ///< Must sit at an arb node.
};

const std::vector<KindDef>&
kindRegistry()
{
    static const std::vector<KindDef> kinds = {
        {"bim",
         {{"sets", 4096, 2, 1u << 24, true},
          {"ctr_bits", 2, 1, 8},
          {"hist_bits", 10, 0, 64},
          {"latency", 2, 1, 8}},
         /*hasMode=*/true},
        {"btb",
         {{"sets", 256, 1, 1u << 20, true},
          {"ways", 2, 1, 16},
          {"tag_bits", 20, 1, 48},
          {"latency", 2, 1, 8}}},
        {"ubtb",
         {{"entries", 32, 1, 1u << 16, true},
          {"ctr_bits", 2, 1, 8}}},
        {"gtag",
         {{"sets", 512, 2, 1u << 24, true},
          {"ctr_bits", 2, 1, 8},
          {"tag_bits", 7, 1, 32},
          {"hist_bits", 16, 0, 64},
          {"latency", 3, 2, 8}}},
        {"tage",
         {{"ctr_bits", 3, 2, 4},
          {"u_bits", 2, 1, 8},
          {"latency", 3, 2, 8},
          {"u_decay_period", 1u << 18, 1, 1ull << 32}},
         /*hasMode=*/false, /*hasTables=*/true},
        {"loop",
         {{"entries", 256, 2, 1u << 16, true},
          {"tag_bits", 10, 1, 32},
          {"count_bits", 10, 1, 32},
          {"conf_max", 15, 1, 255},
          {"conf_threshold", 6, 1, 255},
          {"min_trip", 3, 0, 255},
          {"latency", 3, 1, 8}}},
        {"tourney",
         {{"sets", 1024, 2, 1u << 24, true},
          {"ctr_bits", 2, 1, 4},
          {"hist_bits", 10, 0, 64},
          {"latency", 3, 2, 8}},
         /*hasMode=*/false, /*hasTables=*/false, /*arbiter=*/true}};
    return kinds;
}

const KindDef*
findKind(const std::string& kind)
{
    for (const KindDef& k : kindRegistry())
        if (kind == k.kind)
            return &k;
    return nullptr;
}

std::string
knownKindNames()
{
    std::string out;
    for (const KindDef& k : kindRegistry()) {
        if (!out.empty())
            out += " | ";
        out += k.kind;
    }
    return out;
}

/** Resolved knob value: explicit when set, the kind default otherwise. */
std::uint64_t
knobValue(const ComponentSpec& c, const KindDef& kd, const char* name)
{
    auto it = c.knobs.find(name);
    if (it != c.knobs.end())
        return it->second;
    for (const KnobDef& k : kd.knobs)
        if (std::string_view(k.name) == name)
            return k.dflt;
    throw ConfigError("component '" + c.id + "'",
                      std::string("unknown knob '") + name + "'");
}

// ---- Index modes ------------------------------------------------------

struct ModeName
{
    const char* name;
    IndexMode mode;
};

constexpr ModeName kModeNames[] = {
    {"pc", IndexMode::Pc},         {"ghist", IndexMode::GlobalHist},
    {"lhist", IndexMode::LocalHist}, {"gshare", IndexMode::GshareHash},
    {"lshare", IndexMode::LshareHash}, {"path", IndexMode::PathHash},
};

IndexMode
modeFromName(const std::string& name, const std::string& field)
{
    for (const ModeName& m : kModeNames)
        if (name == m.name)
            return m.mode;
    throw ConfigError(field, "unknown index mode '" + name +
                                 "' (pc | ghist | lhist | gshare | "
                                 "lshare | path)");
}

bool
modeReadsGlobalHistory(IndexMode m)
{
    return m == IndexMode::GlobalHist || m == IndexMode::GshareHash ||
           m == IndexMode::PathHash;
}

bool
modeReadsLocalHistory(IndexMode m)
{
    return m == IndexMode::LocalHist || m == IndexMode::LshareHash;
}

// ---- Component construction ------------------------------------------

bpu::PredictorComponent*
makeComponent(bpu::Topology& topo, const ComponentSpec& c,
              unsigned fetch_width)
{
    const KindDef& kd = *findKind(c.kind);
    const auto u = [&](const char* name) {
        return static_cast<unsigned>(knobValue(c, kd, name));
    };
    if (c.kind == "bim") {
        HbimParams p;
        p.sets = u("sets");
        p.ctrBits = u("ctr_bits");
        p.mode = modeFromName(c.mode.empty() ? "pc" : c.mode,
                              "component '" + c.id + "'.mode");
        p.histBits = u("hist_bits");
        p.latency = u("latency");
        p.fetchWidth = fetch_width;
        return topo.make<Hbim>(c.id, p);
    }
    if (c.kind == "btb") {
        BtbParams p;
        p.sets = u("sets");
        p.ways = u("ways");
        p.tagBits = u("tag_bits");
        p.latency = u("latency");
        p.fetchWidth = fetch_width;
        return topo.make<Btb>(c.id, p);
    }
    if (c.kind == "ubtb") {
        MicroBtbParams p;
        p.entries = u("entries");
        p.ctrBits = u("ctr_bits");
        p.fetchWidth = fetch_width;
        return topo.make<MicroBtb>(c.id, p);
    }
    if (c.kind == "gtag") {
        GtagParams p;
        p.sets = u("sets");
        p.ctrBits = u("ctr_bits");
        p.tagBits = u("tag_bits");
        p.histBits = u("hist_bits");
        p.latency = u("latency");
        p.fetchWidth = fetch_width;
        return topo.make<Gtag>(c.id, p);
    }
    if (c.kind == "tage") {
        TageParams p;
        p.ctrBits = u("ctr_bits");
        p.uBits = u("u_bits");
        p.latency = u("latency");
        p.uDecayPeriod = knobValue(c, kd, "u_decay_period");
        p.fetchWidth = fetch_width;
        for (const TageTableSpec& t : c.tables) {
            TageTableParams tp;
            tp.sets = static_cast<unsigned>(t.sets);
            tp.histLen = static_cast<unsigned>(t.histLen);
            tp.tagBits = static_cast<unsigned>(t.tagBits);
            p.tables.push_back(tp);
        }
        return topo.make<Tage>(c.id, p);
    }
    if (c.kind == "loop") {
        LoopParams p;
        p.entries = u("entries");
        p.tagBits = u("tag_bits");
        p.countBits = u("count_bits");
        p.confMax = u("conf_max");
        p.confThreshold = u("conf_threshold");
        p.minTrip = u("min_trip");
        p.latency = u("latency");
        p.fetchWidth = fetch_width;
        return topo.make<LoopPredictor>(c.id, p);
    }
    if (c.kind == "tourney") {
        TourneyParams p;
        p.sets = u("sets");
        p.ctrBits = u("ctr_bits");
        p.histBits = u("hist_bits");
        p.latency = u("latency");
        p.fetchWidth = fetch_width;
        return topo.make<Tourney>(c.id, p);
    }
    throw ConfigError("component '" + c.id + "'",
                      "unknown kind '" + c.kind + "'");
}

// ---- Tree validation / construction ----------------------------------

void
collectTreeIds(const TreeSpec& t, std::vector<std::string>& out)
{
    if (t.kind == TreeSpec::Kind::Leaf || t.kind == TreeSpec::Kind::Arb)
        out.push_back(t.component);
    for (const TreeSpec& c : t.children)
        collectTreeIds(c, out);
}

void
validateTreeNode(const DesignSpec& spec, const TreeSpec& t)
{
    switch (t.kind) {
      case TreeSpec::Kind::Leaf: {
        const ComponentSpec* c = spec.findComponent(t.component);
        if (c == nullptr) {
            throw ConfigError("tree",
                              "leaf references unknown component '" +
                                  t.component + "'");
        }
        if (findKind(c->kind) != nullptr && findKind(c->kind)->arbiter) {
            throw ConfigError("tree", "component '" + t.component +
                                          "' is an arbiter and must sit "
                                          "at an arb node, not a leaf");
        }
        if (!t.children.empty())
            throw ConfigError("tree", "leaf nodes take no children");
        break;
      }
      case TreeSpec::Kind::Chain: {
        if (t.children.empty())
            throw ConfigError("tree", "chain node has no children");
        if (!t.component.empty()) {
            throw ConfigError("tree",
                              "chain nodes name no component (got '" +
                                  t.component + "')");
        }
        break;
      }
      case TreeSpec::Kind::Arb: {
        const ComponentSpec* c = spec.findComponent(t.component);
        if (c == nullptr) {
            throw ConfigError("tree",
                              "arb references unknown arbiter '" +
                                  t.component + "'");
        }
        const KindDef* kd = findKind(c->kind);
        if (kd == nullptr || !kd->arbiter) {
            throw ConfigError("tree", "arb arbiter '" + t.component +
                                          "' must be an arbiter kind "
                                          "(tourney), got '" +
                                          c->kind + "'");
        }
        if (t.children.size() != 2) {
            throw ConfigError(
                "tree", "arbiter '" + t.component + "' takes exactly 2 "
                        "children, got " +
                            std::to_string(t.children.size()));
        }
        break;
      }
    }
    for (const TreeSpec& c : t.children)
        validateTreeNode(spec, c);
}

bpu::NodeRef
buildTreeNode(bpu::Topology& topo, const TreeSpec& t,
              const std::map<std::string, bpu::PredictorComponent*>& byId)
{
    switch (t.kind) {
      case TreeSpec::Kind::Leaf:
        return topo.leaf(byId.at(t.component));
      case TreeSpec::Kind::Chain: {
        std::vector<bpu::NodeRef> kids;
        kids.reserve(t.children.size());
        for (const TreeSpec& c : t.children)
            kids.push_back(buildTreeNode(topo, c, byId));
        return topo.chain(std::move(kids));
      }
      case TreeSpec::Kind::Arb: {
        std::vector<bpu::NodeRef> kids;
        kids.reserve(t.children.size());
        for (const TreeSpec& c : t.children)
            kids.push_back(buildTreeNode(topo, c, byId));
        return topo.arb(byId.at(t.component), std::move(kids));
      }
    }
    throw ConfigError("tree", "unreachable node kind");
}

} // namespace

// ---- TreeSpec factories ----------------------------------------------

TreeSpec
TreeSpec::leaf(std::string id)
{
    TreeSpec t;
    t.kind = Kind::Leaf;
    t.component = std::move(id);
    return t;
}

TreeSpec
TreeSpec::chain(std::vector<TreeSpec> children)
{
    TreeSpec t;
    t.kind = Kind::Chain;
    t.children = std::move(children);
    return t;
}

TreeSpec
TreeSpec::arb(std::string arbiter, std::vector<TreeSpec> children)
{
    TreeSpec t;
    t.kind = Kind::Arb;
    t.component = std::move(arbiter);
    t.children = std::move(children);
    return t;
}

// ---- Validation -------------------------------------------------------

const ComponentSpec*
DesignSpec::findComponent(const std::string& id) const
{
    for (const ComponentSpec& c : components)
        if (c.id == id)
            return &c;
    return nullptr;
}

void
DesignSpec::validate() const
{
    if (name.empty())
        throw ConfigError("design.name", "must be non-empty");
    if (fetchWidth < 1 || fetchWidth > 8) {
        throw ConfigError("design.fetch_width",
                          "must be in [1, 8], got " +
                              std::to_string(fetchWidth));
    }
    if (components.empty())
        throw ConfigError("design.components", "must be non-empty");

    for (const ComponentSpec& c : components) {
        const std::string where = "component '" + c.id + "'";
        if (c.id.empty())
            throw ConfigError("design.components",
                              "component ids must be non-empty");
        if (std::count_if(components.begin(), components.end(),
                          [&](const ComponentSpec& o) {
                              return o.id == c.id;
                          }) != 1) {
            throw ConfigError("design.components",
                              "duplicate component id '" + c.id + "'");
        }
        const KindDef* kd = findKind(c.kind);
        if (kd == nullptr) {
            throw ConfigError(where, "unknown kind '" + c.kind + "' (" +
                                         knownKindNames() + ")");
        }
        for (const auto& [kname, kval] : c.knobs) {
            const KnobDef* def = nullptr;
            for (const KnobDef& k : kd->knobs)
                if (kname == k.name)
                    def = &k;
            if (def == nullptr) {
                throw ConfigError(where, "unknown knob '" + kname +
                                             "' for kind '" + c.kind +
                                             "'");
            }
            if (kval < def->min || kval > def->max) {
                throw ConfigError(
                    where, kname + " must be in [" +
                               std::to_string(def->min) + ", " +
                               std::to_string(def->max) + "], got " +
                               std::to_string(kval));
            }
            if (def->pow2 && !isPow2(kval)) {
                throw ConfigError(where,
                                  kname + " must be a power of two, "
                                          "got " +
                                      std::to_string(kval));
            }
        }
        if (!c.mode.empty() && !kd->hasMode) {
            throw ConfigError(where, "kind '" + c.kind +
                                         "' takes no index mode");
        }
        if (!c.tables.empty() && !kd->hasTables) {
            throw ConfigError(where, "kind '" + c.kind +
                                         "' takes no tagged tables");
        }
        if (kd->hasMode) {
            const IndexMode m = modeFromName(
                c.mode.empty() ? "pc" : c.mode, where + ".mode");
            const auto latency = knobValue(c, *kd, "latency");
            if (m != IndexMode::Pc && latency < 2) {
                throw ConfigError(
                    where, "history-indexed modes need latency >= 2 "
                           "(histories arrive at the end of Fetch-1)");
            }
            const auto histBits = knobValue(c, *kd, "hist_bits");
            if (modeReadsGlobalHistory(m) && histBits > bpu.ghistBits) {
                throw ConfigError(where,
                                  "hist_bits (" +
                                      std::to_string(histBits) +
                                      ") exceeds bpu.ghist_bits (" +
                                      std::to_string(bpu.ghistBits) +
                                      ")");
            }
            if (modeReadsLocalHistory(m) && histBits > bpu.lhistBits) {
                throw ConfigError(where,
                                  "hist_bits (" +
                                      std::to_string(histBits) +
                                      ") exceeds bpu.lhist_bits (" +
                                      std::to_string(bpu.lhistBits) +
                                      ")");
            }
        }
        if (kd->hasTables) {
            if (c.tables.empty()) {
                throw ConfigError(where,
                                  "kind 'tage' needs a non-empty "
                                  "tables array");
            }
            if (c.tables.size() > 15) {
                throw ConfigError(where,
                                  "at most 15 tagged tables, got " +
                                      std::to_string(c.tables.size()));
            }
            for (std::size_t i = 0; i < c.tables.size(); ++i) {
                const TageTableSpec& t = c.tables[i];
                const std::string tw =
                    where + ".tables[" + std::to_string(i) + "]";
                if (t.sets < 2 || t.sets > (1u << 24) || !isPow2(t.sets))
                    throw ConfigError(tw, "sets must be a power of two "
                                          "in [2, 2^24], got " +
                                              std::to_string(t.sets));
                if (t.histLen < 1 || t.histLen > bpu.ghistBits) {
                    throw ConfigError(
                        tw, "hist_len must be in [1, bpu.ghist_bits=" +
                                std::to_string(bpu.ghistBits) +
                                "], got " + std::to_string(t.histLen));
                }
                if (t.tagBits < 1 || t.tagBits > 32)
                    throw ConfigError(tw,
                                      "tag_bits must be in [1, 32], "
                                      "got " +
                                          std::to_string(t.tagBits));
            }
        }
        if (c.kind == "gtag") {
            const auto histBits = knobValue(c, *kd, "hist_bits");
            if (histBits > bpu.ghistBits) {
                throw ConfigError(where,
                                  "hist_bits (" +
                                      std::to_string(histBits) +
                                      ") exceeds bpu.ghist_bits (" +
                                      std::to_string(bpu.ghistBits) +
                                      ")");
            }
        }
        if (c.kind == "tourney") {
            const auto histBits = knobValue(c, *kd, "hist_bits");
            if (histBits > bpu.ghistBits) {
                throw ConfigError(where,
                                  "hist_bits (" +
                                      std::to_string(histBits) +
                                      ") exceeds bpu.ghist_bits (" +
                                      std::to_string(bpu.ghistBits) +
                                      ")");
            }
        }
    }

    // Tree: structurally sound, every component used exactly once.
    validateTreeNode(*this, tree);
    std::vector<std::string> used;
    collectTreeIds(tree, used);
    for (const ComponentSpec& c : components) {
        const auto n = std::count(used.begin(), used.end(), c.id);
        if (n == 0) {
            throw ConfigError("tree", "component '" + c.id +
                                          "' is never referenced");
        }
        if (n > 1) {
            throw ConfigError("tree", "component '" + c.id +
                                          "' referenced " +
                                          std::to_string(n) +
                                          " times (each component may "
                                          "appear once)");
        }
    }

    // Management blocks (mirrors BpuConfig::validate so a bad spec is
    // rejected before any model is constructed).
    if (bpu.ghistBits < 1 || bpu.ghistBits > 1024)
        throw ConfigError("bpu.ghist_bits", "must be in [1, 1024]");
    if (bpu.lhistSets < 1 || !isPow2(bpu.lhistSets))
        throw ConfigError("bpu.lhist_sets",
                          "must be a power of two >= 1");
    if (bpu.lhistBits < 1 || bpu.lhistBits > 64)
        throw ConfigError("bpu.lhist_bits", "must be in [1, 64]");
    if (bpu.historyFileEntries < 2)
        throw ConfigError("bpu.history_file_entries", "must be >= 2");
    if (bpu.updateWidth < 1)
        throw ConfigError("bpu.update_width", "must be >= 1");

    if (core.coreWidth < 1 || core.coreWidth > 16)
        throw ConfigError("core.core_width", "must be in [1, 16]");
    if (core.robEntries < core.coreWidth)
        throw ConfigError("core.rob_entries", "must be >= core_width");
    const struct { const char* name; std::uint64_t v; } cacheBytes[] = {
        {"core.l1i_bytes", core.l1iBytes},
        {"core.l1d_bytes", core.l1dBytes},
        {"core.l2_bytes", core.l2Bytes},
        {"core.l3_bytes", core.l3Bytes},
    };
    for (const auto& cb : cacheBytes) {
        if (cb.v != 0 && (cb.v < 1024 || !isPow2(cb.v))) {
            throw ConfigError(cb.name,
                              "cache override must be a power of two "
                              ">= 1024 bytes (0 keeps the default)");
        }
    }
}

// ---- Construction -----------------------------------------------------

bpu::Topology
buildTopology(const DesignSpec& spec)
{
    spec.validate();
    bpu::Topology topo;
    std::map<std::string, bpu::PredictorComponent*> byId;
    for (const ComponentSpec& c : spec.components)
        byId[c.id] = makeComponent(topo, c, spec.fetchWidth);
    topo.setRoot(buildTreeNode(topo, spec.tree, byId));
    topo.validate();
    return topo;
}

void
applyGuardWrappers(bpu::Topology& topo, const GuardHooks& hooks)
{
    if (hooks.faults != nullptr && hooks.faults->enabled()) {
        topo.wrapEach(
            [&hooks](std::unique_ptr<bpu::PredictorComponent> c)
                -> std::unique_ptr<bpu::PredictorComponent> {
                return std::make_unique<guard::FaultInjector>(
                    std::move(c), *hooks.faults);
            });
    }
    if (hooks.audit) {
        // Auditor outermost: it observes the composer's calls, not the
        // injector's perturbations, so injected faults are (correctly)
        // not reported as contract violations.
        topo.wrapEach(
            [&hooks](std::unique_ptr<bpu::PredictorComponent> c)
                -> std::unique_ptr<bpu::PredictorComponent> {
                auto a = std::make_unique<guard::ContractAuditor>(
                    std::move(c));
                if (hooks.auditors != nullptr)
                    hooks.auditors->push_back(a.get());
                return a;
            });
    }
}

bpu::Topology
buildDesign(const DesignSpec& spec, const GuardHooks& hooks)
{
    bpu::Topology topo = buildTopology(spec);
    applyGuardWrappers(topo, hooks);
    return topo;
}

SimConfig
makeConfig(const DesignSpec& spec)
{
    SimConfig cfg;
    cfg.frontend.fetchWidth = spec.fetchWidth;
    cfg.frontend.fetchBufferInsts = spec.core.fetchBufferInsts;
    cfg.frontend.rasEntries = spec.core.rasEntries;
    cfg.backend.coreWidth = spec.core.coreWidth;
    cfg.backend.robEntries = spec.core.robEntries;
    cfg.backend.intIqEntries = spec.core.intIqEntries;
    cfg.backend.memIqEntries = spec.core.memIqEntries;
    cfg.backend.fpIqEntries = spec.core.fpIqEntries;
    cfg.backend.ldqEntries = spec.core.ldqEntries;
    cfg.backend.stqEntries = spec.core.stqEntries;
    cfg.backend.aluPorts = spec.core.aluPorts;
    cfg.backend.memPorts = spec.core.memPorts;
    cfg.backend.fpPorts = spec.core.fpPorts;

    cfg.bpu.fetchWidth = spec.fetchWidth;
    cfg.bpu.historyFileEntries = spec.bpu.historyFileEntries;
    cfg.bpu.updateWidth = spec.bpu.updateWidth;
    cfg.bpu.ghistBits = spec.bpu.ghistBits;
    cfg.bpu.lhistSets = spec.bpu.lhistSets;
    cfg.bpu.lhistBits = spec.bpu.lhistBits;

    if (spec.core.l1iBytes != 0)
        cfg.caches.l1i.sizeBytes = spec.core.l1iBytes;
    if (spec.core.l1dBytes != 0)
        cfg.caches.l1d.sizeBytes = spec.core.l1dBytes;
    if (spec.core.l2Bytes != 0)
        cfg.caches.l2.sizeBytes = spec.core.l2Bytes;
    if (spec.core.l3Bytes != 0)
        cfg.caches.l3.sizeBytes = spec.core.l3Bytes;
    return cfg;
}

// ---- Derived physical characteristics --------------------------------

std::uint64_t
specStorageBits(const DesignSpec& spec)
{
    bpu::Topology topo = buildTopology(spec);
    std::uint64_t bits = 0;
    for (const auto* c : topo.componentList())
        bits += c->storageBits();
    return bits;
}

double
specAreaUm2(const DesignSpec& spec, const phys::AreaModel& model)
{
    bpu::Topology topo = buildTopology(spec);
    double um2 = 0.0;
    for (const auto* c : topo.componentList())
        um2 += model.area(c->physicalCost());
    return um2;
}

unsigned
specMaxLatency(const DesignSpec& spec)
{
    return buildTopology(spec).maxLatency();
}

// ---- JSON emission ----------------------------------------------------

namespace {

void
emitTree(std::ostringstream& os, const TreeSpec& t)
{
    switch (t.kind) {
      case TreeSpec::Kind::Leaf:
        os << '"' << jsonEscape(t.component) << '"';
        break;
      case TreeSpec::Kind::Chain: {
        os << "{\"chain\": [";
        bool first = true;
        for (const TreeSpec& c : t.children) {
            if (!first)
                os << ", ";
            first = false;
            emitTree(os, c);
        }
        os << "]}";
        break;
      }
      case TreeSpec::Kind::Arb: {
        os << "{\"arb\": \"" << jsonEscape(t.component)
           << "\", \"children\": [";
        bool first = true;
        for (const TreeSpec& c : t.children) {
            if (!first)
                os << ", ";
            first = false;
            emitTree(os, c);
        }
        os << "]}";
        break;
      }
    }
}

} // namespace

std::string
DesignSpec::toJson() const
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"name\": \"" << jsonEscape(name) << "\",\n";
    os << "  \"description\": \"" << jsonEscape(description) << "\",\n";
    os << "  \"notation\": \"" << jsonEscape(notation) << "\",\n";
    os << "  \"fetch_width\": " << fetchWidth << ",\n";
    os << "  \"components\": [\n";
    for (std::size_t i = 0; i < components.size(); ++i) {
        const ComponentSpec& c = components[i];
        os << "    {\"id\": \"" << jsonEscape(c.id) << "\", \"kind\": \""
           << jsonEscape(c.kind) << "\"";
        if (!c.mode.empty())
            os << ", \"mode\": \"" << jsonEscape(c.mode) << "\"";
        if (!c.knobs.empty()) {
            os << ", \"knobs\": {";
            bool first = true;
            for (const auto& [k, v] : c.knobs) {
                if (!first)
                    os << ", ";
                first = false;
                os << '"' << jsonEscape(k) << "\": " << v;
            }
            os << "}";
        }
        if (!c.tables.empty()) {
            os << ",\n     \"tables\": [";
            bool first = true;
            for (const TageTableSpec& t : c.tables) {
                if (!first)
                    os << ",\n                ";
                first = false;
                os << "{\"sets\": " << t.sets
                   << ", \"hist_len\": " << t.histLen
                   << ", \"tag_bits\": " << t.tagBits << "}";
            }
            os << "]";
        }
        os << "}" << (i + 1 < components.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"tree\": ";
    emitTree(os, tree);
    os << ",\n";
    os << "  \"core\": {\"fetch_buffer_insts\": " << core.fetchBufferInsts
       << ", \"ras_entries\": " << core.rasEntries
       << ", \"core_width\": " << core.coreWidth
       << ", \"rob_entries\": " << core.robEntries << ",\n"
       << "           \"int_iq_entries\": " << core.intIqEntries
       << ", \"mem_iq_entries\": " << core.memIqEntries
       << ", \"fp_iq_entries\": " << core.fpIqEntries << ",\n"
       << "           \"ldq_entries\": " << core.ldqEntries
       << ", \"stq_entries\": " << core.stqEntries
       << ", \"alu_ports\": " << core.aluPorts
       << ", \"mem_ports\": " << core.memPorts
       << ", \"fp_ports\": " << core.fpPorts << ",\n"
       << "           \"l1i_bytes\": " << core.l1iBytes
       << ", \"l1d_bytes\": " << core.l1dBytes
       << ", \"l2_bytes\": " << core.l2Bytes
       << ", \"l3_bytes\": " << core.l3Bytes << "},\n";
    os << "  \"bpu\": {\"ghist_bits\": " << bpu.ghistBits
       << ", \"lhist_sets\": " << bpu.lhistSets
       << ", \"lhist_bits\": " << bpu.lhistBits
       << ", \"history_file_entries\": " << bpu.historyFileEntries
       << ", \"update_width\": " << bpu.updateWidth << "}\n";
    os << "}\n";
    return os.str();
}

// ---- JSON parsing -----------------------------------------------------

namespace {

using serve::Json;

[[noreturn]] void
badField(const std::string& field, const std::string& detail)
{
    throw ConfigError(field, detail);
}

unsigned
getUnsigned(const Json& obj, const std::string& key, unsigned dflt,
            const std::string& where)
{
    const Json* v = obj.find(key);
    if (v == nullptr)
        return dflt;
    if (!v->isNumber())
        badField(where + "." + key, "must be a number");
    const std::uint64_t u = v->asU64();
    if (u > 0xFFFFFFFFull)
        badField(where + "." + key, "out of range");
    return static_cast<unsigned>(u);
}

std::uint64_t
getU64Checked(const Json& obj, const std::string& key,
              std::uint64_t dflt, const std::string& where)
{
    const Json* v = obj.find(key);
    if (v == nullptr)
        return dflt;
    if (!v->isNumber())
        badField(where + "." + key, "must be a number");
    return v->asU64();
}

void
rejectUnknownKeys(const Json& obj, const std::string& where,
                  std::initializer_list<const char*> known)
{
    for (const auto& [k, v] : obj.asObject()) {
        (void)v;
        bool ok = false;
        for (const char* kn : known)
            if (k == kn)
                ok = true;
        if (!ok)
            badField(where, "unknown field '" + k + "'");
    }
}

TreeSpec
parseTree(const Json& j, const std::string& where)
{
    if (j.isString())
        return TreeSpec::leaf(j.asString());
    if (!j.isObject()) {
        badField(where, "tree nodes are a component-id string, "
                        "{\"chain\": [...]}, or "
                        "{\"arb\": id, \"children\": [...]}");
    }
    if (const Json* chain = j.find("chain")) {
        rejectUnknownKeys(j, where, {"chain"});
        if (!chain->isArray())
            badField(where + ".chain", "must be an array");
        std::vector<TreeSpec> kids;
        std::size_t i = 0;
        for (const Json& c : chain->asArray()) {
            kids.push_back(parseTree(
                c, where + ".chain[" + std::to_string(i) + "]"));
            ++i;
        }
        return TreeSpec::chain(std::move(kids));
    }
    if (const Json* arb = j.find("arb")) {
        rejectUnknownKeys(j, where, {"arb", "children"});
        if (!arb->isString())
            badField(where + ".arb", "must be a component-id string");
        const Json* kidsJ = j.find("children");
        if (kidsJ == nullptr || !kidsJ->isArray())
            badField(where, "arb nodes need a \"children\" array");
        std::vector<TreeSpec> kids;
        std::size_t i = 0;
        for (const Json& c : kidsJ->asArray()) {
            kids.push_back(parseTree(
                c, where + ".children[" + std::to_string(i) + "]"));
            ++i;
        }
        return TreeSpec::arb(arb->asString(), std::move(kids));
    }
    badField(where, "object tree nodes need \"chain\" or \"arb\"");
}

ComponentSpec
parseComponent(const Json& j, const std::string& where)
{
    if (!j.isObject())
        badField(where, "must be an object");
    rejectUnknownKeys(j, where, {"id", "kind", "mode", "knobs", "tables"});
    ComponentSpec c;
    const Json* id = j.find("id");
    if (id == nullptr || !id->isString())
        badField(where, "needs a string \"id\"");
    c.id = id->asString();
    const Json* kind = j.find("kind");
    if (kind == nullptr || !kind->isString())
        badField(where, "needs a string \"kind\"");
    c.kind = kind->asString();
    c.mode = j.getString("mode", "");
    if (const Json* knobs = j.find("knobs")) {
        if (!knobs->isObject())
            badField(where + ".knobs", "must be an object");
        for (const auto& [k, v] : knobs->asObject()) {
            if (!v.isNumber())
                badField(where + ".knobs." + k, "must be a number");
            c.knobs[k] = v.asU64();
        }
    }
    if (const Json* tables = j.find("tables")) {
        if (!tables->isArray())
            badField(where + ".tables", "must be an array");
        std::size_t i = 0;
        for (const Json& t : tables->asArray()) {
            const std::string tw =
                where + ".tables[" + std::to_string(i) + "]";
            if (!t.isObject())
                badField(tw, "must be an object");
            rejectUnknownKeys(t, tw, {"sets", "hist_len", "tag_bits"});
            TageTableSpec ts;
            ts.sets = getU64Checked(t, "sets", ts.sets, tw);
            ts.histLen = getU64Checked(t, "hist_len", ts.histLen, tw);
            ts.tagBits = getU64Checked(t, "tag_bits", ts.tagBits, tw);
            c.tables.push_back(ts);
            ++i;
        }
    }
    return c;
}

} // namespace

DesignSpec
DesignSpec::fromJson(const std::string& text)
{
    Json doc;
    try {
        doc = Json::parse(text);
    } catch (const serve::JsonError& e) {
        throw ConfigError("design spec", e.what());
    }
    return fromJson(doc);
}

DesignSpec
DesignSpec::fromJson(const serve::Json& doc)
{
    if (!doc.isObject())
        throw ConfigError("design spec", "must be a JSON object");
    rejectUnknownKeys(doc, "design",
                      {"name", "description", "notation", "fetch_width",
                       "components", "tree", "core", "bpu"});

    DesignSpec spec;
    spec.name = doc.getString("name", "");
    spec.description = doc.getString("description", "");
    spec.notation = doc.getString("notation", "");
    spec.fetchWidth =
        getUnsigned(doc, "fetch_width", spec.fetchWidth, "design");

    const Json* comps = doc.find("components");
    if (comps == nullptr || !comps->isArray())
        throw ConfigError("design.components", "must be an array");
    std::size_t i = 0;
    for (const Json& c : comps->asArray()) {
        spec.components.push_back(parseComponent(
            c, "design.components[" + std::to_string(i) + "]"));
        ++i;
    }

    const Json* tree = doc.find("tree");
    if (tree == nullptr)
        throw ConfigError("design.tree", "is required");
    spec.tree = parseTree(*tree, "design.tree");

    if (const Json* core = doc.find("core")) {
        if (!core->isObject())
            throw ConfigError("design.core", "must be an object");
        rejectUnknownKeys(
            *core, "design.core",
            {"fetch_buffer_insts", "ras_entries", "core_width",
             "rob_entries", "int_iq_entries", "mem_iq_entries",
             "fp_iq_entries", "ldq_entries", "stq_entries", "alu_ports",
             "mem_ports", "fp_ports", "l1i_bytes", "l1d_bytes",
             "l2_bytes", "l3_bytes"});
        CoreSpec& cs = spec.core;
        cs.fetchBufferInsts = getUnsigned(*core, "fetch_buffer_insts",
                                          cs.fetchBufferInsts, "core");
        cs.rasEntries =
            getUnsigned(*core, "ras_entries", cs.rasEntries, "core");
        cs.coreWidth =
            getUnsigned(*core, "core_width", cs.coreWidth, "core");
        cs.robEntries =
            getUnsigned(*core, "rob_entries", cs.robEntries, "core");
        cs.intIqEntries = getUnsigned(*core, "int_iq_entries",
                                      cs.intIqEntries, "core");
        cs.memIqEntries = getUnsigned(*core, "mem_iq_entries",
                                      cs.memIqEntries, "core");
        cs.fpIqEntries =
            getUnsigned(*core, "fp_iq_entries", cs.fpIqEntries, "core");
        cs.ldqEntries =
            getUnsigned(*core, "ldq_entries", cs.ldqEntries, "core");
        cs.stqEntries =
            getUnsigned(*core, "stq_entries", cs.stqEntries, "core");
        cs.aluPorts = getUnsigned(*core, "alu_ports", cs.aluPorts, "core");
        cs.memPorts = getUnsigned(*core, "mem_ports", cs.memPorts, "core");
        cs.fpPorts = getUnsigned(*core, "fp_ports", cs.fpPorts, "core");
        cs.l1iBytes = getU64Checked(*core, "l1i_bytes", cs.l1iBytes,
                                    "core");
        cs.l1dBytes = getU64Checked(*core, "l1d_bytes", cs.l1dBytes,
                                    "core");
        cs.l2Bytes = getU64Checked(*core, "l2_bytes", cs.l2Bytes, "core");
        cs.l3Bytes = getU64Checked(*core, "l3_bytes", cs.l3Bytes, "core");
    }

    if (const Json* bpuJ = doc.find("bpu")) {
        if (!bpuJ->isObject())
            throw ConfigError("design.bpu", "must be an object");
        rejectUnknownKeys(*bpuJ, "design.bpu",
                          {"ghist_bits", "lhist_sets", "lhist_bits",
                           "history_file_entries", "update_width"});
        BpuSpec& bs = spec.bpu;
        bs.ghistBits =
            getUnsigned(*bpuJ, "ghist_bits", bs.ghistBits, "bpu");
        bs.lhistSets =
            getUnsigned(*bpuJ, "lhist_sets", bs.lhistSets, "bpu");
        bs.lhistBits =
            getUnsigned(*bpuJ, "lhist_bits", bs.lhistBits, "bpu");
        bs.historyFileEntries = getUnsigned(
            *bpuJ, "history_file_entries", bs.historyFileEntries, "bpu");
        bs.updateWidth =
            getUnsigned(*bpuJ, "update_width", bs.updateWidth, "bpu");
    }

    spec.validate();
    return spec;
}

// ---- Presets ----------------------------------------------------------

namespace {

ComponentSpec
comp(std::string id, std::string kind,
     std::initializer_list<std::pair<const char*, std::uint64_t>> knobs,
     std::string mode = "")
{
    ComponentSpec c;
    c.id = std::move(id);
    c.kind = std::move(kind);
    c.mode = std::move(mode);
    for (const auto& [k, v] : knobs)
        c.knobs.emplace(k, v);
    return c;
}

std::vector<TageTableSpec>
tageLTables(std::uint64_t sets, std::uint64_t tag_bump)
{
    // TageParams::tageL geometry: 7 tables, 9..11-bit tags.
    const std::uint64_t lens[7] = {4, 7, 12, 20, 32, 48, 64};
    std::vector<TageTableSpec> tables;
    for (std::uint64_t i = 0; i < 7; ++i)
        tables.push_back({sets, lens[i], 9 + i / 3 + tag_bump});
    return tables;
}

} // namespace

DesignSpec
presetSpec(Design d)
{
    DesignSpec spec;
    spec.name = designName(d);
    spec.description = designDescription(d);
    spec.notation = designTopologyNotation(d);

    switch (d) {
      case Design::Tourney: {
        spec.components = {
            comp("GBIM", "bim",
                 {{"sets", 4096}, {"ctr_bits", 2}, {"hist_bits", 12},
                  {"latency", 2}},
                 "gshare"),
            comp("LBIM", "bim",
                 {{"sets", 1024}, {"ctr_bits", 2}, {"hist_bits", 10},
                  {"latency", 2}},
                 "lshare"),
            comp("BTB", "btb",
                 {{"sets", 256}, {"ways", 2}, {"tag_bits", 20},
                  {"latency", 2}}),
            comp("TOURNEY", "tourney",
                 {{"sets", 1024}, {"ctr_bits", 2}, {"hist_bits", 10},
                  {"latency", 3}}),
        };
        spec.tree = TreeSpec::arb(
            "TOURNEY",
            {TreeSpec::chain(
                 {TreeSpec::leaf("GBIM"), TreeSpec::leaf("BTB")}),
             TreeSpec::leaf("LBIM")});
        spec.bpu.ghistBits = 32;
        spec.bpu.lhistSets = 256;
        spec.bpu.lhistBits = 32;
        break;
      }
      case Design::B2: {
        spec.components = {
            comp("GTAG", "gtag",
                 {{"sets", 512}, {"ctr_bits", 2}, {"tag_bits", 7},
                  {"hist_bits", 16}, {"latency", 3}}),
            comp("BTB", "btb",
                 {{"sets", 256}, {"ways", 2}, {"tag_bits", 20},
                  {"latency", 2}}),
            comp("BIM", "bim",
                 {{"sets", 4096}, {"ctr_bits", 2}, {"hist_bits", 10},
                  {"latency", 2}},
                 "pc"),
        };
        spec.tree = TreeSpec::chain({TreeSpec::leaf("GTAG"),
                                     TreeSpec::leaf("BTB"),
                                     TreeSpec::leaf("BIM")});
        spec.bpu.ghistBits = 16;
        break;
      }
      case Design::TageL: {
        ComponentSpec tage =
            comp("TAGE", "tage",
                 {{"ctr_bits", 3}, {"u_bits", 2}, {"latency", 3},
                  {"u_decay_period", 1u << 18}});
        tage.tables = tageLTables(1024, 0);
        spec.components = {
            comp("LOOP", "loop",
                 {{"entries", 256}, {"tag_bits", 10}, {"count_bits", 10},
                  {"conf_max", 15}, {"conf_threshold", 6},
                  {"min_trip", 3}, {"latency", 3}}),
            tage,
            comp("BTB", "btb",
                 {{"sets", 256}, {"ways", 2}, {"tag_bits", 20},
                  {"latency", 2}}),
            comp("BIM", "bim",
                 {{"sets", 4096}, {"ctr_bits", 2}, {"hist_bits", 10},
                  {"latency", 2}},
                 "pc"),
            comp("uBTB", "ubtb", {{"entries", 32}, {"ctr_bits", 2}}),
        };
        spec.tree = TreeSpec::chain(
            {TreeSpec::leaf("LOOP"), TreeSpec::leaf("TAGE"),
             TreeSpec::leaf("BTB"), TreeSpec::leaf("BIM"),
             TreeSpec::leaf("uBTB")});
        spec.bpu.ghistBits = 64;
        break;
      }
      case Design::RefBig: {
        ComponentSpec tage =
            comp("TAGE", "tage",
                 {{"ctr_bits", 3}, {"u_bits", 2}, {"latency", 3},
                  {"u_decay_period", 1u << 18}});
        tage.tables = tageLTables(4096, 2);
        // The preset's eighth, even longer table (a copy of the last).
        tage.tables.push_back({4096, 64, 13});
        spec.components = {
            comp("LOOP", "loop",
                 {{"entries", 512}, {"tag_bits", 10}, {"count_bits", 10},
                  {"conf_max", 15}, {"conf_threshold", 6},
                  {"min_trip", 3}, {"latency", 3}}),
            tage,
            comp("BTB", "btb",
                 {{"sets", 512}, {"ways", 4}, {"tag_bits", 20},
                  {"latency", 2}}),
            comp("BIM", "bim",
                 {{"sets", 8192}, {"ctr_bits", 2}, {"hist_bits", 10},
                  {"latency", 2}},
                 "pc"),
            comp("uBTB", "ubtb", {{"entries", 64}, {"ctr_bits", 2}}),
        };
        spec.tree = TreeSpec::chain(
            {TreeSpec::leaf("LOOP"), TreeSpec::leaf("TAGE"),
             TreeSpec::leaf("BTB"), TreeSpec::leaf("BIM"),
             TreeSpec::leaf("uBTB")});
        spec.bpu.ghistBits = 64;
        spec.core.coreWidth = 6;
        spec.core.robEntries = 224;
        spec.core.aluPorts = 6;
        spec.core.memPorts = 3;
        spec.core.intIqEntries = 64;
        spec.core.memIqEntries = 48;
        spec.core.l1iBytes = 64 * 1024;
        spec.core.l1dBytes = 64 * 1024;
        spec.core.l2Bytes = 1024 * 1024;
        spec.core.l3Bytes = 16 * 1024 * 1024;
        break;
      }
    }
    return spec;
}

bool
isPresetName(const std::string& name)
{
    return name == "tourney" || name == "b2" || name == "tagel" ||
           name == "tage-l" || name == "refbig" || name == "ref-big";
}

DesignSpec
presetSpec(const std::string& name)
{
    if (name == "tourney")
        return presetSpec(Design::Tourney);
    if (name == "b2")
        return presetSpec(Design::B2);
    if (name == "tagel" || name == "tage-l")
        return presetSpec(Design::TageL);
    if (name == "refbig" || name == "ref-big")
        return presetSpec(Design::RefBig);
    throw ConfigError("design", "unknown design '" + name +
                                    "' (tourney | b2 | tagel | refbig)");
}

} // namespace cobra::sim
