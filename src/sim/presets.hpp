/**
 * @file
 * The paper's evaluated configurations: the three COBRA-designed
 * predictors of Table I / Fig. 7 (Tournament, B2, TAGE-L), a REF-BIG
 * stand-in for the undisclosed commercial predictors of Table III
 * (see DESIGN.md §1), and the Table II BOOM core configuration.
 */

#ifndef COBRA_SIM_PRESETS_HPP
#define COBRA_SIM_PRESETS_HPP

#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace cobra::sim {

/** The evaluated predictor designs. */
enum class Design
{
    Tourney, ///< TOURNEY3 > [GBIM2 > BTB2, LBIM2]
    B2,      ///< GTAG3 > BTB2 > BIM2
    TageL,   ///< LOOP3 > TAGE3 > BTB2 > BIM2 > uBTB1
    RefBig,  ///< Commercial-class stand-in (large TAGE, wide core).
};

const char* designName(Design d);

/** Table I description string for a design. */
std::string designDescription(Design d);

/** The paper's topology notation for a design (Fig. 7 captions). */
std::string designTopologyNotation(Design d);

/** Build a fresh topology for @p d (single-use: holds learned state). */
bpu::Topology buildTopology(Design d, unsigned fetch_width = 4);

/**
 * Full simulation configuration for a design: Table II core + the
 * design's management-structure parameters (ghist width etc.).
 */
SimConfig makeConfig(Design d);

/** All three COBRA designs in the paper's order. */
std::vector<Design> paperDesigns();

} // namespace cobra::sim

#endif // COBRA_SIM_PRESETS_HPP
