#include "sim/core_area.hpp"

#include "core/cache.hpp"
#include "sim/design_spec.hpp"

namespace cobra::sim {

namespace {

/** SRAM-array cost of a cache level. */
double
cacheArea(const core::CacheParams& p, const phys::AreaModel& model)
{
    core::Cache c(p);
    return model.area(c.physicalCost());
}

} // namespace

phys::AreaReport
coreAreaReport(Design d, const phys::AreaModel& model)
{
    return coreAreaReport(presetSpec(d), model);
}

phys::AreaReport
coreAreaReport(const DesignSpec& spec, const phys::AreaModel& model)
{
    const SimConfig cfg = makeConfig(spec);
    phys::AreaReport r;
    r.title = std::string("core area (") + spec.name + ")";

    // ---- Branch predictor (the COBRA-generated pipeline) -------------
    bpu::BranchPredictorUnit unit(buildTopology(spec), cfg.bpu);
    r.add("BPU", unit.areaReport(model).total());

    // ---- Caches -------------------------------------------------------
    r.add("ICache", cacheArea(cfg.caches.l1i, model));
    r.add("DCache", cacheArea(cfg.caches.l1d, model));
    r.add("L2", cacheArea(cfg.caches.l2, model));

    // ---- Backend structures --------------------------------------------
    const auto& b = cfg.backend;
    {
        // ROB: wide flop array (PC, status, exception state, ...).
        phys::PhysicalCost c;
        c.flopBits = std::uint64_t{b.robEntries} * 96;
        c.logicGates = 4000;
        r.add("ROB", model.area(c));
    }
    {
        // Issue queues: payload flops + wakeup CAM per entry.
        phys::PhysicalCost c;
        const std::uint64_t entries =
            b.intIqEntries + b.memIqEntries + b.fpIqEntries;
        c.flopBits = entries * 80;
        c.camBits = entries * 20;
        c.logicGates = entries * 120;
        r.add("IssueUnits", model.area(c));
    }
    {
        // Physical register files: heavily multiported SRAM.
        phys::PhysicalCost c;
        c.sramBits = std::uint64_t{b.robEntries + 96} * 64 * 2;
        c.sramPorts = {static_cast<unsigned>(2 * b.aluPorts),
                       static_cast<unsigned>(b.aluPorts), 0};
        c.logicGates = 8000;
        r.add("RegFiles", model.area(c));
    }
    {
        // Execution units.
        phys::PhysicalCost c;
        c.logicGates = std::uint64_t{b.aluPorts} * 9'000 +
                       std::uint64_t{b.fpPorts} * 70'000 + 25'000;
        r.add("ExeUnits", model.area(c));
    }
    {
        // Load-store unit: LDQ/STQ with address-match CAMs + DTLB.
        phys::PhysicalCost c;
        c.flopBits = std::uint64_t{b.ldqEntries + b.stqEntries} * 90;
        c.camBits = std::uint64_t{b.ldqEntries + b.stqEntries} * 40;
        c.sramBits = 1024 * 60; // L2 TLB (Table II).
        c.logicGates = 20'000;
        r.add("LSU", model.area(c));
    }
    {
        // Decode/rename + fetch buffer and other frontend logic that
        // is not part of the generated predictor.
        phys::PhysicalCost c;
        c.logicGates = std::uint64_t{b.coreWidth} * 22'000;
        c.flopBits = cfg.frontend.fetchBufferInsts * 48;
        r.add("FrontendMisc", model.area(c));
    }
    return r;
}

} // namespace cobra::sim
