#include "serve/warm_cache.hpp"

#include <filesystem>
#include <sstream>

#include "guard/errors.hpp"

namespace fs = std::filesystem;

namespace cobra::serve {

WarmCache::WarmCache(std::string dir) : dir_(std::move(dir))
{
    fs::create_directories(dir_);
}

std::string
WarmCache::keyPath(const std::string& workload,
                   std::uint64_t config_hash, unsigned intervals,
                   unsigned idx) const
{
    std::ostringstream os;
    os << dir_ << "/" << workload << "-" << std::hex << config_hash
       << std::dec << "-k" << intervals << "-i" << idx << ".snap";
    return os.str();
}

bool
WarmCache::lookup(const std::string& path, warp::Snapshot& out)
{
    std::error_code ec;
    if (!fs::exists(path, ec) || ec) {
        ++misses_;
        return false;
    }
    try {
        out = warp::readSnapshotFile(path);
    } catch (const guard::CheckpointError&) {
        // Corrupt/truncated/foreign bytes: evict so the slot can be
        // regenerated cleanly, and report a miss.
        ++rejected_;
        fs::remove(path, ec);
        return false;
    }
    ++hits_;
    return true;
}

void
WarmCache::store(const std::string& path, const warp::Snapshot& snap)
{
    // Best-effort: a failed store costs a future fast-forward pass,
    // not correctness, so don't fail the point over it.
    const std::string tmp = path + ".tmp";
    try {
        warp::writeSnapshotFile(snap, tmp);
        std::error_code ec;
        fs::rename(tmp, path, ec);
        if (ec) {
            fs::remove(tmp, ec);
            return;
        }
        ++stores_;
    } catch (const guard::CheckpointError&) {
        std::error_code ec;
        fs::remove(tmp, ec);
    }
}

} // namespace cobra::serve
