/**
 * @file
 * cobra_serve request documents: the JSON schema a client drops into
 * `spool/incoming/`, parsed and validated into a SweepRequest before
 * any simulation work is admitted. A sweep request names a (design x
 * workload) grid plus the run options cobra_sim exposes as flags, an
 * optional warp block, and the robustness envelope (priority class,
 * per-point wall-clock timeout, retry budget). Designs come from the
 * "designs" list (preset names, resolved via sim::presetSpec) and/or
 * the "design_spec" field (inline DesignSpec documents) — both feed
 * the same sim::DesignSpec construction path, so a preset name and
 * its dumped spec produce bit-identical points. A `"kind": "search"`
 * request instead carries a "search" block (the cobra_search knobs)
 * and retires as a single point whose result is the Pareto-frontier
 * artifact. See docs/SERVICE.md for the full schema.
 *
 * Parsing is total: every malformed document becomes a RequestError
 * whose text names the offending field — the daemon turns it into a
 * structured `invalid_request` rejection record, never a crash.
 */

#ifndef COBRA_SERVE_REQUEST_HPP
#define COBRA_SERVE_REQUEST_HPP

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "search/driver.hpp"
#include "sim/design_spec.hpp"
#include "sim/presets.hpp"

namespace cobra::serve {

/** A structurally invalid request document. */
class RequestError : public std::runtime_error
{
  public:
    explicit RequestError(const std::string& msg)
        : std::runtime_error("invalid request: " + msg)
    {
    }
};

/** One grid cell of a request: a (design, workload) evaluation. */
struct PointSpec
{
    sim::DesignSpec design;
    std::string workload;
    std::string label; ///< "<design>/<workload>", unique per request.
};

/** A parsed, validated sweep- or search-request document. */
struct SweepRequest
{
    std::string id;     ///< Unique id (document or spool filename).
    std::string client; ///< Submitting client (quota accounting).
    /** Priority class 0..3; higher wins admission and scheduling. */
    int priority = 1;
    /** "sweep" (default) or "search" (budgeted composition search). */
    std::string kind = "sweep";

    std::vector<sim::DesignSpec> designs;
    std::vector<std::string> workloads;

    /**
     * "trace" field: path to a captured (CapturedOracle) trace file;
     * every point replays the oracle stream from it instead of
     * regenerating outcomes — bit-identical results, decode shared
     * across the grid. Requires exactly one workload (a capture is
     * tied to one program). The file itself is opened and validated
     * at admission, so a corrupt or mismatched trace becomes an
     * `invalid_trace` rejection document, never a failing point.
     */
    std::string tracePath;

    // ---- Run options (cobra_sim flag equivalents) ---------------------
    std::uint64_t insts = 400'000;
    std::uint64_t warmup = 120'000;
    bpu::GhistRepairMode ghist = bpu::GhistRepairMode::RepairAndReplay;
    bool sfb = false;
    bool serialize = false;
    bool audit = false;
    double faultRate = 0.0;
    std::uint64_t faultSeed = 0x5EED;
    std::uint64_t deadlockCycles = 100'000;
    /**
     * "specialize" field: "auto" (default; fuse when possible), "off"
     * (force the generic loop), or "require" (reject the request at
     * admission when any of its designs cannot bind the fused loop —
     * results are bit-identical either way, so "require" is a
     * performance assertion, not a semantic switch).
     */
    sim::SpecializeMode specialize = sim::SpecializeMode::Auto;

    // ---- Robustness envelope ------------------------------------------
    /** Per-point wall-clock watchdog; 0 = no deadline. */
    std::uint64_t pointTimeoutMs = 0;
    /** Extra attempts for transient failure classes. */
    unsigned maxRetries = 2;

    // ---- Warp block ----------------------------------------------------
    bool warp = false;
    unsigned intervals = 4;
    std::uint64_t warmupCycles = 10'000;
    std::uint64_t sampleInsts = 0;

    // ---- Search block ("kind": "search" only) --------------------------
    /** cobra_search configuration; workloads come from "workloads". */
    search::SearchConfig searchCfg;

    /**
     * Parse and validate one request document. @p fallback_id names
     * the request when the document carries no "id" (the daemon
     * passes the spool filename stem). Throws RequestError on any
     * structural or semantic violation (unknown design/workload, bad
     * priority, warmup > insts, ...).
     */
    static SweepRequest parse(const std::string& text,
                              const std::string& fallback_id);

    /**
     * The request's grid, workload-major (cobra_sim's order). A
     * search request is a single point labeled "search".
     */
    std::vector<PointSpec> points() const;

    /** cobra_sim-equivalent SimConfig for one design of this request. */
    sim::SimConfig makeConfig(const sim::DesignSpec& d) const;
};

} // namespace cobra::serve

#endif // COBRA_SERVE_REQUEST_HPP
