#include "serve/journal.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>

#include <cstdio>
#include <filesystem>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define COBRA_SERVE_HAVE_FSYNC 1
#endif

#include "common/json.hpp"

namespace fs = std::filesystem;

namespace cobra::serve {

Journal::Journal(std::string path) : path_(std::move(path))
{
    open();
}

Journal::~Journal()
{
    if (f_ != nullptr)
        std::fclose(f_);
}

void
Journal::open()
{
    f_ = std::fopen(path_.c_str(), "ab");
    if (f_ == nullptr)
        throw std::runtime_error("cannot open journal " + path_);
}

void
Journal::append(const std::string& line)
{
    std::lock_guard<std::mutex> lk(m_);
    if (std::fwrite(line.data(), 1, line.size(), f_) != line.size() ||
        std::fputc('\n', f_) == EOF || std::fflush(f_) != 0)
        throw std::runtime_error("journal append failed: " + path_);
#if COBRA_SERVE_HAVE_FSYNC
    // Durability, not just ordering: a recorded point must survive a
    // power cut, or recovery could double-run it.
    ::fsync(::fileno(f_));
#endif
}

void
Journal::checkpoint(const std::vector<std::string>& lines)
{
    std::lock_guard<std::mutex> lk(m_);
    std::fclose(f_);
    f_ = nullptr;

    const std::string tmp = path_ + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            throw std::runtime_error("cannot write " + tmp);
        for (const std::string& l : lines)
            os << l << '\n';
        os.flush();
        if (!os)
            throw std::runtime_error("write failed: " + tmp);
    }
    std::error_code ec;
    fs::rename(tmp, path_, ec);
    if (ec) {
        throw std::runtime_error("journal checkpoint rename: " +
                                 ec.message());
    }
    open();
}

std::string
Journal::acceptLine(const std::string& req_id, const std::string& client,
                    int priority, std::size_t points)
{
    std::ostringstream os;
    os << "{\"ev\": \"accept\", \"id\": \"" << jsonEscape(req_id)
       << "\", \"client\": \"" << jsonEscape(client)
       << "\", \"priority\": " << priority << ", \"points\": " << points
       << "}";
    return os.str();
}

std::string
Journal::pointLine(const std::string& req_id, std::size_t idx,
                   const std::string& status,
                   const std::string& error_class,
                   const std::string& error, unsigned attempts,
                   const std::string& fragment)
{
    std::ostringstream os;
    os << "{\"ev\": \"point\", \"id\": \"" << jsonEscape(req_id)
       << "\", \"idx\": " << idx << ", \"status\": \""
       << jsonEscape(status) << "\", \"error_class\": \""
       << jsonEscape(error_class) << "\", \"error\": \""
       << jsonEscape(error) << "\", \"attempts\": " << attempts
       // The fragment (the point's rendered result-document entry) is
       // itself JSON; it rides inside the record as an escaped string
       // so the journal stays strictly line-oriented.
       << ", \"fragment\": \"" << jsonEscape(fragment) << "\"}";
    return os.str();
}

std::string
Journal::doneLine(const std::string& req_id, const std::string& status)
{
    std::ostringstream os;
    os << "{\"ev\": \"done\", \"id\": \"" << jsonEscape(req_id)
       << "\", \"status\": \"" << jsonEscape(status) << "\"}";
    return os.str();
}

std::size_t
Journal::replay(const std::string& path,
                const std::function<void(const Json&)>& cb)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return 0;
    std::size_t n = 0;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        Json rec;
        try {
            rec = Json::parse(line);
        } catch (const JsonError&) {
            break; // Torn tail: the crash cut this record short.
        }
        if (!rec.isObject() || rec.find("ev") == nullptr)
            break;
        cb(rec);
        ++n;
    }
    return n;
}

} // namespace cobra::serve
