/**
 * @file
 * cobra_serve warm-state cache: a content-addressed store of warp
 * fast-forward snapshots under `spool/warm/`, so repeated warp
 * requests over the same (workload, config) pair skip the functional
 * fast-forward pass entirely.
 *
 * Keying is defense-in-depth. The file name is the content address —
 * (workload, config-hash, interval count, interval index) — but a hit
 * is only trusted after the snapshot file's own validation chain
 * (magic, version, FNV-1a checksum) passes AND warp::runWarp
 * re-checks the live simulator fingerprint and interval placement.
 * A corrupt, truncated, or stale entry is therefore a miss (and is
 * evicted), never wrong simulation state.
 */

#ifndef COBRA_SERVE_WARM_CACHE_HPP
#define COBRA_SERVE_WARM_CACHE_HPP

#include <cstdint>
#include <string>

#include "common/stats.hpp"
#include "warp/snapshot.hpp"

namespace cobra::serve {

class WarmCache
{
  public:
    /** Opens (creating if needed) the cache directory @p dir. */
    explicit WarmCache(std::string dir);

    /**
     * Content-address one snapshot slot. @p config_hash must cover
     * every request field that affects simulator state (the daemon
     * hashes the full run-option block).
     */
    std::string keyPath(const std::string& workload,
                        std::uint64_t config_hash, unsigned intervals,
                        unsigned idx) const;

    /**
     * Look up one slot. On a valid entry, fills @p out and returns
     * true. A missing file is a miss; a corrupt or unreadable file
     * (guard::CheckpointError from the snapshot decoder) is counted
     * as `rejected`, evicted from disk, and reported as a miss.
     */
    bool lookup(const std::string& path, warp::Snapshot& out);

    /** Store one slot (atomic write-then-rename; best-effort). */
    void store(const std::string& path, const warp::Snapshot& snap);

    /** CobraScope stats (register under "serve.warm_cache"). */
    const StatGroup& stats() const { return stats_; }

  private:
    std::string dir_;

    StatGroup stats_{"warm_cache"};
    Stat<Counter> hits_{stats_, "hits", "valid snapshot cache hits"};
    Stat<Counter> misses_{stats_, "misses", "absent cache entries"};
    Stat<Counter> rejected_{stats_, "rejected",
                            "corrupt or invalid entries evicted"};
    Stat<Counter> stores_{stats_, "stores", "snapshots written"};
};

} // namespace cobra::serve

#endif // COBRA_SERVE_WARM_CACHE_HPP
