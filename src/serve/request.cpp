#include "serve/request.hpp"

#include <algorithm>
#include <set>

#include "guard/errors.hpp"
#include "program/workload.hpp"
#include "serve/json.hpp"

namespace cobra::serve {

namespace {

bpu::GhistRepairMode
ghistFromName(const std::string& name)
{
    if (name == "none")
        return bpu::GhistRepairMode::None;
    if (name == "repair")
        return bpu::GhistRepairMode::RepairOnly;
    if (name == "replay")
        return bpu::GhistRepairMode::RepairAndReplay;
    throw RequestError("unknown ghist mode '" + name +
                       "' (none | repair | replay)");
}

std::vector<std::string>
stringList(const Json& doc, const char* key)
{
    const Json* v = doc.find(key);
    if (v == nullptr || !v->isArray() || v->asArray().empty())
        throw RequestError(std::string("'") + key +
                           "' must be a non-empty array of strings");
    std::vector<std::string> out;
    for (const Json& e : v->asArray()) {
        if (!e.isString())
            throw RequestError(std::string("'") + key +
                               "' entries must be strings");
        out.push_back(e.asString());
    }
    return out;
}

/**
 * Resolve the request's designs through the one DesignSpec path:
 * "designs" holds preset names (sim::presetSpec), "design_spec" holds
 * inline spec documents (object or array of objects). Either field
 * alone suffices; together they concatenate, names first.
 */
std::vector<sim::DesignSpec>
parseDesigns(const Json& doc)
{
    std::vector<sim::DesignSpec> out;
    const Json* names = doc.find("designs");
    const Json* specs = doc.find("design_spec");
    if (names == nullptr && specs == nullptr)
        throw RequestError(
            "a sweep request needs 'designs' (preset names) and/or "
            "'design_spec' (inline spec documents)");
    if (names != nullptr) {
        for (const std::string& d : stringList(doc, "designs")) {
            try {
                out.push_back(sim::presetSpec(d));
            } catch (const guard::ConfigError&) {
                throw RequestError("unknown design '" + d +
                                   "' (tourney | b2 | tagel | refbig)");
            }
        }
    }
    if (specs != nullptr) {
        const std::vector<Json> one;
        const std::vector<Json>& entries =
            specs->isArray() ? specs->asArray() : one;
        try {
            if (specs->isArray()) {
                if (entries.empty())
                    throw RequestError(
                        "'design_spec' must not be an empty array");
                for (const Json& e : entries)
                    out.push_back(sim::DesignSpec::fromJson(e));
            } else {
                out.push_back(sim::DesignSpec::fromJson(*specs));
            }
        } catch (const guard::ConfigError& e) {
            throw RequestError(std::string("'design_spec': ") +
                               e.what());
        }
        for (std::size_t i = out.size() - (specs->isArray()
                                               ? entries.size()
                                               : 1);
             i < out.size(); ++i) {
            if (out[i].name.empty())
                throw RequestError("'design_spec' documents need a "
                                   "non-empty \"name\" (it labels "
                                   "result points)");
        }
    }
    return out;
}

/** The "search" block of a `"kind": "search"` request. */
search::SearchConfig
parseSearchBlock(const Json& doc)
{
    search::SearchConfig cfg;
    const Json* s = doc.find("search");
    if (s == nullptr)
        return cfg; // All-defaults search is valid.
    if (!s->isObject())
        throw RequestError("'search' must be an object");
    cfg.seed = s->getU64("seed", cfg.seed);
    cfg.pool =
        static_cast<unsigned>(s->getU64("pool", cfg.pool));
    cfg.budget.storageKb =
        s->getU64("budget_kb", cfg.budget.storageKb);
    cfg.budget.areaUm2 =
        s->getDouble("budget_um2", cfg.budget.areaUm2);
    cfg.anchors = s->getBool("anchors", cfg.anchors);
    cfg.seedEvals = static_cast<unsigned>(
        s->getU64("seed_evals", cfg.seedEvals));
    cfg.functionalSurvivors = static_cast<unsigned>(
        s->getU64("survivors", cfg.functionalSurvivors));
    cfg.warpSurvivors = static_cast<unsigned>(
        s->getU64("warp_survivors", cfg.warpSurvivors));
    cfg.finalists = static_cast<unsigned>(
        s->getU64("finalists", cfg.finalists));
    cfg.traceBranches =
        s->getU64("trace_branches", cfg.traceBranches);
    cfg.traceWarmup = s->getU64("trace_warmup", cfg.traceWarmup);
    cfg.warpInsts = s->getU64("warp_insts", cfg.warpInsts);
    cfg.warpIntervals = static_cast<unsigned>(
        s->getU64("intervals", cfg.warpIntervals));
    cfg.warpSampleInsts =
        s->getU64("sample_insts", cfg.warpSampleInsts);
    cfg.detailInsts = s->getU64("insts", cfg.detailInsts);
    cfg.detailWarmup = s->getU64("warmup", cfg.detailWarmup);
    cfg.ridgeLambda = s->getDouble("ridge_lambda", cfg.ridgeLambda);
    cfg.batchEval = s->getBool("batch_eval", cfg.batchEval);
    return cfg;
}

} // namespace

SweepRequest
SweepRequest::parse(const std::string& text,
                    const std::string& fallback_id)
{
    Json doc;
    try {
        doc = Json::parse(text);
    } catch (const JsonError& e) {
        throw RequestError(e.what());
    }
    if (!doc.isObject())
        throw RequestError("document must be a JSON object");

    SweepRequest r;
    try {
        r.id = doc.getString("id", fallback_id);
        r.client = doc.getString("client", "");
        r.priority = static_cast<int>(doc.getU64("priority", 1));
        r.kind = doc.getString("kind", "sweep");
        if (r.kind != "sweep" && r.kind != "search")
            throw RequestError("'kind' must be sweep | search, got '" +
                               r.kind + "'");

        if (r.kind == "sweep")
            r.designs = parseDesigns(doc);
        else if (doc.find("designs") != nullptr ||
                 doc.find("design_spec") != nullptr)
            throw RequestError("a search request explores designs "
                               "itself; drop 'designs'/'design_spec'");
        r.workloads = stringList(doc, "workloads");

        r.tracePath = doc.getString("trace", "");
        r.insts = doc.getU64("insts", r.insts);
        r.warmup = doc.getU64("warmup", r.warmup);
        r.ghist = ghistFromName(doc.getString("ghist", "replay"));
        r.sfb = doc.getBool("sfb", false);
        r.serialize = doc.getBool("serialize", false);
        r.audit = doc.getBool("audit", false);
        r.faultRate = doc.getDouble("fault_rate", 0.0);
        r.faultSeed = doc.getU64("fault_seed", r.faultSeed);
        r.deadlockCycles =
            doc.getU64("deadlock_cycles", r.deadlockCycles);
        {
            const std::string sp =
                doc.getString("specialize", "auto");
            if (sp == "auto")
                r.specialize = sim::SpecializeMode::Auto;
            else if (sp == "off")
                r.specialize = sim::SpecializeMode::Off;
            else if (sp == "require")
                r.specialize = sim::SpecializeMode::Require;
            else
                throw RequestError("'specialize' must be auto | off "
                                   "| require, got '" +
                                   sp + "'");
        }
        r.pointTimeoutMs = doc.getU64("point_timeout_ms", 0);
        r.maxRetries =
            static_cast<unsigned>(doc.getU64("max_retries", 2));

        if (const Json* w = doc.find("warp")) {
            if (!w->isObject())
                throw RequestError("'warp' must be an object");
            r.warp = true;
            r.intervals = static_cast<unsigned>(
                w->getU64("intervals", r.intervals));
            r.warmupCycles =
                w->getU64("warmup_cycles", r.warmupCycles);
            r.sampleInsts = w->getU64("sample_insts", r.sampleInsts);
        }
        if (r.kind == "search") {
            r.searchCfg = parseSearchBlock(doc);
            r.searchCfg.workloads = r.workloads;
        } else if (doc.find("search") != nullptr) {
            throw RequestError(
                "'search' needs \"kind\": \"search\"");
        }
    } catch (const JsonError& e) {
        // A typed-accessor mismatch (e.g. "insts": "lots").
        throw RequestError(e.what());
    }

    // ---- Semantic validation ------------------------------------------
    if (r.id.empty())
        throw RequestError("'id' must be non-empty");
    if (r.id.find('/') != std::string::npos ||
        r.id.find("..") != std::string::npos)
        throw RequestError("'id' must not contain '/' or '..' (it "
                           "names spool files)");
    if (r.client.empty())
        throw RequestError("'client' is required");
    if (r.priority < 0 || r.priority > 3)
        throw RequestError("'priority' must be in [0, 3]");
    if (r.maxRetries > 8)
        throw RequestError("'max_retries' must be <= 8");
    {
        std::set<std::string> seenDesigns;
        for (const sim::DesignSpec& d : r.designs) {
            if (!seenDesigns.insert(d.name).second)
                throw RequestError("duplicate design '" + d.name +
                                   "'");
        }
        const auto known = prog::WorkloadLibrary::all();
        const std::set<std::string> knownSet(known.begin(),
                                             known.end());
        std::set<std::string> seen;
        for (const std::string& w : r.workloads) {
            if (knownSet.count(w) == 0)
                throw RequestError("unknown workload '" + w + "'");
            if (!seen.insert(w).second)
                throw RequestError("duplicate workload '" + w + "'");
        }
    }
    if (r.kind == "search") {
        if (!r.tracePath.empty())
            throw RequestError(
                "'trace' does not apply to search requests");
        if (r.warp)
            throw RequestError("'warp' does not apply to search "
                               "requests (the search block has its "
                               "own warp tier)");
        try {
            r.searchCfg.validate();
        } catch (const guard::ConfigError& e) {
            throw RequestError(std::string("'search': ") + e.what());
        }
        return r;
    }
    if (!r.tracePath.empty() && r.workloads.size() != 1)
        throw RequestError("'trace' requires exactly one workload "
                           "(a capture is tied to one program)");
    if (r.warp) {
        if (r.intervals < 1)
            throw RequestError("'warp.intervals' must be >= 1");
        if (r.intervals > r.insts)
            throw RequestError(
                "'warp.intervals' exceeds the instruction budget");
        if (r.warmupCycles < 1)
            throw RequestError("'warp.warmup_cycles' must be >= 1");
    }
    // Run the full SimConfig validation (strict, as the CLI does) so
    // e.g. warmup > insts or fault_rate > 1 is rejected at admission
    // with the validator's own message, per design.
    try {
        for (const sim::DesignSpec& d : r.designs)
            r.makeConfig(d).validate(/*strict=*/true);
    } catch (const guard::ConfigError& e) {
        throw RequestError(e.what());
    }
    // "specialize": "require" is validated at admission, mirroring
    // cobra_sim's exit-2 path: a request whose fused loop cannot bind
    // (audit/fault guards active, or an unregistered tuple) is
    // rejected up front instead of failing every point.
    if (r.specialize == sim::SpecializeMode::Require) {
        for (const sim::DesignSpec& d : r.designs) {
            if (!sim::specializeAvailable(sim::buildTopology(d),
                                          r.makeConfig(d)))
                throw RequestError(
                    "'specialize': 'require' cannot be honoured for "
                    "design '" +
                    d.name +
                    "' (audit/fault injection active, or the "
                    "component tuple is not registered)");
        }
    }
    return r;
}

std::vector<PointSpec>
SweepRequest::points() const
{
    std::vector<PointSpec> out;
    if (kind == "search") {
        PointSpec p;
        p.label = "search";
        out.push_back(std::move(p));
        return out;
    }
    for (const std::string& wl : workloads) {
        for (const sim::DesignSpec& d : designs) {
            PointSpec p;
            p.design = d;
            p.workload = wl;
            p.label = d.name + "/" + wl;
            out.push_back(std::move(p));
        }
    }
    return out;
}

sim::SimConfig
SweepRequest::makeConfig(const sim::DesignSpec& d) const
{
    sim::SimConfig cfg = sim::makeConfig(d);
    cfg.maxInsts = insts;
    cfg.warmupInsts = warmup;
    cfg.frontend.ghistMode = ghist;
    cfg.backend.ghistMode = ghist;
    cfg.backend.sfbEnabled = sfb;
    cfg.frontend.serializeFetch = serialize;
    cfg.deadlockCycles = deadlockCycles;
    cfg.audit = audit;
    cfg.faultRate = faultRate;
    cfg.faultSeed = faultSeed;
    cfg.specialize = specialize;
    return cfg;
}

} // namespace cobra::serve
