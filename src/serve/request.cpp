#include "serve/request.hpp"

#include <algorithm>
#include <set>

#include "guard/errors.hpp"
#include "program/workload.hpp"
#include "serve/json.hpp"

namespace cobra::serve {

sim::Design
designFromName(const std::string& name)
{
    if (name == "tourney")
        return sim::Design::Tourney;
    if (name == "b2")
        return sim::Design::B2;
    if (name == "tagel")
        return sim::Design::TageL;
    if (name == "refbig")
        return sim::Design::RefBig;
    throw RequestError("unknown design '" + name +
                       "' (tourney | b2 | tagel | refbig)");
}

namespace {

bpu::GhistRepairMode
ghistFromName(const std::string& name)
{
    if (name == "none")
        return bpu::GhistRepairMode::None;
    if (name == "repair")
        return bpu::GhistRepairMode::RepairOnly;
    if (name == "replay")
        return bpu::GhistRepairMode::RepairAndReplay;
    throw RequestError("unknown ghist mode '" + name +
                       "' (none | repair | replay)");
}

std::vector<std::string>
stringList(const Json& doc, const char* key)
{
    const Json* v = doc.find(key);
    if (v == nullptr || !v->isArray() || v->asArray().empty())
        throw RequestError(std::string("'") + key +
                           "' must be a non-empty array of strings");
    std::vector<std::string> out;
    for (const Json& e : v->asArray()) {
        if (!e.isString())
            throw RequestError(std::string("'") + key +
                               "' entries must be strings");
        out.push_back(e.asString());
    }
    return out;
}

} // namespace

SweepRequest
SweepRequest::parse(const std::string& text,
                    const std::string& fallback_id)
{
    Json doc;
    try {
        doc = Json::parse(text);
    } catch (const JsonError& e) {
        throw RequestError(e.what());
    }
    if (!doc.isObject())
        throw RequestError("document must be a JSON object");

    SweepRequest r;
    try {
        r.id = doc.getString("id", fallback_id);
        r.client = doc.getString("client", "");
        r.priority = static_cast<int>(doc.getU64("priority", 1));

        for (const std::string& d : stringList(doc, "designs"))
            r.designs.push_back(designFromName(d));
        r.workloads = stringList(doc, "workloads");

        r.tracePath = doc.getString("trace", "");
        r.insts = doc.getU64("insts", r.insts);
        r.warmup = doc.getU64("warmup", r.warmup);
        r.ghist = ghistFromName(doc.getString("ghist", "replay"));
        r.sfb = doc.getBool("sfb", false);
        r.serialize = doc.getBool("serialize", false);
        r.audit = doc.getBool("audit", false);
        r.faultRate = doc.getDouble("fault_rate", 0.0);
        r.faultSeed = doc.getU64("fault_seed", r.faultSeed);
        r.deadlockCycles =
            doc.getU64("deadlock_cycles", r.deadlockCycles);
        {
            const std::string sp =
                doc.getString("specialize", "auto");
            if (sp == "auto")
                r.specialize = sim::SpecializeMode::Auto;
            else if (sp == "off")
                r.specialize = sim::SpecializeMode::Off;
            else if (sp == "require")
                r.specialize = sim::SpecializeMode::Require;
            else
                throw RequestError("'specialize' must be auto | off "
                                   "| require, got '" +
                                   sp + "'");
        }
        r.pointTimeoutMs = doc.getU64("point_timeout_ms", 0);
        r.maxRetries =
            static_cast<unsigned>(doc.getU64("max_retries", 2));

        if (const Json* w = doc.find("warp")) {
            if (!w->isObject())
                throw RequestError("'warp' must be an object");
            r.warp = true;
            r.intervals = static_cast<unsigned>(
                w->getU64("intervals", r.intervals));
            r.warmupCycles =
                w->getU64("warmup_cycles", r.warmupCycles);
            r.sampleInsts = w->getU64("sample_insts", r.sampleInsts);
        }
    } catch (const JsonError& e) {
        // A typed-accessor mismatch (e.g. "insts": "lots").
        throw RequestError(e.what());
    }

    // ---- Semantic validation ------------------------------------------
    if (r.id.empty())
        throw RequestError("'id' must be non-empty");
    if (r.id.find('/') != std::string::npos ||
        r.id.find("..") != std::string::npos)
        throw RequestError("'id' must not contain '/' or '..' (it "
                           "names spool files)");
    if (r.client.empty())
        throw RequestError("'client' is required");
    if (r.priority < 0 || r.priority > 3)
        throw RequestError("'priority' must be in [0, 3]");
    if (r.maxRetries > 8)
        throw RequestError("'max_retries' must be <= 8");
    {
        std::set<sim::Design> seenDesigns;
        for (sim::Design d : r.designs) {
            if (!seenDesigns.insert(d).second)
                throw RequestError(
                    std::string("duplicate design '") +
                    sim::designName(d) + "'");
        }
        const auto known = prog::WorkloadLibrary::all();
        const std::set<std::string> knownSet(known.begin(),
                                             known.end());
        std::set<std::string> seen;
        for (const std::string& w : r.workloads) {
            if (knownSet.count(w) == 0)
                throw RequestError("unknown workload '" + w + "'");
            if (!seen.insert(w).second)
                throw RequestError("duplicate workload '" + w + "'");
        }
    }
    if (!r.tracePath.empty() && r.workloads.size() != 1)
        throw RequestError("'trace' requires exactly one workload "
                           "(a capture is tied to one program)");
    if (r.warp) {
        if (r.intervals < 1)
            throw RequestError("'warp.intervals' must be >= 1");
        if (r.intervals > r.insts)
            throw RequestError(
                "'warp.intervals' exceeds the instruction budget");
        if (r.warmupCycles < 1)
            throw RequestError("'warp.warmup_cycles' must be >= 1");
    }
    // Run the full SimConfig validation (strict, as the CLI does) so
    // e.g. warmup > insts or fault_rate > 1 is rejected at admission
    // with the validator's own message, per design.
    try {
        for (sim::Design d : r.designs)
            r.makeConfig(d).validate(/*strict=*/true);
    } catch (const guard::ConfigError& e) {
        throw RequestError(e.what());
    }
    // "specialize": "require" is validated at admission, mirroring
    // cobra_sim's exit-2 path: a request whose fused loop cannot bind
    // (audit/fault guards active, or an unregistered tuple) is
    // rejected up front instead of failing every point.
    if (r.specialize == sim::SpecializeMode::Require) {
        for (sim::Design d : r.designs) {
            if (!sim::specializeAvailable(sim::buildTopology(d),
                                          r.makeConfig(d)))
                throw RequestError(
                    std::string("'specialize': 'require' cannot be "
                                "honoured for design '") +
                    sim::designName(d) +
                    "' (audit/fault injection active, or the "
                    "component tuple is not registered)");
        }
    }
    return r;
}

std::vector<PointSpec>
SweepRequest::points() const
{
    std::vector<PointSpec> out;
    for (const std::string& wl : workloads) {
        for (sim::Design d : designs) {
            PointSpec p;
            p.design = d;
            p.workload = wl;
            p.label = std::string(sim::designName(d)) + "/" + wl;
            out.push_back(std::move(p));
        }
    }
    return out;
}

sim::SimConfig
SweepRequest::makeConfig(sim::Design d) const
{
    sim::SimConfig cfg = sim::makeConfig(d);
    cfg.maxInsts = insts;
    cfg.warmupInsts = warmup;
    cfg.frontend.ghistMode = ghist;
    cfg.backend.ghistMode = ghist;
    cfg.backend.sfbEnabled = sfb;
    cfg.frontend.serializeFetch = serialize;
    cfg.deadlockCycles = deadlockCycles;
    cfg.audit = audit;
    cfg.faultRate = faultRate;
    cfg.faultSeed = faultSeed;
    cfg.specialize = specialize;
    return cfg;
}

} // namespace cobra::serve
