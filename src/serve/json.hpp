/**
 * @file
 * Minimal JSON value model and recursive-descent parser for the
 * cobra_serve request documents. COBRA historically only *emitted*
 * JSON (common/json.hpp); the daemon is the first consumer that must
 * parse untrusted input, so the parser is strict (no comments, no
 * trailing commas, UTF-8 passed through verbatim), depth-bounded, and
 * reports every syntax error as a JsonError naming the byte offset —
 * a malformed request becomes a structured "invalid_request" failure
 * record, never undefined behaviour.
 */

#ifndef COBRA_SERVE_JSON_HPP
#define COBRA_SERVE_JSON_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace cobra::serve {

/** Malformed JSON text; what() names the byte offset. */
class JsonError : public std::runtime_error
{
  public:
    JsonError(std::size_t offset, const std::string& detail)
        : std::runtime_error("json parse error at byte " +
                             std::to_string(offset) + ": " + detail),
          offset_(offset)
    {
    }

    std::size_t offset() const { return offset_; }

  private:
    std::size_t offset_;
};

/**
 * One parsed JSON value. Objects preserve no insertion order (keyed
 * lookup only); numbers keep both a double and, when exactly
 * representable, an integer view so counters survive untruncated.
 */
class Json
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Json() = default;

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Typed accessors; throw JsonError(0, ...) on a kind mismatch. */
    bool asBool() const;
    double asDouble() const;
    std::int64_t asInt() const;
    std::uint64_t asU64() const;
    const std::string& asString() const;
    const std::vector<Json>& asArray() const;
    const std::map<std::string, Json>& asObject() const;

    /** Object member, or nullptr when absent / not an object. */
    const Json* find(const std::string& key) const;

    // ---- Typed object-member helpers (defaulted lookups) ------------
    bool getBool(const std::string& key, bool dflt) const;
    double getDouble(const std::string& key, double dflt) const;
    std::uint64_t getU64(const std::string& key,
                         std::uint64_t dflt) const;
    std::string getString(const std::string& key,
                          const std::string& dflt) const;

    /**
     * Parse @p text as one JSON document (leading/trailing whitespace
     * allowed, anything else after the value is an error). Throws
     * JsonError on malformed input or nesting deeper than 64 levels.
     */
    static Json parse(const std::string& text);

    // ---- Construction (tests and writers) ----------------------------
    static Json makeNull();
    static Json makeBool(bool b);
    static Json makeNumber(double d);
    static Json makeString(std::string s);

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    bool numIsInt_ = false;     ///< num_ was written as an integer.
    std::int64_t int_ = 0;      ///< Integer view (valid iff numIsInt_).
    std::string str_;
    std::vector<Json> arr_;
    std::map<std::string, Json> obj_;

    friend class JsonParser;
};

} // namespace cobra::serve

#endif // COBRA_SERVE_JSON_HPP
