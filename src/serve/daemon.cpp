#include "serve/daemon.hpp"

#include <algorithm>
#include <chrono>
#include <iostream>
#include <sstream>
#include <thread>

#include "common/json.hpp"
#include "guard/errors.hpp"
#include "search/driver.hpp"
#include "sim/presets.hpp"
#include "trace/replay.hpp"
#include "warp/warp.hpp"

namespace cobra::serve {

namespace {

/** FNV-1a over a byte string (the warm-cache content address). */
std::uint64_t
fnv1a(const std::string& s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string
fragmentHead(const std::string& label, const std::string& status,
             unsigned attempts)
{
    std::ostringstream os;
    os << "    {\n      \"label\": \"" << jsonEscape(label) << "\",\n"
       << "      \"status\": \"" << status << "\",\n"
       << "      \"attempts\": " << attempts;
    return os.str();
}

std::string
okFragment(const std::string& label, unsigned attempts,
           const sim::SimResult& r, double wall_seconds,
           const warp::WarpEstimate* est)
{
    std::ostringstream os;
    os << fragmentHead(label, "ok", attempts) << ",\n";
    sim::writeResultFields(os, r, "      ", /*trailing_comma=*/true);
    if (est != nullptr) {
        os << "      \"warp\": {\n"
           << "        \"intervals\": " << est->intervals.size()
           << ",\n"
           << "        \"warm_hits\": " << est->warmHits << ",\n"
           << "        \"ff_insts\": " << est->ffInsts << ",\n"
           << "        \"ipc_ci95\": " << est->ipcCi95 << ",\n"
           << "        \"mpki_ci95\": " << est->mpkiCi95 << "\n"
           << "      },\n";
    }
    os << "      \"wall_seconds\": " << wall_seconds << "\n    }";
    return os.str();
}

std::string
failedFragment(const PointRecord& rec)
{
    std::ostringstream os;
    os << fragmentHead(rec.label, rec.status, rec.attempts) << ",\n"
       << "      \"error_class\": \"" << jsonEscape(rec.errorClass)
       << "\",\n"
       << "      \"error\": \"" << jsonEscape(rec.error)
       << "\"\n    }";
    return os.str();
}

std::string
stubFragment(const std::string& label, const std::string& status,
             unsigned attempts)
{
    return fragmentHead(label, status, attempts) + "\n    }";
}

/** Re-indent a pretty-printed JSON document for inline embedding:
 *  every line but the first gets @p pad; the trailing newline goes. */
std::string
indentInline(const std::string& doc, const char* pad)
{
    std::string out;
    out.reserve(doc.size());
    for (std::size_t i = 0; i < doc.size(); ++i) {
        out += doc[i];
        if (doc[i] == '\n' && i + 1 < doc.size())
            out += pad;
    }
    while (!out.empty() && out.back() == '\n')
        out.pop_back();
    return out;
}

std::string
searchFragment(const std::string& label, unsigned attempts,
               const search::SearchResult& r, double wall_seconds)
{
    std::ostringstream os;
    os << fragmentHead(label, "ok", attempts) << ",\n"
       << "      \"functional_evals\": " << r.functionalEvals << ",\n"
       << "      \"warp_evals\": " << r.warpEvals << ",\n"
       << "      \"detailed_evals\": " << r.detailedEvals << ",\n"
       << "      \"evals_saved\": " << r.evalsSaved << ",\n"
       << "      \"frontier_size\": " << r.frontier.size() << ",\n"
       << "      \"search\": "
       << indentInline(search::frontierJson(r), "      ") << ",\n"
       << "      \"wall_seconds\": " << wall_seconds << "\n    }";
    return os.str();
}

std::string
stemOf(const std::string& fname)
{
    return fname.size() > 5 ? fname.substr(0, fname.size() - 5)
                            : fname;
}

} // namespace

Daemon::Daemon(const ServeConfig& cfg)
    : cfg_(cfg), spool_(cfg.spoolRoot), journal_(spool_.journalPath()),
      warm_(spool_.warmDir())
{
    registry_.add("serve", stats_);
    registry_.add("serve.warm_cache", warm_.stats());
}

std::size_t
Daemon::run(const std::atomic<bool>& stop)
{
    recover();
    writeStatusDoc("running");

    while (!stop.load(std::memory_order_relaxed)) {
        admitIncoming();
        const bool ran = executeNext(stop);
        writeStatusDoc(stop.load(std::memory_order_relaxed)
                           ? "draining"
                           : "running");
        if (cfg_.once) {
            if (!ran && queue_.empty() && spool_.scanIncoming().empty())
                break;
            continue;
        }
        if (!ran && !stop.load(std::memory_order_relaxed)) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(cfg_.pollMs));
        }
    }

    // Graceful exit: whatever is still queued stays in active/ with
    // its journal records intact, so the next daemon resumes it.
    checkpointJournal();
    writeStatusDoc("stopped");
    return retired_;
}

// ---- Intake -------------------------------------------------------------

void
Daemon::recover()
{
    Journal::replay(spool_.journalPath(), [this](const Json& rec) {
        const std::string ev = rec.getString("ev", "");
        const std::string id = rec.getString("id", "");
        if (ev == "point") {
            PointRecord p;
            p.status = rec.getString("status", "failed");
            p.errorClass = rec.getString("error_class", "");
            p.error = rec.getString("error", "");
            p.attempts =
                static_cast<unsigned>(rec.getU64("attempts", 1));
            p.fragment = rec.getString("fragment", "");
            recovered_[id][static_cast<std::size_t>(
                rec.getU64("idx", 0))] = std::move(p);
        } else if (ev == "done") {
            recoveredDone_[id] = rec.getString("status", "failed");
        }
    });

    for (const std::string& fname : spool_.scanActive()) {
        std::string text;
        try {
            text = readFileText(spool_.activeDir() + "/" + fname);
        } catch (const std::exception&) {
            continue;
        }
        const std::string stem = stemOf(fname);
        SweepRequest req;
        try {
            req = SweepRequest::parse(text, stem);
        } catch (const RequestError& e) {
            spool_.writeResult(
                stem, renderResultDoc(stem, "", 0, "rejected",
                                      "invalid_request", e.what(), {}));
            journal_.append(Journal::doneLine(stem, "rejected"));
            spool_.finish(fname, /*ok=*/false);
            ++rejectedReqs_;
            continue;
        }

        const auto done = recoveredDone_.find(req.id);
        if (done != recoveredDone_.end()) {
            // Crashed between the done record and the retire rename:
            // the result document is already published; just retire.
            spool_.finish(fname, done->second == "ok");
            ++retired_;
            continue;
        }

        RequestState rs;
        rs.fname = fname;
        rs.req = req;
        rs.specs = req.points();
        rs.points.resize(rs.specs.size());
        for (std::size_t i = 0; i < rs.specs.size(); ++i)
            rs.points[i].label = rs.specs[i].label;
        std::size_t replayed = 0;
        const auto rec = recovered_.find(req.id);
        if (rec != recovered_.end()) {
            for (const auto& [idx, p] : rec->second) {
                if (idx >= rs.points.size())
                    continue;
                rs.points[idx] = p;
                rs.points[idx].label = rs.specs[idx].label;
                ++recoveredPoints_;
                ++replayed;
            }
        }
        if (cfg_.verbose) {
            std::cerr << "cobra_serve: recovered " << req.id << " ("
                      << replayed << " of " << rs.points.size()
                      << " points journaled)\n";
        }
        queue_.push_back(std::move(rs));
    }
    recovered_.clear();
    recoveredDone_.clear();
    checkpointJournal();
}

void
Daemon::admitIncoming()
{
    for (const std::string& fname : spool_.scanIncoming())
        admitOne(fname);
}

std::size_t
Daemon::clientLoad(const std::string& client) const
{
    std::size_t n = 0;
    for (const RequestState& rs : queue_) {
        if (rs.req.client == client)
            n += rs.specs.size();
    }
    return n;
}

bool
Daemon::admitOne(const std::string& fname)
{
    std::string text;
    try {
        text = readFileText(spool_.incomingDir() + "/" + fname);
    } catch (const std::exception&) {
        return false; // Vanished between scan and read.
    }
    const std::string stem = stemOf(fname);

    SweepRequest req;
    try {
        req = SweepRequest::parse(text, stem);
    } catch (const RequestError& e) {
        rejectIncoming(fname, stem, "invalid_request", e.what(), {});
        return false;
    }
    const std::vector<PointSpec> specs = req.points();

    if (!req.tracePath.empty()) {
        // Open, decode and check the replay trace now: a corrupt file
        // or a (program, seed, budget) mismatch is an admission-time
        // rejection with the validator's own message, not N failing
        // points later. The decode is content-addressed, so the
        // worker-side getTrace below is a cache hit.
        try {
            const auto tr = programs_.getTrace(req.tracePath);
            trace::validateReplayMeta(
                tr->meta, programs_.get(req.workloads.front()),
                req.makeConfig(req.designs.front()).oracleSeed,
                req.warmup + req.insts);
        } catch (const std::exception& e) {
            rejectIncoming(fname, req.id, "invalid_trace", e.what(),
                           specs);
            return false;
        }
    }

    for (const RequestState& rs : queue_) {
        if (rs.req.id == req.id) {
            rejectIncoming(fname, req.id, "duplicate_id",
                           "a queued request already uses this id",
                           specs);
            return false;
        }
    }
    if (specs.size() > cfg_.maxPointsPerRequest) {
        rejectIncoming(fname, req.id, "too_large",
                       std::to_string(specs.size()) +
                           " points exceeds the per-request limit of " +
                           std::to_string(cfg_.maxPointsPerRequest),
                       specs);
        return false;
    }
    if (clientLoad(req.client) + specs.size() >
        cfg_.maxPointsPerClient) {
        rejectIncoming(fname, req.id, "quota",
                       "client '" + req.client +
                           "' would exceed its queued-point quota of " +
                           std::to_string(cfg_.maxPointsPerClient),
                       specs);
        return false;
    }
    if (queue_.size() >= cfg_.maxQueue) {
        // Shed the lowest-priority queued request (latest submission
        // among equals) if the newcomer outranks it; otherwise refuse
        // the newcomer. Either way the loser gets an explicit
        // `rejected` result document.
        std::size_t victim = 0;
        for (std::size_t i = 1; i < queue_.size(); ++i) {
            if (queue_[i].req.priority <= queue_[victim].req.priority)
                victim = i;
        }
        if (queue_[victim].req.priority >= req.priority) {
            rejectIncoming(fname, req.id, "queue_full",
                           "queue is full and no queued request has "
                           "lower priority",
                           specs);
            return false;
        }
        RequestState rs = std::move(queue_[victim]);
        queue_.erase(queue_.begin() +
                     static_cast<std::ptrdiff_t>(victim));
        for (std::size_t i = 0; i < rs.points.size(); ++i) {
            if (!rs.points[i].final()) {
                rs.points[i].status = "rejected";
                rs.points[i].fragment = stubFragment(
                    rs.points[i].label, "rejected", 0);
            }
        }
        spool_.writeResult(
            rs.req.id,
            renderResultDoc(rs.req.id, rs.req.client, rs.req.priority,
                            "rejected", "shed",
                            "evicted by a priority-" +
                                std::to_string(req.priority) +
                                " request on a full queue",
                            rs.points));
        journal_.append(Journal::doneLine(rs.req.id, "rejected"));
        spool_.finish(rs.fname, /*ok=*/false);
        ++shed_;
        if (cfg_.verbose) {
            std::cerr << "cobra_serve: shed " << rs.req.id
                      << " (priority " << rs.req.priority << ") for "
                      << req.id << " (priority " << req.priority
                      << ")\n";
        }
    }

    // Journal the acceptance BEFORE the claim rename: a crash between
    // the two replays as a harmless re-admission, never a lost file.
    journal_.append(Journal::acceptLine(req.id, req.client,
                                        req.priority, specs.size()));
    if (!spool_.claim(fname))
        return false; // The client withdrew it; accept record is inert.

    RequestState rs;
    rs.fname = fname;
    rs.req = std::move(req);
    rs.specs = specs;
    rs.points.resize(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i)
        rs.points[i].label = specs[i].label;
    if (cfg_.verbose) {
        std::cerr << "cobra_serve: accepted " << rs.req.id << " ("
                  << rs.specs.size() << " points, priority "
                  << rs.req.priority << ", client " << rs.req.client
                  << ")\n";
    }
    queue_.push_back(std::move(rs));
    ++accepted_;
    return true;
}

void
Daemon::rejectIncoming(const std::string& fname, const std::string& id,
                       const std::string& reason,
                       const std::string& detail,
                       const std::vector<PointSpec>& specs)
{
    std::vector<PointRecord> points(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        points[i].label = specs[i].label;
        points[i].status = "rejected";
        points[i].fragment =
            stubFragment(specs[i].label, "rejected", 0);
    }
    spool_.writeResult(id, renderResultDoc(id, "", 0, "rejected",
                                           reason, detail, points));
    spool_.reject(fname);
    ++rejectedReqs_;
    if (cfg_.verbose) {
        std::cerr << "cobra_serve: rejected " << id << " (" << reason
                  << ": " << detail << ")\n";
    }
}

// ---- Execution ----------------------------------------------------------

bool
Daemon::executeNext(const std::atomic<bool>& stop)
{
    if (queue_.empty() || stop.load(std::memory_order_relaxed))
        return false;
    std::size_t best = 0;
    for (std::size_t i = 1; i < queue_.size(); ++i) {
        if (queue_[i].req.priority > queue_[best].req.priority)
            best = i;
    }
    RequestState rs = std::move(queue_[best]);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));

    executeRequest(rs, stop);

    if (!rs.allFinal()) {
        finishRequest(rs, /*interrupted=*/true);
        parked_.push_back(std::move(rs));
    } else {
        finishRequest(rs, /*interrupted=*/false);
    }
    return true;
}

void
Daemon::executeRequest(RequestState& rs, const std::atomic<bool>& stop)
{
    unsigned attempt = 0;
    while (!stop.load(std::memory_order_relaxed)) {
        std::vector<std::size_t> pending;
        for (std::size_t i = 0; i < rs.points.size(); ++i) {
            if (!rs.points[i].final())
                pending.push_back(i);
        }
        if (pending.empty())
            break;
        if (attempt > 0) {
            retries_ += pending.size();
            backoffSleep(attempt, stop);
            if (stop.load(std::memory_order_relaxed))
                break;
        }
        if (rs.req.kind == "search") {
            // A search request is one logical point: the autopilot
            // drives its own SweepEngine tiers internally. It rides
            // the same retry/backoff/drain machinery as sweep points.
            for (std::size_t idx : pending) {
                if (stop.load(std::memory_order_relaxed))
                    break;
                runSearchPoint(rs, idx, attempt);
            }
        } else if (rs.req.warp) {
            // Warp points run one at a time: each runWarp drives its
            // own SweepEngine over the intervals (that is where the
            // parallelism goes), mirroring cobra_sim --warp.
            for (std::size_t idx : pending) {
                if (stop.load(std::memory_order_relaxed))
                    break;
                runWarpPoint(rs, idx, attempt);
            }
        } else {
            runDetailedRound(rs, pending, attempt, stop);
        }
        if (attempt >= rs.req.maxRetries)
            break; // handleOutcome finalized everything this round.
        ++attempt;
    }
}

void
Daemon::runDetailedRound(RequestState& rs,
                         const std::vector<std::size_t>& idxs,
                         unsigned attempt,
                         const std::atomic<bool>& stop)
{
    sim::SweepEngine engine(cfg_.jobs);
    engine.setStopFlag(&stop);
    engine.setOnOutcome(
        [this, &rs, &idxs, attempt](std::size_t sub,
                                    const sim::SweepOutcome& o) {
            std::lock_guard<std::mutex> lk(finalizeM_);
            handleOutcome(rs, idxs[sub], o, attempt);
        });

    for (std::size_t idx : idxs) {
        const PointSpec& spec = rs.specs[idx];
        sim::SweepPoint pt;
        pt.label = spec.label;
        pt.topology = [d = spec.design] {
            return sim::buildTopology(d);
        };
        pt.program = &programs_.get(spec.workload);
        pt.cfg = rs.req.makeConfig(spec.design);
        if (!rs.req.tracePath.empty())
            pt.cfg.replayTrace = programs_.getTrace(rs.req.tracePath);
        if (cfg_.noSpecialize)
            pt.cfg.specialize = sim::SpecializeMode::Off;
        if (rs.req.pointTimeoutMs > 0) {
            // Cooperative wall-clock watchdog: drive the simulation
            // in bounded cycle slices and check the deadline between
            // them, so a runaway point becomes a guard::TimeoutError
            // instead of a hung worker.
            const std::uint64_t limit_ms = rs.req.pointTimeoutMs;
            const std::uint64_t slice = cfg_.watchdogSliceCycles;
            const std::string label = spec.label;
            pt.execute = [limit_ms, slice,
                          label](sim::Simulator& s) {
                const auto deadline =
                    std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(limit_ms);
                std::uint64_t stop_cycle = slice;
                while (s.advanceTo(stop_cycle)) {
                    if (std::chrono::steady_clock::now() >= deadline)
                        throw guard::TimeoutError(label, limit_ms);
                    stop_cycle += slice;
                }
                // finishRun(), not run(): a stalled point then
                // reports the same cycle count as an unwatched one
                // (run() would issue one more probe tick).
                return s.finishRun();
            };
        }
        engine.add(std::move(pt));
    }
    engine.run(); // Outcomes are consumed by the onOutcome hook.
}

void
Daemon::runWarpPoint(RequestState& rs, std::size_t idx,
                     unsigned attempt)
{
    const PointSpec& spec = rs.specs[idx];
    const SweepRequest& req = rs.req;

    warp::WarpConfig w;
    w.intervals = req.intervals;
    w.warmupCycles = req.warmupCycles;
    w.sampleInsts = req.sampleInsts;
    w.jobs = cfg_.jobs;
    const std::uint64_t hash = configHash(req, spec.design);
    w.snapshotLookup = [this, &spec, &req,
                        hash](unsigned i, warp::Snapshot& out) {
        return warm_.lookup(
            warm_.keyPath(spec.workload, hash, req.intervals, i), out);
    };
    w.snapshotStore = [this, &spec, &req,
                       hash](unsigned i, const warp::Snapshot& snap) {
        warm_.store(
            warm_.keyPath(spec.workload, hash, req.intervals, i),
            snap);
    };

    sim::SweepOutcome o;
    o.label = spec.label;
    const auto t0 = std::chrono::steady_clock::now();
    const warp::WarpEstimate* estp = nullptr;
    warp::WarpEstimate est;
    try {
        sim::SimConfig wcfg = req.makeConfig(spec.design);
        if (!req.tracePath.empty())
            wcfg.replayTrace = programs_.getTrace(req.tracePath);
        if (cfg_.noSpecialize)
            wcfg.specialize = sim::SpecializeMode::Off;
        est = warp::runWarp(
            programs_.get(spec.workload),
            [d = spec.design] { return sim::buildTopology(d); },
            wcfg, w);
        o.result = est.estimate;
        estp = &est;
    } catch (const std::exception& e) {
        o.error = e.what();
        o.errorClass = guard::errorClassOf(e);
    }
    o.host.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    std::lock_guard<std::mutex> lk(finalizeM_);
    if (estp != nullptr) {
        PointRecord rec = rs.points[idx];
        rec.attempts = attempt + 1;
        rec.status = "ok";
        rec.errorClass.clear();
        rec.error.clear();
        rec.fragment = okFragment(rec.label, rec.attempts, o.result,
                                  o.host.wallSeconds, estp);
        finalizePoint(rs, idx, std::move(rec));
    } else {
        handleOutcome(rs, idx, o, attempt);
    }
}

void
Daemon::runSearchPoint(RequestState& rs, std::size_t idx,
                       unsigned attempt)
{
    search::SearchConfig cfg = rs.req.searchCfg;
    if (cfg.jobs == 0)
        cfg.jobs = cfg_.jobs;

    sim::SweepOutcome o;
    o.label = rs.specs[idx].label;
    const auto t0 = std::chrono::steady_clock::now();
    std::string fragment;
    try {
        const search::SearchResult r =
            search::runSearch(cfg, programs_);
        const double wall = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
        fragment =
            searchFragment(o.label, attempt + 1, r, wall);
    } catch (const std::exception& e) {
        o.error = e.what();
        o.errorClass = guard::errorClassOf(e);
    }
    o.host.wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    std::lock_guard<std::mutex> lk(finalizeM_);
    if (!fragment.empty()) {
        PointRecord rec = rs.points[idx];
        rec.attempts = attempt + 1;
        rec.status = "ok";
        rec.errorClass.clear();
        rec.error.clear();
        rec.fragment = std::move(fragment);
        finalizePoint(rs, idx, std::move(rec));
    } else {
        handleOutcome(rs, idx, o, attempt);
    }
}

void
Daemon::handleOutcome(RequestState& rs, std::size_t idx,
                      const sim::SweepOutcome& o, unsigned attempt)
{
    if (o.errorClass == "interrupted")
        return; // Never ran: stays pending for the next daemon.

    PointRecord rec = rs.points[idx];
    rec.attempts = attempt + 1;

    if (o.ok() && !o.result.deadlocked) {
        rec.status = "ok";
        rec.errorClass.clear();
        rec.error.clear();
        rec.fragment = okFragment(rec.label, rec.attempts, o.result,
                                  o.host.wallSeconds, nullptr);
        finalizePoint(rs, idx, std::move(rec));
        return;
    }

    // Simulator::run() reports a watchdog deadlock in the result
    // rather than throwing; fold it into the same taxonomy.
    const std::string cls = o.ok() ? "deadlock" : o.errorClass;
    const std::string err =
        o.ok() ? "no commit progress (deadlock watchdog)" : o.error;
    if (cls == "timeout")
        ++timeouts_;

    if (guard::errorClassTransient(cls) &&
        attempt < rs.req.maxRetries) {
        // Provisional: the point stays pending and retries after
        // backoff; only its final outcome reaches the journal.
        rs.points[idx].attempts = rec.attempts;
        rs.points[idx].errorClass = cls;
        rs.points[idx].error = err;
        return;
    }

    rec.status = "failed";
    rec.errorClass = cls;
    rec.error = err;
    rec.fragment = failedFragment(rec);
    finalizePoint(rs, idx, std::move(rec));
}

void
Daemon::finalizePoint(RequestState& rs, std::size_t idx,
                      PointRecord rec)
{
    journal_.append(Journal::pointLine(rs.req.id, idx, rec.status,
                                       rec.errorClass, rec.error,
                                       rec.attempts, rec.fragment));
    if (rec.status == "ok")
        ++pointsOk_;
    else
        ++pointsFailed_;
    if (cfg_.verbose) {
        std::cerr << "cobra_serve:   " << rs.req.id << "[" << idx
                  << "] " << rec.label << ": " << rec.status
                  << (rec.errorClass.empty() ? ""
                                             : " (" + rec.errorClass +
                                                   ")")
                  << "\n";
    }
    rs.points[idx] = std::move(rec);
}

void
Daemon::backoffSleep(unsigned attempt,
                     const std::atomic<bool>& stop) const
{
    std::uint64_t ms = cfg_.backoffBaseMs
                       << std::min(attempt - 1, 6u);
    ms = std::min<std::uint64_t>(ms, 5'000);
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(ms);
    while (!stop.load(std::memory_order_relaxed) &&
           std::chrono::steady_clock::now() < until) {
        std::this_thread::sleep_for(std::chrono::milliseconds(
            std::min<std::uint64_t>(ms, 20)));
    }
}

void
Daemon::finishRequest(RequestState& rs, bool interrupted)
{
    if (interrupted) {
        // Drain: flush what finished as a partial result document and
        // leave the request in active/ with its journal records so
        // the next daemon resumes the pending points.
        spool_.writeResult(
            rs.req.id,
            renderResultDoc(rs.req.id, rs.req.client, rs.req.priority,
                            "interrupted", "", "", rs.points));
        ++interrupted_;
        if (cfg_.verbose) {
            std::cerr << "cobra_serve: parked " << rs.req.id
                      << " (drain)\n";
        }
        return;
    }

    bool all_ok = true;
    for (const PointRecord& p : rs.points)
        all_ok = all_ok && p.status == "ok";
    const std::string status = all_ok ? "ok" : "failed";

    // Result first, then the done record, then the retire rename:
    // each crash window replays forward to this exact state.
    spool_.writeResult(rs.req.id,
                       renderResultDoc(rs.req.id, rs.req.client,
                                       rs.req.priority, status, "", "",
                                       rs.points));
    journal_.append(Journal::doneLine(rs.req.id, status));
    spool_.finish(rs.fname, all_ok);
    if (all_ok)
        ++completedOk_;
    else
        ++completedFailed_;
    ++retired_;
    if (cfg_.verbose) {
        std::cerr << "cobra_serve: retired " << rs.req.id << " ("
                  << status << ")\n";
    }
}

// ---- Documents ----------------------------------------------------------

std::string
Daemon::renderResultDoc(const std::string& id, const std::string& client,
                        int priority, const std::string& status,
                        const std::string& reason,
                        const std::string& detail,
                        const std::vector<PointRecord>& points) const
{
    std::ostringstream os;
    os << "{\n  \"tool\": \"cobra_serve\",\n"
       << "  \"id\": \"" << jsonEscape(id) << "\",\n"
       << "  \"client\": \"" << jsonEscape(client) << "\",\n"
       << "  \"priority\": " << priority << ",\n"
       << "  \"status\": \"" << jsonEscape(status) << "\",\n";
    if (!reason.empty())
        os << "  \"reason\": \"" << jsonEscape(reason) << "\",\n";
    if (!detail.empty())
        os << "  \"detail\": \"" << jsonEscape(detail) << "\",\n";
    os << "  \"points\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const PointRecord& p = points[i];
        if (!p.fragment.empty())
            os << p.fragment;
        else
            os << stubFragment(p.label,
                               p.final() ? p.status : "pending",
                               p.attempts);
        os << (i + 1 < points.size() ? ",\n" : "\n");
    }
    os << "  ]\n}\n";
    return os.str();
}

void
Daemon::writeStatusDoc(const std::string& state)
{
    std::ostringstream os;
    os << "{\n  \"tool\": \"cobra_serve\",\n"
       << "  \"state\": \"" << state << "\",\n"
       << "  \"queued\": " << queue_.size() << ",\n"
       << "  \"parked\": " << parked_.size() << ",\n"
       << "  \"retired\": " << retired_ << ",\n"
       << "  \"stats\": ";
    registry_.writeJson(os, 2);
    os << "\n}\n";
    writeFileAtomic(spool_.statusPath(), os.str());
}

void
Daemon::checkpointJournal()
{
    std::vector<std::string> lines;
    auto emit = [&lines](const RequestState& rs) {
        lines.push_back(Journal::acceptLine(rs.req.id, rs.req.client,
                                            rs.req.priority,
                                            rs.specs.size()));
        for (std::size_t i = 0; i < rs.points.size(); ++i) {
            const PointRecord& p = rs.points[i];
            if (p.final()) {
                lines.push_back(Journal::pointLine(
                    rs.req.id, i, p.status, p.errorClass, p.error,
                    p.attempts, p.fragment));
            }
        }
    };
    for (const RequestState& rs : queue_)
        emit(rs);
    for (const RequestState& rs : parked_)
        emit(rs);
    journal_.checkpoint(lines);
}

std::uint64_t
Daemon::configHash(const SweepRequest& r,
                   const sim::DesignSpec& d) const
{
    // Every field that can influence checkpointed simulator state
    // feeds the content address; an extra field only costs a cold
    // fast-forward pass, a missing one would be caught anyway by the
    // fingerprint check inside warp::runWarp (defense in depth).
    // Hashing the full serialized spec (not just its name) keeps two
    // inline "design_spec" documents that share a name from aliasing
    // each other's warm snapshots.
    std::ostringstream os;
    os << d.toJson() << '|' << r.insts << '|' << r.warmup
       << '|' << static_cast<int>(r.ghist) << '|' << r.sfb << '|'
       << r.serialize << '|' << r.audit << '|' << r.faultRate << '|'
       << r.faultSeed << '|' << r.deadlockCycles << '|' << r.intervals
       << '|' << r.warmupCycles << '|' << r.sampleInsts;
    return fnv1a(os.str());
}

} // namespace cobra::serve
