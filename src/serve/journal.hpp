/**
 * @file
 * cobra_serve write-ahead journal: one append-only text file of JSON
 * records (one per line) that makes request execution crash-safe. The
 * protocol orders every durable fact before the action it licenses:
 *
 *   accept  — journaled BEFORE the request file renames incoming ->
 *             active (a crash between the two re-admits harmlessly);
 *   point   — journaled as each sweep point reaches a FINAL state
 *             (ok, or failed with retries exhausted), carrying the
 *             rendered result fragment so a restart can emit the
 *             exact bytes the completed point produced;
 *   done    — journaled AFTER the request's result document is
 *             published, licensing the active -> done|failed rename.
 *
 * Appends are flushed and fsync'd, so a kill -9 can lose at most
 * work that had not reached a final state — never a recorded point.
 * Replay is torn-tail tolerant: the first malformed line (a record
 * cut by the crash) ends the replay; everything before it is intact
 * by construction.
 *
 * checkpoint() compacts the journal (atomically, via temp+rename) to
 * just the records describing still-active requests, bounding its
 * growth across a long daemon life.
 */

#ifndef COBRA_SERVE_JOURNAL_HPP
#define COBRA_SERVE_JOURNAL_HPP

#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "serve/json.hpp"

namespace cobra::serve {

class Journal
{
  public:
    /** Opens @p path for appending (created if absent). */
    explicit Journal(std::string path);
    ~Journal();

    Journal(const Journal&) = delete;
    Journal& operator=(const Journal&) = delete;

    /**
     * Append one record line durably (flush + fsync). Thread-safe:
     * sweep workers journal point completions concurrently.
     */
    void append(const std::string& line);

    /**
     * Atomically replace the journal's contents with @p lines
     * (temp + rename), then reopen for appending.
     */
    void checkpoint(const std::vector<std::string>& lines);

    /** Records replayed by the last replay() call on this path. */
    const std::string& path() const { return path_; }

    // ---- Record serialization (shared by append and checkpoint) -----
    static std::string acceptLine(const std::string& req_id,
                                  const std::string& client,
                                  int priority, std::size_t points);
    static std::string pointLine(const std::string& req_id,
                                 std::size_t idx,
                                 const std::string& status,
                                 const std::string& error_class,
                                 const std::string& error,
                                 unsigned attempts,
                                 const std::string& fragment);
    static std::string doneLine(const std::string& req_id,
                                const std::string& status);

    /**
     * Replay a journal file: @p cb is invoked with each well-formed
     * record (a parsed JSON object with an "ev" member), in order.
     * Returns the number of records replayed. A missing file replays
     * zero records; a malformed line (torn tail after a crash) stops
     * the replay silently.
     */
    static std::size_t
    replay(const std::string& path,
           const std::function<void(const Json&)>& cb);

  private:
    void open();

    std::string path_;
    std::mutex m_;
    std::FILE* f_ = nullptr;
};

} // namespace cobra::serve

#endif // COBRA_SERVE_JOURNAL_HPP
