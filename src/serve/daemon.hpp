/**
 * @file
 * The cobra_serve daemon: a long-lived sweep-evaluation service over
 * the existing SweepEngine/warp machinery. Clients drop sweep-request
 * documents (see request.hpp) into `spool/incoming/`; the daemon
 * admits, executes, and retires them through the spool state machine,
 * publishing one result document per request under `spool/results/`
 * and a continuously-rewritten `status.json` health document.
 *
 * Robustness pillars (docs/SERVICE.md has the full treatment):
 *
 *  - crash-safe intake: every lifecycle transition is an atomic
 *    rename ordered against the write-ahead journal, so a killed
 *    daemon resumes exactly where it stopped — completed points are
 *    replayed from the journal, never re-simulated;
 *  - per-point isolation: a point that throws (guard::* or anything
 *    else) or exceeds its wall-clock deadline becomes a structured
 *    failure record in the result document; transient classes
 *    (timeout/checkpoint/internal) retry with exponential backoff;
 *  - admission control: per-client point quotas, priority classes
 *    0..3, and a bounded queue that sheds the lowest-priority queued
 *    request — every refusal is an explicit `rejected` result
 *    document, never silence;
 *  - warm-state reuse: warp requests feed a content-addressed
 *    snapshot cache so repeat evaluations skip the fast-forward pass;
 *    corrupt or stale entries are validated away, never trusted.
 */

#ifndef COBRA_SERVE_DAEMON_HPP
#define COBRA_SERVE_DAEMON_HPP

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "program/workload.hpp"
#include "scope/stat_registry.hpp"
#include "sim/sweep.hpp"
#include "serve/journal.hpp"
#include "serve/request.hpp"
#include "serve/spool.hpp"
#include "serve/warm_cache.hpp"

namespace cobra::serve {

/** Daemon tuning; every field has a service-sane default. */
struct ServeConfig
{
    std::string spoolRoot = "spool";
    /** Sweep worker threads; 0 = SweepEngine::defaultJobs(). */
    unsigned jobs = 0;
    /** Max requests queued (admitted, not yet running). */
    std::size_t maxQueue = 8;
    /** Max grid points in one request (`too_large` above this). */
    std::size_t maxPointsPerRequest = 64;
    /** Max queued+running points per client (`quota` above this). */
    std::size_t maxPointsPerClient = 128;
    /** Base of the exponential retry backoff (ms * 2^attempt). */
    std::uint64_t backoffBaseMs = 50;
    /** Incoming-directory poll period when idle. */
    std::uint64_t pollMs = 200;
    /** advanceTo() slice used by the wall-clock watchdog (cycles). */
    std::uint64_t watchdogSliceCycles = 50'000;
    /** Force the generic cycle loop on every point (--no-specialize /
     *  COBRA_NO_SPECIALIZE); requests asking "require" still fail
     *  admission. Results are bit-identical either way. */
    bool noSpecialize = false;
    /** Drain the spool and exit instead of serving forever. */
    bool once = false;
    /** Log admissions/retirements to stderr. */
    bool verbose = false;
};

/** Final state of one grid point of a request. */
struct PointRecord
{
    std::string label;
    /** "ok" | "failed" | "rejected"; empty while still pending. */
    std::string status;
    std::string errorClass; ///< Taxonomy class when failed.
    std::string error;      ///< Human-readable failure text.
    unsigned attempts = 0;  ///< Executions consumed (retries + 1).
    /** Rendered result-document entry (JSON object, 4-space base
     *  indent) — the exact bytes the result document will carry,
     *  journaled so recovery can republish without re-running. */
    std::string fragment;

    bool final() const { return !status.empty(); }
};

class Daemon
{
  public:
    explicit Daemon(const ServeConfig& cfg);

    /**
     * Serve until @p stop becomes true (graceful drain: the active
     * request's in-flight points finish, a partial result document is
     * flushed, the journal is checkpointed, and undone work stays in
     * `active/` for the next daemon to resume). With cfg.once, serve
     * until the spool is drained instead. Returns the number of
     * requests retired this run.
     */
    std::size_t run(const std::atomic<bool>& stop);

    /** CobraScope registry ("serve", "serve.warm_cache"). */
    const scope::StatRegistry& registry() const { return registry_; }
    const Spool& spool() const { return spool_; }

  private:
    /** One admitted request and its execution state. */
    struct RequestState
    {
        std::string fname; ///< Spool filename (in active/).
        SweepRequest req;
        std::vector<PointSpec> specs;
        std::vector<PointRecord> points;

        bool
        allFinal() const
        {
            for (const PointRecord& p : points)
                if (!p.final())
                    return false;
            return true;
        }
    };

    // ---- Intake --------------------------------------------------------
    void recover();
    void admitIncoming();
    bool admitOne(const std::string& fname);
    /** Queued+running points charged to @p client. */
    std::size_t clientLoad(const std::string& client) const;
    /** Publish a rejection/invalid result doc for an unclaimed file. */
    void rejectIncoming(const std::string& fname,
                        const std::string& id,
                        const std::string& reason,
                        const std::string& detail,
                        const std::vector<PointSpec>& specs);

    // ---- Execution -----------------------------------------------------
    /** Run the highest-priority queued request to completion (or to
     *  the stop flag); returns true if one ran. */
    bool executeNext(const std::atomic<bool>& stop);
    void executeRequest(RequestState& rs, const std::atomic<bool>& stop);
    void runDetailedRound(RequestState& rs,
                          const std::vector<std::size_t>& idxs,
                          unsigned attempt,
                          const std::atomic<bool>& stop);
    void runWarpPoint(RequestState& rs, std::size_t idx,
                      unsigned attempt);
    /** Execute a `"kind": "search"` request's single point: run the
     *  composition-search autopilot and publish the frontier artifact
     *  as the point's result fragment. */
    void runSearchPoint(RequestState& rs, std::size_t idx,
                        unsigned attempt);
    /** Classify one execution outcome: finalize, or leave pending
     *  for a retry round. Called under finalizeM_ (sweep workers
     *  report concurrently). */
    void handleOutcome(RequestState& rs, std::size_t idx,
                       const sim::SweepOutcome& o, unsigned attempt);
    /** Final-outcome bookkeeping: fragment, journal, counters. */
    void finalizePoint(RequestState& rs, std::size_t idx,
                       PointRecord rec);
    /** Stop-aware exponential backoff before retry round @p attempt. */
    void backoffSleep(unsigned attempt,
                      const std::atomic<bool>& stop) const;
    void finishRequest(RequestState& rs, bool interrupted);

    // ---- Documents -----------------------------------------------------
    std::string renderResultDoc(const std::string& id,
                                const std::string& client, int priority,
                                const std::string& status,
                                const std::string& reason,
                                const std::string& detail,
                                const std::vector<PointRecord>& points)
        const;
    void writeStatusDoc(const std::string& state);
    void checkpointJournal();

    std::uint64_t configHash(const SweepRequest& r,
                             const sim::DesignSpec& d) const;

    ServeConfig cfg_;
    Spool spool_;
    Journal journal_;
    WarmCache warm_;
    prog::WorkloadCache programs_;

    std::deque<RequestState> queue_;
    /** Requests parked by a drain: partial results flushed, undone
     *  work left in active/ for the next daemon; their journal
     *  records survive the exit checkpoint. */
    std::vector<RequestState> parked_;
    /** Journal-recovered final points: id -> (idx -> record). */
    std::map<std::string, std::map<std::size_t, PointRecord>>
        recovered_;
    /** Journal-recovered retired requests: id -> final status. */
    std::map<std::string, std::string> recoveredDone_;
    std::size_t retired_ = 0;
    /** Serializes point finalization (journal + counters + records)
     *  against concurrent sweep-worker completions. */
    std::mutex finalizeM_;

    StatGroup stats_{"serve"};
    Stat<Counter> accepted_{stats_, "accepted", "requests admitted"};
    Stat<Counter> rejectedReqs_{stats_, "rejected",
                                "requests refused at admission"};
    Stat<Counter> shed_{stats_, "shed",
                        "queued requests evicted by priority"};
    Stat<Counter> completedOk_{stats_, "completed_ok",
                               "requests retired fully successful"};
    Stat<Counter> completedFailed_{stats_, "completed_failed",
                                   "requests retired with failures"};
    Stat<Counter> pointsOk_{stats_, "points_ok",
                            "grid points simulated successfully"};
    Stat<Counter> pointsFailed_{stats_, "points_failed",
                                "grid points failed permanently"};
    Stat<Counter> retries_{stats_, "retries",
                           "transient-failure re-executions"};
    Stat<Counter> timeouts_{stats_, "timeouts",
                            "points killed by the wall-clock watchdog"};
    Stat<Counter> recoveredPoints_{
        stats_, "recovered_points",
        "journaled point results replayed at startup"};
    Stat<Counter> interrupted_{stats_, "interrupted",
                               "requests parked by a drain"};

    scope::StatRegistry registry_;
};

} // namespace cobra::serve

#endif // COBRA_SERVE_DAEMON_HPP
