#include "serve/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <limits>

namespace cobra::serve {

namespace {

[[noreturn]] void
kindMismatch(const char* wanted, Json::Kind got)
{
    static const char* names[] = {"null",   "bool",  "number",
                                  "string", "array", "object"};
    throw JsonError(0, std::string("expected ") + wanted + ", have " +
                           names[static_cast<int>(got)]);
}

} // namespace

bool
Json::asBool() const
{
    if (kind_ != Kind::Bool)
        kindMismatch("bool", kind_);
    return bool_;
}

double
Json::asDouble() const
{
    if (kind_ != Kind::Number)
        kindMismatch("number", kind_);
    return num_;
}

std::int64_t
Json::asInt() const
{
    if (kind_ != Kind::Number)
        kindMismatch("number", kind_);
    if (numIsInt_)
        return int_;
    const double r = std::nearbyint(num_);
    if (r != num_)
        throw JsonError(0, "expected an integer, have a fraction");
    return static_cast<std::int64_t>(r);
}

std::uint64_t
Json::asU64() const
{
    const std::int64_t v = asInt();
    if (v < 0)
        throw JsonError(0, "expected a non-negative integer");
    return static_cast<std::uint64_t>(v);
}

const std::string&
Json::asString() const
{
    if (kind_ != Kind::String)
        kindMismatch("string", kind_);
    return str_;
}

const std::vector<Json>&
Json::asArray() const
{
    if (kind_ != Kind::Array)
        kindMismatch("array", kind_);
    return arr_;
}

const std::map<std::string, Json>&
Json::asObject() const
{
    if (kind_ != Kind::Object)
        kindMismatch("object", kind_);
    return obj_;
}

const Json*
Json::find(const std::string& key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    auto it = obj_.find(key);
    return it == obj_.end() ? nullptr : &it->second;
}

bool
Json::getBool(const std::string& key, bool dflt) const
{
    const Json* v = find(key);
    return v == nullptr ? dflt : v->asBool();
}

double
Json::getDouble(const std::string& key, double dflt) const
{
    const Json* v = find(key);
    return v == nullptr ? dflt : v->asDouble();
}

std::uint64_t
Json::getU64(const std::string& key, std::uint64_t dflt) const
{
    const Json* v = find(key);
    return v == nullptr ? dflt : v->asU64();
}

std::string
Json::getString(const std::string& key, const std::string& dflt) const
{
    const Json* v = find(key);
    return v == nullptr ? dflt : v->asString();
}

Json
Json::makeNull()
{
    return Json{};
}

Json
Json::makeBool(bool b)
{
    Json j;
    j.kind_ = Kind::Bool;
    j.bool_ = b;
    return j;
}

Json
Json::makeNumber(double d)
{
    Json j;
    j.kind_ = Kind::Number;
    j.num_ = d;
    return j;
}

Json
Json::makeString(std::string s)
{
    Json j;
    j.kind_ = Kind::String;
    j.str_ = std::move(s);
    return j;
}

/** Strict recursive-descent parser over one in-memory document. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string& text) : text_(text) {}

    Json
    parseDocument()
    {
        Json v = parseValue(0);
        skipWs();
        if (pos_ != text_.size())
            fail("trailing content after the document");
        return v;
    }

  private:
    static constexpr unsigned kMaxDepth = 64;

    [[noreturn]] void fail(const std::string& msg) const
    {
        throw JsonError(pos_, msg);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                return;
            ++pos_;
        }
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLiteral(const char* lit)
    {
        std::size_t n = 0;
        while (lit[n] != '\0')
            ++n;
        if (text_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    Json
    parseValue(unsigned depth)
    {
        if (depth > kMaxDepth)
            fail("nesting deeper than 64 levels");
        skipWs();
        const char c = peek();
        switch (c) {
          case '{': return parseObject(depth);
          case '[': return parseArray(depth);
          case '"': {
              Json j;
              j.kind_ = Json::Kind::String;
              j.str_ = parseString();
              return j;
          }
          case 't':
              if (!consumeLiteral("true"))
                  fail("bad literal (expected 'true')");
              return Json::makeBool(true);
          case 'f':
              if (!consumeLiteral("false"))
                  fail("bad literal (expected 'false')");
              return Json::makeBool(false);
          case 'n':
              if (!consumeLiteral("null"))
                  fail("bad literal (expected 'null')");
              return Json::makeNull();
          default:
              if (c == '-' || (c >= '0' && c <= '9'))
                  return parseNumber();
              fail("unexpected character");
        }
    }

    Json
    parseObject(unsigned depth)
    {
        expect('{');
        Json j;
        j.kind_ = Json::Kind::Object;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return j;
        }
        for (;;) {
            skipWs();
            const std::size_t keyAt = pos_;
            if (peek() != '"')
                fail("object keys must be strings");
            std::string key = parseString();
            if (j.obj_.count(key) != 0)
                throw JsonError(keyAt, "duplicate key '" + key + "'");
            skipWs();
            expect(':');
            j.obj_.emplace(std::move(key), parseValue(depth + 1));
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return j;
        }
    }

    Json
    parseArray(unsigned depth)
    {
        expect('[');
        Json j;
        j.kind_ = Json::Kind::Array;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return j;
        }
        for (;;) {
            j.arr_.push_back(parseValue(depth + 1));
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return j;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                fail("unescaped control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                  if (pos_ + 4 > text_.size())
                      fail("truncated \\u escape");
                  unsigned cp = 0;
                  for (int i = 0; i < 4; ++i) {
                      const char h = text_[pos_++];
                      cp <<= 4;
                      if (h >= '0' && h <= '9')
                          cp |= static_cast<unsigned>(h - '0');
                      else if (h >= 'a' && h <= 'f')
                          cp |= static_cast<unsigned>(h - 'a' + 10);
                      else if (h >= 'A' && h <= 'F')
                          cp |= static_cast<unsigned>(h - 'A' + 10);
                      else
                          fail("bad hex digit in \\u escape");
                  }
                  // UTF-8 encode the BMP code point (surrogate pairs
                  // in request documents are not supported; the
                  // request fields the daemon reads are ASCII names).
                  if (cp < 0x80) {
                      out += static_cast<char>(cp);
                  } else if (cp < 0x800) {
                      out += static_cast<char>(0xC0 | (cp >> 6));
                      out += static_cast<char>(0x80 | (cp & 0x3F));
                  } else {
                      out += static_cast<char>(0xE0 | (cp >> 12));
                      out += static_cast<char>(0x80 |
                                               ((cp >> 6) & 0x3F));
                      out += static_cast<char>(0x80 | (cp & 0x3F));
                  }
                  break;
              }
              default: fail("unknown escape");
            }
        }
    }

    Json
    parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        const std::size_t intStart = pos_;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        if (pos_ == intStart)
            fail("malformed number");
        // RFC 8259: no leading zeros ("01" is two tokens, not a
        // number) — accepting them would make documents that other
        // strict parsers reject.
        if (pos_ - intStart > 1 && text_[intStart] == '0')
            fail("leading zero in number");
        bool isInt = true;
        if (pos_ < text_.size() && text_[pos_] == '.') {
            isInt = false;
            ++pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            isInt = false;
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        const std::string tok = text_.substr(start, pos_ - start);
        if (tok.empty() || tok == "-")
            fail("malformed number");
        Json j;
        j.kind_ = Json::Kind::Number;
        try {
            if (isInt) {
                j.int_ = std::stoll(tok);
                j.numIsInt_ = true;
                j.num_ = static_cast<double>(j.int_);
            } else {
                j.num_ = std::stod(tok);
            }
        } catch (const std::exception&) {
            throw JsonError(start, "number out of range: " + tok);
        }
        return j;
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

Json
Json::parse(const std::string& text)
{
    return JsonParser(text).parseDocument();
}

} // namespace cobra::serve
