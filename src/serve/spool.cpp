#include "serve/spool.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <system_error>

namespace fs = std::filesystem;

namespace cobra::serve {

void
writeFileAtomic(const std::string& path, const std::string& content)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os)
            throw std::runtime_error("cannot write " + tmp);
        os << content;
        os.flush();
        if (!os)
            throw std::runtime_error("write failed: " + tmp);
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        throw std::runtime_error("rename " + tmp + " -> " + path +
                                 ": " + ec.message());
    }
}

std::string
readFileText(const std::string& path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw std::runtime_error("cannot read " + path);
    std::ostringstream os;
    os << is.rdbuf();
    return os.str();
}

Spool::Spool(std::string root) : root_(std::move(root))
{
    for (const std::string& d :
         {incomingDir(), activeDir(), doneDir(), failedDir(),
          resultsDir(), warmDir()})
        fs::create_directories(d);
}

namespace {

std::vector<std::string>
scanJsonFiles(const std::string& dir)
{
    std::vector<std::string> out;
    std::error_code ec;
    for (const auto& e : fs::directory_iterator(dir, ec)) {
        if (!e.is_regular_file())
            continue;
        const std::string name = e.path().filename().string();
        // Skip in-flight temp files from write-then-rename clients.
        if (name.size() > 5 &&
            name.compare(name.size() - 5, 5, ".json") == 0)
            out.push_back(name);
    }
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace

std::vector<std::string>
Spool::scanIncoming() const
{
    return scanJsonFiles(incomingDir());
}

std::vector<std::string>
Spool::scanActive() const
{
    return scanJsonFiles(activeDir());
}

bool
Spool::claim(const std::string& fname)
{
    std::error_code ec;
    fs::rename(incomingDir() + "/" + fname,
               activeDir() + "/" + fname, ec);
    return !ec;
}

void
Spool::finish(const std::string& fname, bool ok)
{
    std::error_code ec;
    fs::rename(activeDir() + "/" + fname,
               (ok ? doneDir() : failedDir()) + "/" + fname, ec);
    if (ec) {
        throw std::runtime_error("finish " + fname + ": " +
                                 ec.message());
    }
}

void
Spool::reject(const std::string& fname)
{
    std::error_code ec;
    fs::rename(incomingDir() + "/" + fname,
               failedDir() + "/" + fname, ec);
    if (ec) {
        throw std::runtime_error("reject " + fname + ": " +
                                 ec.message());
    }
}

void
Spool::writeResult(const std::string& id, const std::string& text)
{
    writeFileAtomic(resultPath(id), text);
}

std::string
Spool::resultPath(const std::string& id) const
{
    return resultsDir() + "/" + id + ".json";
}

} // namespace cobra::serve
