/**
 * @file
 * The cobra_serve spool: a watched directory tree that doubles as the
 * daemon's request state machine. A request document's location IS
 * its lifecycle state, and every transition is a same-filesystem
 * rename (atomic on POSIX), so a crash at any instant leaves each
 * request in exactly one well-defined state:
 *
 *     incoming/r.json  --claim-->  active/r.json  --finish-->  done/r.json
 *                       (accept                   (result       failed/r.json
 *                        journaled                 written
 *                        first)                    first)
 *
 * Clients submit by writing a temp file and renaming it into
 * `incoming/` (write-then-rename, like the daemon's own outputs), so
 * the daemon never observes a half-written document. Result and
 * status documents are written with the same temp+rename discipline
 * via writeFileAtomic().
 */

#ifndef COBRA_SERVE_SPOOL_HPP
#define COBRA_SERVE_SPOOL_HPP

#include <string>
#include <vector>

namespace cobra::serve {

/** Atomic file publish: write `path.tmp`, flush, rename onto @p path. */
void writeFileAtomic(const std::string& path,
                     const std::string& content);

/** Read a whole file; throws std::runtime_error when unreadable. */
std::string readFileText(const std::string& path);

class Spool
{
  public:
    /** Opens (creating if needed) the spool tree under @p root. */
    explicit Spool(std::string root);

    const std::string& root() const { return root_; }
    std::string incomingDir() const { return root_ + "/incoming"; }
    std::string activeDir() const { return root_ + "/active"; }
    std::string doneDir() const { return root_ + "/done"; }
    std::string failedDir() const { return root_ + "/failed"; }
    std::string resultsDir() const { return root_ + "/results"; }
    std::string warmDir() const { return root_ + "/warm"; }
    std::string journalPath() const { return root_ + "/journal.log"; }
    std::string statusPath() const { return root_ + "/status.json"; }

    /** `*.json` filenames in incoming/, sorted (submission order). */
    std::vector<std::string> scanIncoming() const;

    /** `*.json` filenames in active/, sorted (recovery order). */
    std::vector<std::string> scanActive() const;

    /**
     * Claim a request: incoming/@p fname -> active/@p fname. False if
     * the file vanished (a competing claim or a client withdrew it).
     */
    bool claim(const std::string& fname);

    /** Retire a request: active/@p fname -> done|failed/@p fname. */
    void finish(const std::string& fname, bool ok);

    /** Reject without claiming: incoming/@p fname -> failed/@p fname. */
    void reject(const std::string& fname);

    /** Publish a result document as results/<id>.json (atomic). */
    void writeResult(const std::string& id, const std::string& text);

    /** Path a request id's result document lives at. */
    std::string resultPath(const std::string& id) const;

  private:
    std::string root_;
};

} // namespace cobra::serve

#endif // COBRA_SERVE_SPOOL_HPP
