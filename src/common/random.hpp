/**
 * @file
 * Deterministic pseudo-random number generation. All stochastic choices
 * in the model flow through Xoshiro256ss so runs are reproducible from
 * a single seed.
 */

#ifndef COBRA_COMMON_RANDOM_HPP
#define COBRA_COMMON_RANDOM_HPP

#include <cassert>
#include <cstdint>

#include "common/bitutil.hpp"

namespace cobra {

/**
 * xoshiro256** generator. Small, fast, and good enough statistical
 * quality for workload synthesis.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x1badb002)
    {
        // SplitMix64 seeding, per the xoshiro reference implementation.
        std::uint64_t x = seed;
        for (auto& si : s_)
            si = mix64(x++);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        assert(bound != 0);
        // Modulo bias is negligible for the bounds we use (<< 2^64).
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        assert(lo <= hi);
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli trial with probability @p p of true. */
    bool chance(double p) { return uniform() < p; }

    /** Raw generator state, for checkpointing. */
    void
    state(std::uint64_t out[4]) const
    {
        for (int i = 0; i < 4; ++i)
            out[i] = s_[i];
    }

    /** Restore state captured by state(). */
    void
    setState(const std::uint64_t in[4])
    {
        for (int i = 0; i < 4; ++i)
            s_[i] = in[i];
    }

    /**
     * Geometric-ish small integer: returns k >= 1 where
     * P(k) ~ (1-p) p^(k-1), capped at @p cap.
     */
    unsigned
    geometric(double p, unsigned cap)
    {
        unsigned k = 1;
        while (k < cap && chance(p))
            ++k;
        return k;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4];
};

} // namespace cobra

#endif // COBRA_COMMON_RANDOM_HPP
