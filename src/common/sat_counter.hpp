/**
 * @file
 * Saturating up/down counters, the workhorse state element of
 * direction predictors.
 */

#ifndef COBRA_COMMON_SAT_COUNTER_HPP
#define COBRA_COMMON_SAT_COUNTER_HPP

#include <cassert>
#include <cstdint>

#include "common/bitutil.hpp"

namespace cobra {

/**
 * An n-bit unsigned saturating counter. The counter "predicts taken"
 * when its value is in the upper half of its range.
 */
class SatCounter
{
  public:
    SatCounter() = default;

    /**
     * @param nbits Width of the counter in bits (1..16).
     * @param init  Initial value (clamped to range).
     */
    explicit SatCounter(unsigned nbits, unsigned init = 0)
        : nbits_(nbits),
          max_(static_cast<std::uint16_t>(maskBits(nbits)))
    {
        assert(nbits >= 1 && nbits <= 16);
        value_ = init > max_ ? max_ : static_cast<std::uint16_t>(init);
    }

    /** Saturating increment. */
    void
    increment()
    {
        if (value_ < max_)
            ++value_;
    }

    /** Saturating decrement. */
    void
    decrement()
    {
        if (value_ > 0)
            --value_;
    }

    /** Move toward taken (true) or not-taken (false). */
    void
    train(bool taken)
    {
        if (taken)
            increment();
        else
            decrement();
    }

    /** Current raw value. */
    std::uint16_t value() const { return value_; }

    /** Overwrite raw value (used by metadata-based state recovery). */
    void
    set(unsigned v)
    {
        value_ = v > max_ ? max_ : static_cast<std::uint16_t>(v);
    }

    /** Reset to the weakly-not-taken midpoint minus one half. */
    void reset() { value_ = 0; }

    /** True when the counter's MSB is set (predict taken). */
    bool taken() const { return value_ > max_ / 2; }

    /** True when the counter is at either saturation rail. */
    bool saturated() const { return value_ == 0 || value_ == max_; }

    /**
     * Confidence in [0, 1]: distance from the decision threshold,
     * normalised. Weak counters report low confidence.
     */
    double
    confidence() const
    {
        const double mid = (max_ + 1) / 2.0;
        const double d = value_ >= mid ? value_ - mid + 1 : mid - value_;
        return d / mid;
    }

    /** Counter width in bits. */
    unsigned numBits() const { return nbits_; }

    /** Maximum representable value. */
    std::uint16_t maxValue() const { return max_; }

  private:
    unsigned nbits_ = 2;
    std::uint16_t max_ = 3;
    std::uint16_t value_ = 0;
};

/**
 * A signed saturating counter in [-2^(n-1), 2^(n-1) - 1], used by
 * TAGE useful bits, perceptron weights, and choice counters.
 */
class SignedSatCounter
{
  public:
    SignedSatCounter() = default;

    explicit SignedSatCounter(unsigned nbits, int init = 0)
        : min_(-(1 << (nbits - 1))),
          max_((1 << (nbits - 1)) - 1)
    {
        assert(nbits >= 1 && nbits <= 15);
        value_ = clamp(init);
    }

    void
    add(int delta)
    {
        value_ = clamp(value_ + delta);
    }

    /** Move toward positive (true) or negative (false). */
    void
    train(bool up)
    {
        add(up ? 1 : -1);
    }

    int value() const { return value_; }
    void set(int v) { value_ = clamp(v); }
    bool positive() const { return value_ >= 0; }
    int minValue() const { return min_; }
    int maxValue() const { return max_; }

  private:
    int
    clamp(int v) const
    {
        if (v < min_) return min_;
        if (v > max_) return max_;
        return v;
    }

    int min_ = -2;
    int max_ = 1;
    int value_ = 0;
};

} // namespace cobra

#endif // COBRA_COMMON_SAT_COUNTER_HPP
