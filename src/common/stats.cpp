#include "common/stats.hpp"

#include <cmath>

namespace cobra {

double
geometricMean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    double logSum = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            return 0.0;
        logSum += std::log(x);
    }
    return std::exp(logSum / static_cast<double>(xs.size()));
}

} // namespace cobra
