/**
 * @file
 * Minimal JSON emission helpers shared by the stats/trace writers.
 * COBRA emits JSON (it never parses it), so a string escaper and a
 * couple of formatting helpers are the whole surface.
 */

#ifndef COBRA_COMMON_JSON_HPP
#define COBRA_COMMON_JSON_HPP

#include <cstdio>
#include <string>
#include <string_view>

namespace cobra {

/** Escape @p s for inclusion in a double-quoted JSON string. */
inline std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * Convert a camelCase identifier to the snake_case used for JSON
 * keys ("condMispredicts" -> "cond_mispredicts").
 */
inline std::string
jsonKeyFromCamel(std::string_view name)
{
    std::string out;
    out.reserve(name.size() + 4);
    for (char c : name) {
        if (c >= 'A' && c <= 'Z') {
            out += '_';
            out += static_cast<char>(c - 'A' + 'a');
        } else {
            out += c;
        }
    }
    return out;
}

} // namespace cobra

#endif // COBRA_COMMON_JSON_HPP
