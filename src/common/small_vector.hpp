/**
 * @file
 * A small-buffer-optimised dynamic array for trivially-copyable
 * value types on the simulator's hot path. Up to @p N elements live
 * inline (no heap traffic); longer sequences transparently spill to a
 * heap buffer. Metadata bundles, history-register words, and other
 * per-prediction state use this so that the cycle loop — and the
 * history-file / repair-queue copies it drives — allocate nothing in
 * steady state.
 */

#ifndef COBRA_COMMON_SMALL_VECTOR_HPP
#define COBRA_COMMON_SMALL_VECTOR_HPP

#include <array>
#include <cassert>
#include <cstddef>
#include <cstring>
#include <memory>
#include <type_traits>

namespace cobra {

/**
 * Fixed-inline-capacity vector. Elements are stored in an inline
 * array while size() <= N and in a heap buffer beyond that; the
 * transition copies, so T must be trivially copyable (all hot-path
 * payloads are). The heap buffer is plain storage rather than a
 * std::vector so that SmallVector<bool, N> keeps real bools with
 * addressable data().
 */
template <typename T, std::size_t N>
class SmallVector
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "SmallVector is for trivially-copyable payloads");
    static_assert(N >= 1);

  public:
    SmallVector() = default;

    explicit SmallVector(std::size_t n, const T& value = T())
    {
        assign(n, value);
    }

    SmallVector(const SmallVector& o) { *this = o; }

    SmallVector&
    operator=(const SmallVector& o)
    {
        if (this == &o)
            return *this;
        reserveFor(o.size_);
        size_ = o.size_;
        std::memcpy(data(), o.data(), size_ * sizeof(T));
        return *this;
    }

    SmallVector(SmallVector&& o) noexcept
        : size_(o.size_), inline_(o.inline_), heap_(std::move(o.heap_)),
          heapCap_(o.heapCap_)
    {
        o.size_ = 0;
        o.heapCap_ = 0;
    }

    SmallVector&
    operator=(SmallVector&& o) noexcept
    {
        if (this == &o)
            return *this;
        size_ = o.size_;
        inline_ = o.inline_;
        heap_ = std::move(o.heap_);
        heapCap_ = o.heapCap_;
        o.size_ = 0;
        o.heapCap_ = 0;
        return *this;
    }

    /** Resize to @p n elements, each a copy of @p value. */
    void
    assign(std::size_t n, const T& value = T())
    {
        reserveFor(n);
        size_ = n;
        T* d = data();
        for (std::size_t i = 0; i < n; ++i)
            d[i] = value;
    }

    void
    push_back(const T& value)
    {
        reserveFor(size_ + 1);
        // Pick storage for the NEW size: the write that crosses the
        // inline->heap boundary must land in the heap buffer.
        T* d = size_ + 1 <= N ? inline_.data() : heap_.get();
        d[size_++] = value;
    }

    void clear() { size_ = 0; }

    void
    resize(std::size_t n)
    {
        if (n <= size_) {
            if (size_ > N && n <= N)
                std::memcpy(inline_.data(), heap_.get(), n * sizeof(T));
            size_ = n;
            return;
        }
        const std::size_t old = size_;
        reserveFor(n);
        size_ = n; // data() must resolve against the grown size.
        T* d = data();
        for (std::size_t i = old; i < n; ++i)
            d[i] = T();
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /** Inline capacity (elements held without heap storage). */
    static constexpr std::size_t inlineCapacity() { return N; }

    T&
    operator[](std::size_t i)
    {
        assert(i < size_);
        return data()[i];
    }

    const T&
    operator[](std::size_t i) const
    {
        assert(i < size_);
        return data()[i];
    }

    T* data() { return size_ <= N ? inline_.data() : heap_.get(); }
    const T* data() const
    {
        return size_ <= N ? inline_.data() : heap_.get();
    }

    T* begin() { return data(); }
    T* end() { return data() + size_; }
    const T* begin() const { return data(); }
    const T* end() const { return data() + size_; }

    T& front() { return (*this)[0]; }
    const T& front() const { return (*this)[0]; }
    T& back() { return (*this)[size_ - 1]; }
    const T& back() const { return (*this)[size_ - 1]; }

    bool
    operator==(const SmallVector& o) const
    {
        if (size_ != o.size_)
            return false;
        const T* a = data();
        const T* b = o.data();
        for (std::size_t i = 0; i < size_; ++i) {
            if (!(a[i] == b[i]))
                return false;
        }
        return true;
    }

    bool operator!=(const SmallVector& o) const { return !(*this == o); }

  private:
    /** Ensure storage for @p n elements, keeping current contents. */
    void
    reserveFor(std::size_t n)
    {
        if (n <= N || n <= heapCap_) {
            if (n > N && size_ <= N) // Re-spill into retained buffer.
                std::memcpy(heap_.get(), inline_.data(),
                            size_ * sizeof(T));
            return;
        }
        std::size_t cap = heapCap_ ? heapCap_ : 2 * N;
        while (cap < n)
            cap *= 2;
        auto grown = std::make_unique<T[]>(cap);
        std::memcpy(grown.get(), data(), size_ * sizeof(T));
        heap_ = std::move(grown);
        heapCap_ = cap;
    }

    std::size_t size_ = 0;
    std::array<T, N> inline_{};
    std::unique_ptr<T[]> heap_;
    std::size_t heapCap_ = 0;
};

} // namespace cobra

#endif // COBRA_COMMON_SMALL_VECTOR_HPP
