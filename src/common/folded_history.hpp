/**
 * @file
 * Incrementally folded global-history registers, as used by TAGE-class
 * predictors to hash very long histories into short indices/tags
 * (Michaud, "A PPM-like, tag-based branch predictor").
 */

#ifndef COBRA_COMMON_FOLDED_HISTORY_HPP
#define COBRA_COMMON_FOLDED_HISTORY_HPP

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/bitutil.hpp"
#include "common/small_vector.hpp"

namespace cobra {

/**
 * A fixed-capacity shift register of branch outcomes. Bit 0 is the
 * most recent outcome. Supports snapshot/restore for speculation repair.
 *
 * Registers up to 256 bits (every paper configuration) live entirely
 * inline — copying one into the history file or a query is a memcpy,
 * not an allocation.
 */
class HistoryRegister
{
  public:
    explicit HistoryRegister(unsigned length = 64)
        : length_(length)
    {
        assert(length >= 1 && length <= 4096);
        words_.assign((length + 63) / 64, 0);
    }

    /** Shift in one outcome (true = taken) as the new bit 0. */
    void
    push(bool taken)
    {
        std::uint64_t carry = taken ? 1 : 0;
        for (auto& w : words_) {
            const std::uint64_t msb = w >> 63;
            w = (w << 1) | carry;
            carry = msb;
        }
        // Mask off bits beyond the configured length in the top word.
        const unsigned topBits = length_ % 64;
        if (topBits != 0)
            words_.back() &= maskBits(topBits);
    }

    /** Outcome @p i positions ago (0 = most recent). */
    bool
    bit(unsigned i) const
    {
        assert(i < length_);
        return (words_[i / 64] >> (i % 64)) & 1;
    }

    /** Low @p n bits (n <= 64) packed into a word; bit 0 most recent. */
    std::uint64_t
    low(unsigned n) const
    {
        assert(n <= 64);
        if (n == 0)
            return 0;
        std::uint64_t v = words_[0];
        return v & maskBits(n);
    }

    /**
     * foldXor(low(min(histBits, 64)), outBits): the standard
     * index/tag fold every ghist-consuming component uses.
     */
    std::uint64_t
    folded(unsigned hist_bits, unsigned out_bits) const
    {
        return foldXor(low(hist_bits < 64 ? hist_bits : 64), out_bits);
    }

    unsigned length() const { return length_; }

    /** Full snapshot of the register contents. */
    std::vector<std::uint64_t>
    snapshot() const
    {
        return std::vector<std::uint64_t>(words_.begin(), words_.end());
    }

    /** Restore a snapshot taken from a register of identical length. */
    void
    restore(const std::vector<std::uint64_t>& snap)
    {
        assert(snap.size() == words_.size());
        for (std::size_t i = 0; i < snap.size(); ++i)
            words_[i] = snap[i];
    }

    bool
    operator==(const HistoryRegister& o) const
    {
        return length_ == o.length_ && words_ == o.words_;
    }

  private:
    unsigned length_;
    /** 4 inline words = 256 bits, enough for every shipped config. */
    SmallVector<std::uint64_t, 4> words_;
};

/**
 * Maintains fold(history[0:histLen]) into @p foldedLen bits
 * incrementally: each push costs O(1) instead of re-folding the whole
 * history. Mirrors the circular-shift-register structure used in TAGE
 * hardware.
 */
class FoldedHistory
{
  public:
    FoldedHistory() = default;

    /**
     * @param histLen   Number of history bits folded.
     * @param foldedLen Output width in bits (1..32).
     */
    FoldedHistory(unsigned histLen, unsigned foldedLen)
        : histLen_(histLen), foldedLen_(foldedLen)
    {
        assert(foldedLen >= 1 && foldedLen <= 32);
        outPoint_ = histLen % foldedLen;
    }

    /**
     * Update with the newest outcome and the outcome falling off the
     * end of the folded window (history position histLen-1 *before*
     * this push).
     */
    void
    push(bool newest, bool oldest)
    {
        folded_ = (folded_ << 1) | (newest ? 1 : 0);
        folded_ ^= (oldest ? 1u : 0u) << outPoint_;
        folded_ ^= folded_ >> foldedLen_;
        folded_ &= static_cast<std::uint32_t>(maskBits(foldedLen_));
    }

    /** Current folded value. */
    std::uint32_t value() const { return folded_; }

    /**
     * Recompute from scratch against a full history register by
     * replaying pushes from an empty window; this is consistent with
     * the incremental push() by construction.
     */
    void
    recompute(const HistoryRegister& hist)
    {
        folded_ = 0;
        // Replay the window's bits oldest-first from an empty start.
        // No bit completes a full trip through the window during the
        // histLen_ replay pushes, so nothing falls out (oldest = 0);
        // the linearity of the fold guarantees this equals the state
        // of an always-running incrementally updated register.
        for (unsigned i = histLen_; i-- > 0;) {
            const bool newest = i < hist.length() && hist.bit(i);
            push(newest, /*oldest=*/false);
        }
    }

    unsigned histLen() const { return histLen_; }
    unsigned foldedLen() const { return foldedLen_; }

  private:
    unsigned histLen_ = 0;
    unsigned foldedLen_ = 1;
    unsigned outPoint_ = 0;
    std::uint32_t folded_ = 0;
};

} // namespace cobra

#endif // COBRA_COMMON_FOLDED_HISTORY_HPP
