/**
 * @file
 * Bit-manipulation helpers used by predictor index/tag hashing.
 */

#ifndef COBRA_COMMON_BITUTIL_HPP
#define COBRA_COMMON_BITUTIL_HPP

#include <bit>
#include <cassert>
#include <cstdint>

namespace cobra {

/** Return a mask with the low @p n bits set (n may be 0..64). */
constexpr std::uint64_t
maskBits(unsigned n)
{
    return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/** Extract bits [lo, lo+n) of @p v. */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned lo, unsigned n)
{
    return (v >> lo) & maskBits(n);
}

/** True iff @p v is a power of two (and nonzero). */
constexpr bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** ceil(log2(v)) for v >= 1. */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    assert(v >= 1);
    unsigned l = 0;
    std::uint64_t p = 1;
    while (p < v) { p <<= 1; ++l; }
    return l;
}

/** floor(log2(v)) for v >= 1. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    assert(v >= 1);
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/** XOR-fold @p v down to @p outBits bits (classic gshare-style folding). */
constexpr std::uint64_t
foldXor(std::uint64_t v, unsigned outBits)
{
    if (outBits == 0)
        return 0;
    if (outBits >= 64)
        return v;
    std::uint64_t r = 0;
    while (v != 0) {
        r ^= v & maskBits(outBits);
        v >>= outBits;
    }
    return r;
}

/**
 * Mix a 64-bit value (splitmix64 finalizer). Used for deterministic
 * pseudo-random behaviour functions and wrong-path outcome synthesis.
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Combine two 64-bit values into one mixed hash. */
constexpr std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    return mix64(a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2)));
}

} // namespace cobra

#endif // COBRA_COMMON_BITUTIL_HPP
