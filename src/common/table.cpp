#include "common/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>

namespace cobra {

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
TextTable::beginRow()
{
    rows_.emplace_back();
}

void
TextTable::cell(const std::string& s)
{
    rows_.back().push_back(s);
}

void
TextTable::cell(double v, int precision)
{
    rows_.back().push_back(formatDouble(v, precision));
}

void
TextTable::cell(std::uint64_t v)
{
    rows_.back().push_back(std::to_string(v));
}

void
TextTable::cell(int v)
{
    rows_.back().push_back(std::to_string(v));
}

void
TextTable::print(std::ostream& os) const
{
    if (!title_.empty())
        os << "== " << title_ << " ==\n";
    if (rows_.empty())
        return;

    std::size_t cols = 0;
    for (const auto& r : rows_)
        cols = std::max(cols, r.size());

    std::vector<std::size_t> width(cols, 0);
    for (const auto& r : rows_)
        for (std::size_t c = 0; c < r.size(); ++c)
            width[c] = std::max(width[c], r[c].size());

    auto printRow = [&](const std::vector<std::string>& r) {
        for (std::size_t c = 0; c < cols; ++c) {
            const std::string& s = c < r.size() ? r[c] : std::string{};
            os << std::left << std::setw(static_cast<int>(width[c]) + 2)
               << s;
        }
        os << "\n";
    };

    printRow(rows_.front());
    std::size_t total = 0;
    for (auto w : width)
        total += w + 2;
    os << std::string(total, '-') << "\n";
    for (std::size_t i = 1; i < rows_.size(); ++i)
        printRow(rows_[i]);
}

std::string
formatDouble(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

std::string
formatKiB(std::uint64_t bits)
{
    const double kib = static_cast<double>(bits) / 8.0 / 1024.0;
    return formatDouble(kib, 2) + " KiB";
}

} // namespace cobra
