/**
 * @file
 * Plain-text table formatter used by the benchmark harnesses to print
 * paper-style tables and figure series.
 */

#ifndef COBRA_COMMON_TABLE_HPP
#define COBRA_COMMON_TABLE_HPP

#include <ostream>
#include <string>
#include <vector>

namespace cobra {

/**
 * Accumulates rows of string cells and prints them with aligned
 * columns. The first row added is treated as the header.
 */
class TextTable
{
  public:
    explicit TextTable(std::string title = "") : title_(std::move(title)) {}

    /** Add a full row of cells. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: begin a new row and append cells one at a time. */
    void beginRow();
    void cell(const std::string& s);
    void cell(double v, int precision = 3);
    void cell(std::uint64_t v);
    void cell(int v);

    /** Render with aligned columns and a rule under the header. */
    void print(std::ostream& os) const;

    std::size_t numRows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision. */
std::string formatDouble(double v, int precision = 3);

/** Format a byte count as a human-readable KB string. */
std::string formatKiB(std::uint64_t bits);

} // namespace cobra

#endif // COBRA_COMMON_TABLE_HPP
