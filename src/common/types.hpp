/**
 * @file
 * Fundamental scalar types shared across the COBRA model.
 */

#ifndef COBRA_COMMON_TYPES_HPP
#define COBRA_COMMON_TYPES_HPP

#include <cstdint>
#include <cstddef>
#include <limits>

namespace cobra {

/** Byte address in the simulated machine. */
using Addr = std::uint64_t;

/** Simulation time in core clock cycles. */
using Cycle = std::uint64_t;

/** Global dynamic-instruction sequence number (program order). */
using SeqNum = std::uint64_t;

/** Architectural register index in the synthetic ISA. */
using RegIndex = std::uint16_t;

/** Identifier of a static instruction within a Program. */
using StaticId = std::uint32_t;

/** Sentinel for "no sequence number". */
inline constexpr SeqNum kInvalidSeq = std::numeric_limits<SeqNum>::max();

/** Sentinel for "no address". */
inline constexpr Addr kInvalidAddr = std::numeric_limits<Addr>::max();

/** Size of one instruction in bytes (fixed-width synthetic ISA). */
inline constexpr unsigned kInstBytes = 4;

} // namespace cobra

#endif // COBRA_COMMON_TYPES_HPP
