/**
 * @file
 * Lightweight named statistics: scalar counters, ratios, and
 * histograms, with formatted dumping. Inspired by gem5's stats
 * package but deliberately tiny.
 */

#ifndef COBRA_COMMON_STATS_HPP
#define COBRA_COMMON_STATS_HPP

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace cobra {

/** A monotonically increasing event counter. */
class Counter
{
  public:
    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    void operator+=(std::uint64_t n) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Fixed-bucket histogram over small non-negative integers. */
class Histogram
{
  public:
    explicit Histogram(std::size_t buckets = 16)
        : buckets_(buckets, 0)
    {}

    void
    sample(std::size_t v)
    {
        if (v >= buckets_.size())
            v = buckets_.size() - 1;
        ++buckets_[v];
        ++samples_;
        sum_ += v;
    }

    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
    std::size_t numBuckets() const { return buckets_.size(); }
    std::uint64_t samples() const { return samples_; }

    double
    mean() const
    {
        return samples_ == 0 ? 0.0
                             : static_cast<double>(sum_) / samples_;
    }

    void
    reset()
    {
        for (auto& b : buckets_)
            b = 0;
        samples_ = 0;
        sum_ = 0;
    }

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t samples_ = 0;
    std::uint64_t sum_ = 0;
};

/**
 * A registry of named counters grouped by component, so simulation
 * objects can expose stats without global state.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "") : name_(std::move(name)) {}

    Counter& counter(const std::string& key) { return counters_[key]; }

    std::uint64_t
    get(const std::string& key) const
    {
        auto it = counters_.find(key);
        return it == counters_.end() ? 0 : it->second.value();
    }

    const std::string& name() const { return name_; }

    void
    dump(std::ostream& os) const
    {
        for (const auto& [k, c] : counters_)
            os << name_ << "." << k << " = " << c.value() << "\n";
    }

    void
    reset()
    {
        for (auto& [k, c] : counters_)
            c.reset();
    }

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
};

/** Harmonic mean of a series of positive values. */
inline double
harmonicMean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    double denom = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            return 0.0;
        denom += 1.0 / x;
    }
    return static_cast<double>(xs.size()) / denom;
}

/** Arithmetic mean. */
inline double
arithmeticMean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

/** Geometric mean of positive values. */
double geometricMean(const std::vector<double>& xs);

} // namespace cobra

#endif // COBRA_COMMON_STATS_HPP
