/**
 * @file
 * Lightweight named statistics: scalar counters, ratios, and
 * histograms, with formatted dumping. Inspired by gem5's stats
 * package but deliberately tiny.
 *
 * Stats are *registered handles*: a simulation object declares
 * `Stat<Counter>` / `Stat<Histogram>` members constructed against its
 * StatGroup with a name and a description. Registration happens once,
 * at construction; the hot path increments the member directly (no
 * string-keyed lookup of any kind). The group keeps the registration
 * order and metadata so CobraScope (src/scope) can render every stat
 * — text or JSON — without the owning object's cooperation.
 */

#ifndef COBRA_COMMON_STATS_HPP
#define COBRA_COMMON_STATS_HPP

#include <cstdint>
#include <ostream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace cobra {

/** A monotonically increasing event counter. */
class Counter
{
  public:
    void operator++() { ++value_; }
    void operator++(int) { ++value_; }
    void operator+=(std::uint64_t n) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }
    /** Overwrite the count (checkpoint restore only). */
    void set(std::uint64_t v) { value_ = v; }

  private:
    std::uint64_t value_ = 0;
};

/** Fixed-bucket histogram over small non-negative integers. */
class Histogram
{
  public:
    explicit Histogram(std::size_t buckets = 16)
        : buckets_(buckets, 0)
    {}

    void
    sample(std::size_t v)
    {
        if (v >= buckets_.size())
            v = buckets_.size() - 1;
        ++buckets_[v];
        ++samples_;
        sum_ += v;
    }

    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
    std::size_t numBuckets() const { return buckets_.size(); }
    std::uint64_t samples() const { return samples_; }
    std::uint64_t sum() const { return sum_; }

    /**
     * Overwrite the full histogram state (checkpoint restore only).
     * The bucket count is part of the histogram's configuration, not
     * its state, so it must match.
     */
    void
    setState(const std::vector<std::uint64_t>& buckets,
             std::uint64_t samples, std::uint64_t sum)
    {
        if (buckets.size() != buckets_.size())
            throw std::invalid_argument("histogram bucket-count mismatch");
        buckets_ = buckets;
        samples_ = samples;
        sum_ = sum;
    }

    double
    mean() const
    {
        return samples_ == 0 ? 0.0
                             : static_cast<double>(sum_) / samples_;
    }

    void
    reset()
    {
        for (auto& b : buckets_)
            b = 0;
        samples_ = 0;
        sum_ = 0;
    }

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t samples_ = 0;
    std::uint64_t sum_ = 0;
};

/**
 * The named-stat registry of one simulation object. Owns no values —
 * `Stat<T>` members register themselves here at construction and must
 * therefore outlive the group reads (declare the StatGroup member
 * before the Stat members it hosts). Duplicate stat names within one
 * group are a wiring bug and are rejected with std::invalid_argument.
 */
class StatGroup
{
  public:
    /** One registered stat: exactly one of the two pointers is set. */
    struct Entry
    {
        std::string name;
        std::string description;
        Counter* counter = nullptr;
        Histogram* histogram = nullptr;
    };

    explicit StatGroup(std::string name = "") : name_(std::move(name)) {}

    /** Registered handles point at members of the owning object. */
    StatGroup(const StatGroup&) = delete;
    StatGroup& operator=(const StatGroup&) = delete;

    /** Called by Stat<T>'s constructor; rejects duplicate names. */
    void
    registerStat(std::string name, std::string description, Counter* c,
                 Histogram* h)
    {
        for (const Entry& e : entries_) {
            if (e.name == name) {
                throw std::invalid_argument(
                    "duplicate stat '" + name + "' in group '" + name_ +
                    "'");
            }
        }
        entries_.push_back(
            Entry{std::move(name), std::move(description), c, h});
    }

    /** Read a counter by name (0 when absent). Cold path only. */
    std::uint64_t
    get(std::string_view key) const
    {
        for (const Entry& e : entries_) {
            if (e.counter != nullptr && e.name == key)
                return e.counter->value();
        }
        return 0;
    }

    const std::string& name() const { return name_; }

    /** Registered stats, in registration order. */
    const std::vector<Entry>& entries() const { return entries_; }

    /** Mutable view for checkpoint restore (same order as entries()). */
    std::vector<Entry>& mutableEntries() { return entries_; }

    void
    dump(std::ostream& os) const
    {
        for (const Entry& e : entries_) {
            if (e.counter != nullptr) {
                os << name_ << "." << e.name << " = "
                   << e.counter->value() << "\n";
            } else {
                os << name_ << "." << e.name << " = samples "
                   << e.histogram->samples() << ", mean "
                   << e.histogram->mean() << "\n";
            }
        }
    }

    void
    reset()
    {
        for (Entry& e : entries_) {
            if (e.counter != nullptr)
                e.counter->reset();
            else
                e.histogram->reset();
        }
    }

  private:
    std::string name_;
    std::vector<Entry> entries_;
};

/**
 * A registered statistic handle: a Counter or Histogram declared as a
 * member and tied to its StatGroup at construction. The handle IS the
 * value — `++stat` / `stat.sample(v)` touch the member directly, so
 * per-event updates cost exactly what the bare value type costs.
 */
template <typename T>
class Stat : public T
{
  public:
    static_assert(std::is_same_v<T, Counter> ||
                      std::is_same_v<T, Histogram>,
                  "Stat<T> supports Counter and Histogram");

    template <typename... Args>
    Stat(StatGroup& group, std::string name, std::string description,
         Args&&... args)
        : T(std::forward<Args>(args)...)
    {
        if constexpr (std::is_same_v<T, Counter>) {
            group.registerStat(std::move(name), std::move(description),
                               this, nullptr);
        } else {
            group.registerStat(std::move(name), std::move(description),
                               nullptr, this);
        }
    }

    /** The registered address must stay stable. */
    Stat(const Stat&) = delete;
    Stat& operator=(const Stat&) = delete;
};

/** Harmonic mean of a series of positive values. */
inline double
harmonicMean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    double denom = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            return 0.0;
        denom += 1.0 / x;
    }
    return static_cast<double>(xs.size()) / denom;
}

/** Arithmetic mean. */
inline double
arithmeticMean(const std::vector<double>& xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

/** Geometric mean of positive values. */
double geometricMean(const std::vector<double>& xs);

} // namespace cobra

#endif // COBRA_COMMON_STATS_HPP
