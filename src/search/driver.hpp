/**
 * @file
 * The composition-search autopilot (docs/SEARCH.md): budgeted
 * successive halving over DesignSpec candidates.
 *
 *   pool  -> tier 0: functional seed evals + ridge surrogate prune
 *         -> tier 1: functional evals of the survivors
 *         -> tier 2: warp interval-sampled ranking
 *         -> tier 3: full detailed certification (SweepEngine)
 *         -> Pareto frontier over (accuracy, area, predict latency)
 *
 * The paper's preset designs ride along as always-certified anchors,
 * so the frontier always contains the paper's TAGE-L point or a
 * candidate that dominates it. Every step is deterministic under the
 * search seed: candidate generation is seeded, the surrogate is
 * closed-form, warp stitching and SweepEngine results are
 * deterministic, and ranking ties break on stable keys — the same
 * seed always reproduces the same frontier artifact.
 */

#ifndef COBRA_SEARCH_DRIVER_HPP
#define COBRA_SEARCH_DRIVER_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "phys/area_model.hpp"
#include "program/workload.hpp"
#include "search/features.hpp"
#include "sim/design_spec.hpp"

namespace cobra::search {

/** Hard resource ceiling every candidate must respect; 0 = unlimited. */
struct SearchBudget
{
    /** Architectural storage ceiling in kilobytes (1 KB = 8192 bits). */
    std::uint64_t storageKb = 0;
    /** Predictor area ceiling in um^2 under the FinFET proxy model. */
    double areaUm2 = 0.0;
};

struct SearchConfig
{
    std::uint64_t seed = 0xC0B7A;
    /** Candidate pool size, anchors included. */
    unsigned pool = 32;
    SearchBudget budget;
    std::vector<std::string> workloads = {"mcf"};
    /** Include the paper presets as always-certified anchors. */
    bool anchors = true;
    /** Fraction of the sampled pool mutated from anchor sizings. */
    double mutateFrac = 0.25;

    // ---- Successive-halving tier sizes --------------------------------
    /** Functional evals used to fit the surrogate (>= 2). Setting
     *  this >= pool disables the surrogate prune (exhaustive tier 0),
     *  which is how bench_search measures the evals-saved win. */
    unsigned seedEvals = 10;
    /** Pool left after the surrogate prune (all functionally evaluated). */
    unsigned functionalSurvivors = 14;
    /** Survivors ranked by warp interval sampling. */
    unsigned warpSurvivors = 5;
    /** Non-anchor candidates certified by full detailed runs. */
    unsigned finalists = 2;

    // ---- Per-tier evaluation budgets ----------------------------------
    std::size_t traceBranches = 60'000; ///< Tier-0/1 trace length.
    std::size_t traceWarmup = 15'000;   ///< Unmeasured trace prefix.
    std::uint64_t warpInsts = 200'000;  ///< Tier-2 run length.
    unsigned warpIntervals = 4;
    std::uint64_t warpWarmupCycles = 10'000;
    /** Detailed insts per warp interval; 0 = whole interval. */
    std::uint64_t warpSampleInsts = 0;
    std::uint64_t detailInsts = 400'000; ///< Tier-3 run length.
    std::uint64_t detailWarmup = 120'000;

    double ridgeLambda = 1.0;
    unsigned jobs = 0; ///< Worker pool for all tiers.
    bool progress = false;
    /**
     * Evaluate tier-0/1 candidates through the wavefront batch
     * evaluator (trace/batch_eval.hpp): each shared trace streams
     * once across all candidate lanes instead of once per candidate.
     * Off falls back to the serial per-candidate walk; the frontier
     * artifact is byte-identical either way.
     */
    bool batchEval = true;

    /** Throws guard::ConfigError naming the offending field. */
    void validate() const;
};

struct WarpMetrics
{
    double ipc = 0.0;
    double mpki = 0.0;
    double ipcCi95 = 0.0;
    double mpkiCi95 = 0.0;
};

struct DetailMetrics
{
    double ipc = 0.0;
    double mpki = 0.0;
    double accuracy = 0.0;
    std::uint64_t cycles = 0;
    std::uint64_t insts = 0;
};

/** One pool member with everything measured about it so far. */
struct Candidate
{
    sim::DesignSpec spec;
    std::string id; ///< "preset-tagel" | "cand-007" | "mut-002".
    bool anchor = false;

    // Static properties (always present).
    std::uint64_t storageBits = 0;
    double areaUm2 = 0.0;
    unsigned latency = 0;

    /** Deepest tier reached: pool|surrogate|functional|warp|detailed. */
    std::string tier = "pool";

    bool hasSurrogate = false;
    double surrogateScore = 0.0; ///< Predicted functional accuracy.
    bool hasFunctional = false;
    double functionalAccuracy = 0.0; ///< Workload-mean trace accuracy.
    bool hasWarp = false;
    WarpMetrics warp;
    bool hasDetail = false;
    DetailMetrics detail;
    /** Failure text when detailed certification errored. */
    std::string certifyError;

    bool onFrontier = false;
};

struct SearchResult
{
    SearchConfig cfg; ///< The exact configuration that ran (echo).
    std::vector<WorkloadFeatures> features; ///< One per workload.
    std::vector<Candidate> candidates;      ///< Deterministic order.
    /** Indices of the Pareto frontier, sorted by area ascending. */
    std::vector<std::size_t> frontier;

    unsigned functionalEvals = 0;
    unsigned warpEvals = 0;
    unsigned detailedEvals = 0;
    /** Pool members never functionally evaluated (surrogate win). */
    unsigned evalsSaved = 0;
    unsigned anchorsDropped = 0; ///< Anchors excluded by the budget.
    double surrogateRmse = 0.0;
    bool surrogateUsed = false;
};

/** True when @p spec fits @p budget under @p model. */
bool withinBudget(const sim::DesignSpec& spec,
                  const SearchBudget& budget,
                  const phys::AreaModel& model);

/**
 * Pareto frontier (maximize detailed accuracy, minimize area and
 * predict latency) over the certified candidates; returns indices
 * into @p cands sorted by area ascending then id.
 */
std::vector<std::size_t>
paretoFrontier(const std::vector<Candidate>& cands);

/**
 * Run the full autopilot. Throws guard::ConfigError on an invalid
 * configuration or a budget no candidate satisfies.
 */
SearchResult runSearch(const SearchConfig& cfg,
                       prog::WorkloadCache& cache);

/**
 * The reproducible frontier artifact: a JSON document carrying the
 * search provenance (seed, budget, tier sizes, per-tier eval
 * budgets), per-candidate records with their deepest tier and
 * metrics, and the frontier with full inline specs. Validated by
 * tools/check_stats_schema.py --kind search-frontier.
 */
std::string frontierJson(const SearchResult& r);

} // namespace cobra::search

#endif // COBRA_SEARCH_DRIVER_HPP
