#include "search/space.hpp"

#include <algorithm>
#include <cmath>
#include <initializer_list>
#include <string>
#include <vector>

namespace cobra::search {

using sim::ComponentSpec;
using sim::DesignSpec;
using sim::TageTableSpec;
using sim::TreeSpec;

namespace {

/** Pick one element of a fixed list. */
std::uint64_t
pick(Rng& rng, std::initializer_list<std::uint64_t> choices)
{
    return choices.begin()[rng.below(choices.size())];
}

ComponentSpec
makeBtb(Rng& rng)
{
    ComponentSpec c;
    c.id = "BTB";
    c.kind = "btb";
    c.knobs["sets"] = pick(rng, {128, 256, 512, 1024});
    c.knobs["ways"] = pick(rng, {1, 2, 4});
    c.knobs["tag_bits"] = 20;
    c.knobs["latency"] = 2;
    return c;
}

ComponentSpec
makeBaseBim(Rng& rng)
{
    ComponentSpec c;
    c.id = "BIM";
    c.kind = "bim";
    c.mode = "pc";
    c.knobs["sets"] =
        pick(rng, {2048, 4096, 8192});
    c.knobs["ctr_bits"] = 2;
    c.knobs["latency"] = 1;
    return c;
}

ComponentSpec
makeUbtb(Rng& rng)
{
    ComponentSpec c;
    c.id = "uBTB";
    c.kind = "ubtb";
    c.knobs["entries"] =
        pick(rng, {16, 32, 64});
    c.knobs["ctr_bits"] = 2;
    return c;
}

ComponentSpec
makeLoop(Rng& rng)
{
    ComponentSpec c;
    c.id = "LOOP";
    c.kind = "loop";
    c.knobs["entries"] =
        pick(rng, {128, 256, 512});
    c.knobs["latency"] = 3;
    return c;
}

/** Geometric TAGE history series from 4 up to @p cap. */
std::vector<TageTableSpec>
makeTageTables(Rng& rng, unsigned num_tables, unsigned cap)
{
    const std::uint64_t sets =
        pick(rng, {256, 512, 1024, 2048});
    std::vector<TageTableSpec> tables(num_tables);
    const double lo = 4.0;
    const double hi = std::max<double>(lo + 1, cap);
    for (unsigned i = 0; i < num_tables; ++i) {
        double len = lo;
        if (num_tables > 1)
            len = lo * std::pow(hi / lo,
                                static_cast<double>(i) /
                                    (num_tables - 1));
        tables[i].sets = sets;
        tables[i].histLen = std::min<std::uint64_t>(
            cap, std::max<std::uint64_t>(
                     1, static_cast<std::uint64_t>(len + 0.5)));
        if (i > 0 && tables[i].histLen <= tables[i - 1].histLen)
            tables[i].histLen = tables[i - 1].histLen + 1;
        tables[i].tagBits = 9 + i / 3;
    }
    // Monotone bump above can exceed the cap on short histories;
    // clamp by construction: cap >= num_tables is guaranteed below.
    for (auto& t : tables)
        t.histLen = std::min<std::uint64_t>(t.histLen, cap);
    for (unsigned i = 1; i < num_tables; ++i)
        if (tables[i].histLen <= tables[i - 1].histLen)
            tables[i].histLen =
                std::min<std::uint64_t>(cap, tables[i - 1].histLen + 1);
    return tables;
}

} // namespace

DesignSpec
SearchSpace::sample()
{
    DesignSpec s;
    s.name = "candidate";
    s.fetchWidth = 4;
    s.bpu.ghistBits = static_cast<unsigned>(
        pick(rng_, {16, 32, 64}));

    const unsigned archetype = static_cast<unsigned>(rng_.below(4));
    const bool withUbtb = rng_.chance(0.5);
    const bool withLoop =
        (archetype == 1 || archetype == 2) && rng_.chance(0.4);

    std::vector<TreeSpec> chain;
    if (withLoop) {
        s.components.push_back(makeLoop(rng_));
        chain.push_back(TreeSpec::leaf("LOOP"));
    }

    switch (archetype) {
      case 0: { // gshare bimodal stack: GBIM > BTB > BIM [> uBTB]
        ComponentSpec g;
        g.id = "GBIM";
        g.kind = "bim";
        g.mode = "gshare";
        g.knobs["sets"] =
            pick(rng_, {4096, 8192, 16384});
        g.knobs["ctr_bits"] = 2;
        g.knobs["hist_bits"] = std::min<std::uint64_t>(
            s.bpu.ghistBits,
            pick(rng_, {8, 10, 12, 14}));
        g.knobs["latency"] = 2;
        s.components.push_back(g);
        chain.push_back(TreeSpec::leaf("GBIM"));
        break;
      }
      case 1: { // partially-tagged hybrid: GTAG > BTB > BIM
        ComponentSpec g;
        g.id = "GTAG";
        g.kind = "gtag";
        g.knobs["sets"] = pick(rng_, {512, 1024, 2048, 4096});
        g.knobs["ctr_bits"] = 2;
        g.knobs["tag_bits"] =
            pick(rng_, {7, 9, 11});
        g.knobs["hist_bits"] = std::min<std::uint64_t>(
            s.bpu.ghistBits,
            pick(rng_, {8, 12, 16}));
        g.knobs["latency"] = 3;
        s.components.push_back(g);
        chain.push_back(TreeSpec::leaf("GTAG"));
        break;
      }
      case 2: { // TAGE pipeline
        ComponentSpec t;
        t.id = "TAGE";
        t.kind = "tage";
        t.knobs["ctr_bits"] = 3;
        t.knobs["u_bits"] = 2;
        t.knobs["latency"] = 3;
        t.knobs["u_decay_period"] = 1u << 18;
        const unsigned numTables = static_cast<unsigned>(
            rng_.range(4, 8));
        t.tables =
            makeTageTables(rng_, numTables, s.bpu.ghistBits);
        s.components.push_back(t);
        chain.push_back(TreeSpec::leaf("TAGE"));
        break;
      }
      default: break; // tournament handled after the stack
    }

    s.components.push_back(makeBtb(rng_));
    s.components.push_back(makeBaseBim(rng_));
    chain.push_back(TreeSpec::leaf("BTB"));
    chain.push_back(TreeSpec::leaf("BIM"));
    if (withUbtb) {
        s.components.push_back(makeUbtb(rng_));
        chain.push_back(TreeSpec::leaf("uBTB"));
    }

    if (archetype == 3) {
        // Tournament: TOURNEY > [GBIM > BTB > BIM..., LBIM]
        ComponentSpec g;
        g.id = "GBIM";
        g.kind = "bim";
        g.mode = "gshare";
        g.knobs["sets"] =
            pick(rng_, {2048, 4096, 8192});
        g.knobs["ctr_bits"] = 2;
        g.knobs["hist_bits"] = std::min<std::uint64_t>(
            s.bpu.ghistBits,
            pick(rng_, {10, 12, 14}));
        g.knobs["latency"] = 2;

        ComponentSpec l;
        l.id = "LBIM";
        l.kind = "bim";
        l.mode = "lshare";
        l.knobs["sets"] =
            pick(rng_, {512, 1024, 2048});
        l.knobs["ctr_bits"] = 2;
        l.knobs["hist_bits"] = std::min<std::uint64_t>(
            s.bpu.lhistBits,
            pick(rng_, {8, 10, 12}));
        l.knobs["latency"] = 2;

        ComponentSpec a;
        a.id = "TOURNEY";
        a.kind = "tourney";
        a.knobs["sets"] =
            pick(rng_, {512, 1024, 2048});
        a.knobs["ctr_bits"] = 2;
        a.knobs["hist_bits"] = std::min<std::uint64_t>(
            s.bpu.ghistBits,
            pick(rng_, {8, 10, 12}));
        a.knobs["latency"] = 3;

        s.components.insert(s.components.begin(), {g, l});
        s.components.push_back(a);

        std::vector<TreeSpec> global;
        global.push_back(TreeSpec::leaf("GBIM"));
        for (auto& node : chain)
            global.push_back(node); // BTB, BIM, maybe uBTB
        s.tree = TreeSpec::arb(
            "TOURNEY",
            {TreeSpec::chain(std::move(global)),
             TreeSpec::leaf("LBIM")});
    } else {
        s.tree = TreeSpec::chain(std::move(chain));
    }

    s.validate();
    return s;
}

DesignSpec
SearchSpace::mutate(const sim::DesignSpec& base)
{
    // Mutable knob slots: (component index, knob name, lo, hi).
    struct Slot
    {
        std::size_t comp;
        const char* knob; ///< nullptr = TAGE table sets.
        std::uint64_t lo, hi;
    };
    std::vector<Slot> slots;
    for (std::size_t i = 0; i < base.components.size(); ++i) {
        const auto& c = base.components[i];
        if (c.kind == "bim")
            slots.push_back({i, "sets", 1024, 65536});
        else if (c.kind == "btb")
            slots.push_back({i, "sets", 64, 2048});
        else if (c.kind == "gtag")
            slots.push_back({i, "sets", 256, 8192});
        else if (c.kind == "tourney")
            slots.push_back({i, "sets", 256, 4096});
        else if (c.kind == "loop")
            slots.push_back({i, "entries", 64, 1024});
        else if (c.kind == "ubtb")
            slots.push_back({i, "entries", 16, 128});
        else if (c.kind == "tage")
            slots.push_back({i, nullptr, 128, 8192});
    }
    if (slots.empty())
        return base;

    DesignSpec out = base;
    const Slot& s = slots[rng_.below(slots.size())];
    const bool up = rng_.chance(0.5);
    auto step = [&](std::uint64_t v) {
        const std::uint64_t next = up ? v * 2 : v / 2;
        return std::clamp(next, s.lo, s.hi);
    };
    auto& c = out.components[s.comp];
    if (s.knob == nullptr) {
        for (auto& t : c.tables)
            t.sets = step(t.sets);
    } else {
        auto it = c.knobs.find(s.knob);
        if (it != c.knobs.end())
            it->second = step(it->second);
    }
    out.validate();
    return out;
}

} // namespace cobra::search
