#include "search/features.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace cobra::search {

namespace {

/** Stable site key: packet pc and slot fused. */
std::uint64_t
siteKey(Addr pc, unsigned slot)
{
    return (static_cast<std::uint64_t>(pc) << 3) | (slot & 7u);
}

/** Site hash for the alias-pressure tables (fibonacci scramble). */
std::uint64_t
siteHash(std::uint64_t key)
{
    return (key * 0x9E3779B97F4A7C15ull) >> 17;
}

/** Saturating 2-bit counter step. */
void
bump(std::uint8_t& ctr, bool taken)
{
    if (taken) {
        if (ctr < 3)
            ++ctr;
    } else if (ctr > 0) {
        --ctr;
    }
}

/** One idealized 2-bit-counter reference predictor. */
struct RefTable
{
    unsigned histBits;       ///< 0 = per-PC bimodal.
    std::uint64_t correct = 0;
    std::vector<std::uint8_t> ctrs;

    explicit RefTable(unsigned hist_bits)
        : histBits(hist_bits), ctrs(1u << 12, 1)
    {
    }

    void
    step(std::uint64_t key, std::uint64_t ghist, bool taken,
         bool measured)
    {
        std::uint64_t idx = siteHash(key);
        if (histBits > 0) {
            const std::uint64_t mask =
                histBits >= 64 ? ~0ull : ((1ull << histBits) - 1);
            idx ^= ghist & mask;
        }
        idx &= ctrs.size() - 1;
        if (measured && ((ctrs[idx] >= 2) == taken))
            ++correct;
        bump(ctrs[idx], taken);
    }
};

/** Conflict counter: a hashed table remembering each slot's last site. */
struct AliasTable
{
    std::uint64_t conflicts = 0;
    std::uint64_t lookups = 0;
    std::vector<std::uint64_t> last;

    explicit AliasTable(unsigned index_bits)
        : last(1u << index_bits, ~0ull)
    {
    }

    void
    step(std::uint64_t key, bool measured)
    {
        auto& slot = last[siteHash(key) & (last.size() - 1)];
        if (measured) {
            ++lookups;
            if (slot != ~0ull && slot != key)
                ++conflicts;
        }
        slot = key;
    }

    double
    rate() const
    {
        return lookups == 0
                   ? 0.0
                   : static_cast<double>(conflicts) / lookups;
    }
};

struct SiteCounts
{
    std::uint64_t taken = 0;
    std::uint64_t total = 0;
};

double
binaryEntropy(double p)
{
    if (p <= 0.0 || p >= 1.0)
        return 0.0;
    return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

} // namespace

std::vector<double>
WorkloadFeatures::vec() const
{
    return {takenRate, entropyBits,  biasedFrac, alias10,
            alias14,   bimAccuracy,  gshareAcc8, gshareAcc16,
            gshareAcc32, gshareAcc64};
}

std::vector<std::string>
WorkloadFeatures::names()
{
    return {"taken_rate",  "entropy_bits", "biased_frac",
            "alias10",     "alias14",      "bim_acc",
            "gshare_acc8", "gshare_acc16", "gshare_acc32",
            "gshare_acc64"};
}

WorkloadFeatures
workloadFeatures(const std::string& name, const trace::BranchTrace& tr,
                 std::size_t warmup)
{
    WorkloadFeatures f;
    f.workload = name;

    std::unordered_map<std::uint64_t, SiteCounts> sites;
    AliasTable alias10(10), alias14(14);
    RefTable refs[] = {RefTable(0), RefTable(8), RefTable(16),
                       RefTable(32), RefTable(64)};
    std::uint64_t ghist = 0;
    std::uint64_t takenCount = 0;

    for (std::size_t i = 0; i < tr.records.size(); ++i) {
        const auto& rec = tr.records[i];
        const bool measured = i >= warmup;
        const std::uint64_t key = siteKey(rec.pc, rec.slot);

        for (auto& ref : refs)
            ref.step(key, ghist, rec.taken, measured);
        alias10.step(key, measured);
        alias14.step(key, measured);
        if (measured) {
            ++f.branches;
            takenCount += rec.taken ? 1 : 0;
            auto& sc = sites[key];
            ++sc.total;
            sc.taken += rec.taken ? 1 : 0;
        }
        ghist = (ghist << 1) | (rec.taken ? 1 : 0);
    }

    f.staticBranches = sites.size();
    if (f.branches > 0) {
        f.takenRate = static_cast<double>(takenCount) / f.branches;
        double entropy = 0.0;
        std::uint64_t biased = 0;
        for (const auto& [key, sc] : sites) {
            (void)key;
            const double p =
                static_cast<double>(sc.taken) / sc.total;
            const double weight =
                static_cast<double>(sc.total) / f.branches;
            entropy += weight * binaryEntropy(p);
            if (p >= 0.95 || p <= 0.05)
                biased += sc.total;
        }
        f.entropyBits = entropy;
        f.biasedFrac = static_cast<double>(biased) / f.branches;
        f.alias10 = alias10.rate();
        f.alias14 = alias14.rate();
        const double denom = static_cast<double>(f.branches);
        f.bimAccuracy = refs[0].correct / denom;
        f.gshareAcc8 = refs[1].correct / denom;
        f.gshareAcc16 = refs[2].correct / denom;
        f.gshareAcc32 = refs[3].correct / denom;
        f.gshareAcc64 = refs[4].correct / denom;
    }
    return f;
}

std::vector<double>
DesignFeatures::vec() const
{
    return {log2StorageBits, log2AreaUm2, latency, maxHistBits,
            tageTables,      log2BtbEntries, hasLoop, hasTage,
            hasGtag,         hasTourney,     hasUbtb};
}

std::vector<std::string>
DesignFeatures::names()
{
    return {"log2_storage_bits", "log2_area_um2", "latency",
            "max_hist_bits",     "tage_tables",   "log2_btb_entries",
            "has_loop",          "has_tage",      "has_gtag",
            "has_tourney",       "has_ubtb"};
}

DesignFeatures
designFeatures(const sim::DesignSpec& spec,
               const phys::AreaModel& model)
{
    DesignFeatures d;
    const std::uint64_t bits = sim::specStorageBits(spec);
    const double area = sim::specAreaUm2(spec, model);
    d.log2StorageBits = bits > 0 ? std::log2(bits) : 0.0;
    d.log2AreaUm2 = area > 0.0 ? std::log2(area) : 0.0;
    d.latency = sim::specMaxLatency(spec);

    auto knob = [](const sim::ComponentSpec& c, const char* name,
                   std::uint64_t dflt) {
        auto it = c.knobs.find(name);
        return it == c.knobs.end() ? dflt : it->second;
    };

    for (const auto& c : spec.components) {
        if (c.kind == "loop") {
            d.hasLoop = 1.0;
        } else if (c.kind == "tage") {
            d.hasTage = 1.0;
            d.tageTables =
                std::max(d.tageTables,
                         static_cast<double>(c.tables.size()));
            for (const auto& t : c.tables)
                d.maxHistBits = std::max(
                    d.maxHistBits, static_cast<double>(t.histLen));
        } else if (c.kind == "gtag") {
            d.hasGtag = 1.0;
            d.maxHistBits = std::max(
                d.maxHistBits,
                static_cast<double>(knob(c, "hist_bits", 16)));
        } else if (c.kind == "tourney") {
            d.hasTourney = 1.0;
        } else if (c.kind == "ubtb") {
            d.hasUbtb = 1.0;
        } else if (c.kind == "btb") {
            const double entries =
                static_cast<double>(knob(c, "sets", 256) *
                                    knob(c, "ways", 2));
            d.log2BtbEntries = entries > 0.0 ? std::log2(entries) : 0.0;
        } else if (c.kind == "bim" && !c.mode.empty() &&
                   c.mode != "pc") {
            d.maxHistBits = std::max(
                d.maxHistBits,
                static_cast<double>(knob(c, "hist_bits", 0)));
        }
    }
    return d;
}

std::vector<double>
pairFeatures(const DesignFeatures& d, const WorkloadFeatures& w)
{
    std::vector<double> row = d.vec();
    const std::vector<double> wv = w.vec();
    row.insert(row.end(), wv.begin(), wv.end());
    return row;
}

std::vector<std::string>
pairFeatureNames()
{
    std::vector<std::string> names = DesignFeatures::names();
    for (auto& n : WorkloadFeatures::names())
        names.push_back("wl_" + n);
    return names;
}

} // namespace cobra::search
