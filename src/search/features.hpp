/**
 * @file
 * Feature extraction for the composition-search surrogate (tier 0 of
 * the autopilot, docs/SEARCH.md). Two families:
 *
 *  - WorkloadFeatures: branch-behaviour statistics of one workload,
 *    measured on a short recorded trace (trace/recordTrace) in a
 *    single pass — taken-rate, per-static-branch outcome entropy,
 *    bias, alias pressure in hashed tables of two sizes, and the
 *    accuracy of tiny idealized reference predictors (per-PC 2-bit
 *    counters, gshare at several history lengths). These proxy "how
 *    hard is this workload and what history depth pays off".
 *
 *  - DesignFeatures: static properties of a candidate DesignSpec —
 *    log2 storage/area, pipeline depth, deepest history folded in,
 *    table counts, and component-presence indicators.
 *
 * The ridge surrogate (search/surrogate.hpp) is fit on concatenated
 * (design ++ workload) vectors; pairFeatureNames() documents the
 * layout in frontier artifacts.
 */

#ifndef COBRA_SEARCH_FEATURES_HPP
#define COBRA_SEARCH_FEATURES_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "phys/area_model.hpp"
#include "sim/design_spec.hpp"
#include "trace/trace.hpp"

namespace cobra::search {

/** Branch-behaviour statistics of one workload trace. */
struct WorkloadFeatures
{
    std::string workload;
    std::uint64_t branches = 0;       ///< Measured (post-warmup) records.
    std::uint64_t staticBranches = 0; ///< Distinct (pc, slot) sites.
    double takenRate = 0.0;
    /** Frequency-weighted per-static-branch outcome entropy (bits). */
    double entropyBits = 0.0;
    /** Dynamic fraction executed by statics biased >= 95% one way. */
    double biasedFrac = 0.0;
    /** Conflict rate in a 1K-entry hashed site table. */
    double alias10 = 0.0;
    /** Conflict rate in a 16K-entry hashed site table. */
    double alias14 = 0.0;
    /** Accuracy of idealized per-PC 2-bit counters. */
    double bimAccuracy = 0.0;
    /** Accuracy of idealized 4K-entry 2-bit gshare at history h. */
    double gshareAcc8 = 0.0;
    double gshareAcc16 = 0.0;
    double gshareAcc32 = 0.0;
    double gshareAcc64 = 0.0;

    /** Surrogate-input vector; parallel to names(). */
    std::vector<double> vec() const;
    static std::vector<std::string> names();
};

/**
 * Single-pass feature measurement over @p tr. The first @p warmup
 * records train the reference tables but are not measured.
 */
WorkloadFeatures workloadFeatures(const std::string& name,
                                  const trace::BranchTrace& tr,
                                  std::size_t warmup);

/** Static properties of one candidate design. */
struct DesignFeatures
{
    double log2StorageBits = 0.0;
    double log2AreaUm2 = 0.0;
    double latency = 0.0;     ///< Pipeline depth (max component latency).
    double maxHistBits = 0.0; ///< Deepest history any component folds.
    double tageTables = 0.0;
    double log2BtbEntries = 0.0;
    double hasLoop = 0.0;
    double hasTage = 0.0;
    double hasGtag = 0.0;
    double hasTourney = 0.0;
    double hasUbtb = 0.0;

    std::vector<double> vec() const;
    static std::vector<std::string> names();
};

DesignFeatures designFeatures(const sim::DesignSpec& spec,
                              const phys::AreaModel& model);

/** Concatenated design ++ workload surrogate input row. */
std::vector<double> pairFeatures(const DesignFeatures& d,
                                 const WorkloadFeatures& w);
std::vector<std::string> pairFeatureNames();

} // namespace cobra::search

#endif // COBRA_SEARCH_FEATURES_HPP
