#include "search/surrogate.hpp"

#include <cassert>
#include <cmath>

namespace cobra::search {

namespace {

/**
 * Solve the symmetric positive-definite system a*x = b in place by
 * Gaussian elimination with partial pivoting. With the ridge term on
 * the diagonal the system is never singular in practice; a vanishing
 * pivot (all-constant features) zeroes that weight instead of
 * dividing by ~0.
 */
std::vector<double>
solve(std::vector<std::vector<double>> a, std::vector<double> b)
{
    const std::size_t n = b.size();
    for (std::size_t col = 0; col < n; ++col) {
        std::size_t pivot = col;
        for (std::size_t r = col + 1; r < n; ++r)
            if (std::fabs(a[r][col]) > std::fabs(a[pivot][col]))
                pivot = r;
        if (pivot != col) {
            std::swap(a[pivot], a[col]);
            std::swap(b[pivot], b[col]);
        }
        const double p = a[col][col];
        if (std::fabs(p) < 1e-12) {
            b[col] = 0.0;
            continue;
        }
        for (std::size_t r = col + 1; r < n; ++r) {
            const double f = a[r][col] / p;
            if (f == 0.0)
                continue;
            for (std::size_t c = col; c < n; ++c)
                a[r][c] -= f * a[col][c];
            b[r] -= f * b[col];
        }
    }
    std::vector<double> x(n, 0.0);
    for (std::size_t col = n; col-- > 0;) {
        if (std::fabs(a[col][col]) < 1e-12) {
            x[col] = 0.0;
            continue;
        }
        double acc = b[col];
        for (std::size_t c = col + 1; c < n; ++c)
            acc -= a[col][c] * x[c];
        x[col] = acc / a[col][col];
    }
    return x;
}

} // namespace

void
RidgeModel::fit(const std::vector<std::vector<double>>& x,
                const std::vector<double>& y, double lambda)
{
    assert(!x.empty() && x.size() == y.size());
    const std::size_t rows = x.size();
    const std::size_t cols = x.front().size();

    mean_.assign(cols, 0.0);
    scale_.assign(cols, 1.0);
    for (const auto& row : x) {
        assert(row.size() == cols);
        for (std::size_t c = 0; c < cols; ++c)
            mean_[c] += row[c];
    }
    for (auto& m : mean_)
        m /= static_cast<double>(rows);
    std::vector<double> var(cols, 0.0);
    for (const auto& row : x)
        for (std::size_t c = 0; c < cols; ++c) {
            const double d = row[c] - mean_[c];
            var[c] += d * d;
        }
    for (std::size_t c = 0; c < cols; ++c) {
        const double sd =
            std::sqrt(var[c] / static_cast<double>(rows));
        scale_[c] = sd > 1e-12 ? sd : 1.0;
    }

    double ymean = 0.0;
    for (double v : y)
        ymean += v;
    ymean /= static_cast<double>(rows);
    intercept_ = ymean;

    // Normal equations on standardized features, centered target.
    std::vector<std::vector<double>> ztz(
        cols, std::vector<double>(cols, 0.0));
    std::vector<double> zty(cols, 0.0);
    std::vector<double> z(cols, 0.0);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c)
            z[c] = (x[r][c] - mean_[c]) / scale_[c];
        const double yc = y[r] - ymean;
        for (std::size_t i = 0; i < cols; ++i) {
            zty[i] += z[i] * yc;
            for (std::size_t j = i; j < cols; ++j)
                ztz[i][j] += z[i] * z[j];
        }
    }
    for (std::size_t i = 0; i < cols; ++i) {
        for (std::size_t j = 0; j < i; ++j)
            ztz[i][j] = ztz[j][i];
        ztz[i][i] += lambda;
    }
    w_ = solve(std::move(ztz), std::move(zty));
    fitted_ = true;

    double sse = 0.0;
    for (std::size_t r = 0; r < rows; ++r) {
        const double e = predict(x[r]) - y[r];
        sse += e * e;
    }
    rmse_ = std::sqrt(sse / static_cast<double>(rows));
}

double
RidgeModel::predict(const std::vector<double>& x) const
{
    assert(fitted_ && x.size() == w_.size());
    double acc = intercept_;
    for (std::size_t c = 0; c < x.size(); ++c)
        acc += w_[c] * (x[c] - mean_[c]) / scale_[c];
    return acc;
}

} // namespace cobra::search
