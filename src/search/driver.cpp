#include "search/driver.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <sstream>

#include "bpu/composer.hpp"
#include "common/json.hpp"
#include "guard/errors.hpp"
#include "search/space.hpp"
#include "search/surrogate.hpp"
#include "sim/sweep.hpp"
#include "trace/batch_eval.hpp"
#include "trace/trace.hpp"
#include "warp/warp.hpp"

namespace cobra::search {

namespace {

constexpr std::uint64_t kBitsPerKb = 8192;

const char*
presetCliName(sim::Design d)
{
    switch (d) {
      case sim::Design::Tourney: return "tourney";
      case sim::Design::B2: return "b2";
      case sim::Design::TageL: return "tagel";
      case sim::Design::RefBig: return "refbig";
    }
    return "?";
}

void
note(const SearchConfig& cfg, const std::string& line)
{
    if (cfg.progress)
        std::fprintf(stderr, "cobra_search: %s\n", line.c_str());
}

/** Per-workload functional (trace-driven) accuracies. */
std::vector<double>
functionalAccuracies(const sim::DesignSpec& spec,
                     const std::vector<trace::BranchTrace>& traces,
                     std::size_t warmup)
{
    std::vector<double> acc;
    acc.reserve(traces.size());
    for (const auto& tr : traces) {
        bpu::ComposedPredictor pred(sim::buildTopology(spec),
                                    spec.fetchWidth);
        trace::TraceDrivenEvaluator ev(std::move(pred),
                                       spec.bpu.ghistBits,
                                       spec.bpu.lhistBits);
        acc.push_back(ev.evaluate(tr, warmup).accuracy());
    }
    return acc;
}

/** Stable ordering key: sort by a metric, tie on area then id. */
template <typename Metric>
std::vector<std::size_t>
rankBy(const std::vector<Candidate>& cands,
       const std::vector<std::size_t>& idx, Metric metric,
       bool descending)
{
    std::vector<std::size_t> order = idx;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  const double ma = metric(cands[a]);
                  const double mb = metric(cands[b]);
                  if (ma != mb)
                      return descending ? ma > mb : ma < mb;
                  if (cands[a].areaUm2 != cands[b].areaUm2)
                      return cands[a].areaUm2 < cands[b].areaUm2;
                  return cands[a].id < cands[b].id;
              });
    return order;
}

// ---- JSON helpers -----------------------------------------------------

std::string
num(double v, int digits = 6)
{
    if (!std::isfinite(v))
        v = 0.0;
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", digits, v);
    return buf;
}

/** Re-indent a pretty-printed JSON document for inline embedding. */
std::string
indentDoc(const std::string& doc, const std::string& pad)
{
    std::string out;
    out.reserve(doc.size() + 256);
    for (char ch : doc) {
        out.push_back(ch);
        if (ch == '\n')
            out += pad;
    }
    return out;
}

} // namespace

void
SearchConfig::validate() const
{
    using guard::ConfigError;
    if (pool < 1)
        throw ConfigError("search.pool", "must be >= 1");
    if (workloads.empty())
        throw ConfigError("search.workloads", "must be non-empty");
    for (const auto& w : workloads) {
        const auto known = prog::WorkloadLibrary::all();
        if (std::find(known.begin(), known.end(), w) == known.end())
            throw ConfigError("search.workloads",
                              "unknown workload '" + w + "'");
    }
    if (seedEvals < 2)
        throw ConfigError("search.seed_evals",
                          "ridge fit needs >= 2 seed evaluations");
    if (functionalSurvivors < 1)
        throw ConfigError("search.functional_survivors",
                          "must be >= 1");
    if (warpSurvivors < 1)
        throw ConfigError("search.warp_survivors", "must be >= 1");
    if (finalists < 1)
        throw ConfigError("search.finalists", "must be >= 1");
    if (traceBranches == 0 || traceWarmup >= traceBranches)
        throw ConfigError("search.trace",
                          "warmup must be < branches (and branches "
                          "nonzero)");
    if (warpIntervals < 1)
        throw ConfigError("search.warp_intervals", "must be >= 1");
    if (warpInsts == 0)
        throw ConfigError("search.warp_insts", "must be nonzero");
    if (detailInsts == 0 || detailWarmup >= detailInsts)
        throw ConfigError("search.detail",
                          "warmup must be < insts (and insts nonzero)");
    if (!(ridgeLambda >= 0.0))
        throw ConfigError("search.ridge_lambda", "must be >= 0");
    if (!(mutateFrac >= 0.0 && mutateFrac <= 1.0))
        throw ConfigError("search.mutate_frac", "must be in [0, 1]");
}

bool
withinBudget(const sim::DesignSpec& spec, const SearchBudget& budget,
             const phys::AreaModel& model)
{
    if (budget.storageKb > 0 &&
        sim::specStorageBits(spec) > budget.storageKb * kBitsPerKb)
        return false;
    if (budget.areaUm2 > 0.0 &&
        sim::specAreaUm2(spec, model) > budget.areaUm2)
        return false;
    return true;
}

std::vector<std::size_t>
paretoFrontier(const std::vector<Candidate>& cands)
{
    std::vector<std::size_t> certified;
    for (std::size_t i = 0; i < cands.size(); ++i)
        if (cands[i].hasDetail)
            certified.push_back(i);

    auto dominates = [&](const Candidate& a, const Candidate& b) {
        const bool geAcc = a.detail.accuracy >= b.detail.accuracy;
        const bool leArea = a.areaUm2 <= b.areaUm2;
        const bool leLat = a.latency <= b.latency;
        const bool strict = a.detail.accuracy > b.detail.accuracy ||
                            a.areaUm2 < b.areaUm2 ||
                            a.latency < b.latency;
        return geAcc && leArea && leLat && strict;
    };

    std::vector<std::size_t> frontier;
    for (std::size_t i : certified) {
        bool dominated = false;
        for (std::size_t j : certified)
            if (j != i && dominates(cands[j], cands[i])) {
                dominated = true;
                break;
            }
        if (!dominated)
            frontier.push_back(i);
    }
    std::sort(frontier.begin(), frontier.end(),
              [&](std::size_t a, std::size_t b) {
                  if (cands[a].areaUm2 != cands[b].areaUm2)
                      return cands[a].areaUm2 < cands[b].areaUm2;
                  return cands[a].id < cands[b].id;
              });
    return frontier;
}

SearchResult
runSearch(const SearchConfig& cfg, prog::WorkloadCache& cache)
{
    cfg.validate();
    const phys::AreaModel model;
    SearchResult r;
    r.cfg = cfg;

    // ---- Pool construction -------------------------------------------
    std::vector<sim::DesignSpec> anchorSpecs;
    if (cfg.anchors) {
        for (sim::Design d :
             {sim::Design::Tourney, sim::Design::B2,
              sim::Design::TageL, sim::Design::RefBig}) {
            sim::DesignSpec spec = sim::presetSpec(d);
            if (!withinBudget(spec, cfg.budget, model)) {
                ++r.anchorsDropped;
                continue;
            }
            Candidate c;
            c.spec = std::move(spec);
            c.id = std::string("preset-") + presetCliName(d);
            c.anchor = true;
            r.candidates.push_back(std::move(c));
            anchorSpecs.push_back(r.candidates.back().spec);
        }
    }

    SearchSpace space(cfg.seed);
    const unsigned mutants =
        anchorSpecs.empty()
            ? 0
            : static_cast<unsigned>(cfg.mutateFrac * cfg.pool);
    unsigned attempts = 0;
    const unsigned maxAttempts = 64 * cfg.pool + 64;
    unsigned mutTried = 0, acceptedMut = 0, acceptedCand = 0;
    while (r.candidates.size() < cfg.pool && attempts < maxAttempts) {
        ++attempts;
        Candidate c;
        bool isMutant = false;
        try {
            if (mutTried < mutants) {
                c.spec = space.mutate(
                    anchorSpecs[mutTried % anchorSpecs.size()]);
                ++mutTried;
                isMutant = true;
            } else {
                c.spec = space.sample();
            }
        } catch (const guard::ConfigError&) {
            continue; // over-constrained draw; redraw
        }
        if (!withinBudget(c.spec, cfg.budget, model))
            continue; // over budget; the slot falls to sampling
        char id[16];
        std::snprintf(id, sizeof id, "%s-%03u",
                      isMutant ? "mut" : "cand",
                      isMutant ? acceptedMut++ : acceptedCand++);
        c.id = id;
        c.spec.name = c.id;
        r.candidates.push_back(std::move(c));
    }
    if (r.candidates.empty())
        throw guard::ConfigError("search.budget",
                                 "no candidate fits the budget");
    note(cfg, "pool: " + std::to_string(r.candidates.size()) +
                  " candidates (" +
                  std::to_string(r.anchorsDropped) +
                  " anchors over budget)");

    // Static properties.
    for (auto& c : r.candidates) {
        c.storageBits = sim::specStorageBits(c.spec);
        c.areaUm2 = sim::specAreaUm2(c.spec, model);
        c.latency = sim::specMaxLatency(c.spec);
    }

    // ---- Workload features + shared traces ---------------------------
    std::vector<trace::BranchTrace> traces;
    for (const auto& w : cfg.workloads) {
        traces.push_back(
            trace::recordTrace(cache.get(w), cfg.traceBranches));
        r.features.push_back(workloadFeatures(w, traces.back(),
                                              cfg.traceWarmup));
    }

    // ---- Tier 0: seed evals + surrogate prune ------------------------
    // Per-workload accuracies kept aside for the surrogate fit (the
    // candidate record carries only the workload mean).
    std::vector<std::vector<double>> funcAcc(r.candidates.size());
    auto finishFunctional = [&](std::size_t i) {
        auto& c = r.candidates[i];
        double mean = 0.0;
        for (double a : funcAcc[i])
            mean += a;
        c.functionalAccuracy =
            mean / static_cast<double>(funcAcc[i].size());
        c.hasFunctional = true;
        c.tier = "functional";
        ++r.functionalEvals;
    };
    // Evaluate every not-yet-measured candidate in @p set. Batched
    // mode streams each shared trace once and fans it across
    // wavefront lanes (trace/batch_eval.hpp); lanes are independent,
    // so the per-candidate accuracies — and therefore the frontier
    // artifact — are bit-identical to the serial per-candidate walk
    // (the CI batch-exactness leg byte-compares both).
    auto evalFunctionalSet = [&](const std::vector<std::size_t>& set) {
        std::vector<std::size_t> need;
        for (std::size_t i : set)
            if (!r.candidates[i].hasFunctional)
                need.push_back(i);
        if (need.empty())
            return;
        if (!cfg.batchEval) {
            for (std::size_t i : need) {
                funcAcc[i] = functionalAccuracies(
                    r.candidates[i].spec, traces, cfg.traceWarmup);
                finishFunctional(i);
            }
            return;
        }
        for (std::size_t i : need)
            funcAcc[i].resize(traces.size());
        for (std::size_t wi = 0; wi < traces.size(); ++wi) {
            trace::BatchTraceEvaluator be(cfg.jobs);
            for (std::size_t i : need) {
                const auto& c = r.candidates[i];
                trace::BatchLane lane;
                lane.label = c.id;
                const sim::DesignSpec* spec = &c.spec;
                lane.predictor = [spec] {
                    return bpu::ComposedPredictor(
                        sim::buildTopology(*spec), spec->fetchWidth);
                };
                lane.ghistBits = c.spec.bpu.ghistBits;
                lane.lhistBits = c.spec.bpu.lhistBits;
                be.addLane(std::move(lane));
            }
            const auto outs = be.evaluate(traces[wi], cfg.traceWarmup);
            for (std::size_t k = 0; k < need.size(); ++k) {
                if (!outs[k].ok()) {
                    // Serial semantics: a candidate that cannot be
                    // built/evaluated fails the whole search with
                    // its original exception.
                    std::rethrow_exception(outs[k].exception);
                }
                funcAcc[need[k]][wi] = outs[k].result.accuracy();
            }
        }
        for (std::size_t i : need)
            finishFunctional(i);
    };

    std::vector<std::size_t> all(r.candidates.size());
    for (std::size_t i = 0; i < all.size(); ++i)
        all[i] = i;

    std::vector<std::size_t> seedSet;
    for (std::size_t i : all)
        if (r.candidates[i].anchor)
            seedSet.push_back(i);
    if (seedSet.size() < cfg.seedEvals) {
        // Deterministic stride through the non-anchor pool.
        std::vector<std::size_t> rest;
        for (std::size_t i : all)
            if (!r.candidates[i].anchor)
                rest.push_back(i);
        const std::size_t want = cfg.seedEvals - seedSet.size();
        const std::size_t stride =
            std::max<std::size_t>(1, rest.size() / std::max<std::size_t>(
                                                       1, want));
        for (std::size_t k = 0;
             k < rest.size() && seedSet.size() < cfg.seedEvals;
             k += stride)
            seedSet.push_back(rest[k]);
    }
    evalFunctionalSet(seedSet);
    note(cfg, "tier 0: " + std::to_string(seedSet.size()) +
                  " seed evaluations");

    RidgeModel surrogate;
    if (r.functionalEvals < r.candidates.size()) {
        std::vector<std::vector<double>> x;
        std::vector<double> y;
        for (std::size_t i : all) {
            const auto& c = r.candidates[i];
            if (!c.hasFunctional)
                continue;
            // One row per (candidate, workload): per-workload targets
            // sharpen the fit over fitting the workload mean.
            const DesignFeatures df = designFeatures(c.spec, model);
            for (std::size_t wi = 0; wi < traces.size(); ++wi) {
                x.push_back(pairFeatures(df, r.features[wi]));
                y.push_back(funcAcc[i][wi]);
            }
        }
        surrogate.fit(x, y, cfg.ridgeLambda);
        r.surrogateUsed = true;
        r.surrogateRmse = surrogate.trainRmse();
        for (std::size_t i : all) {
            auto& c = r.candidates[i];
            if (c.hasFunctional)
                continue;
            const DesignFeatures df = designFeatures(c.spec, model);
            double score = 0.0;
            for (const auto& wf : r.features)
                score += surrogate.predict(pairFeatures(df, wf));
            c.surrogateScore =
                score / static_cast<double>(r.features.size());
            c.hasSurrogate = true;
            c.tier = "surrogate";
        }
        note(cfg, "surrogate: rmse " + num(r.surrogateRmse, 4));
    }

    // ---- Tier 1: functional evals of the surrogate survivors ---------
    auto scoreOf = [](const Candidate& c) {
        return c.hasFunctional ? c.functionalAccuracy
                               : c.surrogateScore;
    };
    std::vector<std::size_t> ranked =
        rankBy(r.candidates, all, scoreOf, /*descending=*/true);
    std::vector<std::size_t> survivors;
    for (std::size_t i : ranked)
        if (r.candidates[i].anchor)
            survivors.push_back(i);
    for (std::size_t i : ranked) {
        if (survivors.size() >= cfg.functionalSurvivors)
            break;
        if (!r.candidates[i].anchor)
            survivors.push_back(i);
    }
    evalFunctionalSet(survivors);
    note(cfg, "tier 1: " + std::to_string(survivors.size()) +
                  " functional survivors");

    // ---- Tier 2: warp interval-sampled ranking -----------------------
    std::vector<std::size_t> warpSet;
    {
        auto order = rankBy(
            r.candidates, survivors,
            [](const Candidate& c) { return c.functionalAccuracy; },
            /*descending=*/true);
        for (std::size_t i : order)
            if (r.candidates[i].anchor)
                warpSet.push_back(i);
        for (std::size_t i : order) {
            if (warpSet.size() >= cfg.warpSurvivors)
                break;
            if (!r.candidates[i].anchor)
                warpSet.push_back(i);
        }
    }
    for (std::size_t i : warpSet) {
        auto& c = r.candidates[i];
        warp::WarpConfig wcfg;
        wcfg.intervals = cfg.warpIntervals;
        wcfg.warmupCycles = cfg.warpWarmupCycles;
        wcfg.sampleInsts = cfg.warpSampleInsts;
        wcfg.jobs = cfg.jobs;
        WarpMetrics m;
        for (const auto& w : cfg.workloads) {
            sim::SimConfig scfg = sim::makeConfig(c.spec);
            scfg.maxInsts = cfg.warpInsts;
            const sim::DesignSpec& spec = c.spec;
            const warp::WarpEstimate est = warp::runWarp(
                cache.get(w),
                [&spec] { return sim::buildTopology(spec); }, scfg,
                wcfg);
            m.ipc += est.ipc;
            m.mpki += est.mpki;
            m.ipcCi95 += est.ipcCi95;
            m.mpkiCi95 += est.mpkiCi95;
        }
        const double n = static_cast<double>(cfg.workloads.size());
        c.warp = {m.ipc / n, m.mpki / n, m.ipcCi95 / n,
                  m.mpkiCi95 / n};
        c.hasWarp = true;
        c.tier = "warp";
        ++r.warpEvals;
    }
    note(cfg, "tier 2: " + std::to_string(warpSet.size()) +
                  " warp rankings");

    // ---- Tier 3: detailed certification ------------------------------
    std::vector<std::size_t> finalSet;
    {
        auto order = rankBy(
            r.candidates, warpSet,
            [](const Candidate& c) { return c.warp.mpki; },
            /*descending=*/false);
        for (std::size_t i : order)
            if (r.candidates[i].anchor)
                finalSet.push_back(i);
        unsigned extras = 0;
        for (std::size_t i : order) {
            if (extras >= cfg.finalists)
                break;
            if (!r.candidates[i].anchor) {
                finalSet.push_back(i);
                ++extras;
            }
        }
        std::sort(finalSet.begin(), finalSet.end());
    }
    {
        sim::SweepEngine eng(cfg.jobs);
        std::vector<std::pair<std::size_t, std::string>> points;
        for (std::size_t i : finalSet) {
            const sim::DesignSpec& spec = r.candidates[i].spec;
            for (const auto& w : cfg.workloads) {
                sim::SweepPoint p;
                p.label = r.candidates[i].id + ":" + w;
                p.topology = [&spec] {
                    return sim::buildTopology(spec);
                };
                p.program = &cache.get(w);
                p.cfg = sim::makeConfig(spec);
                p.cfg.maxInsts = cfg.detailInsts;
                p.cfg.warmupInsts = cfg.detailWarmup;
                eng.add(std::move(p));
                points.emplace_back(i, w);
            }
        }
        const auto outcomes = eng.run();
        for (std::size_t k = 0; k < outcomes.size(); ++k) {
            const auto& out = outcomes[k];
            auto& c = r.candidates[points[k].first];
            if (!out.error.empty()) {
                c.certifyError = out.errorClass + ": " + out.error;
                continue;
            }
            c.detail.ipc += out.result.ipc();
            c.detail.mpki += out.result.mpki();
            c.detail.accuracy += out.result.accuracy();
            c.detail.cycles += out.result.cycles;
            c.detail.insts += out.result.insts;
        }
        const double n = static_cast<double>(cfg.workloads.size());
        for (std::size_t i : finalSet) {
            auto& c = r.candidates[i];
            if (!c.certifyError.empty()) {
                c.detail = {};
                continue;
            }
            c.detail.ipc /= n;
            c.detail.mpki /= n;
            c.detail.accuracy /= n;
            c.hasDetail = true;
            c.tier = "detailed";
            ++r.detailedEvals;
        }
    }
    note(cfg, "tier 3: " + std::to_string(r.detailedEvals) +
                  " certified");

    r.evalsSaved =
        static_cast<unsigned>(r.candidates.size()) - r.functionalEvals;
    r.frontier = paretoFrontier(r.candidates);
    for (std::size_t i : r.frontier)
        r.candidates[i].onFrontier = true;
    note(cfg, "frontier: " + std::to_string(r.frontier.size()) +
                  " points");
    return r;
}

std::string
frontierJson(const SearchResult& r)
{
    std::ostringstream os;
    const auto& cfg = r.cfg;
    os << "{\n";
    os << "  \"tool\": \"cobra_search\",\n";
    os << "  \"version\": 1,\n";
    os << "  \"seed\": " << cfg.seed << ",\n";
    os << "  \"budget\": {\"storage_kb\": " << cfg.budget.storageKb
       << ", \"area_um2\": " << num(cfg.budget.areaUm2, 1) << "},\n";
    os << "  \"workloads\": [";
    for (std::size_t i = 0; i < cfg.workloads.size(); ++i)
        os << (i ? ", " : "") << '"' << jsonEscape(cfg.workloads[i])
           << '"';
    os << "],\n";
    os << "  \"tiers\": {\"pool\": " << cfg.pool
       << ", \"seed_evals\": " << cfg.seedEvals
       << ", \"functional_survivors\": " << cfg.functionalSurvivors
       << ", \"warp_survivors\": " << cfg.warpSurvivors
       << ", \"finalists\": " << cfg.finalists << "},\n";
    os << "  \"trace\": {\"branches\": " << cfg.traceBranches
       << ", \"warmup\": " << cfg.traceWarmup << "},\n";
    os << "  \"warp\": {\"insts\": " << cfg.warpInsts
       << ", \"intervals\": " << cfg.warpIntervals
       << ", \"sample_insts\": " << cfg.warpSampleInsts << "},\n";
    os << "  \"detail\": {\"insts\": " << cfg.detailInsts
       << ", \"warmup\": " << cfg.detailWarmup << "},\n";
    os << "  \"evals\": {\"pool\": " << r.candidates.size()
       << ", \"functional\": " << r.functionalEvals
       << ", \"warp\": " << r.warpEvals
       << ", \"detailed\": " << r.detailedEvals
       << ", \"saved_by_surrogate\": " << r.evalsSaved
       << ", \"anchors_dropped\": " << r.anchorsDropped << "},\n";
    os << "  \"surrogate\": {\"used\": "
       << (r.surrogateUsed ? "true" : "false")
       << ", \"lambda\": " << num(cfg.ridgeLambda, 3)
       << ", \"train_rmse\": " << num(r.surrogateRmse)
       << ", \"features\": [";
    {
        const auto names = pairFeatureNames();
        for (std::size_t i = 0; i < names.size(); ++i)
            os << (i ? ", " : "") << '"' << jsonEscape(names[i])
               << '"';
    }
    os << "]},\n";

    os << "  \"workload_features\": [\n";
    for (std::size_t i = 0; i < r.features.size(); ++i) {
        const auto& f = r.features[i];
        os << "    {\"workload\": \"" << jsonEscape(f.workload)
           << "\", \"branches\": " << f.branches
           << ", \"static_branches\": " << f.staticBranches;
        const auto names = WorkloadFeatures::names();
        const auto vals = f.vec();
        for (std::size_t k = 0; k < names.size(); ++k)
            os << ", \"" << names[k] << "\": " << num(vals[k]);
        os << '}' << (i + 1 < r.features.size() ? "," : "") << '\n';
    }
    os << "  ],\n";

    os << "  \"candidates\": [\n";
    for (std::size_t i = 0; i < r.candidates.size(); ++i) {
        const auto& c = r.candidates[i];
        os << "    {\"id\": \"" << jsonEscape(c.id) << "\", \"name\": \""
           << jsonEscape(c.spec.name) << "\", \"anchor\": "
           << (c.anchor ? "true" : "false") << ", \"tier\": \""
           << c.tier << "\", \"storage_bits\": " << c.storageBits
           << ", \"storage_kb\": "
           << num(static_cast<double>(c.storageBits) / kBitsPerKb, 2)
           << ", \"area_um2\": " << num(c.areaUm2, 1)
           << ", \"latency\": " << c.latency;
        if (c.hasSurrogate)
            os << ", \"surrogate_score\": " << num(c.surrogateScore);
        if (c.hasFunctional)
            os << ", \"functional_accuracy\": "
               << num(c.functionalAccuracy);
        if (c.hasWarp)
            os << ", \"warp\": {\"ipc\": " << num(c.warp.ipc)
               << ", \"mpki\": " << num(c.warp.mpki)
               << ", \"ipc_ci95\": " << num(c.warp.ipcCi95)
               << ", \"mpki_ci95\": " << num(c.warp.mpkiCi95) << '}';
        if (c.hasDetail)
            os << ", \"detailed\": {\"ipc\": " << num(c.detail.ipc)
               << ", \"mpki\": " << num(c.detail.mpki)
               << ", \"accuracy\": " << num(c.detail.accuracy)
               << ", \"cycles\": " << c.detail.cycles
               << ", \"insts\": " << c.detail.insts << '}';
        if (!c.certifyError.empty())
            os << ", \"certify_error\": \""
               << jsonEscape(c.certifyError) << '"';
        os << ", \"on_frontier\": " << (c.onFrontier ? "true" : "false")
           << '}' << (i + 1 < r.candidates.size() ? "," : "") << '\n';
    }
    os << "  ],\n";

    os << "  \"frontier\": [\n";
    for (std::size_t k = 0; k < r.frontier.size(); ++k) {
        const auto& c = r.candidates[r.frontier[k]];
        os << "    {\"id\": \"" << jsonEscape(c.id)
           << "\", \"accuracy\": " << num(c.detail.accuracy)
           << ", \"mpki\": " << num(c.detail.mpki)
           << ", \"ipc\": " << num(c.detail.ipc)
           << ", \"area_um2\": " << num(c.areaUm2, 1)
           << ", \"storage_kb\": "
           << num(static_cast<double>(c.storageBits) / kBitsPerKb, 2)
           << ", \"latency\": " << c.latency << ",\n"
           << "     \"spec\": "
           << indentDoc(c.spec.toJson(), "     ") << '}'
           << (k + 1 < r.frontier.size() ? "," : "") << '\n';
    }
    os << "  ]\n";
    os << "}\n";
    return os.str();
}

} // namespace cobra::search
