/**
 * @file
 * The composition search space: a seeded generator of valid
 * DesignSpecs spanning the structures the paper composes (§IV) —
 * bimodal/gshare stacks, partially-tagged GTAG hybrids, multi-table
 * TAGE pipelines with optional loop predictor and uBTB front-ends,
 * and tournament-arbitrated global/local pairs — with per-component
 * sizing drawn from power-of-two ranges.
 *
 * sample() draws a fresh structure + sizing; mutate() perturbs one
 * sizing knob of an existing spec by one power-of-two step (used to
 * grow the pool around the paper-preset anchors). Every returned
 * spec passes DesignSpec::validate(); budget enforcement (area /
 * storage) is the driver's job, which resamples until a candidate
 * fits.
 *
 * Determinism: all randomness comes from the embedded xoshiro Rng —
 * the same seed and call sequence reproduce the same specs on any
 * host.
 */

#ifndef COBRA_SEARCH_SPACE_HPP
#define COBRA_SEARCH_SPACE_HPP

#include <cstdint>

#include "common/random.hpp"
#include "sim/design_spec.hpp"

namespace cobra::search {

class SearchSpace
{
  public:
    explicit SearchSpace(std::uint64_t seed) : rng_(seed) {}

    /** Draw one fresh, validated candidate spec. */
    sim::DesignSpec sample();

    /**
     * Perturb one sizing knob of @p base by a power-of-two step
     * (table sets, BTB geometry, loop/uBTB entries, TAGE table
     * sets). The result is validated; when @p base has no mutable
     * knob it is returned unchanged.
     */
    sim::DesignSpec mutate(const sim::DesignSpec& base);

  private:
    Rng rng_;
};

} // namespace cobra::search

#endif // COBRA_SEARCH_SPACE_HPP
