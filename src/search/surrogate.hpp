/**
 * @file
 * Ridge-regression surrogate for the search autopilot. Fit on the
 * tier-0 seed evaluations (feature row -> functional accuracy) and
 * used to score the rest of the candidate pool so only promising
 * candidates pay for a real evaluation.
 *
 * Deliberately tiny and deterministic: features are standardized
 * in-model, the normal equations (Z'Z + lambda*I) w = Z'y are solved
 * by Gaussian elimination with partial pivoting, and there is no
 * randomness anywhere — the same training set always yields the same
 * model and therefore the same pruning decisions (the search
 * determinism test relies on this).
 */

#ifndef COBRA_SEARCH_SURROGATE_HPP
#define COBRA_SEARCH_SURROGATE_HPP

#include <cstddef>
#include <vector>

namespace cobra::search {

class RidgeModel
{
  public:
    /**
     * Fit on @p x (rows of equal width) against @p y. @p lambda is
     * the L2 penalty on standardized features (the intercept is
     * unpenalized). Requires at least one row; constant features get
     * zero weight.
     */
    void fit(const std::vector<std::vector<double>>& x,
             const std::vector<double>& y, double lambda);

    /** Predict one row; requires fitted(). */
    double predict(const std::vector<double>& x) const;

    bool fitted() const { return fitted_; }

    /** Root-mean-square error on the training rows. */
    double trainRmse() const { return rmse_; }

    std::size_t featureCount() const { return mean_.size(); }

  private:
    std::vector<double> mean_;  ///< Per-feature training mean.
    std::vector<double> scale_; ///< Per-feature training stddev (>= eps).
    std::vector<double> w_;     ///< Weights on standardized features.
    double intercept_ = 0.0;
    double rmse_ = 0.0;
    bool fitted_ = false;
};

} // namespace cobra::search

#endif // COBRA_SEARCH_SURROGATE_HPP
