#include "scope/tracer.hpp"

#include <ostream>

#include "common/json.hpp"

namespace cobra::scope {

const char*
traceKindName(TraceKind k)
{
    switch (k) {
      case TraceKind::Predict: return "predict";
      case TraceKind::Fire: return "fire";
      case TraceKind::Mispredict: return "mispredict";
      case TraceKind::Repair: return "repair";
      case TraceKind::Replay: return "replay";
      case TraceKind::Commit: return "commit";
    }
    return "?";
}

const std::string&
Tracer::componentName(std::uint8_t idx) const
{
    static const std::string none = "-";
    if (idx == kNoComponent || idx >= compNames_.size())
        return none;
    return compNames_[idx];
}

namespace {

void
writeHexPc(std::ostream& os, Addr pc)
{
    // Manual hex render keeps the stream's format flags untouched.
    char buf[19];
    char* p = buf + sizeof(buf);
    *--p = '\0';
    do {
        const unsigned d = pc & 0xF;
        *--p = static_cast<char>(d < 10 ? '0' + d : 'a' + (d - 10));
        pc >>= 4;
    } while (pc != 0);
    *--p = 'x';
    *--p = '0';
    os << p;
}

} // namespace

void
Tracer::writeChromeTrace(std::ostream& os, unsigned pid,
                         const std::string& label) const
{
    const std::string pidStr = std::to_string(pid);
    // Process metadata: one sweep point = one trace "process".
    os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": "
       << pidStr << ", \"tid\": 0, \"args\": {\"name\": \""
       << jsonEscape(label) << "\"}},\n";
    // One "thread" per event kind so the kinds render as lanes.
    for (std::size_t k = 0; k < kNumTraceKinds; ++k) {
        os << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": "
           << pidStr << ", \"tid\": " << k
           << ", \"args\": {\"name\": \""
           << traceKindName(static_cast<TraceKind>(k)) << "\"}},\n";
    }
    for (const TraceRecord& r : records_) {
        const auto kind = static_cast<std::size_t>(r.kind);
        os << "{\"name\": \"" << traceKindName(r.kind)
           << "\", \"ph\": \"i\", \"s\": \"t\", \"ts\": " << r.cycle
           << ", \"pid\": " << pidStr << ", \"tid\": " << kind
           << ", \"args\": {\"pc\": \"";
        writeHexPc(os, r.pc);
        os << "\", \"ftq\": " << r.ftq;
        if (r.comp != kNoComponent) {
            os << ", \"comp\": \"" << jsonEscape(componentName(r.comp))
               << "\", \"slot\": " << unsigned(r.slot);
        }
        os << ", \"flag\": " << (r.flag ? "true" : "false")
           << "}},\n";
    }
}

} // namespace cobra::scope
