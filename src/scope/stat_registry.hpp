/**
 * @file
 * CobraScope stat registry: the unified view over every StatGroup in
 * one simulator tree (frontend, backend, BPU, per-component composer
 * attribution, caches, guard). Groups register under dotted
 * hierarchical names ("bpu.comp.TAGE"); the registry renders the
 * whole hierarchy as text or as a nested JSON document — the
 * machine-readable form behind `cobra_sim --stats-json`.
 *
 * The registry does not own the groups (the simulator tree does); it
 * owns the authoritative *name space*: duplicate group names are a
 * wiring bug and are rejected at registration time.
 */

#ifndef COBRA_SCOPE_STAT_REGISTRY_HPP
#define COBRA_SCOPE_STAT_REGISTRY_HPP

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hpp"

namespace cobra::scope {

class StatRegistry
{
  public:
    /** One registered group with its hierarchical path. */
    struct Node
    {
        std::string path;
        const StatGroup* group = nullptr;
    };

    /** Register under the group's own name. */
    void add(const StatGroup& group) { add(group.name(), group); }

    /**
     * Register under an explicit dotted path (e.g. "caches.l1i" for a
     * group whose local name is just "L1I"). Throws
     * std::invalid_argument on an empty path or a duplicate.
     */
    void add(std::string path, const StatGroup& group);

    const std::vector<Node>& nodes() const { return nodes_; }

    /** Group registered at @p path, or nullptr. */
    const StatGroup* find(std::string_view path) const;

    /** Value of "<group-path>.<counter>" (0 when absent). */
    std::uint64_t get(std::string_view path,
                      std::string_view counter) const;

    /** Text dump of every group, in registration order. */
    void dump(std::ostream& os) const;

    /**
     * Render the full hierarchy as one JSON object: dotted paths
     * become nested objects, each leaf group an object with
     * "counters" (name -> value) and, when present, "histograms"
     * (name -> {samples, mean, buckets}). @p indent is the left
     * margin of the emitted block (the opening '{' is not indented,
     * matching splice-into-a-parent-document usage).
     */
    void writeJson(std::ostream& os, unsigned indent = 0) const;

  private:
    std::vector<Node> nodes_;
};

} // namespace cobra::scope

#endif // COBRA_SCOPE_STAT_REGISTRY_HPP
