/**
 * @file
 * CobraScope pipeline event tracer: structured per-event records for
 * the composition effects the paper argues are invisible in aggregate
 * counters (§VI) — predictions, fire events, mispredicts, repair
 * walks, ghist replays, and commits, each stamped with the cycle,
 * history-file position (ftqIdx), PC, and (where meaningful) the
 * predictor component attributed to the event.
 *
 * Records buffer in memory and render to Chrome trace-event JSON
 * lines after the run (`--trace-events`, loadable in Perfetto /
 * chrome://tracing; one simulated cycle = one microsecond of trace
 * time). A sampling window (`--trace-start` / `--trace-cycles`)
 * bounds the buffer; with no tracer attached the hot paths pay one
 * null-pointer test per site and nothing else.
 */

#ifndef COBRA_SCOPE_TRACER_HPP
#define COBRA_SCOPE_TRACER_HPP

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace cobra::scope {

/** The traced pipeline event kinds. */
enum class TraceKind : std::uint8_t
{
    Predict,    ///< Fetch packet finalized with a prediction (F3).
    Fire,       ///< Speculative commit of the prediction (§III-E).
    Mispredict, ///< Backend-resolved misprediction reached the BPU.
    Repair,     ///< Repair-walk event for one squashed entry (§IV-B2).
    Replay,     ///< Fetch replay forced by ghist repair (§VI-B).
    Commit,     ///< A control-flow instruction committed.
};

inline constexpr std::size_t kNumTraceKinds = 6;

const char* traceKindName(TraceKind k);

/** Component attribution marker for events no component caused. */
inline constexpr std::uint8_t kNoComponent = 0xFF;

/** One buffered pipeline event. */
struct TraceRecord
{
    std::uint64_t cycle = 0;
    Addr pc = kInvalidAddr;
    std::uint32_t ftq = 0;
    TraceKind kind = TraceKind::Predict;
    /** Attributed component index (kNoComponent when n/a). */
    std::uint8_t comp = kNoComponent;
    std::uint8_t slot = 0;
    /** Kind-specific bit: taken / mispredicted, see writer. */
    bool flag = false;
};

/** Sampling window in simulated cycles; cycles == 0 is unbounded. */
struct TraceWindow
{
    std::uint64_t startCycle = 0;
    std::uint64_t cycles = 0;
};

class Tracer
{
  public:
    explicit Tracer(TraceWindow window = {}) : window_(window) {}

    /**
     * Advance the tracer's notion of simulated time (the Simulator
     * calls this once per tick); recomputes whether the sampling
     * window is open.
     */
    void
    setCycle(std::uint64_t cycle)
    {
        cycle_ = cycle;
        active_ = cycle >= window_.startCycle &&
                  (window_.cycles == 0 ||
                   cycle < window_.startCycle + window_.cycles);
    }

    std::uint64_t cycle() const { return cycle_; }
    bool active() const { return active_; }
    const TraceWindow& window() const { return window_; }

    /** Record one event at the current cycle (no-op outside window). */
    void
    record(TraceKind kind, Addr pc, std::uint32_t ftq,
           std::uint8_t comp = kNoComponent, std::uint8_t slot = 0,
           bool flag = false)
    {
        if (!active_)
            return;
        records_.push_back(TraceRecord{cycle_, pc, ftq, kind, comp,
                                       slot, flag});
        ++counts_[static_cast<std::size_t>(kind)];
    }

    /** Events recorded (within the window) per kind. */
    std::uint64_t
    count(TraceKind k) const
    {
        return counts_[static_cast<std::size_t>(k)];
    }

    std::uint64_t totalRecords() const { return records_.size(); }
    const std::vector<TraceRecord>& records() const { return records_; }

    /** Names used for the "comp" attribution in rendered events. */
    void setComponentNames(std::vector<std::string> names)
    {
        compNames_ = std::move(names);
    }

    const std::string& componentName(std::uint8_t idx) const;

    /**
     * Render this point's records as Chrome trace-event lines: one
     * JSON object per line, each terminated by ",\n" (the caller owns
     * the enclosing '[' / ']'). @p pid labels the sweep point so a
     * multi-point sweep renders as one process per point; metadata
     * events naming the process/threads are emitted first.
     */
    void writeChromeTrace(std::ostream& os, unsigned pid,
                          const std::string& label) const;

  private:
    TraceWindow window_;
    std::uint64_t cycle_ = 0;
    bool active_ = false;
    std::vector<TraceRecord> records_;
    std::array<std::uint64_t, kNumTraceKinds> counts_{};
    std::vector<std::string> compNames_;
};

} // namespace cobra::scope

#endif // COBRA_SCOPE_TRACER_HPP
