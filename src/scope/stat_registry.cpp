#include "scope/stat_registry.hpp"

#include <ostream>
#include <stdexcept>

#include "common/json.hpp"

namespace cobra::scope {

void
StatRegistry::add(std::string path, const StatGroup& group)
{
    if (path.empty())
        throw std::invalid_argument("StatRegistry: empty group path");
    for (const Node& n : nodes_) {
        if (n.path == path) {
            throw std::invalid_argument(
                "StatRegistry: duplicate group '" + path + "'");
        }
    }
    nodes_.push_back(Node{std::move(path), &group});
}

const StatGroup*
StatRegistry::find(std::string_view path) const
{
    for (const Node& n : nodes_)
        if (n.path == path)
            return n.group;
    return nullptr;
}

std::uint64_t
StatRegistry::get(std::string_view path, std::string_view counter) const
{
    const StatGroup* g = find(path);
    return g == nullptr ? 0 : g->get(counter);
}

void
StatRegistry::dump(std::ostream& os) const
{
    for (const Node& n : nodes_) {
        for (const StatGroup::Entry& e : n.group->entries()) {
            if (e.counter != nullptr) {
                os << n.path << "." << e.name << " = "
                   << e.counter->value() << "\n";
            } else {
                os << n.path << "." << e.name << " = samples "
                   << e.histogram->samples() << ", mean "
                   << e.histogram->mean() << "\n";
            }
        }
    }
}

namespace {

/** Trie over dotted group paths, built at render time (cold path). */
struct Tree
{
    std::string seg;
    const StatGroup* group = nullptr;
    std::vector<Tree> kids;

    Tree&
    child(std::string_view s)
    {
        for (Tree& k : kids)
            if (k.seg == s)
                return k;
        kids.push_back(Tree{std::string(s), nullptr, {}});
        return kids.back();
    }
};

void
writeGroupBody(std::ostream& os, const StatGroup& g,
               const std::string& pad, bool more_after)
{
    std::vector<const StatGroup::Entry*> counters, histograms;
    for (const StatGroup::Entry& e : g.entries())
        (e.counter != nullptr ? counters : histograms).push_back(&e);

    os << pad << "\"counters\": {";
    for (std::size_t i = 0; i < counters.size(); ++i) {
        os << (i == 0 ? "\n" : ",\n") << pad << "  \""
           << jsonEscape(counters[i]->name)
           << "\": " << counters[i]->counter->value();
    }
    os << (counters.empty() ? "}" : "\n" + pad + "}");

    if (!histograms.empty()) {
        os << ",\n" << pad << "\"histograms\": {";
        for (std::size_t i = 0; i < histograms.size(); ++i) {
            const Histogram& h = *histograms[i]->histogram;
            os << (i == 0 ? "\n" : ",\n") << pad << "  \""
               << jsonEscape(histograms[i]->name) << "\": {\"samples\": "
               << h.samples() << ", \"mean\": " << h.mean()
               << ", \"buckets\": [";
            for (std::size_t b = 0; b < h.numBuckets(); ++b)
                os << (b == 0 ? "" : ", ") << h.bucket(b);
            os << "]}";
        }
        os << "\n" << pad << "}";
    }
    if (more_after)
        os << ",";
    os << "\n";
}

void
writeTree(std::ostream& os, const Tree& t, unsigned indent)
{
    const std::string pad(indent + 2, ' ');
    os << "{\n";
    const bool hasKids = !t.kids.empty();
    if (t.group != nullptr)
        writeGroupBody(os, *t.group, pad, hasKids);
    for (std::size_t i = 0; i < t.kids.size(); ++i) {
        os << pad << "\"" << jsonEscape(t.kids[i].seg) << "\": ";
        writeTree(os, t.kids[i], indent + 2);
        os << (i + 1 < t.kids.size() ? ",\n" : "\n");
    }
    os << std::string(indent, ' ') << "}";
}

} // namespace

void
StatRegistry::writeJson(std::ostream& os, unsigned indent) const
{
    Tree root;
    for (const Node& n : nodes_) {
        Tree* cur = &root;
        std::string_view rest = n.path;
        while (!rest.empty()) {
            const std::size_t dot = rest.find('.');
            const std::string_view seg = rest.substr(0, dot);
            cur = &cur->child(seg);
            rest = dot == std::string_view::npos
                       ? std::string_view{}
                       : rest.substr(dot + 1);
        }
        cur->group = n.group;
    }
    writeTree(os, root, indent);
}

} // namespace cobra::scope
