#include "program/workload.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <stdexcept>

#include "trace/replay.hpp"

namespace cobra::prog {

namespace {

/** Sample a non-loop branch behaviour from the profile mixture. */
BranchBehavior
sampleBranchBehavior(const WorkloadProfile& p, Rng& rng)
{
    BranchBehavior b;
    b.seed = rng.next();
    const double total = p.wBiasedEasy + p.wBiasedHard + p.wPeriodic +
                         p.wGlobalCorr + p.wLocalCorr;
    double r = rng.uniform() * (total > 0 ? total : 1.0);
    if ((r -= p.wBiasedEasy) < 0) {
        b.kind = BranchBehavior::Kind::Biased;
        const double edge = 0.03 + rng.uniform() * 0.07;
        b.pTaken = rng.chance(0.5) ? edge : 1.0 - edge;
    } else if ((r -= p.wBiasedHard) < 0) {
        b.kind = BranchBehavior::Kind::Biased;
        b.pTaken = 0.35 + rng.uniform() * 0.30;
    } else if ((r -= p.wPeriodic) < 0) {
        b.kind = BranchBehavior::Kind::Periodic;
        b.patternLen = static_cast<unsigned>(
            rng.range(p.periodMin, p.periodMax));
        b.pattern = rng.next() & maskBits(b.patternLen);
    } else if ((r -= p.wGlobalCorr) < 0) {
        b.kind = BranchBehavior::Kind::GlobalCorrelated;
        b.depth = static_cast<unsigned>(
            rng.range(p.corrDepthMin, p.corrDepthMax));
        b.noise = p.corrNoise;
    } else {
        b.kind = BranchBehavior::Kind::LocalCorrelated;
        b.depth = static_cast<unsigned>(
            rng.range(p.corrDepthMin, p.corrDepthMax));
        b.noise = p.corrNoise;
    }
    return b;
}

/** Sample an inner-loop behaviour. */
BranchBehavior
sampleLoopBehavior(const WorkloadProfile& p, Rng& rng)
{
    BranchBehavior b;
    b.kind = BranchBehavior::Kind::Loop;
    b.trip = static_cast<unsigned>(rng.range(p.loopTripMin, p.loopTripMax));
    b.tripJitter = p.loopTripJitter;
    b.seed = rng.next();
    return b;
}

/** Emit one control construct inside a function body. */
void
emitConstruct(ProgramBuilder& bld, const WorkloadProfile& p, Rng& rng,
              const CodeMix& mix)
{
    const double hammock = p.hammockFrac;
    const double ifelse = p.ifElseFrac;
    const double sw = p.switchFrac;
    const double loop = std::max(0.0, 1.0 - hammock - ifelse - sw);
    double r = rng.uniform() * (hammock + ifelse + sw + loop);

    const std::size_t lenA = static_cast<std::size_t>(
        rng.range(p.blockSizeMin, p.blockSizeMax));
    const std::size_t lenB = static_cast<std::size_t>(
        rng.range(p.blockSizeMin, p.blockSizeMax));

    if ((r -= hammock) < 0) {
        const std::size_t shadow =
            1 + rng.below(std::max(1u, p.hammockShadowMax));
        BranchBehavior hb;
        if (p.hammockHardness >= 0.0) {
            hb.kind = BranchBehavior::Kind::Biased;
            hb.pTaken = 0.5 + (rng.uniform() - 0.5) * p.hammockHardness;
            hb.seed = rng.next();
        } else {
            hb = sampleBranchBehavior(p, rng);
        }
        bld.emitHammock(hb, shadow, mix, p.hammockShadowMax);
    } else if ((r -= ifelse) < 0) {
        bld.emitIfElse(sampleBranchBehavior(p, rng), lenA, lenB, mix);
    } else if ((r -= sw) < 0) {
        IndirectBehavior ib;
        ib.kind = p.indirectKind;
        ib.depth = p.indirectHistoryDepth;
        ib.seed = rng.next();
        const unsigned fanout = static_cast<unsigned>(
            rng.range(p.switchFanoutMin, p.switchFanoutMax));
        bld.emitSwitch(ib, fanout, std::max<std::size_t>(2, lenA / 2), mix);
    } else {
        const BranchBehavior lb = sampleLoopBehavior(p, rng);
        bld.emitLoopAround(lb.trip, lb.tripJitter,
                           [&] { bld.emitStraightLine(lenA, mix); });
    }
}

} // namespace

Program
buildWorkload(const WorkloadProfile& profile)
{
    ProgramBuilder bld(profile.seed);
    Rng rng(hashCombine(profile.seed, 0xA11ce));

    // ---- Memory streams --------------------------------------------
    CodeMix mix = profile.mix;
    mix.memStreams.clear();
    Addr memBase = 0x4000'0000;
    for (unsigned i = 0; i < profile.numStrideStreams; ++i) {
        MemStream m;
        m.kind = MemStream::Kind::Stride;
        m.base = memBase;
        m.stride = static_cast<std::int64_t>(8u << rng.below(4)); // 8..64B
        m.windowBytes = profile.memFootprint;
        m.seed = rng.next();
        memBase += profile.memFootprint + 4096;
        mix.memStreams.push_back(bld.program().addMemStream(m));
    }
    for (unsigned i = 0; i < profile.numRandomStreams; ++i) {
        MemStream m;
        m.kind = MemStream::Kind::Random;
        m.base = memBase;
        m.windowBytes = profile.memFootprint;
        m.seed = rng.next();
        memBase += profile.memFootprint + 4096;
        mix.memStreams.push_back(bld.program().addMemStream(m));
    }
    for (unsigned i = 0; i < profile.numChaseStreams; ++i) {
        MemStream m;
        m.kind = MemStream::Kind::PointerChase;
        m.base = memBase;
        m.windowBytes = profile.memFootprint;
        m.seed = rng.next();
        memBase += profile.memFootprint + 4096;
        mix.memStreams.push_back(bld.program().addMemStream(m));
    }

    // ---- Leaf helpers -----------------------------------------------
    std::vector<Addr> helperEntries;
    for (unsigned h = 0; h < profile.numHelpers; ++h) {
        helperEntries.push_back(bld.here());
        bld.emitStraightLine(
            static_cast<std::size_t>(
                rng.range(profile.blockSizeMin, profile.blockSizeMax)),
            mix);
        if (rng.chance(0.5)) {
            const std::size_t shadow =
                1 + rng.below(std::max(1u, profile.hammockShadowMax));
            bld.emitHammock(sampleBranchBehavior(profile, rng), shadow, mix,
                            profile.hammockShadowMax);
        }
        bld.emitReturn();
    }

    // ---- Top-level functions ------------------------------------------
    std::vector<Addr> fnEntries;
    for (unsigned f = 0; f < profile.numFunctions; ++f) {
        fnEntries.push_back(bld.here());
        for (unsigned blk = 0; blk < profile.blocksPerFunction; ++blk) {
            bld.emitStraightLine(
                static_cast<std::size_t>(
                    rng.range(profile.blockSizeMin, profile.blockSizeMax)),
                mix);
            emitConstruct(bld, profile, rng, mix);
            if (!helperEntries.empty() && rng.chance(profile.callFrac)) {
                bld.emitCall(
                    helperEntries[rng.below(helperEntries.size())]);
            }
        }
        bld.emitReturn();
    }

    // ---- Dispatcher (entry point) -------------------------------------
    const Addr dispatcher = bld.here();
    for (Addr fn : fnEntries)
        bld.emitCall(fn);
    if (profile.dispatcherTrip == 0) {
        bld.emitJump(dispatcher);
    } else {
        BranchBehavior outer;
        outer.kind = BranchBehavior::Kind::Loop;
        outer.trip = profile.dispatcherTrip;
        outer.seed = rng.next();
        bld.emitCondBranch(outer, dispatcher);
        // Halt loop once the dispatcher trips expire.
        const Addr halt = bld.here();
        bld.emitJump(halt);
    }

    Program prog = bld.takeProgram();
    prog.setEntry(dispatcher);
    prog.setName(profile.name);
    return prog;
}

// ---------------------------------------------------------------------
// Named profile library
// ---------------------------------------------------------------------

namespace {

WorkloadProfile
base(const std::string& name, std::uint64_t salt)
{
    WorkloadProfile p;
    p.name = name;
    p.seed = hashCombine(0xC0B7A, salt);
    return p;
}

std::map<std::string, WorkloadProfile>
makeLibrary()
{
    std::map<std::string, WorkloadProfile> lib;

    // perlbench: interpreter — big footprint, indirect dispatch, mixed
    // correlated behaviour.
    {
        auto p = base("perlbench", 1);
        p.memFootprint = 512 << 10;
        p.numFunctions = 24; p.blocksPerFunction = 8;
        p.switchFrac = 0.12; p.switchFanoutMin = 6; p.switchFanoutMax = 16;
        p.indirectKind = IndirectBehavior::Kind::HistorySelected;
        p.wGlobalCorr = 0.30; p.wLocalCorr = 0.10; p.wBiasedHard = 0.12;
        p.corrDepthMin = 6; p.corrDepthMax = 18;
        lib[p.name] = p;
    }
    // gcc: very large static branch population — aliasing pressure.
    {
        auto p = base("gcc", 2);
        p.memFootprint = 1ull << 20;
        p.numFunctions = 48; p.numHelpers = 12; p.blocksPerFunction = 8;
        p.wBiasedEasy = 0.35; p.wBiasedHard = 0.15; p.wGlobalCorr = 0.22;
        p.corrDepthMin = 4; p.corrDepthMax = 14;
        p.switchFrac = 0.08;
        lib[p.name] = p;
    }
    // mcf: memory-bound pointer chasing, data-dependent hard branches.
    {
        auto p = base("mcf", 3);
        p.numFunctions = 6; p.blocksPerFunction = 5;
        p.wBiasedHard = 0.45; p.wGlobalCorr = 0.10; p.wBiasedEasy = 0.25;
        p.mix.fLoad = 0.35; p.mix.fStore = 0.08; p.mix.depChain = 0.65;
        p.numChaseStreams = 2; p.numRandomStreams = 2;
        p.numStrideStreams = 1;
        p.memFootprint = 8ull << 20;
        lib[p.name] = p;
    }
    // omnetpp: discrete-event simulator — virtual dispatch, random heap.
    {
        auto p = base("omnetpp", 4);
        p.numFunctions = 20; p.blocksPerFunction = 6;
        p.switchFrac = 0.15; p.switchFanoutMin = 4; p.switchFanoutMax = 12;
        p.indirectKind = IndirectBehavior::Kind::HashSelected;
        p.wBiasedHard = 0.20; p.wGlobalCorr = 0.20;
        p.numRandomStreams = 3; p.memFootprint = 4ull << 20;
        p.mix.fLoad = 0.28;
        lib[p.name] = p;
    }
    // xalancbmk: XML transform — big code, mostly easy branches, deep calls.
    {
        auto p = base("xalancbmk", 5);
        p.memFootprint = 512 << 10;
        p.numFunctions = 36; p.numHelpers = 16; p.blocksPerFunction = 7;
        p.wBiasedEasy = 0.45; p.wGlobalCorr = 0.18; p.wLocalCorr = 0.05;
        p.callFrac = 0.45; p.switchFrac = 0.06;
        lib[p.name] = p;
    }
    // x264: media kernels — loop-dominated, predictable, high ILP.
    {
        auto p = base("x264", 6);
        p.memFootprint = 128 << 10;
        p.numFunctions = 8; p.blocksPerFunction = 6;
        p.wBiasedEasy = 0.50; p.wLoop = 0.45; p.wGlobalCorr = 0.04;
        p.hammockFrac = 0.15; p.ifElseFrac = 0.15; p.switchFrac = 0.0;
        p.loopTripMin = 8; p.loopTripMax = 64;
        p.mix.depChain = 0.25; p.mix.fFp = 0.10; p.mix.fMul = 0.10;
        p.corrNoise = 0.005;
        lib[p.name] = p;
    }
    // deepsjeng: game-tree search — deep global correlation, hard branches.
    {
        auto p = base("deepsjeng", 7);
        p.memFootprint = 256 << 10;
        p.numFunctions = 14; p.blocksPerFunction = 7;
        p.wGlobalCorr = 0.40; p.wBiasedHard = 0.25; p.wBiasedEasy = 0.15;
        p.corrDepthMin = 10; p.corrDepthMax = 28; p.corrNoise = 0.05;
        p.callFrac = 0.4;
        lib[p.name] = p;
    }
    // leela: MCTS Go engine — deep correlation plus local patterns.
    {
        auto p = base("leela", 8);
        p.memFootprint = 256 << 10;
        p.numFunctions = 12; p.blocksPerFunction = 7;
        p.wGlobalCorr = 0.30; p.wLocalCorr = 0.25; p.wBiasedHard = 0.20;
        p.corrDepthMin = 8; p.corrDepthMax = 24; p.corrNoise = 0.06;
        lib[p.name] = p;
    }
    // exchange2: sudoku-style recursive search — loops + local history,
    // quite predictable, integer-only.
    {
        auto p = base("exchange2", 9);
        p.memFootprint = 64 << 10;
        p.numFunctions = 6; p.blocksPerFunction = 6;
        p.wLoop = 0.40; p.wLocalCorr = 0.30; p.wBiasedEasy = 0.25;
        p.loopTripMin = 4; p.loopTripMax = 9;
        p.mix.fLoad = 0.12; p.mix.fStore = 0.06; p.mix.fFp = 0.0;
        p.corrNoise = 0.01;
        lib[p.name] = p;
    }
    // xz: compression — data-dependent periodic/hard branches.
    {
        auto p = base("xz", 10);
        p.numFunctions = 10; p.blocksPerFunction = 6;
        p.wPeriodic = 0.25; p.wBiasedHard = 0.30; p.wGlobalCorr = 0.15;
        p.periodMin = 3; p.periodMax = 12;
        p.mix.fLoad = 0.25; p.numRandomStreams = 2;
        p.memFootprint = 2ull << 20;
        lib[p.name] = p;
    }
    // dhrystone: tiny kernel, short loops, branch-dense, very predictable.
    {
        auto p = base("dhrystone", 11);
        p.numFunctions = 4; p.numHelpers = 3; p.blocksPerFunction = 4;
        p.blockSizeMin = 2; p.blockSizeMax = 5;
        p.wBiasedEasy = 0.55; p.wLoop = 0.35; p.wGlobalCorr = 0.03;
        p.loopTripMin = 2; p.loopTripMax = 6;
        p.hammockFrac = 0.30; p.callFrac = 0.5;
        p.memFootprint = 64 << 10;
        p.corrNoise = 0.0;
        lib[p.name] = p;
    }
    // coremark: small kernels with many data-dependent short hammocks
    // (state machine / matrix), the §VI-C SFB showcase.
    {
        auto p = base("coremark", 12);
        p.numFunctions = 6; p.numHelpers = 2; p.blocksPerFunction = 5;
        p.blockSizeMin = 2; p.blockSizeMax = 6;
        p.hammockFrac = 0.55; p.hammockShadowMax = 4;
        p.hammockHardness = 0.6;
        p.ifElseFrac = 0.15; p.switchFrac = 0.05;
        p.wBiasedHard = 0.05; p.wBiasedEasy = 0.45; p.wLoop = 0.25;
        p.wPeriodic = 0.10; p.wGlobalCorr = 0.05; p.wLocalCorr = 0.05;
        p.loopTripMin = 4; p.loopTripMax = 16;
        p.memFootprint = 128 << 10;
        lib[p.name] = p;
    }
    return lib;
}

const std::map<std::string, WorkloadProfile>&
library()
{
    static const std::map<std::string, WorkloadProfile> lib = makeLibrary();
    return lib;
}

} // namespace

WorkloadProfile
WorkloadLibrary::profile(const std::string& name)
{
    auto it = library().find(name);
    if (it == library().end())
        throw std::out_of_range("unknown workload: " + name);
    return it->second;
}

std::vector<std::string>
WorkloadLibrary::specint17()
{
    return {"perlbench", "gcc", "mcf", "omnetpp", "xalancbmk",
            "x264", "deepsjeng", "leela", "exchange2", "xz"};
}

std::vector<std::string>
WorkloadLibrary::all()
{
    std::vector<std::string> names;
    for (const auto& [k, v] : library())
        names.push_back(k);
    return names;
}

std::shared_ptr<const trace::DecodedTrace>
WorkloadCache::getTrace(const std::string& path)
{
    // Map and validate outside the lock (cheap: header + checksums),
    // then key on the file's content digest so byte-identical traces
    // at different paths still share one decode.
    trace::TraceReader reader(path);
    const std::uint64_t digest = reader.contentDigest();
    std::lock_guard<std::mutex> lk(m_);
    auto it = traces_.find(digest);
    if (it == traces_.end()) {
        it = traces_.emplace(digest, trace::decodeTrace(reader)).first;
        ++traceDecodes_;
    }
    return it->second;
}

std::size_t
WorkloadCache::traceCount() const
{
    std::lock_guard<std::mutex> lk(m_);
    return traces_.size();
}

std::uint64_t
WorkloadCache::traceDecodes() const
{
    std::lock_guard<std::mutex> lk(m_);
    return traceDecodes_;
}

} // namespace cobra::prog
