#include "program/builder.hpp"

#include <cassert>

namespace cobra::prog {

ProgramBuilder::ProgramBuilder(std::uint64_t seed, Addr base)
    : prog_(base), rng_(seed)
{
    recentDsts_.reserve(8);
}

Addr
ProgramBuilder::emit(StaticInst si)
{
    return prog_.append(si);
}

RegIndex
ProgramBuilder::pickDst()
{
    const RegIndex dst = static_cast<RegIndex>(1 + rng_.below(31));
    recentDsts_.push_back(dst);
    if (recentDsts_.size() > 8)
        recentDsts_.erase(recentDsts_.begin());
    return dst;
}

RegIndex
ProgramBuilder::pickSrc(double dep_chain)
{
    if (!recentDsts_.empty() && rng_.chance(dep_chain))
        return recentDsts_[rng_.below(recentDsts_.size())];
    // A "far" register: may or may not have a recent producer; the
    // oracle resolves it to the last architectural writer.
    return static_cast<RegIndex>(1 + rng_.below(31));
}

void
ProgramBuilder::emitStraightLine(std::size_t n, const CodeMix& mix)
{
    auto pickStream = [&]() -> std::uint32_t {
        if (mix.memStreams.empty())
            return kNoMemStream;
        return mix.memStreams[rng_.below(mix.memStreams.size())];
    };
    for (std::size_t i = 0; i < n; ++i) {
        StaticInst si;
        const double r = rng_.uniform();
        double acc = mix.fLoad;
        if (r < acc) {
            si.op = OpClass::Load;
            si.dst = pickDst();
            si.src1 = pickSrc(mix.depChain);
            si.memStreamId = pickStream();
        } else if (r < (acc += mix.fStore)) {
            si.op = OpClass::Store;
            si.src1 = pickSrc(mix.depChain);
            si.src2 = pickSrc(mix.depChain);
            si.memStreamId = pickStream();
        } else if (r < (acc += mix.fMul)) {
            si.op = OpClass::IntMul;
            si.dst = pickDst();
            si.src1 = pickSrc(mix.depChain);
            si.src2 = pickSrc(mix.depChain);
        } else if (r < (acc += mix.fDiv)) {
            si.op = OpClass::IntDiv;
            si.dst = pickDst();
            si.src1 = pickSrc(mix.depChain);
            si.src2 = pickSrc(mix.depChain);
        } else if (r < (acc += mix.fFp)) {
            si.op = OpClass::FpAlu;
            si.dst = pickDst();
            si.src1 = pickSrc(mix.depChain);
            si.src2 = pickSrc(mix.depChain);
        } else {
            si.op = OpClass::IntAlu;
            si.dst = pickDst();
            si.src1 = pickSrc(mix.depChain);
            si.src2 = pickSrc(mix.depChain);
        }
        emit(si);
    }
}

Addr
ProgramBuilder::emitNop()
{
    StaticInst si;
    si.op = OpClass::Nop;
    return emit(si);
}

Addr
ProgramBuilder::emitJump(Addr target)
{
    StaticInst si;
    si.op = OpClass::Jump;
    si.target = target;
    return emit(si);
}

Addr
ProgramBuilder::emitCall(Addr target)
{
    StaticInst si;
    si.op = OpClass::Call;
    si.target = target;
    return emit(si);
}

Addr
ProgramBuilder::emitReturn()
{
    StaticInst si;
    si.op = OpClass::Return;
    return emit(si);
}

Addr
ProgramBuilder::emitCondBranch(const BranchBehavior& b, Addr target,
                               bool sfb_eligible)
{
    StaticInst si;
    si.op = OpClass::CondBranch;
    si.target = target;
    si.behaviorId = prog_.addBranchBehavior(b);
    si.src1 = pickSrc(0.3);
    si.sfbEligible = sfb_eligible;
    return emit(si);
}

Addr
ProgramBuilder::emitIndirectJump(const IndirectBehavior& b)
{
    StaticInst si;
    si.op = OpClass::IndirectJump;
    si.behaviorId = prog_.addIndirectBehavior(b);
    si.src1 = pickSrc(0.3);
    return emit(si);
}

void
ProgramBuilder::patchTarget(Addr pc, Addr target)
{
    StaticInst& si = prog_.atMutable(pc);
    assert(isControlFlow(si.op));
    si.target = target;
}

void
ProgramBuilder::setIndirectTargets(Addr pc, std::vector<Addr> targets)
{
    StaticInst& si = prog_.atMutable(pc);
    assert(isIndirectCf(si.op));
    // Behaviours are stored by value in the program; rebuild the entry.
    IndirectBehavior b = prog_.indirectBehavior(si.behaviorId);
    b.targets = std::move(targets);
    si.behaviorId = prog_.addIndirectBehavior(b);
}

void
ProgramBuilder::emitLoop(unsigned trip, unsigned trip_jitter,
                         std::size_t body_len, const CodeMix& mix)
{
    emitLoopAround(trip, trip_jitter,
                   [&] { emitStraightLine(body_len, mix); });
}

void
ProgramBuilder::emitHammock(const BranchBehavior& b, std::size_t shadow_len,
                            const CodeMix& mix, unsigned sfb_max_shadow)
{
    // Taken means "skip the shadow", like a typical compiled
    // `if (cond) { ... }` with an inverted condition.
    const bool sfb = shadow_len <= sfb_max_shadow;
    const Addr br = emitCondBranch(b, kInvalidAddr, sfb);
    emitStraightLine(shadow_len, mix);
    patchTarget(br, here());
}

void
ProgramBuilder::emitIfElse(const BranchBehavior& b, std::size_t then_len,
                           std::size_t else_len, const CodeMix& mix)
{
    const Addr br = emitCondBranch(b);
    emitStraightLine(then_len, mix);
    const Addr jmp = emitJump();
    const Addr elseLabel = here();
    emitStraightLine(else_len, mix);
    const Addr join = here();
    patchTarget(br, elseLabel);
    patchTarget(jmp, join);
}

void
ProgramBuilder::emitSwitch(const IndirectBehavior& proto, unsigned num_cases,
                           std::size_t case_len, const CodeMix& mix)
{
    assert(num_cases >= 1);
    const Addr jr = emitIndirectJump(proto);
    std::vector<Addr> caseAddrs;
    std::vector<Addr> exitJumps;
    for (unsigned c = 0; c < num_cases; ++c) {
        caseAddrs.push_back(here());
        emitStraightLine(case_len, mix);
        exitJumps.push_back(emitJump());
    }
    const Addr join = here();
    for (Addr j : exitJumps)
        patchTarget(j, join);
    setIndirectTargets(jr, std::move(caseAddrs));
}

} // namespace cobra::prog
