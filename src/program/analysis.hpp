/**
 * @file
 * Workload characterisation: static and dynamic statistics of a
 * synthetic program, computed with the oracle executor. Used by the
 * workload-stats tool and by tests validating that each SPEC proxy
 * has the control-flow character its profile claims (docs/WORKLOADS.md).
 */

#ifndef COBRA_PROGRAM_ANALYSIS_HPP
#define COBRA_PROGRAM_ANALYSIS_HPP

#include <cstdint>
#include <map>

#include "program/program.hpp"

namespace cobra::prog {

/** Static + dynamic workload statistics. */
struct WorkloadStats
{
    // ---- Static (image) ------------------------------------------------
    std::size_t staticInsts = 0;
    std::size_t staticBranches = 0;
    std::size_t staticCalls = 0;
    std::size_t staticIndirect = 0;
    std::size_t staticSfbEligible = 0;
    std::map<BranchBehavior::Kind, std::size_t> staticByKind;

    // ---- Dynamic (oracle execution) --------------------------------------
    std::uint64_t dynInsts = 0;
    std::uint64_t dynBranches = 0;
    std::uint64_t dynTakenBranches = 0;
    std::uint64_t dynCfis = 0;
    std::uint64_t dynCalls = 0;
    std::uint64_t dynReturns = 0;
    std::uint64_t dynIndirect = 0;
    std::uint64_t dynLoads = 0;
    std::uint64_t dynStores = 0;

    /** Conditional branches per instruction. */
    double
    branchDensity() const
    {
        return dynInsts == 0 ? 0.0
                             : static_cast<double>(dynBranches) /
                                   static_cast<double>(dynInsts);
    }

    /** Fraction of conditional branches that are taken. */
    double
    takenRate() const
    {
        return dynBranches == 0
                   ? 0.0
                   : static_cast<double>(dynTakenBranches) /
                         static_cast<double>(dynBranches);
    }

    /** Loads+stores per instruction. */
    double
    memDensity() const
    {
        return dynInsts == 0
                   ? 0.0
                   : static_cast<double>(dynLoads + dynStores) /
                         static_cast<double>(dynInsts);
    }
};

/** Name of a branch-behaviour kind, for reports. */
const char* behaviorKindName(BranchBehavior::Kind k);

/**
 * Analyze @p program: static stats from the image, dynamic stats
 * from @p dyn_insts oracle-executed instructions.
 */
WorkloadStats analyzeWorkload(const Program& program,
                              std::uint64_t dyn_insts = 100'000,
                              std::uint64_t seed = 0xD15EA5E);

} // namespace cobra::prog

#endif // COBRA_PROGRAM_ANALYSIS_HPP
