/**
 * @file
 * Workload profiles and the generator that turns a profile into a
 * synthetic Program. Profiles stand in for the paper's SPECint17
 * benchmarks (plus Dhrystone and CoreMark proxies); see DESIGN.md §1
 * for the substitution rationale.
 */

#ifndef COBRA_PROGRAM_WORKLOAD_HPP
#define COBRA_PROGRAM_WORKLOAD_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "program/builder.hpp"
#include "program/program.hpp"

namespace cobra::trace {
struct DecodedTrace; // trace/replay.hpp
} // namespace cobra::trace

namespace cobra::prog {

/**
 * Knobs describing the control-flow and data-flow character of a
 * synthetic benchmark. Each field maps onto a predictor mechanism:
 * correlated weights stress history predictors, loop weights stress
 * the loop predictor, large static branch populations stress untagged
 * table aliasing (the paper's Tournament weakness), hammock fractions
 * stress the SFB optimisation, and so on.
 */
struct WorkloadProfile
{
    std::string name = "generic";

    // ---- Code shape --------------------------------------------------
    unsigned numFunctions = 8;      ///< Top-level functions in the dispatcher.
    unsigned numHelpers = 4;        ///< Leaf helper functions.
    unsigned blocksPerFunction = 6; ///< Control constructs per function.
    unsigned blockSizeMin = 3;      ///< Straight-line run lengths.
    unsigned blockSizeMax = 10;

    // ---- Branch-behaviour mixture (weights, need not sum to 1) --------
    double wBiasedEasy = 0.3;  ///< Strongly biased (p in {0.03..0.1, 0.9..0.97}).
    double wBiasedHard = 0.1;  ///< Weakly biased (p in 0.35..0.65).
    double wLoop = 0.2;        ///< Counted inner loops.
    double wPeriodic = 0.1;    ///< Short repeating patterns.
    double wGlobalCorr = 0.2;  ///< Functions of global history.
    double wLocalCorr = 0.1;   ///< Functions of the branch's own history.

    unsigned corrDepthMin = 4;  ///< Correlated behaviour history depth.
    unsigned corrDepthMax = 12;
    double corrNoise = 0.02;    ///< Flip probability on correlated branches.
    unsigned loopTripMin = 3;   ///< Inner-loop trip counts.
    unsigned loopTripMax = 24;
    unsigned loopTripJitter = 0;
    unsigned periodMin = 2;     ///< Periodic pattern lengths.
    unsigned periodMax = 8;

    // ---- Construct mixture --------------------------------------------
    double hammockFrac = 0.25;   ///< Branches emitted as short hammocks.
    unsigned hammockShadowMax = 6;
    /**
     * When >= 0, hammock branches are data-dependent coin flips with
     * this taken-probability spread around 0.5 (the CoreMark-style
     * §VI-C scenario); when < 0 they sample the general mixture.
     */
    double hammockHardness = -1.0;
    double ifElseFrac = 0.35;    ///< Branches emitted as if/else diamonds.
    double switchFrac = 0.05;    ///< Constructs emitted as switches.
    unsigned switchFanoutMin = 3;
    unsigned switchFanoutMax = 8;
    double callFrac = 0.25;      ///< Blocks ending in a helper call.

    // ---- Indirect behaviour --------------------------------------------
    IndirectBehavior::Kind indirectKind = IndirectBehavior::Kind::HashSelected;
    unsigned indirectHistoryDepth = 6;

    // ---- Instruction mix / ILP ------------------------------------------
    CodeMix mix{};

    // ---- Memory behaviour --------------------------------------------
    unsigned numStrideStreams = 3;
    unsigned numRandomStreams = 1;
    unsigned numChaseStreams = 0;
    std::uint64_t memFootprint = 1ull << 20; ///< Random-window size in bytes.

    // ---- Outer structure ---------------------------------------------
    unsigned dispatcherTrip = 0; ///< 0 = infinite outer loop.

    std::uint64_t seed = 0xC0B7A;
};

/** Generate a Program from a profile (deterministic in profile.seed). */
Program buildWorkload(const WorkloadProfile& profile);

/**
 * Library of named profiles: the ten SPECint17 proxies of Fig. 10,
 * plus Dhrystone and CoreMark proxies used in §I and §VI-C.
 */
class WorkloadLibrary
{
  public:
    /** Profile for a named workload; throws std::out_of_range if unknown. */
    static WorkloadProfile profile(const std::string& name);

    /** Names of the ten SPECint17 proxies, in the paper's Fig. 10 order. */
    static std::vector<std::string> specint17();

    /** All known workload names. */
    static std::vector<std::string> all();
};

/**
 * Keyed cache of generated Programs. Workload generation is
 * deterministic but not cheap, and sweeps run the same workload under
 * several designs — build each Program once and share it read-only.
 *
 * Returned references are stable for the cache's lifetime (node-based
 * storage), so SweepPoints may hold them across a parallel run.
 * get() is thread-safe, though sweeps normally pre-warm the cache on
 * the main thread before workers start.
 */
class WorkloadCache
{
  public:
    /** Build-or-fetch the Program for a library workload name. */
    const Program&
    get(const std::string& name)
    {
        std::lock_guard<std::mutex> lk(m_);
        auto it = cache_.find(name);
        if (it == cache_.end()) {
            it = cache_
                     .emplace(name, buildWorkload(
                                        WorkloadLibrary::profile(name)))
                     .first;
        }
        return it->second;
    }

    std::size_t size() const
    {
        std::lock_guard<std::mutex> lk(m_);
        return cache_.size();
    }

    /**
     * Open, validate, and decode the trace file at @p path —
     * content-addressed: the decoded object is cached under the
     * file's content digest, so repeated gets (same path, a renamed
     * copy, or N sweep points over one workload) share a single
     * immutable DecodedTrace and the decode runs once. Thread-safe;
     * malformed files raise guard::CheckpointError.
     */
    std::shared_ptr<const trace::DecodedTrace>
    getTrace(const std::string& path);

    /** Distinct decoded traces currently held. */
    std::size_t traceCount() const;

    /** Total decode operations performed (cache misses) — the
     *  counter bench_trace_replay uses to prove decode-once. */
    std::uint64_t traceDecodes() const;

  private:
    mutable std::mutex m_;
    std::map<std::string, Program> cache_;
    std::map<std::uint64_t, std::shared_ptr<const trace::DecodedTrace>>
        traces_;
    std::uint64_t traceDecodes_ = 0;
};

} // namespace cobra::prog

#endif // COBRA_PROGRAM_WORKLOAD_HPP
