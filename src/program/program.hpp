/**
 * @file
 * The static program image: a contiguous array of StaticInsts with a
 * base address, plus the behaviour and memory-stream tables the
 * instructions reference.
 */

#ifndef COBRA_PROGRAM_PROGRAM_HPP
#define COBRA_PROGRAM_PROGRAM_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "program/instruction.hpp"

namespace cobra::prog {

/**
 * Descriptor of one conditional-branch direction behaviour. The
 * oracle executor owns the mutable architectural state; this is the
 * immutable parameterisation produced by the workload generator.
 */
struct BranchBehavior
{
    enum class Kind : std::uint8_t
    {
        Biased,           ///< Bernoulli(pTaken), hash-deterministic.
        Loop,             ///< Taken (trip-1) times, then not-taken.
        Periodic,         ///< Repeating fixed bit pattern.
        GlobalCorrelated, ///< Function of last `depth` global outcomes.
        LocalCorrelated,  ///< Function of last `depth` own outcomes.
    };

    Kind kind = Kind::Biased;
    double pTaken = 0.5;        ///< Biased: probability of taken.
    unsigned trip = 4;          ///< Loop: base trip count.
    unsigned tripJitter = 0;    ///< Loop: trip varies in [trip, trip+jitter].
    std::uint64_t pattern = 0;  ///< Periodic: bit pattern (LSB first).
    unsigned patternLen = 1;    ///< Periodic: pattern length in bits.
    unsigned depth = 8;         ///< Correlated: history depth.
    double noise = 0.0;         ///< Correlated: flip probability.
    std::uint64_t seed = 0;     ///< Per-behaviour hash seed.
};

/**
 * Descriptor of an indirect-target behaviour: a set of candidate
 * targets and how the dynamic target is selected.
 */
struct IndirectBehavior
{
    enum class Kind : std::uint8_t
    {
        Monomorphic,      ///< Always the first target.
        RoundRobin,       ///< Cycles through targets.
        HashSelected,     ///< hash(occurrence) picks the target.
        HistorySelected,  ///< Last `depth` global outcomes pick the target.
    };

    Kind kind = Kind::Monomorphic;
    std::vector<Addr> targets;
    unsigned depth = 6;
    std::uint64_t seed = 0;
};

/** Descriptor of a load/store address stream. */
struct MemStream
{
    enum class Kind : std::uint8_t
    {
        Stride,   ///< base + occurrence * stride, wrapped in a window.
        Random,   ///< Hash-uniform within a window.
        PointerChase, ///< Random but serialised (dependent loads).
    };

    Kind kind = Kind::Stride;
    Addr base = 0x8000'0000;
    std::int64_t stride = 64;
    std::uint64_t windowBytes = 1 << 20;
    std::uint64_t seed = 0;
};

/**
 * A complete synthetic workload: code image plus the behaviour tables
 * the oracle needs to execute it architecturally.
 */
class Program
{
  public:
    explicit Program(Addr base = kDefaultBase) : base_(base) {}

    /** Default code base address. */
    static constexpr Addr kDefaultBase = 0x0001'0000;

    /** Append an instruction; returns its PC. */
    Addr
    append(const StaticInst& si)
    {
        insts_.push_back(si);
        return pcOf(insts_.size() - 1);
    }

    /** Number of static instructions. */
    std::size_t size() const { return insts_.size(); }

    /** First instruction address. */
    Addr base() const { return base_; }

    /** One-past-the-end address. */
    Addr limit() const { return base_ + insts_.size() * kInstBytes; }

    /** True if @p pc addresses an instruction in the image. */
    bool
    contains(Addr pc) const
    {
        return pc >= base_ && pc < limit() && (pc - base_) % kInstBytes == 0;
    }

    /** PC of instruction index @p idx. */
    Addr pcOf(std::size_t idx) const { return base_ + idx * kInstBytes; }

    /** Index of instruction at @p pc (must be contained). */
    std::size_t
    indexOf(Addr pc) const
    {
        return static_cast<std::size_t>((pc - base_) / kInstBytes);
    }

    /** Instruction at @p pc (must be contained). */
    const StaticInst& at(Addr pc) const { return insts_[indexOf(pc)]; }

    /** Mutable access for the builder's backpatching. */
    StaticInst& atMutable(Addr pc) { return insts_[indexOf(pc)]; }

    /**
     * Clamp an arbitrary (possibly wrong-path) PC into the image:
     * out-of-range or misaligned PCs wrap modulo the image size.
     * This keeps wrong-path fetch well-defined (DESIGN.md §4).
     */
    Addr
    clampPc(Addr pc) const
    {
        if (contains(pc))
            return pc;
        const std::uint64_t span = insts_.size() * kInstBytes;
        const std::uint64_t off = (pc % span) & ~std::uint64_t(kInstBytes - 1);
        return base_ + off;
    }

    /** Entry point PC. */
    Addr entry() const { return entry_; }
    void setEntry(Addr e) { entry_ = e; }

    /** Behaviour tables (indices are behaviour ids). */
    std::uint32_t
    addBranchBehavior(const BranchBehavior& b)
    {
        branchBehaviors_.push_back(b);
        return static_cast<std::uint32_t>(branchBehaviors_.size() - 1);
    }

    std::uint32_t
    addIndirectBehavior(const IndirectBehavior& b)
    {
        indirectBehaviors_.push_back(b);
        return static_cast<std::uint32_t>(indirectBehaviors_.size() - 1);
    }

    std::uint32_t
    addMemStream(const MemStream& m)
    {
        memStreams_.push_back(m);
        return static_cast<std::uint32_t>(memStreams_.size() - 1);
    }

    const BranchBehavior&
    branchBehavior(std::uint32_t id) const
    {
        return branchBehaviors_.at(id);
    }

    const IndirectBehavior&
    indirectBehavior(std::uint32_t id) const
    {
        return indirectBehaviors_.at(id);
    }

    const MemStream& memStream(std::uint32_t id) const
    {
        return memStreams_.at(id);
    }

    std::size_t numBranchBehaviors() const { return branchBehaviors_.size(); }
    std::size_t numIndirectBehaviors() const
    {
        return indirectBehaviors_.size();
    }
    std::size_t numMemStreams() const { return memStreams_.size(); }

    /** Count static instructions of a given class. */
    std::size_t countOpClass(OpClass op) const;

    /** Name for reports. */
    const std::string& name() const { return name_; }
    void setName(std::string n) { name_ = std::move(n); }

  private:
    Addr base_;
    Addr entry_ = kDefaultBase;
    std::string name_ = "anonymous";
    std::vector<StaticInst> insts_;
    std::vector<BranchBehavior> branchBehaviors_;
    std::vector<IndirectBehavior> indirectBehaviors_;
    std::vector<MemStream> memStreams_;
};

/**
 * Content fingerprint of a Program: an FNV-1a hash over the code
 * image (every StaticInst field), the behaviour and memory-stream
 * tables, the base and the entry point — everything the oracle's
 * stream depends on except the seed. Captured traces embed it so a
 * replay against a different Program fails up front with a
 * structured error instead of desyncing mid-stream. The name is
 * deliberately excluded: renaming a workload does not change its
 * stream.
 */
std::uint64_t programFingerprint(const Program& p);

} // namespace cobra::prog

#endif // COBRA_PROGRAM_PROGRAM_HPP
