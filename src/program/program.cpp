#include "program/program.hpp"

#include <sstream>

namespace cobra::prog {

const char*
opClassName(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu: return "alu";
      case OpClass::IntMul: return "mul";
      case OpClass::IntDiv: return "div";
      case OpClass::FpAlu: return "fp";
      case OpClass::Load: return "ld";
      case OpClass::Store: return "st";
      case OpClass::CondBranch: return "br";
      case OpClass::Jump: return "j";
      case OpClass::IndirectJump: return "jr";
      case OpClass::Call: return "call";
      case OpClass::IndirectCall: return "callr";
      case OpClass::Return: return "ret";
      case OpClass::Nop: return "nop";
    }
    return "?";
}

std::string
StaticInst::describe() const
{
    std::ostringstream oss;
    oss << opClassName(op);
    if (dst != 0)
        oss << " x" << dst;
    if (src1 != 0)
        oss << ", x" << src1;
    if (src2 != 0)
        oss << ", x" << src2;
    if (target != kInvalidAddr)
        oss << " -> 0x" << std::hex << target;
    return oss.str();
}

std::size_t
Program::countOpClass(OpClass op) const
{
    std::size_t n = 0;
    for (const auto& si : insts_)
        if (si.op == op)
            ++n;
    return n;
}

namespace {

/** Incremental FNV-1a over explicitly-fed scalars (host-independent:
 *  every value is folded in as little-endian bytes of a u64). */
struct Fnv
{
    std::uint64_t h = 0xcbf29ce484222325ull;

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            h ^= static_cast<std::uint8_t>(v >> (8 * i));
            h *= 0x100000001b3ull;
        }
    }

    void
    f64(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        __builtin_memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }
};

} // namespace

std::uint64_t
programFingerprint(const Program& p)
{
    Fnv f;
    f.u64(p.base());
    f.u64(p.entry());
    f.u64(p.size());
    for (std::size_t i = 0; i < p.size(); ++i) {
        const StaticInst& si = p.at(p.pcOf(i));
        f.u64(static_cast<std::uint64_t>(si.op));
        f.u64(si.dst);
        f.u64(si.src1);
        f.u64(si.src2);
        f.u64(si.target);
        f.u64(si.behaviorId);
        f.u64(si.memStreamId);
        f.u64(si.sfbEligible ? 1 : 0);
    }
    f.u64(p.numBranchBehaviors());
    for (std::size_t i = 0; i < p.numBranchBehaviors(); ++i) {
        const BranchBehavior& b =
            p.branchBehavior(static_cast<std::uint32_t>(i));
        f.u64(static_cast<std::uint64_t>(b.kind));
        f.f64(b.pTaken);
        f.u64(b.trip);
        f.u64(b.tripJitter);
        f.u64(b.pattern);
        f.u64(b.patternLen);
        f.u64(b.depth);
        f.f64(b.noise);
        f.u64(b.seed);
    }
    f.u64(p.numIndirectBehaviors());
    for (std::size_t i = 0; i < p.numIndirectBehaviors(); ++i) {
        const IndirectBehavior& b =
            p.indirectBehavior(static_cast<std::uint32_t>(i));
        f.u64(static_cast<std::uint64_t>(b.kind));
        f.u64(b.targets.size());
        for (Addr t : b.targets)
            f.u64(t);
        f.u64(b.depth);
        f.u64(b.seed);
    }
    f.u64(p.numMemStreams());
    for (std::size_t i = 0; i < p.numMemStreams(); ++i) {
        const MemStream& m = p.memStream(static_cast<std::uint32_t>(i));
        f.u64(static_cast<std::uint64_t>(m.kind));
        f.u64(m.base);
        f.u64(static_cast<std::uint64_t>(m.stride));
        f.u64(m.windowBytes);
        f.u64(m.seed);
    }
    return f.h;
}

} // namespace cobra::prog
