#include "program/program.hpp"

#include <sstream>

namespace cobra::prog {

const char*
opClassName(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu: return "alu";
      case OpClass::IntMul: return "mul";
      case OpClass::IntDiv: return "div";
      case OpClass::FpAlu: return "fp";
      case OpClass::Load: return "ld";
      case OpClass::Store: return "st";
      case OpClass::CondBranch: return "br";
      case OpClass::Jump: return "j";
      case OpClass::IndirectJump: return "jr";
      case OpClass::Call: return "call";
      case OpClass::IndirectCall: return "callr";
      case OpClass::Return: return "ret";
      case OpClass::Nop: return "nop";
    }
    return "?";
}

std::string
StaticInst::describe() const
{
    std::ostringstream oss;
    oss << opClassName(op);
    if (dst != 0)
        oss << " x" << dst;
    if (src1 != 0)
        oss << ", x" << src1;
    if (src2 != 0)
        oss << ", x" << src2;
    if (target != kInvalidAddr)
        oss << " -> 0x" << std::hex << target;
    return oss.str();
}

std::size_t
Program::countOpClass(OpClass op) const
{
    std::size_t n = 0;
    for (const auto& si : insts_)
        if (si.op == op)
            ++n;
    return n;
}

} // namespace cobra::prog
