/**
 * @file
 * Static instruction definition for the synthetic RISC-like ISA used
 * by the workload substrate (DESIGN.md §2 item 3).
 *
 * The ISA is deliberately minimal: fixed 4-byte instructions, 32 int
 * registers, and exactly the control-flow vocabulary a branch
 * predictor cares about (conditional branches, direct/indirect jumps,
 * calls, returns).
 */

#ifndef COBRA_PROGRAM_INSTRUCTION_HPP
#define COBRA_PROGRAM_INSTRUCTION_HPP

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace cobra::prog {

/** Operation classes, coarse enough for a timing model. */
enum class OpClass : std::uint8_t
{
    IntAlu,     ///< 1-cycle integer op.
    IntMul,     ///< 3-cycle integer multiply.
    IntDiv,     ///< 12-cycle unpipelined divide.
    FpAlu,      ///< 4-cycle floating-point op.
    Load,       ///< Memory load (latency from cache model).
    Store,      ///< Memory store.
    CondBranch, ///< Conditional direct branch.
    Jump,       ///< Unconditional direct jump.
    IndirectJump, ///< Register-target jump (e.g., switch tables).
    Call,       ///< Direct call (pushes return address).
    IndirectCall, ///< Register-target call.
    Return,     ///< Return (pops return address).
    Nop,        ///< No-op / padding.
};

/** True for any control-flow instruction. */
constexpr bool
isControlFlow(OpClass op)
{
    switch (op) {
      case OpClass::CondBranch:
      case OpClass::Jump:
      case OpClass::IndirectJump:
      case OpClass::Call:
      case OpClass::IndirectCall:
      case OpClass::Return:
        return true;
      default:
        return false;
    }
}

/** True when the instruction always redirects control flow if executed. */
constexpr bool
isUnconditionalCf(OpClass op)
{
    return isControlFlow(op) && op != OpClass::CondBranch;
}

/** True for indirect-target control flow (target not in the encoding). */
constexpr bool
isIndirectCf(OpClass op)
{
    return op == OpClass::IndirectJump || op == OpClass::IndirectCall ||
           op == OpClass::Return;
}

/** True for call-type instructions (push a return address). */
constexpr bool
isCall(OpClass op)
{
    return op == OpClass::Call || op == OpClass::IndirectCall;
}

/** Sentinel for "no behaviour attached". */
inline constexpr std::uint32_t kNoBehavior = 0xffffffffu;

/** Sentinel for "no memory stream attached". */
inline constexpr std::uint32_t kNoMemStream = 0xffffffffu;

/**
 * One static instruction in the program image. Direction/target
 * behaviour is referenced by id and resolved by the oracle executor.
 */
struct StaticInst
{
    OpClass op = OpClass::Nop;

    /** Destination register; 0 means "none" (x0 is hardwired zero). */
    RegIndex dst = 0;
    /** Source registers; 0 means "no dependence through this slot". */
    RegIndex src1 = 0;
    RegIndex src2 = 0;

    /** Target PC for direct branches / jumps / calls. */
    Addr target = kInvalidAddr;

    /** Direction/target behaviour id (cond branches, indirect CF). */
    std::uint32_t behaviorId = kNoBehavior;

    /** Address-stream id for loads and stores. */
    std::uint32_t memStreamId = kNoMemStream;

    /**
     * Marked by the program builder: a short forwards branch whose
     * shadow is straight-line code, eligible for SFB predication
     * (paper §VI-C).
     */
    bool sfbEligible = false;

    /** Human-readable mnemonic, for diagnostics. */
    std::string describe() const;
};

/** Short mnemonic for an OpClass. */
const char* opClassName(OpClass op);

} // namespace cobra::prog

#endif // COBRA_PROGRAM_INSTRUCTION_HPP
