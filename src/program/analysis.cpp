#include "program/analysis.hpp"

#include "exec/oracle.hpp"

namespace cobra::prog {

const char*
behaviorKindName(BranchBehavior::Kind k)
{
    switch (k) {
      case BranchBehavior::Kind::Biased: return "biased";
      case BranchBehavior::Kind::Loop: return "loop";
      case BranchBehavior::Kind::Periodic: return "periodic";
      case BranchBehavior::Kind::GlobalCorrelated: return "gcorr";
      case BranchBehavior::Kind::LocalCorrelated: return "lcorr";
    }
    return "?";
}

WorkloadStats
analyzeWorkload(const Program& program, std::uint64_t dyn_insts,
                std::uint64_t seed)
{
    WorkloadStats s;

    // ---- Static pass ----------------------------------------------------
    s.staticInsts = program.size();
    for (std::size_t i = 0; i < program.size(); ++i) {
        const StaticInst& si = program.at(program.pcOf(i));
        switch (si.op) {
          case OpClass::CondBranch:
            ++s.staticBranches;
            if (si.sfbEligible)
                ++s.staticSfbEligible;
            if (si.behaviorId != kNoBehavior) {
                ++s.staticByKind[program.branchBehavior(si.behaviorId)
                                     .kind];
            }
            break;
          case OpClass::Call:
          case OpClass::IndirectCall:
            ++s.staticCalls;
            break;
          case OpClass::IndirectJump:
            ++s.staticIndirect;
            break;
          default:
            break;
        }
    }

    // ---- Dynamic pass ----------------------------------------------------
    exec::Oracle oracle(program, seed);
    for (std::uint64_t n = 0; n < dyn_insts; ++n) {
        const exec::DynInst& di = oracle.consume();
        ++s.dynInsts;
        if (di.isCf())
            ++s.dynCfis;
        switch (di.si->op) {
          case OpClass::CondBranch:
            ++s.dynBranches;
            s.dynTakenBranches += di.taken;
            break;
          case OpClass::Call:
          case OpClass::IndirectCall:
            ++s.dynCalls;
            break;
          case OpClass::Return:
            ++s.dynReturns;
            break;
          case OpClass::IndirectJump:
            ++s.dynIndirect;
            break;
          case OpClass::Load:
            ++s.dynLoads;
            break;
          case OpClass::Store:
            ++s.dynStores;
            break;
          default:
            break;
        }
        oracle.retireUpTo(di.seq);
    }
    return s;
}

} // namespace cobra::prog
