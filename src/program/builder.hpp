/**
 * @file
 * Structured program builder: emits synthetic-ISA code with loops,
 * hammocks, if/else trees, switches, and call graphs, while keeping
 * the register-dependence profile under control. Used by the workload
 * generator to create SPEC-proxy programs.
 */

#ifndef COBRA_PROGRAM_BUILDER_HPP
#define COBRA_PROGRAM_BUILDER_HPP

#include <vector>

#include "common/random.hpp"
#include "program/program.hpp"

namespace cobra::prog {

/** Instruction-mix knobs for straight-line code emission. */
struct CodeMix
{
    double fLoad = 0.20;   ///< Fraction of loads.
    double fStore = 0.10;  ///< Fraction of stores.
    double fMul = 0.05;    ///< Fraction of integer multiplies.
    double fDiv = 0.01;    ///< Fraction of integer divides.
    double fFp = 0.05;     ///< Fraction of FP ops.
    /** Probability a source register names a recent producer. */
    double depChain = 0.45;
    /** Memory-stream ids assigned round-robin to loads/stores. */
    std::vector<std::uint32_t> memStreams;
};

/**
 * Low-level emission interface over a Program, with label/backpatch
 * support and register selection that follows a CodeMix.
 */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::uint64_t seed, Addr base = Program::kDefaultBase);

    /** The program under construction (move out when done). */
    Program& program() { return prog_; }
    Program takeProgram() { return std::move(prog_); }

    /** Next instruction address. */
    Addr here() const { return prog_.limit(); }

    /** Emit one raw instruction; returns its PC. */
    Addr emit(StaticInst si);

    /** Emit @p n straight-line instructions following @p mix. */
    void emitStraightLine(std::size_t n, const CodeMix& mix);

    /** Emit a nop. */
    Addr emitNop();

    /** Emit an unconditional direct jump to @p target (backpatchable). */
    Addr emitJump(Addr target = kInvalidAddr);

    /** Emit a direct call to @p target. */
    Addr emitCall(Addr target);

    /** Emit a return. */
    Addr emitReturn();

    /**
     * Emit a conditional branch with the given behaviour; target may
     * be patched later via patchTarget().
     */
    Addr emitCondBranch(const BranchBehavior& b, Addr target = kInvalidAddr,
                        bool sfbEligible = false);

    /** Emit an indirect jump with the given target behaviour. */
    Addr emitIndirectJump(const IndirectBehavior& b);

    /** Patch the target of a previously emitted CF instruction. */
    void patchTarget(Addr pc, Addr target);

    /** Patch an indirect behaviour's target list after layout. */
    void setIndirectTargets(Addr pc, std::vector<Addr> targets);

    // ---- Structured constructs -------------------------------------

    /**
     * Emit a counted loop: `bodyLen` straight-line instructions
     * followed by a backward conditional branch with Loop behaviour.
     */
    void emitLoop(unsigned trip, unsigned tripJitter, std::size_t bodyLen,
                  const CodeMix& mix);

    /**
     * Emit a loop whose body is produced by @p body (for nesting).
     */
    template <typename BodyFn>
    void
    emitLoopAround(unsigned trip, unsigned tripJitter, BodyFn&& body)
    {
        const Addr head = here();
        body();
        BranchBehavior b;
        b.kind = BranchBehavior::Kind::Loop;
        b.trip = trip;
        b.tripJitter = tripJitter;
        b.seed = rng_.next();
        emitCondBranch(b, head);
    }

    /**
     * Emit a forward hammock: a conditional branch skipping
     * @p shadowLen straight-line instructions. Marked SFB-eligible
     * when the shadow is short enough (paper §VI-C).
     */
    void emitHammock(const BranchBehavior& b, std::size_t shadowLen,
                     const CodeMix& mix, unsigned sfbMaxShadow = 8);

    /**
     * Emit if/else: branch to else-block; then-block; jump to join.
     */
    void emitIfElse(const BranchBehavior& b, std::size_t thenLen,
                    std::size_t elseLen, const CodeMix& mix);

    /**
     * Emit a switch: indirect jump over @p numCases case blocks of
     * @p caseLen instructions each, all joining afterwards.
     */
    void emitSwitch(const IndirectBehavior& proto, unsigned numCases,
                    std::size_t caseLen, const CodeMix& mix);

    /** Deterministic RNG driving all layout choices. */
    Rng& rng() { return rng_; }

  private:
    /** Pick a destination register (1..31). */
    RegIndex pickDst();
    /** Pick a source register following the dependence profile. */
    RegIndex pickSrc(double depChain);

    Program prog_;
    Rng rng_;
    /** Ring of recently written registers, for dependence chains. */
    std::vector<RegIndex> recentDsts_;
};

} // namespace cobra::prog

#endif // COBRA_PROGRAM_BUILDER_HPP
