#include "components/loop.hpp"

#include <cassert>
#include <sstream>

#include "common/bitutil.hpp"
#include "warp/state_util.hpp"

namespace cobra::comps {

LoopPredictor::LoopPredictor(std::string name, const LoopParams& p)
    : PredictorComponent(std::move(name), p.latency, p.fetchWidth),
      params_(p)
{
    assert(isPow2(p.entries));
    table_.resize(p.entries);
}

std::size_t
LoopPredictor::indexOf(Addr pc) const
{
    const std::uint64_t pcBits = pc >> (2 + ceilLog2(fetchWidth()));
    return static_cast<std::size_t>(pcBits & maskBits(
        ceilLog2(params_.entries)));
}

std::uint32_t
LoopPredictor::tagOf(Addr pc) const
{
    const std::uint64_t pcBits = pc >> (2 + ceilLog2(fetchWidth()));
    return static_cast<std::uint32_t>(
        (pcBits >> ceilLog2(params_.entries)) & maskBits(params_.tagBits));
}

void
LoopPredictor::predict(const bpu::PredictContext& ctx,
                       bpu::PredictionBundle& inout, bpu::Metadata& meta)
{
    Entry& e = table_[indexOf(ctx.pc)];
    const bool matched = e.valid && e.tag == tagOf(ctx.pc) &&
                         e.slot < ctx.validSlots;
    meta[0] = (matched ? 1u : 0u) |
              (static_cast<std::uint64_t>(e.specCount) << 1);
    if (!matched || e.trip < params_.minTrip ||
        e.conf < params_.confThreshold) {
        return; // Pass through: not confident about this loop.
    }

    // Predict the loop branch taken until the learned trip count is
    // reached, then predict the exit (not taken).
    auto& slot = inout.slots[e.slot];
    slot.valid = true;
    slot.taken = e.specCount + 1 < e.trip;
}

void
LoopPredictor::fire(const bpu::FireEvent& ev)
{
    assert(ev.meta != nullptr);
    const bool matched = (*ev.meta)[0] & 1;
    if (!matched)
        return;
    Entry& e = table_[indexOf(ev.pc)];
    if (!e.valid || e.tag != tagOf(ev.pc))
        return;
    // Speculative iteration advance; wraps at the trip count.
    if (e.trip != 0 && e.specCount + 1 >= e.trip)
        e.specCount = 0;
    else if (e.specCount < maskBits(params_.countBits))
        ++e.specCount;
}

void
LoopPredictor::repair(const bpu::ResolveEvent& ev)
{
    assert(ev.meta != nullptr);
    const bool matched = (*ev.meta)[0] & 1;
    if (!matched)
        return;
    Entry& e = table_[indexOf(ev.pc)];
    if (!e.valid || e.tag != tagOf(ev.pc))
        return;
    e.specCount = static_cast<std::uint32_t>(
        ((*ev.meta)[0] >> 1) & maskBits(params_.countBits));
}

void
LoopPredictor::mispredict(const bpu::ResolveEvent& ev)
{
    // Restore the pre-fire count, then re-apply the resolved outcome.
    repair(ev);
    Entry& e = table_[indexOf(ev.pc)];
    if (!e.valid || e.tag != tagOf(ev.pc))
        return;
    if (e.slot >= bpu::kMaxFetchWidth || !ev.brMask[e.slot])
        return;
    const bool taken = ev.takenMask[e.slot];
    if (taken) {
        if (e.specCount < maskBits(params_.countBits))
            ++e.specCount;
    } else {
        e.specCount = 0;
    }
    // If the loop predictor itself was confidently overriding and the
    // branch still mispredicted, its trip is wrong — stop overriding
    // until re-learned. (Mispredicts while *not* confident are the
    // base predictor's, and must not block confidence building.)
    if (ev.slotMispredicted(e.slot) && e.conf >= params_.confThreshold)
        e.conf = 0;
}

void
LoopPredictor::update(const bpu::ResolveEvent& ev)
{
    const std::size_t idx = indexOf(ev.pc);
    const std::uint32_t tag = tagOf(ev.pc);
    Entry& e = table_[idx];
    const bool matched = e.valid && e.tag == tag;

    // Find the conditional branch to train on: a matched entry trains
    // only on its tracked slot; otherwise consider the packet's first
    // branch for allocation.
    unsigned slot = bpu::kMaxFetchWidth;
    if (matched) {
        if (e.slot >= bpu::kMaxFetchWidth || !ev.brMask[e.slot])
            return; // The tracked branch was not in this packet.
        slot = e.slot;
    } else {
        for (unsigned i = 0; i < bpu::kMaxFetchWidth; ++i) {
            if (ev.brMask[i]) {
                slot = i;
                break;
            }
        }
    }
    if (slot >= bpu::kMaxFetchWidth)
        return;
    const bool taken = ev.takenMask[slot];

    if (!matched) {
        // Allocate only for branches that just mispredicted a loop
        // exit (not-taken after a run of takens is the telltale).
        if (ev.slotMispredicted(slot) && !taken) {
            e.valid = true;
            e.tag = tag;
            e.slot = slot;
            e.trip = 0;
            e.specCount = 0;
            e.archCount = 0;
            e.conf = 0;
        }
        return;
    }

    // Committed iteration counting.
    if (taken) {
        if (e.archCount < maskBits(params_.countBits))
            ++e.archCount;
        // Run longer than a learnable trip: give up on this entry.
        if (e.trip != 0 && e.archCount >= e.trip &&
            e.conf >= params_.confThreshold) {
            // The loop ran past its learned trip: the trip was wrong.
            e.trip = 0;
            e.conf = 0;
        }
    } else {
        const std::uint32_t observedTrip = e.archCount + 1;
        if (e.trip == observedTrip) {
            if (e.conf < params_.confMax)
                ++e.conf;
        } else {
            e.trip = observedTrip;
            e.conf = 0;
        }
        e.archCount = 0;
        // Re-sync the speculative count at loop boundaries when the
        // pipeline is consistent (cheap drift correction).
        if (!ev.mispredicted && e.specCount >= e.trip)
            e.specCount = 0;
    }
}

std::uint64_t
LoopPredictor::storageBits() const
{
    const std::uint64_t perEntry = 1 + params_.tagBits +
                                   ceilLog2(fetchWidth()) +
                                   3ull * params_.countBits + 3;
    return perEntry * params_.entries;
}

std::string
LoopPredictor::describe() const
{
    std::ostringstream oss;
    oss << name() << ": " << params_.entries
        << "-entry loop predictor, latency " << latency();
    return oss.str();
}

void
LoopPredictor::saveState(warp::StateWriter& w) const
{
    w.u64(table_.size());
    for (const Entry& e : table_) {
        w.boolean(e.valid);
        w.u32(e.tag);
        w.u32(e.slot);
        w.u32(e.trip);
        w.u32(e.specCount);
        w.u32(e.archCount);
        w.u32(e.conf);
    }
}

void
LoopPredictor::restoreState(warp::StateReader& r)
{
    if (r.u64() != table_.size())
        r.fail("loop-predictor entry count does not match");
    for (Entry& e : table_) {
        e.valid = r.boolean();
        e.tag = r.u32();
        e.slot = r.u32();
        e.trip = r.u32();
        e.specCount = r.u32();
        e.archCount = r.u32();
        e.conf = r.u32();
    }
}

} // namespace cobra::comps
