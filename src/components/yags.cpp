#include "components/yags.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "common/bitutil.hpp"
#include "warp/state_util.hpp"

namespace cobra::comps {

Yags::Yags(std::string name, const YagsParams& p)
    : PredictorComponent(std::move(name), p.latency, p.fetchWidth),
      params_(p)
{
    assert(isPow2(p.choiceSets));
    assert(isPow2(p.cacheSets));
    assert(p.latency >= 2);
    choice_.assign(static_cast<std::size_t>(p.choiceSets),
                   SatCounter(p.ctrBits, (1u << p.ctrBits) / 2));
    takenCache_.resize(p.cacheSets);
    notTakenCache_.resize(p.cacheSets);
    for (auto* cache : {&takenCache_, &notTakenCache_})
        for (auto& e : *cache)
            e.ctr = SatCounter(p.ctrBits, (1u << p.ctrBits) / 2);
}

std::size_t
Yags::choiceIndex(Addr pc, unsigned slot) const
{
    const std::uint64_t pcBits = pc >> (2 + ceilLog2(fetchWidth()));
    return static_cast<std::size_t>(
        ((pcBits << ceilLog2(fetchWidth())) | slot) &
        maskBits(ceilLog2(params_.choiceSets)));
}

std::size_t
Yags::cacheIndex(Addr pc, const HistoryRegister& gh, unsigned slot) const
{
    const unsigned idxBits = ceilLog2(params_.cacheSets);
    const std::uint64_t pcBits = pc >> (2 + ceilLog2(fetchWidth()));
    return static_cast<std::size_t>(
        (((pcBits << ceilLog2(fetchWidth())) | slot) ^
         gh.folded(params_.histBits, idxBits)) &
        maskBits(idxBits));
}

std::uint32_t
Yags::cacheTag(Addr pc, unsigned slot) const
{
    const std::uint64_t pcBits = pc >> (2 + ceilLog2(fetchWidth()));
    return static_cast<std::uint32_t>(
        ((pcBits << ceilLog2(fetchWidth())) | slot) &
        maskBits(params_.tagBits));
}

void
Yags::predict(const bpu::PredictContext& ctx, bpu::PredictionBundle& inout,
              bpu::Metadata& meta)
{
    const HistoryRegister& gh = requireGhist(ctx);
    for (unsigned i = 0; i < ctx.validSlots && i < inout.width; ++i) {
        const bool bias = choice_[choiceIndex(ctx.pc, i)].taken();
        // Consult the opposite-direction exception cache.
        const auto& cache = bias ? notTakenCache_ : takenCache_;
        const CacheEntry& e = cache[cacheIndex(ctx.pc, gh, i)];
        const bool hit = e.valid && e.tag == cacheTag(ctx.pc, i);

        inout.slots[i].valid = true;
        inout.slots[i].taken = hit ? e.ctr.taken() : bias;
        meta[0] |= (static_cast<std::uint64_t>(bias ? 1 : 0) |
                    (hit ? 2u : 0u))
                   << (2 * i);
    }
}

void
Yags::update(const bpu::ResolveEvent& ev)
{
    assert(ev.ghist != nullptr);
    for (unsigned i = 0; i < fetchWidth(); ++i) {
        if (!ev.brMask[i])
            continue;
        const bool taken = ev.takenMask[i];
        const std::uint64_t m = ((*ev.meta)[0] >> (2 * i)) & 3;
        const bool bias = m & 1;
        const bool hit = m & 2;

        auto& cache = bias ? notTakenCache_ : takenCache_;
        CacheEntry& e = cache[cacheIndex(ev.pc, *ev.ghist, i)];

        if (hit) {
            // Exception entry trains on the outcome; entries that
            // converge back to the bias become dead weight and are
            // naturally re-stolen by the tag check.
            e.ctr.train(taken);
        } else if (taken != bias) {
            // The bias failed: record the exception.
            e.valid = true;
            e.tag = cacheTag(ev.pc, i);
            const unsigned mid = (1u << params_.ctrBits) / 2;
            e.ctr = SatCounter(params_.ctrBits,
                               taken ? mid : mid - 1);
        }
        // The choice PHT trains except when the exception cache hit
        // and was right while the bias was wrong (Eden & Mudge).
        const bool cachePred = hit && e.valid;
        const bool cacheWasRight = cachePred && e.ctr.taken() == taken;
        if (!(cacheWasRight && bias != taken))
            choice_[choiceIndex(ev.pc, i)].train(taken);
    }
}

std::uint64_t
Yags::storageBits() const
{
    const std::uint64_t choiceBits =
        std::uint64_t{params_.choiceSets} * params_.ctrBits;
    const std::uint64_t cacheBits =
        2ull * params_.cacheSets *
        (1 + params_.tagBits + params_.ctrBits);
    return choiceBits + cacheBits;
}

std::string
Yags::describe() const
{
    std::ostringstream oss;
    oss << name() << ": " << params_.choiceSets
        << " choice counters + 2x" << params_.cacheSets
        << " tagged exception caches, latency " << latency();
    return oss.str();
}

void
Yags::saveState(warp::StateWriter& w) const
{
    warp::saveSatVec(w, choice_);
    for (const auto* cache : {&takenCache_, &notTakenCache_}) {
        w.u64(cache->size());
        for (const CacheEntry& e : *cache) {
            w.boolean(e.valid);
            w.u32(e.tag);
            warp::saveSat(w, e.ctr);
        }
    }
}

void
Yags::restoreState(warp::StateReader& r)
{
    warp::loadSatVec(r, choice_);
    for (auto* cache : {&takenCache_, &notTakenCache_}) {
        if (r.u64() != cache->size())
            r.fail("YAGS cache size does not match");
        for (CacheEntry& e : *cache) {
            e.valid = r.boolean();
            e.tag = r.u32();
            warp::loadSat(r, e.ctr);
        }
    }
}

} // namespace cobra::comps
