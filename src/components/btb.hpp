/**
 * @file
 * Branch target buffers (paper §III-G2): a large 2-cycle
 * set-associative BTB and a small 1-cycle fully-associative micro-BTB
 * (uBTB). Both are *partial* predictors in the sense of §III-F /
 * Fig. 3: they provide targets and CFI types, passing the incoming
 * direction prediction through (the BTB), or provide a complete
 * next-line prediction (the uBTB). The set-associativity is enabled
 * by the metadata field, which carries the hit way to update time.
 */

#ifndef COBRA_COMPONENTS_BTB_HPP
#define COBRA_COMPONENTS_BTB_HPP

#include <vector>

#include "bpu/component.hpp"
#include "common/random.hpp"
#include "common/sat_counter.hpp"

namespace cobra::comps {

/** Parameters of the set-associative BTB. */
struct BtbParams
{
    unsigned sets = 256;     ///< Sets; total entries = sets*ways*width.
    unsigned ways = 2;
    unsigned tagBits = 20;
    unsigned latency = 2;
    unsigned fetchWidth = 4;
};

/**
 * Set-associative BTB indexed by fetch-packet PC; each way holds a
 * tag and per-slot target records.
 */
class Btb final : public bpu::PredictorComponent
{
  public:
    Btb(std::string name, const BtbParams& p);

    unsigned metaBits() const override
    {
        // Hit-way + hit-valid + victim way (§III-D).
        return ceilLog2(params_.ways) * 2 + 1;
    }

    void predict(const bpu::PredictContext& ctx,
                 bpu::PredictionBundle& inout,
                 bpu::Metadata& meta) override;

    void update(const bpu::ResolveEvent& ev) override;

    const char* typeKey() const override { return "btb"; }

    void prefetch(const bpu::PredictContext& ctx) const override;

    void saveState(warp::StateWriter& w) const override;
    void restoreState(warp::StateReader& r) override;

    std::uint64_t storageBits() const override;

    std::string describe() const override;

    const BtbParams& params() const { return params_; }

    phys::AccessProfile
    predictAccess() const override
    {
        phys::AccessProfile a;
        a.sramReadBits = storageBits() / params_.sets; // one set
        return a;
    }

    phys::AccessProfile
    updateAccess() const override
    {
        phys::AccessProfile a;
        a.sramWriteBits =
            storageBits() / params_.sets / params_.ways; // one way
        return a;
    }

    /** Fault injection: flip a way-tag or stored-target bit. */
    bool
    flipStateBit(std::uint64_t rand) override
    {
        if (ways_.empty())
            return false;
        const std::size_t wi = rand % ways_.size();
        Way& w = ways_[wi];
        const std::uint64_t pick = rand >> 32;
        if ((pick & 1) != 0) {
            SlotEntry& s =
                slots_[wi * fetchWidth() + (rand >> 16) % fetchWidth()];
            if (s.valid && s.target != kInvalidAddr) {
                s.target ^= 1ull << ((pick >> 1) % 32);
                return true;
            }
        }
        // Tag corruption: the way now misses (or aliases).
        w.tag ^= 1ull << ((pick >> 1) % 48);
        return true;
    }

  private:
    /** One slot record within a way. */
    struct SlotEntry
    {
        bool valid = false;
        Addr target = kInvalidAddr;
        bpu::CfiType type = bpu::CfiType::None;
        bool isCall = false;
        bool isRet = false;
    };

    /** Way control state; the slot payloads live in the flat slots_
     *  array so a set probe touches one dense tag strip (SoA). */
    struct Way
    {
        bool valid = false;
        std::uint64_t tag = 0;
        std::uint32_t lruStamp = 0;
    };

    std::size_t setOf(Addr pc) const;
    std::uint64_t tagOf(Addr pc) const;

    BtbParams params_;
    std::vector<Way> ways_;        ///< sets * ways, row-major.
    /** Slot payloads, sets * ways * fetchWidth; way w's slots are the
     *  contiguous run [w*fetchWidth, (w+1)*fetchWidth). */
    std::vector<SlotEntry> slots_;
    std::uint32_t stamp_ = 0;
    Rng rng_;
};

/** Parameters of the micro-BTB. */
struct MicroBtbParams
{
    unsigned entries = 32;
    unsigned ctrBits = 2;   ///< Hysteresis on next-line predictions.
    unsigned fetchWidth = 4;
};

/**
 * Fully-associative 1-cycle uBTB: caches taken CFIs and provides a
 * complete early prediction (direction + target + type) for the slot
 * it remembers. PC-only: it responds before histories are available.
 */
class MicroBtb final : public bpu::PredictorComponent
{
  public:
    MicroBtb(std::string name, const MicroBtbParams& p);

    unsigned metaBits() const override
    {
        return ceilLog2(params_.entries) + 1;
    }

    void predict(const bpu::PredictContext& ctx,
                 bpu::PredictionBundle& inout,
                 bpu::Metadata& meta) override;

    void update(const bpu::ResolveEvent& ev) override;

    const char* typeKey() const override { return "ubtb"; }

    void saveState(warp::StateWriter& w) const override;
    void restoreState(warp::StateReader& r) override;

    std::uint64_t storageBits() const override;

    /** Fully-associative: tags are CAM bits, payload is flops. */
    phys::PhysicalCost physicalCost() const override;

    phys::AccessProfile
    predictAccess() const override
    {
        phys::AccessProfile a;
        a.camSearchBits = 46ull * params_.entries;
        a.sramReadBits = storageBits() / params_.entries;
        return a;
    }

    phys::AccessProfile
    updateAccess() const override
    {
        phys::AccessProfile a;
        a.sramWriteBits = storageBits() / params_.entries;
        return a;
    }

    std::string describe() const override;

    /** Fault injection: flip a hysteresis-counter or target bit. */
    bool
    flipStateBit(std::uint64_t rand) override
    {
        if (entries_.empty())
            return false;
        Entry& e = entries_[rand % entries_.size()];
        const std::uint64_t pick = rand >> 32;
        if (e.valid && (pick & 1) != 0 && e.target != kInvalidAddr) {
            e.target ^= 1ull << ((pick >> 1) % 32);
        } else {
            const unsigned bit = static_cast<unsigned>(
                (pick >> 1) % e.ctr.numBits());
            e.ctr.set(e.ctr.value() ^ (1u << bit));
        }
        return true;
    }

  private:
    struct Entry
    {
        bool valid = false;
        Addr pc = kInvalidAddr;      ///< Fetch-packet PC (full tag).
        unsigned slot = 0;
        Addr target = kInvalidAddr;
        bpu::CfiType type = bpu::CfiType::None;
        bool isCall = false;
        bool isRet = false;
        SatCounter ctr;              ///< Taken hysteresis.
        std::uint32_t lruStamp = 0;
    };

    Entry* lookup(Addr pc);

    MicroBtbParams params_;
    std::vector<Entry> entries_;
    std::uint32_t stamp_ = 0;
};

} // namespace cobra::comps

#endif // COBRA_COMPONENTS_BTB_HPP
