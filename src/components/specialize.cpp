/**
 * @file
 * The specialization registry's concrete side: maps component
 * typeKey() tags to devirtualized call tables over the library's
 * final component classes, and pre-registers the composed tuples of
 * the paper's designs. Lives in components/ (not bpu/) because it is
 * the one place the composition layer is allowed to know every
 * concrete type.
 */

#include "bpu/specialize.hpp"

#include <algorithm>
#include <mutex>
#include <set>
#include <string_view>

#include "components/bim.hpp"
#include "components/btb.hpp"
#include "components/gtag.hpp"
#include "components/ittage.hpp"
#include "components/loop.hpp"
#include "components/perceptron.hpp"
#include "components/stat_corrector.hpp"
#include "components/tage.hpp"
#include "components/tourney.hpp"
#include "components/yags.hpp"

namespace cobra::bpu::spec {

const CompOps*
opsFor(const PredictorComponent& c)
{
    const std::string_view k = c.typeKey();
    if (k.empty())
        return nullptr;
    if (k == "bim")
        return opsOf<comps::Hbim>();
    if (k == "btb")
        return opsOf<comps::Btb>();
    if (k == "ubtb")
        return opsOf<comps::MicroBtb>();
    if (k == "gtag")
        return opsOf<comps::Gtag>();
    if (k == "tage")
        return opsOf<comps::Tage>();
    if (k == "loop")
        return opsOf<comps::LoopPredictor>();
    if (k == "tourney")
        return opsOf<comps::Tourney>();
    if (k == "ittage")
        return opsOf<comps::Ittage>();
    if (k == "perceptron")
        return opsOf<comps::Perceptron>();
    if (k == "scl")
        return opsOf<comps::StatCorrector>();
    if (k == "yags")
        return opsOf<comps::Yags>();
    return nullptr;
}

namespace {

std::mutex&
registryMutex()
{
    static std::mutex m;
    return m;
}

std::set<std::string>&
registry()
{
    // The paper's evaluated tuples (sim/presets.cpp): Tournament, B2,
    // and the TAGE-L chain that REF-BIG shares.
    static std::set<std::string> keys = {
        "tourney[bim>btb,bim]",
        "gtag>btb>bim",
        "loop>tage>btb>bim>ubtb",
    };
    return keys;
}

} // namespace

bool
isRegisteredKey(const std::string& key)
{
    if (key.empty())
        return false;
    std::lock_guard<std::mutex> lock(registryMutex());
    return registry().count(key) != 0;
}

void
registerKey(const std::string& key)
{
    if (key.empty())
        return;
    std::lock_guard<std::mutex> lock(registryMutex());
    registry().insert(key);
}

std::vector<std::string>
registeredKeys()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    return {registry().begin(), registry().end()};
}

} // namespace cobra::bpu::spec
