#include "components/perceptron.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <sstream>

#include "common/bitutil.hpp"
#include "warp/state_util.hpp"

namespace cobra::comps {

Perceptron::Perceptron(std::string name, const PerceptronParams& p)
    : PredictorComponent(std::move(name), p.latency, p.fetchWidth),
      params_(p)
{
    assert(isPow2(p.entries));
    assert(p.latency >= 2);
    table_.resize(p.entries);
    for (auto& e : table_)
        e.weights.assign(p.histBits + 1,
                         SignedSatCounter(p.weightBits, 0));
}

std::size_t
Perceptron::indexOf(Addr pc) const
{
    const std::uint64_t pcBits = pc >> (2 + ceilLog2(fetchWidth()));
    return static_cast<std::size_t>(pcBits & maskBits(
        ceilLog2(params_.entries)));
}

int
Perceptron::dot(const Entry& e, const HistoryRegister& gh) const
{
    int y = e.weights[0].value(); // Bias.
    for (unsigned i = 0; i < params_.histBits; ++i) {
        const int x = (i < gh.length() && gh.bit(i)) ? 1 : -1;
        y += x * e.weights[i + 1].value();
    }
    return y;
}

void
Perceptron::predict(const bpu::PredictContext& ctx,
                    bpu::PredictionBundle& inout, bpu::Metadata& meta)
{
    const HistoryRegister& gh = requireGhist(ctx);
    const Entry& e = table_[indexOf(ctx.pc)];
    const int y = dot(e, gh);
    const bool taken = y >= 0;
    const std::uint64_t mag = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(std::abs(y)), 0xffff);
    meta[0] = (e.slot) | (taken ? (1ull << 3) : 0) | (mag << 4);

    // Single prediction per packet, at the learned slot (§III-C).
    if (e.slot < ctx.validSlots) {
        inout.slots[e.slot].valid = true;
        inout.slots[e.slot].taken = taken;
    }
}

void
Perceptron::update(const bpu::ResolveEvent& ev)
{
    assert(ev.ghist != nullptr);
    Entry& e = table_[indexOf(ev.pc)];
    const unsigned predSlot = static_cast<unsigned>((*ev.meta)[0] & 0x7);
    const bool predTaken = ((*ev.meta)[0] >> 3) & 1;
    const int mag = static_cast<int>(((*ev.meta)[0] >> 4) & 0xffff);

    // Re-learn the slot: track the packet's first conditional branch.
    unsigned slot = bpu::kMaxFetchWidth;
    for (unsigned i = 0; i < fetchWidth(); ++i) {
        if (ev.brMask[i]) {
            slot = i;
            break;
        }
    }
    if (slot >= bpu::kMaxFetchWidth)
        return;
    e.slot = slot;

    const bool taken = ev.takenMask[slot];
    const bool mispredHere = predSlot != slot || predTaken != taken;
    if (mispredHere || mag <= params_.theta()) {
        e.weights[0].train(taken);
        for (unsigned i = 0; i < params_.histBits; ++i) {
            const bool h = i < ev.ghist->length() && ev.ghist->bit(i);
            e.weights[i + 1].train(h == taken);
        }
    }
}

std::string
Perceptron::describe() const
{
    std::ostringstream oss;
    oss << name() << ": " << params_.entries << " perceptrons x "
        << params_.histBits << " weights, latency " << latency();
    return oss.str();
}

void
Perceptron::saveState(warp::StateWriter& w) const
{
    w.u64(table_.size());
    for (const Entry& e : table_) {
        warp::saveSignedVec(w, e.weights);
        w.u32(e.slot);
    }
}

void
Perceptron::restoreState(warp::StateReader& r)
{
    if (r.u64() != table_.size())
        r.fail("perceptron entry count does not match");
    for (Entry& e : table_) {
        warp::loadSignedVec(r, e.weights);
        e.slot = r.u32();
    }
}

} // namespace cobra::comps
