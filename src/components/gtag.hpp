/**
 * @file
 * GTAG: a single partially tagged, global-history-indexed counter
 * table — the backing direction predictor of the paper's "B2" design
 * (a model of the original BOOM predictor: 2K partially tagged
 * counters over a 16-bit global history).
 */

#ifndef COBRA_COMPONENTS_GTAG_HPP
#define COBRA_COMPONENTS_GTAG_HPP

#include <vector>

#include "bpu/component.hpp"
#include "common/sat_counter.hpp"

namespace cobra::comps {

/** Parameters for the GTAG table. */
struct GtagParams
{
    unsigned sets = 512;     ///< Rows; entries = sets * fetchWidth.
    unsigned ctrBits = 2;
    unsigned tagBits = 7;    ///< Partial tag.
    unsigned histBits = 16;  ///< Global history folded into the index.
    unsigned latency = 3;
    unsigned fetchWidth = 4;
};

/**
 * Partially tagged gshare-style table with per-counter tags: each
 * counter predicts only on its own tag hit, passing predict_in
 * through on a miss; counters are allocated on direction mispredicts.
 */
class Gtag final : public bpu::PredictorComponent
{
  public:
    Gtag(std::string name, const GtagParams& p);

    unsigned metaBits() const override
    {
        // Per-slot hit mask + counters read.
        return 8 + fetchWidth() * params_.ctrBits;
    }

    void predict(const bpu::PredictContext& ctx,
                 bpu::PredictionBundle& inout,
                 bpu::Metadata& meta) override;

    void update(const bpu::ResolveEvent& ev) override;

    const char* typeKey() const override { return "gtag"; }

    void prefetch(const bpu::PredictContext& ctx) const override;

    void saveState(warp::StateWriter& w) const override;
    void restoreState(warp::StateReader& r) override;

    phys::AccessProfile
    predictAccess() const override
    {
        phys::AccessProfile a;
        a.sramReadBits = fetchWidth() *
                         (params_.tagBits + 1 + params_.ctrBits);
        return a;
    }

    phys::AccessProfile
    updateAccess() const override
    {
        phys::AccessProfile a;
        a.sramWriteBits = fetchWidth() *
                          (params_.tagBits + 1 + params_.ctrBits);
        return a;
    }

    std::uint64_t
    storageBits() const override
    {
        // Per counter: tag + valid + counter.
        return static_cast<std::uint64_t>(params_.sets) * fetchWidth() *
               (params_.tagBits + 1 + params_.ctrBits);
    }

    std::string describe() const override;

    const GtagParams& params() const { return params_; }

  private:
    std::size_t indexOf(Addr pc, const HistoryRegister& gh) const;
    std::uint32_t tagOf(Addr pc, const HistoryRegister& gh) const;

    GtagParams params_;
    /** SoA strips, sets * fetchWidth each: entry (row r, slot i) is
     *  index r*fetchWidth+i. A probe touches one dense run per strip
     *  instead of chasing three per-row heap vectors. */
    std::vector<std::uint8_t> valids_;
    std::vector<std::uint32_t> tags_;
    std::vector<SatCounter> ctrs_;
};

} // namespace cobra::comps

#endif // COBRA_COMPONENTS_GTAG_HPP
