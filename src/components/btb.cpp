#include "components/btb.hpp"

#include <cassert>
#include <sstream>

#include "common/bitutil.hpp"
#include "warp/state_util.hpp"

namespace cobra::comps {

// ---------------------------------------------------------------------
// Set-associative BTB
// ---------------------------------------------------------------------

Btb::Btb(std::string name, const BtbParams& p)
    : PredictorComponent(std::move(name), p.latency, p.fetchWidth),
      params_(p), rng_(0xB7B)
{
    assert(isPow2(p.sets));
    ways_.resize(static_cast<std::size_t>(p.sets) * p.ways);
    slots_.assign(static_cast<std::size_t>(p.sets) * p.ways * p.fetchWidth,
                  SlotEntry{});
}

std::size_t
Btb::setOf(Addr pc) const
{
    const std::uint64_t pcBits = pc >> (2 + ceilLog2(fetchWidth()));
    return static_cast<std::size_t>(pcBits & maskBits(
        ceilLog2(params_.sets)));
}

std::uint64_t
Btb::tagOf(Addr pc) const
{
    const std::uint64_t pcBits = pc >> (2 + ceilLog2(fetchWidth()));
    return (pcBits >> ceilLog2(params_.sets)) & maskBits(params_.tagBits);
}

void
Btb::predict(const bpu::PredictContext& ctx, bpu::PredictionBundle& inout,
             bpu::Metadata& meta)
{
    const std::size_t set = setOf(ctx.pc);
    const std::uint64_t tag = tagOf(ctx.pc);

    unsigned hitWay = 0;
    bool hit = false;
    unsigned victim = 0;
    std::uint32_t oldest = UINT32_MAX;
    for (unsigned w = 0; w < params_.ways; ++w) {
        Way& way = ways_[set * params_.ways + w];
        if (way.valid && way.tag == tag) {
            hit = true;
            hitWay = w;
            way.lruStamp = ++stamp_;
            break;
        }
        const std::uint32_t age = way.valid ? way.lruStamp : 0;
        if (age < oldest) {
            oldest = age;
            victim = w;
        }
    }

    // Metadata (§III-D): hit flag, hit way, victim way for allocation.
    const unsigned wayBits = ceilLog2(params_.ways);
    meta[0] = (hit ? 1u : 0u) |
              (static_cast<std::uint64_t>(hitWay) << 1) |
              (static_cast<std::uint64_t>(victim) << (1 + wayBits));

    if (!hit)
        return; // Pass the incoming prediction through (Fig. 3).

    const SlotEntry* waySlots =
        &slots_[(set * params_.ways + hitWay) * fetchWidth()];
    for (unsigned i = 0; i < ctx.validSlots && i < inout.width; ++i) {
        const SlotEntry& se = waySlots[i];
        if (!se.valid)
            continue;
        auto& out = inout.slots[i];
        // Augment the incoming prediction with target and type; the
        // direction for conditional branches is left to predict_in.
        out.targetValid = true;
        out.target = se.target;
        out.type = se.type;
        out.isCall = se.isCall;
        out.isRet = se.isRet;
        if (se.type != bpu::CfiType::Br) {
            // Unconditional CF: always redirects.
            out.valid = true;
            out.taken = true;
        } else if (!out.valid) {
            // A known branch with no direction prediction yet: weakly
            // predict taken (the BTB only learned it because it was
            // taken at least once).
            out.valid = true;
            out.taken = true;
        }
    }
}

void
Btb::update(const bpu::ResolveEvent& ev)
{
    // The BTB learns taken control-flow instructions.
    if (!ev.cfiValid || !ev.cfiTaken || ev.target == kInvalidAddr)
        return;

    const std::size_t set = setOf(ev.pc);
    const std::uint64_t tag = tagOf(ev.pc);
    const unsigned wayBits = ceilLog2(params_.ways);
    const bool hadHit = (*ev.meta)[0] & 1;
    const unsigned hitWay = static_cast<unsigned>(
        ((*ev.meta)[0] >> 1) & maskBits(wayBits));
    const unsigned victim = static_cast<unsigned>(
        ((*ev.meta)[0] >> (1 + wayBits)) & maskBits(wayBits));

    unsigned w = hadHit ? hitWay : victim;
    // Re-probe in case the set changed since predict time.
    for (unsigned i = 0; i < params_.ways; ++i) {
        const Way& cand = ways_[set * params_.ways + i];
        if (cand.valid && cand.tag == tag) {
            w = i;
            break;
        }
    }

    Way& way = ways_[set * params_.ways + w];
    SlotEntry* waySlots = &slots_[(set * params_.ways + w) * fetchWidth()];
    if (!way.valid || way.tag != tag) {
        way.valid = true;
        way.tag = tag;
        for (unsigned i = 0; i < fetchWidth(); ++i)
            waySlots[i] = SlotEntry{};
    }
    way.lruStamp = ++stamp_;

    if (ev.cfiIdx < fetchWidth()) {
        SlotEntry& se = waySlots[ev.cfiIdx];
        se.valid = true;
        se.target = ev.target;
        se.type = ev.cfiType;
        se.isCall = ev.cfiIsCall;
        se.isRet = ev.cfiIsRet;
    }
}

void
Btb::prefetch(const bpu::PredictContext& ctx) const
{
    // Host cache hint only: pull the indexed set's tag strip and its
    // first way's slot run into cache one packet ahead of predict().
    const std::size_t set = setOf(ctx.pc);
    __builtin_prefetch(&ways_[set * params_.ways], 0, 1);
    __builtin_prefetch(&slots_[set * params_.ways * fetchWidth()], 0, 1);
}

std::uint64_t
Btb::storageBits() const
{
    // Per way: tag + valid; per slot: valid + type(2) + call/ret(2) +
    // target offset (we store 30 target bits, a common compression).
    const std::uint64_t perSlot = 1 + 2 + 2 + 30;
    const std::uint64_t perWay = params_.tagBits + 1 +
                                 perSlot * fetchWidth();
    return perWay * params_.sets * params_.ways;
}

std::string
Btb::describe() const
{
    std::ostringstream oss;
    oss << name() << ": " << params_.sets * params_.ways * fetchWidth()
        << "-entry BTB (" << params_.sets << " sets x " << params_.ways
        << " ways x " << fetchWidth() << " slots), latency " << latency();
    return oss.str();
}

// ---------------------------------------------------------------------
// Micro-BTB
// ---------------------------------------------------------------------

MicroBtb::MicroBtb(std::string name, const MicroBtbParams& p)
    : PredictorComponent(std::move(name), /*latency=*/1, p.fetchWidth),
      params_(p)
{
    entries_.resize(p.entries);
    for (auto& e : entries_)
        e.ctr = SatCounter(p.ctrBits, (1u << p.ctrBits) - 1);
}

MicroBtb::Entry*
MicroBtb::lookup(Addr pc)
{
    for (auto& e : entries_)
        if (e.valid && e.pc == pc)
            return &e;
    return nullptr;
}

void
MicroBtb::predict(const bpu::PredictContext& ctx,
                  bpu::PredictionBundle& inout, bpu::Metadata& meta)
{
    // 1-cycle component: PC only, never touches ctx.ghist (§III-B).
    Entry* e = lookup(ctx.pc);
    meta[0] = 0;
    if (e == nullptr)
        return;
    e->lruStamp = ++stamp_;
    meta[0] = 1u | (static_cast<std::uint64_t>(e - entries_.data()) << 1);
    if (!e->ctr.taken() || e->slot >= ctx.validSlots)
        return;
    auto& out = inout.slots[e->slot];
    out.valid = true;
    out.taken = true;
    out.targetValid = true;
    out.target = e->target;
    out.type = e->type;
    out.isCall = e->isCall;
    out.isRet = e->isRet;
}

void
MicroBtb::update(const bpu::ResolveEvent& ev)
{
    Entry* e = lookup(ev.pc);
    if (ev.cfiValid && ev.cfiTaken && ev.target != kInvalidAddr) {
        if (e == nullptr) {
            // Allocate the LRU entry.
            Entry* victim = &entries_[0];
            for (auto& cand : entries_) {
                if (!cand.valid) {
                    victim = &cand;
                    break;
                }
                if (cand.lruStamp < victim->lruStamp)
                    victim = &cand;
            }
            e = victim;
            e->valid = true;
            e->pc = ev.pc;
            e->ctr = SatCounter(params_.ctrBits,
                                (1u << params_.ctrBits) - 1);
        }
        e->slot = ev.cfiIdx;
        e->target = ev.target;
        e->type = ev.cfiType;
        e->isCall = ev.cfiIsCall;
        e->isRet = ev.cfiIsRet;
        e->ctr.increment();
        e->lruStamp = ++stamp_;
    } else if (e != nullptr) {
        // The remembered CFI did not redirect this time; decay.
        e->ctr.decrement();
    }
}

std::uint64_t
MicroBtb::storageBits() const
{
    // Full tag (46b of PC), slot index, 30b target, type/call/ret, ctr.
    const std::uint64_t perEntry = 46 + ceilLog2(fetchWidth()) + 30 + 4 +
                                   params_.ctrBits + 1;
    return perEntry * params_.entries;
}

phys::PhysicalCost
MicroBtb::physicalCost() const
{
    phys::PhysicalCost c;
    c.camBits = 46ull * params_.entries;
    c.flopBits = storageBits() - c.camBits;
    c.logicGates = 50 * params_.entries;
    return c;
}

std::string
MicroBtb::describe() const
{
    std::ostringstream oss;
    oss << name() << ": " << params_.entries
        << "-entry fully-associative uBTB, latency 1";
    return oss.str();
}

void
Btb::saveState(warp::StateWriter& w) const
{
    w.u64(ways_.size());
    for (std::size_t wi = 0; wi < ways_.size(); ++wi) {
        const Way& way = ways_[wi];
        w.boolean(way.valid);
        w.u64(way.tag);
        w.u32(way.lruStamp);
        w.u64(fetchWidth());
        for (unsigned i = 0; i < fetchWidth(); ++i) {
            const SlotEntry& s = slots_[wi * fetchWidth() + i];
            w.boolean(s.valid);
            w.u64(s.target);
            w.u8(static_cast<std::uint8_t>(s.type));
            w.boolean(s.isCall);
            w.boolean(s.isRet);
        }
    }
    w.u32(stamp_);
    warp::saveRng(w, rng_);
}

void
Btb::restoreState(warp::StateReader& r)
{
    if (r.u64() != ways_.size())
        r.fail("BTB way count does not match");
    for (std::size_t wi = 0; wi < ways_.size(); ++wi) {
        Way& way = ways_[wi];
        way.valid = r.boolean();
        way.tag = r.u64();
        way.lruStamp = r.u32();
        if (r.u64() != fetchWidth())
            r.fail("BTB slot count does not match");
        for (unsigned i = 0; i < fetchWidth(); ++i) {
            SlotEntry& s = slots_[wi * fetchWidth() + i];
            s.valid = r.boolean();
            s.target = r.u64();
            s.type = static_cast<bpu::CfiType>(r.u8());
            s.isCall = r.boolean();
            s.isRet = r.boolean();
        }
    }
    stamp_ = r.u32();
    warp::loadRng(r, rng_);
}

void
MicroBtb::saveState(warp::StateWriter& w) const
{
    w.u64(entries_.size());
    for (const Entry& e : entries_) {
        w.boolean(e.valid);
        w.u64(e.pc);
        w.u32(e.slot);
        w.u64(e.target);
        w.u8(static_cast<std::uint8_t>(e.type));
        w.boolean(e.isCall);
        w.boolean(e.isRet);
        warp::saveSat(w, e.ctr);
        w.u32(e.lruStamp);
    }
    w.u32(stamp_);
}

void
MicroBtb::restoreState(warp::StateReader& r)
{
    if (r.u64() != entries_.size())
        r.fail("uBTB entry count does not match");
    for (Entry& e : entries_) {
        e.valid = r.boolean();
        e.pc = r.u64();
        e.slot = r.u32();
        e.target = r.u64();
        e.type = static_cast<bpu::CfiType>(r.u8());
        e.isCall = r.boolean();
        e.isRet = r.boolean();
        warp::loadSat(r, e.ctr);
        e.lruStamp = r.u32();
    }
    stamp_ = r.u32();
}

} // namespace cobra::comps
