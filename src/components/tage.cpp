#include "components/tage.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "common/bitutil.hpp"
#include "warp/state_util.hpp"

namespace cobra::comps {

namespace {

/** Per-slot metadata layout (12 bits per slot). */
constexpr unsigned kSlotMetaBits = 12;

/** Upper bound on tagged tables; lets predict/update use fixed
 *  stack arrays instead of per-call heap vectors. The provider field
 *  in the slot metadata is 4 bits (table + 1), so 15 is also the
 *  metadata format's limit. */
constexpr unsigned kMaxTables = 15;
constexpr unsigned kProviderShift = 0; // 4 bits, value = table + 1.
constexpr unsigned kCtrShift = 4;      // 3 bits.
constexpr unsigned kAltTakenShift = 7;
constexpr unsigned kAltValidShift = 8;
constexpr unsigned kUsedAltShift = 9;
constexpr unsigned kFinalShift = 10;
constexpr unsigned kNewAllocShift = 11;

// Four slots per 64-bit word so no slot straddles a word boundary.
std::uint64_t
getSlotMeta(const bpu::Metadata& m, unsigned slot)
{
    const unsigned word = slot / 4;
    const unsigned off = (slot % 4) * kSlotMetaBits;
    return (m[word] >> off) & maskBits(kSlotMetaBits);
}

void
setSlotMeta(bpu::Metadata& m, unsigned slot, std::uint64_t v)
{
    const unsigned word = slot / 4;
    const unsigned off = (slot % 4) * kSlotMetaBits;
    m[word] &= ~(maskBits(kSlotMetaBits) << off);
    m[word] |= (v & maskBits(kSlotMetaBits)) << off;
}

} // namespace

TageParams
TageParams::tageL(unsigned fetch_width)
{
    TageParams p;
    p.fetchWidth = fetch_width;
    p.latency = 3;
    // Geometric history lengths over a 64-bit global history,
    // mirroring the paper's 7-table TAGE-L (Table I).
    const unsigned lens[7] = {4, 7, 12, 20, 32, 48, 64};
    for (unsigned i = 0; i < 7; ++i) {
        TageTableParams t;
        t.sets = 512;
        t.histLen = lens[i];
        t.tagBits = 9 + i / 3; // 9..11-bit tags, longer for long hist.
        p.tables.push_back(t);
    }
    return p;
}

Tage::Tage(std::string name, const TageParams& p)
    : PredictorComponent(std::move(name), p.latency, p.fetchWidth),
      params_(p), rng_(0x7A6E)
{
    assert(!p.tables.empty());
    assert(p.tables.size() <= kMaxTables);
    assert(p.latency >= 2);
    assert(p.ctrBits >= 2 && p.ctrBits <= 4);
    for (const auto& tp : p.tables) {
        assert(isPow2(tp.sets));
        Table t;
        t.p = tp;
        t.rows.resize(tp.sets);
        t.ctrs.assign(static_cast<std::size_t>(tp.sets) * p.fetchWidth,
                      SatCounter(p.ctrBits, (1u << p.ctrBits) / 2));
        tables_.push_back(std::move(t));
    }
}

unsigned
Tage::metaBits() const
{
    return fetchWidth() * kSlotMetaBits;
}

phys::AccessProfile
Tage::predictAccess() const
{
    phys::AccessProfile a;
    for (const auto& t : tables_) {
        a.sramReadBits += 1 + t.p.tagBits + params_.uBits +
                          fetchWidth() * params_.ctrBits;
    }
    return a;
}

phys::AccessProfile
Tage::updateAccess() const
{
    phys::AccessProfile a;
    // Provider training + (occasional) allocation: ~1-2 row writes.
    a.sramWriteBits = 2 * (1 + tables_.back().p.tagBits + params_.uBits +
                           fetchWidth() * params_.ctrBits);
    return a;
}

unsigned
Tage::maxHistLen() const
{
    unsigned m = 0;
    for (const auto& t : tables_)
        m = std::max(m, t.p.histLen);
    return m;
}

bool
Tage::flipStateBit(std::uint64_t rand)
{
    if (tables_.empty())
        return false;
    Table& t = tables_[rand % tables_.size()];
    if (t.rows.empty())
        return false;
    const std::size_t ri = (rand >> 8) % t.rows.size();
    Row& r = t.rows[ri];
    const std::uint64_t pick = rand >> 32;
    if (t.p.tagBits > 0 && (fetchWidth() == 0 || (pick & 1) != 0)) {
        // Tag bit: the row now misses (or aliases) for its branch.
        r.tag ^= 1u << ((pick >> 1) % t.p.tagBits);
        return true;
    }
    if (fetchWidth() == 0)
        return false;
    SatCounter& c =
        t.ctrs[ri * fetchWidth() + (pick >> 1) % fetchWidth()];
    const unsigned bit = static_cast<unsigned>((pick >> 16) % c.numBits());
    c.set(c.value() ^ (1u << bit));
    return true;
}

std::size_t
Tage::indexOf(const Table& t, Addr pc, const HistoryRegister& gh) const
{
    const unsigned idxBits = ceilLog2(t.p.sets);
    const std::uint64_t pcBits = pc >> (2 + ceilLog2(fetchWidth()));
    const std::uint64_t folded = gh.folded(t.p.histLen, idxBits);
    return static_cast<std::size_t>(
        (pcBits ^ (pcBits >> idxBits) ^ folded) & maskBits(idxBits));
}

std::uint32_t
Tage::tagOf(const Table& t, Addr pc, const HistoryRegister& gh) const
{
    const std::uint64_t pcBits = pc >> (2 + ceilLog2(fetchWidth()));
    // A second, differently folded hash decorrelates tag from index.
    const std::uint64_t folded = gh.folded(t.p.histLen, t.p.tagBits) ^
                                 (gh.folded(t.p.histLen, t.p.tagBits - 1)
                                  << 1);
    return static_cast<std::uint32_t>(
        (pcBits ^ folded ^ (pcBits >> 7)) & maskBits(t.p.tagBits));
}

void
Tage::predict(const bpu::PredictContext& ctx, bpu::PredictionBundle& inout,
              bpu::Metadata& meta)
{
    const HistoryRegister& gh = requireGhist(ctx);
    const unsigned n = static_cast<unsigned>(tables_.size());

    bool hit[kMaxTables];
    std::size_t idx[kMaxTables];
    for (unsigned t = 0; t < n; ++t) {
        idx[t] = indexOf(tables_[t], ctx.pc, gh);
        const Row& row = tables_[t].rows[idx[t]];
        hit[t] = row.valid && row.tag == tagOf(tables_[t], ctx.pc, gh);
    }

    for (unsigned i = 0; i < ctx.validSlots && i < inout.width; ++i) {
        int provider = -1;
        int alt = -1;
        for (int t = static_cast<int>(n) - 1; t >= 0; --t) {
            if (!hit[t])
                continue;
            if (provider < 0) {
                provider = t;
            } else {
                alt = t;
                break;
            }
        }

        std::uint64_t m = 0;
        if (provider >= 0) {
            const Table& ptab = tables_[provider];
            const Row& prow = ptab.rows[idx[provider]];
            const SatCounter& ctr =
                ptab.ctrs[idx[provider] * fetchWidth() + i];
            const bool providerTaken = ctr.taken();
            const unsigned mid = (1u << params_.ctrBits) / 2;
            const bool weak = ctr.value() == mid || ctr.value() == mid - 1;
            const bool newAlloc = prow.u == 0 && weak;

            bool altValid = false;
            bool altTaken = false;
            if (alt >= 0) {
                altValid = true;
                altTaken = tables_[alt]
                               .ctrs[idx[alt] * fetchWidth() + i]
                               .taken();
            } else if (inout.slots[i].valid) {
                // The base predictor below TAGE is the alternate.
                altValid = true;
                altTaken = inout.slots[i].taken;
            }

            const bool useAlt =
                newAlloc && useAltOnNa_.positive() && altValid;
            const bool finalTaken = useAlt ? altTaken : providerTaken;

            if (!(useAlt && alt < 0)) {
                // Unless we defer to predict_in itself, override.
                inout.slots[i].valid = true;
                inout.slots[i].taken = finalTaken;
            }

            m |= (static_cast<std::uint64_t>(provider + 1)
                  << kProviderShift);
            m |= (static_cast<std::uint64_t>(ctr.value()) << kCtrShift);
            m |= (altTaken ? 1ull : 0ull) << kAltTakenShift;
            m |= (altValid ? 1ull : 0ull) << kAltValidShift;
            m |= (useAlt ? 1ull : 0ull) << kUsedAltShift;
            m |= (finalTaken ? 1ull : 0ull) << kFinalShift;
            m |= (newAlloc ? 1ull : 0ull) << kNewAllocShift;
        }
        setSlotMeta(meta, i, m);
    }
}

void
Tage::update(const bpu::ResolveEvent& ev)
{
    assert(ev.ghist != nullptr);
    const HistoryRegister& gh = *ev.ghist;
    const unsigned n = static_cast<unsigned>(tables_.size());

    std::size_t idx[kMaxTables];
    std::uint32_t tag[kMaxTables];
    for (unsigned t = 0; t < n; ++t) {
        idx[t] = indexOf(tables_[t], ev.pc, gh);
        tag[t] = tagOf(tables_[t], ev.pc, gh);
    }

    for (unsigned i = 0; i < fetchWidth(); ++i) {
        if (!ev.brMask[i])
            continue;
        const bool taken = ev.takenMask[i];
        const std::uint64_t m = getSlotMeta(*ev.meta, i);
        const unsigned providerPlus1 = static_cast<unsigned>(
            (m >> kProviderShift) & 0xf);
        const unsigned pctr = static_cast<unsigned>((m >> kCtrShift) & 0x7);
        const bool altTaken = (m >> kAltTakenShift) & 1;
        const bool altValid = (m >> kAltValidShift) & 1;
        const bool finalTaken = (m >> kFinalShift) & 1;
        const bool newAlloc = (m >> kNewAllocShift) & 1;
        const unsigned mid = (1u << params_.ctrBits) / 2;
        const bool providerTaken = pctr >= mid;

        int provider = static_cast<int>(providerPlus1) - 1;
        bool providerValidNow = false;
        if (provider >= 0) {
            Table& ptab = tables_[provider];
            Row& prow = ptab.rows[idx[provider]];
            providerValidNow = prow.valid && prow.tag == tag[provider];
            if (providerValidNow) {
                ptab.ctrs[idx[provider] * fetchWidth() + i].train(taken);
                // Useful bit: provider disagreed with alternate and
                // was right (or wrong).
                if (altValid && providerTaken != altTaken) {
                    if (providerTaken == taken) {
                        if (prow.u < maskBits(params_.uBits))
                            ++prow.u;
                    } else if (prow.u > 0) {
                        --prow.u;
                    }
                }
            }
            // Track whether newly allocated entries should be trusted.
            if (newAlloc && altValid && providerTaken != altTaken)
                useAltOnNa_.train(altTaken == taken);
        }

        // Allocate a longer-history entry when the overall TAGE
        // prediction (what this component emitted) was wrong. With no
        // provider the pass-through (base) prediction was effective.
        const bool hadPrediction = providerPlus1 != 0;
        const bool mispredHere = hadPrediction
                                     ? (finalTaken != taken)
                                     : ev.slotMispredicted(i);
        const unsigned start = static_cast<unsigned>(provider + 1);
        if (mispredHere && start < n) {
            // Gather u==0 candidates among longer tables.
            unsigned numFree = 0;
            for (unsigned t = start; t < n; ++t)
                if (tables_[t].rows[idx[t]].u == 0)
                    ++numFree;
            if (numFree == 0) {
                for (unsigned t = start; t < n; ++t) {
                    Row& r = tables_[t].rows[idx[t]];
                    if (r.u > 0)
                        --r.u;
                }
            } else {
                // Prefer shorter tables with probability 1/2 per skip
                // (Seznec's randomized allocation).
                unsigned pick = 0;
                unsigned seen = 0;
                for (unsigned t = start; t < n; ++t) {
                    if (tables_[t].rows[idx[t]].u != 0)
                        continue;
                    pick = t;
                    ++seen;
                    if (seen == numFree || !rng_.chance(0.5))
                        break;
                }
                Table& at = tables_[pick];
                Row& r = at.rows[idx[pick]];
                r.valid = true;
                r.tag = tag[pick];
                r.u = 0;
                SatCounter* rowCtrs = &at.ctrs[idx[pick] * fetchWidth()];
                for (unsigned s = 0; s < fetchWidth(); ++s)
                    rowCtrs[s] = SatCounter(params_.ctrBits, mid);
                rowCtrs[i] = SatCounter(params_.ctrBits,
                                        taken ? mid : mid - 1);
            }
        }

        if (++updateCount_ % params_.uDecayPeriod == 0)
            decayUseful();
    }
}

void
Tage::decayUseful()
{
    for (auto& t : tables_)
        for (auto& r : t.rows)
            r.u >>= 1;
}

std::uint64_t
Tage::storageBits() const
{
    std::uint64_t bits = 0;
    for (const auto& t : tables_) {
        const std::uint64_t perRow =
            1 + t.p.tagBits + params_.uBits +
            static_cast<std::uint64_t>(fetchWidth()) * params_.ctrBits;
        bits += perRow * t.p.sets;
    }
    return bits;
}

std::string
Tage::describe() const
{
    std::ostringstream oss;
    oss << name() << ": " << tables_.size() << " tagged tables (";
    for (std::size_t i = 0; i < tables_.size(); ++i) {
        if (i)
            oss << ",";
        oss << tables_[i].p.histLen;
    }
    oss << "b hist), latency " << latency();
    return oss.str();
}

void
Tage::prefetch(const bpu::PredictContext& ctx) const
{
    // Host cache hint only: pull each table's indexed row header and
    // counter run one packet ahead of predict(). Uses the caller's
    // current (speculative) history; a stale index is harmless.
    if (ctx.ghist == nullptr)
        return;
    for (const Table& t : tables_) {
        const std::size_t ri = indexOf(t, ctx.pc, *ctx.ghist);
        __builtin_prefetch(&t.rows[ri], 0, 1);
        __builtin_prefetch(&t.ctrs[ri * fetchWidth()], 0, 1);
    }
}

void
Tage::saveState(warp::StateWriter& w) const
{
    w.u64(tables_.size());
    for (const Table& t : tables_) {
        w.u64(t.rows.size());
        for (std::size_t ri = 0; ri < t.rows.size(); ++ri) {
            const Row& row = t.rows[ri];
            w.boolean(row.valid);
            w.u32(row.tag);
            w.u8(row.u);
            w.u64(fetchWidth());
            for (unsigned s = 0; s < fetchWidth(); ++s)
                warp::saveSat(w, t.ctrs[ri * fetchWidth() + s]);
        }
    }
    warp::saveSigned(w, useAltOnNa_);
    w.u64(updateCount_);
    warp::saveRng(w, rng_);
}

void
Tage::restoreState(warp::StateReader& r)
{
    if (r.u64() != tables_.size())
        r.fail("TAGE table count does not match");
    for (Table& t : tables_) {
        if (r.u64() != t.rows.size())
            r.fail("TAGE row count does not match");
        for (std::size_t ri = 0; ri < t.rows.size(); ++ri) {
            Row& row = t.rows[ri];
            row.valid = r.boolean();
            row.tag = r.u32();
            row.u = r.u8();
            if (r.u64() != fetchWidth())
                r.fail("TAGE counter count does not match");
            for (unsigned s = 0; s < fetchWidth(); ++s)
                warp::loadSat(r, t.ctrs[ri * fetchWidth() + s]);
        }
    }
    warp::loadSigned(r, useAltOnNa_);
    updateCount_ = r.u64();
    warp::loadRng(r, rng_);
}

} // namespace cobra::comps
