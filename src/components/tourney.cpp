#include "components/tourney.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "common/bitutil.hpp"
#include "warp/state_util.hpp"

namespace cobra::comps {

namespace {

constexpr unsigned kSlotBits = 8; // 4 flag bits + up to 4 counter bits.

} // namespace

Tourney::Tourney(std::string name, const TourneyParams& p)
    : PredictorComponent(std::move(name), p.latency, p.fetchWidth),
      params_(p)
{
    assert(isPow2(p.sets));
    assert(p.ctrBits <= 4);
    table_.assign(p.sets, SatCounter(p.ctrBits, (1u << p.ctrBits) / 2));
}

std::size_t
Tourney::indexOf(const HistoryRegister& gh) const
{
    const unsigned idxBits = ceilLog2(params_.sets);
    return static_cast<std::size_t>(gh.folded(params_.histBits, idxBits) &
                                    maskBits(idxBits));
}

void
Tourney::arbitrate(const bpu::PredictContext& ctx,
                   std::span<const bpu::PredictionBundle> inputs,
                   bpu::PredictionBundle& inout, bpu::Metadata& meta)
{
    assert(inputs.size() == 2 &&
           "tournament selector arbitrates exactly two inputs");
    const HistoryRegister& gh = requireGhist(ctx);
    const SatCounter& ctr = table_[indexOf(gh)];
    const bool preferFirst = ctr.taken();

    for (unsigned i = 0; i < ctx.validSlots && i < inout.width; ++i) {
        const auto& a = inputs[0].slots[i];
        const auto& b = inputs[1].slots[i];

        std::uint64_t m = (a.valid ? 1u : 0u) | (a.taken ? 2u : 0u) |
                          (b.valid ? 4u : 0u) | (b.taken ? 8u : 0u);
        m |= static_cast<std::uint64_t>(ctr.value()) << 4;
        meta[i / 4] |= m << ((i % 4) * kSlotBits);

        const bpu::PredictionSlot* chosen = nullptr;
        if (a.valid && b.valid)
            chosen = preferFirst ? &a : &b;
        else if (a.valid)
            chosen = &a;
        else if (b.valid)
            chosen = &b;
        if (chosen == nullptr)
            continue; // Neither input predicts: pass through.

        auto& out = inout.slots[i];
        out.valid = true;
        out.taken = chosen->taken;
        if (chosen->targetValid) {
            out.targetValid = true;
            out.target = chosen->target;
        }
        if (chosen->type != bpu::CfiType::None) {
            out.type = chosen->type;
            out.isCall = chosen->isCall;
            out.isRet = chosen->isRet;
        }
    }
}

void
Tourney::update(const bpu::ResolveEvent& ev)
{
    assert(ev.ghist != nullptr);
    SatCounter& ctr = table_[indexOf(*ev.ghist)];
    for (unsigned i = 0; i < fetchWidth(); ++i) {
        if (!ev.brMask[i])
            continue;
        const std::uint64_t m =
            ((*ev.meta)[i / 4] >> ((i % 4) * kSlotBits)) &
            maskBits(kSlotBits);
        const bool aValid = m & 1;
        const bool aTaken = m & 2;
        const bool bValid = m & 4;
        const bool bTaken = m & 8;
        if (!aValid || !bValid || aTaken == bTaken)
            continue; // No information unless the inputs disagreed.
        const bool taken = ev.takenMask[i];
        // Counter high = trust input 0.
        ctr.train(aTaken == taken);
    }
}

std::string
Tourney::describe() const
{
    std::ostringstream oss;
    oss << name() << ": " << params_.sets << " choice counters ("
        << params_.histBits << "b ghist index), latency " << latency();
    return oss.str();
}

void
Tourney::saveState(warp::StateWriter& w) const
{
    warp::saveSatVec(w, table_);
}

void
Tourney::restoreState(warp::StateReader& r)
{
    warp::loadSatVec(r, table_);
}

} // namespace cobra::comps
