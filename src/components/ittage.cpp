#include "components/ittage.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "common/bitutil.hpp"
#include "warp/state_util.hpp"

namespace cobra::comps {

Ittage::Ittage(std::string name, const IttageParams& p)
    : PredictorComponent(std::move(name), p.latency, p.fetchWidth),
      params_(p), rng_(0x177A6E)
{
    assert(isPow2(p.sets));
    assert(p.latency >= 2);
    for (unsigned t = 0; t < p.numTables; ++t) {
        Table tab;
        tab.histLen = p.baseHistLen << t;
        tab.rows.resize(p.sets);
        for (auto& r : tab.rows)
            r.conf = SatCounter(p.confBits, 1);
        tables_.push_back(std::move(tab));
    }
}

std::size_t
Ittage::indexOf(const Table& t, Addr pc, const HistoryRegister& gh) const
{
    const unsigned idxBits = ceilLog2(params_.sets);
    const std::uint64_t pcBits = pc >> (2 + ceilLog2(fetchWidth()));
    return static_cast<std::size_t>(
        (pcBits ^ gh.folded(t.histLen, idxBits) ^ (pcBits >> idxBits)) &
        maskBits(idxBits));
}

std::uint32_t
Ittage::tagOf(const Table& t, Addr pc, const HistoryRegister& gh) const
{
    const std::uint64_t pcBits = pc >> (2 + ceilLog2(fetchWidth()));
    return static_cast<std::uint32_t>(
        hashCombine(pcBits,
                    gh.folded(t.histLen, params_.tagBits) ^ t.histLen) &
        maskBits(params_.tagBits));
}

void
Ittage::predict(const bpu::PredictContext& ctx,
                bpu::PredictionBundle& inout, bpu::Metadata& meta)
{
    const HistoryRegister& gh = requireGhist(ctx);

    int provider = -1;
    for (int t = static_cast<int>(tables_.size()) - 1; t >= 0; --t) {
        const Row& row =
            tables_[t].rows[indexOf(tables_[t], ctx.pc, gh)];
        if (row.valid && row.tag == tagOf(tables_[t], ctx.pc, gh)) {
            provider = t;
            break;
        }
    }
    meta[0] = provider < 0 ? 0 : (1u | (provider << 1));
    if (provider < 0)
        return;

    const Row& row =
        tables_[provider].rows[indexOf(tables_[provider], ctx.pc, gh)];
    if (!row.conf.taken())
        return; // Not confident enough to override.

    // Override the target of the packet's indirect CF slots (the BTB
    // supplies the type; returns are the RAS's business).
    for (unsigned i = 0; i < ctx.validSlots && i < inout.width; ++i) {
        auto& slot = inout.slots[i];
        if (slot.type != bpu::CfiType::Jalr || slot.isRet)
            continue;
        slot.targetValid = true;
        slot.target = row.target;
        break; // One indirect per packet fetch.
    }
}

void
Ittage::update(const bpu::ResolveEvent& ev)
{
    assert(ev.ghist != nullptr);
    if (!ev.cfiValid || ev.cfiType != bpu::CfiType::Jalr ||
        ev.cfiIsRet || ev.target == kInvalidAddr) {
        return;
    }
    const HistoryRegister& gh = *ev.ghist;
    const bool hadHit = (*ev.meta)[0] & 1;
    const int provider =
        hadHit ? static_cast<int>(((*ev.meta)[0] >> 1) & 0x7) : -1;

    bool providerCorrect = false;
    if (provider >= 0) {
        Table& t = tables_[provider];
        Row& row = t.rows[indexOf(t, ev.pc, gh)];
        if (row.valid && row.tag == tagOf(t, ev.pc, gh)) {
            if (row.target == ev.target) {
                row.conf.increment();
                providerCorrect = true;
            } else {
                row.conf.decrement();
                if (row.conf.value() == 0)
                    row.target = ev.target; // Re-learn in place.
            }
        }
    }

    // Allocate a longer-history entry when no (or a wrong) provider.
    if (!providerCorrect) {
        const unsigned start = static_cast<unsigned>(provider + 1);
        if (start < tables_.size()) {
            // Pick one of the longer tables at random.
            const unsigned pick =
                start + static_cast<unsigned>(
                            rng_.below(tables_.size() - start));
            Table& t = tables_[pick];
            Row& row = t.rows[indexOf(t, ev.pc, gh)];
            // Only steal low-confidence rows.
            if (!row.valid || row.conf.value() <= 1) {
                row.valid = true;
                row.tag = tagOf(t, ev.pc, gh);
                row.target = ev.target;
                row.conf = SatCounter(params_.confBits, 1);
            } else {
                row.conf.decrement();
            }
        }
    }
}

std::uint64_t
Ittage::storageBits() const
{
    std::uint64_t bits = 0;
    for (const auto& t : tables_)
        bits += static_cast<std::uint64_t>(t.rows.size()) *
                (1 + params_.tagBits + 30 + params_.confBits);
    return bits;
}

std::string
Ittage::describe() const
{
    std::ostringstream oss;
    oss << name() << ": " << tables_.size()
        << " indirect-target tables x " << params_.sets
        << " entries, latency " << latency();
    return oss.str();
}

void
Ittage::saveState(warp::StateWriter& w) const
{
    w.u64(tables_.size());
    for (const Table& t : tables_) {
        w.u64(t.rows.size());
        for (const Row& row : t.rows) {
            w.boolean(row.valid);
            w.u32(row.tag);
            w.u64(row.target);
            warp::saveSat(w, row.conf);
        }
    }
    warp::saveRng(w, rng_);
}

void
Ittage::restoreState(warp::StateReader& r)
{
    if (r.u64() != tables_.size())
        r.fail("ITTAGE table count does not match");
    for (Table& t : tables_) {
        if (r.u64() != t.rows.size())
            r.fail("ITTAGE row count does not match");
        for (Row& row : t.rows) {
            row.valid = r.boolean();
            row.tag = r.u32();
            row.target = r.u64();
            warp::loadSat(r, row.conf);
        }
    }
    warp::loadRng(r, rng_);
}

} // namespace cobra::comps
