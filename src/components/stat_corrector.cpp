#include "components/stat_corrector.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <sstream>

#include "common/bitutil.hpp"
#include "warp/state_util.hpp"

namespace cobra::comps {

StatCorrector::StatCorrector(std::string name, const StatCorrectorParams& p)
    : PredictorComponent(std::move(name), p.latency, p.fetchWidth),
      params_(p), useThreshold_(7, p.initialThreshold)
{
    assert(isPow2(p.sets));
    assert(p.latency >= 2);
    for (unsigned t = 0; t < p.numTables; ++t) {
        Table tab;
        tab.histLen = p.baseHistLen << t;
        tab.ctrs.assign(static_cast<std::size_t>(p.sets) * p.fetchWidth *
                            2,
                        SignedSatCounter(p.ctrBits, 0));
        tables_.push_back(std::move(tab));
    }
}

std::size_t
StatCorrector::indexOf(const Table& t, Addr pc, const HistoryRegister& gh,
                       unsigned slot, bool pred) const
{
    const unsigned idxBits = ceilLog2(params_.sets);
    const std::uint64_t pcBits = pc >> (2 + ceilLog2(fetchWidth()));
    const std::uint64_t idx =
        (pcBits ^ gh.folded(t.histLen, idxBits)) & maskBits(idxBits);
    return ((static_cast<std::size_t>(idx) * fetchWidth() + slot) << 1) |
           (pred ? 1 : 0);
}

int
StatCorrector::vote(Addr pc, const HistoryRegister& gh, unsigned slot,
                    bool pred) const
{
    // Centered sum: positive agrees with the incoming prediction.
    int sum = 0;
    for (const auto& t : tables_)
        sum += 2 * t.ctrs[indexOf(t, pc, gh, slot, pred)].value() + 1;
    return sum;
}

void
StatCorrector::predict(const bpu::PredictContext& ctx,
                       bpu::PredictionBundle& inout, bpu::Metadata& meta)
{
    const HistoryRegister& gh = requireGhist(ctx);
    for (unsigned i = 0; i < ctx.validSlots && i < inout.width; ++i) {
        auto& slot = inout.slots[i];
        if (!slot.valid)
            continue; // Nothing to correct.
        const bool in = slot.taken;
        const int sum = vote(ctx.pc, gh, i, in);
        const bool revert = sum < 0 &&
                            std::abs(sum) > useThreshold_.value();
        const bool out = revert ? !in : in;
        slot.taken = out;

        std::uint64_t m = (1ull << 0) |            // considered
                          (in ? 1ull << 1 : 0) |   // incoming
                          (revert ? 1ull << 2 : 0);
        const std::uint64_t mag = std::min<std::uint64_t>(
            static_cast<std::uint64_t>(std::abs(sum)), 0xff);
        m |= mag << 3;
        meta[i / 4] |= m << ((i % 4) * 16);
    }
}

void
StatCorrector::update(const bpu::ResolveEvent& ev)
{
    assert(ev.ghist != nullptr);
    for (unsigned i = 0; i < fetchWidth(); ++i) {
        if (!ev.brMask[i])
            continue;
        const std::uint64_t m =
            ((*ev.meta)[i / 4] >> ((i % 4) * 16)) & 0xffff;
        if ((m & 1) == 0)
            continue; // This slot was never considered.
        const bool in = (m >> 1) & 1;
        const bool reverted = (m >> 2) & 1;
        const int mag = static_cast<int>((m >> 3) & 0xff);
        const bool taken = ev.takenMask[i];

        // Train the correction tables toward "agree with the incoming
        // prediction iff it was right" when the vote was weak or the
        // final decision was wrong.
        const bool finalPred = reverted ? !in : in;
        if (finalPred != taken || mag <= useThreshold_.value() + 2) {
            for (auto& t : tables_) {
                auto& c = t.ctrs[indexOf(t, ev.pc, *ev.ghist, i, in)];
                c.train(in == taken);
            }
        }

        // Dynamic threshold (Seznec): reversions that prove wrong
        // raise the bar; useful reversions lower it.
        if (reverted)
            useThreshold_.train(finalPred != taken);
    }
}

std::uint64_t
StatCorrector::storageBits() const
{
    std::uint64_t bits = 7; // dynamic threshold
    for (const auto& t : tables_)
        bits += static_cast<std::uint64_t>(t.ctrs.size()) *
                params_.ctrBits;
    return bits;
}

std::string
StatCorrector::describe() const
{
    std::ostringstream oss;
    oss << name() << ": " << tables_.size()
        << " statistical-corrector tables x " << params_.sets
        << " sets, latency " << latency();
    return oss.str();
}

void
StatCorrector::saveState(warp::StateWriter& w) const
{
    w.u64(tables_.size());
    for (const Table& t : tables_)
        warp::saveSignedVec(w, t.ctrs);
    warp::saveSat(w, useThreshold_);
}

void
StatCorrector::restoreState(warp::StateReader& r)
{
    if (r.u64() != tables_.size())
        r.fail("corrector table count does not match");
    for (Table& t : tables_)
        warp::loadSignedVec(r, t.ctrs);
    warp::loadSat(r, useThreshold_);
}

} // namespace cobra::comps
