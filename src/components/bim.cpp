#include "components/bim.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "common/bitutil.hpp"
#include "warp/state_util.hpp"

namespace cobra::comps {

const char*
indexModeName(IndexMode m)
{
    switch (m) {
      case IndexMode::Pc: return "pc";
      case IndexMode::GlobalHist: return "ghist";
      case IndexMode::LocalHist: return "lhist";
      case IndexMode::GshareHash: return "gshare";
      case IndexMode::LshareHash: return "lshare";
      case IndexMode::PathHash: return "path";
    }
    return "?";
}

Hbim::Hbim(std::string name, const HbimParams& p)
    : PredictorComponent(std::move(name), p.latency, p.fetchWidth),
      params_(p)
{
    assert(isPow2(p.sets));
    assert(p.mode == IndexMode::Pc || p.latency >= 2);
    // Initialise counters to weakly-taken-adjacent midpoint so cold
    // predictions are weak in both directions.
    table_.assign(static_cast<std::size_t>(p.sets) * p.fetchWidth,
                  SatCounter(p.ctrBits, (1u << p.ctrBits) / 2));
}

std::size_t
Hbim::indexOf(Addr pc, const bpu::PredictContext*,
              const HistoryRegister* ghist, std::uint64_t lhist,
              std::uint64_t phist) const
{
    const unsigned idxBits = ceilLog2(params_.sets);
    // Packet-granularity indexing: drop the slot-offset bits.
    const std::uint64_t pcBits = pc >> (2 + ceilLog2(fetchWidth()));
    std::uint64_t idx = 0;
    switch (params_.mode) {
      case IndexMode::Pc:
        idx = pcBits;
        break;
      case IndexMode::GlobalHist:
        assert(ghist != nullptr);
        idx = ghist->folded(params_.histBits, idxBits);
        break;
      case IndexMode::LocalHist:
        idx = foldXor(lhist & maskBits(params_.histBits), idxBits);
        break;
      case IndexMode::GshareHash:
        assert(ghist != nullptr);
        idx = pcBits ^ ghist->folded(params_.histBits, idxBits);
        break;
      case IndexMode::LshareHash:
        idx = pcBits ^ foldXor(lhist & maskBits(params_.histBits),
                               idxBits);
        break;
      case IndexMode::PathHash:
        idx = pcBits ^ foldXor(phist & maskBits(params_.histBits),
                               idxBits);
        break;
    }
    return static_cast<std::size_t>(idx & maskBits(idxBits));
}

void
Hbim::predict(const bpu::PredictContext& ctx, bpu::PredictionBundle& inout,
              bpu::Metadata& meta)
{
    const bool needsHist = params_.mode != IndexMode::Pc;
    const HistoryRegister* gh = nullptr;
    if (needsHist && (params_.mode == IndexMode::GlobalHist ||
                      params_.mode == IndexMode::GshareHash)) {
        gh = &requireGhist(ctx);
    }
    const std::size_t set = indexOf(ctx.pc, &ctx, gh, ctx.lhist,
                                    ctx.phist);

    for (unsigned i = 0; i < ctx.validSlots && i < inout.width; ++i) {
        const SatCounter& c = table_[set * fetchWidth() + i];
        inout.slots[i].valid = true;
        inout.slots[i].taken = c.taken();
        // Stash the read counter in metadata (§III-D) so update never
        // re-reads the table.
        meta[0] |= static_cast<std::uint64_t>(c.value())
                   << (i * params_.ctrBits);
    }
}

void
Hbim::update(const bpu::ResolveEvent& ev)
{
    const HistoryRegister* gh =
        (params_.mode == IndexMode::GlobalHist ||
         params_.mode == IndexMode::GshareHash)
            ? ev.ghist
            : nullptr;
    const std::size_t set = indexOf(ev.pc, nullptr, gh, ev.lhist,
                                    ev.phist);
    for (unsigned i = 0; i < fetchWidth(); ++i) {
        if (!ev.brMask[i])
            continue;
        table_[set * fetchWidth() + i].train(ev.takenMask[i]);
    }
}

void
Hbim::prefetch(const bpu::PredictContext& ctx) const
{
    // Host cache hint only (architecturally inert). Skip when the
    // index needs a history the caller cannot supply yet at F0.
    const bool needsGhist = params_.mode == IndexMode::GlobalHist ||
                            params_.mode == IndexMode::GshareHash;
    if (needsGhist && ctx.ghist == nullptr)
        return;
    const std::size_t set = indexOf(ctx.pc, &ctx,
                                    needsGhist ? ctx.ghist : nullptr,
                                    ctx.lhist, ctx.phist);
    __builtin_prefetch(&table_[set * fetchWidth()], 0, 1);
}

std::string
Hbim::describe() const
{
    std::ostringstream oss;
    oss << name() << ": " << params_.sets << "x" << fetchWidth() << " "
        << params_.ctrBits << "-bit counters, " << indexModeName(params_.mode)
        << "-indexed";
    if (params_.mode != IndexMode::Pc)
        oss << " (" << params_.histBits << "b hist)";
    oss << ", latency " << latency();
    return oss.str();
}

void
Hbim::saveState(warp::StateWriter& w) const
{
    warp::saveSatVec(w, table_);
}

void
Hbim::restoreState(warp::StateReader& r)
{
    warp::loadSatVec(r, table_);
}

} // namespace cobra::comps
