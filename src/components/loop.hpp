/**
 * @file
 * Loop predictor (paper §III-G5): corrects periodic mispredictions of
 * a base predictor by counting loop iterations. Unlike commit-updated
 * components it updates speculatively at query/fire time and must be
 * repaired immediately on mispredicts; the metadata field carries the
 * pre-update counter contents so repair can restore them (§III-D/E).
 */

#ifndef COBRA_COMPONENTS_LOOP_HPP
#define COBRA_COMPONENTS_LOOP_HPP

#include <vector>

#include "bpu/component.hpp"

namespace cobra::comps {

/** Parameters of the loop predictor. */
struct LoopParams
{
    unsigned entries = 256;  ///< Direct-mapped entries.
    unsigned tagBits = 10;
    unsigned countBits = 10; ///< Trip/iteration counter width.
    unsigned confMax = 15;   ///< Confidence saturation.
    unsigned confThreshold = 6; ///< Min confidence to override.
    unsigned minTrip = 3;    ///< Don't track trivially short loops.
    unsigned latency = 3;
    unsigned fetchWidth = 4;
};

/**
 * Direct-mapped loop predictor tracking one loop branch per entry
 * (it learns the slot within the fetch packet, §III-C).
 */
class LoopPredictor final : public bpu::PredictorComponent
{
  public:
    LoopPredictor(std::string name, const LoopParams& p);

    unsigned metaBits() const override
    {
        // matched flag + pre-fire speculative count (restore state).
        return 1 + params_.countBits;
    }

    void predict(const bpu::PredictContext& ctx,
                 bpu::PredictionBundle& inout,
                 bpu::Metadata& meta) override;

    /** Speculative iteration-count advance ("updated at query time"). */
    void fire(const bpu::FireEvent& ev) override;

    /** Immediate restore + corrective update on mispredict. */
    void mispredict(const bpu::ResolveEvent& ev) override;

    /** Forwards-walk restore of the speculative count. */
    void repair(const bpu::ResolveEvent& ev) override;

    /** Commit-time training of trip counts and confidence. */
    void update(const bpu::ResolveEvent& ev) override;

    const char* typeKey() const override { return "loop"; }

    void saveState(warp::StateWriter& w) const override;
    void restoreState(warp::StateReader& r) override;

    phys::AccessProfile
    predictAccess() const override
    {
        phys::AccessProfile a;
        a.sramReadBits = storageBits() / params_.entries;
        return a;
    }

    phys::AccessProfile
    updateAccess() const override
    {
        phys::AccessProfile a;
        a.sramWriteBits = storageBits() / params_.entries;
        return a;
    }

    std::uint64_t storageBits() const override;

    std::string describe() const override;

    const LoopParams& params() const { return params_; }

  private:
    struct Entry
    {
        bool valid = false;
        std::uint32_t tag = 0;
        unsigned slot = 0;        ///< Fetch-packet slot of the branch.
        std::uint32_t trip = 0;   ///< Learned trip count (0 = unknown).
        std::uint32_t specCount = 0; ///< Speculative iteration count.
        std::uint32_t archCount = 0; ///< Committed iteration count.
        unsigned conf = 0;
    };

    std::size_t indexOf(Addr pc) const;
    std::uint32_t tagOf(Addr pc) const;

    LoopParams params_;
    std::vector<Entry> table_;
};

} // namespace cobra::comps

#endif // COBRA_COMPONENTS_LOOP_HPP
