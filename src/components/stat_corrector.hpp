/**
 * @file
 * Statistical corrector (library extension; the paper's §III-G notes
 * that a statistical corrector [40]/[41] "may be implemented
 * similarly" to the provided sub-components, and the TAGE-L design is
 * described as TAGE-SC-L "only with no statistical corrector").
 *
 * The corrector sits above TAGE in a topology and learns, per
 * (PC, history, incoming-prediction) context, whether the incoming
 * prediction is statistically untrustworthy — reverting it when a
 * confident negative vote accumulates. A dynamic threshold tunes how
 * aggressive reversion is (Seznec's TAGE-SC-L mechanism, simplified).
 */

#ifndef COBRA_COMPONENTS_STAT_CORRECTOR_HPP
#define COBRA_COMPONENTS_STAT_CORRECTOR_HPP

#include <vector>

#include "bpu/component.hpp"
#include "common/sat_counter.hpp"

namespace cobra::comps {

/** Parameters of the statistical corrector. */
struct StatCorrectorParams
{
    unsigned sets = 256;       ///< Rows per table.
    unsigned numTables = 3;    ///< Tables with geometric history.
    unsigned baseHistLen = 4;  ///< Table t uses baseHistLen << t bits.
    unsigned ctrBits = 6;      ///< Signed counter width.
    unsigned initialThreshold = 5;
    unsigned latency = 3;
    unsigned fetchWidth = 4;
};

/**
 * Confidence-voted corrector over the incoming prediction.
 */
class StatCorrector final : public bpu::PredictorComponent
{
  public:
    StatCorrector(std::string name, const StatCorrectorParams& p);

    unsigned metaBits() const override { return fetchWidth() * 16; }

    void predict(const bpu::PredictContext& ctx,
                 bpu::PredictionBundle& inout,
                 bpu::Metadata& meta) override;

    void update(const bpu::ResolveEvent& ev) override;

    const char* typeKey() const override { return "scl"; }

    void saveState(warp::StateWriter& w) const override;
    void restoreState(warp::StateReader& r) override;

    std::uint64_t storageBits() const override;

    std::string describe() const override;

    const StatCorrectorParams& params() const { return params_; }

    /** Current dynamic reversion threshold (for tests). */
    int threshold() const { return useThreshold_.value(); }

  private:
    struct Table
    {
        unsigned histLen = 4;
        std::vector<SignedSatCounter> ctrs;
    };

    std::size_t indexOf(const Table& t, Addr pc,
                        const HistoryRegister& gh, unsigned slot,
                        bool pred) const;
    int vote(Addr pc, const HistoryRegister& gh, unsigned slot,
             bool pred) const;

    StatCorrectorParams params_;
    std::vector<Table> tables_;
    SatCounter useThreshold_;
};

} // namespace cobra::comps

#endif // COBRA_COMPONENTS_STAT_CORRECTOR_HPP
