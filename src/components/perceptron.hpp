/**
 * @file
 * Perceptron predictor (Jiménez & Lin), included to demonstrate that
 * the COBRA interface accommodates predictors that "might only be
 * able to provide a single prediction per cycle" (paper §III-C): the
 * perceptron learns the index into the fetch packet at which to
 * provide its prediction.
 */

#ifndef COBRA_COMPONENTS_PERCEPTRON_HPP
#define COBRA_COMPONENTS_PERCEPTRON_HPP

#include <vector>

#include "bpu/component.hpp"
#include "common/sat_counter.hpp"

namespace cobra::comps {

/** Parameters of the perceptron table. */
struct PerceptronParams
{
    unsigned entries = 256;  ///< Direct-mapped perceptrons.
    unsigned histBits = 24;  ///< Weights per perceptron (+ bias).
    unsigned weightBits = 8;
    unsigned latency = 3;
    unsigned fetchWidth = 4;
    /** Training threshold theta ~= 1.93*h + 14 (Jiménez). */
    int theta() const
    {
        return static_cast<int>(1.93 * histBits + 14);
    }
};

/**
 * Global-history perceptron providing one prediction per packet, at
 * the learned slot.
 */
class Perceptron final : public bpu::PredictorComponent
{
  public:
    Perceptron(std::string name, const PerceptronParams& p);

    unsigned metaBits() const override
    {
        // Learned slot + |output| magnitude (clamped to 16 bits).
        return ceilLog2(fetchWidth()) + 1 + 16;
    }

    void predict(const bpu::PredictContext& ctx,
                 bpu::PredictionBundle& inout,
                 bpu::Metadata& meta) override;

    void update(const bpu::ResolveEvent& ev) override;

    const char* typeKey() const override { return "perceptron"; }

    void saveState(warp::StateWriter& w) const override;
    void restoreState(warp::StateReader& r) override;

    std::uint64_t
    storageBits() const override
    {
        const std::uint64_t perEntry =
            static_cast<std::uint64_t>(params_.histBits + 1) *
                params_.weightBits +
            ceilLog2(fetchWidth());
        return perEntry * params_.entries;
    }

    std::string describe() const override;

  private:
    struct Entry
    {
        std::vector<SignedSatCounter> weights; ///< [0] = bias.
        unsigned slot = 0; ///< Learned fetch-packet slot.
    };

    std::size_t indexOf(Addr pc) const;
    int dot(const Entry& e, const HistoryRegister& gh) const;

    PerceptronParams params_;
    std::vector<Entry> table_;
};

} // namespace cobra::comps

#endif // COBRA_COMPONENTS_PERCEPTRON_HPP
