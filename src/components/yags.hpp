/**
 * @file
 * YAGS ("Yet Another Global Scheme", Eden & Mudge) — a library
 * extension demonstrating another §II history-based design: a
 * PC-indexed choice PHT provides the bias, and two small *tagged*
 * exception caches (a taken-cache and a not-taken-cache) store only
 * the branches that deviate from their bias — trading the Tournament
 * design's untagged aliasing for small tagged structures.
 */

#ifndef COBRA_COMPONENTS_YAGS_HPP
#define COBRA_COMPONENTS_YAGS_HPP

#include <vector>

#include "bpu/component.hpp"
#include "common/sat_counter.hpp"

namespace cobra::comps {

/** Parameters of the YAGS predictor. */
struct YagsParams
{
    unsigned choiceSets = 4096;  ///< PC-indexed choice PHT rows.
    unsigned cacheSets = 512;    ///< Each exception cache's rows.
    unsigned tagBits = 8;
    unsigned ctrBits = 2;
    unsigned histBits = 12;      ///< History in the cache index.
    unsigned latency = 2;
    unsigned fetchWidth = 4;
};

/**
 * Choice PHT + tagged direction caches.
 */
class Yags final : public bpu::PredictorComponent
{
  public:
    Yags(std::string name, const YagsParams& p);

    unsigned metaBits() const override
    {
        // Per slot: choice bit + cache-hit bit.
        return fetchWidth() * 2;
    }

    void predict(const bpu::PredictContext& ctx,
                 bpu::PredictionBundle& inout,
                 bpu::Metadata& meta) override;

    void update(const bpu::ResolveEvent& ev) override;

    const char* typeKey() const override { return "yags"; }

    void saveState(warp::StateWriter& w) const override;
    void restoreState(warp::StateReader& r) override;

    std::uint64_t storageBits() const override;

    std::string describe() const override;

  private:
    struct CacheEntry
    {
        bool valid = false;
        std::uint32_t tag = 0;
        SatCounter ctr;
    };

    std::size_t choiceIndex(Addr pc, unsigned slot) const;
    std::size_t cacheIndex(Addr pc, const HistoryRegister& gh,
                           unsigned slot) const;
    std::uint32_t cacheTag(Addr pc, unsigned slot) const;

    YagsParams params_;
    std::vector<SatCounter> choice_;
    std::vector<CacheEntry> takenCache_;   ///< Exceptions to not-taken.
    std::vector<CacheEntry> notTakenCache_; ///< Exceptions to taken.
};

} // namespace cobra::comps

#endif // COBRA_COMPONENTS_YAGS_HPP
