/**
 * @file
 * ITTAGE-style indirect-target predictor (library extension). The
 * base library predicts indirect targets only through the BTB's last
 * seen target; this component adds history-tagged target tables so
 * polymorphic indirect jumps (switch dispatch, virtual calls — the
 * §III-G "other predictor types may be implemented similarly" case)
 * get history-correlated targets. It overrides only the target field
 * of Jalr slots (a partial prediction, §III-F).
 */

#ifndef COBRA_COMPONENTS_ITTAGE_HPP
#define COBRA_COMPONENTS_ITTAGE_HPP

#include <vector>

#include "bpu/component.hpp"
#include "common/random.hpp"
#include "common/sat_counter.hpp"

namespace cobra::comps {

/** Parameters of the indirect-target predictor. */
struct IttageParams
{
    unsigned sets = 128;      ///< Rows per table.
    unsigned numTables = 3;
    unsigned baseHistLen = 4; ///< Table t uses baseHistLen * 2^t bits.
    unsigned tagBits = 9;
    unsigned confBits = 2;
    unsigned latency = 3;
    unsigned fetchWidth = 4;
};

/**
 * History-tagged indirect target tables with provider selection.
 */
class Ittage final : public bpu::PredictorComponent
{
  public:
    Ittage(std::string name, const IttageParams& p);

    unsigned metaBits() const override
    {
        // Per-packet: provider table id + hit flag (the CFI slot is
        // recovered from the resolution event).
        return 4;
    }

    void predict(const bpu::PredictContext& ctx,
                 bpu::PredictionBundle& inout,
                 bpu::Metadata& meta) override;

    void update(const bpu::ResolveEvent& ev) override;

    const char* typeKey() const override { return "ittage"; }

    void saveState(warp::StateWriter& w) const override;
    void restoreState(warp::StateReader& r) override;

    std::uint64_t storageBits() const override;

    std::string describe() const override;

  private:
    struct Row
    {
        bool valid = false;
        std::uint32_t tag = 0;
        Addr target = kInvalidAddr;
        SatCounter conf;
    };

    struct Table
    {
        unsigned histLen = 4;
        std::vector<Row> rows;
    };

    std::size_t indexOf(const Table& t, Addr pc,
                        const HistoryRegister& gh) const;
    std::uint32_t tagOf(const Table& t, Addr pc,
                        const HistoryRegister& gh) const;

    IttageParams params_;
    std::vector<Table> tables_;
    Rng rng_;
};

} // namespace cobra::comps

#endif // COBRA_COMPONENTS_ITTAGE_HPP
