/**
 * @file
 * HBIM: bimodal counter tables with parameterised indexing
 * (paper §III-G1): PC, global history, local history, or a hashed
 * combination (gshare-style). Superscalar: each row holds fetchWidth
 * counters so adjacent branches in a packet do not alias (§III-C).
 * The metadata field stores the counters read at predict time to
 * avoid re-reading the table at update time (§III-D).
 */

#ifndef COBRA_COMPONENTS_BIM_HPP
#define COBRA_COMPONENTS_BIM_HPP

#include <vector>

#include "bpu/component.hpp"
#include "common/sat_counter.hpp"

namespace cobra::comps {

/** Index-generation mode for a counter table. */
enum class IndexMode : std::uint8_t
{
    Pc,           ///< PC bits only (classic bimodal).
    GlobalHist,   ///< Global history bits only.
    LocalHist,    ///< Local history bits only.
    GshareHash,   ///< PC xor folded global history.
    LshareHash,   ///< PC xor folded local history.
    PathHash,     ///< PC xor folded path history (§IV-B3 extension).
};

const char* indexModeName(IndexMode m);

/** Parameters of an HBIM instance. */
struct HbimParams
{
    unsigned sets = 4096;     ///< Rows (each row = fetchWidth counters).
    unsigned ctrBits = 2;     ///< Counter width.
    IndexMode mode = IndexMode::Pc;
    unsigned histBits = 10;   ///< History bits folded into the index.
    unsigned latency = 2;
    unsigned fetchWidth = 4;
};

/**
 * History-indexed bimodal counter table.
 */
class Hbim final : public bpu::PredictorComponent
{
  public:
    Hbim(std::string name, const HbimParams& p);

    unsigned metaBits() const override
    {
        return fetchWidth() * params_.ctrBits;
    }

    bool
    usesLocalHistory() const override
    {
        return params_.mode == IndexMode::LocalHist ||
               params_.mode == IndexMode::LshareHash;
    }

    phys::AccessProfile
    predictAccess() const override
    {
        phys::AccessProfile a;
        a.sramReadBits = fetchWidth() * params_.ctrBits;
        return a;
    }

    phys::AccessProfile
    updateAccess() const override
    {
        phys::AccessProfile a;
        a.sramWriteBits = fetchWidth() * params_.ctrBits;
        return a;
    }

    void predict(const bpu::PredictContext& ctx,
                 bpu::PredictionBundle& inout,
                 bpu::Metadata& meta) override;

    void update(const bpu::ResolveEvent& ev) override;

    const char* typeKey() const override { return "bim"; }

    void prefetch(const bpu::PredictContext& ctx) const override;

    void saveState(warp::StateWriter& w) const override;
    void restoreState(warp::StateReader& r) override;

    std::uint64_t
    storageBits() const override
    {
        return static_cast<std::uint64_t>(params_.sets) * fetchWidth() *
               params_.ctrBits;
    }

    std::string describe() const override;

    const HbimParams& params() const { return params_; }

    /** Raw counter access for tests. */
    const SatCounter& counterAt(std::size_t set, unsigned slot) const
    {
        return table_[set * fetchWidth() + slot];
    }

    /** Fault injection: flip one bit of one saturating counter. */
    bool
    flipStateBit(std::uint64_t rand) override
    {
        if (table_.empty())
            return false;
        SatCounter& c = table_[rand % table_.size()];
        const unsigned bit =
            static_cast<unsigned>((rand >> 32) % c.numBits());
        c.set(c.value() ^ (1u << bit));
        return true;
    }

  private:
    std::size_t indexOf(Addr pc, const bpu::PredictContext* ctx,
                        const HistoryRegister* ghist,
                        std::uint64_t lhist,
                        std::uint64_t phist) const;

    HbimParams params_;
    std::vector<SatCounter> table_;
};

} // namespace cobra::comps

#endif // COBRA_COMPONENTS_BIM_HPP
