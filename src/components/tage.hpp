/**
 * @file
 * TAGE (paper §III-G4): a set of global-history tagged tables managed
 * per Seznec's "A new case for the TAGE branch predictor" [40] —
 * geometric history lengths, provider/alternate selection, useful
 * counters with periodic decay, and allocate-on-mispredict. The
 * metadata field tracks the provider table and read counters so
 * update needs no second read (§III-D); indices are regenerated at
 * update time from the histories the interface provides back.
 *
 * Superscalar: each row holds fetchWidth 3-bit counters under one
 * tag, so every slot of a fetch packet gets a direction (§III-C).
 */

#ifndef COBRA_COMPONENTS_TAGE_HPP
#define COBRA_COMPONENTS_TAGE_HPP

#include <vector>

#include "bpu/component.hpp"
#include "common/random.hpp"
#include "common/sat_counter.hpp"

namespace cobra::comps {

/** Parameters of one tagged table. */
struct TageTableParams
{
    unsigned sets = 512;
    unsigned histLen = 8;
    unsigned tagBits = 9;
};

/** Parameters of the whole TAGE component. */
struct TageParams
{
    std::vector<TageTableParams> tables;
    unsigned ctrBits = 3;
    unsigned uBits = 2;
    unsigned latency = 3;
    unsigned fetchWidth = 4;
    /** Updates between useful-bit decay sweeps. */
    std::uint64_t uDecayPeriod = 1 << 18;

    /**
     * The paper's TAGE-L configuration: 7 tables over a 64-bit global
     * history with geometric history lengths.
     */
    static TageParams tageL(unsigned fetch_width = 4);
};

/**
 * The TAGE sub-component. Provides a direction only when a tagged
 * table hits (otherwise predict_in — the base predictor below it in
 * the topology — passes through, §III-F).
 */
class Tage final : public bpu::PredictorComponent
{
  public:
    Tage(std::string name, const TageParams& p);

    unsigned metaBits() const override;

    void predict(const bpu::PredictContext& ctx,
                 bpu::PredictionBundle& inout,
                 bpu::Metadata& meta) override;

    void update(const bpu::ResolveEvent& ev) override;

    const char* typeKey() const override { return "tage"; }

    void prefetch(const bpu::PredictContext& ctx) const override;

    void saveState(warp::StateWriter& w) const override;
    void restoreState(warp::StateReader& r) override;

    phys::AccessProfile predictAccess() const override;
    phys::AccessProfile updateAccess() const override;

    std::uint64_t storageBits() const override;

    std::string describe() const override;

    const TageParams& params() const { return params_; }

    /** Longest history length across tables (needs ghist >= this). */
    unsigned maxHistLen() const;

    /** Fault injection: flip a tagged-table counter or tag bit. */
    bool flipStateBit(std::uint64_t rand) override;

  private:
    /** Row control state; counters live in the table's flat ctrs
     *  strip (SoA) so tag probes scan a dense header array. */
    struct Row
    {
        bool valid = false;
        std::uint32_t tag = 0;
        std::uint8_t u = 0;
    };

    struct Table
    {
        TageTableParams p;
        std::vector<Row> rows;
        /** sets * fetchWidth counters; row r's run starts at
         *  r*fetchWidth. */
        std::vector<SatCounter> ctrs;
    };

    std::size_t indexOf(const Table& t, Addr pc,
                        const HistoryRegister& gh) const;
    std::uint32_t tagOf(const Table& t, Addr pc,
                        const HistoryRegister& gh) const;

    /** Decay all useful counters (periodic aging). */
    void decayUseful();

    TageParams params_;
    std::vector<Table> tables_;
    SignedSatCounter useAltOnNa_{4, 0};
    std::uint64_t updateCount_ = 0;
    Rng rng_;
};

} // namespace cobra::comps

#endif // COBRA_COMPONENTS_TAGE_HPP
