/**
 * @file
 * Tournament selector (paper §III-G3): an arbitration scheme with a
 * 2-bit counter table indexed by global history that selects the
 * winning sub-predictor. The metadata field tracks the predictions
 * made by both sub-predictors so the counter update can be computed
 * at commit time (§III-D).
 */

#ifndef COBRA_COMPONENTS_TOURNEY_HPP
#define COBRA_COMPONENTS_TOURNEY_HPP

#include <vector>

#include "bpu/component.hpp"
#include "common/sat_counter.hpp"

namespace cobra::comps {

/** Parameters of the tournament selector. */
struct TourneyParams
{
    unsigned sets = 1024;   ///< Choice counters.
    unsigned ctrBits = 2;
    unsigned histBits = 10; ///< Global-history bits indexing the table.
    unsigned latency = 3;
    unsigned fetchWidth = 4;
};

/**
 * Chooses between two predict_in inputs (conventionally: input 0 =
 * the global-history predictor, input 1 = the local-history
 * predictor; counter high = trust input 0).
 */
class Tourney final : public bpu::PredictorComponent
{
  public:
    Tourney(std::string name, const TourneyParams& p);

    bool isArbiter() const override { return true; }

    unsigned metaBits() const override
    {
        // Per slot: both inputs' (valid, taken) + counter read.
        return fetchWidth() * (4 + params_.ctrBits);
    }

    void
    predict(const bpu::PredictContext&, bpu::PredictionBundle&,
            bpu::Metadata&) override
    {
        assert(!"tournament selector must be placed at an arb node");
    }

    void arbitrate(const bpu::PredictContext& ctx,
                   std::span<const bpu::PredictionBundle> inputs,
                   bpu::PredictionBundle& inout,
                   bpu::Metadata& meta) override;

    void update(const bpu::ResolveEvent& ev) override;

    const char* typeKey() const override { return "tourney"; }

    void saveState(warp::StateWriter& w) const override;
    void restoreState(warp::StateReader& r) override;

    phys::AccessProfile
    predictAccess() const override
    {
        phys::AccessProfile a;
        a.sramReadBits = params_.ctrBits;
        return a;
    }

    phys::AccessProfile
    updateAccess() const override
    {
        phys::AccessProfile a;
        a.sramWriteBits = params_.ctrBits;
        return a;
    }

    std::uint64_t
    storageBits() const override
    {
        return static_cast<std::uint64_t>(params_.sets) * params_.ctrBits;
    }

    std::string describe() const override;

    const TourneyParams& params() const { return params_; }

  private:
    std::size_t indexOf(const HistoryRegister& gh) const;

    TourneyParams params_;
    std::vector<SatCounter> table_;
};

} // namespace cobra::comps

#endif // COBRA_COMPONENTS_TOURNEY_HPP
