#include "components/gtag.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "common/bitutil.hpp"
#include "warp/state_util.hpp"

namespace cobra::comps {

Gtag::Gtag(std::string name, const GtagParams& p)
    : PredictorComponent(std::move(name), p.latency, p.fetchWidth),
      params_(p)
{
    assert(isPow2(p.sets));
    assert(p.latency >= 2);
    const std::size_t n = static_cast<std::size_t>(p.sets) * p.fetchWidth;
    valids_.assign(n, 0);
    tags_.assign(n, 0);
    ctrs_.assign(n, SatCounter(p.ctrBits, (1u << p.ctrBits) / 2));
}

std::size_t
Gtag::indexOf(Addr pc, const HistoryRegister& gh) const
{
    const unsigned idxBits = ceilLog2(params_.sets);
    const std::uint64_t pcBits = pc >> (2 + ceilLog2(fetchWidth()));
    return static_cast<std::size_t>(
        (pcBits ^ gh.folded(params_.histBits, idxBits)) &
        maskBits(idxBits));
}

std::uint32_t
Gtag::tagOf(Addr pc, const HistoryRegister& gh) const
{
    const std::uint64_t pcBits = pc >> (2 + ceilLog2(fetchWidth()));
    return static_cast<std::uint32_t>(
        hashCombine(pcBits, gh.folded(params_.histBits, params_.tagBits)) &
        maskBits(params_.tagBits));
}

void
Gtag::predict(const bpu::PredictContext& ctx, bpu::PredictionBundle& inout,
              bpu::Metadata& meta)
{
    const HistoryRegister& gh = requireGhist(ctx);
    const std::size_t base = indexOf(ctx.pc, gh) * fetchWidth();
    const std::uint32_t tag = tagOf(ctx.pc, gh);

    // Per-counter partial tags ("2K partially tagged counters"): each
    // slot hits independently; misses pass predict_in through.
    for (unsigned i = 0; i < ctx.validSlots && i < inout.width; ++i) {
        const bool hit = valids_[base + i] != 0 && tags_[base + i] == tag;
        if (!hit)
            continue;
        inout.slots[i].valid = true;
        inout.slots[i].taken = ctrs_[base + i].taken();
        meta[0] |= 1ull << i; // hit mask
        meta[0] |= static_cast<std::uint64_t>(ctrs_[base + i].value())
                   << (8 + i * params_.ctrBits);
    }
}

void
Gtag::update(const bpu::ResolveEvent& ev)
{
    assert(ev.ghist != nullptr);
    const std::size_t base = indexOf(ev.pc, *ev.ghist) * fetchWidth();
    const std::uint32_t tag = tagOf(ev.pc, *ev.ghist);

    for (unsigned i = 0; i < fetchWidth(); ++i) {
        if (!ev.brMask[i])
            continue;
        const bool taken = ev.takenMask[i];
        const bool hit = valids_[base + i] != 0 && tags_[base + i] == tag;
        if (hit) {
            ctrs_[base + i].train(taken);
            continue;
        }
        // Allocate on a direction mispredict (the cheaper predictors
        // below this one got it wrong) — including not-taken
        // mispredicts, which carry no taken CFI.
        if (ev.slotMispredicted(i)) {
            valids_[base + i] = 1;
            tags_[base + i] = tag;
            const unsigned mid = (1u << params_.ctrBits) / 2;
            ctrs_[base + i] =
                SatCounter(params_.ctrBits, taken ? mid : mid - 1);
        }
    }
}

std::string
Gtag::describe() const
{
    std::ostringstream oss;
    oss << name() << ": " << params_.sets * fetchWidth()
        << " partially tagged counters (" << params_.tagBits << "b tag, "
        << params_.histBits << "b ghist), latency " << latency();
    return oss.str();
}

void
Gtag::prefetch(const bpu::PredictContext& ctx) const
{
    // Host cache hint only: pull the indexed row's strips one packet
    // ahead of predict(). Uses the caller's current (speculative)
    // history — a slightly stale index still lands near the row.
    if (ctx.ghist == nullptr)
        return;
    const std::size_t base = indexOf(ctx.pc, *ctx.ghist) * fetchWidth();
    __builtin_prefetch(&valids_[base], 0, 1);
    __builtin_prefetch(&tags_[base], 0, 1);
    __builtin_prefetch(&ctrs_[base], 0, 1);
}

void
Gtag::saveState(warp::StateWriter& w) const
{
    w.u64(valids_.size());
    for (std::uint8_t v : valids_)
        w.boolean(v != 0);
    for (std::uint32_t t : tags_)
        w.u32(t);
    warp::saveSatVec(w, ctrs_);
}

void
Gtag::restoreState(warp::StateReader& r)
{
    if (r.u64() != valids_.size())
        r.fail("GTAG entry count does not match");
    for (std::uint8_t& v : valids_)
        v = r.boolean() ? 1 : 0;
    for (std::uint32_t& t : tags_)
        t = r.u32();
    warp::loadSatVec(r, ctrs_);
}

} // namespace cobra::comps
