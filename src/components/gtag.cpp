#include "components/gtag.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "common/bitutil.hpp"
#include "warp/state_util.hpp"

namespace cobra::comps {

Gtag::Gtag(std::string name, const GtagParams& p)
    : PredictorComponent(std::move(name), p.latency, p.fetchWidth),
      params_(p)
{
    assert(isPow2(p.sets));
    assert(p.latency >= 2);
    rows_.resize(p.sets);
    for (auto& r : rows_) {
        r.ctrs.assign(p.fetchWidth,
                      SatCounter(p.ctrBits, (1u << p.ctrBits) / 2));
        r.tags.assign(p.fetchWidth, 0);
        r.valids.assign(p.fetchWidth, false);
    }
}

std::size_t
Gtag::indexOf(Addr pc, const HistoryRegister& gh) const
{
    const unsigned idxBits = ceilLog2(params_.sets);
    const std::uint64_t pcBits = pc >> (2 + ceilLog2(fetchWidth()));
    return static_cast<std::size_t>(
        (pcBits ^ gh.folded(params_.histBits, idxBits)) &
        maskBits(idxBits));
}

std::uint32_t
Gtag::tagOf(Addr pc, const HistoryRegister& gh) const
{
    const std::uint64_t pcBits = pc >> (2 + ceilLog2(fetchWidth()));
    return static_cast<std::uint32_t>(
        hashCombine(pcBits, gh.folded(params_.histBits, params_.tagBits)) &
        maskBits(params_.tagBits));
}

void
Gtag::predict(const bpu::PredictContext& ctx, bpu::PredictionBundle& inout,
              bpu::Metadata& meta)
{
    const HistoryRegister& gh = requireGhist(ctx);
    const Row& row = rows_[indexOf(ctx.pc, gh)];
    const std::uint32_t tag = tagOf(ctx.pc, gh);

    // Per-counter partial tags ("2K partially tagged counters"): each
    // slot hits independently; misses pass predict_in through.
    for (unsigned i = 0; i < ctx.validSlots && i < inout.width; ++i) {
        const bool hit = row.valids[i] && row.tags[i] == tag;
        if (!hit)
            continue;
        inout.slots[i].valid = true;
        inout.slots[i].taken = row.ctrs[i].taken();
        meta[0] |= 1ull << i; // hit mask
        meta[0] |= static_cast<std::uint64_t>(row.ctrs[i].value())
                   << (8 + i * params_.ctrBits);
    }
}

void
Gtag::update(const bpu::ResolveEvent& ev)
{
    assert(ev.ghist != nullptr);
    Row& row = rows_[indexOf(ev.pc, *ev.ghist)];
    const std::uint32_t tag = tagOf(ev.pc, *ev.ghist);

    for (unsigned i = 0; i < fetchWidth(); ++i) {
        if (!ev.brMask[i])
            continue;
        const bool taken = ev.takenMask[i];
        const bool hit = row.valids[i] && row.tags[i] == tag;
        if (hit) {
            row.ctrs[i].train(taken);
            continue;
        }
        // Allocate on a direction mispredict (the cheaper predictors
        // below this one got it wrong) — including not-taken
        // mispredicts, which carry no taken CFI.
        if (ev.slotMispredicted(i)) {
            row.valids[i] = true;
            row.tags[i] = tag;
            const unsigned mid = (1u << params_.ctrBits) / 2;
            row.ctrs[i] =
                SatCounter(params_.ctrBits, taken ? mid : mid - 1);
        }
    }
}

std::string
Gtag::describe() const
{
    std::ostringstream oss;
    oss << name() << ": " << params_.sets * fetchWidth()
        << " partially tagged counters (" << params_.tagBits << "b tag, "
        << params_.histBits << "b ghist), latency " << latency();
    return oss.str();
}

void
Gtag::saveState(warp::StateWriter& w) const
{
    w.u64(rows_.size());
    for (const Row& row : rows_) {
        w.u64(row.valids.size());
        for (bool v : row.valids)
            w.boolean(v);
        for (std::uint32_t t : row.tags)
            w.u32(t);
        warp::saveSatVec(w, row.ctrs);
    }
}

void
Gtag::restoreState(warp::StateReader& r)
{
    if (r.u64() != rows_.size())
        r.fail("GTAG row count does not match");
    for (Row& row : rows_) {
        if (r.u64() != row.valids.size())
            r.fail("GTAG slot count does not match");
        for (std::size_t i = 0; i < row.valids.size(); ++i)
            row.valids[i] = r.boolean();
        for (std::uint32_t& t : row.tags)
            t = r.u32();
        warp::loadSatVec(r, row.ctrs);
    }
}

} // namespace cobra::comps
