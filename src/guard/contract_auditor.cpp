#include "guard/contract_auditor.hpp"

#include <bit>

#include "warp/state_util.hpp"

namespace cobra::guard {

namespace {

unsigned
popcountMeta(const bpu::Metadata& m)
{
    unsigned n = 0;
    for (std::uint64_t w : m.w)
        n += static_cast<unsigned>(std::popcount(w));
    return n;
}

bool
sameMeta(const bpu::Metadata& a, const bpu::Metadata& b)
{
    return a.w == b.w;
}

} // namespace

ContractAuditor::ContractAuditor(
    std::unique_ptr<bpu::PredictorComponent> inner)
    : PredictorComponent(inner->name(), inner->latency(),
                         inner->fetchWidth()),
      inner_(std::move(inner))
{
}

void
ContractAuditor::violation(std::uint64_t query,
                           const std::string& detail) const
{
    throw ContractViolation(name(), query, detail);
}

void
ContractAuditor::checkQueryContext(const bpu::PredictContext& ctx)
{
    ++checks_;
    // stage == 0 means the component is driven directly (component
    // tests, standalone studies): no composer contract to audit.
    if (ctx.stage == 0)
        return;
    if (ctx.stage < latency()) {
        violation(ctx.serial,
                  "predict at stage " + std::to_string(ctx.stage) +
                      " before latency " + std::to_string(latency()));
    }
    if (latency() == 1 && ctx.stage == 1 && ctx.ghist != nullptr) {
        violation(ctx.serial,
                  "global history leaked to a 1-cycle component at "
                  "stage 1 (histories arrive at end of Fetch-1)");
    }
    if (ctx.stage >= 2 && ctx.ghist == nullptr) {
        violation(ctx.serial,
                  "global history missing at stage " +
                      std::to_string(ctx.stage) +
                      " (capture skipped?)");
    }
    if (ctx.serial != 0) {
        if (ctx.serial == lastSerial_) {
            violation(ctx.serial,
                      "predict called more than once for one query");
        }
        if (ctx.serial < lastSerial_) {
            violation(ctx.serial,
                      "queries evaluated out of order (last serial " +
                          std::to_string(lastSerial_) + ")");
        }
        lastSerial_ = ctx.serial;
    }
}

void
ContractAuditor::checkMetaWidth(const bpu::Metadata& meta,
                                std::uint64_t query,
                                const char* when) const
{
    const unsigned used = popcountMeta(meta);
    if (used > metaBits()) {
        violation(query, std::string(when) + " wrote " +
                             std::to_string(used) +
                             " metadata bits but declares metaBits() = " +
                             std::to_string(metaBits()));
    }
}

void
ContractAuditor::predict(const bpu::PredictContext& ctx,
                         bpu::PredictionBundle& inout,
                         bpu::Metadata& meta)
{
    checkQueryContext(ctx);
    inner_->predict(ctx, inout, meta);
    checkMetaWidth(meta, ctx.serial, "predict()");
}

void
ContractAuditor::arbitrate(const bpu::PredictContext& ctx,
                           std::span<const bpu::PredictionBundle> inputs,
                           bpu::PredictionBundle& inout,
                           bpu::Metadata& meta)
{
    checkQueryContext(ctx);
    if (!inner_->isArbiter())
        violation(ctx.serial, "arbitrate() on a non-arbiter component");
    inner_->arbitrate(ctx, inputs, inout, meta);
    checkMetaWidth(meta, ctx.serial, "arbitrate()");
}

void
ContractAuditor::fire(const bpu::FireEvent& ev)
{
    ++checks_;
    if (ev.meta == nullptr)
        violation(ev.ftqIdx, "fire event carries no metadata");
    // Forward first: fire may legitimately extend the metadata; what
    // must round-trip is the value after the event returns.
    inner_->fire(ev);
    checkMetaWidth(*ev.meta, ev.ftqIdx, "fire()");

    auto& gens = pending_[ev.ftqIdx];
    gens.push_back(*ev.meta);
    if (gens.size() > kMaxGenerations)
        gens.pop_front();
    // Bound the map: positions far behind the newest can no longer
    // receive events once the history-file head has passed them.
    while (pending_.size() > kMaxTracked)
        pending_.erase(pending_.begin());
}

void
ContractAuditor::mispredict(const bpu::ResolveEvent& ev)
{
    ++checks_;
    if (ev.meta == nullptr)
        violation(ev.ftqIdx, "mispredict event carries no metadata");
    auto it = pending_.find(ev.ftqIdx);
    if (it != pending_.end() && !it->second.empty() &&
        !sameMeta(*ev.meta, it->second.back())) {
        violation(ev.ftqIdx,
                  "metadata mutated between fire and mispredict "
                  "(must round-trip verbatim, §III-D)");
    }
    inner_->mispredict(ev);
}

void
ContractAuditor::repair(const bpu::ResolveEvent& ev)
{
    ++checks_;
    if (ev.meta == nullptr)
        violation(ev.ftqIdx, "repair event carries no metadata");
    auto it = pending_.find(ev.ftqIdx);
    if (it != pending_.end() && !it->second.empty()) {
        // Repairs walk squashed (older) generations of this position.
        if (!sameMeta(*ev.meta, it->second.front())) {
            violation(ev.ftqIdx,
                      "metadata mutated between fire and repair "
                      "(must round-trip verbatim, §III-D)");
        }
        it->second.pop_front();
        if (it->second.empty())
            pending_.erase(it);
    }
    inner_->repair(ev);
}

void
ContractAuditor::update(const bpu::ResolveEvent& ev)
{
    ++checks_;
    if (ev.meta == nullptr)
        violation(ev.ftqIdx, "update event carries no metadata");
    auto it = pending_.find(ev.ftqIdx);
    if (it != pending_.end() && !it->second.empty()) {
        // Updates retire the live (newest) generation.
        if (!sameMeta(*ev.meta, it->second.back())) {
            violation(ev.ftqIdx,
                      "metadata mutated between fire and update "
                      "(must round-trip verbatim, §III-D)");
        }
        it->second.pop_back();
        if (it->second.empty())
            pending_.erase(it);
    }
    inner_->update(ev);
}

void
ContractAuditor::saveState(warp::StateWriter& w) const
{
    w.u64(lastSerial_);
    w.u64(checks_);
    w.u64(pending_.size());
    for (const auto& [pos, gens] : pending_) {
        w.u64(pos);
        w.u64(gens.size());
        for (const bpu::Metadata& m : gens) {
            for (std::uint64_t word : m.w)
                w.u64(word);
        }
    }
    inner_->saveState(w);
}

void
ContractAuditor::restoreState(warp::StateReader& r)
{
    lastSerial_ = r.u64();
    checks_ = r.u64();
    pending_.clear();
    const std::uint64_t entries = r.u64();
    for (std::uint64_t i = 0; i < entries; ++i) {
        const std::uint64_t pos = r.u64();
        const std::uint64_t gens = r.u64();
        if (gens > kMaxGenerations)
            r.fail("auditor generation count exceeds its bound");
        std::deque<bpu::Metadata>& dq = pending_[pos];
        for (std::uint64_t g = 0; g < gens; ++g) {
            bpu::Metadata m{};
            for (std::uint64_t& word : m.w)
                word = r.u64();
            dq.push_back(m);
        }
    }
    inner_->restoreState(r);
}

} // namespace cobra::guard
