#include "guard/post_mortem.hpp"

#include <iomanip>
#include <sstream>

namespace cobra::guard {

namespace {

std::string
hex(Addr a)
{
    if (a == kInvalidAddr)
        return "<invalid>";
    std::ostringstream oss;
    oss << "0x" << std::hex << a;
    return oss.str();
}

} // namespace

std::string
PostMortem::format() const
{
    std::ostringstream oss;
    oss << "pipeline post-mortem @ cycle " << cycle << "\n"
        << "  no commit progress for " << noProgressCycles
        << " cycles (threshold " << deadlockThreshold << ")\n"
        << "  committed insts: " << committedInsts << "\n";

    oss << "  ROB: " << robEntries << " entries";
    if (robHeadValid) {
        oss << "; head pc=" << hex(robHeadPc) << " seq=";
        if (robHeadSeq == kInvalidSeq)
            oss << "<none>";
        else
            oss << robHeadSeq;
        oss << " state=" << robHeadState << " ftq=" << robHeadFtq;
        if (robHeadWrongPath)
            oss << " (wrong-path)";
    } else {
        oss << " (empty)";
    }
    oss << "\n";

    oss << "  frontend: fetch pc=" << hex(fetchPc)
        << (onOraclePath ? " (oracle path)" : " (wrong path)")
        << ", fetch buffer " << fetchBufferInsts << " insts\n";
    oss << "  in-flight fetch packets: " << fetchPackets.size() << "\n";
    for (const auto& p : fetchPackets) {
        oss << "    pc=" << hex(p.pc) << " stage=" << p.stage
            << " stallUntil=" << p.stallUntil << "\n";
    }

    oss << "  recent redirects (newest last): " << recentRedirects.size()
        << "\n";
    for (const auto& r : recentRedirects)
        oss << "    cycle " << r.cycle << " -> " << hex(r.pc) << "\n";

    oss << "  history file: " << historyFileSize << "/"
        << historyFileCapacity << " entries, repair walk "
        << (repairWalkBusy ? "busy" : "idle") << "\n";
    return oss.str();
}

} // namespace cobra::guard
