/**
 * @file
 * Pipeline post-mortem: the watchdog's snapshot of simulator state at
 * the moment commit progress stopped. Captures what a person debugging
 * a deadlock asks for first — what is the ROB head waiting on, where
 * is fetch pointing, which packets are in flight, and where did the
 * pipeline last redirect — so a deadlocked run fails with a readable
 * report instead of a bare flag.
 */

#ifndef COBRA_GUARD_POST_MORTEM_HPP
#define COBRA_GUARD_POST_MORTEM_HPP

#include <string>
#include <vector>

#include "common/types.hpp"

namespace cobra::guard {

/** Snapshot of pipeline state when the deadlock watchdog fired. */
struct PostMortem
{
    Cycle cycle = 0;
    std::uint64_t noProgressCycles = 0; ///< Cycles since the last commit.
    std::uint64_t deadlockThreshold = 0;
    std::uint64_t committedInsts = 0;

    // ---- ROB -----------------------------------------------------------
    std::size_t robEntries = 0;
    bool robHeadValid = false;
    Addr robHeadPc = kInvalidAddr;
    SeqNum robHeadSeq = kInvalidSeq;
    std::string robHeadState; ///< "waiting" / "issued" / "done".
    bool robHeadWrongPath = false;
    std::uint64_t robHeadFtq = 0;

    // ---- Frontend ------------------------------------------------------
    Addr fetchPc = kInvalidAddr;
    bool onOraclePath = true;
    std::size_t fetchBufferInsts = 0;

    struct Packet
    {
        Addr pc = kInvalidAddr;
        unsigned stage = 0;
        Cycle stallUntil = 0;
    };
    std::vector<Packet> fetchPackets; ///< In-flight, oldest first.

    struct Redirect
    {
        Addr pc = kInvalidAddr;
        Cycle cycle = 0;
    };
    std::vector<Redirect> recentRedirects; ///< Newest last.

    // ---- BPU management ------------------------------------------------
    std::size_t historyFileSize = 0;
    unsigned historyFileCapacity = 0;
    bool repairWalkBusy = false;

    /** Human-readable multi-line report. */
    std::string format() const;
};

} // namespace cobra::guard

#endif // COBRA_GUARD_POST_MORTEM_HPP
