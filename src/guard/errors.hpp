/**
 * @file
 * SimGuard structured errors. Every failure the framework can detect
 * at runtime maps onto one of three categories:
 *
 *  - ConfigError        — an invalid configuration or topology, caught
 *                         before (or while) models are constructed;
 *  - ContractViolation  — a component or the composer broke the COBRA
 *                         event contract of paper §III (detected by
 *                         the ContractAuditor or the base-class
 *                         contract helpers);
 *  - DeadlockError      — the pipeline stopped committing; carries the
 *                         watchdog's post-mortem text;
 *  - CheckpointError    — a warp-mode checkpoint could not be written,
 *                         read, or applied (corruption, truncation,
 *                         version/config mismatch);
 *  - TimeoutError       — a cooperative wall-clock watchdog expired
 *                         while driving a simulation point (the serve
 *                         daemon's per-point deadline).
 *
 * All derive from SimError, which itself derives from std::logic_error
 * so legacy call sites (and tests) that catch std::logic_error keep
 * working unchanged.
 *
 * The hierarchy doubles as a machine-readable failure taxonomy:
 * errorClassOf() maps any exception onto a stable class string
 * ("config", "contract", "deadlock", "checkpoint", "timeout", "sim",
 * "internal") used by SweepOutcome::errorClass and the cobra_serve
 * failure records, and errorClassTransient() says whether a class is
 * worth retrying (environmental, e.g. a timeout under host load or a
 * regenerable checkpoint) or deterministic (a config or contract bug
 * that will fail identically on every attempt).
 */

#ifndef COBRA_GUARD_ERRORS_HPP
#define COBRA_GUARD_ERRORS_HPP

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace cobra::guard {

/** Root of the SimGuard error hierarchy. */
class SimError : public std::logic_error
{
  public:
    explicit SimError(const std::string& msg) : std::logic_error(msg) {}
};

/** An invalid configuration, topology, or parameter combination. */
class ConfigError : public SimError
{
  public:
    explicit ConfigError(const std::string& msg)
        : SimError("invalid config: " + msg)
    {
    }

    /** Field-style message: "invalid config: <field>: <detail>". */
    ConfigError(const std::string& field, const std::string& detail)
        : SimError("invalid config: " + field + ": " + detail)
    {
    }
};

/**
 * A breach of the §III predictor interface contract. Names the
 * offending component and, when known, the query (history-file
 * position) it happened on.
 */
class ContractViolation : public SimError
{
  public:
    ContractViolation(std::string component, std::uint64_t query,
                      const std::string& detail)
        : SimError("contract violation [component=" + component +
                   " query=" + std::to_string(query) + "]: " + detail),
          component_(std::move(component)), query_(query)
    {
    }

    /** Name of the component the violation was detected on. */
    const std::string& component() const { return component_; }

    /** Query serial / history-file position the violation refers to. */
    std::uint64_t query() const { return query_; }

  private:
    std::string component_;
    std::uint64_t query_;
};

/**
 * The simulated pipeline made no commit progress for longer than the
 * configured watchdog threshold. what() is the short message; the
 * full pipeline post-mortem text is available via postMortem().
 */
class DeadlockError : public SimError
{
  public:
    DeadlockError(const std::string& msg, std::string post_mortem)
        : SimError(msg), postMortem_(std::move(post_mortem))
    {
    }

    const std::string& postMortem() const { return postMortem_; }

  private:
    std::string postMortem_;
};

/**
 * A warp-mode checkpoint failed structural validation (bad magic,
 * version skew, checksum mismatch, truncation, section-tag mismatch)
 * or does not match the simulator it is being restored into
 * (configuration fingerprint mismatch). Restores fail atomically with
 * this error instead of applying partial state.
 */
class CheckpointError : public SimError
{
  public:
    explicit CheckpointError(const std::string& msg)
        : SimError("invalid checkpoint: " + msg)
    {
    }

    /** Context-style message: "invalid checkpoint: <where>: <detail>". */
    CheckpointError(const std::string& where, const std::string& detail)
        : SimError("invalid checkpoint: " + where + ": " + detail)
    {
    }
};

/**
 * A cooperative wall-clock watchdog expired: the point's simulation
 * exceeded its deadline and was abandoned at a slice boundary. Raised
 * by deadline-driven run loops (cobra_serve), never by Simulator
 * itself.
 */
class TimeoutError : public SimError
{
  public:
    TimeoutError(const std::string& what_ran, std::uint64_t limit_ms)
        : SimError("wall-clock timeout: " + what_ran + " exceeded " +
                   std::to_string(limit_ms) + " ms"),
          limitMs_(limit_ms)
    {
    }

    std::uint64_t limitMs() const { return limitMs_; }

  private:
    std::uint64_t limitMs_;
};

/**
 * Machine-readable failure class of @p e — the error taxonomy string
 * carried by SweepOutcome::errorClass and cobra_serve point records.
 * Subclass checks run most-derived-first so e.g. a CheckpointError is
 * "checkpoint", not "sim".
 */
inline const char*
errorClassOf(const std::exception& e)
{
    if (dynamic_cast<const ConfigError*>(&e) != nullptr)
        return "config";
    if (dynamic_cast<const ContractViolation*>(&e) != nullptr)
        return "contract";
    if (dynamic_cast<const DeadlockError*>(&e) != nullptr)
        return "deadlock";
    if (dynamic_cast<const CheckpointError*>(&e) != nullptr)
        return "checkpoint";
    if (dynamic_cast<const TimeoutError*>(&e) != nullptr)
        return "timeout";
    if (dynamic_cast<const SimError*>(&e) != nullptr)
        return "sim";
    return "internal";
}

/**
 * Whether a failure class is transient — plausibly environmental, so
 * a bounded retry may succeed (timeouts under host load, checkpoint
 * cache entries that are regenerated after rejection, unclassified
 * internal errors). Deterministic classes (config, contract,
 * deadlock, sim) fail identically on every attempt and are never
 * retried.
 */
inline bool
errorClassTransient(std::string_view cls)
{
    return cls == "timeout" || cls == "checkpoint" ||
           cls == "internal";
}

} // namespace cobra::guard

#endif // COBRA_GUARD_ERRORS_HPP
