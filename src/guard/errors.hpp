/**
 * @file
 * SimGuard structured errors. Every failure the framework can detect
 * at runtime maps onto one of three categories:
 *
 *  - ConfigError        — an invalid configuration or topology, caught
 *                         before (or while) models are constructed;
 *  - ContractViolation  — a component or the composer broke the COBRA
 *                         event contract of paper §III (detected by
 *                         the ContractAuditor or the base-class
 *                         contract helpers);
 *  - DeadlockError      — the pipeline stopped committing; carries the
 *                         watchdog's post-mortem text;
 *  - CheckpointError    — a warp-mode checkpoint could not be written,
 *                         read, or applied (corruption, truncation,
 *                         version/config mismatch).
 *
 * All derive from SimError, which itself derives from std::logic_error
 * so legacy call sites (and tests) that catch std::logic_error keep
 * working unchanged.
 */

#ifndef COBRA_GUARD_ERRORS_HPP
#define COBRA_GUARD_ERRORS_HPP

#include <cstdint>
#include <stdexcept>
#include <string>

namespace cobra::guard {

/** Root of the SimGuard error hierarchy. */
class SimError : public std::logic_error
{
  public:
    explicit SimError(const std::string& msg) : std::logic_error(msg) {}
};

/** An invalid configuration, topology, or parameter combination. */
class ConfigError : public SimError
{
  public:
    explicit ConfigError(const std::string& msg)
        : SimError("invalid config: " + msg)
    {
    }

    /** Field-style message: "invalid config: <field>: <detail>". */
    ConfigError(const std::string& field, const std::string& detail)
        : SimError("invalid config: " + field + ": " + detail)
    {
    }
};

/**
 * A breach of the §III predictor interface contract. Names the
 * offending component and, when known, the query (history-file
 * position) it happened on.
 */
class ContractViolation : public SimError
{
  public:
    ContractViolation(std::string component, std::uint64_t query,
                      const std::string& detail)
        : SimError("contract violation [component=" + component +
                   " query=" + std::to_string(query) + "]: " + detail),
          component_(std::move(component)), query_(query)
    {
    }

    /** Name of the component the violation was detected on. */
    const std::string& component() const { return component_; }

    /** Query serial / history-file position the violation refers to. */
    std::uint64_t query() const { return query_; }

  private:
    std::string component_;
    std::uint64_t query_;
};

/**
 * The simulated pipeline made no commit progress for longer than the
 * configured watchdog threshold. what() is the short message; the
 * full pipeline post-mortem text is available via postMortem().
 */
class DeadlockError : public SimError
{
  public:
    DeadlockError(const std::string& msg, std::string post_mortem)
        : SimError(msg), postMortem_(std::move(post_mortem))
    {
    }

    const std::string& postMortem() const { return postMortem_; }

  private:
    std::string postMortem_;
};

/**
 * A warp-mode checkpoint failed structural validation (bad magic,
 * version skew, checksum mismatch, truncation, section-tag mismatch)
 * or does not match the simulator it is being restored into
 * (configuration fingerprint mismatch). Restores fail atomically with
 * this error instead of applying partial state.
 */
class CheckpointError : public SimError
{
  public:
    explicit CheckpointError(const std::string& msg)
        : SimError("invalid checkpoint: " + msg)
    {
    }

    /** Context-style message: "invalid checkpoint: <where>: <detail>". */
    CheckpointError(const std::string& where, const std::string& detail)
        : SimError("invalid checkpoint: " + where + ": " + detail)
    {
    }
};

} // namespace cobra::guard

#endif // COBRA_GUARD_ERRORS_HPP
