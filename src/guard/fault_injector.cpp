#include "guard/fault_injector.hpp"

#include <algorithm>

namespace cobra::guard {

FaultInjector::FaultInjector(
    std::unique_ptr<bpu::PredictorComponent> inner, FaultEngine& engine)
    : PredictorComponent(inner->name(), inner->latency(),
                         inner->fetchWidth()),
      inner_(std::move(inner)), engine_(engine)
{
}

void
FaultInjector::flipOutput(const bpu::PredictContext& ctx,
                          bpu::PredictionBundle& inout)
{
    const unsigned slots =
        std::max(1u, std::min(ctx.validSlots, inout.width));
    auto& s = inout.slots[engine_.raw() % slots];
    s.valid = true;
    s.taken = !s.taken;
    engine_.countOutputFault();
}

void
FaultInjector::predict(const bpu::PredictContext& ctx,
                       bpu::PredictionBundle& inout, bpu::Metadata& meta)
{
    if (engine_.roll()) {
        // Prefer corrupting table state (a particle strike in SRAM);
        // the prediction then reads the corrupted row. Components
        // without injectable tables get an output-bit flip instead.
        if (inner_->flipStateBit(engine_.raw())) {
            engine_.countTableFault();
        } else {
            inner_->predict(ctx, inout, meta);
            flipOutput(ctx, inout);
            return;
        }
    }
    inner_->predict(ctx, inout, meta);
}

void
FaultInjector::arbitrate(const bpu::PredictContext& ctx,
                         std::span<const bpu::PredictionBundle> inputs,
                         bpu::PredictionBundle& inout, bpu::Metadata& meta)
{
    if (engine_.roll()) {
        if (inner_->flipStateBit(engine_.raw())) {
            engine_.countTableFault();
        } else {
            inner_->arbitrate(ctx, inputs, inout, meta);
            flipOutput(ctx, inout);
            return;
        }
    }
    inner_->arbitrate(ctx, inputs, inout, meta);
}

void
FaultInjector::update(const bpu::ResolveEvent& ev)
{
    if (engine_.roll()) {
        engine_.countDroppedUpdate();
        return;
    }
    inner_->update(ev);
}

} // namespace cobra::guard
