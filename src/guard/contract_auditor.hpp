/**
 * @file
 * ContractAuditor: a decorator around any PredictorComponent that
 * verifies the COBRA interface contract (paper §III) at runtime:
 *
 *  - predict/arbitrate is called exactly once per query, never before
 *    the component's latency stage, with a strictly increasing query
 *    serial;
 *  - histories obey the Fetch-1 rule: null ghist at stage 1 for
 *    1-cycle components, non-null ghist at stages >= 2;
 *  - the metadata a component writes fits in its declared metaBits()
 *    (checked as population count, since components may pack fields
 *    sparsely within their declared width);
 *  - the metadata recorded at fire time is handed back verbatim in
 *    mispredict / repair / update events.
 *
 * Violations throw guard::ContractViolation naming the component and
 * the query. The auditor is only interposed when auditing is enabled,
 * so the unaudited hot path pays nothing.
 */

#ifndef COBRA_GUARD_CONTRACT_AUDITOR_HPP
#define COBRA_GUARD_CONTRACT_AUDITOR_HPP

#include <deque>
#include <map>
#include <memory>

#include "bpu/component.hpp"

namespace cobra::guard {

class ContractAuditor final : public bpu::PredictorComponent
{
  public:
    explicit ContractAuditor(
        std::unique_ptr<bpu::PredictorComponent> inner);

    /** The wrapped component (for tests / diagnostics). */
    const bpu::PredictorComponent& inner() const { return *inner_; }

    /** Number of contract checks performed so far. */
    std::uint64_t checks() const { return checks_; }

    // ---- Forwarded interface ------------------------------------------

    unsigned metaBits() const override { return inner_->metaBits(); }
    bool usesLocalHistory() const override
    {
        return inner_->usesLocalHistory();
    }
    bool isArbiter() const override { return inner_->isArbiter(); }
    std::uint64_t storageBits() const override
    {
        return inner_->storageBits();
    }
    phys::PhysicalCost physicalCost() const override
    {
        return inner_->physicalCost();
    }
    phys::AccessProfile predictAccess() const override
    {
        return inner_->predictAccess();
    }
    phys::AccessProfile updateAccess() const override
    {
        return inner_->updateAccess();
    }
    std::string describe() const override { return inner_->describe(); }
    bool flipStateBit(std::uint64_t rand) override
    {
        return inner_->flipStateBit(rand);
    }

    // ---- Audited interface --------------------------------------------

    void predict(const bpu::PredictContext& ctx,
                 bpu::PredictionBundle& inout,
                 bpu::Metadata& meta) override;

    void arbitrate(const bpu::PredictContext& ctx,
                   std::span<const bpu::PredictionBundle> inputs,
                   bpu::PredictionBundle& inout,
                   bpu::Metadata& meta) override;

    void fire(const bpu::FireEvent& ev) override;
    void mispredict(const bpu::ResolveEvent& ev) override;
    void repair(const bpu::ResolveEvent& ev) override;
    void update(const bpu::ResolveEvent& ev) override;

    /** Serializes the audit bookkeeping, then the wrapped component. */
    void saveState(warp::StateWriter& w) const override;
    void restoreState(warp::StateReader& r) override;

  private:
    /** Shared stage/history/serial checks for predict and arbitrate. */
    void checkQueryContext(const bpu::PredictContext& ctx);

    /** Metadata must fit the declared width (popcount test). */
    void checkMetaWidth(const bpu::Metadata& meta, std::uint64_t query,
                        const char* when) const;

    [[noreturn]] void violation(std::uint64_t query,
                                const std::string& detail) const;

    std::unique_ptr<bpu::PredictorComponent> inner_;
    std::uint64_t lastSerial_ = 0;
    std::uint64_t checks_ = 0;

    /**
     * Metadata recorded at fire time, keyed by history-file position.
     * Positions are recycled after squashes (the tail rewinds), so a
     * position can hold several generations: repair events consume the
     * oldest (front), update events the newest (back). Bounded by
     * evicting the oldest positions beyond kMaxTracked.
     */
    std::map<std::uint64_t, std::deque<bpu::Metadata>> pending_;

    static constexpr std::size_t kMaxTracked = 1024;
    static constexpr std::size_t kMaxGenerations = 8;
};

} // namespace cobra::guard

#endif // COBRA_GUARD_CONTRACT_AUDITOR_HPP
