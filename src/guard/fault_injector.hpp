/**
 * @file
 * Seeded, deterministic fault injection for predictor robustness
 * studies: with a configured per-event probability, flip one bit of a
 * component's architectural table state (or, when the component has
 * no injectable tables, one bit of its prediction output) and drop
 * commit-time update events. The composer's management structures
 * must degrade gracefully — MPKI rises, nothing crashes, and no
 * contract violation is introduced (faults corrupt state, never the
 * event protocol).
 */

#ifndef COBRA_GUARD_FAULT_INJECTOR_HPP
#define COBRA_GUARD_FAULT_INJECTOR_HPP

#include <memory>

#include "bpu/component.hpp"
#include "common/random.hpp"
#include "common/stats.hpp"
#include "warp/state_util.hpp"

namespace cobra::guard {

/**
 * Shared fault source and counters for one simulation. Owned by the
 * Simulator; referenced by the per-component FaultInjector wrappers
 * so one seed drives a deterministic global fault sequence.
 */
class FaultEngine
{
  public:
    FaultEngine(double rate, std::uint64_t seed)
        : rate_(rate), rng_(seed ^ 0xFA017'5EEDull)
    {
    }

    double rate() const { return rate_; }
    bool enabled() const { return rate_ > 0.0; }

    /** One Bernoulli trial at the configured rate. */
    bool roll() { return rate_ > 0.0 && rng_.chance(rate_); }

    /** Raw randomness for choosing the faulted bit. */
    std::uint64_t raw() { return rng_.next(); }

    void countTableFault() { ++tableFaults_; }
    void countOutputFault() { ++outputFaults_; }
    void countDroppedUpdate() { ++droppedUpdates_; }

    std::uint64_t tableFaults() const { return tableFaults_.value(); }
    std::uint64_t outputFaults() const { return outputFaults_.value(); }
    std::uint64_t droppedUpdates() const
    {
        return droppedUpdates_.value();
    }
    std::uint64_t faultsInjected() const
    {
        return tableFaults() + outputFaults();
    }

    /** Registered stat handles for the registry ("guard" group). */
    const StatGroup& stats() const { return stats_; }

    /**
     * Checkpoint the fault sequence position. The counters live in
     * the "guard" stat group and round-trip with the stat registry;
     * only the RNG core is serialized here.
     */
    void saveState(warp::StateWriter& w) const { warp::saveRng(w, rng_); }
    void restoreState(warp::StateReader& r) { warp::loadRng(r, rng_); }

  private:
    double rate_;
    Rng rng_;

    StatGroup stats_{"guard"};
    Stat<Counter> tableFaults_{stats_, "table_faults",
                               "predictor table bits flipped"};
    Stat<Counter> outputFaults_{stats_, "output_faults",
                                "prediction outputs flipped"};
    Stat<Counter> droppedUpdates_{stats_, "dropped_updates",
                                  "commit updates dropped"};
};

/**
 * Decorator injecting faults into one wrapped component. Predict-side
 * rolls flip table state (preferred) or the produced prediction;
 * update-side rolls drop the commit update entirely. All other events
 * forward untouched, so the §III contract stays intact.
 */
class FaultInjector final : public bpu::PredictorComponent
{
  public:
    FaultInjector(std::unique_ptr<bpu::PredictorComponent> inner,
                  FaultEngine& engine);

    // ---- Forwarded interface ------------------------------------------

    unsigned metaBits() const override { return inner_->metaBits(); }
    bool usesLocalHistory() const override
    {
        return inner_->usesLocalHistory();
    }
    bool isArbiter() const override { return inner_->isArbiter(); }
    std::uint64_t storageBits() const override
    {
        return inner_->storageBits();
    }
    phys::PhysicalCost physicalCost() const override
    {
        return inner_->physicalCost();
    }
    phys::AccessProfile predictAccess() const override
    {
        return inner_->predictAccess();
    }
    phys::AccessProfile updateAccess() const override
    {
        return inner_->updateAccess();
    }
    std::string describe() const override { return inner_->describe(); }
    bool flipStateBit(std::uint64_t rand) override
    {
        return inner_->flipStateBit(rand);
    }

    void fire(const bpu::FireEvent& ev) override { inner_->fire(ev); }
    void mispredict(const bpu::ResolveEvent& ev) override
    {
        inner_->mispredict(ev);
    }
    void repair(const bpu::ResolveEvent& ev) override
    {
        inner_->repair(ev);
    }

    /** The injector is stateless (the engine checkpoints the RNG). */
    void saveState(warp::StateWriter& w) const override
    {
        inner_->saveState(w);
    }
    void restoreState(warp::StateReader& r) override
    {
        inner_->restoreState(r);
    }

    // ---- Faulted interface --------------------------------------------

    void predict(const bpu::PredictContext& ctx,
                 bpu::PredictionBundle& inout,
                 bpu::Metadata& meta) override;

    void arbitrate(const bpu::PredictContext& ctx,
                   std::span<const bpu::PredictionBundle> inputs,
                   bpu::PredictionBundle& inout,
                   bpu::Metadata& meta) override;

    void update(const bpu::ResolveEvent& ev) override;

  private:
    /** Flip the direction of one slot of the produced bundle. */
    void flipOutput(const bpu::PredictContext& ctx,
                    bpu::PredictionBundle& inout);

    std::unique_ptr<bpu::PredictorComponent> inner_;
    FaultEngine& engine_;
};

} // namespace cobra::guard

#endif // COBRA_GUARD_FAULT_INJECTOR_HPP
