/**
 * @file
 * Analytical physical-design model standing in for the paper's
 * commercial-FinFET Cadence Genus synthesis flow (DESIGN.md §1).
 *
 * Every hardware structure in the model describes itself as a
 * PhysicalCost: SRAM bits (with port/bank configuration), flop bits,
 * CAM bits, and random-logic gate equivalents. The AreaModel converts
 * a PhysicalCost into um^2 using FinFET-proxy constants, CACTI-style.
 * Only *relative* areas are meaningful; we calibrate the constants so
 * structure-to-structure ratios track published FinFET data.
 */

#ifndef COBRA_PHYS_AREA_MODEL_HPP
#define COBRA_PHYS_AREA_MODEL_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace cobra::phys {

/** Port configuration of a memory macro. */
struct PortConfig
{
    unsigned readPorts = 1;
    unsigned writePorts = 1;
    unsigned readWritePorts = 0;

    /** Total effective port count. */
    unsigned total() const { return readPorts + writePorts + readWritePorts; }
};

/** Raw bit/gate inventory of one hardware structure. */
struct PhysicalCost
{
    std::uint64_t sramBits = 0;   ///< Bits mapped to SRAM macros.
    std::uint64_t flopBits = 0;   ///< Bits kept in flip-flops.
    std::uint64_t camBits = 0;    ///< Content-addressable bits.
    std::uint64_t logicGates = 0; ///< NAND2-equivalent random logic.
    PortConfig sramPorts{};       ///< Ports on the SRAM macros.

    PhysicalCost& operator+=(const PhysicalCost& o);

    friend PhysicalCost
    operator+(PhysicalCost a, const PhysicalCost& b)
    {
        a += b;
        return a;
    }
};

/** FinFET-proxy technology constants (nominally a 14/16nm-class node). */
struct TechParams
{
    double sramBitCellUm2 = 0.090;  ///< 6T single-port bit cell + array overhead share.
    double flopUm2 = 0.95;          ///< One flip-flop incl. clock tree share.
    double camBitUm2 = 0.35;        ///< One CAM bit (match line + cell).
    double nand2Um2 = 0.20;         ///< One NAND2-equivalent of random logic.
    double perPortFactor = 0.55;    ///< Area multiplier per port beyond the first.
    double macroOverhead = 1.25;    ///< Decoder/sense-amp/periphery multiplier.

    /** Default constants used across the repository. */
    static TechParams finfetProxy() { return TechParams{}; }
};

/** One named line item in an area report. */
struct AreaItem
{
    std::string name;
    double um2 = 0.0;
};

/** A named breakdown (e.g., predictor sub-components, or core blocks). */
struct AreaReport
{
    std::string title;
    std::vector<AreaItem> items;

    double total() const;
    /** Add an item; merges with an existing item of the same name. */
    void add(const std::string& name, double um2);
};

/**
 * Converts PhysicalCost inventories into area estimates.
 */
class AreaModel
{
  public:
    explicit AreaModel(TechParams tech = TechParams::finfetProxy())
        : tech_(tech)
    {}

    /** Area of one structure in um^2. */
    double area(const PhysicalCost& cost) const;

    /** Area of SRAM bits alone under a port configuration. */
    double sramArea(std::uint64_t bits, const PortConfig& ports) const;

    const TechParams& tech() const { return tech_; }

  private:
    TechParams tech_;
};

} // namespace cobra::phys

#endif // COBRA_PHYS_AREA_MODEL_HPP
