/**
 * @file
 * Access-energy model (the paper's §VI-A future-work item: "the
 * energy cost of continuously reading predictor SRAMs is
 * significant" [36]). Converts per-access bit counts into pJ using
 * FinFET-proxy energies; combined with the simulator's event counts
 * it yields energy-per-prediction and energy-per-kiloinstruction.
 */

#ifndef COBRA_PHYS_ENERGY_MODEL_HPP
#define COBRA_PHYS_ENERGY_MODEL_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace cobra::phys {

/** FinFET-proxy access energies. */
struct EnergyParams
{
    double sramReadPjPerBit = 0.012;  ///< Read energy per bit.
    double sramWritePjPerBit = 0.018; ///< Write energy per bit.
    double flopPjPerBit = 0.002;      ///< Clocking energy per bit.
    double camSearchPjPerBit = 0.030; ///< CAM match-line energy.

    static EnergyParams finfetProxy() { return EnergyParams{}; }
};

/** Per-structure access profile for one event (predict or update). */
struct AccessProfile
{
    std::uint64_t sramReadBits = 0;
    std::uint64_t sramWriteBits = 0;
    std::uint64_t camSearchBits = 0;
};

/** One line item of an energy report. */
struct EnergyItem
{
    std::string name;
    double pj = 0.0;
};

/** A named energy breakdown. */
struct EnergyReport
{
    std::string title;
    std::vector<EnergyItem> items;

    double
    totalPj() const
    {
        double t = 0.0;
        for (const auto& it : items)
            t += it.pj;
        return t;
    }

    void
    add(const std::string& name, double pj)
    {
        for (auto& it : items) {
            if (it.name == name) {
                it.pj += pj;
                return;
            }
        }
        items.push_back({name, pj});
    }
};

/** Converts access profiles and counts into energy. */
class EnergyModel
{
  public:
    explicit EnergyModel(EnergyParams p = EnergyParams::finfetProxy())
        : params_(p)
    {
    }

    /** Energy of one access with the given profile, in pJ. */
    double
    accessPj(const AccessProfile& a) const
    {
        return a.sramReadBits * params_.sramReadPjPerBit +
               a.sramWriteBits * params_.sramWritePjPerBit +
               a.camSearchBits * params_.camSearchPjPerBit;
    }

    const EnergyParams& params() const { return params_; }

  private:
    EnergyParams params_;
};

} // namespace cobra::phys

#endif // COBRA_PHYS_ENERGY_MODEL_HPP
