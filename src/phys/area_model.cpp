#include "phys/area_model.hpp"

#include <algorithm>

namespace cobra::phys {

PhysicalCost&
PhysicalCost::operator+=(const PhysicalCost& o)
{
    sramBits += o.sramBits;
    flopBits += o.flopBits;
    camBits += o.camBits;
    logicGates += o.logicGates;
    // Keep the more expensive port configuration; component-level
    // reports are computed per-structure, so this only matters for
    // coarse roll-ups where a conservative estimate is acceptable.
    if (o.sramPorts.total() > sramPorts.total())
        sramPorts = o.sramPorts;
    return *this;
}

double
AreaReport::total() const
{
    double t = 0.0;
    for (const auto& it : items)
        t += it.um2;
    return t;
}

void
AreaReport::add(const std::string& name, double um2)
{
    for (auto& it : items) {
        if (it.name == name) {
            it.um2 += um2;
            return;
        }
    }
    items.push_back({name, um2});
}

double
AreaModel::sramArea(std::uint64_t bits, const PortConfig& ports) const
{
    if (bits == 0)
        return 0.0;
    const unsigned extraPorts = ports.total() > 1 ? ports.total() - 1 : 0;
    const double portMult = 1.0 + tech_.perPortFactor * extraPorts;
    return static_cast<double>(bits) * tech_.sramBitCellUm2 * portMult *
           tech_.macroOverhead;
}

double
AreaModel::area(const PhysicalCost& cost) const
{
    double a = sramArea(cost.sramBits, cost.sramPorts);
    a += static_cast<double>(cost.flopBits) * tech_.flopUm2;
    a += static_cast<double>(cost.camBits) * tech_.camBitUm2;
    a += static_cast<double>(cost.logicGates) * tech_.nand2Um2;
    return a;
}

} // namespace cobra::phys
