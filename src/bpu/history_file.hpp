/**
 * @file
 * The history file (paper §IV-B1): a circular buffer tracking every
 * in-flight prediction. Entries carry the predict-time PC, history
 * snapshots, per-component metadata, and the finalized prediction;
 * the backend fills in resolved outcomes; entries are dequeued in
 * program order as branches commit, driving update events.
 *
 * Public indices are monotonically increasing 64-bit positions (never
 * recycled), so stale references are detectable; the storage itself
 * is a fixed-capacity ring, and capacity models real FTQ pressure —
 * when the file is full the frontend stalls.
 */

#ifndef COBRA_BPU_HISTORY_FILE_HPP
#define COBRA_BPU_HISTORY_FILE_HPP

#include <cassert>
#include <cstdint>
#include <vector>

#include "bpu/pred_types.hpp"
#include "phys/area_model.hpp"

namespace cobra::warp {
class StateWriter;
class StateReader;
} // namespace cobra::warp

namespace cobra::bpu {

/** Monotonic position of an entry in the history file. */
using FtqPos = std::uint64_t;

/** One in-flight prediction record. */
struct HistoryFileEntry
{
    Addr pc = kInvalidAddr;
    /** Number of instruction slots this packet actually fetched. */
    unsigned fetchedSlots = 0;

    /** Histories as provided to the predictors (§IV-B1). */
    HistoryRegister ghist{1};
    std::uint64_t lhist = 0;
    /** Path history as provided at predict time (§IV-B3 extension). */
    std::uint64_t phist = 0;
    /** Pre-fire lhist value, for walk repair of the local provider. */
    std::uint64_t lhistBefore = 0;

    /** Per-component metadata gathered at predict time (§III-D). */
    MetadataBundle metas;

    /** Finalized (Fetch-3) prediction for the packet. */
    PredictionBundle finalPred;

    /** Slots holding conditional branches (known at finalize). */
    std::array<bool, kMaxFetchWidth> brMask{};
    /** Speculative directions recorded at fire time. */
    std::array<bool, kMaxFetchWidth> specTakenMask{};

    /** Per-slot component index that provided the direction/target in
     *  the finalized prediction (CobraScope attribution; finalize
     *  always overwrites these from the query state). */
    std::array<std::uint8_t, kMaxFetchWidth> dirProvider{};
    std::array<std::uint8_t, kMaxFetchWidth> targetProvider{};

    /** RAS pointer snapshot for frontend repair. */
    std::uint32_t rasPtr = 0;

    /** Sequence number of the packet's first instruction. */
    SeqNum firstSeq = kInvalidSeq;

    // ---- Filled in by the backend at resolution ----------------------
    bool resolved = false;
    bool mispredicted = false;
    std::array<bool, kMaxFetchWidth> takenMask{};
    bool cfiValid = false;
    unsigned cfiIdx = 0;
    CfiType cfiType = CfiType::None;
    bool cfiTaken = false;
    bool cfiIsCall = false;
    bool cfiIsRet = false;
    Addr actualTarget = kInvalidAddr;

    /** Marked by the backend's SFB pass: do not train predictors. */
    std::array<bool, kMaxFetchWidth> sfbMask{};

    /** Ready to be dequeued (the packet's branches committed). */
    bool committed = false;

    /** Checkpoint one entry (warp snapshots; defined in bpu.cpp). */
    void saveState(warp::StateWriter& w) const;
    void restoreState(warp::StateReader& r);
};

/**
 * Fixed-capacity circular buffer of HistoryFileEntry with monotonic
 * positions.
 */
class HistoryFile
{
  public:
    explicit HistoryFile(unsigned capacity = 32)
        : capacity_(capacity), ring_(capacity)
    {
        assert(capacity >= 2);
    }

    bool full() const { return tail_ - head_ >= capacity_; }
    bool empty() const { return tail_ == head_; }
    std::size_t size() const { return static_cast<std::size_t>(tail_ - head_); }
    unsigned capacity() const { return capacity_; }

    /** Position of the oldest entry (only valid when !empty()). */
    FtqPos headPos() const { return head_; }
    /** One past the youngest entry. */
    FtqPos tailPos() const { return tail_; }

    /** True if @p pos currently addresses a live entry. */
    bool contains(FtqPos pos) const { return pos >= head_ && pos < tail_; }

    /** Enqueue a new entry; must not be full. Returns its position. */
    FtqPos
    enqueue(HistoryFileEntry entry)
    {
        assert(!full());
        ring_[tail_ % capacity_] = std::move(entry);
        return tail_++;
    }

    HistoryFileEntry&
    at(FtqPos pos)
    {
        assert(contains(pos));
        return ring_[pos % capacity_];
    }

    const HistoryFileEntry&
    at(FtqPos pos) const
    {
        assert(contains(pos));
        return ring_[pos % capacity_];
    }

    HistoryFileEntry& head() { return at(head_); }

    /** Dequeue the oldest entry (after its update has been issued). */
    void
    dequeueHead()
    {
        assert(!empty());
        ++head_;
    }

    /** Drop every entry younger than @p pos (exclusive). */
    void
    squashAfter(FtqPos pos)
    {
        assert(contains(pos));
        tail_ = pos + 1;
    }

    /** Drop everything (full pipeline flush). */
    void squashAll() { tail_ = head_; }

    /**
     * Storage accounting: per-entry cost is dominated by the ghist
     * snapshot, metadata, and prediction record (the "Meta" slice of
     * Fig. 8).
     */
    std::uint64_t
    storageBits(unsigned ghist_bits, unsigned meta_bits,
                unsigned width) const
    {
        const std::uint64_t perEntry =
            64 /* pc */ + ghist_bits + 64 /* lhist */ + meta_bits +
            static_cast<std::uint64_t>(width) * 4 /* masks */ +
            width * 2 /* pred dir bits */ + 64 /* target */ +
            16 /* bookkeeping */;
        return perEntry * capacity_;
    }

    phys::PhysicalCost
    physicalCost(unsigned ghist_bits, unsigned meta_bits,
                 unsigned width) const
    {
        phys::PhysicalCost c;
        // History files are commonly flop/latch arrays due to the
        // random-access repair walk; cost as flops.
        c.flopBits = storageBits(ghist_bits, meta_bits, width);
        c.logicGates = 2000;
        return c;
    }

    /** Checkpoint positions and live entries (warp snapshots). */
    void saveState(warp::StateWriter& w) const;
    void restoreState(warp::StateReader& r);

  private:
    unsigned capacity_;
    FtqPos head_ = 0;
    FtqPos tail_ = 0;
    std::vector<HistoryFileEntry> ring_;
};

} // namespace cobra::bpu

#endif // COBRA_BPU_HISTORY_FILE_HPP
