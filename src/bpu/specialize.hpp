/**
 * @file
 * Specialized simulation loops (ROADMAP item 4): a compile-time
 * registry of devirtualized call tables for the library's concrete
 * component types, plus a registry of the composed tuples the paper's
 * designs use. When a topology's structural key (see
 * Topology::specializedKey) matches a registered tuple and every
 * component resolves to a known call table, the composer binds the
 * fused loop: predict/arbitrate and the four resolution events run
 * through direct (devirtualized) calls and a flattened per-stage
 * evaluation plan instead of virtual dispatch over a recursive tree
 * walk.
 *
 * The fused loop shares the generic path's algorithm code — the thunks
 * below only change *how the call is dispatched*, never what it does —
 * so generic and specialized runs are bit-identical by construction
 * (enforced by tests/test_specialize.cpp and the CI
 * specialize-exactness leg).
 *
 * Guard decorators (ContractAuditor, FaultInjector) keep the empty
 * default typeKey(), so audited or fault-injected topologies always
 * fall back to the generic path where every virtual call is observed.
 */

#ifndef COBRA_BPU_SPECIALIZE_HPP
#define COBRA_BPU_SPECIALIZE_HPP

#include <span>
#include <string>
#include <vector>

#include "bpu/component.hpp"

namespace cobra::bpu::spec {

/**
 * Devirtualized call table for one concrete (final) component type.
 * Each thunk static_casts to the concrete type and calls the member
 * directly; because the library's component classes are final, the
 * compiler emits direct calls with no vtable load.
 */
struct CompOps
{
    void (*predict)(PredictorComponent*, const PredictContext&,
                    PredictionBundle&, Metadata&);
    void (*arbitrate)(PredictorComponent*, const PredictContext&,
                      std::span<const PredictionBundle>,
                      PredictionBundle&, Metadata&);
    void (*fire)(PredictorComponent*, const FireEvent&);
    void (*mispredict)(PredictorComponent*, const ResolveEvent&);
    void (*repair)(PredictorComponent*, const ResolveEvent&);
    void (*update)(PredictorComponent*, const ResolveEvent&);
    void (*prefetch)(const PredictorComponent*, const PredictContext&);
};

/** Build the call table for concrete component type @p T. */
template <typename T>
const CompOps*
opsOf()
{
    static const CompOps ops = {
        [](PredictorComponent* c, const PredictContext& ctx,
           PredictionBundle& b, Metadata& m) {
            static_cast<T*>(c)->predict(ctx, b, m);
        },
        [](PredictorComponent* c, const PredictContext& ctx,
           std::span<const PredictionBundle> in, PredictionBundle& b,
           Metadata& m) {
            static_cast<T*>(c)->arbitrate(ctx, in, b, m);
        },
        [](PredictorComponent* c, const FireEvent& ev) {
            static_cast<T*>(c)->fire(ev);
        },
        [](PredictorComponent* c, const ResolveEvent& ev) {
            static_cast<T*>(c)->mispredict(ev);
        },
        [](PredictorComponent* c, const ResolveEvent& ev) {
            static_cast<T*>(c)->repair(ev);
        },
        [](PredictorComponent* c, const ResolveEvent& ev) {
            static_cast<T*>(c)->update(ev);
        },
        [](const PredictorComponent* c, const PredictContext& ctx) {
            static_cast<const T*>(c)->prefetch(ctx);
        },
    };
    return &ops;
}

/**
 * Resolve @p c's typeKey() against the library's component types.
 * Returns nullptr for unknown or empty keys (e.g. guard wrappers),
 * which forces the generic path.
 */
const CompOps* opsFor(const PredictorComponent& c);

/**
 * True when @p key names a registered component tuple. The paper's
 * design tuples (Tournament, B2, TAGE-L/REF-BIG) are pre-registered;
 * new tuples are added with registerKey() (see docs/PERFORMANCE.md,
 * "Registering a new tuple").
 */
bool isRegisteredKey(const std::string& key);

/** Register a tuple key for specialization (idempotent, thread-safe). */
void registerKey(const std::string& key);

/** All registered tuple keys, sorted (for reports and tests). */
std::vector<std::string> registeredKeys();

} // namespace cobra::bpu::spec

#endif // COBRA_BPU_SPECIALIZE_HPP
