/**
 * @file
 * Local history provider (paper §IV-B3): a PC-indexed table of
 * per-branch outcome histories, speculatively updated at fire time
 * and repaired by the forwards-walk mechanism after mispredicts.
 */

#ifndef COBRA_BPU_LHIST_HPP
#define COBRA_BPU_LHIST_HPP

#include <cstdint>
#include <vector>

#include "common/bitutil.hpp"
#include "common/types.hpp"
#include "phys/area_model.hpp"
#include "warp/state_io.hpp"

namespace cobra::bpu {

/**
 * PC-indexed local history table. Histories are at most 64 bits
 * (bit 0 = most recent outcome of the branch mapping to that set).
 */
class LocalHistoryProvider
{
  public:
    /**
     * @param sets     Number of history entries (power of two).
     * @param histLen  History length in bits (1..64).
     * @param shift    Low PC bits ignored when indexing.
     */
    LocalHistoryProvider(unsigned sets = 256, unsigned hist_len = 32,
                         unsigned shift = 4)
        : sets_(sets), histLen_(hist_len), shift_(shift),
          table_(sets, 0)
    {
    }

    /** Index for a PC. */
    std::size_t
    indexOf(Addr pc) const
    {
        return static_cast<std::size_t>((pc >> shift_) % sets_);
    }

    /** Read the history provided to predictors at Fetch-1. */
    std::uint64_t read(Addr pc) const { return table_[indexOf(pc)]; }

    /** Speculative update at fire time: shift in a predicted outcome. */
    void
    specUpdate(Addr pc, bool taken)
    {
        std::uint64_t& h = table_[indexOf(pc)];
        h = ((h << 1) | (taken ? 1 : 0)) & maskBits(histLen_);
    }

    /** Repair: restore the entry for @p pc to @p value. */
    void restore(Addr pc, std::uint64_t value)
    {
        table_[indexOf(pc)] = value & maskBits(histLen_);
    }

    unsigned sets() const { return sets_; }
    unsigned histLen() const { return histLen_; }

    /** Checkpoint the full history table (warp snapshots). */
    void saveState(warp::StateWriter& w) const { w.vecU(table_); }

    void
    restoreState(warp::StateReader& r)
    {
        std::vector<std::uint64_t> t = r.vecU<std::uint64_t>();
        if (t.size() != table_.size())
            r.fail("local-history table size does not match");
        table_ = std::move(t);
    }

    /** Table storage in bits (the "large PC-indexed table" of Fig. 8). */
    std::uint64_t
    storageBits() const
    {
        return static_cast<std::uint64_t>(sets_) * histLen_;
    }

    phys::PhysicalCost
    physicalCost() const
    {
        phys::PhysicalCost c;
        c.sramBits = storageBits();
        c.sramPorts = {1, 1, 0};
        c.logicGates = 300;
        return c;
    }

  private:
    unsigned sets_;
    unsigned histLen_;
    unsigned shift_;
    std::vector<std::uint64_t> table_;
};

} // namespace cobra::bpu

#endif // COBRA_BPU_LHIST_HPP
