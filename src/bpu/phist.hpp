/**
 * @file
 * Path-history provider (paper §IV-B3: "Other variants of history
 * information, like path histories, can also be implemented as new
 * history providers" — implemented here, after Nair's dynamic
 * path-based correlation). The register folds low PC bits of each
 * taken control-flow instruction; components use it through the
 * PredictContext::phist field (e.g. HBIM's PathHash index mode).
 */

#ifndef COBRA_BPU_PHIST_HPP
#define COBRA_BPU_PHIST_HPP

#include <cstdint>

#include "common/bitutil.hpp"
#include "common/types.hpp"
#include "phys/area_model.hpp"

namespace cobra::bpu {

/**
 * Speculative path-history register: per taken CFI, shifts in a few
 * low PC bits. Snapshot/restore like the global history register.
 */
class PathHistoryProvider
{
  public:
    /**
     * @param length    Register length in bits.
     * @param bitsPerCfi PC bits folded in per taken CFI.
     */
    explicit PathHistoryProvider(unsigned length = 32,
                                 unsigned bits_per_cfi = 3)
        : length_(length), bitsPerCfi_(bits_per_cfi)
    {
    }

    /** Current speculative path history. */
    std::uint64_t current() const { return path_; }

    /** Speculatively record a taken CFI at @p pc. */
    void
    push(Addr pc)
    {
        path_ = ((path_ << bitsPerCfi_) ^ (pc >> 2)) & maskBits(length_);
    }

    /** Restore from a history-file snapshot. */
    void restore(std::uint64_t snap) { path_ = snap & maskBits(length_); }

    unsigned length() const { return length_; }

    std::uint64_t storageBits() const { return length_; }

    phys::PhysicalCost
    physicalCost() const
    {
        phys::PhysicalCost c;
        c.flopBits = length_;
        c.logicGates = 3 * length_;
        return c;
    }

  private:
    unsigned length_;
    unsigned bitsPerCfi_;
    std::uint64_t path_ = 0;
};

} // namespace cobra::bpu

#endif // COBRA_BPU_PHIST_HPP
