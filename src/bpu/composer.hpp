/**
 * @file
 * The COBRA predictor composer (paper §IV-B): interprets a Topology
 * to generate the staged predictor pipeline. For a query, the bundle
 * visible at stage d is the fold of all sub-components with latency
 * <= d in priority order; a component's response is computed exactly
 * once (at its latency, with the predict_in of that stage) and its
 * field-level overrides are replayed onto later stages, so earlier
 * predictions are "carried over" exactly as in the paper's Fig. 4.
 */

#ifndef COBRA_BPU_COMPOSER_HPP
#define COBRA_BPU_COMPOSER_HPP

#include <memory>
#include <vector>

#include "bpu/topology.hpp"
#include "common/stats.hpp"

namespace cobra::warp {
class StateWriter;
class StateReader;
} // namespace cobra::warp

namespace cobra::bpu::spec {
struct CompOps;
} // namespace cobra::bpu::spec

namespace cobra::bpu {

/** Field groups a component can provide for a slot (pass-through
 *  tracking; see paper §III-F on partial predictions). */
enum ProvideMask : std::uint8_t
{
    kProvideNone = 0,
    kProvideDir = 1,   ///< valid/taken direction fields.
    kProvideTarget = 2, ///< targetValid/target fields.
    kProvideType = 4,  ///< CFI type / call / ret fields.
};

/** "No component provided this field" marker for provider indices. */
inline constexpr std::uint8_t kNoProvider = 0xFF;

/**
 * Per-query evaluation state. The frontend creates one per fetch
 * packet and evaluates stages in increasing order (1, 2, ..., D).
 */
class QueryState
{
  public:
    QueryState() = default;

    /** Reset for a new query over @p numComponents components.
     *  @p serial is the BPU's monotonic query id (0 outside a BPU). */
    void reset(Addr pc, unsigned valid_slots, unsigned num_components,
               unsigned width, std::uint64_t serial = 0);

    /** Capture histories (call at the end of Fetch-1, §III-B). */
    void
    captureHistory(const HistoryRegister& ghist, std::uint64_t lhist,
                   std::uint64_t phist = 0)
    {
        ghist_ = ghist;
        lhist_ = lhist;
        phist_ = phist;
        histCaptured_ = true;
    }

    bool historyCaptured() const { return histCaptured_; }
    Addr pc() const { return pc_; }
    unsigned validSlots() const { return validSlots_; }
    unsigned width() const { return width_; }
    const HistoryRegister& ghist() const { return ghist_; }
    std::uint64_t lhist() const { return lhist_; }
    std::uint64_t phist() const { return phist_; }

    /** Metadata gathered from all components (by component index). */
    const MetadataBundle& metadata() const { return metas_; }

    /** Component index that provided each slot's direction field in
     *  the final fold (kNoProvider where nothing predicted). */
    const std::array<std::uint8_t, kMaxFetchWidth>&
    dirProvider() const
    {
        return dirProvider_;
    }

    /** Component index that provided each slot's target field. */
    const std::array<std::uint8_t, kMaxFetchWidth>&
    targetProvider() const
    {
        return targetProvider_;
    }

    /** Checkpoint the in-flight evaluation state (warp snapshots). */
    void saveState(warp::StateWriter& w) const;
    void restoreState(warp::StateReader& r);

  private:
    friend class ComposedPredictor;

    /** Cached result of one component's single predict() invocation. */
    struct CompResult
    {
        bool computed = false;
        PredictionBundle out{};
        std::array<std::uint8_t, kMaxFetchWidth> provided{};
    };

    Addr pc_ = kInvalidAddr;
    unsigned validSlots_ = 4;
    unsigned width_ = 4;
    bool histCaptured_ = false;
    HistoryRegister ghist_{1};
    std::uint64_t lhist_ = 0;
    std::uint64_t phist_ = 0;
    unsigned lastStage_ = 0;
    std::uint64_t serial_ = 0;
    /** Inline for <= 8 components: query reset allocates nothing. */
    SmallVector<CompResult, 8> results_;
    MetadataBundle metas_;
    std::array<std::uint8_t, kMaxFetchWidth> dirProvider_{};
    std::array<std::uint8_t, kMaxFetchWidth> targetProvider_{};
};

/**
 * Per-component composition-attribution counters (CobraScope): who
 * provided each prediction field, who overrode whom, and whether the
 * provider turned out right — the composition effects the paper's
 * aggregate accuracy numbers average away.
 */
struct CompAttribution
{
    explicit CompAttribution(std::string groupName)
        : group(std::move(groupName))
    {}

    StatGroup group;
    Stat<Counter> dirProvided{group, "dir_provided",
                              "slots whose direction this component set"};
    Stat<Counter> dirOverrides{
        group, "dir_overrides",
        "direction predictions that overrode an earlier component"};
    Stat<Counter> dirAgreements{
        group, "dir_agreements",
        "direction predictions agreeing with the incoming bundle"};
    Stat<Counter> targetProvided{group, "target_provided",
                                 "slots whose target this component set"};
    Stat<Counter> providerCorrect{
        group, "provider_correct",
        "resolved branches whose provided direction was right"};
    Stat<Counter> providerWrong{
        group, "provider_wrong",
        "resolved branches whose provided direction was wrong"};
};

/**
 * A complete generated predictor pipeline. Broadcasts the §III-E
 * events to every sub-component with its own metadata slice.
 */
class ComposedPredictor
{
  public:
    /**
     * @param topo   Validated topology (ownership transferred).
     * @param width  Fetch width (slots per prediction bundle).
     */
    ComposedPredictor(Topology topo, unsigned width = 4);

    /** Pipeline depth: stages needed for the final prediction. */
    unsigned maxLatency() const { return maxLatency_; }

    unsigned width() const { return width_; }

    /** Flattened component list; index = metadata slot. */
    const std::vector<PredictorComponent*>&
    components() const
    {
        return components_;
    }

    const Topology& topology() const { return topo_; }

    /**
     * Evaluate the composed prediction visible at stage @p d.
     * Stages must be evaluated in increasing order per query; the
     * result for a stage is deterministic and repeatable.
     */
    PredictionBundle evaluateStage(QueryState& q, unsigned d);

    /**
     * Fused idealized stage sweep: equivalent to calling
     * evaluateStage(q, d) for every d in [1, maxLatency()] and
     * keeping the last bundle, but visits only the stages at which
     * some component first responds and writes the final fold
     * straight into @p out — no per-stage bundle construction or
     * return copies. Every component still computes exactly once, at
     * its response stage, with the same predict_in fold, so the
     * result (and all per-query state: metadata, providers,
     * attribution) is bit-identical to the per-stage sweep, which
     * remains the reference path (tests/test_batch_eval.cpp compares
     * the two). Used by the wavefront batch evaluator's lanes.
     */
    void evaluatePacket(QueryState& q, PredictionBundle& out);

    // ---- Specialized loops (ROADMAP item 4; bpu/specialize.hpp) ------

    /**
     * Try to bind the devirtualized fused loop: succeeds when the
     * topology's specializedKey() names a registered tuple and every
     * component resolves to a known call table. On success the
     * evaluate/event hot paths run the flattened per-stage plan with
     * direct calls; on failure (guard-wrapped or unknown components,
     * unregistered tuple) the generic path stays bound. Bit-identical
     * either way — the fused loop shares the generic algorithm code
     * and only changes call dispatch. Idempotent.
     */
    bool specialize();

    /** True when the fused (devirtualized) loop is bound. */
    bool specialized() const { return specialized_; }

    // ---- Event broadcast (management glue, §IV-B2) -------------------

    void fire(FireEvent ev, MetadataBundle& metas);
    void mispredict(ResolveEvent ev, const MetadataBundle& metas);
    void repair(ResolveEvent ev, const MetadataBundle& metas);
    void update(ResolveEvent ev, const MetadataBundle& metas);

    /**
     * Batched commit-time update: deliver @p n resolve events
     * component-major (component 0 sees event 0..n-1, then component
     * 1, ...), coalescing one table touch per component per cycle
     * instead of n. Per-component event order is preserved, and
     * components are mutually independent, so the final state is
     * bit-identical to n sequential update() broadcasts.
     * @p metas[e] is event e's metadata bundle.
     */
    void updateBatch(ResolveEvent* evs, const MetadataBundle* const* metas,
                     std::size_t n);

    /**
     * Host-side prefetch sweep: forward @p ctx to every component's
     * prefetch() hint (architecturally inert; see
     * PredictorComponent::prefetch). Called by the BPU at Fetch-0,
     * one packet ahead of the table reads at stage >= 2.
     */
    void prefetchAll(const PredictContext& ctx) const;

    /**
     * Credit the recorded per-slot direction providers against the
     * resolved outcome (called once per commit update): right calls
     * bump provider_correct, wrong ones provider_wrong.
     */
    void creditResolution(
        const ResolveEvent& ev,
        const std::array<std::uint8_t, kMaxFetchWidth>& dir_provider);

    /** Per-component attribution stats, parallel to components(). */
    const std::vector<std::unique_ptr<CompAttribution>>&
    attribution() const
    {
        return attribution_;
    }

    // ---- Physical accounting ------------------------------------------

    /** Total predictor storage in bits (sub-components only). */
    std::uint64_t storageBits() const;

    /** Sum of per-entry metadata bits (stored in the history file). */
    unsigned totalMetaBits() const;

    /** True when any component consumes local histories (§IV-B3). */
    bool usesLocalHistory() const;

  private:
    /** One step of a flattened per-stage evaluation plan. */
    struct PlanStep
    {
        std::uint32_t node = 0; ///< Topology node index.
        bool arb = false;       ///< Apply as an arbiter (with children).
    };

    /** Evaluate node @p idx at stage @p d, transforming @p bundle. */
    void evalNode(QueryState& q, std::size_t idx, unsigned d,
                  PredictionBundle& bundle);

    /** Compute-or-replay node @p idx's component patch onto @p bundle.
     *  @tparam Spec dispatch policy: devirtualized thunks vs virtual. */
    template <bool Spec>
    void applyComponent(QueryState& q, std::size_t idx, unsigned d,
                        PredictionBundle& bundle,
                        const std::vector<std::size_t>* arbChildren);

    /** Record the tree walk evalNode would perform at stage @p d. */
    void buildPlan(std::size_t idx, unsigned d,
                   std::vector<PlanStep>& out) const;

    /** Index of @p comp in components_ (construction-time only). */
    std::size_t compIndex(const PredictorComponent* comp) const;

    PredictContext makeContext(const QueryState& q, unsigned d) const;

    Topology topo_;
    unsigned width_;
    unsigned maxLatency_;
    /** Distinct stages at which any component first responds
     *  (clamped to >= 1) — the stages evaluatePacket must visit. */
    SmallVector<unsigned, 8> respStages_;
    std::vector<PredictorComponent*> components_;
    /** Topology-node index -> metadata slot, precomputed once so the
     *  per-query path never does the O(n) component scan. */
    std::vector<std::size_t> nodeCompIdx_;
    /** Attribution counters, one group per component (same index). */
    std::vector<std::unique_ptr<CompAttribution>> attribution_;

    // ---- Specialized-loop bindings (empty until specialize()) --------

    bool specialized_ = false;
    /** Devirtualized call tables, parallel to components_. */
    SmallVector<const spec::CompOps*, 8> ops_;
    /** Flattened evaluation plans, one per stage d in [1, maxLatency]. */
    std::vector<std::vector<PlanStep>> plans_;
};

/** Diff two slots; returns the ProvideMask of changed field groups. */
std::uint8_t diffSlots(const PredictionSlot& before,
                       const PredictionSlot& after);

/** Overwrite the field groups in @p mask of @p dst from @p src. */
void applySlotPatch(PredictionSlot& dst, const PredictionSlot& src,
                    std::uint8_t mask);

} // namespace cobra::bpu

#endif // COBRA_BPU_COMPOSER_HPP
