/**
 * @file
 * BranchPredictorUnit: the complete COBRA-generated predictor
 * pipeline plus its management structures (paper §IV-B): composed
 * predictor, global/local history providers, history file, and the
 * update/repair state machine that dequeues commit updates and
 * performs the post-mispredict walk.
 *
 * The frontend drives queries (begin/stage/finalize/kill) and owns
 * the global-history repair *policy* (§VI-B modes); this class owns
 * the mechanisms.
 */

#ifndef COBRA_BPU_BPU_HPP
#define COBRA_BPU_BPU_HPP

#include <deque>
#include <memory>

#include "bpu/composer.hpp"
#include "bpu/ghist.hpp"
#include "bpu/history_file.hpp"
#include "bpu/lhist.hpp"
#include "bpu/phist.hpp"
#include "common/stats.hpp"
#include "scope/tracer.hpp"

namespace cobra::bpu {

/** Configuration of the management structures. */
struct BpuConfig
{
    unsigned fetchWidth = 4;
    unsigned historyFileEntries = 64;
    unsigned ghistBits = 64;
    unsigned lhistSets = 256;
    unsigned lhistBits = 32;
    unsigned phistBits = 32; ///< Path-history register length.
    /** Repair-walk throughput (entries per cycle, §IV-B2). */
    unsigned walkWidth = 1;
    /** Commit updates issued per cycle. */
    unsigned updateWidth = 1;

    /**
     * Check structural invariants; throws guard::ConfigError with an
     * actionable message on the first violation.
     */
    void validate() const;
};

/** Arguments for finalizing a query at Fetch-3. */
struct FinalizeArgs
{
    const PredictionBundle* finalPred = nullptr;
    /** Pre-decoded conditional-branch mask for the packet. */
    std::array<bool, kMaxFetchWidth> brMask{};
    /** Slots actually fetched (truncated at a predicted-taken CFI). */
    unsigned fetchedSlots = 0;
    SeqNum firstSeq = kInvalidSeq;
    std::uint32_t rasPtr = 0;
};

/** Per-branch resolution notice from the backend. */
struct BranchResolution
{
    FtqPos ftq = 0;
    unsigned slot = 0;
    CfiType type = CfiType::Br;
    bool taken = false;
    Addr target = kInvalidAddr;
    bool isCall = false;
    bool isRet = false;
    bool mispredicted = false;
    /** SFB-converted branch: resolve without training (§VI-C). */
    bool sfbConverted = false;
};

/**
 * The assembled predictor unit. Created from a Topology via the
 * composer; drop-in integrated into the core's frontend (paper
 * §IV-C).
 */
class BranchPredictorUnit
{
  public:
    BranchPredictorUnit(Topology topo, const BpuConfig& cfg);

    const BpuConfig& config() const { return cfg_; }
    ComposedPredictor& predictor() { return pred_; }
    const ComposedPredictor& predictor() const { return pred_; }
    unsigned maxLatency() const { return pred_.maxLatency(); }

    // ---- Frontend query interface -------------------------------------

    /** Begin a query at Fetch-0. */
    void beginQuery(QueryState& q, Addr pc, unsigned valid_slots);

    /**
     * Evaluate the composed bundle at stage @p d. Captures histories
     * at the Fetch-1/Fetch-2 boundary (paper §III-B, Fig. 2).
     */
    PredictionBundle stage(QueryState& q, unsigned d);

    /** True when a new history-file entry can be allocated. */
    bool canFinalize() const { return !hf_.full(); }

    /**
     * Capture histories for a query explicitly (the frontend calls
     * this at the end of Fetch-1, before the packet's own speculative
     * history push). Idempotent.
     */
    void
    captureHistory(QueryState& q)
    {
        if (!q.historyCaptured()) {
            q.captureHistory(ghist_.current(), lhist_.read(q.pc()),
                             phist_.current());
        }
    }

    /**
     * Finalize at Fetch-3: allocate the history file entry, deliver
     * fire events, and speculatively update the local history.
     * Requires canFinalize().
     */
    FtqPos finalize(QueryState& q, const FinalizeArgs& args);

    // ---- Speculative global history (mechanism only) -------------------

    const HistoryRegister& specGhist() const { return ghist_.current(); }
    void pushSpecGhist(bool taken) { ghist_.push(taken); }
    void restoreSpecGhist(const HistoryRegister& h) { ghist_.restore(h); }

    /** Local history read for Fetch-1 capture. */
    std::uint64_t readLocalHistory(Addr pc) const { return lhist_.read(pc); }

    // ---- Backend interface ----------------------------------------------

    /**
     * Resolve one control-flow instruction. On a mispredict this
     * delivers the fast mispredict event, squashes younger history
     * file entries, and queues the repair walk.
     */
    void resolve(const BranchResolution& res);

    /** Mark the packet at @p pos fully committed (ready to update). */
    void commitPacket(FtqPos pos);

    /** Full flush (e.g., simulation barrier): drop in-flight state. */
    void squashAll();

    /** Advance the update/repair state machine by one cycle (§IV-B2). */
    void tick();

    /** True while the repair walk occupies the machine. */
    bool walkBusy() const { return !repairQueue_.empty(); }

    const HistoryFile& historyFile() const { return hf_; }
    HistoryFile& historyFile() { return hf_; }
    const LocalHistoryProvider& localHistory() const { return lhist_; }
    const GlobalHistoryProvider& globalHistory() const { return ghist_; }
    const PathHistoryProvider& pathHistory() const { return phist_; }

    // ---- Accounting -----------------------------------------------------

    /** Sub-component storage (Table I's per-design storage column). */
    std::uint64_t componentStorageBits() const
    {
        return pred_.storageBits();
    }

    /** Management-structure storage ("Meta" in Fig. 8). */
    std::uint64_t managementStorageBits() const;

    /** Full area breakdown across sub-components + Meta (Fig. 8). */
    phys::AreaReport areaReport(const phys::AreaModel& model) const;

    /**
     * Access-energy breakdown using this unit's recorded event counts
     * (queries drive predict-side reads, commit updates drive
     * writes) — the §VI-A future-work concern, modelled.
     */
    phys::EnergyReport energyReport(const phys::EnergyModel& model) const;

    StatGroup& stats() { return stats_; }
    const StatGroup& stats() const { return stats_; }

    /**
     * Checkpoint the full BPU: histories, history file, repair queue,
     * query serial, and every composed component (each bracketed by a
     * name-tagged section). Event counters round-trip with the stat
     * registry, not here.
     */
    void saveState(warp::StateWriter& w) const;
    void restoreState(warp::StateReader& r);

    /** Attach a CobraScope tracer (nullptr detaches; not owned). */
    void setTracer(scope::Tracer* t) { tracer_ = t; }

  private:
    /** Build the common ResolveEvent payload from an entry. */
    ResolveEvent makeEvent(const HistoryFileEntry& e, FtqPos pos) const;

    /** Queue walk-repair jobs for entries (pos, tail), youngest first. */
    void queueRepairWalk(FtqPos after);

    BpuConfig cfg_;
    ComposedPredictor pred_;
    GlobalHistoryProvider ghist_;
    LocalHistoryProvider lhist_;
    PathHistoryProvider phist_;
    HistoryFile hf_;

    /** A squashed entry awaiting its repair event, with the position
     *  it occupied (so repair events carry a truthful ftqIdx). */
    struct RepairJob
    {
        HistoryFileEntry entry;
        FtqPos pos = 0;
    };

    /** Copies of squashed entries awaiting their repair event. */
    std::deque<RepairJob> repairQueue_;

    /** Monotonic query id handed to PredictContext::serial. */
    std::uint64_t querySerial_ = 0;

    scope::Tracer* tracer_ = nullptr;

    StatGroup stats_{"bpu"};
    Stat<Counter> queries_{stats_, "queries",
                           "prediction queries begun at Fetch-0"};
    Stat<Counter> finalized_{stats_, "finalized",
                             "queries finalized into history-file entries"};
    Stat<Counter> mispredicts_{stats_, "mispredicts",
                               "resolved mispredictions reaching the BPU"};
    Stat<Counter> repairWalks_{stats_, "repair_walks",
                               "repair walks queued after mispredicts"};
    Stat<Counter> repairEvents_{stats_, "repair_events",
                                "per-entry repair events delivered"};
    Stat<Counter> updates_{stats_, "updates",
                           "commit-time training updates issued"};
};

} // namespace cobra::bpu

#endif // COBRA_BPU_BPU_HPP
