#include "bpu/composer.hpp"

#include <cassert>
#include <stdexcept>

#include "bpu/specialize.hpp"
#include "warp/state_bpu.hpp"
#include "warp/state_util.hpp"

namespace cobra::bpu {

std::uint8_t
diffSlots(const PredictionSlot& before, const PredictionSlot& after)
{
    std::uint8_t m = kProvideNone;
    if (before.valid != after.valid || before.taken != after.taken)
        m |= kProvideDir;
    if (before.targetValid != after.targetValid ||
        before.target != after.target) {
        m |= kProvideTarget;
    }
    if (before.type != after.type || before.isCall != after.isCall ||
        before.isRet != after.isRet) {
        m |= kProvideType;
    }
    return m;
}

void
applySlotPatch(PredictionSlot& dst, const PredictionSlot& src,
               std::uint8_t mask)
{
    if (mask & kProvideDir) {
        dst.valid = src.valid;
        dst.taken = src.taken;
    }
    if (mask & kProvideTarget) {
        dst.targetValid = src.targetValid;
        dst.target = src.target;
    }
    if (mask & kProvideType) {
        dst.type = src.type;
        dst.isCall = src.isCall;
        dst.isRet = src.isRet;
    }
}

void
QueryState::reset(Addr pc, unsigned valid_slots, unsigned num_components,
                  unsigned width, std::uint64_t serial)
{
    pc_ = pc;
    validSlots_ = valid_slots;
    width_ = width;
    histCaptured_ = false;
    lhist_ = 0;
    phist_ = 0;
    lastStage_ = 0;
    serial_ = serial;
    if (results_.size() != num_components) {
        results_.assign(num_components, CompResult{});
        metas_.assign(num_components, Metadata{});
    } else {
        // Hot path: only the computed flags and metadata need
        // clearing. A result's out/provided fields are written in full
        // before computed is set, so stale values are never read.
        for (std::size_t i = 0; i < num_components; ++i) {
            results_[i].computed = false;
            metas_[i] = Metadata{};
        }
    }
    dirProvider_.fill(kNoProvider);
    targetProvider_.fill(kNoProvider);
}

void
QueryState::saveState(warp::StateWriter& w) const
{
    w.u64(pc_);
    w.u32(validSlots_);
    w.u32(width_);
    w.boolean(histCaptured_);
    warp::saveHistFull(w, ghist_);
    w.u64(lhist_);
    w.u64(phist_);
    w.u32(lastStage_);
    w.u64(serial_);
    w.u32(static_cast<std::uint32_t>(results_.size()));
    for (const CompResult& res : results_) {
        w.boolean(res.computed);
        warp::saveBundle(w, res.out);
        warp::saveU8Array(w, res.provided);
    }
    warp::saveMetas(w, metas_);
    warp::saveU8Array(w, dirProvider_);
    warp::saveU8Array(w, targetProvider_);
}

void
QueryState::restoreState(warp::StateReader& r)
{
    pc_ = r.u64();
    validSlots_ = r.u32();
    width_ = r.u32();
    histCaptured_ = r.boolean();
    warp::loadHistFull(r, ghist_);
    lhist_ = r.u64();
    phist_ = r.u64();
    lastStage_ = r.u32();
    serial_ = r.u64();
    const std::uint32_t nResults = r.u32();
    if (nResults > 64)
        r.fail("query component count out of range");
    results_.clear();
    for (std::uint32_t i = 0; i < nResults; ++i) {
        CompResult res;
        res.computed = r.boolean();
        warp::loadBundle(r, res.out);
        warp::loadU8Array(r, res.provided);
        results_.push_back(res);
    }
    warp::loadMetas(r, metas_);
    warp::loadU8Array(r, dirProvider_);
    warp::loadU8Array(r, targetProvider_);
}

ComposedPredictor::ComposedPredictor(Topology topo, unsigned width)
    : topo_(std::move(topo)), width_(width)
{
    topo_.validate();
    components_ = topo_.componentList();
    maxLatency_ = topo_.maxLatency();
    // Response schedule for the fused sweep: a stage changes the
    // fold only when some component first responds there, so those
    // are the only stages evaluatePacket needs to visit (the final
    // stage is always among them — maxLatency is a component's
    // latency).
    {
        std::vector<unsigned> st;
        for (const auto* c : components_)
            if (c->latency() <= maxLatency_)
                st.push_back(std::max(1u, c->latency()));
        std::sort(st.begin(), st.end());
        st.erase(std::unique(st.begin(), st.end()), st.end());
        for (unsigned s : st)
            respStages_.push_back(s);
    }
    for (auto* c : components_) {
        if (c->fetchWidth() < width_) {
            throw guard::ConfigError("component '" + c->name() +
                                     "' narrower than pipeline width");
        }
    }
    nodeCompIdx_.assign(topo_.numNodes(), ~std::size_t{0});
    for (std::size_t i = 0; i < topo_.numNodes(); ++i) {
        if (topo_.node(i).comp != nullptr)
            nodeCompIdx_[i] = compIndex(topo_.node(i).comp);
    }
    // Attribution groups live under "bpu.comp.<name>"; a repeated
    // component name gets a "#<index>" suffix so group paths stay
    // unique for the stat registry.
    for (std::size_t i = 0; i < components_.size(); ++i) {
        std::string gname = "bpu.comp." + components_[i]->name();
        for (std::size_t j = 0; j < i; ++j) {
            if (components_[j]->name() == components_[i]->name()) {
                gname += "#" + std::to_string(i);
                break;
            }
        }
        attribution_.push_back(
            std::make_unique<CompAttribution>(std::move(gname)));
    }
    // An arbiter must not respond before the predictions it chooses
    // among exist; enforce latency(arb) >= latency(children).
    for (std::size_t i = 0; i < topo_.numNodes(); ++i) {
        const Topology::Node& n = topo_.node(i);
        if (n.kind != Topology::NodeKind::Arb)
            continue;
        std::vector<PredictorComponent*> kids;
        for (std::size_t c : n.children) {
            // Collect all components under this child.
            std::vector<std::size_t> stack{c};
            while (!stack.empty()) {
                const Topology::Node& cn = topo_.node(stack.back());
                stack.pop_back();
                if (cn.comp != nullptr)
                    kids.push_back(cn.comp);
                for (std::size_t cc : cn.children)
                    stack.push_back(cc);
            }
        }
        for (auto* k : kids) {
            if (k->latency() > n.comp->latency()) {
                throw guard::ConfigError(
                    "arbiter '" + n.comp->name() +
                    "' responds before its input '" + k->name() + "'");
            }
        }
    }
}

std::size_t
ComposedPredictor::compIndex(const PredictorComponent* comp) const
{
    for (std::size_t i = 0; i < components_.size(); ++i)
        if (components_[i] == comp)
            return i;
    assert(!"component not in topology");
    return 0;
}

PredictContext
ComposedPredictor::makeContext(const QueryState& q, unsigned d) const
{
    PredictContext ctx;
    ctx.pc = q.pc_;
    ctx.validSlots = q.validSlots_;
    // Histories become visible at the end of Fetch-1 (paper §III-B):
    // components responding at stage 1 must not observe them.
    ctx.ghist = (d >= 2 && q.histCaptured_) ? &q.ghist_ : nullptr;
    ctx.lhist = (d >= 2 && q.histCaptured_) ? q.lhist_ : 0;
    ctx.phist = (d >= 2 && q.histCaptured_) ? q.phist_ : 0;
    ctx.stage = d;
    ctx.serial = q.serial_;
    return ctx;
}

template <bool Spec>
void
ComposedPredictor::applyComponent(QueryState& q, std::size_t idx,
                                  unsigned d, PredictionBundle& bundle,
                                  const std::vector<std::size_t>*
                                      arb_children)
{
    PredictorComponent* comp = topo_.node(idx).comp;
    if (d < comp->latency())
        return; // Not yet responded: pure pass-through.

    const std::size_t ci = nodeCompIdx_[idx];
    QueryState::CompResult& res = q.results_[ci];

    if (!res.computed) {
        // First evaluation at stage >= latency. For chain members this
        // is stage == latency (stages are evaluated in increasing
        // order), so `bundle` is the correct predict_in of that cycle.
        // Arbiter children may be first evaluated at the arbiter's
        // stage; they start from a fresh bundle, so the result is the
        // same as at their own latency.
        const PredictContext ctx = makeContext(q, d);
        PredictionBundle in = bundle;
        PredictionBundle out = bundle;
        if (arb_children != nullptr) {
            SmallVector<PredictionBundle, 4> inputs;
            for (std::size_t childIdx : *arb_children) {
                PredictionBundle cb;
                cb.width = width_;
                evalNode(q, childIdx, d, cb);
                inputs.push_back(cb);
            }
            const std::span<const PredictionBundle> inSpan(
                inputs.data(), inputs.size());
            if constexpr (Spec)
                ops_[ci]->arbitrate(comp, ctx, inSpan, out, q.metas_[ci]);
            else
                comp->arbitrate(ctx, inSpan, out, q.metas_[ci]);
        } else {
            if constexpr (Spec)
                ops_[ci]->predict(comp, ctx, out, q.metas_[ci]);
            else
                comp->predict(ctx, out, q.metas_[ci]);
        }
        res.out = out;
        for (unsigned i = 0; i < width_; ++i)
            res.provided[i] = diffSlots(in.slots[i], out.slots[i]);
        res.computed = true;

        // Attribution (counted once per query, at compute time): a
        // dir change over a valid incoming prediction is an override;
        // a valid-vs-valid no-change is an agreement.
        CompAttribution& att = *attribution_[ci];
        for (unsigned i = 0; i < q.validSlots_ && i < width_; ++i) {
            if (res.provided[i] & kProvideDir) {
                ++att.dirProvided;
                if (in.slots[i].valid)
                    ++att.dirOverrides;
            } else if (out.slots[i].valid && in.slots[i].valid) {
                ++att.dirAgreements;
            }
            if (res.provided[i] & kProvideTarget)
                ++att.targetProvided;
        }
    }

    // Replay the recorded field-level overrides onto the current
    // bundle: where the component provided, its values win; where it
    // passed through, the (possibly newer) incoming prediction flows.
    // The last writer per field group is the provider of record.
    for (unsigned i = 0; i < width_; ++i) {
        applySlotPatch(bundle.slots[i], res.out.slots[i], res.provided[i]);
        if (res.provided[i] & kProvideDir)
            q.dirProvider_[i] = static_cast<std::uint8_t>(ci);
        if (res.provided[i] & kProvideTarget)
            q.targetProvider_[i] = static_cast<std::uint8_t>(ci);
    }
}

void
ComposedPredictor::evalNode(QueryState& q, std::size_t idx, unsigned d,
                            PredictionBundle& bundle)
{
    const Topology::Node& n = topo_.node(idx);
    switch (n.kind) {
      case Topology::NodeKind::Leaf:
        applyComponent<false>(q, idx, d, bundle, nullptr);
        break;
      case Topology::NodeKind::Chain:
        // Children are listed highest-priority first; evaluate from
        // the lowest-priority upward so higher components override.
        for (std::size_t i = n.children.size(); i-- > 0;)
            evalNode(q, n.children[i], d, bundle);
        break;
      case Topology::NodeKind::Arb:
        if (d < n.comp->latency()) {
            // Before the arbiter responds, the provisional prediction
            // is the first-listed child's (documented tie-break).
            if (!n.children.empty())
                evalNode(q, n.children.front(), d, bundle);
        } else {
            applyComponent<false>(q, idx, d, bundle, &n.children);
        }
        break;
    }
}

void
ComposedPredictor::buildPlan(std::size_t idx, unsigned d,
                             std::vector<PlanStep>& out) const
{
    // Mirrors evalNode's walk exactly, with the d-vs-latency decisions
    // resolved at build time: the plan for stage d is the sequence of
    // applyComponent calls the generic walk performs, minus the pure
    // pass-through calls (d < latency) that do nothing.
    const Topology::Node& n = topo_.node(idx);
    switch (n.kind) {
      case Topology::NodeKind::Leaf:
        if (d >= n.comp->latency())
            out.push_back({static_cast<std::uint32_t>(idx), false});
        break;
      case Topology::NodeKind::Chain:
        for (std::size_t i = n.children.size(); i-- > 0;)
            buildPlan(n.children[i], d, out);
        break;
      case Topology::NodeKind::Arb:
        if (d < n.comp->latency()) {
            if (!n.children.empty())
                buildPlan(n.children.front(), d, out);
        } else {
            out.push_back({static_cast<std::uint32_t>(idx), true});
        }
        break;
    }
}

bool
ComposedPredictor::specialize()
{
    if (specialized_)
        return true;
    const std::string key = topo_.specializedKey();
    if (key.empty() || !spec::isRegisteredKey(key))
        return false;
    SmallVector<const spec::CompOps*, 8> ops;
    for (const auto* c : components_) {
        const spec::CompOps* o = spec::opsFor(*c);
        if (o == nullptr)
            return false;
        ops.push_back(o);
    }
    ops_ = ops;
    plans_.clear();
    for (unsigned d = 1; d <= maxLatency_; ++d) {
        std::vector<PlanStep> plan;
        buildPlan(topo_.root().idx, d, plan);
        plans_.push_back(std::move(plan));
    }
    specialized_ = true;
    return true;
}

PredictionBundle
ComposedPredictor::evaluateStage(QueryState& q, unsigned d)
{
    assert(d >= 1);
    assert(d >= q.lastStage_ && "stages must be evaluated in order");
    q.lastStage_ = d;

    PredictionBundle bundle;
    bundle.width = width_;
    if (q.pc_ == kInvalidAddr)
        return bundle;
    if (specialized_) {
        // Fused loop: the flattened plan for this stage (stages past
        // the pipeline depth behave like the final stage — every
        // component has responded by then).
        const unsigned pd = d < maxLatency_ ? d : maxLatency_;
        for (const PlanStep& s : plans_[pd - 1]) {
            applyComponent<true>(q, s.node, d, bundle,
                                 s.arb ? &topo_.node(s.node).children
                                       : nullptr);
        }
    } else {
        evalNode(q, topo_.root().idx, d, bundle);
    }
    // Slots beyond the packet's valid range never predict.
    for (unsigned i = q.validSlots_; i < width_; ++i)
        bundle.slots[i] = PredictionSlot{};
    return bundle;
}

void
ComposedPredictor::evaluatePacket(QueryState& q, PredictionBundle& out)
{
    out = PredictionBundle{};
    out.width = width_;
    if (maxLatency_ == 0)
        return; // No stages: the per-stage loop body never runs.
    if (q.pc_ == kInvalidAddr) {
        q.lastStage_ = maxLatency_;
        return;
    }
    // Only stages where some component first responds can change the
    // fold; a skipped stage's walk would recompute nothing and its
    // returned bundle is dead. Intermediate visited stages fold into
    // a scratch bundle (those results are dead too, but the walk's
    // side effects — compute-once results, attribution, providers —
    // must happen at the right d); the final stage folds into @p out.
    PredictionBundle scratch;
    const std::size_t nStages = respStages_.size();
    for (std::size_t si = 0; si < nStages; ++si) {
        const unsigned d = respStages_[si];
        PredictionBundle& b = si + 1 == nStages ? out : scratch;
        b = PredictionBundle{};
        b.width = width_;
        if (specialized_) {
            for (const PlanStep& s : plans_[d - 1]) {
                applyComponent<true>(q, s.node, d, b,
                                     s.arb ? &topo_.node(s.node).children
                                           : nullptr);
            }
        } else {
            evalNode(q, topo_.root().idx, d, b);
        }
    }
    q.lastStage_ = maxLatency_;
    for (unsigned i = q.validSlots_; i < width_; ++i)
        out.slots[i] = PredictionSlot{};
}

void
ComposedPredictor::fire(FireEvent ev, MetadataBundle& metas)
{
    assert(metas.size() == components_.size());
    if (specialized_) {
        for (std::size_t i = 0; i < components_.size(); ++i) {
            ev.meta = &metas[i];
            ops_[i]->fire(components_[i], ev);
        }
        return;
    }
    for (std::size_t i = 0; i < components_.size(); ++i) {
        ev.meta = &metas[i];
        components_[i]->fire(ev);
    }
}

void
ComposedPredictor::mispredict(ResolveEvent ev, const MetadataBundle& metas)
{
    assert(metas.size() == components_.size());
    if (specialized_) {
        for (std::size_t i = 0; i < components_.size(); ++i) {
            ev.meta = &metas[i];
            ops_[i]->mispredict(components_[i], ev);
        }
        return;
    }
    for (std::size_t i = 0; i < components_.size(); ++i) {
        ev.meta = &metas[i];
        components_[i]->mispredict(ev);
    }
}

void
ComposedPredictor::repair(ResolveEvent ev, const MetadataBundle& metas)
{
    assert(metas.size() == components_.size());
    if (specialized_) {
        for (std::size_t i = 0; i < components_.size(); ++i) {
            ev.meta = &metas[i];
            ops_[i]->repair(components_[i], ev);
        }
        return;
    }
    for (std::size_t i = 0; i < components_.size(); ++i) {
        ev.meta = &metas[i];
        components_[i]->repair(ev);
    }
}

void
ComposedPredictor::update(ResolveEvent ev, const MetadataBundle& metas)
{
    assert(metas.size() == components_.size());
    if (specialized_) {
        for (std::size_t i = 0; i < components_.size(); ++i) {
            ev.meta = &metas[i];
            ops_[i]->update(components_[i], ev);
        }
        return;
    }
    for (std::size_t i = 0; i < components_.size(); ++i) {
        ev.meta = &metas[i];
        components_[i]->update(ev);
    }
}

void
ComposedPredictor::updateBatch(ResolveEvent* evs,
                               const MetadataBundle* const* metas,
                               std::size_t n)
{
    // Component-major delivery: each component drains the cycle's
    // whole event batch before the next component's tables are
    // touched. Per-component event order matches n sequential
    // update() broadcasts, and components never read each other's
    // state, so the result is bit-identical.
    for (std::size_t i = 0; i < components_.size(); ++i) {
        for (std::size_t e = 0; e < n; ++e) {
            assert(metas[e]->size() == components_.size());
            ResolveEvent ev = evs[e];
            ev.meta = &(*metas[e])[i];
            if (specialized_)
                ops_[i]->update(components_[i], ev);
            else
                components_[i]->update(ev);
        }
    }
}

void
ComposedPredictor::prefetchAll(const PredictContext& ctx) const
{
    if (specialized_) {
        for (std::size_t i = 0; i < components_.size(); ++i)
            ops_[i]->prefetch(components_[i], ctx);
        return;
    }
    for (const auto* c : components_)
        c->prefetch(ctx);
}

void
ComposedPredictor::creditResolution(
    const ResolveEvent& ev,
    const std::array<std::uint8_t, kMaxFetchWidth>& dir_provider)
{
    for (unsigned i = 0; i < kMaxFetchWidth; ++i) {
        if (!ev.brMask[i])
            continue;
        const std::uint8_t p = dir_provider[i];
        if (p == kNoProvider || p >= attribution_.size())
            continue;
        const PredictionSlot& s = ev.predicted->slots[i];
        const bool predictedTaken = s.valid && s.taken;
        if (predictedTaken == ev.takenMask[i])
            ++attribution_[p]->providerCorrect;
        else
            ++attribution_[p]->providerWrong;
    }
}

std::uint64_t
ComposedPredictor::storageBits() const
{
    std::uint64_t bits = 0;
    for (auto* c : components_)
        bits += c->storageBits();
    return bits;
}

unsigned
ComposedPredictor::totalMetaBits() const
{
    unsigned bits = 0;
    for (auto* c : components_)
        bits += c->metaBits();
    return bits;
}

bool
ComposedPredictor::usesLocalHistory() const
{
    for (auto* c : components_)
        if (c->usesLocalHistory())
            return true;
    return false;
}

} // namespace cobra::bpu
