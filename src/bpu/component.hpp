/**
 * @file
 * The COBRA predictor sub-component interface (paper §III). Every
 * predictor structure in the library derives from PredictorComponent
 * and may respond at any latency p >= 1; the composer guarantees the
 * event contract (histories at end of cycle 1, metadata round-trip,
 * fire/mispredict/repair/update delivery).
 */

#ifndef COBRA_BPU_COMPONENT_HPP
#define COBRA_BPU_COMPONENT_HPP

#include <cassert>
#include <span>
#include <string>
#include <vector>

#include "bpu/pred_types.hpp"
#include "guard/errors.hpp"
#include "phys/area_model.hpp"
#include "phys/energy_model.hpp"

namespace cobra::warp {
class StateWriter;
class StateReader;
} // namespace cobra::warp

namespace cobra::bpu {

/**
 * Abstract base class for predictor sub-components.
 *
 * Contract (paper §III-A): a component with latency() == p produces
 * its prediction when the composer calls predict() at stage p of a
 * query, transforming the incoming `predict_in` bundle in place —
 * overriding fields where it predicts, passing through where it does
 * not. Components with p == 1 receive a null ghist (histories arrive
 * at the end of Fetch-1). The same Metadata written at predict time
 * is handed back verbatim in mispredict/repair/update events.
 */
class PredictorComponent
{
  public:
    PredictorComponent(std::string name, unsigned latency,
                       unsigned fetch_width)
        : name_(std::move(name)), latency_(latency),
          fetchWidth_(fetch_width)
    {
        if (latency < 1) {
            throw guard::ConfigError(
                "component '" + name_ + "'",
                "latency must be >= 1, got " + std::to_string(latency));
        }
        if (fetch_width < 1 || fetch_width > kMaxFetchWidth) {
            throw guard::ConfigError(
                "component '" + name_ + "'",
                "fetch width must be in [1, " +
                    std::to_string(kMaxFetchWidth) + "], got " +
                    std::to_string(fetch_width));
        }
    }

    virtual ~PredictorComponent() = default;

    PredictorComponent(const PredictorComponent&) = delete;
    PredictorComponent& operator=(const PredictorComponent&) = delete;

    /** Display name (e.g., "TAGE", "uBTB"). */
    const std::string& name() const { return name_; }

    /** Response latency p >= 1 in cycles after query (paper §III-A). */
    unsigned latency() const { return latency_; }

    /** Fetch width this component was built for. */
    unsigned fetchWidth() const { return fetchWidth_; }

    /** Bit-length of the metadata this component stores (§III-D). */
    virtual unsigned metaBits() const { return 0; }

    /**
     * Stable type tag used by the specialization registry to match
     * this component against a devirtualized call table (see
     * bpu/specialize.hpp). The empty default marks the component as
     * unspecializable, forcing the composed pipeline onto the generic
     * virtual-dispatch path — which is exactly what the guard
     * decorators (ContractAuditor, FaultInjector) rely on: they must
     * observe every call, so they deliberately keep the default.
     */
    virtual const char* typeKey() const { return ""; }

    /**
     * Host-side cache-warming hint: prefetch the table rows this
     * component would index for a query at @p ctx. Called by the BPU
     * at FTQ-insert time (Fetch-0), one fetch packet ahead of the
     * predict() that reads the rows at stage latency(). MUST be
     * architecturally inert — no predictor state may change — so the
     * default no-op is always correct.
     */
    virtual void prefetch(const PredictContext& ctx) const { (void)ctx; }

    /**
     * True when the component consumes the local-history input; the
     * composer only generates a full local-history provider when some
     * component needs it (§IV-B3).
     */
    virtual bool usesLocalHistory() const { return false; }

    /**
     * Produce/augment a prediction. Called exactly once per query, at
     * stage latency(). @p inout carries predict_in and receives
     * predict_out; @p meta receives this component's metadata.
     */
    virtual void predict(const PredictContext& ctx, PredictionBundle& inout,
                         Metadata& meta) = 0;

    /**
     * True for arbitration schemes that consume multiple predict_in
     * inputs (paper §III-F, e.g. the tournament selector). Such
     * components are placed at Arb nodes of a topology and receive
     * arbitrate() instead of predict().
     */
    virtual bool isArbiter() const { return false; }

    /**
     * Arbitrate among child predictions. @p inputs are the children's
     * bundles in topology order; @p inout carries the chain's
     * predict_in (pass-through when the arbiter declines).
     */
    virtual void
    arbitrate(const PredictContext& ctx,
              std::span<const PredictionBundle> inputs,
              PredictionBundle& inout, Metadata& meta)
    {
        (void)inputs; (void)inout; (void)meta;
        throw guard::ContractViolation(
            name_, ctx.serial,
            "arbitrate() called on a non-arbiter component");
    }

    // ---- Event interface (paper §III-E) ------------------------------

    /** Speculative local-state update for a finalized prediction. */
    virtual void fire(const FireEvent& ev) { (void)ev; }

    /** Fast immediate update from a mispredicted branch. */
    virtual void mispredict(const ResolveEvent& ev) { (void)ev; }

    /** Restore misspeculated local state (forwards-walk repair). */
    virtual void repair(const ResolveEvent& ev) { (void)ev; }

    /** Slow commit-time update from a committing branch. */
    virtual void update(const ResolveEvent& ev) { (void)ev; }

    // ---- Checkpointing (warp) -----------------------------------------

    /**
     * Serialize every bit of learned/speculative state into @p w, and
     * restore it from @p r, such that a restored component is
     * behaviorally indistinguishable from the one that saved. The
     * defaults save/restore nothing — correct only for stateless
     * components; every stateful component must override both (see
     * docs/EXTENDING.md). The BPU brackets each component's stream
     * with a name-tagged section, so save/restore asymmetries surface
     * as structured guard::CheckpointError, not silent corruption.
     */
    virtual void saveState(warp::StateWriter& w) const { (void)w; }

    /** @see saveState */
    virtual void restoreState(warp::StateReader& r) { (void)r; }

    // ---- Fault injection (SimGuard) -----------------------------------

    /**
     * Flip one bit of architectural predictor state chosen by the
     * 64-bit random value @p rand. Returns false when the component
     * has no injectable table state (the FaultInjector then perturbs
     * the prediction output instead). Deterministic for a given
     * @p rand and state shape.
     */
    virtual bool flipStateBit(std::uint64_t rand)
    {
        (void)rand;
        return false;
    }

    // ---- Physical characterisation ------------------------------------

    /** Total architectural storage in bits (Table I accounting). */
    virtual std::uint64_t storageBits() const = 0;

    /** Physical inventory for the area model (Fig. 8). */
    virtual phys::PhysicalCost
    physicalCost() const
    {
        phys::PhysicalCost c;
        c.sramBits = storageBits();
        c.sramPorts = {1, 1, 0};
        // Index hash + output mux as a rough logic estimate.
        c.logicGates = 200 + storageBits() / 64;
        return c;
    }

    /**
     * Bits touched by one prediction (for the energy model; §VI-A
     * names predictor read energy as a first-order concern). The
     * default is a coarse one-row estimate; components with known
     * geometry override it.
     */
    virtual phys::AccessProfile
    predictAccess() const
    {
        phys::AccessProfile a;
        a.sramReadBits = storageBits() / 128 + 16;
        return a;
    }

    /** Bits touched by one commit-time update. */
    virtual phys::AccessProfile
    updateAccess() const
    {
        phys::AccessProfile a;
        a.sramWriteBits = storageBits() / 128 + 16;
        return a;
    }

    /** One-line parameter summary for reports. */
    virtual std::string
    describe() const
    {
        return name_ + " (latency " + std::to_string(latency_) + ")";
    }

  protected:
    /**
     * Helper asserting the history contract: components may only read
     * ghist when they respond at stage >= 2 (paper §III-B).
     */
    const HistoryRegister&
    requireGhist(const PredictContext& ctx) const
    {
        if (latency_ < 2) {
            throw guard::ContractViolation(
                name_, ctx.serial,
                "1-cycle components cannot read global history "
                "(histories arrive at the end of Fetch-1, §III-B)");
        }
        if (ctx.ghist == nullptr) {
            throw guard::ContractViolation(
                name_, ctx.serial,
                "global history unavailable: predict called before "
                "the Fetch-1 history capture");
        }
        return *ctx.ghist;
    }

  private:
    std::string name_;
    unsigned latency_;
    unsigned fetchWidth_;
};

} // namespace cobra::bpu

#endif // COBRA_BPU_COMPONENT_HPP
