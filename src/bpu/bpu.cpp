#include "bpu/bpu.hpp"

#include <cassert>

#include "warp/state_bpu.hpp"
#include "warp/state_util.hpp"

namespace cobra::bpu {

const char*
ghistRepairModeName(GhistRepairMode m)
{
    switch (m) {
      case GhistRepairMode::None: return "none";
      case GhistRepairMode::RepairOnly: return "repair-only";
      case GhistRepairMode::RepairAndReplay: return "repair+replay";
    }
    return "?";
}

void
BpuConfig::validate() const
{
    auto require = [](bool ok, const char* field, const char* detail) {
        if (!ok)
            throw guard::ConfigError(field, detail);
    };
    require(fetchWidth >= 1 && fetchWidth <= kMaxFetchWidth,
            "bpu.fetchWidth", "must be in [1, 8]");
    require(historyFileEntries >= 2, "bpu.historyFileEntries",
            "must be >= 2 (one in-flight packet plus headroom)");
    require(ghistBits >= 1, "bpu.ghistBits", "must be >= 1");
    require(lhistSets >= 1, "bpu.lhistSets", "must be >= 1");
    require(lhistBits >= 1 && lhistBits <= 64, "bpu.lhistBits",
            "must be in [1, 64]");
    require(phistBits >= 1 && phistBits <= 64, "bpu.phistBits",
            "must be in [1, 64]");
    require(walkWidth >= 1, "bpu.walkWidth",
            "must be >= 1 or the repair walk never drains");
    require(updateWidth >= 1, "bpu.updateWidth",
            "must be >= 1 or commit updates never drain");
}

namespace {

/** Validate before any member construction sees the values. */
const BpuConfig&
validated(const BpuConfig& cfg)
{
    cfg.validate();
    return cfg;
}

} // namespace

BranchPredictorUnit::BranchPredictorUnit(Topology topo, const BpuConfig& cfg)
    : cfg_(validated(cfg)),
      pred_(std::move(topo), cfg.fetchWidth),
      ghist_(cfg.ghistBits),
      lhist_(cfg.lhistSets, cfg.lhistBits),
      phist_(cfg.phistBits),
      hf_(cfg.historyFileEntries)
{
    // Only generate a real local-history provider when a component
    // consumes local histories (§IV-B3).
    if (!pred_.usesLocalHistory())
        lhist_ = LocalHistoryProvider(1, 1);
}

void
BranchPredictorUnit::beginQuery(QueryState& q, Addr pc, unsigned valid_slots)
{
    q.reset(pc, valid_slots, static_cast<unsigned>(
                pred_.components().size()),
            cfg_.fetchWidth, ++querySerial_);
    ++queries_;

    // Host cache hint (architecturally inert): pull the tables'
    // indexed rows toward the cache now, one-plus cycles ahead of the
    // stage >= 2 reads. The speculative histories here may differ from
    // the ones captured at the end of Fetch-1; a stale index merely
    // prefetches a nearby row.
    PredictContext ctx;
    ctx.pc = pc;
    ctx.validSlots = valid_slots;
    ctx.ghist = &ghist_.current();
    ctx.lhist = lhist_.read(pc);
    ctx.phist = phist_.current();
    ctx.serial = querySerial_;
    pred_.prefetchAll(ctx);
}

PredictionBundle
BranchPredictorUnit::stage(QueryState& q, unsigned d)
{
    // Histories are provided at the end of Fetch-1 (paper Fig. 2):
    // capture them the first time a stage >= 2 is evaluated, before
    // this packet's own speculative push is visible to itself.
    if (d >= 2 && !q.historyCaptured()) {
        q.captureHistory(ghist_.current(), lhist_.read(q.pc()),
                         phist_.current());
    }
    return pred_.evaluateStage(q, d);
}

FtqPos
BranchPredictorUnit::finalize(QueryState& q, const FinalizeArgs& args)
{
    assert(canFinalize());
    assert(args.finalPred != nullptr);

    HistoryFileEntry e;
    e.pc = q.pc();
    e.fetchedSlots = args.fetchedSlots;
    // If the packet never reached stage 2 (killed early this cannot
    // happen for finalized packets), histories were captured.
    e.ghist = q.historyCaptured() ? q.ghist()
                                  : ghist_.current();
    e.lhist = q.lhist();
    e.phist = q.phist();
    e.lhistBefore = lhist_.read(q.pc());
    e.metas = q.metadata();
    e.finalPred = *args.finalPred;
    e.dirProvider = q.dirProvider();
    e.targetProvider = q.targetProvider();
    e.brMask = args.brMask;
    e.firstSeq = args.firstSeq;
    e.rasPtr = args.rasPtr;

    // Speculative directions: the predicted-taken CFI slot is taken,
    // every other fetched conditional branch is implicitly not-taken.
    const unsigned takenSlot = args.finalPred->firstTakenSlot();
    for (unsigned i = 0; i < args.fetchedSlots; ++i)
        e.specTakenMask[i] = e.brMask[i] && i == takenSlot &&
                             args.finalPred->slots[i].type == CfiType::Br;

    // Branchless packets never need resolution.
    bool anyBr = false;
    for (unsigned i = 0; i < args.fetchedSlots; ++i)
        anyBr |= e.brMask[i];
    bool anyCf = anyBr;
    for (unsigned i = 0; i < args.fetchedSlots; ++i) {
        const auto& s = args.finalPred->slots[i];
        anyCf |= s.type != CfiType::None;
    }
    e.resolved = !anyCf;

    const FtqPos pos = hf_.enqueue(std::move(e));
    HistoryFileEntry& entry = hf_.at(pos);

    // Deliver fire events (speculative local-state update, §III-E).
    FireEvent fev;
    fev.pc = entry.pc;
    fev.ftqIdx = static_cast<std::uint32_t>(pos);
    fev.finalPred = &entry.finalPred;
    fev.ghist = &entry.ghist;
    fev.lhist = entry.lhist;
    pred_.fire(fev, entry.metas);

    // Speculative local-history update: one bit per packet that
    // contains a conditional branch (packet-granularity histories).
    if (anyBr) {
        const bool takenBit = takenSlot < entry.fetchedSlots &&
                              entry.brMask[takenSlot];
        lhist_.specUpdate(entry.pc, takenBit);
    }

    // Speculative path-history update: record the packet's predicted
    // taken CFI, if any (§IV-B3 path-history provider).
    if (takenSlot < cfg_.fetchWidth &&
        args.finalPred->slots[takenSlot].valid &&
        args.finalPred->slots[takenSlot].taken) {
        const Addr blockBase =
            entry.pc & ~static_cast<Addr>(cfg_.fetchWidth * 4 - 1);
        phist_.push(blockBase + takenSlot * 4);
    }

    ++finalized_;
    if (tracer_ != nullptr) {
        tracer_->record(scope::TraceKind::Fire, entry.pc, fev.ftqIdx,
                        scope::kNoComponent, 0,
                        takenSlot < entry.fetchedSlots);
    }
    return pos;
}

ResolveEvent
BranchPredictorUnit::makeEvent(const HistoryFileEntry& e, FtqPos pos) const
{
    ResolveEvent ev;
    ev.pc = e.pc;
    ev.ftqIdx = static_cast<std::uint32_t>(pos);
    ev.ghist = &e.ghist;
    ev.lhist = e.lhist;
    ev.brMask = e.brMask;
    ev.takenMask = e.takenMask;
    ev.cfiValid = e.cfiValid;
    ev.cfiIdx = e.cfiIdx;
    ev.cfiType = e.cfiType;
    ev.cfiTaken = e.cfiTaken;
    ev.cfiIsCall = e.cfiIsCall;
    ev.cfiIsRet = e.cfiIsRet;
    ev.target = e.actualTarget;
    ev.phist = e.phist;
    ev.mispredicted = e.mispredicted;
    ev.predicted = &e.finalPred;
    return ev;
}

void
BranchPredictorUnit::queueRepairWalk(FtqPos after)
{
    // Collect squashed entries youngest-first so that unconditional
    // per-entry restores compose to the oldest pre-update state
    // (equivalent in cost to the paper's forwards-walk, §IV-B2).
    if (hf_.tailPos() == after + 1)
        return;
    for (FtqPos pos = hf_.tailPos(); pos-- > after + 1;)
        repairQueue_.push_back(RepairJob{hf_.at(pos), pos});
    ++repairWalks_;
}

void
BranchPredictorUnit::resolve(const BranchResolution& res)
{
    if (!hf_.contains(res.ftq)) {
        // The entry was squashed by an older mispredict; nothing to do.
        return;
    }
    HistoryFileEntry& e = hf_.at(res.ftq);

    if (res.slot < kMaxFetchWidth) {
        if (res.type == CfiType::Br)
            e.takenMask[res.slot] = res.taken;
        if (res.sfbConverted)
            e.sfbMask[res.slot] = true;
    }

    // Record the packet's resolved CFI: the oldest taken CF inst.
    if (res.taken && (!e.cfiValid || res.slot < e.cfiIdx)) {
        e.cfiValid = true;
        e.cfiIdx = res.slot;
        e.cfiType = res.type;
        e.cfiTaken = true;
        e.cfiIsCall = res.isCall;
        e.cfiIsRet = res.isRet;
        e.actualTarget = res.target;
    }
    e.resolved = true;

    if (res.mispredicted && !res.sfbConverted) {
        e.mispredicted = true;
        // Truncate the packet at the mispredicted CFI: younger slots
        // of this packet are refetched as a new packet.
        if (res.slot + 1 < e.fetchedSlots) {
            for (unsigned i = res.slot + 1; i < e.fetchedSlots; ++i) {
                e.brMask[i] = false;
                e.takenMask[i] = false;
                e.specTakenMask[i] = false;
            }
            e.fetchedSlots = res.slot + 1;
        }

        // Fast mispredict event (§III-E).
        pred_.mispredict(makeEvent(e, res.ftq), e.metas);

        // Queue the walk over squashed younger entries, then drop them.
        queueRepairWalk(res.ftq);
        hf_.squashAfter(res.ftq);

        // Path-history repair: restore the predict-time value, then
        // re-apply the resolved taken CFI if any.
        phist_.restore(e.phist);
        if (res.taken) {
            const Addr blockBase =
                e.pc & ~static_cast<Addr>(cfg_.fetchWidth * 4 - 1);
            phist_.push(blockBase + res.slot * 4);
        }

        // Local-history repair for the mispredicted packet itself:
        // rewind to the pre-fire value and re-push the resolved
        // direction.
        bool anyBr = false;
        for (unsigned i = 0; i < e.fetchedSlots; ++i)
            anyBr |= e.brMask[i];
        if (anyBr) {
            lhist_.restore(e.pc, e.lhistBefore);
            const bool takenBit = res.type == CfiType::Br && res.taken;
            lhist_.specUpdate(e.pc, takenBit);
        }

        ++mispredicts_;
        if (tracer_ != nullptr) {
            // Attribute the mispredict to the component that provided
            // the wrong field: direction for conditional branches,
            // target for everything else.
            const std::uint8_t comp =
                res.slot < kMaxFetchWidth
                    ? (res.type == CfiType::Br
                           ? e.dirProvider[res.slot]
                           : e.targetProvider[res.slot])
                    : scope::kNoComponent;
            tracer_->record(scope::TraceKind::Mispredict, e.pc,
                            static_cast<std::uint32_t>(res.ftq), comp,
                            static_cast<std::uint8_t>(res.slot),
                            res.taken);
        }
    }
}

void
BranchPredictorUnit::commitPacket(FtqPos pos)
{
    if (hf_.contains(pos))
        hf_.at(pos).committed = true;
}

void
BranchPredictorUnit::squashAll()
{
    hf_.squashAll();
    repairQueue_.clear();
}

void
BranchPredictorUnit::tick()
{
    // Repair walk has priority over commit updates (§IV-B2).
    unsigned walked = 0;
    while (walked < cfg_.walkWidth && !repairQueue_.empty()) {
        const HistoryFileEntry& e = repairQueue_.front().entry;
        ResolveEvent ev = makeEvent(e, repairQueue_.front().pos);
        // For squashed entries the "resolved" directions are the
        // misspeculated ones recorded at fire time.
        ev.takenMask = e.specTakenMask;
        pred_.repair(ev, e.metas);
        // Restore the local history the entry speculatively updated.
        bool anyBr = false;
        for (unsigned i = 0; i < e.fetchedSlots; ++i)
            anyBr |= e.brMask[i];
        if (anyBr)
            lhist_.restore(e.pc, e.lhistBefore);
        repairQueue_.pop_front();
        ++walked;
        ++repairEvents_;
        if (tracer_ != nullptr)
            tracer_->record(scope::TraceKind::Repair, ev.pc, ev.ftqIdx);
    }
    if (walked > 0)
        return;

    // Branchless packets drain for free; real updates cost a slot.
    while (!hf_.empty()) {
        HistoryFileEntry& head = hf_.head();
        bool anyWork = false;
        for (unsigned i = 0; i < head.fetchedSlots; ++i)
            anyWork |= head.brMask[i] && !head.sfbMask[i];
        anyWork |= head.cfiValid;
        if (!head.committed)
            break;
        if (!anyWork) {
            hf_.dequeueHead();
            continue;
        }
        break;
    }

    // Gather this cycle's eligible commit updates without dequeuing
    // (events hold pointers into the entries), deliver them in one
    // component-major batch, then dequeue. Per-component event order
    // matches the sequential loop, so training is bit-identical.
    unsigned updated = 0;
    SmallVector<ResolveEvent, 4> evs;
    SmallVector<const MetadataBundle*, 4> evMetas;
    SmallVector<const std::array<std::uint8_t, kMaxFetchWidth>*, 4>
        evProviders;
    while (updated < cfg_.updateWidth && updated < hf_.size()) {
        HistoryFileEntry& head = hf_.at(hf_.headPos() + updated);
        if (!head.committed || !head.resolved)
            break;
        // Suppress training for SFB-converted branches (§VI-C): they
        // neither mispredict nor consume predictor entries.
        ResolveEvent ev = makeEvent(head, hf_.headPos() + updated);
        for (unsigned i = 0; i < kMaxFetchWidth; ++i) {
            if (head.sfbMask[i]) {
                ev.brMask[i] = false;
                ev.takenMask[i] = false;
            }
        }
        bool anyWork = false;
        for (unsigned i = 0; i < head.fetchedSlots; ++i)
            anyWork |= ev.brMask[i];
        anyWork |= ev.cfiValid && !(head.cfiValid &&
                                    head.sfbMask[head.cfiIdx]);
        if (anyWork) {
            evs.push_back(ev);
            evMetas.push_back(&head.metas);
            evProviders.push_back(&head.dirProvider);
            ++updates_;
        }
        ++updated;
    }
    if (!evs.empty()) {
        pred_.updateBatch(evs.data(), evMetas.data(), evs.size());
        for (std::size_t i = 0; i < evs.size(); ++i)
            pred_.creditResolution(evs[i], *evProviders[i]);
    }
    for (unsigned i = 0; i < updated; ++i)
        hf_.dequeueHead();
}

std::uint64_t
BranchPredictorUnit::managementStorageBits() const
{
    return ghist_.storageBits() + lhist_.storageBits() +
           phist_.storageBits() +
           hf_.storageBits(cfg_.ghistBits, pred_.totalMetaBits(),
                           cfg_.fetchWidth);
}

phys::EnergyReport
BranchPredictorUnit::energyReport(const phys::EnergyModel& model) const
{
    phys::EnergyReport report;
    report.title = "predictor access energy";
    const double queries =
        static_cast<double>(stats_.get("queries"));
    const double updates =
        static_cast<double>(stats_.get("updates"));
    for (auto* c : pred_.components()) {
        const double pj = queries * model.accessPj(c->predictAccess()) +
                          updates * model.accessPj(c->updateAccess());
        report.add(c->name(), pj);
    }
    // Management structures: history-file write per finalize, read
    // per update; ghist/lhist register activity folded in.
    phys::AccessProfile hfWrite;
    hfWrite.sramWriteBits = hf_.storageBits(cfg_.ghistBits,
                                            pred_.totalMetaBits(),
                                            cfg_.fetchWidth) /
                            hf_.capacity();
    phys::AccessProfile hfRead;
    hfRead.sramReadBits = hfWrite.sramWriteBits;
    const double finalized =
        static_cast<double>(stats_.get("finalized"));
    report.add("Meta", finalized * model.accessPj(hfWrite) +
                           updates * model.accessPj(hfRead));
    return report;
}

void
HistoryFileEntry::saveState(warp::StateWriter& w) const
{
    w.u64(pc);
    w.u32(fetchedSlots);
    warp::saveHistFull(w, ghist);
    w.u64(lhist);
    w.u64(phist);
    w.u64(lhistBefore);
    warp::saveMetas(w, metas);
    warp::saveBundle(w, finalPred);
    warp::saveBoolArray(w, brMask);
    warp::saveBoolArray(w, specTakenMask);
    warp::saveU8Array(w, dirProvider);
    warp::saveU8Array(w, targetProvider);
    w.u32(rasPtr);
    w.u64(firstSeq);
    w.boolean(resolved);
    w.boolean(mispredicted);
    warp::saveBoolArray(w, takenMask);
    w.boolean(cfiValid);
    w.u32(cfiIdx);
    w.u8(static_cast<std::uint8_t>(cfiType));
    w.boolean(cfiTaken);
    w.boolean(cfiIsCall);
    w.boolean(cfiIsRet);
    w.u64(actualTarget);
    warp::saveBoolArray(w, sfbMask);
    w.boolean(committed);
}

void
HistoryFileEntry::restoreState(warp::StateReader& r)
{
    pc = r.u64();
    fetchedSlots = r.u32();
    if (fetchedSlots > kMaxFetchWidth)
        r.fail("history-file entry fetched-slot count out of range");
    warp::loadHistFull(r, ghist);
    lhist = r.u64();
    phist = r.u64();
    lhistBefore = r.u64();
    warp::loadMetas(r, metas);
    warp::loadBundle(r, finalPred);
    warp::loadBoolArray(r, brMask);
    warp::loadBoolArray(r, specTakenMask);
    warp::loadU8Array(r, dirProvider);
    warp::loadU8Array(r, targetProvider);
    rasPtr = r.u32();
    firstSeq = r.u64();
    resolved = r.boolean();
    mispredicted = r.boolean();
    warp::loadBoolArray(r, takenMask);
    cfiValid = r.boolean();
    cfiIdx = r.u32();
    const std::uint8_t type = r.u8();
    if (type > static_cast<std::uint8_t>(CfiType::Jalr))
        r.fail("history-file entry CFI type out of range");
    cfiType = static_cast<CfiType>(type);
    cfiTaken = r.boolean();
    cfiIsCall = r.boolean();
    cfiIsRet = r.boolean();
    actualTarget = r.u64();
    warp::loadBoolArray(r, sfbMask);
    committed = r.boolean();
}

void
HistoryFile::saveState(warp::StateWriter& w) const
{
    w.u64(head_);
    w.u64(tail_);
    for (FtqPos pos = head_; pos < tail_; ++pos)
        ring_[pos % capacity_].saveState(w);
}

void
HistoryFile::restoreState(warp::StateReader& r)
{
    const FtqPos head = r.u64();
    const FtqPos tail = r.u64();
    if (tail < head || tail - head > capacity_)
        r.fail("history-file occupancy exceeds its capacity");
    head_ = head;
    tail_ = tail;
    for (auto& e : ring_)
        e = HistoryFileEntry{};
    for (FtqPos pos = head_; pos < tail_; ++pos)
        ring_[pos % capacity_].restoreState(r);
}

void
BranchPredictorUnit::saveState(warp::StateWriter& w) const
{
    w.section("bpu");
    warp::saveHist(w, ghist_.current());
    lhist_.saveState(w);
    w.u64(phist_.current());
    w.u64(querySerial_);
    hf_.saveState(w);
    w.u64(repairQueue_.size());
    for (const RepairJob& job : repairQueue_) {
        job.entry.saveState(w);
        w.u64(job.pos);
    }
    for (const auto* c : pred_.components()) {
        w.section(c->name());
        c->saveState(w);
    }
}

void
BranchPredictorUnit::restoreState(warp::StateReader& r)
{
    r.section("bpu");
    HistoryRegister gh = ghist_.current();
    warp::loadHist(r, gh);
    ghist_.restore(gh);
    lhist_.restoreState(r);
    phist_.restore(r.u64());
    querySerial_ = r.u64();
    hf_.restoreState(r);
    repairQueue_.clear();
    const std::uint64_t jobs = r.u64();
    // Each mispredict queues at most capacity-1 squashed entries, and
    // the walk drains before the next resolve: anything larger is not
    // a state this machine produces.
    if (jobs > std::uint64_t{hf_.capacity()} * 64)
        r.fail("repair queue implausibly large");
    for (std::uint64_t i = 0; i < jobs; ++i) {
        RepairJob job;
        job.entry.restoreState(r);
        job.pos = r.u64();
        repairQueue_.push_back(std::move(job));
    }
    for (auto* c : pred_.components()) {
        r.section(c->name());
        c->restoreState(r);
    }
}

phys::AreaReport
BranchPredictorUnit::areaReport(const phys::AreaModel& model) const
{
    phys::AreaReport report;
    report.title = "predictor area";
    for (auto* c : pred_.components())
        report.add(c->name(), model.area(c->physicalCost()));
    phys::PhysicalCost meta = ghist_.physicalCost();
    meta += lhist_.physicalCost();
    meta += phist_.physicalCost();
    meta += hf_.physicalCost(cfg_.ghistBits, pred_.totalMetaBits(),
                             cfg_.fetchWidth);
    report.add("Meta", model.area(meta));
    return report;
}

} // namespace cobra::bpu
