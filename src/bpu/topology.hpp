/**
 * @file
 * Topological representation of a predictor pipeline (paper §IV-A).
 *
 * A topology is an expression tree over predictor sub-components:
 *
 *  - chain({a, b, c})  encodes the ordering  a > b > c  (a overrides b
 *    overrides c whenever the final prediction is ambiguous);
 *  - arb(t, {x, y})    encodes  t > [x, y]  (arbiter t chooses among
 *    the children's predictions);
 *  - leaf(c)           a single sub-component.
 *
 * The Topology owns its components. The ComposedPredictor interprets
 * the tree to generate the staged pipeline (paper §IV-B).
 */

#ifndef COBRA_BPU_TOPOLOGY_HPP
#define COBRA_BPU_TOPOLOGY_HPP

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bpu/component.hpp"

namespace cobra::bpu {

/** Lightweight handle to a node within a Topology. */
struct NodeRef
{
    std::size_t idx = static_cast<std::size_t>(-1);
    bool valid() const { return idx != static_cast<std::size_t>(-1); }
};

/**
 * Owns sub-components and the expression tree connecting them.
 */
class Topology
{
  public:
    Topology() = default;
    Topology(Topology&&) = default;
    Topology& operator=(Topology&&) = default;

    /** Construct and register a component; returns a non-owning ptr. */
    template <typename T, typename... Args>
    T*
    make(Args&&... args)
    {
        auto owned = std::make_unique<T>(std::forward<Args>(args)...);
        T* raw = owned.get();
        owned_.push_back(std::move(owned));
        return raw;
    }

    /** Register an externally created component (takes ownership). */
    PredictorComponent*
    adopt(std::unique_ptr<PredictorComponent> c)
    {
        PredictorComponent* raw = c.get();
        owned_.push_back(std::move(c));
        return raw;
    }

    /** A leaf node for one component. */
    NodeRef leaf(PredictorComponent* comp);

    /**
     * An ordering chain; children listed highest-priority FIRST, i.e.
     * chain({a, b}) means "a > b" in the paper's notation.
     */
    NodeRef chain(std::vector<NodeRef> children);

    /** An arbitration node: @p arbiter chooses among @p children. */
    NodeRef arb(PredictorComponent* arbiter, std::vector<NodeRef> children);

    /** Convenience: chain of leaves, highest priority first. */
    NodeRef chainOf(std::vector<PredictorComponent*> comps);

    void setRoot(NodeRef root) { root_ = root; }
    NodeRef root() const { return root_; }

    /**
     * Validate structure: root set, arbiters are arbiters, every
     * component used at most once. Throws std::logic_error on error.
     */
    void validate() const;

    /**
     * Replace every owned component with @p wrap(component) and remap
     * the tree's node pointers accordingly. Used to interpose
     * decorators (ContractAuditor, FaultInjector) around every
     * component without the presets knowing about them. The wrapper
     * must preserve name/latency/fetchWidth or re-validate after.
     */
    void wrapEach(
        const std::function<std::unique_ptr<PredictorComponent>(
            std::unique_ptr<PredictorComponent>)>& wrap);

    /** Maximum component latency (pipeline depth). */
    unsigned maxLatency() const;

    /**
     * Components in deterministic pre-order (highest priority first);
     * index in this list is the component's metadata slot.
     */
    std::vector<PredictorComponent*> componentList() const;

    /** Paper-style notation, e.g. "LOOP3 > TAGE3 > BTB2 > BIM2 > uBTB1". */
    std::string describe() const;

    /**
     * Canonical structural key for the specialization registry (see
     * bpu/specialize.hpp): the expression tree rendered over the
     * components' typeKey() tags, e.g. "loop>tage>btb>bim>ubtb" or
     * "tourney[bim>btb,bim]". Returns "" when any component reports an
     * empty typeKey (guard-wrapped or out-of-library components) — an
     * unspecializable topology that must run on the generic path.
     */
    std::string specializedKey() const;

    /**
     * ASCII pipeline diagram: which components respond at each fetch
     * stage (regenerates the content of the paper's Figs. 4 and 7).
     */
    std::string pipelineDiagram() const;

    // ---- Internal node storage (read access for the composer) --------

    enum class NodeKind : std::uint8_t { Leaf, Chain, Arb };

    struct Node
    {
        NodeKind kind = NodeKind::Leaf;
        PredictorComponent* comp = nullptr;  ///< Leaf / Arb arbiter.
        std::vector<std::size_t> children;   ///< Chain / Arb children.
    };

    const Node& node(std::size_t idx) const { return nodes_.at(idx); }
    std::size_t numNodes() const { return nodes_.size(); }

  private:
    std::size_t addNode(Node n);
    void collectComponents(std::size_t idx,
                           std::vector<PredictorComponent*>& out) const;
    std::string describeNode(std::size_t idx) const;

    std::vector<std::unique_ptr<PredictorComponent>> owned_;
    std::vector<Node> nodes_;
    NodeRef root_{};
};

} // namespace cobra::bpu

#endif // COBRA_BPU_TOPOLOGY_HPP
