/**
 * @file
 * Global history provider (paper §IV-B3): a speculatively updated
 * global history register with snapshot-based repair. Snapshots are
 * stored in the history file; policy (when to restore, whether to
 * replay fetch — the §VI-B experiment) lives in the frontend.
 */

#ifndef COBRA_BPU_GHIST_HPP
#define COBRA_BPU_GHIST_HPP

#include "common/folded_history.hpp"
#include "phys/area_model.hpp"

namespace cobra::bpu {

/** Repair policy for speculative global history (paper §VI-B). */
enum class GhistRepairMode : std::uint8_t
{
    /** Strawman: never restore from snapshots (corrupted histories). */
    None,
    /**
     * Paper's original design: the register is repaired from
     * snapshots, but in-flight predictions formed from a corrupted
     * history are not replayed.
     */
    RepairOnly,
    /**
     * Paper's improved design: repairing the history also forces a
     * replay of instruction fetch with the corrected history.
     */
    RepairAndReplay,
};

/** Human-readable name of a repair mode. */
const char* ghistRepairModeName(GhistRepairMode m);

/**
 * The speculative global history register. Bit 0 is the most recent
 * (speculated) conditional-branch outcome.
 */
class GlobalHistoryProvider
{
  public:
    explicit GlobalHistoryProvider(unsigned length = 64)
        : hist_(length)
    {}

    /** Current speculative history (read at the end of Fetch-1). */
    const HistoryRegister& current() const { return hist_; }

    /** Speculatively shift in a predicted outcome. */
    void push(bool taken) { hist_.push(taken); }

    /** Snapshot for the history file. */
    std::vector<std::uint64_t> snapshot() const { return hist_.snapshot(); }

    /** Restore from a history-file snapshot. */
    void
    restore(const std::vector<std::uint64_t>& snap)
    {
        hist_.restore(snap);
    }

    /** Restore directly from a register value. */
    void restore(const HistoryRegister& h) { hist_ = h; }

    unsigned length() const { return hist_.length(); }

    /** Register bits (flops) — snapshots are costed in the history file. */
    std::uint64_t storageBits() const { return hist_.length(); }

    phys::PhysicalCost
    physicalCost() const
    {
        phys::PhysicalCost c;
        c.flopBits = hist_.length();
        c.logicGates = 4 * hist_.length(); // shift/restore muxing
        return c;
    }

  private:
    HistoryRegister hist_;
};

} // namespace cobra::bpu

#endif // COBRA_BPU_GHIST_HPP
