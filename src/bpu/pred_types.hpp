/**
 * @file
 * Value types of the COBRA predictor interface (paper §III):
 * superscalar prediction bundles, per-component metadata, and the
 * payloads of the five prediction events (predict / fire /
 * mispredict / repair / update).
 */

#ifndef COBRA_BPU_PRED_TYPES_HPP
#define COBRA_BPU_PRED_TYPES_HPP

#include <array>
#include <cstdint>
#include <vector>

#include "common/folded_history.hpp"
#include "common/small_vector.hpp"
#include "common/types.hpp"

namespace cobra::bpu {

/** Maximum fetch width supported by the bundle types. */
inline constexpr unsigned kMaxFetchWidth = 8;

/** Control-flow-instruction type, as the frontend classifies it. */
enum class CfiType : std::uint8_t
{
    None, ///< No CFI.
    Br,   ///< Conditional branch.
    Jal,  ///< Unconditional direct jump or call.
    Jalr, ///< Indirect jump / indirect call / return.
};

/**
 * Prediction for one instruction slot of a fetch packet
 * (paper §III-C: predictors output a vector of predictions so that
 * multiple branches in a fetch packet do not alias).
 */
struct PredictionSlot
{
    /** A direction prediction exists for this slot. */
    bool valid = false;
    /** Predicted to be a taken control-flow instruction. */
    bool taken = false;
    /** A target prediction exists for this slot. */
    bool targetValid = false;
    /** Predicted target address. */
    Addr target = kInvalidAddr;
    /** Predicted CFI type (from BTB-like components). */
    CfiType type = CfiType::None;
    /** Predicted to be a call (push RAS) / return (pop RAS). */
    bool isCall = false;
    bool isRet = false;
};

/**
 * A superscalar prediction bundle: one PredictionSlot per fetch slot.
 * This is both the `predict_in` and `predict_out` of the interface
 * (paper §III-F): components override fields, pass slots through, or
 * fill in partial predictions (e.g., a BTB adds targets only).
 */
struct PredictionBundle
{
    unsigned width = 4;
    std::array<PredictionSlot, kMaxFetchWidth> slots{};

    /** Index of the first slot predicted taken, or width if none. */
    unsigned
    firstTakenSlot() const
    {
        for (unsigned i = 0; i < width; ++i)
            if (slots[i].valid && slots[i].taken)
                return i;
        return width;
    }

    /** True if any slot predicts a taken CFI. */
    bool anyTaken() const { return firstTakenSlot() < width; }

    /** Clear all slots (no prediction). */
    void
    clear()
    {
        for (auto& s : slots)
            s = PredictionSlot{};
    }
};

/**
 * Opaque per-component metadata (paper §III-D). The interface
 * guarantees this round-trips from predict-time to update /
 * mispredict / repair time via the history file. 256 bits is enough
 * for every component in the library; each component declares its
 * true bit-length via metaBits() so the history file's storage cost
 * is accounted exactly.
 */
struct Metadata
{
    std::array<std::uint64_t, 4> w{};

    std::uint64_t& operator[](std::size_t i) { return w[i]; }
    const std::uint64_t& operator[](std::size_t i) const { return w[i]; }
};

/**
 * Metadata for every component in a composed pipeline. Compositions
 * of up to 8 components (every paper design uses <= 5) store their
 * metadata inline, so copying a bundle into the history file or a
 * repair job allocates nothing.
 */
using MetadataBundle = SmallVector<Metadata, 8>;

/**
 * Inputs available to a component when predicting (paper §III-A/B):
 * the fetch PC at cycle 0; global and local histories from the end of
 * cycle 1 — so 1-cycle components must not read them (enforced by the
 * composer passing nullptr at stage 1).
 */
struct PredictContext
{
    Addr pc = kInvalidAddr;
    /** Number of valid instruction slots from pc to packet end. */
    unsigned validSlots = 4;
    /** Global history (null when predicting at stage 1). */
    const HistoryRegister* ghist = nullptr;
    /** Local history for this PC (undefined at stage 1). */
    std::uint64_t lhist = 0;
    /** Path history: hashed PCs of recent taken CFIs (§IV-B3). */
    std::uint64_t phist = 0;
    /**
     * Pipeline stage this call is made at (0 when driven outside the
     * composer, e.g. by component-level tests). The contract requires
     * stage == latency() for chain members; arbiter children may be
     * first evaluated at the arbiter's (later) stage.
     */
    unsigned stage = 0;
    /** Monotonic query id from the BPU (0 outside the composer). */
    std::uint64_t serial = 0;
};

/**
 * Payload of the `fire` event (paper §III-E): the pipeline commits to
 * a finalized speculative prediction for this packet; components that
 * maintain local state (loop predictor, local histories) update
 * speculatively now.
 */
struct FireEvent
{
    Addr pc = kInvalidAddr;
    /** History-file index, ties fire to a later repair. */
    std::uint32_t ftqIdx = 0;
    const PredictionBundle* finalPred = nullptr;
    const HistoryRegister* ghist = nullptr;
    std::uint64_t lhist = 0;
    Metadata* meta = nullptr; ///< Writable: fire may extend metadata.
};

/**
 * Payload shared by the mispredict / repair / update events
 * (paper §III-E): the predict-time PC, histories, and metadata are
 * provided back, together with the resolved (or misspeculated)
 * directions for the packet.
 */
struct ResolveEvent
{
    Addr pc = kInvalidAddr;
    std::uint32_t ftqIdx = 0;
    const HistoryRegister* ghist = nullptr; ///< As provided at predict.
    std::uint64_t lhist = 0;
    std::uint64_t phist = 0; ///< Path history as provided at predict.
    const Metadata* meta = nullptr;

    /** Slots that actually held conditional branches (post-decode). */
    std::array<bool, kMaxFetchWidth> brMask{};
    /** Resolved directions for those slots. */
    std::array<bool, kMaxFetchWidth> takenMask{};

    /** The packet's resolved CFI (first taken CF), if any. */
    bool cfiValid = false;
    unsigned cfiIdx = 0;
    CfiType cfiType = CfiType::None;
    bool cfiTaken = false;
    bool cfiIsCall = false;
    bool cfiIsRet = false;
    Addr target = kInvalidAddr; ///< Actual target of the CFI.

    /** True when this packet's prediction was wrong (mispredict). */
    bool mispredicted = false;
    /** The bundle that was predicted at fetch time. */
    const PredictionBundle* predicted = nullptr;

    /**
     * True when the conditional branch in slot @p i resolved against
     * the pipeline's fetch-time direction (covers not-taken
     * mispredicts, which carry no taken CFI).
     */
    bool
    slotMispredicted(unsigned i) const
    {
        if (i >= kMaxFetchWidth || !brMask[i])
            return false;
        const bool predTaken = predicted != nullptr &&
                               predicted->slots[i].valid &&
                               predicted->slots[i].taken;
        return predTaken != takenMask[i];
    }
};

} // namespace cobra::bpu

#endif // COBRA_BPU_PRED_TYPES_HPP
