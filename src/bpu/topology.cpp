#include "bpu/topology.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <stdexcept>

namespace cobra::bpu {

std::size_t
Topology::addNode(Node n)
{
    nodes_.push_back(std::move(n));
    return nodes_.size() - 1;
}

NodeRef
Topology::leaf(PredictorComponent* comp)
{
    if (comp == nullptr)
        throw std::logic_error("leaf: null component");
    Node n;
    n.kind = NodeKind::Leaf;
    n.comp = comp;
    return NodeRef{addNode(std::move(n))};
}

NodeRef
Topology::chain(std::vector<NodeRef> children)
{
    if (children.empty())
        throw std::logic_error("chain: no children");
    if (children.size() == 1)
        return children.front();
    Node n;
    n.kind = NodeKind::Chain;
    for (const auto& c : children) {
        if (!c.valid())
            throw std::logic_error("chain: invalid child");
        n.children.push_back(c.idx);
    }
    return NodeRef{addNode(std::move(n))};
}

NodeRef
Topology::arb(PredictorComponent* arbiter, std::vector<NodeRef> children)
{
    if (arbiter == nullptr || !arbiter->isArbiter())
        throw std::logic_error("arb: arbiter component required");
    if (children.empty())
        throw std::logic_error("arb: no children");
    Node n;
    n.kind = NodeKind::Arb;
    n.comp = arbiter;
    for (const auto& c : children) {
        if (!c.valid())
            throw std::logic_error("arb: invalid child");
        n.children.push_back(c.idx);
    }
    return NodeRef{addNode(std::move(n))};
}

NodeRef
Topology::chainOf(std::vector<PredictorComponent*> comps)
{
    std::vector<NodeRef> refs;
    refs.reserve(comps.size());
    for (auto* c : comps)
        refs.push_back(leaf(c));
    return chain(std::move(refs));
}

void
Topology::validate() const
{
    if (!root_.valid())
        throw std::logic_error("topology: root not set");
    std::vector<PredictorComponent*> comps;
    collectComponents(root_.idx, comps);
    std::set<PredictorComponent*> seen;
    for (auto* c : comps) {
        if (!seen.insert(c).second) {
            throw std::logic_error("topology: component '" + c->name() +
                                   "' used more than once");
        }
    }
}

unsigned
Topology::maxLatency() const
{
    unsigned m = 1;
    for (auto* c : componentList())
        m = std::max(m, c->latency());
    return m;
}

void
Topology::collectComponents(std::size_t idx,
                            std::vector<PredictorComponent*>& out) const
{
    const Node& n = nodes_.at(idx);
    if (n.comp != nullptr)
        out.push_back(n.comp);
    for (std::size_t c : n.children)
        collectComponents(c, out);
}

std::vector<PredictorComponent*>
Topology::componentList() const
{
    std::vector<PredictorComponent*> out;
    if (root_.valid())
        collectComponents(root_.idx, out);
    return out;
}

std::string
Topology::describeNode(std::size_t idx) const
{
    const Node& n = nodes_.at(idx);
    std::ostringstream oss;
    switch (n.kind) {
      case NodeKind::Leaf:
        oss << n.comp->name() << n.comp->latency();
        break;
      case NodeKind::Chain: {
        bool first = true;
        for (std::size_t c : n.children) {
            if (!first)
                oss << " > ";
            first = false;
            const bool paren = nodes_.at(c).kind == NodeKind::Chain;
            if (paren)
                oss << "(";
            oss << describeNode(c);
            if (paren)
                oss << ")";
        }
        break;
      }
      case NodeKind::Arb: {
        oss << n.comp->name() << n.comp->latency() << " > [";
        bool first = true;
        for (std::size_t c : n.children) {
            if (!first)
                oss << ", ";
            first = false;
            const bool paren = nodes_.at(c).kind == NodeKind::Chain;
            if (paren)
                oss << "(";
            oss << describeNode(c);
            if (paren)
                oss << ")";
        }
        oss << "]";
        break;
      }
    }
    return oss.str();
}

std::string
Topology::describe() const
{
    if (!root_.valid())
        return "<empty topology>";
    return describeNode(root_.idx);
}

std::string
Topology::pipelineDiagram() const
{
    std::ostringstream oss;
    const unsigned depth = maxLatency();
    oss << "Topology: " << describe() << "\n";
    for (unsigned d = 1; d <= depth; ++d) {
        oss << "  Fetch-" << d << ": ";
        bool first = true;
        for (auto* c : componentList()) {
            if (c->latency() != d)
                continue;
            if (!first)
                oss << ", ";
            first = false;
            oss << c->name();
        }
        if (first)
            oss << "(prediction carried over)";
        oss << "\n";
    }
    return oss.str();
}

} // namespace cobra::bpu
