#include "bpu/topology.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_map>

#include "guard/errors.hpp"

namespace cobra::bpu {

std::size_t
Topology::addNode(Node n)
{
    nodes_.push_back(std::move(n));
    return nodes_.size() - 1;
}

NodeRef
Topology::leaf(PredictorComponent* comp)
{
    if (comp == nullptr)
        throw guard::ConfigError("leaf: null component");
    Node n;
    n.kind = NodeKind::Leaf;
    n.comp = comp;
    return NodeRef{addNode(std::move(n))};
}

NodeRef
Topology::chain(std::vector<NodeRef> children)
{
    if (children.empty())
        throw guard::ConfigError("chain: no children");
    if (children.size() == 1)
        return children.front();
    Node n;
    n.kind = NodeKind::Chain;
    for (const auto& c : children) {
        if (!c.valid())
            throw guard::ConfigError("chain: invalid child");
        n.children.push_back(c.idx);
    }
    return NodeRef{addNode(std::move(n))};
}

NodeRef
Topology::arb(PredictorComponent* arbiter, std::vector<NodeRef> children)
{
    if (arbiter == nullptr || !arbiter->isArbiter())
        throw guard::ConfigError("arb: arbiter component required");
    if (children.empty())
        throw guard::ConfigError("arb: no children");
    Node n;
    n.kind = NodeKind::Arb;
    n.comp = arbiter;
    for (const auto& c : children) {
        if (!c.valid())
            throw guard::ConfigError("arb: invalid child");
        n.children.push_back(c.idx);
    }
    return NodeRef{addNode(std::move(n))};
}

NodeRef
Topology::chainOf(std::vector<PredictorComponent*> comps)
{
    std::vector<NodeRef> refs;
    refs.reserve(comps.size());
    for (auto* c : comps)
        refs.push_back(leaf(c));
    return chain(std::move(refs));
}

void
Topology::validate() const
{
    if (!root_.valid())
        throw guard::ConfigError("topology: root not set");
    std::vector<PredictorComponent*> comps;
    collectComponents(root_.idx, comps);
    std::set<PredictorComponent*> seen;
    for (auto* c : comps) {
        if (!seen.insert(c).second) {
            throw guard::ConfigError("topology: component '" + c->name() +
                                     "' used more than once");
        }
    }
}

void
Topology::wrapEach(
    const std::function<std::unique_ptr<PredictorComponent>(
        std::unique_ptr<PredictorComponent>)>& wrap)
{
    std::unordered_map<PredictorComponent*, PredictorComponent*> remap;
    for (auto& owned : owned_) {
        PredictorComponent* before = owned.get();
        owned = wrap(std::move(owned));
        if (owned == nullptr)
            throw guard::ConfigError("wrapEach: wrapper returned null");
        remap[before] = owned.get();
    }
    for (Node& n : nodes_) {
        if (n.comp == nullptr)
            continue;
        auto it = remap.find(n.comp);
        if (it == remap.end()) {
            throw guard::ConfigError(
                "wrapEach: node references a component the topology "
                "does not own");
        }
        n.comp = it->second;
    }
}

unsigned
Topology::maxLatency() const
{
    unsigned m = 1;
    for (auto* c : componentList())
        m = std::max(m, c->latency());
    return m;
}

void
Topology::collectComponents(std::size_t idx,
                            std::vector<PredictorComponent*>& out) const
{
    const Node& n = nodes_.at(idx);
    if (n.comp != nullptr)
        out.push_back(n.comp);
    for (std::size_t c : n.children)
        collectComponents(c, out);
}

std::vector<PredictorComponent*>
Topology::componentList() const
{
    std::vector<PredictorComponent*> out;
    if (root_.valid())
        collectComponents(root_.idx, out);
    return out;
}

std::string
Topology::describeNode(std::size_t idx) const
{
    const Node& n = nodes_.at(idx);
    std::ostringstream oss;
    switch (n.kind) {
      case NodeKind::Leaf:
        oss << n.comp->name() << n.comp->latency();
        break;
      case NodeKind::Chain: {
        bool first = true;
        for (std::size_t c : n.children) {
            if (!first)
                oss << " > ";
            first = false;
            const bool paren = nodes_.at(c).kind == NodeKind::Chain;
            if (paren)
                oss << "(";
            oss << describeNode(c);
            if (paren)
                oss << ")";
        }
        break;
      }
      case NodeKind::Arb: {
        oss << n.comp->name() << n.comp->latency() << " > [";
        bool first = true;
        for (std::size_t c : n.children) {
            if (!first)
                oss << ", ";
            first = false;
            const bool paren = nodes_.at(c).kind == NodeKind::Chain;
            if (paren)
                oss << "(";
            oss << describeNode(c);
            if (paren)
                oss << ")";
        }
        oss << "]";
        break;
      }
    }
    return oss.str();
}

namespace {

/** Render the specialization key for one node; "" poisons upward. */
std::string
specializedKeyNode(const Topology& topo, std::size_t idx)
{
    const Topology::Node& n = topo.node(idx);
    std::string out;
    switch (n.kind) {
      case Topology::NodeKind::Leaf:
        return n.comp->typeKey();
      case Topology::NodeKind::Chain: {
        bool first = true;
        for (std::size_t c : n.children) {
            const std::string k = specializedKeyNode(topo, c);
            if (k.empty())
                return "";
            if (!first)
                out += ">";
            first = false;
            // Nested chains cannot occur (chain() flattens singles and
            // children are leaves/arbs), but parenthesize defensively.
            if (topo.node(c).kind == Topology::NodeKind::Chain)
                out += "(" + k + ")";
            else
                out += k;
        }
        return out;
      }
      case Topology::NodeKind::Arb: {
        const std::string arb = n.comp->typeKey();
        if (arb.empty())
            return "";
        out = arb + "[";
        bool first = true;
        for (std::size_t c : n.children) {
            const std::string k = specializedKeyNode(topo, c);
            if (k.empty())
                return "";
            if (!first)
                out += ",";
            first = false;
            out += k;
        }
        out += "]";
        return out;
      }
    }
    return "";
}

} // namespace

std::string
Topology::specializedKey() const
{
    if (!root_.valid())
        return "";
    return specializedKeyNode(*this, root_.idx);
}

std::string
Topology::describe() const
{
    if (!root_.valid())
        return "<empty topology>";
    return describeNode(root_.idx);
}

std::string
Topology::pipelineDiagram() const
{
    std::ostringstream oss;
    const unsigned depth = maxLatency();
    oss << "Topology: " << describe() << "\n";
    for (unsigned d = 1; d <= depth; ++d) {
        oss << "  Fetch-" << d << ": ";
        bool first = true;
        for (auto* c : componentList()) {
            if (c->latency() != d)
                continue;
            if (!first)
                oss << ", ";
            first = false;
            oss << c->name();
        }
        if (first)
            oss << "(prediction carried over)";
        oss << "\n";
    }
    return oss.str();
}

} // namespace cobra::bpu
