/**
 * @file
 * The oracle executor: architecturally executes a Program along the
 * correct path, producing the dynamic instruction stream the core
 * model consumes. Generation is strictly forward; the consumer reads
 * through a rewindable cursor, so squash/redirect never needs to
 * roll back behaviour state (DESIGN.md §4).
 *
 * The oracle also synthesises *wrong-path* instructions: when fetch
 * runs down a mispredicted path, instructions are materialised from
 * the static image with hash-deterministic outcomes. Wrong-path
 * execution never touches oracle state — it only pollutes the
 * predictor's speculative structures, which is the phenomenon the
 * paper's §VI-B studies.
 */

#ifndef COBRA_EXEC_ORACLE_HPP
#define COBRA_EXEC_ORACLE_HPP

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/bitutil.hpp"
#include "common/types.hpp"
#include "program/program.hpp"

namespace cobra::warp {
class StateWriter;
class StateReader;
} // namespace cobra::warp

namespace cobra::exec {

/** One dynamic instruction (correct-path or synthesised wrong-path). */
struct DynInst
{
    SeqNum seq = kInvalidSeq;     ///< Correct-path sequence number.
    Addr pc = kInvalidAddr;
    const prog::StaticInst* si = nullptr;

    bool taken = false;           ///< CF outcome (uncond CF: true).
    Addr nextPc = kInvalidAddr;   ///< Architectural next PC.
    Addr memAddr = kInvalidAddr;  ///< Effective address for ld/st.

    SeqNum dep1 = kInvalidSeq;    ///< Producer of src1, if in flight.
    SeqNum dep2 = kInvalidSeq;    ///< Producer of src2, if in flight.

    bool wrongPath = false;       ///< Synthesised beyond a mispredict.

    bool isCf() const { return si && prog::isControlFlow(si->op); }
    bool isCondBranch() const
    {
        return si && si->op == prog::OpClass::CondBranch;
    }
};

/**
 * Source of recorded committed control-flow outcomes for trace
 * replay. The oracle's synthetic stream is deterministic in exactly
 * two non-derivable inputs per instruction class: the direction of
 * each conditional branch and the target of each indirect jump/call
 * (everything else — dependences, call/return targets, memory
 * addresses, wrong-path synthesis — is a pure function of the static
 * image, the seed, and those outcomes). A bound CfSource supplies
 * those two streams in generation order, so a replayed oracle
 * reconstructs the execute-mode instruction stream bit-identically
 * without evaluating any behaviour hash.
 *
 * Implementations validate the site (@p pc) of every read and raise
 * guard::CheckpointError on mismatch or exhaustion — a desync means
 * the trace does not belong to this Program/seed.
 */
class CfSource
{
  public:
    virtual ~CfSource() = default;

    /** Direction of the next recorded conditional branch at @p pc. */
    virtual bool nextCond(Addr pc) = 0;

    /** Target of the next recorded indirect jump/call at @p pc. */
    virtual Addr nextIndirect(Addr pc) = 0;

    /** Reposition so record @p idx is read next (checkpoint restore). */
    virtual void seek(std::uint64_t idx) = 0;

    /** Index of the record the next read returns. */
    virtual std::uint64_t position() const = 0;
};

/**
 * Architectural executor with a rewindable output buffer.
 *
 * Usage:
 *  - peek(k): k-th not-yet-consumed correct-path instruction
 *    (generated on demand).
 *  - consume(): advance the cursor by one.
 *  - rewindTo(seq): reset the cursor so instruction `seq` is the next
 *    one consumed (used on squash).
 *  - retireUpTo(seq): drop retired instructions from the buffer.
 */
class Oracle
{
  public:
    explicit Oracle(const prog::Program& program,
                    std::uint64_t seed = 0xD15EA5E);

    /** Peek the k-th upcoming correct-path instruction. */
    const DynInst& peek(std::size_t k = 0);

    /** Consume (and return) the next correct-path instruction. */
    const DynInst& consume();

    /** Sequence number the cursor will produce next. */
    SeqNum nextSeq() const { return bufferBase_ + cursor_; }

    /** PC of the next correct-path instruction. */
    Addr nextPc() { return peek(0).pc; }

    /**
     * Rewind so that the instruction with sequence number @p seq is
     * produced by the next consume(). @p seq must not precede the
     * oldest retained instruction.
     */
    void rewindTo(SeqNum seq);

    /** Discard buffered instructions with seq <= @p seq (retired). */
    void retireUpTo(SeqNum seq);

    /** Total correct-path instructions generated so far. */
    SeqNum generatedCount() const { return genSeq_; }

    /**
     * Synthesise a wrong-path instruction at @p pc. Deterministic in
     * (pc, salt); does not disturb architectural state.
     */
    DynInst wrongPath(Addr pc, std::uint64_t salt) const;

    const prog::Program& program() const { return prog_; }

    /**
     * Checkpoint the full architectural execution state, including
     * the rewindable output buffer (so in-flight squash/rewind state
     * resumes bit-exactly).
     */
    void saveState(warp::StateWriter& w) const;
    void restoreState(warp::StateReader& r);

    /**
     * Bind a recorded control-flow source: subsequent generation
     * takes conditional directions and indirect targets from @p cf
     * instead of evaluating behaviour hashes, while every piece of
     * behaviour state (occurrence counters, loop trip state, local
     * and global history) is advanced exactly as execute mode would —
     * so checkpoints are byte-identical across modes and freely
     * interchangeable. The source is repositioned to this oracle's
     * current stream position (cfConsumed()) at bind and after every
     * restoreState(). Pass nullptr to unbind.
     */
    void bindCfSource(CfSource* cf);

    /** True when generation replays a bound CfSource. */
    bool replaying() const { return cf_ != nullptr; }

    /**
     * Control-flow records consumed so far: the number of conditional
     * branches plus indirect jumps/calls generated. Derived from the
     * per-site occurrence counters, so it needs no extra checkpoint
     * state — restoring any snapshot re-derives the replay position.
     */
    std::uint64_t cfConsumed() const;

  private:
    /** Generate one more correct-path instruction into the buffer. */
    void generateOne();

    /** Evaluate a conditional branch's architectural outcome. */
    bool evalDirection(const prog::StaticInst& si);

    /** Evaluate an indirect CF's architectural target. */
    Addr evalIndirect(const prog::StaticInst& si);

    /**
     * Apply evalDirection's behaviour-state side effects for a
     * replayed direction (occurrence, loop trip tracking, local
     * history) without evaluating the outcome hash.
     */
    void applyReplayDirection(const prog::StaticInst& si, bool taken);

    /** Evaluate a load/store effective address. */
    Addr evalMemAddr(const prog::StaticInst& si);

    /** Per-branch-site mutable behaviour state. */
    struct BranchState
    {
        std::uint64_t occurrence = 0; ///< Retired-path executions.
        unsigned loopCount = 0;       ///< Iterations in current loop run.
        unsigned curTrip = 1;         ///< Trip count of the current run.
        std::uint64_t localHist = 0;  ///< This branch's outcome history.
    };

    struct IndirectState
    {
        std::uint64_t occurrence = 0;
    };

    struct MemState
    {
        std::uint64_t occurrence = 0;
        Addr last = 0;
    };

    const prog::Program& prog_;
    std::uint64_t seed_;
    CfSource* cf_ = nullptr; ///< Replay source; nullptr = execute mode.

    // Architectural execution state (forward-only).
    Addr pc_;
    SeqNum genSeq_ = 0;
    std::vector<Addr> callStack_;
    std::uint64_t ghist_ = 0; ///< Conditional outcomes, bit 0 newest.
    std::vector<BranchState> branchState_;
    std::vector<IndirectState> indirectState_;
    std::vector<MemState> memState_;
    std::array<SeqNum, 32> lastWriter_{};

    // Output buffer with rewindable cursor.
    std::deque<DynInst> buffer_;
    SeqNum bufferBase_ = 0; ///< seq of buffer_[0].
    std::size_t cursor_ = 0;
};

/**
 * Serialize one dynamic instruction. The static-instruction pointer
 * is encoded as its index into @p prog (the checkpoint fingerprint
 * guarantees both sides see the same image).
 */
void saveDynInst(warp::StateWriter& w, const DynInst& di,
                 const prog::Program& prog);
void loadDynInst(warp::StateReader& r, DynInst& di,
                 const prog::Program& prog);

} // namespace cobra::exec

#endif // COBRA_EXEC_ORACLE_HPP
