#include "exec/oracle.hpp"

#include <cassert>

#include "warp/state_util.hpp"

namespace cobra::exec {

using prog::OpClass;
using prog::StaticInst;

Oracle::Oracle(const prog::Program& program, std::uint64_t seed)
    : prog_(program), seed_(seed), pc_(program.entry())
{
    branchState_.resize(prog_.numBranchBehaviors());
    indirectState_.resize(prog_.numIndirectBehaviors());
    memState_.resize(prog_.numMemStreams());
    lastWriter_.fill(kInvalidSeq);
}

const DynInst&
Oracle::peek(std::size_t k)
{
    while (cursor_ + k >= buffer_.size())
        generateOne();
    return buffer_[cursor_ + k];
}

const DynInst&
Oracle::consume()
{
    const DynInst& di = peek(0);
    ++cursor_;
    return di;
}

void
Oracle::rewindTo(SeqNum seq)
{
    assert(seq >= bufferBase_);
    assert(seq <= bufferBase_ + buffer_.size());
    cursor_ = static_cast<std::size_t>(seq - bufferBase_);
}

void
Oracle::retireUpTo(SeqNum seq)
{
    while (!buffer_.empty() && bufferBase_ <= seq) {
        buffer_.pop_front();
        ++bufferBase_;
        assert(cursor_ > 0);
        --cursor_;
    }
}

void
Oracle::bindCfSource(CfSource* cf)
{
    cf_ = cf;
    if (cf_ != nullptr)
        cf_->seek(cfConsumed());
}

std::uint64_t
Oracle::cfConsumed() const
{
    std::uint64_t n = 0;
    for (const BranchState& b : branchState_)
        n += b.occurrence;
    for (const IndirectState& s : indirectState_)
        n += s.occurrence;
    return n;
}

void
Oracle::applyReplayDirection(const StaticInst& si, bool taken)
{
    const prog::BranchBehavior& b = prog_.branchBehavior(si.behaviorId);
    BranchState& st = branchState_[si.behaviorId];
    if (b.kind == prog::BranchBehavior::Kind::Loop) {
        // Mirror evalDirection's trip bookkeeping so loop state (and
        // therefore checkpoints) stays byte-identical across modes.
        if (st.loopCount == 0) {
            unsigned trip = b.trip;
            if (b.tripJitter > 0) {
                trip += static_cast<unsigned>(
                    mix64(b.seed ^ st.occurrence) % (b.tripJitter + 1));
            }
            st.curTrip = trip < 1 ? 1 : trip;
        }
        st.loopCount = taken ? st.loopCount + 1 : 0;
    }
    ++st.occurrence;
    st.localHist = (st.localHist << 1) | (taken ? 1 : 0);
}

bool
Oracle::evalDirection(const StaticInst& si)
{
    const prog::BranchBehavior& b = prog_.branchBehavior(si.behaviorId);
    BranchState& st = branchState_[si.behaviorId];
    bool taken = false;

    switch (b.kind) {
      case prog::BranchBehavior::Kind::Biased: {
        const std::uint64_t h = mix64(b.seed ^ st.occurrence);
        taken = (h >> 11) * (1.0 / 9007199254740992.0) < b.pTaken;
        break;
      }
      case prog::BranchBehavior::Kind::Loop: {
        if (st.loopCount == 0) {
            // Fix the trip count for this loop run.
            unsigned trip = b.trip;
            if (b.tripJitter > 0) {
                trip += static_cast<unsigned>(
                    mix64(b.seed ^ st.occurrence) % (b.tripJitter + 1));
            }
            st.curTrip = trip < 1 ? 1 : trip;
        }
        taken = st.loopCount + 1 < st.curTrip;
        st.loopCount = taken ? st.loopCount + 1 : 0;
        break;
      }
      case prog::BranchBehavior::Kind::Periodic: {
        const unsigned pos =
            static_cast<unsigned>(st.occurrence % b.patternLen);
        taken = (b.pattern >> pos) & 1;
        break;
      }
      case prog::BranchBehavior::Kind::GlobalCorrelated: {
        const std::uint64_t h = ghist_ & maskBits(b.depth);
        taken = mix64(b.seed ^ h) & 1;
        if (b.noise > 0.0) {
            const std::uint64_t n = mix64(~b.seed ^ st.occurrence);
            if ((n >> 11) * (1.0 / 9007199254740992.0) < b.noise)
                taken = !taken;
        }
        break;
      }
      case prog::BranchBehavior::Kind::LocalCorrelated: {
        const std::uint64_t h = st.localHist & maskBits(b.depth);
        taken = mix64(b.seed ^ h) & 1;
        if (b.noise > 0.0) {
            const std::uint64_t n = mix64(~b.seed ^ st.occurrence);
            if ((n >> 11) * (1.0 / 9007199254740992.0) < b.noise)
                taken = !taken;
        }
        break;
      }
    }

    ++st.occurrence;
    st.localHist = (st.localHist << 1) | (taken ? 1 : 0);
    return taken;
}

Addr
Oracle::evalIndirect(const StaticInst& si)
{
    const prog::IndirectBehavior& b = prog_.indirectBehavior(si.behaviorId);
    IndirectState& st = indirectState_[si.behaviorId];
    const std::uint64_t occ = st.occurrence++;
    if (b.targets.empty())
        return pc_ + kInstBytes;

    std::size_t idx = 0;
    switch (b.kind) {
      case prog::IndirectBehavior::Kind::Monomorphic:
        idx = 0;
        break;
      case prog::IndirectBehavior::Kind::RoundRobin:
        idx = occ % b.targets.size();
        break;
      case prog::IndirectBehavior::Kind::HashSelected:
        idx = mix64(b.seed ^ occ) % b.targets.size();
        break;
      case prog::IndirectBehavior::Kind::HistorySelected:
        idx = mix64(b.seed ^ (ghist_ & maskBits(b.depth))) %
              b.targets.size();
        break;
    }
    return b.targets[idx];
}

Addr
Oracle::evalMemAddr(const StaticInst& si)
{
    if (si.memStreamId == prog::kNoMemStream)
        return 0x7000'0000;
    const prog::MemStream& m = prog_.memStream(si.memStreamId);
    MemState& st = memState_[si.memStreamId];
    const std::uint64_t occ = st.occurrence++;
    Addr a = m.base;
    switch (m.kind) {
      case prog::MemStream::Kind::Stride: {
        const std::uint64_t off =
            (occ * static_cast<std::uint64_t>(m.stride)) % m.windowBytes;
        a = m.base + (off & ~std::uint64_t{7});
        break;
      }
      case prog::MemStream::Kind::Random:
        a = m.base + (mix64(m.seed ^ occ) % m.windowBytes & ~std::uint64_t{7});
        break;
      case prog::MemStream::Kind::PointerChase:
        a = m.base +
            (mix64(m.seed ^ st.last) % m.windowBytes & ~std::uint64_t{7});
        st.last = a;
        break;
    }
    return a;
}

void
Oracle::generateOne()
{
    const Addr pc = prog_.clampPc(pc_);
    const StaticInst& si = prog_.at(pc);

    DynInst di;
    di.seq = genSeq_++;
    di.pc = pc;
    di.si = &si;
    di.nextPc = pc + kInstBytes;

    // Register dependences: producers recorded before dst update so a
    // self-referencing instruction depends on the previous writer.
    if (si.src1 != 0)
        di.dep1 = lastWriter_[si.src1 % 32];
    if (si.src2 != 0)
        di.dep2 = lastWriter_[si.src2 % 32];

    switch (si.op) {
      case OpClass::CondBranch: {
        if (cf_ != nullptr) {
            di.taken = cf_->nextCond(pc);
            applyReplayDirection(si, di.taken);
        } else {
            di.taken = evalDirection(si);
        }
        if (di.taken) {
            assert(si.target != kInvalidAddr);
            di.nextPc = si.target;
        }
        ghist_ = (ghist_ << 1) | (di.taken ? 1 : 0);
        break;
      }
      case OpClass::Jump:
        di.taken = true;
        di.nextPc = si.target;
        break;
      case OpClass::Call:
        di.taken = true;
        di.nextPc = si.target;
        callStack_.push_back(pc + kInstBytes);
        break;
      case OpClass::IndirectJump:
        di.taken = true;
        if (cf_ != nullptr) {
            di.nextPc = cf_->nextIndirect(pc);
            ++indirectState_[si.behaviorId].occurrence;
        } else {
            di.nextPc = evalIndirect(si);
        }
        break;
      case OpClass::IndirectCall:
        di.taken = true;
        if (cf_ != nullptr) {
            di.nextPc = cf_->nextIndirect(pc);
            ++indirectState_[si.behaviorId].occurrence;
        } else {
            di.nextPc = evalIndirect(si);
        }
        callStack_.push_back(pc + kInstBytes);
        break;
      case OpClass::Return:
        di.taken = true;
        if (callStack_.empty()) {
            di.nextPc = prog_.entry();
        } else {
            di.nextPc = callStack_.back();
            callStack_.pop_back();
        }
        break;
      case OpClass::Load:
      case OpClass::Store:
        di.memAddr = evalMemAddr(si);
        break;
      default:
        break;
    }

    if (si.dst != 0)
        lastWriter_[si.dst % 32] = di.seq;

    pc_ = di.nextPc;
    buffer_.push_back(di);
}

DynInst
Oracle::wrongPath(Addr raw_pc, std::uint64_t salt) const
{
    const Addr pc = prog_.clampPc(raw_pc);
    const StaticInst& si = prog_.at(pc);
    const std::uint64_t h = mix64(pc ^ mix64(salt ^ seed_));

    DynInst di;
    di.pc = pc;
    di.si = &si;
    di.nextPc = pc + kInstBytes;
    di.wrongPath = true;

    switch (si.op) {
      case OpClass::CondBranch:
        di.taken = h & 1;
        if (di.taken && si.target != kInvalidAddr)
            di.nextPc = si.target;
        else
            di.taken = di.taken && si.target != kInvalidAddr;
        break;
      case OpClass::Jump:
      case OpClass::Call:
        di.taken = true;
        di.nextPc = si.target != kInvalidAddr ? si.target
                                              : pc + kInstBytes;
        break;
      case OpClass::IndirectJump:
      case OpClass::IndirectCall: {
        di.taken = true;
        const prog::IndirectBehavior& b =
            prog_.indirectBehavior(si.behaviorId);
        if (b.targets.empty())
            di.nextPc = pc + kInstBytes;
        else
            di.nextPc = b.targets[h % b.targets.size()];
        break;
      }
      case OpClass::Return:
        di.taken = true;
        di.nextPc = prog_.clampPc(prog_.base() + (h % (prog_.size() *
                                                       kInstBytes)));
        break;
      case OpClass::Load:
      case OpClass::Store:
        if (si.memStreamId != prog::kNoMemStream) {
            const prog::MemStream& m = prog_.memStream(si.memStreamId);
            di.memAddr =
                m.base + (h % m.windowBytes & ~std::uint64_t{7});
        } else {
            di.memAddr = 0x7000'0000;
        }
        break;
      default:
        break;
    }
    return di;
}

void
saveDynInst(warp::StateWriter& w, const DynInst& di,
            const prog::Program& prog)
{
    w.u64(di.seq);
    w.u64(di.pc);
    // Pointer -> index into the static image; ~0 encodes null.
    const std::uint64_t idx =
        di.si == nullptr
            ? ~std::uint64_t{0}
            : static_cast<std::uint64_t>(di.si - &prog.at(prog.base()));
    w.u64(idx);
    w.boolean(di.taken);
    w.u64(di.nextPc);
    w.u64(di.memAddr);
    w.u64(di.dep1);
    w.u64(di.dep2);
    w.boolean(di.wrongPath);
}

void
loadDynInst(warp::StateReader& r, DynInst& di, const prog::Program& prog)
{
    di.seq = r.u64();
    di.pc = r.u64();
    const std::uint64_t idx = r.u64();
    if (idx == ~std::uint64_t{0}) {
        di.si = nullptr;
    } else {
        if (idx >= prog.size())
            r.fail("static-instruction index exceeds the program image");
        di.si = &prog.at(prog.pcOf(idx));
    }
    di.taken = r.boolean();
    di.nextPc = r.u64();
    di.memAddr = r.u64();
    di.dep1 = r.u64();
    di.dep2 = r.u64();
    di.wrongPath = r.boolean();
}

void
Oracle::saveState(warp::StateWriter& w) const
{
    w.u64(pc_);
    w.u64(genSeq_);
    w.vecU(callStack_);
    w.u64(ghist_);
    warp::saveVec(w, branchState_,
                  [](warp::StateWriter& ww, const BranchState& b) {
                      ww.u64(b.occurrence);
                      ww.u32(b.loopCount);
                      ww.u32(b.curTrip);
                      ww.u64(b.localHist);
                  });
    warp::saveVec(w, indirectState_,
                  [](warp::StateWriter& ww, const IndirectState& s) {
                      ww.u64(s.occurrence);
                  });
    warp::saveVec(w, memState_,
                  [](warp::StateWriter& ww, const MemState& s) {
                      ww.u64(s.occurrence);
                      ww.u64(s.last);
                  });
    for (SeqNum s : lastWriter_)
        w.u64(s);
    w.u64(buffer_.size());
    for (const DynInst& di : buffer_)
        saveDynInst(w, di, prog_);
    w.u64(bufferBase_);
    w.u64(cursor_);
}

void
Oracle::restoreState(warp::StateReader& r)
{
    pc_ = r.u64();
    genSeq_ = r.u64();
    callStack_ = r.vecU<Addr>();
    ghist_ = r.u64();
    warp::loadVec(r, branchState_,
                  [](warp::StateReader& rr, BranchState& b) {
                      b.occurrence = rr.u64();
                      b.loopCount = rr.u32();
                      b.curTrip = rr.u32();
                      b.localHist = rr.u64();
                  });
    warp::loadVec(r, indirectState_,
                  [](warp::StateReader& rr, IndirectState& s) {
                      s.occurrence = rr.u64();
                  });
    warp::loadVec(r, memState_,
                  [](warp::StateReader& rr, MemState& s) {
                      s.occurrence = rr.u64();
                      s.last = rr.u64();
                  });
    for (SeqNum& s : lastWriter_)
        s = r.u64();
    buffer_.clear();
    const std::uint64_t buffered = r.u64();
    if (buffered > (1u << 20))
        r.fail("oracle buffer implausibly large");
    for (std::uint64_t i = 0; i < buffered; ++i) {
        DynInst di;
        loadDynInst(r, di, prog_);
        buffer_.push_back(di);
    }
    bufferBase_ = r.u64();
    cursor_ = r.u64();
    if (cursor_ > buffer_.size())
        r.fail("oracle cursor beyond its buffer");
    if (cf_ != nullptr)
        cf_->seek(cfConsumed());
}

} // namespace cobra::exec
