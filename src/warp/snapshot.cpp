#include "warp/snapshot.hpp"

#include <fstream>

#include "sim/simulator.hpp"
#include "warp/state_io.hpp"

namespace cobra::warp {

Snapshot
captureSnapshot(sim::Simulator& s)
{
    Snapshot snap;
    snap.fingerprint = s.stateFingerprint();
    snap.cycle = s.cycles();
    snap.insts = s.backend().committedInsts();
    StateWriter w;
    s.saveState(w);
    snap.payload = w.take();
    return snap;
}

void
restoreSnapshot(sim::Simulator& s, const Snapshot& snap)
{
    if (snap.fingerprint != s.stateFingerprint()) {
        throw guard::CheckpointError(
            "header", "configuration fingerprint mismatch: this "
                      "checkpoint was produced by a differently-"
                      "configured simulator (program image, predictor "
                      "composition, or core geometry differ)");
    }
    StateReader r(snap.payload);
    s.restoreState(r);
    r.expectEnd();
}

std::vector<std::uint8_t>
encodeSnapshot(const Snapshot& snap)
{
    StateWriter w;
    w.u32(Snapshot::kMagic);
    w.u32(Snapshot::kVersion);
    w.u64(snap.fingerprint);
    w.u64(snap.cycle);
    w.u64(snap.insts);
    w.u64(fnv1a(snap.payload.data(), snap.payload.size()));
    w.u64(snap.payload.size());
    std::vector<std::uint8_t> out = w.take();
    out.insert(out.end(), snap.payload.begin(), snap.payload.end());
    return out;
}

Snapshot
decodeSnapshot(const std::vector<std::uint8_t>& bytes)
{
    StateReader r(bytes);
    if (r.remaining() < 48)
        r.fail("snapshot header truncated");
    if (r.u32() != Snapshot::kMagic)
        r.fail("bad magic: not a warp snapshot");
    const std::uint32_t version = r.u32();
    if (version != Snapshot::kVersion) {
        r.fail("unsupported snapshot version " + std::to_string(version) +
               " (this build reads version " +
               std::to_string(Snapshot::kVersion) + ")");
    }
    Snapshot snap;
    snap.fingerprint = r.u64();
    snap.cycle = r.u64();
    snap.insts = r.u64();
    const std::uint64_t checksum = r.u64();
    const std::uint64_t payloadSize = r.u64();
    if (payloadSize != r.remaining())
        r.fail("payload size disagrees with the container");
    snap.payload.assign(bytes.end() - static_cast<std::ptrdiff_t>(
                                          payloadSize),
                        bytes.end());
    if (fnv1a(snap.payload.data(), snap.payload.size()) != checksum)
        r.fail("payload checksum mismatch: the snapshot is corrupted");
    return snap;
}

void
writeSnapshotFile(const Snapshot& snap, const std::string& path)
{
    const std::vector<std::uint8_t> bytes = encodeSnapshot(snap);
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os)
        throw guard::CheckpointError(path, "cannot open for writing");
    os.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
    if (!os)
        throw guard::CheckpointError(path, "write failed");
}

Snapshot
readSnapshotFile(const std::string& path)
{
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    if (!is)
        throw guard::CheckpointError(path, "cannot open for reading");
    const std::streamsize size = is.tellg();
    is.seekg(0);
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
    is.read(reinterpret_cast<char*>(bytes.data()), size);
    if (!is)
        throw guard::CheckpointError(path, "read failed");
    try {
        return decodeSnapshot(bytes);
    } catch (const guard::CheckpointError& e) {
        throw guard::CheckpointError(path, e.what());
    }
}

} // namespace cobra::warp

