#include "warp/fastforward.hpp"

#include <array>

#include "guard/errors.hpp"
#include "sim/simulator.hpp"

namespace cobra::warp {

namespace {

using prog::OpClass;

bpu::CfiType
cfiTypeOf(OpClass op)
{
    switch (op) {
      case OpClass::CondBranch:
        return bpu::CfiType::Br;
      case OpClass::Jump:
      case OpClass::Call:
        return bpu::CfiType::Jal;
      case OpClass::IndirectJump:
      case OpClass::IndirectCall:
      case OpClass::Return:
        return bpu::CfiType::Jalr;
      default:
        return bpu::CfiType::None;
    }
}

/** Warm one fetch packet through the real BPU protocol. */
std::uint64_t
warmPacket(sim::Simulator& s, std::uint64_t budget,
           const FastForwardOptions& opts)
{
    bpu::BranchPredictorUnit& bpu = s.bpu();
    exec::Oracle& oracle = s.oracle();
    core::ReturnAddressStack& ras = s.frontend().ras();
    core::CacheHierarchy& caches = s.caches();
    const unsigned fw = s.config().frontend.fetchWidth;

    // The update drain runs a few entries per cycle; a packet per
    // iteration with one tick each keeps pace, but guard anyway.
    unsigned ticks = 0;
    while (!bpu.canFinalize()) {
        bpu.tick();
        if (++ticks > 4096) {
            throw guard::CheckpointError(
                "fast-forward", "history file failed to drain");
        }
    }

    const Addr pc = oracle.nextPc();
    const unsigned startSlot =
        static_cast<unsigned>((pc >> 2) & (fw - 1));
    const std::uint32_t rasPtrSnap = ras.pointer();

    bpu::QueryState q;
    bpu.beginQuery(q, pc, fw);
    bpu::PredictionBundle bundle = bpu.stage(q, 1);
    bpu.captureHistory(q);

    // ---- Consume the packet's architectural instructions --------------
    struct Got
    {
        exec::DynInst di;
        unsigned slot;
        /** RAS top as seen by a Return in this slot (pre-pop). */
        Addr rasTop = kInvalidAddr;
    };
    std::array<Got, bpu::kMaxFetchWidth> got;
    unsigned nGot = 0;
    for (unsigned slot = startSlot; slot < fw && nGot < budget; ++slot) {
        const exec::DynInst di = oracle.consume();
        got[nGot] = Got{di, slot, kInvalidAddr};

        const OpClass op = di.si->op;
        if (opts.warmCaches) {
            caches.fetchAccess(di.pc);
            if (op == OpClass::Load)
                caches.loadAccess(di.memAddr);
            else if (op == OpClass::Store)
                caches.storeAccess(di.memAddr);
        }

        if (op == OpClass::Call || op == OpClass::IndirectCall) {
            ras.push(di.pc + kInstBytes);
        } else if (op == OpClass::Return) {
            got[nGot].rasTop = ras.top();
            ras.pop();
        }
        ++nGot;

        if (di.isCf() && di.taken)
            break;
    }
    if (nGot == 0) {
        // Cannot happen (the slot loop always runs once under a
        // non-zero budget), but never return 0 to the caller's loop.
        throw guard::CheckpointError("fast-forward",
                                     "empty warm packet");
    }

    // Push the packet's *architectural* conditional outcomes into the
    // speculative global history: perfect-history warming, the bits a
    // mispredict-free detailed run would carry.
    for (unsigned i = 0; i < nGot; ++i) {
        if (got[i].di.si->op == OpClass::CondBranch)
            bpu.pushSpecGhist(got[i].di.taken);
    }

    // Evaluate the remaining stages so every component provides.
    for (unsigned d = 2; d <= bpu.maxLatency(); ++d)
        bundle = bpu.stage(q, d);

    bpu::FinalizeArgs args;
    args.finalPred = &bundle;
    for (unsigned i = 0; i < nGot; ++i) {
        if (got[i].di.si->op == OpClass::CondBranch)
            args.brMask[got[i].slot] = true;
    }
    args.fetchedSlots = got[nGot - 1].slot + 1;
    args.firstSeq = got[0].di.seq;
    args.rasPtr = rasPtrSnap;
    const bpu::FtqPos pos = bpu.finalize(q, args);

    // ---- Resolve every CFI with its architectural outcome -------------
    // The mispredict flag mirrors the detailed frontend/backend: the
    // flag drives component training that plain updates never reach
    // (TAGE-style allocate-on-mispredict) plus the path/local-history
    // repair, so warming without it leaves the composition
    // systematically under-trained and biases sampled MPKI upward.
    // Direct jumps/calls and taken direct branches get their targets
    // from pre-decode, so only the direction (cond) or the predicted
    // target (indirect, return) can miss.
    for (unsigned i = 0; i < nGot; ++i) {
        const exec::DynInst& di = got[i].di;
        const OpClass op = di.si->op;
        const bpu::CfiType type = cfiTypeOf(op);
        if (type == bpu::CfiType::None)
            continue;
        const unsigned slot = got[i].slot;
        bool misp = false;
        if (op == OpClass::CondBranch) {
            const bool predTaken =
                bundle.slots[slot].valid && bundle.slots[slot].taken;
            misp = predTaken != di.taken;
        } else if (op == OpClass::IndirectJump ||
                   op == OpClass::IndirectCall) {
            const Addr predNext = bundle.slots[slot].targetValid
                                      ? bundle.slots[slot].target
                                      : di.pc + kInstBytes;
            misp = predNext != di.nextPc;
        } else if (op == OpClass::Return) {
            const Addr predNext =
                got[i].rasTop != kInvalidAddr ? got[i].rasTop
                : bundle.slots[slot].targetValid
                    ? bundle.slots[slot].target
                    : di.pc + kInstBytes;
            misp = predNext != di.nextPc;
        }
        bpu::BranchResolution res;
        res.ftq = pos;
        res.slot = slot;
        res.type = type;
        res.taken = di.taken;
        res.target = di.nextPc;
        res.isCall = op == OpClass::Call || op == OpClass::IndirectCall;
        res.isRet = op == OpClass::Return;
        res.mispredicted = misp;
        bpu.resolve(res);
        if (misp) {
            // The detailed pipeline refetches the younger slots as a
            // fresh packet; their history bits are already pushed, so
            // just stop training this (now truncated) entry.
            break;
        }
    }

    bpu.commitPacket(pos);
    bpu.tick();
    oracle.retireUpTo(got[nGot - 1].di.seq);
    return nGot;
}

} // namespace

FastForwardResult
fastForward(sim::Simulator& s, std::uint64_t insts,
            const FastForwardOptions& opts)
{
    FastForwardResult out;
    exec::Oracle& oracle = s.oracle();

    while (out.insts < insts) {
        if (opts.warmPredictor) {
            out.insts += warmPacket(s, insts - out.insts, opts);
            ++out.packets;
            continue;
        }
        const exec::DynInst di = oracle.consume();
        ++out.insts;
        if (opts.warmCaches) {
            core::CacheHierarchy& caches = s.caches();
            caches.fetchAccess(di.pc);
            if (di.si->op == prog::OpClass::Load)
                caches.loadAccess(di.memAddr);
            else if (di.si->op == prog::OpClass::Store)
                caches.storeAccess(di.memAddr);
        }
        oracle.retireUpTo(di.seq);
    }

    // ---- Quiesce: drain predictor updates, re-point fetch -------------
    bpu::BranchPredictorUnit& bpu = s.bpu();
    unsigned ticks = 0;
    while (bpu.historyFile().size() > 0 || bpu.walkBusy()) {
        bpu.tick();
        if (++ticks > 1u << 20) {
            throw guard::CheckpointError(
                "fast-forward",
                "predictor state failed to quiesce after the "
                "architectural advance");
        }
    }
    s.frontend().resetFetchToOracle();
    return out;
}

} // namespace cobra::warp
