#include "warp/warp.hpp"

#include <cmath>
#include <filesystem>
#include <memory>
#include <sstream>

#include "guard/errors.hpp"
#include "warp/snapshot.hpp"

namespace cobra::warp {

void
WarpConfig::validate() const
{
    auto require = [](bool ok, const char* field, const char* detail) {
        if (!ok)
            throw guard::ConfigError(field, detail);
    };
    require(intervals >= 1, "warp.intervals", "must be >= 1");
    require(warmupCycles >= 1, "warp.warmupCycles",
            "must be >= 1 (the restored pipeline is empty and needs "
            "to refill)");
}

WarpEstimate
runWarp(const prog::Program& program,
        const std::function<bpu::Topology()>& topology,
        const sim::SimConfig& cfg, const WarpConfig& wcfg)
{
    wcfg.validate();
    if (cfg.maxInsts < wcfg.intervals) {
        throw guard::ConfigError(
            "warp.intervals", "exceeds the instruction budget: fewer "
                              "instructions than intervals");
    }

    // Interval runs drive their own measurement; per-point CobraScope
    // output would only interleave K partial documents.
    sim::SimConfig runCfg = cfg;
    runCfg.output = sim::OutputConfig{};

    const unsigned K = wcfg.intervals;
    const std::uint64_t perInterval = cfg.maxInsts / K;

    WarpEstimate est;
    est.intervals.resize(K);
    for (unsigned i = 0; i < K; ++i) {
        WarpInterval& iv = est.intervals[i];
        iv.startInst = cfg.warmupInsts + i * perInterval;
        iv.lengthInsts = i + 1 == K
                             ? cfg.maxInsts - (K - 1) * perInterval
                             : perInterval;
        iv.sampledInsts = wcfg.sampleInsts == 0
                              ? iv.lengthInsts
                              : std::min(wcfg.sampleInsts,
                                         iv.lengthInsts);
        // Sample the interval's midpoint, not its start: predictors
        // keep learning over the run, so MPKI drifts downward within
        // an interval and a start-of-interval sample extrapolated to
        // the whole interval overestimates it. Centering the sample
        // cancels the first-order trend (SMARTS samples mid-interval
        // for the same reason).
        iv.sampleStart =
            iv.startInst + (iv.lengthInsts - iv.sampledInsts) / 2;
    }

    // ---- Warm-state cache probe (all-or-nothing) ----------------------
    std::vector<std::shared_ptr<Snapshot>> snaps(K);
    bool warm = false;
    if (wcfg.snapshotLookup) {
        // A throwaway simulator supplies the fingerprint every cached
        // snapshot must match; a mismatched or misplaced entry is a
        // miss (regenerate), never trusted.
        const std::uint64_t fp =
            sim::Simulator(program, topology(), runCfg)
                .stateFingerprint();
        warm = true;
        for (unsigned i = 0; i < K && warm; ++i) {
            auto snap = std::make_shared<Snapshot>();
            warm = wcfg.snapshotLookup(i, *snap) &&
                   snap->fingerprint == fp &&
                   snap->insts == est.intervals[i].sampleStart;
            snaps[i] = std::move(snap);
        }
    }
    if (warm)
        est.warmHits = K;

    // ---- Serial fast-forward pass: one checkpoint per interval --------
    if (!warm) {
        sim::Simulator master(program, topology(), runCfg);
        std::uint64_t ffAt = 0;
        for (unsigned i = 0; i < K; ++i) {
            const std::uint64_t start = est.intervals[i].sampleStart;
            fastForward(master, start - ffAt, wcfg.ff);
            ffAt = start;
            snaps[i] = std::make_shared<Snapshot>(
                captureSnapshot(master));
            // The backend commits nothing during functional
            // fast-forward, so captureSnapshot records insts == 0
            // here; stamp the snapshot with its architectural
            // placement so the warm-probe position check above can
            // match it on a later run.
            snaps[i]->insts = start;
            if (wcfg.snapshotStore)
                wcfg.snapshotStore(i, *snaps[i]);
        }
        est.ffInsts = ffAt;
        if (!wcfg.checkpointDir.empty()) {
            std::filesystem::create_directories(wcfg.checkpointDir);
            for (unsigned i = 0; i < K; ++i) {
                writeSnapshotFile(*snaps[i],
                                  wcfg.checkpointDir + "/interval-" +
                                      std::to_string(i) + ".warp");
            }
        }
    }

    // ---- Time-parallel interval sims on the sweep pool -----------------
    sim::SweepEngine engine(wcfg.jobs);
    engine.setProgress(wcfg.progress);
    std::vector<std::uint64_t> totalCycles(K, 0);
    for (unsigned i = 0; i < K; ++i) {
        sim::SweepPoint p;
        p.label = "warp/interval-" + std::to_string(i);
        p.topology = topology;
        p.program = &program;
        p.cfg = runCfg;
        const std::shared_ptr<Snapshot> snap = snaps[i];
        const std::uint64_t warmup = wcfg.warmupCycles;
        const std::uint64_t sample = est.intervals[i].sampledInsts;
        std::uint64_t* cyclesOut = &totalCycles[i];
        // The last interval's registry (whose checkpoint carried the
        // stats of the whole warmed prefix) doubles as the stats tree
        // of the warp point; render it while the simulator is alive.
        std::string* groupsOut =
            i + 1 == K ? &est.groupsJson : nullptr;
        p.execute = [snap, warmup, sample, cyclesOut,
                     groupsOut](sim::Simulator& s) {
            restoreSnapshot(s, *snap);
            const sim::SimResult r = s.runInterval(warmup, sample);
            *cyclesOut = s.cycles();
            if (groupsOut != nullptr) {
                std::ostringstream os;
                s.statRegistry().writeJson(os, 6);
                *groupsOut = os.str();
            }
            return r;
        };
        engine.add(std::move(p));
    }
    const std::vector<sim::SweepOutcome> outcomes = engine.run();

    // ---- Stitch ---------------------------------------------------------
    std::vector<double> ipcs, mpkis;
    double estCycles = 0.0;
    double mpkiWeighted = 0.0;
    for (unsigned i = 0; i < K; ++i) {
        const sim::SweepOutcome& o = outcomes[i];
        if (!o.ok()) {
            throw guard::SimError("warp interval " + std::to_string(i) +
                                  " failed: " + o.error);
        }
        if (o.result.deadlocked) {
            throw guard::SimError("warp interval " + std::to_string(i) +
                                  " deadlocked:\n" +
                                  o.result.diagnostics);
        }
        if (o.result.insts == 0 || o.result.cycles == 0) {
            throw guard::SimError("warp interval " + std::to_string(i) +
                                  " measured no instructions (warmup "
                                  "consumed the cycle budget?)");
        }
        WarpInterval& iv = est.intervals[i];
        iv.result = o.result;
        iv.ipc = o.result.ipc();
        iv.mpki = o.result.mpki();
        ipcs.push_back(iv.ipc);
        mpkis.push_back(iv.mpki);
        estCycles += static_cast<double>(iv.lengthInsts) / iv.ipc;
        mpkiWeighted += static_cast<double>(iv.lengthInsts) * iv.mpki;

        // Extrapolate the sample's event counts to the interval it
        // represents; guard counters stay raw sums (they describe the
        // simulated work actually performed, not the estimate).
        const double scale = static_cast<double>(iv.lengthInsts) /
                             static_cast<double>(o.result.insts);
        auto scaled = [scale](std::uint64_t n) {
            return static_cast<std::uint64_t>(
                std::llround(static_cast<double>(n) * scale));
        };
        est.estimate.condBranches += scaled(o.result.condBranches);
        est.estimate.cfis += scaled(o.result.cfis);
        est.estimate.condMispredicts +=
            scaled(o.result.condMispredicts);
        est.estimate.jalrMispredicts +=
            scaled(o.result.jalrMispredicts);
        est.estimate.sfbConversions += scaled(o.result.sfbConversions);
        est.estimate.ghistReplays += scaled(o.result.ghistReplays);
        est.estimate.packetsKilled += scaled(o.result.packetsKilled);
        est.estimate.faultsInjected += o.result.faultsInjected;
        est.estimate.updatesDropped += o.result.updatesDropped;
        est.estimate.auditChecks += o.result.auditChecks;

        est.sampled.cycles += o.result.cycles;
        est.sampled.insts += o.result.insts;
        est.sampled.condBranches += o.result.condBranches;
        est.sampled.cfis += o.result.cfis;
        est.sampled.condMispredicts += o.result.condMispredicts;
        est.sampled.jalrMispredicts += o.result.jalrMispredicts;
        est.sampled.sfbConversions += o.result.sfbConversions;
        est.sampled.ghistReplays += o.result.ghistReplays;
        est.sampled.packetsKilled += o.result.packetsKilled;
        est.detailedInsts += o.result.insts;
        est.detailedCycles += totalCycles[i];
        est.warmupCycles += totalCycles[i] - o.result.cycles;
    }

    est.ipc = static_cast<double>(cfg.maxInsts) / estCycles;
    est.mpki = mpkiWeighted / static_cast<double>(cfg.maxInsts);
    est.estimate.insts = cfg.maxInsts;
    est.estimate.cycles =
        static_cast<std::uint64_t>(std::llround(estCycles));

    // 95% CI half-widths from the interval-to-interval variance of
    // the per-interval rates (systematic sampling, K samples).
    auto ci95 = [K](const std::vector<double>& xs) {
        if (K < 2)
            return 0.0;
        double mean = 0.0;
        for (double x : xs)
            mean += x;
        mean /= static_cast<double>(xs.size());
        double var = 0.0;
        for (double x : xs)
            var += (x - mean) * (x - mean);
        var /= static_cast<double>(xs.size() - 1);
        return 1.96 * std::sqrt(var / static_cast<double>(xs.size()));
    };
    est.ipcCi95 = ci95(ipcs);
    est.mpkiCi95 = ci95(mpkis);
    est.ipcRelErr = est.ipc > 0.0 ? est.ipcCi95 / est.ipc : 0.0;
    return est;
}

std::string
statsGroupsJson(const WarpEstimate& est)
{
    auto ppm = [](double rel) {
        return static_cast<std::uint64_t>(
            std::llround(std::max(0.0, rel) * 1e6));
    };
    const double mpkiRel =
        est.mpki > 0.0 ? est.mpkiCi95 / est.mpki : 0.0;
    std::ostringstream os;
    os << "{\n        \"warp\": {\n          \"counters\": {\n"
       << "            \"intervals\": " << est.intervals.size()
       << ",\n"
       << "            \"ff_insts\": " << est.ffInsts << ",\n"
       << "            \"warm_hits\": " << est.warmHits << ",\n"
       << "            \"detailed_insts\": " << est.detailedInsts
       << ",\n"
       << "            \"detailed_cycles\": " << est.detailedCycles
       << ",\n"
       << "            \"warmup_cycles\": " << est.warmupCycles
       << ",\n"
       << "            \"measured_cycles\": "
       << est.detailedCycles - est.warmupCycles << ",\n"
       << "            \"estimated_cycles\": " << est.estimate.cycles
       << ",\n"
       << "            \"ipc_ci95_ppm\": " << ppm(est.ipcRelErr)
       << ",\n"
       << "            \"mpki_ci95_ppm\": " << ppm(mpkiRel) << "\n"
       << "          }\n        },\n";
    if (est.groupsJson.size() > 2 && est.groupsJson[0] == '{') {
        // Splice the registry tree's members after our warp group:
        // StatRegistry::writeJson always opens with "{\n".
        os << est.groupsJson.substr(2);
    } else {
        os << "      }";
    }
    return os.str();
}

} // namespace cobra::warp
