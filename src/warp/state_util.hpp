/**
 * @file
 * Serialization helpers for the recurring state shapes of the model:
 * saturating counters (and vectors of them), history registers, and
 * RNG cores. Only *state* is serialized, never configuration — the
 * restoring object is always constructed from the same SimConfig (the
 * checkpoint fingerprint guarantees it), so widths/lengths act as
 * implicit schema checks: a size mismatch means the archive does not
 * belong to this configuration and raises guard::CheckpointError.
 */

#ifndef COBRA_WARP_STATE_UTIL_HPP
#define COBRA_WARP_STATE_UTIL_HPP

#include <vector>

#include "common/folded_history.hpp"
#include "common/random.hpp"
#include "common/sat_counter.hpp"
#include "warp/state_io.hpp"

namespace cobra::warp {

inline void
saveSat(StateWriter& w, const SatCounter& c)
{
    w.u32(c.value());
}

inline void
loadSat(StateReader& r, SatCounter& c)
{
    const std::uint32_t v = r.u32();
    if (v > c.maxValue())
        r.fail("saturating-counter value exceeds its range");
    c.set(v);
}

inline void
saveSigned(StateWriter& w, const SignedSatCounter& c)
{
    w.i64(c.value());
}

inline void
loadSigned(StateReader& r, SignedSatCounter& c)
{
    const std::int64_t v = r.i64();
    if (v < c.minValue() || v > c.maxValue())
        r.fail("signed-counter value exceeds its range");
    c.set(static_cast<int>(v));
}

template <typename SaveOne, typename T>
void
saveVec(StateWriter& w, const std::vector<T>& v, SaveOne&& one)
{
    w.u64(v.size());
    for (const T& x : v)
        one(w, x);
}

template <typename LoadOne, typename T>
void
loadVec(StateReader& r, std::vector<T>& v, LoadOne&& one)
{
    if (r.u64() != v.size())
        r.fail("table size does not match this configuration");
    for (T& x : v)
        one(r, x);
}

inline void
saveSatVec(StateWriter& w, const std::vector<SatCounter>& v)
{
    saveVec(w, v, [](StateWriter& ww, const SatCounter& c) {
        saveSat(ww, c);
    });
}

inline void
loadSatVec(StateReader& r, std::vector<SatCounter>& v)
{
    loadVec(r, v, [](StateReader& rr, SatCounter& c) { loadSat(rr, c); });
}

inline void
saveSignedVec(StateWriter& w, const std::vector<SignedSatCounter>& v)
{
    saveVec(w, v, [](StateWriter& ww, const SignedSatCounter& c) {
        saveSigned(ww, c);
    });
}

inline void
loadSignedVec(StateReader& r, std::vector<SignedSatCounter>& v)
{
    loadVec(r, v, [](StateReader& rr, SignedSatCounter& c) {
        loadSigned(rr, c);
    });
}

inline void
saveHist(StateWriter& w, const HistoryRegister& h)
{
    w.vecU(h.snapshot());
}

inline void
loadHist(StateReader& r, HistoryRegister& h)
{
    const std::vector<std::uint64_t> words = r.vecU<std::uint64_t>();
    if (words.size() != h.snapshot().size())
        r.fail("history-register width does not match");
    h.restore(words);
}

/**
 * Full history-register serialization: length plus words. For
 * registers whose *length* is part of the state (history-file entries
 * and query snapshots start at length 1 and are later assigned a
 * full-width register), unlike the fixed-width providers above.
 */
inline void
saveHistFull(StateWriter& w, const HistoryRegister& h)
{
    w.u32(h.length());
    w.vecU(h.snapshot());
}

inline void
loadHistFull(StateReader& r, HistoryRegister& h)
{
    const std::uint32_t len = r.u32();
    if (len < 1 || len > 4096)
        r.fail("history-register length out of range");
    HistoryRegister fresh(len);
    const std::vector<std::uint64_t> words = r.vecU<std::uint64_t>();
    if (words.size() != fresh.snapshot().size())
        r.fail("history-register word count does not match its length");
    fresh.restore(words);
    h = fresh;
}

inline void
saveRng(StateWriter& w, const Rng& rng)
{
    std::uint64_t s[4];
    rng.state(s);
    for (std::uint64_t x : s)
        w.u64(x);
}

inline void
loadRng(StateReader& r, Rng& rng)
{
    std::uint64_t s[4];
    for (auto& x : s)
        x = r.u64();
    rng.setState(s);
}

} // namespace cobra::warp

#endif // COBRA_WARP_STATE_UTIL_HPP
