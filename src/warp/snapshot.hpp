/**
 * @file
 * Warp checkpoints: a Snapshot packages one Simulator's complete
 * mid-flight state (the StateWriter byte stream) behind a header that
 * makes restores safe — a magic/version pair, the configuration
 * fingerprint of the producing simulator, and an FNV-1a payload
 * checksum. Restoring verifies all three before a single payload byte
 * is decoded, so a corrupted, truncated, or mismatched checkpoint is
 * a structured guard::CheckpointError, never undefined behaviour.
 *
 * Snapshots round-trip through memory (the warp driver hands them
 * between intervals) and through files (`cobra_sim --checkpoint-dir`),
 * with an identical validation path for both.
 */

#ifndef COBRA_WARP_SNAPSHOT_HPP
#define COBRA_WARP_SNAPSHOT_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace cobra::sim {
class Simulator;
} // namespace cobra::sim

namespace cobra::warp {

/** One checkpoint: validated header metadata plus the state payload. */
struct Snapshot
{
    /** Configuration fingerprint of the producing simulator. */
    std::uint64_t fingerprint = 0;
    /** Simulation cycle at capture. */
    std::uint64_t cycle = 0;
    /** Committed instructions at capture. */
    std::uint64_t insts = 0;
    /** The serialized simulator state (StateWriter stream). */
    std::vector<std::uint8_t> payload;

    static constexpr std::uint32_t kMagic = 0x43574152u; ///< "RAWC".
    static constexpr std::uint32_t kVersion = 1;
};

/** Capture the full state of @p s into a validated Snapshot. */
Snapshot captureSnapshot(sim::Simulator& s);

/**
 * Restore @p snap into @p s. The simulator must be configured
 * identically to the producer (checked via the fingerprint); the
 * payload must be intact (checked structurally during decode).
 * Throws guard::CheckpointError on any mismatch.
 */
void restoreSnapshot(sim::Simulator& s, const Snapshot& snap);

/**
 * Serialize @p snap (header + checksummed payload) to one flat byte
 * buffer — the on-disk format.
 */
std::vector<std::uint8_t> encodeSnapshot(const Snapshot& snap);

/**
 * Decode and validate a byte buffer produced by encodeSnapshot.
 * Throws guard::CheckpointError naming the failing header field on
 * bad magic, unsupported version, truncation, or checksum mismatch.
 */
Snapshot decodeSnapshot(const std::vector<std::uint8_t>& bytes);

/** Write @p snap to @p path; throws guard::CheckpointError on I/O. */
void writeSnapshotFile(const Snapshot& snap, const std::string& path);

/** Read and validate a snapshot file written by writeSnapshotFile. */
Snapshot readSnapshotFile(const std::string& path);

} // namespace cobra::warp

#endif // COBRA_WARP_SNAPSHOT_HPP
