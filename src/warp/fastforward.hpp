/**
 * @file
 * Warp functional fast-forward: advances a Simulator's architectural
 * program state (the oracle's execution cursor) without running the
 * detailed pipeline, optionally warming the predictors, caches, and
 * RAS in a cheap update-only mode along the way.
 *
 * Warming drives the real BPU query/finalize/resolve/commit protocol
 * one fetch packet at a time with perfect (architectural) outcomes,
 * so every composed component trains through exactly the code path it
 * trains through in detailed simulation — just without the cycle
 * accounting around it. After a fast-forward the pipeline is empty
 * and fetch is re-pointed at the oracle, so the simulator is in a
 * quiesced state suitable for checkpointing and interval simulation.
 */

#ifndef COBRA_WARP_FASTFORWARD_HPP
#define COBRA_WARP_FASTFORWARD_HPP

#include <cstdint>

namespace cobra::sim {
class Simulator;
} // namespace cobra::sim

namespace cobra::warp {

struct FastForwardOptions
{
    /** Train predictors (and the RAS) with architectural outcomes. */
    bool warmPredictor = true;
    /** Touch the cache hierarchy with fetch/load/store accesses. */
    bool warmCaches = true;
};

struct FastForwardResult
{
    std::uint64_t insts = 0;   ///< Instructions advanced.
    std::uint64_t packets = 0; ///< Fetch packets warmed (0 when off).
};

/**
 * Advance @p s by @p insts architectural instructions, then quiesce:
 * drain pending predictor updates and reset fetch to the oracle's
 * PC. Throws guard::CheckpointError if the predictor fails to drain
 * (which would leave un-checkpointable in-flight state).
 */
FastForwardResult fastForward(sim::Simulator& s, std::uint64_t insts,
                              const FastForwardOptions& opts = {});

} // namespace cobra::warp

#endif // COBRA_WARP_FASTFORWARD_HPP
