/**
 * @file
 * Warp state archives: the byte-level serialization layer behind
 * checkpointed snapshots. A StateWriter appends tagged sections of
 * little-endian primitives to a growable byte buffer; a StateReader
 * walks the same layout back, verifying every section tag and bounds-
 * checking every read. Readers never trust the input: any structural
 * mismatch (truncation, tag skew, trailing bytes) raises
 * guard::CheckpointError instead of reading garbage.
 *
 * The layout is deliberately dumb — a flat stream with inline section
 * markers — because save and restore are always the same code walking
 * the same fields in the same order. Sections exist to turn "the
 * stream drifted" into a named, structured error at the first
 * divergent unit rather than a silent state corruption.
 */

#ifndef COBRA_WARP_STATE_IO_HPP
#define COBRA_WARP_STATE_IO_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "guard/errors.hpp"

namespace cobra::warp {

/** FNV-1a 64-bit over a byte range; the archive payload checksum. */
std::uint64_t fnv1a(const std::uint8_t* data, std::size_t size);

/** Serializes primitives and tagged sections into a byte buffer. */
class StateWriter
{
  public:
    StateWriter() { buf_.reserve(4096); }

    void
    u8(std::uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void
    i64(std::int64_t v)
    {
        u64(static_cast<std::uint64_t>(v));
    }

    void
    boolean(bool v)
    {
        u8(v ? 1 : 0);
    }

    void
    f64(double v)
    {
        std::uint64_t bits;
        static_assert(sizeof(bits) == sizeof(v));
        __builtin_memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    str(std::string_view s)
    {
        u64(s.size());
        buf_.insert(buf_.end(), s.begin(), s.end());
    }

    /** Length-prefixed vector of any unsigned-integral element. */
    template <typename T>
    void
    vecU(const std::vector<T>& v)
    {
        static_assert(std::is_unsigned_v<T>);
        u64(v.size());
        for (const T& x : v)
            u64(static_cast<std::uint64_t>(x));
    }

    /**
     * Open a named section. Purely a marker: the tag (and a sentinel)
     * is embedded in the stream so the reader can verify it is
     * decoding the unit it thinks it is.
     */
    void
    section(std::string_view tag)
    {
        u32(kSectionSentinel);
        str(tag);
    }

    const std::vector<std::uint8_t>& bytes() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }
    std::size_t size() const { return buf_.size(); }

    static constexpr std::uint32_t kSectionSentinel = 0x5EC7109Fu;

  private:
    std::vector<std::uint8_t> buf_;
};

/**
 * Walks a StateWriter-produced byte stream back. Every accessor
 * bounds-checks; section() verifies the embedded tag. All failures
 * raise guard::CheckpointError naming the section being decoded.
 */
class StateReader
{
  public:
    StateReader(const std::uint8_t* data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    explicit StateReader(const std::vector<std::uint8_t>& bytes)
        : StateReader(bytes.data(), bytes.size())
    {
    }

    std::uint8_t
    u8()
    {
        need(1);
        return data_[pos_++];
    }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
        return v;
    }

    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
        return v;
    }

    std::int64_t
    i64()
    {
        return static_cast<std::int64_t>(u64());
    }

    bool
    boolean()
    {
        const std::uint8_t v = u8();
        if (v > 1)
            fail("boolean byte out of range");
        return v != 0;
    }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v;
        __builtin_memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string
    str()
    {
        const std::uint64_t n = u64();
        if (n > size_ - pos_)
            fail("string length exceeds archive");
        std::string s(reinterpret_cast<const char*>(data_ + pos_),
                      static_cast<std::size_t>(n));
        pos_ += static_cast<std::size_t>(n);
        return s;
    }

    /** Counterpart of StateWriter::vecU. */
    template <typename T>
    std::vector<T>
    vecU()
    {
        static_assert(std::is_unsigned_v<T>);
        const std::uint64_t n = u64();
        if (n > (size_ - pos_) / 8)
            fail("vector length exceeds archive");
        std::vector<T> v;
        v.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n; ++i) {
            const std::uint64_t x = u64();
            if (static_cast<std::uint64_t>(static_cast<T>(x)) != x)
                fail("vector element out of range for target type");
            v.push_back(static_cast<T>(x));
        }
        return v;
    }

    /** Verify the next unit is the section named @p tag. */
    void
    section(std::string_view tag)
    {
        if (u32() != StateWriter::kSectionSentinel)
            fail("section marker missing before '" + std::string(tag) +
                 "'");
        where_ = tag;
        const std::string got = str();
        if (got != tag)
            fail("expected section '" + std::string(tag) + "', found '" +
                 got + "'");
    }

    std::size_t remaining() const { return size_ - pos_; }

    /** Restores must consume the archive exactly. */
    void
    expectEnd() const
    {
        if (pos_ != size_) {
            throw guard::CheckpointError(
                std::string(where_),
                std::to_string(size_ - pos_) +
                    " trailing byte(s) after the last section");
        }
    }

    [[noreturn]] void
    fail(const std::string& detail) const
    {
        throw guard::CheckpointError(
            where_.empty() ? "archive" : std::string(where_), detail);
    }

  private:
    void
    need(std::size_t n) const
    {
        if (n > size_ - pos_)
            fail("archive truncated");
    }

    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
    std::string_view where_ = "";
};

} // namespace cobra::warp

#endif // COBRA_WARP_STATE_IO_HPP
