#include "warp/state_io.hpp"

namespace cobra::warp {

std::uint64_t
fnv1a(const std::uint8_t* data, std::size_t size)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace cobra::warp
