/**
 * @file
 * Warp driver: time-parallel sampled simulation of one long run. The
 * run's instruction stream is cut into K intervals; a serial
 * functional fast-forward pass (with predictor/cache warming) lays a
 * checkpoint at each interval boundary, and the intervals are then
 * simulated concurrently on the SweepEngine pool — each interval
 * restores its checkpoint, re-warms the detailed pipeline for a
 * configurable cycle prefix (discarded), and measures a bounded
 * instruction sample. The per-interval samples are stitched into a
 * whole-run IPC/MPKI estimate with confidence intervals from the
 * interval-to-interval variance (SMARTS-style systematic sampling).
 *
 * Two independent sources of speedup compose:
 *  - sampling: only `sampleInsts` of each interval run in detail, the
 *    rest advance at functional fast-forward speed (the dominant win
 *    on any host);
 *  - time-parallelism: intervals run concurrently on the worker pool
 *    (wins on multi-core hosts).
 */

#ifndef COBRA_WARP_WARP_HPP
#define COBRA_WARP_WARP_HPP

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/sweep.hpp"
#include "warp/fastforward.hpp"
#include "warp/snapshot.hpp"

namespace cobra::warp {

/** Warp-mode parameters. */
struct WarpConfig
{
    /** Number of intervals the measured region is cut into. */
    unsigned intervals = 4;
    /**
     * Detailed warmup prefix per interval (cycles, discarded): the
     * restored checkpoint has warm predictors/caches but an empty
     * pipeline, so the first cycles re-fill fetch and the ROB.
     */
    std::uint64_t warmupCycles = 10'000;
    /**
     * Instructions measured in detail per interval; 0 measures the
     * whole interval (no sampling — time-parallelism only).
     */
    std::uint64_t sampleInsts = 0;
    /** Worker pool size; 0 = SweepEngine::defaultJobs(). */
    unsigned jobs = 0;
    /** Report interval completion to stderr. */
    bool progress = false;
    /** Persist per-interval checkpoints here when non-empty. */
    std::string checkpointDir;
    /** Fast-forward warming mode. */
    FastForwardOptions ff{};

    // ---- Warm-state cache hooks (cobra_serve) -------------------------
    //
    // When snapshotLookup is set it is tried for every interval
    // before the fast-forward pass; only if ALL intervals produce a
    // snapshot that matches this run's configuration fingerprint and
    // interval placement is the pass skipped (a warm hit — repeat
    // evaluations of a (workload, config) pair skip fast-forward
    // entirely and are bit-identical to a cold run, since the
    // intervals restore the exact bytes the cold run checkpointed).
    // Any mismatched or missing entry falls back to a full cold pass,
    // and snapshotStore is then offered every freshly-captured
    // snapshot. Lookup implementations must validate their storage
    // (guard::CheckpointError on corruption -> evict and return
    // false, never return a snapshot they cannot vouch for).

    /** Fill @p out for interval @p idx; false = cache miss. */
    std::function<bool(unsigned idx, Snapshot& out)> snapshotLookup;
    /** Offer interval @p idx's freshly-captured snapshot. */
    std::function<void(unsigned idx, const Snapshot& snap)>
        snapshotStore;

    /** Throws guard::ConfigError on invalid settings. */
    void validate() const;
};

/** One interval's sample. */
struct WarpInterval
{
    /** Absolute instruction index of the interval start. */
    std::uint64_t startInst = 0;
    /** Instructions the interval spans in the full run. */
    std::uint64_t lengthInsts = 0;
    /** Instructions measured in detail (<= lengthInsts). */
    std::uint64_t sampledInsts = 0;
    /**
     * Absolute instruction index where the detailed sample begins:
     * the interval midpoint, so a within-interval learning trend
     * cancels to first order instead of biasing the extrapolation.
     */
    std::uint64_t sampleStart = 0;
    sim::SimResult result;
    double ipc = 0.0;
    double mpki = 0.0;
};

/** The stitched whole-run estimate. */
struct WarpEstimate
{
    /** Field-wise sum of the interval samples (raw, unscaled). */
    sim::SimResult sampled;
    /**
     * Whole-run estimate expressed as a SimResult: each interval's
     * sampled counts scaled by lengthInsts / sampled insts, summed
     * (so estimate.ipc() and estimate.mpki() reproduce the stitched
     * ipc/mpki fields up to rounding). This is the result the CLI and
     * the JSON writers report for a warp point.
     */
    sim::SimResult estimate;
    /** Whole-run IPC estimate (length-weighted harmonic stitch). */
    double ipc = 0.0;
    /** Whole-run branch-MPKI estimate (length-weighted). */
    double mpki = 0.0;
    /** 95% confidence half-widths from interval variance. */
    double ipcCi95 = 0.0;
    double mpkiCi95 = 0.0;
    /** Relative half-width (ipcCi95 / ipc), the reported error bar. */
    double ipcRelErr = 0.0;

    /** Instructions advanced functionally (fast-forward); 0 when the
     *  interval checkpoints all came from the warm-state cache. */
    std::uint64_t ffInsts = 0;
    /** Interval checkpoints served by the warm-state cache (0 on a
     *  cold run, intervals.size() on a full warm hit — partial hits
     *  do not exist: one miss forces a full cold pass). */
    unsigned warmHits = 0;
    /** Cycles simulated in detail across all intervals. */
    std::uint64_t detailedCycles = 0;
    /** Of which warmup (discarded) cycles. */
    std::uint64_t warmupCycles = 0;
    /** Instructions measured in detail across all intervals. */
    std::uint64_t detailedInsts = 0;

    /**
     * CobraScope stat-group hierarchy (JSON object) of the last
     * interval's simulator, whose checkpointed stats span the whole
     * warmed run; counters mix fast-forward warming with that
     * interval's detailed sample, so the authoritative whole-run
     * numbers are `estimate` and the `warp` group, not this tree.
     */
    std::string groupsJson;

    std::vector<WarpInterval> intervals;
};

/**
 * The stats-document group tree for a warp point: `groupsJson` with a
 * synthetic "warp" group spliced in, recording the fast-forward /
 * detailed cycle split and the estimated error (CI half-widths in
 * parts-per-million, since stat counters are unsigned integers).
 * Validates against tools/stats_schema.json like any registry render.
 */
std::string statsGroupsJson(const WarpEstimate& est);

/**
 * Run @p cfg's workload in warp mode. @p topology is invoked once per
 * interval plus once for the fast-forward pass (topologies are
 * single-use). Throws guard::SimError if any interval fails
 * (deadlock, checkpoint mismatch), guard::ConfigError on an invalid
 * @p wcfg.
 */
WarpEstimate runWarp(const prog::Program& program,
                     const std::function<bpu::Topology()>& topology,
                     const sim::SimConfig& cfg, const WarpConfig& wcfg);

} // namespace cobra::warp

#endif // COBRA_WARP_WARP_HPP
