/**
 * @file
 * Serialization helpers for the COBRA predictor-interface value types
 * (prediction bundles, metadata, per-slot masks). Shared by the query
 * state, the history file, and the frontend packet pipeline so every
 * layer encodes these shapes identically.
 */

#ifndef COBRA_WARP_STATE_BPU_HPP
#define COBRA_WARP_STATE_BPU_HPP

#include "bpu/pred_types.hpp"
#include "warp/state_io.hpp"

namespace cobra::warp {

inline void
saveSlot(StateWriter& w, const bpu::PredictionSlot& s)
{
    w.boolean(s.valid);
    w.boolean(s.taken);
    w.boolean(s.targetValid);
    w.u64(s.target);
    w.u8(static_cast<std::uint8_t>(s.type));
    w.boolean(s.isCall);
    w.boolean(s.isRet);
}

inline void
loadSlot(StateReader& r, bpu::PredictionSlot& s)
{
    s.valid = r.boolean();
    s.taken = r.boolean();
    s.targetValid = r.boolean();
    s.target = r.u64();
    const std::uint8_t type = r.u8();
    if (type > static_cast<std::uint8_t>(bpu::CfiType::Jalr))
        r.fail("CFI type byte out of range");
    s.type = static_cast<bpu::CfiType>(type);
    s.isCall = r.boolean();
    s.isRet = r.boolean();
}

inline void
saveBundle(StateWriter& w, const bpu::PredictionBundle& b)
{
    w.u32(b.width);
    for (const auto& s : b.slots)
        saveSlot(w, s);
}

inline void
loadBundle(StateReader& r, bpu::PredictionBundle& b)
{
    const std::uint32_t width = r.u32();
    if (width < 1 || width > bpu::kMaxFetchWidth)
        r.fail("bundle width out of range");
    b.width = width;
    for (auto& s : b.slots)
        loadSlot(r, s);
}

inline void
saveMeta(StateWriter& w, const bpu::Metadata& m)
{
    for (std::uint64_t word : m.w)
        w.u64(word);
}

inline void
loadMeta(StateReader& r, bpu::Metadata& m)
{
    for (std::uint64_t& word : m.w)
        word = r.u64();
}

inline void
saveMetas(StateWriter& w, const bpu::MetadataBundle& metas)
{
    w.u32(static_cast<std::uint32_t>(metas.size()));
    for (const auto& m : metas)
        saveMeta(w, m);
}

inline void
loadMetas(StateReader& r, bpu::MetadataBundle& metas)
{
    const std::uint32_t n = r.u32();
    if (n > 64)
        r.fail("metadata bundle count out of range");
    metas.clear();
    for (std::uint32_t i = 0; i < n; ++i) {
        bpu::Metadata m;
        loadMeta(r, m);
        metas.push_back(m);
    }
}

inline void
saveBoolArray(StateWriter& w,
              const std::array<bool, bpu::kMaxFetchWidth>& a)
{
    for (bool b : a)
        w.boolean(b);
}

inline void
loadBoolArray(StateReader& r, std::array<bool, bpu::kMaxFetchWidth>& a)
{
    for (bool& b : a)
        b = r.boolean();
}

inline void
saveU8Array(StateWriter& w,
            const std::array<std::uint8_t, bpu::kMaxFetchWidth>& a)
{
    for (std::uint8_t b : a)
        w.u8(b);
}

inline void
loadU8Array(StateReader& r,
            std::array<std::uint8_t, bpu::kMaxFetchWidth>& a)
{
    for (std::uint8_t& b : a)
        b = r.u8();
}

} // namespace cobra::warp

#endif // COBRA_WARP_STATE_BPU_HPP
