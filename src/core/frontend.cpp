#include "core/frontend.hpp"

#include <cassert>

#include "warp/state_bpu.hpp"
#include "warp/state_util.hpp"

namespace cobra::core {

using prog::OpClass;

Frontend::Frontend(const prog::Program& program, exec::Oracle& oracle,
                   bpu::BranchPredictorUnit& bpu, CacheHierarchy& caches,
                   const FrontendConfig& cfg)
    : prog_(program), oracle_(oracle), bpu_(bpu), caches_(caches),
      cfg_(cfg), finalStage_(bpu.maxLatency()),
      ras_(cfg.rasEntries), nextFetchPc_(program.entry())
{
    assert(isPow2(cfg.fetchWidth));
}

Addr
Frontend::fallthrough(Addr pc) const
{
    const Addr blockBytes = cfg_.fetchWidth * kInstBytes;
    return (pc & ~(blockBytes - 1)) + blockBytes;
}

Frontend::Packet*
Frontend::allocPacket()
{
    if (freePackets_.empty()) {
        packetPool_.push_back(std::make_unique<Packet>());
        freePackets_.push_back(packetPool_.back().get());
    }
    Packet* p = freePackets_.back();
    freePackets_.pop_back();
    p->stage = 0;
    p->pushedBits.clear();
    return p;
}

void
Frontend::releaseRange(std::size_t first, std::size_t last)
{
    for (std::size_t i = first; i < last; ++i)
        freePackets_.push_back(pipe_[i]);
    pipe_.erase(pipe_.begin() + static_cast<std::ptrdiff_t>(first),
                pipe_.begin() + static_cast<std::ptrdiff_t>(last));
}

Addr
Frontend::earlyNextPc(const Packet& p, const bpu::PredictionBundle& b) const
{
    for (unsigned s = p.startSlot; s < cfg_.fetchWidth; ++s) {
        const auto& sl = b.slots[s];
        if (sl.valid && sl.taken && sl.type != bpu::CfiType::None) {
            // A taken prediction can only redirect early when the
            // target is known (BTB-provided).
            if (sl.targetValid)
                return sl.target;
            break;
        }
    }
    return fallthrough(p.pc);
}

void
Frontend::pushGhistBits(Packet& p, const bpu::PredictionBundle& b)
{
    p.pushedBits.clear();
    for (unsigned s = p.startSlot; s < cfg_.fetchWidth; ++s) {
        const auto& sl = b.slots[s];
        if (sl.type == bpu::CfiType::Br && sl.valid) {
            const bool bit = sl.taken;
            p.pushedBits.push_back(bit);
            bpu_.pushSpecGhist(bit);
            if (bit)
                break; // Fetch ends at a predicted-taken branch.
        } else if (sl.valid && sl.taken &&
                   sl.type != bpu::CfiType::None) {
            break; // Predicted-taken jump ends the packet.
        }
    }
    p.ghistAfterPush = bpu_.specGhist();
}

void
Frontend::killYoungerThan(std::size_t idx)
{
    const std::size_t killed = pipe_.size() - idx - 1;
    packetsKilled_ += killed;
    releaseRange(idx + 1, pipe_.size());
}

bool
Frontend::tryFinalize(Packet& p, Cycle now)
{
    (void)now;
    if (!bpu_.canFinalize()) {
        ++stallHistfile_;
        return false;
    }
    if (buffer_.size() + cfg_.fetchWidth > cfg_.fetchBufferInsts) {
        ++stallFetchbuffer_;
        return false;
    }

    const bpu::PredictionBundle bundle = bpu_.stage(p.query, finalStage_);
    const std::uint32_t rasPtrSnap = ras_.pointer();

    // ---- Pre-decode walk (the F3 checker of Fig. 6) -------------------
    struct Rec
    {
        Addr pc;
        unsigned slot;
        bool predTaken = false;
        Addr predNextPc;
        bool isCfi = false;
    };
    SmallVector<Rec, bpu::kMaxFetchWidth> recs;
    std::array<bool, bpu::kMaxFetchWidth> brMask{};
    Addr nextPc = fallthrough(p.pc);
    Addr pcCursor = p.pc;
    bool endedTaken = false;

    for (unsigned s = p.startSlot; s < cfg_.fetchWidth;
         ++s, pcCursor += kInstBytes) {
        const prog::StaticInst& si = prog_.at(prog_.clampPc(pcCursor));
        Rec rec{pcCursor, s, false, pcCursor + kInstBytes, false};

        if (si.op == OpClass::CondBranch) {
            brMask[s] = true;
            const bool predTaken =
                bundle.slots[s].valid && bundle.slots[s].taken;
            rec.predTaken = predTaken;
            if (predTaken) {
                // Pre-decode provides the static target, correcting
                // any stale BTB target for direct branches.
                rec.isCfi = true;
                rec.predNextPc = si.target;
                nextPc = si.target;
                recs.push_back(rec);
                endedTaken = true;
                break;
            }
            recs.push_back(rec);
            if (cfg_.serializeFetch) {
                // Ablation (§I): at most one branch per fetch packet.
                nextPc = pcCursor + kInstBytes;
                break;
            }
            continue;
        }

        if (si.op == OpClass::Jump || si.op == OpClass::Call) {
            rec.predTaken = true;
            rec.isCfi = true;
            rec.predNextPc = si.target;
            nextPc = si.target;
            if (si.op == OpClass::Call)
                ras_.push(pcCursor + kInstBytes);
            recs.push_back(rec);
            endedTaken = true;
            break;
        }

        if (si.op == OpClass::IndirectJump ||
            si.op == OpClass::IndirectCall) {
            rec.predTaken = true;
            rec.isCfi = true;
            // Indirect targets come from the predictor (BTB); with no
            // predicted target we guess fallthrough and eat the
            // mispredict at execute.
            rec.predNextPc = bundle.slots[s].targetValid
                                 ? bundle.slots[s].target
                                 : pcCursor + kInstBytes;
            nextPc = rec.predNextPc;
            if (si.op == OpClass::IndirectCall)
                ras_.push(pcCursor + kInstBytes);
            recs.push_back(rec);
            endedTaken = true;
            break;
        }

        if (si.op == OpClass::Return) {
            rec.predTaken = true;
            rec.isCfi = true;
            const Addr rasTop = ras_.top();
            if (rasTop != kInvalidAddr)
                rec.predNextPc = rasTop;
            else if (bundle.slots[s].targetValid)
                rec.predNextPc = bundle.slots[s].target;
            else
                rec.predNextPc = pcCursor + kInstBytes;
            ras_.pop();
            nextPc = rec.predNextPc;
            recs.push_back(rec);
            endedTaken = true;
            break;
        }

        recs.push_back(rec);
    }

    const unsigned fetchedSlots =
        recs.empty() ? 0 : recs.back().slot + 1;

    // ---- Global history correction at F3 (§VI-B policy) ---------------
    SmallVector<bool, bpu::kMaxFetchWidth> trueBits;
    for (const Rec& r : recs) {
        if (brMask[r.slot]) {
            trueBits.push_back(r.predTaken);
            if (r.predTaken)
                break;
        }
    }
    bool replay = false;
    if (cfg_.ghistMode == bpu::GhistRepairMode::RepairAndReplay &&
        trueBits != p.pushedBits) {
        bpu_.restoreSpecGhist(p.query.ghist());
        for (bool bit : trueBits)
            bpu_.pushSpecGhist(bit);
        replay = true;
        ++ghistReplays_;
    }

    // ---- Allocate the history file entry + fire (paper §IV-B1) -------
    bpu::FinalizeArgs args;
    args.finalPred = &bundle;
    args.brMask = brMask;
    args.fetchedSlots = fetchedSlots;
    args.rasPtr = rasPtrSnap;

    // ---- Source instructions: oracle (correct path) or synth ---------
    SmallVector<FetchedInst, bpu::kMaxFetchWidth> fetched;
    for (const Rec& r : recs) {
        FetchedInst fi;
        fi.slot = r.slot;
        fi.predTaken = r.predTaken;
        fi.predNextPc = r.predNextPc;
        fi.isPacketCfi = r.isCfi;
        fi.dynId = nextDynId_++;

        if (!onOraclePath_ && oracle_.peek(0).pc == r.pc) {
            // Wrong-path fetch reconverged with the architectural
            // stream (e.g., past an SFB shadow): re-sync.
            onOraclePath_ = true;
            ++oracleResyncs_;
        }
        if (onOraclePath_ && oracle_.peek(0).pc == r.pc) {
            fi.di = oracle_.consume();
        } else {
            onOraclePath_ = false;
            fi.di = oracle_.wrongPath(
                r.pc, p.wrongPathSalt + 0x9e37 * r.slot);
        }
        fetched.push_back(fi);
    }
    if (args.firstSeq == kInvalidSeq && !fetched.empty())
        args.firstSeq = fetched.front().di.seq;

    // Divergence check for the *next* fetch: prediction must continue
    // exactly where the architectural stream goes.
    if (onOraclePath_ && oracle_.peek(0).pc != nextPc)
        onOraclePath_ = false;

    const bpu::FtqPos ftq = bpu_.finalize(p.query, args);
    for (auto& fi : fetched) {
        fi.ftq = ftq;
        buffer_.push_back(fi);
    }
    instsFetched_ += fetched.size();
    ++packetsFinalized_;
    if (endedTaken)
        ++packetsTaken_;
    if (tracer_ != nullptr) {
        tracer_->record(scope::TraceKind::Predict, p.pc,
                        static_cast<std::uint32_t>(ftq),
                        scope::kNoComponent, 0, endedTaken);
        if (replay) {
            tracer_->record(scope::TraceKind::Replay, p.pc,
                            static_cast<std::uint32_t>(ftq));
        }
    }

    // Serialized fetch (§I ablation): a packet containing a branch
    // blocks younger fetch until its prediction is final — model by
    // refetching everything fetched in its shadow.
    bool serializeSteer = false;
    if (cfg_.serializeFetch) {
        for (unsigned s = 0; s < cfg_.fetchWidth; ++s)
            serializeSteer |= brMask[s];
    }

    // Late redirect: the finalized next-PC differs from what younger
    // in-flight packets assumed, or a ghist replay was forced.
    const bool steer = nextPc != p.predNextPc || replay || serializeSteer;
    p.predNextPc = nextPc;
    if (steer)
        nextFetchPc_ = nextPc;
    p.stage = finalStage_ + 1; // Mark done (caller erases).
    finalizeSteer_ = steer;
    return true;
}

void
Frontend::tick(Cycle now)
{
    bool blocked = false;

    for (std::size_t i = 0; i < pipe_.size(); ++i) {
        Packet& p = *pipe_[i];
        if (now < p.stallUntil) {
            blocked = true;
            break;
        }

        if (p.stage >= finalStage_) {
            // Stalled at the final stage from a previous cycle.
            if (tryFinalize(p, now)) {
                const bool steer = finalizeSteer_;
                releaseRange(i, i + 1);
                if (steer) {
                    // Kill everything younger (refetch from nextPc).
                    packetsKilled_ += pipe_.size() - i;
                    releaseRange(i, pipe_.size());
                }
                --i;
                continue;
            }
            blocked = true;
            break;
        }

        ++p.stage;
        const bpu::PredictionBundle b = bpu_.stage(p.query, p.stage);

        if (p.stage == 1) {
            // End of Fetch-1: capture histories before this packet's
            // own speculative push (paper §III-B).
            bpu_.captureHistory(p.query);
            pushGhistBits(p, b);
            p.predNextPc = earlyNextPc(p, b);
            if (i + 1 == pipe_.size())
                nextFetchPc_ = p.predNextPc;
            continue;
        }

        if (p.stage == finalStage_) {
            if (tryFinalize(p, now)) {
                const bool steer = finalizeSteer_;
                releaseRange(i, i + 1);
                if (steer) {
                    packetsKilled_ += pipe_.size() - i;
                    releaseRange(i, pipe_.size());
                }
                --i;
                continue;
            }
            blocked = true;
            break;
        }

        // Intermediate stage: possible re-steer (composer redirection
        // logic, §IV-B).
        const Addr newNext = earlyNextPc(p, b);
        if (newNext != p.predNextPc) {
            killYoungerThan(i);
            p.predNextPc = newNext;
            nextFetchPc_ = newNext;
            // Re-push this packet's history bits against the updated
            // bundle (the stage-d prediction supersedes stage-1's).
            bpu_.restoreSpecGhist(p.query.ghist());
            pushGhistBits(p, b);
            ++resteers_;
        }
    }

    // ---- F0: select a PC and open a new query -------------------------
    if (!blocked && pipe_.size() < finalStage_) {
        if (!pipe_.empty())
            nextFetchPc_ = pipe_.back()->predNextPc;
        Packet& p = *allocPacket();
        p.pc = nextFetchPc_;
        p.startSlot = slotOf(p.pc);
        p.predNextPc = fallthrough(p.pc);
        p.wrongPathSalt = mix64(++wrongPathEpoch_);
        const Cycle icLat = caches_.fetchAccess(p.pc);
        p.stallUntil = now + (icLat > 0 ? icLat - 1 : 0);
        if (icLat > 1)
            icacheStallCycles_ += icLat - 1;
        bpu_.beginQuery(p.query, p.pc, cfg_.fetchWidth);
        nextFetchPc_ = p.predNextPc;
        pipe_.push_back(&p);
    } else {
        ++fetchBubbles_;
    }
}

void
Frontend::redirect(Addr pc, bool on_oracle_path, std::uint32_t ras_ptr,
                   Cycle now)
{
    packetsKilled_ += pipe_.size();
    releaseRange(0, pipe_.size());
    buffer_.clear();
    ras_.restore(ras_ptr);
    nextFetchPc_ = pc;
    onOraclePath_ = on_oracle_path;
    ++redirectEvents_;

    redirects_.push_back(RedirectRecord{pc, now});
    if (redirects_.size() > kRedirectLog)
        redirects_.pop_front();
}

std::vector<Frontend::PacketView>
Frontend::inFlightPackets() const
{
    std::vector<PacketView> out;
    out.reserve(pipe_.size());
    for (const Packet* p : pipe_)
        out.push_back(PacketView{p->pc, p->stage, p->stallUntil});
    return out;
}

void
saveFetchedInst(warp::StateWriter& w, const FetchedInst& fi,
                const prog::Program& prog)
{
    exec::saveDynInst(w, fi.di, prog);
    w.u64(fi.ftq);
    w.u32(fi.slot);
    w.boolean(fi.predTaken);
    w.u64(fi.predNextPc);
    w.boolean(fi.isPacketCfi);
    w.u64(fi.dynId);
}

void
loadFetchedInst(warp::StateReader& r, FetchedInst& fi,
                const prog::Program& prog)
{
    exec::loadDynInst(r, fi.di, prog);
    fi.ftq = r.u64();
    fi.slot = r.u32();
    fi.predTaken = r.boolean();
    fi.predNextPc = r.u64();
    fi.isPacketCfi = r.boolean();
    fi.dynId = r.u64();
}

void
Frontend::saveState(warp::StateWriter& w) const
{
    w.u64(nextFetchPc_);
    w.boolean(finalizeSteer_);
    w.boolean(onOraclePath_);
    w.u64(wrongPathEpoch_);
    w.u64(nextDynId_);
    ras_.saveState(w);

    w.u64(redirects_.size());
    for (const RedirectRecord& rr : redirects_) {
        w.u64(rr.pc);
        w.u64(rr.cycle);
    }

    w.u64(buffer_.size());
    for (const FetchedInst& fi : buffer_)
        saveFetchedInst(w, fi, prog_);

    w.u64(pipe_.size());
    for (const Packet* p : pipe_) {
        w.u64(p->pc);
        w.u32(p->startSlot);
        w.u32(p->stage);
        w.u64(p->stallUntil);
        p->query.saveState(w);
        w.u64(p->predNextPc);
        w.u32(static_cast<std::uint32_t>(p->pushedBits.size()));
        for (std::size_t i = 0; i < p->pushedBits.size(); ++i)
            w.boolean(p->pushedBits[i]);
        warp::saveHistFull(w, p->ghistAfterPush);
        w.u64(p->wrongPathSalt);
    }
}

void
Frontend::restoreState(warp::StateReader& r)
{
    nextFetchPc_ = r.u64();
    finalizeSteer_ = r.boolean();
    onOraclePath_ = r.boolean();
    wrongPathEpoch_ = r.u64();
    nextDynId_ = r.u64();
    ras_.restoreState(r);

    redirects_.clear();
    const std::uint64_t nRedirects = r.u64();
    if (nRedirects > kRedirectLog)
        r.fail("redirect log exceeds its bound");
    for (std::uint64_t i = 0; i < nRedirects; ++i) {
        RedirectRecord rr;
        rr.pc = r.u64();
        rr.cycle = r.u64();
        redirects_.push_back(rr);
    }

    buffer_.clear();
    const std::uint64_t nBuffered = r.u64();
    if (nBuffered > cfg_.fetchBufferInsts + cfg_.fetchWidth)
        r.fail("fetch buffer exceeds its capacity");
    for (std::uint64_t i = 0; i < nBuffered; ++i) {
        FetchedInst fi;
        loadFetchedInst(r, fi, prog_);
        buffer_.push_back(fi);
    }

    releaseRange(0, pipe_.size());
    const std::uint64_t nPackets = r.u64();
    // The pipeline holds at most one packet per predictor stage.
    if (nPackets > finalStage_ + 1)
        r.fail("fetch pipeline deeper than the predictor");
    for (std::uint64_t i = 0; i < nPackets; ++i) {
        Packet* p = allocPacket();
        p->pc = r.u64();
        p->startSlot = r.u32();
        p->stage = r.u32();
        p->stallUntil = r.u64();
        p->query.restoreState(r);
        p->predNextPc = r.u64();
        p->pushedBits.clear();
        const std::uint32_t nBits = r.u32();
        if (nBits > bpu::kMaxFetchWidth)
            r.fail("packet pushed-bit count out of range");
        for (std::uint32_t b = 0; b < nBits; ++b)
            p->pushedBits.push_back(r.boolean());
        warp::loadHistFull(r, p->ghistAfterPush);
        p->wrongPathSalt = r.u64();
        pipe_.push_back(p);
    }
}

void
Frontend::resetFetchToOracle()
{
    releaseRange(0, pipe_.size());
    buffer_.clear();
    redirects_.clear();
    nextFetchPc_ = oracle_.nextPc();
    finalizeSteer_ = false;
    onOraclePath_ = true;
}

} // namespace cobra::core
