#include "core/backend.hpp"

#include <cassert>

namespace cobra::core {

using prog::OpClass;

Backend::Backend(exec::Oracle& oracle, bpu::BranchPredictorUnit& bpu,
                 Frontend& frontend, CacheHierarchy& caches,
                 const BackendConfig& cfg)
    : oracle_(oracle), bpu_(bpu), frontend_(frontend), caches_(caches),
      cfg_(cfg)
{
}

Backend::RobHeadView
Backend::robHead() const
{
    RobHeadView v;
    if (rob_.empty())
        return v;
    const RobEntry& e = rob_.front();
    v.valid = true;
    v.pc = e.fi.di.pc;
    v.seq = e.fi.di.seq;
    v.ftq = e.fi.ftq;
    v.wrongPath = e.fi.di.wrongPath;
    switch (e.st) {
      case RobEntry::St::Waiting: v.state = "waiting"; break;
      case RobEntry::St::Issued: v.state = "issued"; break;
      case RobEntry::St::Done: v.state = "done"; break;
    }
    return v;
}

bpu::CfiType
Backend::cfiTypeOf(OpClass op)
{
    switch (op) {
      case OpClass::CondBranch:
        return bpu::CfiType::Br;
      case OpClass::Jump:
      case OpClass::Call:
        return bpu::CfiType::Jal;
      case OpClass::IndirectJump:
      case OpClass::IndirectCall:
      case OpClass::Return:
        return bpu::CfiType::Jalr;
      default:
        return bpu::CfiType::None;
    }
}

Cycle
Backend::execLatency(const exec::DynInst& di)
{
    switch (di.si->op) {
      case OpClass::IntMul:
        return 3;
      case OpClass::IntDiv:
        return 12;
      case OpClass::FpAlu:
        return 4;
      case OpClass::Load:
        return caches_.loadAccess(di.memAddr);
      case OpClass::Store:
        return caches_.storeAccess(di.memAddr);
      default:
        return 1;
    }
}

bool
Backend::depsReady(const RobEntry& e) const
{
    const auto ready = [&](SeqNum dep) {
        if (dep == kInvalidSeq)
            return true;
        auto it = inFlightSeq_.find(dep);
        return it == inFlightSeq_.end() || it->second != 0;
    };
    if (!ready(e.fi.di.dep1) || !ready(e.fi.di.dep2))
        return false;
    if (e.sfbShadow) {
        // Predicated shadow reads the SFB guard's predicate bit.
        auto it = sfbGuardDone_.find(e.sfbGuard);
        if (it != sfbGuardDone_.end() && !it->second)
            return false;
    }
    return true;
}

void
Backend::squashYoungerThan(std::size_t idx)
{
    while (rob_.size() > idx + 1) {
        RobEntry& e = rob_.back();
        if (e.st == RobEntry::St::Waiting)
            --iqCount_[static_cast<unsigned>(e.iq)];
        if (e.fi.di.si->op == OpClass::Load && ldqCount_ > 0)
            --ldqCount_;
        if (e.fi.di.si->op == OpClass::Store && stqCount_ > 0)
            --stqCount_;
        if (e.fi.di.seq != kInvalidSeq)
            inFlightSeq_.erase(e.fi.di.seq);
        if (e.sfbConverted)
            sfbGuardDone_.erase(e.fi.dynId);
        rob_.pop_back();
    }
    // Any in-dispatch SFB region referred to killed instructions.
    sfbActive_ = false;
}

bool
Backend::resolveCf(std::size_t idx, Cycle now)
{
    (void)now;
    RobEntry& e = rob_[idx];
    const exec::DynInst& di = e.fi.di;
    const OpClass op = di.si->op;
    const bpu::CfiType type = cfiTypeOf(op);

    const bool actualTaken = di.taken;
    const Addr actualNext = di.nextPc;
    bool mispredict = false;
    if (op == OpClass::CondBranch) {
        mispredict = actualTaken != e.fi.predTaken ||
                     (actualTaken && actualNext != e.fi.predNextPc);
    } else {
        mispredict = actualNext != e.fi.predNextPc;
    }

    if (e.sfbConverted) {
        // Predication: no flush, no redirect, no predictor training.
        bpu::BranchResolution res;
        res.ftq = e.fi.ftq;
        res.slot = e.fi.slot;
        res.type = type;
        res.taken = actualTaken;
        res.target = actualNext;
        res.mispredicted = false;
        res.sfbConverted = true;
        bpu_.resolve(res);
        sfbGuardDone_[e.fi.dynId] = true;
        e.wasMispredict = false;
        return false;
    }

    bpu::BranchResolution res;
    res.ftq = e.fi.ftq;
    res.slot = e.fi.slot;
    res.type = type;
    res.taken = actualTaken;
    res.target = actualTaken ? actualNext : kInvalidAddr;
    res.isCall = prog::isCall(op);
    res.isRet = op == OpClass::Return;
    res.mispredicted = mispredict;
    bpu_.resolve(res);

    e.wasMispredict = mispredict;
    if (!mispredict)
        return false;

    ++stats_.counter("resolved_mispredicts");

    // ---- Squash and redirect ------------------------------------------
    squashYoungerThan(idx);

    // Global-history repair (paper §VI-B): restore the predict-time
    // snapshot from the history file and re-push resolved outcomes.
    if (cfg_.ghistMode != bpu::GhistRepairMode::None &&
        bpu_.historyFile().contains(e.fi.ftq)) {
        const bpu::HistoryFileEntry& hfe =
            bpu_.historyFile().at(e.fi.ftq);
        bpu_.restoreSpecGhist(hfe.ghist);
        for (unsigned s = 0; s <= e.fi.slot && s < bpu::kMaxFetchWidth;
             ++s) {
            if (!hfe.brMask[s])
                continue;
            const bool bit = s == e.fi.slot &&
                             type == bpu::CfiType::Br && actualTaken;
            bpu_.pushSpecGhist(bit);
        }
    }

    // RAS repair: restore the packet's pointer snapshot, then replay
    // the resolved CFI's own stack operation.
    std::uint32_t rasPtr = 0;
    if (bpu_.historyFile().contains(e.fi.ftq))
        rasPtr = bpu_.historyFile().at(e.fi.ftq).rasPtr;
    else
        rasPtr = frontend_.ras().pointer();

    // Oracle stream: rewind past the resolved instruction when it was
    // on the architectural path.
    bool onOracle = false;
    if (di.seq != kInvalidSeq && !di.wrongPath) {
        oracle_.rewindTo(di.seq + 1);
        onOracle = true;
    }

    frontend_.redirect(actualNext, onOracle, rasPtr, now);
    if (actualTaken && res.isCall)
        frontend_.ras().push(di.pc + kInstBytes);
    if (actualTaken && res.isRet)
        frontend_.ras().pop();

    return true;
}

void
Backend::completeAndResolve(Cycle now)
{
    for (std::size_t i = 0; i < rob_.size(); ++i) {
        RobEntry& e = rob_[i];
        if (e.st != RobEntry::St::Issued || e.doneCycle > now)
            continue;
        e.st = RobEntry::St::Done;
        if (e.fi.di.seq != kInvalidSeq)
            inFlightSeq_[e.fi.di.seq] = 1;
        if (prog::isControlFlow(e.fi.di.si->op)) {
            if (resolveCf(i, now))
                break; // Everything younger is gone.
        }
    }
}

void
Backend::issue(Cycle now)
{
    unsigned ports[3] = {cfg_.aluPorts, cfg_.memPorts, cfg_.fpPorts};
    for (auto& e : rob_) {
        if (ports[0] + ports[1] + ports[2] == 0)
            break;
        if (e.st != RobEntry::St::Waiting)
            continue;
        if (now < e.earliestIssue || !depsReady(e))
            continue;
        unsigned& port = ports[static_cast<unsigned>(e.iq)];
        if (port == 0)
            continue;
        --port;
        e.st = RobEntry::St::Issued;
        e.doneCycle = now + execLatency(e.fi.di);
        --iqCount_[static_cast<unsigned>(e.iq)];
        ++stats_.counter("issued");
    }
}

void
Backend::commit(Cycle now)
{
    (void)now;
    unsigned n = 0;
    while (n < cfg_.coreWidth && !rob_.empty() &&
           rob_.front().st == RobEntry::St::Done) {
        RobEntry& e = rob_.front();
        ++committedInsts_;
        const OpClass op = e.fi.di.si->op;
        if (prog::isControlFlow(op)) {
            ++committedCfis_;
            if (op == OpClass::CondBranch && !e.sfbConverted)
                ++committedBranches_;
            if (e.wasMispredict) {
                if (op == OpClass::CondBranch)
                    ++condMispredicts_;
                else
                    ++jalrMispredicts_;
            }
        }
        if (op == OpClass::Load && ldqCount_ > 0)
            --ldqCount_;
        if (op == OpClass::Store && stqCount_ > 0)
            --stqCount_;

        // Packet-granularity commit notification to the BPU.
        if (anyCommitted_ && e.fi.ftq != lastCommittedFtq_)
            bpu_.commitPacket(lastCommittedFtq_);
        lastCommittedFtq_ = e.fi.ftq;
        anyCommitted_ = true;

        if (e.fi.di.seq != kInvalidSeq) {
            inFlightSeq_.erase(e.fi.di.seq);
            if (!e.fi.di.wrongPath)
                oracle_.retireUpTo(e.fi.di.seq);
        }
        if (e.sfbConverted)
            sfbGuardDone_.erase(e.fi.dynId);
        rob_.pop_front();
        ++n;
    }
    stats_.counter("committed") += n;
}

void
Backend::dispatch(Cycle now)
{
    unsigned n = 0;
    while (n < cfg_.coreWidth && !frontend_.bufferEmpty()) {
        if (rob_.size() >= cfg_.robEntries) {
            ++stats_.counter("stall_rob");
            break;
        }
        const FetchedInst& fi = frontend_.bufferFront();
        const OpClass op = fi.di.si->op;

        IqClass iq = IqClass::Int;
        if (op == OpClass::Load || op == OpClass::Store)
            iq = IqClass::Mem;
        else if (op == OpClass::FpAlu)
            iq = IqClass::Fp;

        const unsigned iqCap = iq == IqClass::Int  ? cfg_.intIqEntries
                               : iq == IqClass::Mem ? cfg_.memIqEntries
                                                    : cfg_.fpIqEntries;
        if (iqCount_[static_cast<unsigned>(iq)] >= iqCap) {
            ++stats_.counter("stall_iq");
            break;
        }
        if (op == OpClass::Load && ldqCount_ >= cfg_.ldqEntries) {
            ++stats_.counter("stall_ldq");
            break;
        }
        if (op == OpClass::Store && stqCount_ >= cfg_.stqEntries) {
            ++stats_.counter("stall_stq");
            break;
        }

        RobEntry e;
        e.fi = fi;
        e.iq = iq;
        e.earliestIssue = now + cfg_.decodeDelay;
        frontend_.popFront();

        // ---- SFB decode pass (paper §VI-C) ---------------------------
        if (sfbActive_) {
            if (prog::isControlFlow(op) ||
                e.fi.di.pc >= sfbActiveTarget_) {
                sfbActive_ = false;
            } else {
                e.sfbShadow = true;
                e.sfbGuard = sfbActiveGuard_;
            }
        }
        if (!sfbActive_ && cfg_.sfbEnabled && op == OpClass::CondBranch &&
            e.fi.di.si->sfbEligible && !e.fi.predTaken &&
            e.fi.di.si->target != kInvalidAddr &&
            e.fi.di.si->target > e.fi.di.pc &&
            e.fi.di.si->target - e.fi.di.pc <=
                cfg_.sfbMaxShadowBytes + kInstBytes) {
            e.sfbConverted = true;
            sfbActive_ = true;
            sfbActiveGuard_ = e.fi.dynId;
            sfbActiveTarget_ = e.fi.di.si->target;
            sfbGuardDone_[e.fi.dynId] = false;
            ++sfbConversions_;
        }

        if (e.fi.di.seq != kInvalidSeq)
            inFlightSeq_[e.fi.di.seq] = 0;
        if (op == OpClass::Load)
            ++ldqCount_;
        if (op == OpClass::Store)
            ++stqCount_;
        ++iqCount_[static_cast<unsigned>(iq)];
        rob_.push_back(std::move(e));
        ++n;
    }
    stats_.counter("dispatched") += n;
}

void
Backend::tick(Cycle now)
{
    completeAndResolve(now);
    issue(now);
    commit(now);
    dispatch(now);
}

} // namespace cobra::core
