#include "core/backend.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "warp/state_io.hpp"

namespace cobra::core {

using prog::OpClass;

namespace {

/** Sentinels for the scheduler scan accelerators. */
constexpr Cycle kNeverDone = std::numeric_limits<Cycle>::max();
constexpr std::uint64_t kNoRobId = std::numeric_limits<std::uint64_t>::max();

} // namespace

Backend::Backend(exec::Oracle& oracle, bpu::BranchPredictorUnit& bpu,
                 Frontend& frontend, CacheHierarchy& caches,
                 const BackendConfig& cfg)
    : oracle_(oracle), bpu_(bpu), frontend_(frontend), caches_(caches),
      cfg_(cfg)
{
    // Power-of-two seq scoreboard sized so two live seqs (whose spread
    // is bounded by the ROB) can never map to the same slot.
    std::size_t cap = 64;
    while (cap < 2 * static_cast<std::size_t>(cfg_.robEntries))
        cap <<= 1;
    seqTable_.assign(cap, SeqSlot{});
    seqMask_ = cap - 1;
    nextDoneCycle_ = kNeverDone;

    std::size_t robCap = 16;
    while (robCap < static_cast<std::size_t>(cfg_.robEntries))
        robCap <<= 1;
    robBuf_.resize(robCap);
    robStatus_.assign(robCap, 0);
    robMask_ = robCap - 1;
}

Backend::RobHeadView
Backend::robHead() const
{
    RobHeadView v;
    if (robCount_ == 0)
        return v;
    const RobEntry& e = robAt(0);
    v.valid = true;
    v.pc = e.fi.di.pc;
    v.seq = e.fi.di.seq;
    v.ftq = e.fi.ftq;
    v.wrongPath = e.fi.di.wrongPath;
    switch (e.st) {
      case RobEntry::St::Waiting: v.state = "waiting"; break;
      case RobEntry::St::Issued: v.state = "issued"; break;
      case RobEntry::St::Done: v.state = "done"; break;
    }
    return v;
}

bpu::CfiType
Backend::cfiTypeOf(OpClass op)
{
    switch (op) {
      case OpClass::CondBranch:
        return bpu::CfiType::Br;
      case OpClass::Jump:
      case OpClass::Call:
        return bpu::CfiType::Jal;
      case OpClass::IndirectJump:
      case OpClass::IndirectCall:
      case OpClass::Return:
        return bpu::CfiType::Jalr;
      default:
        return bpu::CfiType::None;
    }
}

Cycle
Backend::execLatency(const exec::DynInst& di)
{
    switch (di.si->op) {
      case OpClass::IntMul:
        return 3;
      case OpClass::IntDiv:
        return 12;
      case OpClass::FpAlu:
        return 4;
      case OpClass::Load:
        return caches_.loadAccess(di.memAddr);
      case OpClass::Store:
        return caches_.storeAccess(di.memAddr);
      default:
        return 1;
    }
}

bool
Backend::depsReady(const RobEntry& e) const
{
    const auto ready = [&](SeqNum dep) {
        return dep == kInvalidSeq || seqReady(dep);
    };
    if (!ready(e.fi.di.dep1) || !ready(e.fi.di.dep2))
        return false;
    if (e.sfbShadow) {
        // Predicated shadow reads the SFB guard's predicate bit.
        auto it = sfbGuardDone_.find(e.sfbGuard);
        if (it != sfbGuardDone_.end() && !it->second)
            return false;
    }
    return true;
}

void
Backend::squashYoungerThan(std::size_t idx)
{
    while (robCount_ > idx + 1) {
        RobEntry& e = robAt(robCount_ - 1);
        if (e.st == RobEntry::St::Waiting)
            --iqCount_[static_cast<unsigned>(e.iq)];
        else if (e.st == RobEntry::St::Issued)
            --issuedCount_;
        if (e.fi.di.si->op == OpClass::Load && ldqCount_ > 0)
            --ldqCount_;
        if (e.fi.di.si->op == OpClass::Store && stqCount_ > 0)
            --stqCount_;
        if (e.fi.di.seq != kInvalidSeq)
            seqErase(e.fi.di.seq);
        if (e.sfbConverted)
            sfbGuardDone_.erase(e.fi.dynId);
        robPopBack();
    }
    // Any in-dispatch SFB region referred to killed instructions.
    sfbActive_ = false;
}

bool
Backend::resolveCf(std::size_t idx, Cycle now)
{
    (void)now;
    RobEntry& e = robAt(idx);
    const exec::DynInst& di = e.fi.di;
    const OpClass op = di.si->op;
    const bpu::CfiType type = cfiTypeOf(op);

    const bool actualTaken = di.taken;
    const Addr actualNext = di.nextPc;
    bool mispredict = false;
    if (op == OpClass::CondBranch) {
        mispredict = actualTaken != e.fi.predTaken ||
                     (actualTaken && actualNext != e.fi.predNextPc);
    } else {
        mispredict = actualNext != e.fi.predNextPc;
    }

    if (e.sfbConverted) {
        // Predication: no flush, no redirect, no predictor training.
        bpu::BranchResolution res;
        res.ftq = e.fi.ftq;
        res.slot = e.fi.slot;
        res.type = type;
        res.taken = actualTaken;
        res.target = actualNext;
        res.mispredicted = false;
        res.sfbConverted = true;
        bpu_.resolve(res);
        sfbGuardDone_[e.fi.dynId] = true;
        e.wasMispredict = false;
        return false;
    }

    bpu::BranchResolution res;
    res.ftq = e.fi.ftq;
    res.slot = e.fi.slot;
    res.type = type;
    res.taken = actualTaken;
    res.target = actualTaken ? actualNext : kInvalidAddr;
    res.isCall = prog::isCall(op);
    res.isRet = op == OpClass::Return;
    res.mispredicted = mispredict;
    bpu_.resolve(res);

    e.wasMispredict = mispredict;
    if (!mispredict)
        return false;

    ++resolvedMispredicts_;

    // ---- Squash and redirect ------------------------------------------
    squashYoungerThan(idx);

    // Global-history repair (paper §VI-B): restore the predict-time
    // snapshot from the history file and re-push resolved outcomes.
    if (cfg_.ghistMode != bpu::GhistRepairMode::None &&
        bpu_.historyFile().contains(e.fi.ftq)) {
        const bpu::HistoryFileEntry& hfe =
            bpu_.historyFile().at(e.fi.ftq);
        bpu_.restoreSpecGhist(hfe.ghist);
        for (unsigned s = 0; s <= e.fi.slot && s < bpu::kMaxFetchWidth;
             ++s) {
            if (!hfe.brMask[s])
                continue;
            const bool bit = s == e.fi.slot &&
                             type == bpu::CfiType::Br && actualTaken;
            bpu_.pushSpecGhist(bit);
        }
    }

    // RAS repair: restore the packet's pointer snapshot, then replay
    // the resolved CFI's own stack operation.
    std::uint32_t rasPtr = 0;
    if (bpu_.historyFile().contains(e.fi.ftq))
        rasPtr = bpu_.historyFile().at(e.fi.ftq).rasPtr;
    else
        rasPtr = frontend_.ras().pointer();

    // Oracle stream: rewind past the resolved instruction when it was
    // on the architectural path.
    bool onOracle = false;
    if (di.seq != kInvalidSeq && !di.wrongPath) {
        oracle_.rewindTo(di.seq + 1);
        onOracle = true;
    }

    frontend_.redirect(actualNext, onOracle, rasPtr, now);
    if (actualTaken && res.isCall)
        frontend_.ras().push(di.pc + kInstBytes);
    if (actualTaken && res.isRet)
        frontend_.ras().pop();

    return true;
}

void
Backend::completeAndResolve(Cycle now)
{
    // Nothing in flight can finish before nextDoneCycle_ (a lower
    // bound, exact after an uninterrupted scan) — skip the ROB walk.
    if (issuedCount_ == 0 || now < nextDoneCycle_)
        return;
    Cycle nextDone = kNeverDone;
    for (std::size_t i = 0; i < robCount_; ++i) {
        if (statusAt(i) !=
            static_cast<std::uint8_t>(RobEntry::St::Issued))
            continue;
        RobEntry& e = robAt(i);
        if (e.doneCycle > now) {
            if (e.doneCycle < nextDone)
                nextDone = e.doneCycle;
            continue;
        }
        e.st = RobEntry::St::Done;
        statusAt(i) = static_cast<std::uint8_t>(RobEntry::St::Done);
        --issuedCount_;
        if (e.fi.di.seq != kInvalidSeq)
            seqInsert(e.fi.di.seq, 1);
        if (prog::isControlFlow(e.fi.di.si->op)) {
            if (resolveCf(i, now))
                break; // Everything younger is gone (already scanned).
        }
    }
    nextDoneCycle_ = nextDone;
}

void
Backend::issue(Cycle now)
{
    if (iqCount_[0] + iqCount_[1] + iqCount_[2] == 0)
        return;
    unsigned ports[3] = {cfg_.aluPorts, cfg_.memPorts, cfg_.fpPorts};
    // Everything older than firstWaitingId_ has left Waiting for good
    // (squashes only remove from the back), so resume the scan there.
    // robIds are strictly increasing but NOT dense (squash gaps), so
    // locate the resume point by binary search, not subtraction.
    std::size_t i = 0;
    {
        std::size_t hi = robCount_;
        while (i < hi) {
            const std::size_t mid = i + (hi - i) / 2;
            if (robAt(mid).robId < firstWaitingId_)
                i = mid + 1;
            else
                hi = mid;
        }
    }
    std::uint64_t newFirst = kNoRobId;
    unsigned portsLeft = ports[0] + ports[1] + ports[2];
    for (; i < robCount_; ++i) {
        if (portsLeft == 0) {
            if (newFirst == kNoRobId)
                newFirst = robAt(i).robId; // Unscanned tail may wait.
            break;
        }
        if (statusAt(i) !=
            static_cast<std::uint8_t>(RobEntry::St::Waiting))
            continue;
        RobEntry& e = robAt(i);
        if (now < e.earliestIssue || !depsReady(e)) {
            if (newFirst == kNoRobId)
                newFirst = e.robId;
            continue;
        }
        unsigned& port = ports[static_cast<unsigned>(e.iq)];
        if (port == 0) {
            if (newFirst == kNoRobId)
                newFirst = e.robId;
            continue;
        }
        --port;
        --portsLeft;
        e.st = RobEntry::St::Issued;
        statusAt(i) = static_cast<std::uint8_t>(RobEntry::St::Issued);
        e.doneCycle = now + execLatency(e.fi.di);
        ++issuedCount_;
        if (e.doneCycle < nextDoneCycle_)
            nextDoneCycle_ = e.doneCycle;
        --iqCount_[static_cast<unsigned>(e.iq)];
        ++issued_;
    }
    firstWaitingId_ = newFirst == kNoRobId ? robIdNext_ : newFirst;
}

void
Backend::commit(Cycle now)
{
    (void)now;
    unsigned n = 0;
    while (n < cfg_.coreWidth && robCount_ != 0 &&
           robAt(0).st == RobEntry::St::Done) {
        RobEntry& e = robAt(0);
        ++committedInsts_;
        const OpClass op = e.fi.di.si->op;
        if (prog::isControlFlow(op)) {
            ++committedCfis_;
            if (op == OpClass::CondBranch && !e.sfbConverted)
                ++committedBranches_;
            if (e.wasMispredict) {
                if (op == OpClass::CondBranch)
                    ++condMispredicts_;
                else
                    ++jalrMispredicts_;
            }
            if (tracer_ != nullptr) {
                tracer_->record(scope::TraceKind::Commit, e.fi.di.pc,
                                static_cast<std::uint32_t>(e.fi.ftq),
                                scope::kNoComponent,
                                static_cast<std::uint8_t>(e.fi.slot),
                                e.wasMispredict);
            }
        }
        if (op == OpClass::Load && ldqCount_ > 0)
            --ldqCount_;
        if (op == OpClass::Store && stqCount_ > 0)
            --stqCount_;

        // Packet-granularity commit notification to the BPU.
        if (anyCommitted_ && e.fi.ftq != lastCommittedFtq_)
            bpu_.commitPacket(lastCommittedFtq_);
        lastCommittedFtq_ = e.fi.ftq;
        anyCommitted_ = true;

        if (e.fi.di.seq != kInvalidSeq) {
            seqErase(e.fi.di.seq);
            if (!e.fi.di.wrongPath)
                oracle_.retireUpTo(e.fi.di.seq);
        }
        if (e.sfbConverted)
            sfbGuardDone_.erase(e.fi.dynId);
        robPopFront();
        ++n;
    }
    committed_ += n;
}

void
Backend::dispatch(Cycle now)
{
    unsigned n = 0;
    while (n < cfg_.coreWidth && !frontend_.bufferEmpty()) {
        if (robCount_ >= cfg_.robEntries) {
            ++stallRob_;
            break;
        }
        const FetchedInst& fi = frontend_.bufferFront();
        const OpClass op = fi.di.si->op;

        IqClass iq = IqClass::Int;
        if (op == OpClass::Load || op == OpClass::Store)
            iq = IqClass::Mem;
        else if (op == OpClass::FpAlu)
            iq = IqClass::Fp;

        const unsigned iqCap = iq == IqClass::Int  ? cfg_.intIqEntries
                               : iq == IqClass::Mem ? cfg_.memIqEntries
                                                    : cfg_.fpIqEntries;
        if (iqCount_[static_cast<unsigned>(iq)] >= iqCap) {
            ++stallIq_;
            break;
        }
        if (op == OpClass::Load && ldqCount_ >= cfg_.ldqEntries) {
            ++stallLdq_;
            break;
        }
        if (op == OpClass::Store && stqCount_ >= cfg_.stqEntries) {
            ++stallStq_;
            break;
        }

        RobEntry e;
        e.fi = fi;
        e.iq = iq;
        e.earliestIssue = now + cfg_.decodeDelay;
        e.robId = robIdNext_++;
        frontend_.popFront();

        // ---- SFB decode pass (paper §VI-C) ---------------------------
        if (sfbActive_) {
            if (prog::isControlFlow(op) ||
                e.fi.di.pc >= sfbActiveTarget_) {
                sfbActive_ = false;
            } else {
                e.sfbShadow = true;
                e.sfbGuard = sfbActiveGuard_;
            }
        }
        if (!sfbActive_ && cfg_.sfbEnabled && op == OpClass::CondBranch &&
            e.fi.di.si->sfbEligible && !e.fi.predTaken &&
            e.fi.di.si->target != kInvalidAddr &&
            e.fi.di.si->target > e.fi.di.pc &&
            e.fi.di.si->target - e.fi.di.pc <=
                cfg_.sfbMaxShadowBytes + kInstBytes) {
            e.sfbConverted = true;
            sfbActive_ = true;
            sfbActiveGuard_ = e.fi.dynId;
            sfbActiveTarget_ = e.fi.di.si->target;
            sfbGuardDone_[e.fi.dynId] = false;
            ++sfbConversions_;
        }

        if (e.fi.di.seq != kInvalidSeq)
            seqInsert(e.fi.di.seq, 0);
        if (op == OpClass::Load)
            ++ldqCount_;
        if (op == OpClass::Store)
            ++stqCount_;
        ++iqCount_[static_cast<unsigned>(iq)];
        robPushBack(std::move(e));
        ++n;
    }
    dispatched_ += n;
}

void
Backend::tick(Cycle now)
{
    completeAndResolve(now);
    issue(now);
    commit(now);
    dispatch(now);
}

void
Backend::saveState(warp::StateWriter& w) const
{
    w.u64(robCount_);
    for (std::size_t i = 0; i < robCount_; ++i) {
        const RobEntry& e = robAt(i);
        saveFetchedInst(w, e.fi, oracle_.program());
        w.u8(static_cast<std::uint8_t>(e.st));
        w.u8(static_cast<std::uint8_t>(e.iq));
        w.u64(e.earliestIssue);
        w.u64(e.doneCycle);
        w.boolean(e.wasMispredict);
        w.boolean(e.sfbConverted);
        w.boolean(e.sfbShadow);
        w.u64(e.sfbGuard);
        w.u64(e.robId);
    }

    std::uint64_t liveSeqs = 0;
    for (const SeqSlot& s : seqTable_)
        if (s.seq != kInvalidSeq)
            ++liveSeqs;
    w.u64(liveSeqs);
    for (const SeqSlot& s : seqTable_) {
        if (s.seq == kInvalidSeq)
            continue;
        w.u64(s.seq);
        w.u8(s.done);
    }

    // Sort the guard map's keys so identical states produce identical
    // bytes regardless of hash-table iteration order.
    std::vector<std::uint64_t> guards;
    guards.reserve(sfbGuardDone_.size());
    for (const auto& kv : sfbGuardDone_)
        guards.push_back(kv.first);
    std::sort(guards.begin(), guards.end());
    w.u64(guards.size());
    for (std::uint64_t g : guards) {
        w.u64(g);
        w.boolean(sfbGuardDone_.at(g));
    }

    w.u32(issuedCount_);
    w.u64(nextDoneCycle_);
    w.u64(robIdNext_);
    w.u64(firstWaitingId_);
    for (unsigned c : iqCount_)
        w.u32(c);
    w.u32(ldqCount_);
    w.u32(stqCount_);
    w.boolean(sfbActive_);
    w.u64(sfbActiveGuard_);
    w.u64(sfbActiveTarget_);
    w.u64(lastCommittedFtq_);
    w.boolean(anyCommitted_);
    w.u64(committedInsts_);
    w.u64(committedBranches_);
    w.u64(committedCfis_);
    w.u64(condMispredicts_);
    w.u64(jalrMispredicts_);
    w.u64(sfbConversions_);
}

void
Backend::restoreState(warp::StateReader& r)
{
    const std::uint64_t nRob = r.u64();
    if (nRob > robBuf_.size())
        r.fail("ROB occupancy exceeds this configuration");
    robHeadIdx_ = 0;
    robCount_ = static_cast<std::size_t>(nRob);
    for (std::size_t i = 0; i < robBuf_.size(); ++i) {
        robBuf_[i] = RobEntry{};
        robStatus_[i] = static_cast<std::uint8_t>(RobEntry::St::Waiting);
    }
    for (std::size_t i = 0; i < robCount_; ++i) {
        RobEntry& e = robBuf_[i];
        loadFetchedInst(r, e.fi, oracle_.program());
        const std::uint8_t st = r.u8();
        if (st > static_cast<std::uint8_t>(RobEntry::St::Done))
            r.fail("ROB entry state out of range");
        e.st = static_cast<RobEntry::St>(st);
        const std::uint8_t iq = r.u8();
        if (iq > static_cast<std::uint8_t>(IqClass::Fp))
            r.fail("ROB entry issue-queue class out of range");
        e.iq = static_cast<IqClass>(iq);
        e.earliestIssue = r.u64();
        e.doneCycle = r.u64();
        e.wasMispredict = r.boolean();
        e.sfbConverted = r.boolean();
        e.sfbShadow = r.boolean();
        e.sfbGuard = r.u64();
        e.robId = r.u64();
        robStatus_[i] = st;
    }

    for (SeqSlot& s : seqTable_)
        s = SeqSlot{};
    const std::uint64_t liveSeqs = r.u64();
    if (liveSeqs > seqTable_.size())
        r.fail("seq scoreboard occupancy exceeds its capacity");
    for (std::uint64_t i = 0; i < liveSeqs; ++i) {
        const SeqNum seq = r.u64();
        const std::uint8_t done = r.u8();
        seqTable_[seq & seqMask_] = SeqSlot{seq, done};
    }

    sfbGuardDone_.clear();
    const std::uint64_t nGuards = r.u64();
    if (nGuards > (std::uint64_t{1} << 20))
        r.fail("SFB guard map implausibly large");
    for (std::uint64_t i = 0; i < nGuards; ++i) {
        const std::uint64_t g = r.u64();
        sfbGuardDone_[g] = r.boolean();
    }

    issuedCount_ = r.u32();
    nextDoneCycle_ = r.u64();
    robIdNext_ = r.u64();
    firstWaitingId_ = r.u64();
    for (unsigned& c : iqCount_)
        c = r.u32();
    ldqCount_ = r.u32();
    stqCount_ = r.u32();
    sfbActive_ = r.boolean();
    sfbActiveGuard_ = r.u64();
    sfbActiveTarget_ = r.u64();
    lastCommittedFtq_ = r.u64();
    anyCommitted_ = r.boolean();
    committedInsts_ = r.u64();
    committedBranches_ = r.u64();
    committedCfis_ = r.u64();
    condMispredicts_ = r.u64();
    jalrMispredicts_ = r.u64();
    sfbConversions_ = r.u64();
}

} // namespace cobra::core
