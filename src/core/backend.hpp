/**
 * @file
 * The out-of-order backend: decode/dispatch (with the short-forwards-
 * branch predication pass of paper §VI-C), a ROB-based dataflow
 * scheduler with issue-port and queue-capacity limits per Table II,
 * out-of-order branch resolution with squash/redirect, and in-order
 * commit driving the predictor's commit-time updates.
 */

#ifndef COBRA_CORE_BACKEND_HPP
#define COBRA_CORE_BACKEND_HPP

#include <cassert>
#include <deque>
#include <unordered_map>
#include <vector>

#include "bpu/bpu.hpp"
#include "core/cache.hpp"
#include "core/frontend.hpp"
#include "exec/oracle.hpp"

namespace cobra::core {

/** Backend configuration (Table II). */
struct BackendConfig
{
    unsigned coreWidth = 4;     ///< Decode/rename/commit width.
    unsigned robEntries = 128;
    unsigned intIqEntries = 32;
    unsigned memIqEntries = 32;
    unsigned fpIqEntries = 32;
    unsigned ldqEntries = 32;
    unsigned stqEntries = 32;
    unsigned aluPorts = 4;
    unsigned memPorts = 2;
    unsigned fpPorts = 2;
    /** Cycles from dispatch to earliest issue (decode/rename depth). */
    unsigned decodeDelay = 3;

    /** Short-forwards-branch predication (paper §VI-C). */
    bool sfbEnabled = false;
    unsigned sfbMaxShadowBytes = 32;

    /** Global-history repair policy at mispredicts (paper §VI-B). */
    bpu::GhistRepairMode ghistMode =
        bpu::GhistRepairMode::RepairAndReplay;
};

/**
 * The execution engine. Consumes FetchedInsts from the frontend's
 * fetch buffer; resolves branches against the oracle outcomes carried
 * by each instruction.
 */
class Backend
{
  public:
    Backend(exec::Oracle& oracle, bpu::BranchPredictorUnit& bpu,
            Frontend& frontend, CacheHierarchy& caches,
            const BackendConfig& cfg);

    /** Advance one cycle (execute-complete, issue, commit, dispatch). */
    void tick(Cycle now);

    bool robEmpty() const { return robCount_ == 0; }
    std::size_t robSize() const { return robCount_; }

    /** Snapshot of the ROB head for the watchdog post-mortem. */
    struct RobHeadView
    {
        bool valid = false;
        Addr pc = kInvalidAddr;
        SeqNum seq = kInvalidSeq;
        std::uint64_t ftq = 0;
        const char* state = "empty"; ///< waiting / issued / done.
        bool wrongPath = false;
    };

    RobHeadView robHead() const;

    // ---- Metrics -------------------------------------------------------

    std::uint64_t committedInsts() const { return committedInsts_; }
    std::uint64_t committedBranches() const { return committedBranches_; }
    std::uint64_t committedCfis() const { return committedCfis_; }
    std::uint64_t condMispredicts() const { return condMispredicts_; }
    std::uint64_t jalrMispredicts() const { return jalrMispredicts_; }
    std::uint64_t allMispredicts() const
    {
        return condMispredicts_ + jalrMispredicts_;
    }
    std::uint64_t sfbConversions() const { return sfbConversions_; }

    StatGroup& stats() { return stats_; }
    const StatGroup& stats() const { return stats_; }

    /** Attach a CobraScope tracer (nullptr detaches; not owned). */
    void setTracer(scope::Tracer* t) { tracer_ = t; }

    const BackendConfig& config() const { return cfg_; }

    /**
     * Checkpoint the full execution-engine state: the ROB ring (every
     * in-flight instruction with its scheduling state), the seq
     * scoreboard, SFB predication state, and the commit counters.
     * Registered stat handles ride the stat registry.
     */
    void saveState(warp::StateWriter& w) const;
    void restoreState(warp::StateReader& r);

  private:
    enum class IqClass : std::uint8_t { Int = 0, Mem = 1, Fp = 2 };

    struct RobEntry
    {
        FetchedInst fi;
        enum class St : std::uint8_t { Waiting, Issued, Done };
        St st = St::Waiting;
        IqClass iq = IqClass::Int;
        Cycle earliestIssue = 0;
        Cycle doneCycle = 0;
        bool wasMispredict = false;
        bool sfbConverted = false; ///< Branch turned into set-flag.
        bool sfbShadow = false;    ///< Predicated shadow instruction.
        std::uint64_t sfbGuard = 0; ///< dynId of the guarding branch.
        /** Monotone dispatch id (stable across deque front pops). */
        std::uint64_t robId = 0;
    };

    /**
     * Direct-mapped scoreboard of in-flight oracle seq numbers,
     * replacing an unordered_map on the issue critical path. Live
     * seqs span at most robEntries consecutive values, so a
     * power-of-two table of >= 2x that can never alias two live
     * entries.
     */
    struct SeqSlot
    {
        SeqNum seq = kInvalidSeq;
        std::uint8_t done = 0;
    };

    void
    seqInsert(SeqNum seq, std::uint8_t done)
    {
        SeqSlot& s = seqTable_[seq & seqMask_];
        assert(s.seq == kInvalidSeq || s.seq == seq);
        s.seq = seq;
        s.done = done;
    }

    void
    seqErase(SeqNum seq)
    {
        SeqSlot& s = seqTable_[seq & seqMask_];
        if (s.seq == seq)
            s.seq = kInvalidSeq;
    }

    /** True when @p dep has left flight or produced its result. */
    bool
    seqReady(SeqNum dep) const
    {
        const SeqSlot& s = seqTable_[dep & seqMask_];
        return s.seq != dep || s.done != 0;
    }

    void completeAndResolve(Cycle now);
    void issue(Cycle now);
    void commit(Cycle now);
    void dispatch(Cycle now);

    /** Resolve a CF instruction; true if it squashed the pipeline. */
    bool resolveCf(std::size_t idx, Cycle now);

    /** Squash ROB entries younger than index @p idx. */
    void squashYoungerThan(std::size_t idx);

    /** Execution latency for an instruction issued at @p now. */
    Cycle execLatency(const exec::DynInst& di);

    /** True when all register dependences have produced. */
    bool depsReady(const RobEntry& e) const;

    static bpu::CfiType cfiTypeOf(prog::OpClass op);

    exec::Oracle& oracle_;
    bpu::BranchPredictorUnit& bpu_;
    Frontend& frontend_;
    CacheHierarchy& caches_;
    BackendConfig cfg_;

    // ---- ROB ring buffer ------------------------------------------------
    // A power-of-two ring (not std::deque) so the per-cycle scans index
    // with a mask instead of the deque's two-level lookup, plus a
    // compact status mirror so they can reject non-candidate entries
    // from one cache line before touching the fat RobEntry.

    RobEntry& robAt(std::size_t i)
    {
        return robBuf_[(robHeadIdx_ + i) & robMask_];
    }
    const RobEntry& robAt(std::size_t i) const
    {
        return robBuf_[(robHeadIdx_ + i) & robMask_];
    }
    std::uint8_t& statusAt(std::size_t i)
    {
        return robStatus_[(robHeadIdx_ + i) & robMask_];
    }

    void
    robPushBack(RobEntry&& e)
    {
        const std::size_t slot = (robHeadIdx_ + robCount_) & robMask_;
        robStatus_[slot] = static_cast<std::uint8_t>(e.st);
        robBuf_[slot] = std::move(e);
        ++robCount_;
    }

    void
    robPopFront()
    {
        robHeadIdx_ = (robHeadIdx_ + 1) & robMask_;
        --robCount_;
    }

    void robPopBack() { --robCount_; }

    std::vector<RobEntry> robBuf_;
    std::vector<std::uint8_t> robStatus_;
    std::size_t robHeadIdx_ = 0;
    std::size_t robCount_ = 0;
    std::size_t robMask_ = 0;

    /** Oracle seq -> in-flight state (dependence tracking). */
    std::vector<SeqSlot> seqTable_;
    std::size_t seqMask_ = 0;
    /** dynId -> done flag for SFB guards. */
    std::unordered_map<std::uint64_t, bool> sfbGuardDone_;

    // ---- Scheduler scan accelerators -----------------------------------
    // All three are pure bookkeeping over state the scans recompute;
    // they change which cycles scan, never what a scan decides.

    /** Entries currently in St::Issued. */
    unsigned issuedCount_ = 0;
    /** Lower bound on the earliest doneCycle among issued entries. */
    Cycle nextDoneCycle_ = 0;
    /** Next robId to assign at dispatch. */
    std::uint64_t robIdNext_ = 0;
    /** Lower bound on the robId of the oldest Waiting entry. */
    std::uint64_t firstWaitingId_ = 0;

    unsigned iqCount_[3] = {0, 0, 0};
    unsigned ldqCount_ = 0;
    unsigned stqCount_ = 0;

    /** Active SFB region during dispatch. */
    bool sfbActive_ = false;
    std::uint64_t sfbActiveGuard_ = 0;
    Addr sfbActiveTarget_ = 0;

    bpu::FtqPos lastCommittedFtq_ = 0;
    bool anyCommitted_ = false;

    std::uint64_t committedInsts_ = 0;
    std::uint64_t committedBranches_ = 0;
    std::uint64_t committedCfis_ = 0;
    std::uint64_t condMispredicts_ = 0;
    std::uint64_t jalrMispredicts_ = 0;
    std::uint64_t sfbConversions_ = 0;

    scope::Tracer* tracer_ = nullptr;

    // Registered stat handles (stats_ must precede them): per-cycle
    // paths increment the members directly.
    StatGroup stats_{"backend"};
    Stat<Counter> resolvedMispredicts_{
        stats_, "resolved_mispredicts",
        "mispredicts resolved at execute (incl. wrong-path)"};
    Stat<Counter> issued_{stats_, "issued", "instructions issued"};
    Stat<Counter> committed_{stats_, "committed",
                             "instructions committed"};
    Stat<Counter> stallRob_{stats_, "stall_rob",
                            "dispatch stalls on a full ROB"};
    Stat<Counter> stallIq_{stats_, "stall_iq",
                           "dispatch stalls on a full issue queue"};
    Stat<Counter> stallLdq_{stats_, "stall_ldq",
                            "dispatch stalls on a full load queue"};
    Stat<Counter> stallStq_{stats_, "stall_stq",
                            "dispatch stalls on a full store queue"};
    Stat<Counter> dispatched_{stats_, "dispatched",
                              "instructions dispatched into the ROB"};
};

} // namespace cobra::core

#endif // COBRA_CORE_BACKEND_HPP
