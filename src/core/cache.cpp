#include "core/cache.hpp"

#include <cassert>

#include "common/bitutil.hpp"
#include "warp/state_io.hpp"

namespace cobra::core {

Cache::Cache(const CacheParams& p)
    : params_(p), stats_(p.name)
{
    const std::uint64_t lineCount = p.sizeBytes / p.lineBytes;
    assert(lineCount % p.ways == 0);
    sets_ = static_cast<unsigned>(lineCount / p.ways);
    assert(isPow2(sets_));
    lines_.resize(lineCount);
}

std::size_t
Cache::setOf(Addr addr) const
{
    return static_cast<std::size_t>(
        (addr / params_.lineBytes) & maskBits(ceilLog2(sets_)));
}

std::uint64_t
Cache::tagOf(Addr addr) const
{
    return (addr / params_.lineBytes) >> ceilLog2(sets_);
}

bool
Cache::probe(Addr addr) const
{
    const std::size_t set = setOf(addr);
    const std::uint64_t tag = tagOf(addr);
    for (unsigned w = 0; w < params_.ways; ++w) {
        const Line& l = lines_[set * params_.ways + w];
        if (l.valid && l.tag == tag)
            return true;
    }
    return false;
}

bool
Cache::access(Addr addr)
{
    ++accesses_;
    const std::size_t set = setOf(addr);
    const std::uint64_t tag = tagOf(addr);
    for (unsigned w = 0; w < params_.ways; ++w) {
        Line& l = lines_[set * params_.ways + w];
        if (l.valid && l.tag == tag) {
            l.lruStamp = ++stamp_;
            return true;
        }
    }
    ++misses_;
    Line* victim = &lines_[set * params_.ways];
    for (unsigned w = 0; w < params_.ways; ++w) {
        Line& l = lines_[set * params_.ways + w];
        if (!l.valid) {
            victim = &l;
            break;
        }
        if (l.lruStamp < victim->lruStamp)
            victim = &l;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lruStamp = ++stamp_;
    return false;
}

std::uint64_t
Cache::storageBits() const
{
    const std::uint64_t lineCount = params_.sizeBytes / params_.lineBytes;
    const unsigned tagBits = 48 - ceilLog2(params_.lineBytes) -
                             ceilLog2(sets_);
    return lineCount * (params_.lineBytes * 8ull + tagBits + 2);
}

phys::PhysicalCost
Cache::physicalCost() const
{
    phys::PhysicalCost c;
    c.sramBits = storageBits();
    c.sramPorts = {1, 1, 0};
    c.logicGates = 5000;
    return c;
}

CacheHierarchy::CacheHierarchy(const HierarchyParams& p)
    : params_(p), l1i_(p.l1i), l1d_(p.l1d), l2_(p.l2), l3_(p.l3)
{
}

Cycle
CacheHierarchy::walkBeyondL1(Addr addr)
{
    if (l2_.access(addr))
        return params_.l2.hitLatency;
    if (l3_.access(addr))
        return params_.l2.hitLatency + params_.l3.hitLatency;
    return params_.l2.hitLatency + params_.l3.hitLatency +
           params_.memLatency;
}

Cycle
CacheHierarchy::fetchAccess(Addr addr)
{
    const Addr line = addr / params_.l1i.lineBytes;
    const bool hit = l1i_.access(addr);
    Cycle lat = params_.l1i.hitLatency;
    if (!hit) {
        // Next-line prefetcher (Table II): sequential misses are
        // covered — only discontinuous fetches pay the full walk.
        if (lastFetchLine_ != kInvalidAddr && line == lastFetchLine_ + 1)
            lat += params_.l2.hitLatency / 2;
        else
            lat += walkBeyondL1(addr);
        // Prefetch the following line.
        l1i_.access(addr + params_.l1i.lineBytes);
    }
    lastFetchLine_ = line;
    return lat;
}

Cycle
CacheHierarchy::loadAccess(Addr addr)
{
    const bool hit = l1d_.access(addr);
    Cycle lat = params_.l1d.hitLatency;
    if (!hit)
        lat += walkBeyondL1(addr);
    return lat;
}

Cycle
CacheHierarchy::storeAccess(Addr addr)
{
    // Write-allocate; stores retire through a store buffer, so the
    // visible occupancy is short.
    l1d_.access(addr);
    return 1;
}

void
Cache::saveState(warp::StateWriter& w) const
{
    w.u64(lines_.size());
    for (const Line& l : lines_) {
        w.boolean(l.valid);
        w.u64(l.tag);
        w.u64(l.lruStamp);
    }
    w.u64(stamp_);
}

void
Cache::restoreState(warp::StateReader& r)
{
    if (r.u64() != lines_.size())
        r.fail("cache line count does not match this configuration");
    for (Line& l : lines_) {
        l.valid = r.boolean();
        l.tag = r.u64();
        l.lruStamp = r.u64();
    }
    stamp_ = r.u64();
}

void
CacheHierarchy::saveState(warp::StateWriter& w) const
{
    l1i_.saveState(w);
    l1d_.saveState(w);
    l2_.saveState(w);
    l3_.saveState(w);
    w.u64(lastFetchLine_);
}

void
CacheHierarchy::restoreState(warp::StateReader& r)
{
    l1i_.restoreState(r);
    l1d_.restoreState(r);
    l2_.restoreState(r);
    l3_.restoreState(r);
    lastFetchLine_ = r.u64();
}

} // namespace cobra::core
