/**
 * @file
 * Cache hierarchy model per the paper's Table II: 32 KB 8-way L1I and
 * L1D, 512 KB 8-way L2, and a 4 MB LLC standing in for the FASED L3
 * model, over a fixed-latency DRAM stand-in for the FASED DDR3 timing
 * model (see DESIGN.md §1 on the substitution).
 */

#ifndef COBRA_CORE_CACHE_HPP
#define COBRA_CORE_CACHE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "phys/area_model.hpp"

namespace cobra::warp {
class StateWriter;
class StateReader;
} // namespace cobra::warp

namespace cobra::core {

/** Parameters of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 * 1024;
    unsigned ways = 8;
    unsigned lineBytes = 64;
    Cycle hitLatency = 1;
};

/**
 * A single set-associative, write-allocate, LRU cache level.
 */
class Cache
{
  public:
    explicit Cache(const CacheParams& p);

    /** Probe and update state; true on hit (allocates on miss). */
    bool access(Addr addr);

    /** Probe only (no allocation). */
    bool probe(Addr addr) const;

    const CacheParams& params() const { return params_; }
    Cycle hitLatency() const { return params_.hitLatency; }

    std::uint64_t accesses() const { return accesses_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

    /** Registered stat handles (named after the level, e.g. "L1I"). */
    const StatGroup& stats() const { return stats_; }

    /** Bits of data + tag storage. */
    std::uint64_t storageBits() const;

    phys::PhysicalCost physicalCost() const;

    /** Checkpoint tag/LRU state (counters ride the stat registry). */
    void saveState(warp::StateWriter& w) const;
    void restoreState(warp::StateReader& r);

  private:
    struct Line
    {
        bool valid = false;
        std::uint64_t tag = 0;
        std::uint64_t lruStamp = 0;
    };

    std::size_t setOf(Addr addr) const;
    std::uint64_t tagOf(Addr addr) const;

    CacheParams params_;
    unsigned sets_;
    std::vector<Line> lines_;
    std::uint64_t stamp_ = 0;

    StatGroup stats_;
    Stat<Counter> accesses_{stats_, "accesses", "total probes"};
    Stat<Counter> misses_{stats_, "misses", "probes that missed"};
};

/** Latency parameters of the full hierarchy. */
struct HierarchyParams
{
    CacheParams l1i{"L1I", 32 * 1024, 8, 64, 1};
    CacheParams l1d{"L1D", 32 * 1024, 8, 64, 3};
    CacheParams l2{"L2", 512 * 1024, 8, 64, 12};
    CacheParams l3{"L3", 4 * 1024 * 1024, 8, 64, 38};
    Cycle memLatency = 120;
};

/**
 * L1I + L1D over a shared L2/L3/memory path. Returns access latencies
 * in cycles; a next-line prefetcher covers sequential instruction
 * fetch (Table II lists one).
 */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const HierarchyParams& p = HierarchyParams{});

    /** Instruction fetch at @p addr; returns total latency. */
    Cycle fetchAccess(Addr addr);

    /** Data load at @p addr; returns total latency. */
    Cycle loadAccess(Addr addr);

    /** Data store at @p addr; returns occupancy latency. */
    Cycle storeAccess(Addr addr);

    const Cache& l1i() const { return l1i_; }
    const Cache& l1d() const { return l1d_; }
    const Cache& l2() const { return l2_; }
    const Cache& l3() const { return l3_; }

    const HierarchyParams& params() const { return params_; }

    /** Checkpoint all four levels plus the prefetch tracker. */
    void saveState(warp::StateWriter& w) const;
    void restoreState(warp::StateReader& r);

  private:
    /** Walk L2 -> L3 -> memory; returns added latency beyond L1. */
    Cycle walkBeyondL1(Addr addr);

    HierarchyParams params_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    Cache l3_;
    Addr lastFetchLine_ = kInvalidAddr;
};

} // namespace cobra::core

#endif // COBRA_CORE_CACHE_HPP
