/**
 * @file
 * The instruction fetch unit (paper Fig. 6): a staged fetch pipeline
 * driving the COBRA-generated predictor. F0 selects a PC and queries
 * the predictor; histories are captured at the end of F1; stage-d
 * bundles can re-steer fetch (killing d-1 younger in-flight packets,
 * the composer's redirection logic of §IV-B); the final stage
 * pre-decodes the packet, resolves the next PC with RAS assistance,
 * allocates the history file entry, and delivers instructions to the
 * fetch buffer.
 *
 * The frontend owns the global-history speculation *policy*
 * (GhistRepairMode, the §VI-B experiment) and the fetch-serialization
 * ablation (§I's 15%-IPC claim).
 */

#ifndef COBRA_CORE_FRONTEND_HPP
#define COBRA_CORE_FRONTEND_HPP

#include <deque>
#include <memory>
#include <vector>

#include "bpu/bpu.hpp"
#include "common/small_vector.hpp"
#include "core/cache.hpp"
#include "core/ras.hpp"
#include "exec/oracle.hpp"
#include "program/program.hpp"
#include "scope/tracer.hpp"

namespace cobra::core {

/** One instruction delivered to the backend. */
struct FetchedInst
{
    exec::DynInst di;          ///< Truth (oracle) or wrong-path synth.
    bpu::FtqPos ftq = 0;       ///< History-file entry of the packet.
    unsigned slot = 0;         ///< Aligned slot within the packet.
    bool predTaken = false;    ///< Fetch-time direction used (CF only).
    Addr predNextPc = kInvalidAddr; ///< Fetch-time next-PC used.
    bool isPacketCfi = false;  ///< This was the packet's predicted CFI.
    std::uint64_t dynId = 0;   ///< Monotonic id across all fetched insts.
};

/** Frontend configuration. */
struct FrontendConfig
{
    unsigned fetchWidth = 4;        ///< Slots per aligned fetch packet.
    unsigned fetchBufferInsts = 32; ///< Fetch buffer capacity.
    unsigned rasEntries = 16;
    bpu::GhistRepairMode ghistMode =
        bpu::GhistRepairMode::RepairAndReplay;
    /** Serialize fetch behind branches (one branch per packet, §I). */
    bool serializeFetch = false;
};

/**
 * The fetch unit. Drives the oracle for correct-path instruction
 * content and synthesises wrong-path content after divergence
 * (DESIGN.md §4).
 */
class Frontend
{
  public:
    Frontend(const prog::Program& program, exec::Oracle& oracle,
             bpu::BranchPredictorUnit& bpu, CacheHierarchy& caches,
             const FrontendConfig& cfg);

    /** Advance one cycle. */
    void tick(Cycle now);

    // ---- Backend-facing fetch buffer ----------------------------------

    bool bufferEmpty() const { return buffer_.empty(); }
    std::size_t bufferSize() const { return buffer_.size(); }
    const FetchedInst& bufferFront() const { return buffer_.front(); }
    void popFront() { buffer_.pop_front(); }

    /**
     * Backend redirect after a mispredict: kill all in-flight fetch,
     * flush the fetch buffer, restore the RAS pointer, and resume at
     * @p pc. @p on_oracle_path tells the frontend whether @p pc is
     * back on the architectural path (the oracle cursor has been
     * rewound by the caller).
     */
    void redirect(Addr pc, bool on_oracle_path, std::uint32_t ras_ptr,
                  Cycle now = 0);

    /** True while fetch has diverged from the architectural path. */
    bool onOraclePath() const { return onOraclePath_; }

    ReturnAddressStack& ras() { return ras_; }

    // ---- Watchdog diagnostics (SimGuard post-mortem) ------------------

    /** PC the next fetch packet would start at. */
    Addr fetchPc() const { return nextFetchPc_; }

    /** Read-only view of one in-flight fetch packet. */
    struct PacketView
    {
        Addr pc = kInvalidAddr;
        unsigned stage = 0;
        Cycle stallUntil = 0;
    };

    /** In-flight packets, oldest first. */
    std::vector<PacketView> inFlightPackets() const;

    /** One recorded backend redirect. */
    struct RedirectRecord
    {
        Addr pc = kInvalidAddr;
        Cycle cycle = 0;
    };

    /** The last few backend redirects, newest last. */
    const std::deque<RedirectRecord>& recentRedirects() const
    {
        return redirects_;
    }

    StatGroup& stats() { return stats_; }
    const StatGroup& stats() const { return stats_; }

    /** Attach a CobraScope tracer (nullptr detaches; not owned). */
    void setTracer(scope::Tracer* t) { tracer_ = t; }

    const FrontendConfig& config() const { return cfg_; }

    /**
     * Checkpoint fetch state including in-flight packets (each with
     * its predictor query mid-evaluation), the fetch buffer, and the
     * RAS. Counters ride the stat registry.
     */
    void saveState(warp::StateWriter& w) const;
    void restoreState(warp::StateReader& r);

    /**
     * Warp fast-forward support: reset fetch to the oracle's current
     * PC with an empty pipeline (state as after construction, but
     * with whatever the RAS/histories learned retained).
     */
    void resetFetchToOracle();

  private:
    /** One in-flight fetch packet in the F0..F3 pipeline. Packets are
     *  pooled: the pipeline holds pointers into a free list sized by
     *  the pipeline depth, so steady-state fetch recycles the same few
     *  objects (and the capacities inside their QueryStates) instead
     *  of constructing one per cycle. */
    struct Packet
    {
        Addr pc = kInvalidAddr;
        unsigned startSlot = 0;   ///< Aligned slot of pc.
        unsigned stage = 0;       ///< Last completed stage.
        Cycle stallUntil = 0;     ///< ICache miss modelling.
        bpu::QueryState query;
        Addr predNextPc = kInvalidAddr;
        /** Spec-ghist bits this packet pushed at F1 (re-pushed on
         *  re-steer). */
        SmallVector<bool, bpu::kMaxFetchWidth> pushedBits;
        /** Spec ghist value just after this packet's own pushes. */
        HistoryRegister ghistAfterPush{1};
        std::uint64_t wrongPathSalt = 0;
    };

    /** Take a recycled (or new) packet from the pool. */
    Packet* allocPacket();

    /** Return packets pipe_[first..last) to the pool and erase them. */
    void releaseRange(std::size_t first, std::size_t last);

    /** Block-aligned fallthrough address. */
    Addr fallthrough(Addr pc) const;
    unsigned slotOf(Addr pc) const
    {
        return static_cast<unsigned>((pc >> 2) & (cfg_.fetchWidth - 1));
    }

    /**
     * First early-redirect target in @p b at or after @p start_slot:
     * requires a taken prediction with a known target and type.
     */
    Addr earlyNextPc(const Packet& p, const bpu::PredictionBundle& b) const;

    /** Push this packet's predicted outcome bits into spec ghist. */
    void pushGhistBits(Packet& p, const bpu::PredictionBundle& b);

    /** Finalize a packet at the last stage; false if stalled. */
    bool tryFinalize(Packet& p, Cycle now);

    /** Kill packets younger than index @p idx (exclusive). */
    void killYoungerThan(std::size_t idx);

    const prog::Program& prog_;
    exec::Oracle& oracle_;
    bpu::BranchPredictorUnit& bpu_;
    CacheHierarchy& caches_;
    FrontendConfig cfg_;
    unsigned finalStage_;

    std::deque<Packet*> pipe_; ///< Oldest first; owned by packetPool_.
    std::vector<std::unique_ptr<Packet>> packetPool_;
    std::vector<Packet*> freePackets_;
    std::deque<FetchedInst> buffer_;
    ReturnAddressStack ras_;

    /** Ring of recent backend redirects for the post-mortem. */
    static constexpr std::size_t kRedirectLog = 8;
    std::deque<RedirectRecord> redirects_;

    Addr nextFetchPc_;
    bool finalizeSteer_ = false;
    bool onOraclePath_ = true;
    std::uint64_t wrongPathEpoch_ = 0;
    std::uint64_t nextDynId_ = 1;

    scope::Tracer* tracer_ = nullptr;

    // Registered stat handles (stats_ must precede them): per-cycle
    // paths increment the members directly.
    StatGroup stats_{"frontend"};
    Stat<Counter> packetsKilled_{stats_, "packets_killed",
                                 "in-flight packets killed by steers"};
    Stat<Counter> stallHistfile_{stats_, "stall_histfile",
                                 "finalize stalls on a full history file"};
    Stat<Counter> stallFetchbuffer_{stats_, "stall_fetchbuffer",
                                    "finalize stalls on a full fetch buffer"};
    Stat<Counter> ghistReplays_{stats_, "ghist_replays",
                                "F3 ghist corrections forcing a replay"};
    Stat<Counter> oracleResyncs_{stats_, "oracle_resyncs",
                                 "wrong-path fetch reconvergences"};
    Stat<Counter> instsFetched_{stats_, "insts_fetched",
                                "instructions delivered to the buffer"};
    Stat<Counter> packetsFinalized_{stats_, "packets_finalized",
                                    "fetch packets finalized at F3"};
    Stat<Counter> packetsTaken_{stats_, "packets_taken",
                                "packets ending in a taken CFI"};
    Stat<Counter> resteers_{stats_, "resteers",
                            "intermediate-stage fetch re-steers"};
    Stat<Counter> icacheStallCycles_{stats_, "icache_stall_cycles",
                                     "cycles lost to icache misses"};
    Stat<Counter> fetchBubbles_{stats_, "fetch_bubbles",
                                "cycles no new packet entered F0"};
    Stat<Counter> redirectEvents_{stats_, "redirects",
                                  "backend redirects after mispredicts"};
};

/** Serialize one fetched instruction (delegates to saveDynInst). */
void saveFetchedInst(warp::StateWriter& w, const FetchedInst& fi,
                     const prog::Program& prog);
void loadFetchedInst(warp::StateReader& r, FetchedInst& fi,
                     const prog::Program& prog);

} // namespace cobra::core

#endif // COBRA_CORE_FRONTEND_HPP
