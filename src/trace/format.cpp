#include "trace/format.hpp"

#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "guard/errors.hpp"
#include "warp/state_io.hpp"

#ifdef COBRA_HAVE_ZLIB
#include <zlib.h>
#endif

namespace cobra::trace {

namespace {

// ---- little-endian scalar access into raw byte buffers ----------------

void
putU32(std::uint8_t* p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void
putU64(std::uint8_t* p, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint32_t
getU32(const std::uint8_t* p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
getU64(const std::uint8_t* p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

// ---- varint / zigzag ---------------------------------------------------

void
putVarint(std::vector<std::uint8_t>& out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

/** Packed meta byte: bits 0-1 type, 2 taken, 3 hasTarget, 4-6 slot. */
std::uint8_t
packMeta(const TraceRecord& r, bool has_target)
{
    return static_cast<std::uint8_t>(
        (static_cast<unsigned>(r.type) & 0x3) |
        (static_cast<unsigned>(r.taken) << 2) |
        (static_cast<unsigned>(has_target) << 3) |
        ((r.slot & 0x7u) << 4));
}

/** Header field offsets (see format.hpp for the layout contract). */
enum HeaderOffset : std::size_t
{
    kOffMagic = 0,
    kOffVersion = 4,
    kOffFlags = 8,
    kOffKind = 12,
    kOffFetchWidth = 13,
    kOffNameLen = 14,
    kOffOracleSeed = 16,
    kOffProgramFp = 24,
    kOffSourceInsts = 32,
    kOffRecordCount = 40,
    kOffCondCount = 48,
    kOffBlockCount = 56,
    kOffIndexOffset = 64,
    kOffPayloadChecksum = 72,
    kOffIndexChecksum = 80,
    kOffHeaderChecksum = 88,
};

constexpr std::size_t kIndexEntryBytes = 8 + 8 + 4 + 4;
constexpr std::size_t kBlockHeaderBytes = 4 + 4 + 4 + 4 + 8;

} // namespace

const char*
recordTypeName(RecordType t)
{
    switch (t) {
      case RecordType::Cond: return "cond";
      case RecordType::IndirectJump: return "indjump";
      case RecordType::IndirectCall: return "indcall";
    }
    return "?";
}

const char*
traceKindName(TraceKind k)
{
    switch (k) {
      case TraceKind::CapturedOracle: return "captured-oracle";
      case TraceKind::External: return "external";
    }
    return "?";
}

bool
deflateAvailable()
{
#ifdef COBRA_HAVE_ZLIB
    return true;
#else
    return false;
#endif
}

TraceRecord
DecodedBlock::record(std::size_t i) const
{
    TraceRecord r;
    r.pc = pc[i];
    r.target = target[i];
    const std::uint8_t m = meta[i];
    r.type = typeOf(m);
    r.taken = takenOf(m);
    r.slot = static_cast<std::uint8_t>(slotOf(m));
    return r;
}

// ---- TraceWriter -------------------------------------------------------

TraceWriter::TraceWriter(const std::string& path, const TraceMeta& meta)
    : path_(path), meta_(meta)
{
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        throw guard::CheckpointError("trace " + path,
                                     "cannot open for writing");
    }
    file_ = f;

    if (meta_.name.size() > 0xFFFF) {
        std::fclose(f);
        file_ = nullptr;
        std::remove(path_.c_str());
        throw guard::CheckpointError("trace " + path,
                                     "source name longer than 65535 bytes");
    }

    // Placeholder header + the name; finalize() rewrites the header.
    std::uint8_t hdr[TraceFile::kHeaderBytes] = {};
    if (std::fwrite(hdr, 1, sizeof(hdr), f) != sizeof(hdr) ||
        (!meta_.name.empty() &&
         std::fwrite(meta_.name.data(), 1, meta_.name.size(), f) !=
             meta_.name.size())) {
        std::fclose(f);
        file_ = nullptr;
        std::remove(path_.c_str());
        throw guard::CheckpointError("trace " + path, "write failed");
    }
    pending_.reserve(TraceFile::kBlockRecords);

    // Name bytes are part of the payload checksum span.
    payloadChecksum_ = warp::fnv1a(
        reinterpret_cast<const std::uint8_t*>(meta_.name.data()),
        meta_.name.size());
}

TraceWriter::~TraceWriter()
{
    if (file_ != nullptr) {
        std::fclose(static_cast<std::FILE*>(file_));
        file_ = nullptr;
        if (!finalized_)
            std::remove(path_.c_str());
    }
}

void
TraceWriter::add(const TraceRecord& r)
{
    if (finalized_) {
        throw guard::CheckpointError("trace " + path_,
                                     "add() after finalize()");
    }
    pending_.push_back(r);
    ++recordCount_;
    if (r.type == RecordType::Cond)
        ++condCount_;
    if (pending_.size() >= TraceFile::kBlockRecords)
        flushBlock();
}

void
TraceWriter::flushBlock()
{
    if (pending_.empty())
        return;
    auto* f = static_cast<std::FILE*>(file_);

    // Encode the raw (pre-compression) payload: per record a meta
    // byte, a zigzag-varint pc delta, and — when a target is attached
    // — a zigzag-varint target delta relative to pc.
    scratch_.clear();
    Addr prev_pc = 0;
    for (const TraceRecord& r : pending_) {
        const bool has_target = r.target != kInvalidAddr;
        scratch_.push_back(packMeta(r, has_target));
        putVarint(scratch_, zigzag(static_cast<std::int64_t>(
                                r.pc - prev_pc)));
        if (has_target) {
            putVarint(scratch_, zigzag(static_cast<std::int64_t>(
                                    r.target - r.pc)));
        }
        prev_pc = r.pc;
    }

    const std::uint8_t* stored = scratch_.data();
    std::size_t stored_bytes = scratch_.size();
    std::uint8_t codec = TraceFile::kCodecRaw;
    [[maybe_unused]] std::vector<std::uint8_t> deflated;
#ifdef COBRA_HAVE_ZLIB
    {
        uLongf bound = compressBound(static_cast<uLong>(scratch_.size()));
        deflated.resize(bound);
        if (compress2(deflated.data(), &bound, scratch_.data(),
                      static_cast<uLong>(scratch_.size()),
                      Z_BEST_SPEED) == Z_OK &&
            bound < scratch_.size()) {
            stored = deflated.data();
            stored_bytes = static_cast<std::size_t>(bound);
            codec = TraceFile::kCodecDeflate;
            flags_ |= TraceFile::kFlagDeflate;
        }
    }
#endif

    IndexEntry e;
    const long pos = std::ftell(f);
    if (pos < 0)
        throw guard::CheckpointError("trace " + path_, "ftell failed");
    e.offset = static_cast<std::uint64_t>(pos);
    e.firstRecord = recordCount_ - pending_.size();
    e.records = static_cast<std::uint32_t>(pending_.size());

    std::uint8_t bh[kBlockHeaderBytes];
    putU32(bh + 0, e.records);
    putU32(bh + 4, codec);
    putU32(bh + 8, static_cast<std::uint32_t>(scratch_.size()));
    putU32(bh + 12, static_cast<std::uint32_t>(stored_bytes));
    putU64(bh + 16, warp::fnv1a(stored, stored_bytes));
    if (std::fwrite(bh, 1, sizeof(bh), f) != sizeof(bh) ||
        std::fwrite(stored, 1, stored_bytes, f) != stored_bytes) {
        throw guard::CheckpointError("trace " + path_, "write failed");
    }

    // Running payload checksum: extend over the bytes just written.
    auto extend = [this](const std::uint8_t* p, std::size_t n) {
        std::uint64_t h = payloadChecksum_;
        for (std::size_t i = 0; i < n; ++i) {
            h ^= p[i];
            h *= 1099511628211ull;
        }
        payloadChecksum_ = h;
    };
    extend(bh, sizeof(bh));
    extend(stored, stored_bytes);

    index_.push_back(e);
    pending_.clear();
}

void
TraceWriter::finalize()
{
    if (finalized_)
        return;
    auto* f = static_cast<std::FILE*>(file_);
    flushBlock();

    const long index_pos = std::ftell(f);
    if (index_pos < 0)
        throw guard::CheckpointError("trace " + path_, "ftell failed");

    std::vector<std::uint8_t> idx;
    idx.reserve(index_.size() * kIndexEntryBytes);
    for (const IndexEntry& e : index_) {
        std::uint8_t buf[kIndexEntryBytes] = {};
        putU64(buf + 0, e.offset);
        putU64(buf + 8, e.firstRecord);
        putU32(buf + 16, e.records);
        idx.insert(idx.end(), buf, buf + sizeof(buf));
    }
    if (!idx.empty() &&
        std::fwrite(idx.data(), 1, idx.size(), f) != idx.size()) {
        throw guard::CheckpointError("trace " + path_, "write failed");
    }

    std::uint8_t hdr[TraceFile::kHeaderBytes] = {};
    putU32(hdr + kOffMagic, TraceFile::kMagic);
    putU32(hdr + kOffVersion, TraceFile::kVersion);
    putU32(hdr + kOffFlags, flags_);
    hdr[kOffKind] = static_cast<std::uint8_t>(meta_.kind);
    hdr[kOffFetchWidth] = static_cast<std::uint8_t>(meta_.fetchWidth);
    hdr[kOffNameLen] = static_cast<std::uint8_t>(meta_.name.size());
    hdr[kOffNameLen + 1] =
        static_cast<std::uint8_t>(meta_.name.size() >> 8);
    putU64(hdr + kOffOracleSeed, meta_.oracleSeed);
    putU64(hdr + kOffProgramFp, meta_.programFingerprint);
    putU64(hdr + kOffSourceInsts, meta_.sourceInsts);
    putU64(hdr + kOffRecordCount, recordCount_);
    putU64(hdr + kOffCondCount, condCount_);
    putU64(hdr + kOffBlockCount, index_.size());
    putU64(hdr + kOffIndexOffset, static_cast<std::uint64_t>(index_pos));
    putU64(hdr + kOffPayloadChecksum, payloadChecksum_);
    putU64(hdr + kOffIndexChecksum, warp::fnv1a(idx.data(), idx.size()));
    putU64(hdr + kOffHeaderChecksum,
           warp::fnv1a(hdr, kOffHeaderChecksum));

    if (std::fseek(f, 0, SEEK_SET) != 0 ||
        std::fwrite(hdr, 1, sizeof(hdr), f) != sizeof(hdr) ||
        std::fflush(f) != 0) {
        throw guard::CheckpointError("trace " + path_,
                                     "header patch failed");
    }
    std::fclose(f);
    file_ = nullptr;
    meta_.recordCount = recordCount_;
    meta_.condCount = condCount_;
    finalized_ = true;
}

// ---- TraceReader -------------------------------------------------------

void
TraceReader::fail(const std::string& detail) const
{
    throw guard::CheckpointError("trace " + path_, detail);
}

TraceReader::TraceReader(const std::string& path) : path_(path)
{
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        fail("cannot open");
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        fail("stat failed");
    }
    size_ = static_cast<std::size_t>(st.st_size);
    if (size_ < TraceFile::kHeaderBytes) {
        ::close(fd);
        fail("file shorter than the header");
    }
    void* map = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (map == MAP_FAILED)
        fail("mmap failed");
    data_ = static_cast<const std::uint8_t*>(map);

    const std::uint8_t* h = data_;
    if (getU32(h + kOffMagic) != TraceFile::kMagic)
        fail("bad magic (not a COBRA trace)");
    const std::uint32_t version = getU32(h + kOffVersion);
    if (version != TraceFile::kVersion) {
        fail("unsupported version " + std::to_string(version) +
             " (expected " + std::to_string(TraceFile::kVersion) + ")");
    }
    if (getU64(h + kOffHeaderChecksum) !=
        warp::fnv1a(h, kOffHeaderChecksum)) {
        fail("header checksum mismatch");
    }

    flags_ = getU32(h + kOffFlags);
    if ((flags_ & TraceFile::kFlagDeflate) != 0 && !deflateAvailable())
        fail("file has deflate blocks but this build has no zlib");

    const std::uint8_t kind = h[kOffKind];
    if (kind != static_cast<std::uint8_t>(TraceKind::CapturedOracle) &&
        kind != static_cast<std::uint8_t>(TraceKind::External)) {
        fail("unknown trace kind " + std::to_string(kind));
    }
    meta_.kind = static_cast<TraceKind>(kind);
    meta_.fetchWidth = h[kOffFetchWidth];
    if (meta_.fetchWidth == 0 || meta_.fetchWidth > 8)
        fail("fetch width out of range");
    const std::size_t name_len =
        h[kOffNameLen] | (static_cast<std::size_t>(h[kOffNameLen + 1]) << 8);
    meta_.oracleSeed = getU64(h + kOffOracleSeed);
    meta_.programFingerprint = getU64(h + kOffProgramFp);
    meta_.sourceInsts = getU64(h + kOffSourceInsts);
    meta_.recordCount = getU64(h + kOffRecordCount);
    meta_.condCount = getU64(h + kOffCondCount);
    const std::uint64_t block_count = getU64(h + kOffBlockCount);
    const std::uint64_t index_offset = getU64(h + kOffIndexOffset);

    if (TraceFile::kHeaderBytes + name_len > size_)
        fail("name field exceeds the file");
    meta_.name.assign(
        reinterpret_cast<const char*>(data_ + TraceFile::kHeaderBytes),
        name_len);

    if (meta_.condCount > meta_.recordCount)
        fail("cond count exceeds record count");
    if (index_offset < TraceFile::kHeaderBytes + name_len ||
        index_offset > size_) {
        fail("index offset outside the file");
    }
    if (block_count > (size_ - index_offset) / kIndexEntryBytes)
        fail("index truncated");

    const std::uint8_t* idx = data_ + index_offset;
    const std::size_t idx_bytes =
        static_cast<std::size_t>(block_count) * kIndexEntryBytes;
    if (getU64(h + kOffIndexChecksum) != warp::fnv1a(idx, idx_bytes))
        fail("index checksum mismatch");
    if (getU64(h + kOffPayloadChecksum) !=
        warp::fnv1a(data_ + TraceFile::kHeaderBytes,
                    static_cast<std::size_t>(index_offset) -
                        TraceFile::kHeaderBytes)) {
        fail("payload checksum mismatch");
    }

    index_.reserve(static_cast<std::size_t>(block_count));
    std::uint64_t expect_first = 0;
    for (std::uint64_t b = 0; b < block_count; ++b) {
        const std::uint8_t* e = idx + b * kIndexEntryBytes;
        IndexEntry ie;
        ie.offset = getU64(e + 0);
        ie.firstRecord = getU64(e + 8);
        ie.records = getU32(e + 16);
        if (ie.firstRecord != expect_first)
            fail("index records are not contiguous");
        if (ie.records == 0 || ie.records > TraceFile::kBlockRecords)
            fail("index block record count out of range");
        if (ie.offset < TraceFile::kHeaderBytes + name_len ||
            ie.offset + kBlockHeaderBytes > index_offset) {
            fail("index block offset outside the payload");
        }
        expect_first += ie.records;
        index_.push_back(ie);
    }
    if (expect_first != meta_.recordCount)
        fail("index record total disagrees with the header");

    digest_ = warp::fnv1a(data_, size_);
}

TraceReader::~TraceReader()
{
    if (data_ != nullptr)
        ::munmap(const_cast<std::uint8_t*>(data_), size_);
}

std::uint64_t
TraceReader::fileBytes() const
{
    return size_;
}

std::size_t
TraceReader::findBlock(std::uint64_t idx) const
{
    if (idx >= meta_.recordCount)
        fail("record index " + std::to_string(idx) +
             " beyond record count " + std::to_string(meta_.recordCount));
    std::size_t lo = 0, hi = index_.size() - 1;
    while (lo < hi) {
        const std::size_t mid = lo + (hi - lo + 1) / 2;
        if (index_[mid].firstRecord <= idx)
            lo = mid;
        else
            hi = mid - 1;
    }
    return lo;
}

void
TraceReader::decodeBlock(std::size_t b, DecodedBlock& out) const
{
    if (b >= index_.size())
        fail("block index out of range");
    const IndexEntry& e = index_[b];
    const std::uint8_t* bh = data_ + e.offset;

    const std::uint32_t records = getU32(bh + 0);
    const std::uint32_t codec = getU32(bh + 4);
    const std::uint32_t raw_bytes = getU32(bh + 8);
    const std::uint32_t stored_bytes = getU32(bh + 12);
    const std::uint64_t checksum = getU64(bh + 16);

    if (records != e.records)
        fail("block record count disagrees with the index");
    const std::uint8_t* stored = bh + kBlockHeaderBytes;
    if (e.offset + kBlockHeaderBytes + stored_bytes > size_)
        fail("block payload exceeds the file");
    if (warp::fnv1a(stored, stored_bytes) != checksum)
        fail("block checksum mismatch (corrupt payload)");

    std::vector<std::uint8_t> inflated;
    const std::uint8_t* raw = stored;
    if (codec == TraceFile::kCodecDeflate) {
#ifdef COBRA_HAVE_ZLIB
        inflated.resize(raw_bytes);
        uLongf got = raw_bytes;
        if (uncompress(inflated.data(), &got, stored, stored_bytes) !=
                Z_OK ||
            got != raw_bytes) {
            fail("block inflate failed");
        }
        raw = inflated.data();
#else
        fail("block uses deflate but this build has no zlib");
#endif
    } else if (codec == TraceFile::kCodecRaw) {
        if (stored_bytes != raw_bytes)
            fail("raw block stored/raw byte count mismatch");
    } else {
        fail("unknown block codec " + std::to_string(codec));
    }

    out.firstRecord = e.firstRecord;
    out.pc.clear();
    out.target.clear();
    out.meta.clear();
    out.pc.reserve(records);
    out.target.reserve(records);
    out.meta.reserve(records);

    std::size_t pos = 0;
    auto varint = [&]() -> std::uint64_t {
        std::uint64_t v = 0;
        unsigned shift = 0;
        while (true) {
            if (pos >= raw_bytes)
                fail("block payload truncated mid-varint");
            const std::uint8_t byte = raw[pos++];
            if (shift >= 64)
                fail("varint longer than 64 bits");
            v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
            if ((byte & 0x80) == 0)
                return v;
            shift += 7;
        }
    };

    Addr prev_pc = 0;
    for (std::uint32_t i = 0; i < records; ++i) {
        if (pos >= raw_bytes)
            fail("block payload shorter than its record count");
        const std::uint8_t m = raw[pos++];
        if ((m & 0x3) > 2)
            fail("record type out of range");
        const Addr pc = prev_pc + static_cast<Addr>(unzigzag(varint()));
        Addr target = kInvalidAddr;
        if ((m >> 3) & 1)
            target = pc + static_cast<Addr>(unzigzag(varint()));
        out.pc.push_back(pc);
        out.target.push_back(target);
        out.meta.push_back(static_cast<std::uint8_t>(m & 0x77));
        prev_pc = pc;
    }
    if (pos != raw_bytes)
        fail("trailing bytes after the block's last record");
}

} // namespace cobra::trace
