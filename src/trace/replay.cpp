#include "trace/replay.hpp"

#include "guard/errors.hpp"

namespace cobra::trace {

TraceRecord
DecodedTrace::record(std::size_t i) const
{
    TraceRecord r;
    r.pc = pc[i];
    r.target = target[i];
    const std::uint8_t m = rmeta[i];
    r.type = DecodedBlock::typeOf(m);
    r.taken = DecodedBlock::takenOf(m);
    r.slot = static_cast<std::uint8_t>(DecodedBlock::slotOf(m));
    return r;
}

std::shared_ptr<const DecodedTrace>
decodeTrace(const TraceReader& reader)
{
    auto out = std::make_shared<DecodedTrace>();
    out->meta = reader.meta();
    out->digest = reader.contentDigest();
    out->pc.reserve(reader.recordCount());
    out->target.reserve(reader.recordCount());
    out->rmeta.reserve(reader.recordCount());

    DecodedBlock block;
    for (std::size_t b = 0; b < reader.blockCount(); ++b) {
        reader.decodeBlock(b, block);
        out->pc.insert(out->pc.end(), block.pc.begin(), block.pc.end());
        out->target.insert(out->target.end(), block.target.begin(),
                           block.target.end());
        out->rmeta.insert(out->rmeta.end(), block.meta.begin(),
                          block.meta.end());
    }
    return out;
}

std::shared_ptr<const DecodedTrace>
loadTrace(const std::string& path)
{
    TraceReader reader(path);
    return decodeTrace(reader);
}

// ---- TraceCursor -------------------------------------------------------

TraceCursor::TraceCursor(std::shared_ptr<const DecodedTrace> trace)
    : trace_(std::move(trace))
{
    if (!trace_)
        throw guard::CheckpointError("trace cursor", "null trace");
}

void
TraceCursor::fail(const std::string& detail) const
{
    throw guard::CheckpointError(
        "trace '" + trace_->meta.name + "' record " +
            std::to_string(pos_),
        detail);
}

std::uint8_t
TraceCursor::expect(Addr pc, bool cond)
{
    if (pos_ >= trace_->size()) {
        fail("trace exhausted (captured for " +
             std::to_string(trace_->meta.sourceInsts) +
             " committed instructions)");
    }
    const std::uint8_t m = trace_->rmeta[pos_];
    const bool is_cond = DecodedBlock::typeOf(m) == RecordType::Cond;
    if (is_cond != cond)
        fail("record type desync (trace does not match this program)");
    if (trace_->pc[pos_] != pc) {
        fail("site desync: trace has pc 0x" /* hex not worth a stream */ +
             std::to_string(trace_->pc[pos_]) + ", oracle is at " +
             std::to_string(pc));
    }
    return m;
}

bool
TraceCursor::nextCond(Addr pc)
{
    const std::uint8_t m = expect(pc, true);
    ++pos_;
    return DecodedBlock::takenOf(m);
}

Addr
TraceCursor::nextIndirect(Addr pc)
{
    expect(pc, false);
    return trace_->target[pos_++];
}

void
TraceCursor::seek(std::uint64_t idx)
{
    if (idx > trace_->size())
        fail("seek beyond the end of the trace");
    pos_ = idx;
}

// ---- StreamCursor ------------------------------------------------------

StreamCursor::StreamCursor(const std::string& path) : reader_(path) {}

void
StreamCursor::fail(const std::string& detail) const
{
    throw guard::CheckpointError(
        "trace '" + reader_.meta().name + "' record " +
            std::to_string(pos_),
        detail);
}

void
StreamCursor::ensureBlock()
{
    if (pos_ >= block_.firstRecord &&
        pos_ < block_.firstRecord + block_.size() && block_.size() > 0) {
        return;
    }
    // Block-index seek: decode exactly the block holding pos_.
    reader_.decodeBlock(reader_.findBlock(pos_), block_);
}

std::uint8_t
StreamCursor::expect(Addr pc, bool cond)
{
    if (pos_ >= reader_.recordCount()) {
        fail("trace exhausted (captured for " +
             std::to_string(reader_.meta().sourceInsts) +
             " committed instructions)");
    }
    ensureBlock();
    const std::size_t i =
        static_cast<std::size_t>(pos_ - block_.firstRecord);
    const std::uint8_t m = block_.meta[i];
    const bool is_cond = DecodedBlock::typeOf(m) == RecordType::Cond;
    if (is_cond != cond)
        fail("record type desync (trace does not match this program)");
    if (block_.pc[i] != pc)
        fail("site desync (trace does not match this program)");
    return m;
}

bool
StreamCursor::nextCond(Addr pc)
{
    const std::uint8_t m = expect(pc, true);
    ++pos_;
    return DecodedBlock::takenOf(m);
}

Addr
StreamCursor::nextIndirect(Addr pc)
{
    expect(pc, false);
    const std::size_t i =
        static_cast<std::size_t>(pos_ - block_.firstRecord);
    ++pos_;
    return block_.target[i];
}

void
StreamCursor::seek(std::uint64_t idx)
{
    if (idx > reader_.recordCount())
        fail("seek beyond the end of the trace");
    pos_ = idx;
}

// ---- validateReplayMeta ------------------------------------------------

void
validateReplayMeta(const TraceMeta& tm, const prog::Program& program,
                   std::uint64_t oracle_seed, std::uint64_t total_insts)
{
    if (tm.kind != TraceKind::CapturedOracle) {
        throw guard::ConfigError(
            "replayTrace",
            "'" + tm.name + "' is an imported (external) trace; "
            "full-core replay needs a capture-mode trace "
            "(cobra_sim --capture-trace)");
    }
    if (tm.programFingerprint != prog::programFingerprint(program)) {
        throw guard::ConfigError(
            "replayTrace",
            "trace '" + tm.name + "' was captured from a different "
            "program than workload '" + program.name() + "'");
    }
    if (tm.oracleSeed != oracle_seed) {
        throw guard::ConfigError(
            "replayTrace",
            "trace '" + tm.name + "' was captured with oracle seed " +
                std::to_string(tm.oracleSeed) +
                ", but this run is configured with " +
                std::to_string(oracle_seed));
    }
    if (total_insts > tm.sourceInsts) {
        throw guard::ConfigError(
            "replayTrace",
            "trace '" + tm.name + "' guarantees " +
                std::to_string(tm.sourceInsts) +
                " committed instructions, but warmup+measured is " +
                std::to_string(total_insts) +
                "; recapture with a larger budget");
    }
}

// ---- captureTrace ------------------------------------------------------

TraceMeta
captureTrace(const prog::Program& program, const std::string& path,
             std::uint64_t insts, std::uint64_t seed,
             unsigned fetch_width)
{
    TraceMeta meta;
    meta.kind = TraceKind::CapturedOracle;
    meta.fetchWidth = fetch_width;
    meta.oracleSeed = seed;
    meta.programFingerprint = prog::programFingerprint(program);
    meta.sourceInsts = insts;
    meta.name = program.name();

    TraceWriter writer(path, meta);
    exec::Oracle oracle(program, seed);
    const std::uint64_t total = insts + kCaptureSlackInsts;
    for (std::uint64_t i = 0; i < total; ++i) {
        const exec::DynInst& di = oracle.consume();
        switch (di.si->op) {
          case prog::OpClass::CondBranch: {
            TraceRecord r;
            r.pc = di.pc;
            r.type = RecordType::Cond;
            r.taken = di.taken;
            // Static taken-target, like trace::recordTrace: untaken
            // records carry no target byte.
            r.target = di.taken ? di.nextPc : kInvalidAddr;
            r.slot = static_cast<std::uint8_t>(
                (di.pc / kInstBytes) & (fetch_width - 1));
            writer.add(r);
            break;
          }
          case prog::OpClass::IndirectJump:
          case prog::OpClass::IndirectCall: {
            TraceRecord r;
            r.pc = di.pc;
            r.type = di.si->op == prog::OpClass::IndirectJump
                         ? RecordType::IndirectJump
                         : RecordType::IndirectCall;
            r.taken = true;
            r.target = di.nextPc;
            r.slot = static_cast<std::uint8_t>(
                (di.pc / kInstBytes) & (fetch_width - 1));
            writer.add(r);
            break;
          }
          default:
            break;
        }
        oracle.retireUpTo(di.seq);
    }
    writer.finalize();
    return writer.meta();
}

} // namespace cobra::trace
