#include "trace/batch_eval.hpp"

#include <algorithm>
#include <memory>

#include "guard/errors.hpp"
#include "sim/sweep.hpp"
#include "trace/replay.hpp"

namespace cobra::trace {
namespace {

/** Normalized view of one conditional-branch record. */
struct Rec
{
    Addr pc;
    unsigned slot;
    bool taken;
    Addr target;
};

inline std::size_t
traceLen(const BranchTrace& t)
{
    return t.records.size();
}

inline std::size_t
traceLen(const DecodedTrace& t)
{
    return t.size();
}

/** Fetch record @p n; false when it is not a conditional branch. */
inline bool
fetchRec(const BranchTrace& t, std::size_t n, Rec& r)
{
    const BranchRecord& br = t.records[n];
    r = Rec{br.pc, br.slot, br.taken, br.target};
    return true;
}

inline bool
fetchRec(const DecodedTrace& t, std::size_t n, Rec& r)
{
    if (t.typeAt(n) != RecordType::Cond)
        return false;
    r = Rec{t.pc[n], t.slotAt(n), t.takenAt(n), t.target[n]};
    return true;
}

/** Fill a failed lane's error fields from the in-flight exception. */
void
captureLaneException(BatchLaneResult& out)
{
    out.exception = std::current_exception();
    try {
        throw;
    } catch (const std::exception& e) {
        out.error = e.what();
        out.errorClass = guard::errorClassOf(e);
    } catch (...) {
        out.error = "unknown exception";
        out.errorClass = "unknown";
    }
}

/** One decoded record plus its warmup disposition — shared by every
 *  lane, so the per-record decode/warmup logic runs once per block
 *  instead of once per lane. */
struct BlockRec
{
    Rec r;
    bool measured;
};

/**
 * Evaluate lanes [b, e) in one pass over the trace. A lane that
 * throws — at construction or mid-stream — is captured into its
 * result slot and dropped from the wavefront; the surviving lanes
 * keep streaming undisturbed (their state never depended on it).
 */
template <typename Trace>
void
runChunk(const Trace& trace, std::size_t warmup,
         std::vector<BatchLane>& lanes, std::size_t b, std::size_t e,
         bool specialize, std::size_t block_recs,
         std::vector<BatchLaneResult>& out)
{
    const std::size_t m = e - b;
    std::vector<std::unique_ptr<TraceDrivenEvaluator>> evs(m);
    std::vector<TraceResult> res(m);
    // Lanes still streaming, by chunk-local index. Kept as a dense
    // list so the record loop carries no per-dead-lane branch.
    std::vector<std::size_t> live;
    live.reserve(m);
    for (std::size_t k = 0; k < m; ++k) {
        BatchLaneResult& o = out[b + k];
        o.label = lanes[b + k].label;
        try {
            evs[k] = std::make_unique<TraceDrivenEvaluator>(
                lanes[b + k].predictor(), lanes[b + k].ghistBits,
                lanes[b + k].lhistBits);
            if (specialize)
                evs[k]->specialize();
            // Lanes take the fused packet sweep: one composer call
            // per record instead of a bundle-returning walk per
            // stage. Bit-identical (the serial evaluator keeps the
            // per-stage reference walk; tests compare the two).
            evs[k]->setFusedPredict(true);
            o.loop = evs[k]->specialized() ? "specialized" : "generic";
            live.push_back(k);
        } catch (...) {
            captureLaneException(o);
            evs[k].reset();
        }
    }

    auto drop = [&](std::size_t k) {
        captureLaneException(out[b + k]);
        evs[k].reset();
        live.erase(std::find(live.begin(), live.end(), k));
    };

    // The blocked wavefront: decode a block of records once, then
    // rotate the live lanes through it — each lane runs the whole
    // block with its tables cache-hot before the next lane's working
    // set displaces them. (A per-record rotation measures *slower*
    // than serial on the reference container: every record touches
    // every lane's tables, so the effective working set is the sum
    // of all lanes', and the interleave thrashes what the serial
    // walk keeps resident.) Each lane still executes exactly the
    // serial predict-then-update record sequence, so results are
    // identical for any block size.
    const std::size_t len = traceLen(trace);
    std::size_t cond = 0;
    std::vector<BlockRec> block;
    block.reserve(std::min(block_recs, len));
    Rec r;
    for (std::size_t n = 0; n < len && !live.empty();) {
        block.clear();
        for (; n < len && block.size() < block_recs; ++n) {
            if (!fetchRec(trace, n, r))
                continue;
            block.push_back({r, cond >= warmup});
            ++cond;
        }
        for (std::size_t i = 0; i < live.size(); ++i) {
            const std::size_t k = live[i];
            TraceDrivenEvaluator& ev = *evs[k];
            try {
                for (const BlockRec& br : block) {
                    ev.predictStep(br.r.pc, br.r.slot, br.r.taken,
                                   br.r.target, br.measured, res[k]);
                    ev.updateStep();
                }
            } catch (...) {
                drop(k);
                --i;
            }
        }
    }
    for (std::size_t k = 0; k < m; ++k)
        if (out[b + k].ok())
            out[b + k].result = res[k];
}

} // namespace

BatchTraceEvaluator::BatchTraceEvaluator(unsigned jobs) : jobs_(jobs)
{
}

void
BatchTraceEvaluator::setChunkLanes(unsigned n)
{
    chunkLanes_ = n;
}

void
BatchTraceEvaluator::setBlockRecords(std::size_t n)
{
    blockRecs_ = n == 0 ? 1 : n;
}

std::size_t
BatchTraceEvaluator::addLane(BatchLane lane)
{
    lanes_.push_back(std::move(lane));
    return lanes_.size() - 1;
}

template <typename Trace>
std::vector<BatchLaneResult>
BatchTraceEvaluator::run(const Trace& trace, std::size_t warmup)
{
    std::vector<BatchLane> lanes = std::move(lanes_);
    lanes_.clear();
    std::vector<BatchLaneResult> out(lanes.size());
    if (lanes.empty())
        return out;

    const sim::SweepEngine eng(jobs_);
    std::size_t chunk = chunkLanes_;
    if (chunk == 0) {
        // Auto: aim for ~4 tasks per worker so the work-stealing
        // pool balances, with chunks as large as that allows (block
        // decode amortizes across a chunk's lanes).
        const std::size_t target =
            std::max<std::size_t>(4, std::size_t{4} * eng.jobs());
        chunk = std::max<std::size_t>(
            1, (lanes.size() + target - 1) / target);
    }
    const std::size_t numChunks = (lanes.size() + chunk - 1) / chunk;
    eng.runTasks(numChunks, [&](std::size_t c) {
        const std::size_t b = c * chunk;
        const std::size_t e = std::min(lanes.size(), b + chunk);
        runChunk(trace, warmup, lanes, b, e, specialize_, blockRecs_,
                 out);
    });
    return out;
}

std::vector<BatchLaneResult>
BatchTraceEvaluator::evaluate(const BranchTrace& trace,
                              std::size_t warmup)
{
    return run(trace, warmup);
}

std::vector<BatchLaneResult>
BatchTraceEvaluator::evaluate(const DecodedTrace& trace,
                              std::size_t warmup)
{
    return run(trace, warmup);
}

} // namespace cobra::trace
