/**
 * @file
 * The COBRA binary branch-trace container (ROADMAP item 2): a compact
 * on-disk format for committed control-flow streams — conditional
 * branch outcomes and indirect targets — that capture mode freezes
 * from the synthetic oracle and trace_convert imports from course
 * traces (CBP-style text records, bzip2'd Alpha traces).
 *
 * Layout: a fixed checksummed header, the source name, a run of
 * delta-encoded blocks (zigzag-varint PC deltas, one packed meta byte
 * per record, optional per-block deflate when the build has zlib),
 * and a seekable block index at the tail. Every structural field is
 * validated on open — magic, version, checksums over header, payload
 * and index — and every malformed byte raises guard::CheckpointError
 * (the warp snapshot discipline) instead of decoding garbage. The
 * reader maps the file and decodes whole blocks into SoA record
 * strips; random access goes through the block index, so a seek never
 * decodes more than one block.
 */

#ifndef COBRA_TRACE_FORMAT_HPP
#define COBRA_TRACE_FORMAT_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace cobra::trace {

/** What kind of control-flow record this is. */
enum class RecordType : std::uint8_t
{
    Cond = 0,         ///< Conditional branch (direction recorded).
    IndirectJump = 1, ///< Register-target jump (target recorded).
    IndirectCall = 2, ///< Register-target call (target recorded).
};

const char* recordTypeName(RecordType t);

/** One decoded control-flow record. */
struct TraceRecord
{
    Addr pc = kInvalidAddr;     ///< Instruction address.
    Addr target = kInvalidAddr; ///< Taken target; kInvalidAddr if none.
    RecordType type = RecordType::Cond;
    std::uint8_t slot = 0;      ///< Fetch-packet slot of pc.
    bool taken = false;

    bool operator==(const TraceRecord&) const = default;
};

/** Provenance of a trace file. */
enum class TraceKind : std::uint8_t
{
    CapturedOracle = 1, ///< Frozen committed stream of a synthetic Program.
    External = 2,       ///< Imported (trace_convert); no Program attached.
};

const char* traceKindName(TraceKind k);

/** Header metadata of a trace file. */
struct TraceMeta
{
    TraceKind kind = TraceKind::External;
    unsigned fetchWidth = 4;   ///< Packet width slots were derived from.
    std::uint64_t oracleSeed = 0;         ///< CapturedOracle only.
    std::uint64_t programFingerprint = 0; ///< CapturedOracle only.
    /**
     * Committed-instruction budget this capture guarantees: replaying
     * the same Program for up to this many committed instructions
     * cannot exhaust the trace (capture records slack beyond it for
     * the frontend's speculative overrun). 0 for imported traces.
     */
    std::uint64_t sourceInsts = 0;
    std::uint64_t recordCount = 0;
    std::uint64_t condCount = 0; ///< Cond records (rest are indirect).
    std::string name;            ///< Workload / source name.
};

/** Container constants, shared by writer, reader and tests. */
struct TraceFile
{
    static constexpr std::uint32_t kMagic = 0x52544243u; ///< "CBTR".
    static constexpr std::uint32_t kVersion = 1;
    static constexpr std::size_t kHeaderBytes = 96;
    /** Records per block (the unit of decode and of seek). */
    static constexpr std::uint32_t kBlockRecords = 4096;
    /** Header flag: at least one block is deflate-compressed. */
    static constexpr std::uint32_t kFlagDeflate = 1u << 0;
    /** Per-block codec ids. */
    static constexpr std::uint8_t kCodecRaw = 0;
    static constexpr std::uint8_t kCodecDeflate = 1;
};

/** True when this build can compress/decompress deflate blocks. */
bool deflateAvailable();

/**
 * Streaming writer. Records are buffered into blocks and flushed as
 * each block fills; finalize() writes the block index and patches the
 * header (record counts, index offset, checksums). The file is not a
 * valid trace until finalize() returns. Write failures raise
 * guard::CheckpointError; an unfinalized writer removes its partial
 * file on destruction so crashes cannot leave plausible droppings.
 */
class TraceWriter
{
  public:
    /** @p meta counts are ignored; they are computed while writing. */
    TraceWriter(const std::string& path, const TraceMeta& meta);
    ~TraceWriter();

    TraceWriter(const TraceWriter&) = delete;
    TraceWriter& operator=(const TraceWriter&) = delete;

    void add(const TraceRecord& r);

    /** Flush, write the index, patch and checksum the header. */
    void finalize();

    std::uint64_t recordCount() const { return recordCount_; }

    /** Written metadata; counts are final once finalize() returned. */
    const TraceMeta& meta() const { return meta_; }

  private:
    void flushBlock();

    struct IndexEntry
    {
        std::uint64_t offset = 0;      ///< File offset of the block.
        std::uint64_t firstRecord = 0; ///< Global index of record 0.
        std::uint32_t records = 0;
    };

    std::string path_;
    TraceMeta meta_;
    void* file_ = nullptr; ///< std::FILE*, kept out of the header.
    bool finalized_ = false;
    std::uint64_t recordCount_ = 0;
    std::uint64_t condCount_ = 0;
    std::uint64_t payloadChecksum_ = 0;
    std::uint32_t flags_ = 0;
    std::vector<TraceRecord> pending_;
    std::vector<IndexEntry> index_;
    std::vector<std::uint8_t> scratch_; ///< Encode buffer, reused.
};

/** One block decoded into SoA strips. */
struct DecodedBlock
{
    std::uint64_t firstRecord = 0;
    std::vector<Addr> pc;
    std::vector<Addr> target;
    /** Packed per-record meta byte (see packMeta/unpack helpers). */
    std::vector<std::uint8_t> meta;

    std::size_t size() const { return pc.size(); }

    static RecordType typeOf(std::uint8_t m)
    {
        return static_cast<RecordType>(m & 0x3);
    }
    static bool takenOf(std::uint8_t m) { return (m >> 2) & 1; }
    static unsigned slotOf(std::uint8_t m) { return (m >> 4) & 0x7; }

    TraceRecord record(std::size_t i) const;
};

/**
 * mmap-backed reader. Construction maps the file and validates header
 * and index (magic, version, all three checksums); any mismatch is a
 * guard::CheckpointError naming the file. Block payloads are verified
 * by checksum as they are decoded, so corruption is always caught at
 * the first touched block.
 */
class TraceReader
{
  public:
    explicit TraceReader(const std::string& path);
    ~TraceReader();

    TraceReader(const TraceReader&) = delete;
    TraceReader& operator=(const TraceReader&) = delete;

    const TraceMeta& meta() const { return meta_; }
    const std::string& path() const { return path_; }

    std::uint64_t recordCount() const { return meta_.recordCount; }
    std::size_t blockCount() const { return index_.size(); }

    std::uint64_t blockFirstRecord(std::size_t b) const
    {
        return index_[b].firstRecord;
    }
    std::uint32_t blockRecords(std::size_t b) const
    {
        return index_[b].records;
    }

    /** Decode block @p b into @p out (strips are overwritten). */
    void decodeBlock(std::size_t b, DecodedBlock& out) const;

    /** Block containing global record @p idx (binary search). */
    std::size_t findBlock(std::uint64_t idx) const;

    /** FNV-1a over the whole file: the content-addressed cache key. */
    std::uint64_t contentDigest() const { return digest_; }

    /** File size in bytes (for reports). */
    std::uint64_t fileBytes() const;

  private:
    struct IndexEntry
    {
        std::uint64_t offset = 0;
        std::uint64_t firstRecord = 0;
        std::uint32_t records = 0;
    };

    [[noreturn]] void fail(const std::string& detail) const;

    std::string path_;
    const std::uint8_t* data_ = nullptr;
    std::size_t size_ = 0;
    TraceMeta meta_;
    std::uint32_t flags_ = 0;
    std::uint64_t digest_ = 0;
    std::vector<IndexEntry> index_;
};

} // namespace cobra::trace

#endif // COBRA_TRACE_FORMAT_HPP
