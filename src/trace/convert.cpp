#include "trace/convert.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "guard/errors.hpp"

#ifdef COBRA_HAVE_BZ2
#include <bzlib.h>
#endif

namespace cobra::trace {

bool
bz2Available()
{
#ifdef COBRA_HAVE_BZ2
    return true;
#else
    return false;
#endif
}

bool
parseCbpLine(const std::string& line, std::uint64_t lineno,
             unsigned fetch_width, TraceRecord& out)
{
    std::size_t i = 0;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])))
        ++i;
    if (i == line.size() || line[i] == '#')
        return false;

    auto malformed = [&](const char* what) -> void {
        throw guard::CheckpointError(
            "cbp record line " + std::to_string(lineno), what);
    };

    // pc: hex, optional 0x prefix.
    if (line.compare(i, 2, "0x") == 0 || line.compare(i, 2, "0X") == 0)
        i += 2;
    Addr pc = 0;
    std::size_t digits = 0;
    while (i < line.size() &&
           std::isxdigit(static_cast<unsigned char>(line[i]))) {
        const char c = line[i];
        const unsigned d =
            c <= '9' ? static_cast<unsigned>(c - '0')
                     : static_cast<unsigned>(
                           std::tolower(static_cast<unsigned char>(c)) -
                           'a' + 10);
        if (pc > (kInvalidAddr >> 4))
            malformed("pc overflows 64 bits");
        pc = (pc << 4) | d;
        ++i;
        ++digits;
    }
    if (digits == 0)
        malformed("expected a hex pc");
    if (i == line.size() ||
        !std::isspace(static_cast<unsigned char>(line[i])))
        malformed("expected whitespace after the pc");
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])))
        ++i;
    if (i == line.size())
        malformed("missing outcome");

    bool taken = false;
    switch (line[i]) {
      case '0': case 'N': case 'n': taken = false; break;
      case '1': case 'T': case 't': taken = true; break;
      default:
        malformed("outcome must be 0/1/N/T");
    }
    ++i;
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])))
        ++i;
    if (i != line.size())
        malformed("trailing characters after the outcome");

    out = TraceRecord{};
    out.pc = pc;
    out.type = RecordType::Cond;
    out.taken = taken;
    out.target = kInvalidAddr;
    out.slot = static_cast<std::uint8_t>((pc / kInstBytes) &
                                         (fetch_width - 1));
    return true;
}

ImportStats
importCbpText(std::istream& in, unsigned fetch_width, TraceWriter& writer)
{
    ImportStats stats;
    std::string line;
    std::uint64_t lineno = 0;
    TraceRecord r;
    while (std::getline(in, line)) {
        ++lineno;
        if (!parseCbpLine(line, lineno, fetch_width, r))
            continue;
        writer.add(r);
        ++stats.lines;
        ++stats.records;
        stats.taken += r.taken;
    }
    return stats;
}

namespace {

TraceMeta
externalMeta(const std::string& name, unsigned fetch_width)
{
    TraceMeta meta;
    meta.kind = TraceKind::External;
    meta.fetchWidth = fetch_width;
    meta.name = name;
    return meta;
}

} // namespace

ImportStats
convertCbpFile(const std::string& in_path, const std::string& out_path,
               const std::string& name, unsigned fetch_width)
{
    std::ifstream in(in_path);
    if (!in) {
        throw guard::CheckpointError("cbp trace " + in_path,
                                     "cannot open");
    }
    TraceWriter writer(out_path, externalMeta(name, fetch_width));
    ImportStats stats = importCbpText(in, fetch_width, writer);
    if (stats.records == 0) {
        throw guard::CheckpointError("cbp trace " + in_path,
                                     "no records found");
    }
    writer.finalize();
    return stats;
}

ImportStats
convertAlphaBz2File(const std::string& in_path,
                    const std::string& out_path, const std::string& name,
                    unsigned fetch_width)
{
#ifdef COBRA_HAVE_BZ2
    std::FILE* f = std::fopen(in_path.c_str(), "rb");
    if (f == nullptr) {
        throw guard::CheckpointError("alpha trace " + in_path,
                                     "cannot open");
    }
    int bzerr = BZ_OK;
    BZFILE* bz = BZ2_bzReadOpen(&bzerr, f, 0, 0, nullptr, 0);
    if (bz == nullptr || bzerr != BZ_OK) {
        if (bz != nullptr)
            BZ2_bzReadClose(&bzerr, bz);
        std::fclose(f);
        throw guard::CheckpointError("alpha trace " + in_path,
                                     "not a bzip2 stream");
    }

    // Inflate the whole stream into a string; Alpha course traces are
    // tens of MB decompressed, well within memory.
    std::string text;
    char buf[1 << 16];
    while (true) {
        const int got = BZ2_bzRead(&bzerr, bz, buf, sizeof(buf));
        if (got > 0)
            text.append(buf, static_cast<std::size_t>(got));
        if (bzerr == BZ_STREAM_END)
            break;
        if (bzerr != BZ_OK) {
            BZ2_bzReadClose(&bzerr, bz);
            std::fclose(f);
            throw guard::CheckpointError("alpha trace " + in_path,
                                         "bzip2 stream corrupt");
        }
    }
    BZ2_bzReadClose(&bzerr, bz);
    std::fclose(f);

    std::istringstream in(text);
    TraceWriter writer(out_path, externalMeta(name, fetch_width));
    ImportStats stats = importCbpText(in, fetch_width, writer);
    if (stats.records == 0) {
        throw guard::CheckpointError("alpha trace " + in_path,
                                     "no records found");
    }
    writer.finalize();
    return stats;
#else
    (void)in_path;
    (void)out_path;
    (void)name;
    (void)fetch_width;
    throw guard::CheckpointError(
        "alpha trace", "this build has no libbz2 (bzip2'd Alpha traces "
                       "unsupported)");
#endif
}

} // namespace cobra::trace
