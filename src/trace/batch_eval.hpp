/**
 * @file
 * Wavefront batch trace evaluation. The §II-B trace-driven evaluator
 * (trace/trace.hpp) is the search tiers' cheap screening metric, and
 * the search driver needs it for *many* candidate designs over the
 * *same* recorded trace. Walking the trace once per candidate
 * serializes M full streams, each paying the stream decode and the
 * per-stage composer walk in full. This module streams the trace
 * ONCE and fans blocks of records out across M independent candidate
 * lanes — a blocked wavefront: each block is decoded (record fetch,
 * warmup disposition) once for all lanes, each lane then runs the
 * block with its tables cache-hot before the rotation moves on, and
 * every lane takes the fused packet sweep
 * (ComposedPredictor::evaluatePacket) plus, where its tuple is
 * registered, the devirtualized fast path. Lanes share no predictor
 * state, so any cross-lane interleaving is exact: each lane sees
 * precisely the serial evaluator's record sequence, and its
 * TraceResult is bit-identical to a solo run (enforced by
 * tests/test_batch_eval.cpp).
 *
 * Lane chunks are scheduled on the work-stealing SweepEngine pool;
 * results come back in lane submission order regardless of the
 * worker count.
 */

#ifndef COBRA_TRACE_BATCH_EVAL_HPP
#define COBRA_TRACE_BATCH_EVAL_HPP

#include <cstddef>
#include <exception>
#include <functional>
#include <string>
#include <vector>

#include "bpu/composer.hpp"
#include "trace/trace.hpp"

namespace cobra::trace {

/** One candidate-design lane of a batched evaluation. */
struct BatchLane
{
    /** Label echoed into the lane's result (candidate id). */
    std::string label;

    /**
     * Builds the lane's composed pipeline. Called once per
     * evaluate(), on the worker thread that runs the lane's chunk —
     * construction cost parallelizes with the pool.
     */
    std::function<bpu::ComposedPredictor()> predictor;

    /** Idealized history lengths (TraceDrivenEvaluator ctor args). */
    unsigned ghistBits = 64;
    unsigned lhistBits = 32;
};

/** Per-lane outcome, in lane submission order. */
struct BatchLaneResult
{
    std::string label;
    TraceResult result;
    /** "specialized" or "generic" — which loop the lane took. */
    std::string loop;
    /** Set when the lane failed; result is then meaningless. */
    std::string error;
    /** guard::errorClassOf taxonomy class for a failed lane. */
    std::string errorClass;
    /** The original exception of a failed lane, for rethrowing. */
    std::exception_ptr exception;

    bool ok() const { return error.empty(); }
};

/**
 * Batched multi-design trace evaluator: add lanes, then evaluate
 * them all in one pass over a trace. A failing lane (bad topology
 * factory, mid-stream contract violation) is captured in its own
 * result slot and does not disturb the other lanes.
 */
class BatchTraceEvaluator
{
  public:
    /** @param jobs SweepEngine worker count; 0 means defaultJobs(). */
    explicit BatchTraceEvaluator(unsigned jobs = 1);

    /**
     * Lanes evaluated together by one worker, per task. Small chunks
     * schedule better across workers; larger chunks amortize each
     * block's decode over more lanes. 0 (the default) sizes chunks
     * automatically from the worker count: enough tasks to keep
     * every worker busy, as large as that allows.
     */
    void setChunkLanes(unsigned n);

    /**
     * Records per wavefront block: how long one lane streams before
     * the rotation moves to the next lane. Larger blocks keep each
     * lane's tables resident longer; smaller blocks tighten the
     * interleave. Any value is bit-identical — this is purely a
     * host-side schedule.
     */
    void setBlockRecords(std::size_t n);

    /**
     * Bind each lane's devirtualized fused loop when its tuple is
     * registered (bpu/specialize.hpp); unregistered tuples take the
     * generic path. On by default; results are bit-identical either
     * way (the exactness CI leg runs both).
     */
    void setSpecialize(bool on) { specialize_ = on; }

    /** Queue a lane; returns its index in the results vector. */
    std::size_t addLane(BatchLane lane);

    /** Lanes queued for the next evaluate(). */
    std::size_t pending() const { return lanes_.size(); }

    /**
     * Stream @p trace once through every queued lane; skips the
     * first @p warmup records per lane, exactly like
     * TraceDrivenEvaluator::evaluate. Clears the lane set.
     */
    std::vector<BatchLaneResult> evaluate(const BranchTrace& trace,
                                          std::size_t warmup = 0);

    /** DecodedTrace overload: conditional records only, as serial. */
    std::vector<BatchLaneResult> evaluate(const DecodedTrace& trace,
                                          std::size_t warmup = 0);

  private:
    template <typename Trace>
    std::vector<BatchLaneResult> run(const Trace& trace,
                                     std::size_t warmup);

    std::vector<BatchLane> lanes_;
    unsigned jobs_;
    unsigned chunkLanes_ = 0;
    std::size_t blockRecs_ = 4096;
    bool specialize_ = true;
};

} // namespace cobra::trace

#endif // COBRA_TRACE_BATCH_EVAL_HPP
