/**
 * @file
 * Trace replay: capture mode (freeze a synthetic workload's committed
 * control-flow stream into a trace file), fully-decoded immutable
 * traces shared across sweep replicas, and the CfSource cursors that
 * feed the oracle executor from recorded bytes.
 *
 * Sharing model: a DecodedTrace is decoded once (SoA strips over all
 * blocks) and held by shared_ptr; every replica/point gets its own
 * tiny TraceCursor over the shared strips, so an N-point sweep pays
 * one decode per workload regardless of N (prog::WorkloadCache keys
 * decoded traces by content digest). StreamCursor is the low-memory
 * alternative: it decodes one block at a time straight off the mmap
 * and seeks through the block index — the path warp-style restores
 * use when a full decode is not wanted.
 */

#ifndef COBRA_TRACE_REPLAY_HPP
#define COBRA_TRACE_REPLAY_HPP

#include <cstdint>
#include <memory>
#include <string>

#include "exec/oracle.hpp"
#include "program/program.hpp"
#include "trace/format.hpp"

namespace cobra::trace {

/**
 * A trace fully decoded into immutable SoA record strips, plus its
 * header metadata and content digest. Construction validates every
 * block checksum; afterwards reads are plain array indexing.
 */
struct DecodedTrace
{
    TraceMeta meta;
    std::uint64_t digest = 0; ///< Content digest of the source file.
    std::vector<Addr> pc;
    std::vector<Addr> target;
    std::vector<std::uint8_t> rmeta; ///< Packed meta (DecodedBlock bits).

    std::size_t size() const { return pc.size(); }

    RecordType typeAt(std::size_t i) const
    {
        return DecodedBlock::typeOf(rmeta[i]);
    }
    bool takenAt(std::size_t i) const
    {
        return DecodedBlock::takenOf(rmeta[i]);
    }
    unsigned slotAt(std::size_t i) const
    {
        return DecodedBlock::slotOf(rmeta[i]);
    }

    TraceRecord record(std::size_t i) const;
};

/** Decode every block of @p reader into one shared immutable trace. */
std::shared_ptr<const DecodedTrace> decodeTrace(const TraceReader& reader);

/** Open, validate and fully decode a trace file. */
std::shared_ptr<const DecodedTrace> loadTrace(const std::string& path);

/**
 * Replay cursor over a shared DecodedTrace: the per-replica view.
 * Validates the site of every read; desync or exhaustion raises
 * guard::CheckpointError naming the record index.
 */
class TraceCursor final : public exec::CfSource
{
  public:
    explicit TraceCursor(std::shared_ptr<const DecodedTrace> trace);

    bool nextCond(Addr pc) override;
    Addr nextIndirect(Addr pc) override;
    void seek(std::uint64_t idx) override;
    std::uint64_t position() const override { return pos_; }

    const DecodedTrace& trace() const { return *trace_; }

  private:
    [[noreturn]] void fail(const std::string& detail) const;
    std::uint8_t expect(Addr pc, bool cond);

    std::shared_ptr<const DecodedTrace> trace_;
    std::uint64_t pos_ = 0;
};

/**
 * Replay cursor that owns its TraceReader and decodes one block at a
 * time from the mapped file; seek() binary-searches the block index
 * and decodes only the landing block. Bit-identical to TraceCursor
 * over the same file (tested), at O(block) memory instead of O(trace).
 */
class StreamCursor final : public exec::CfSource
{
  public:
    explicit StreamCursor(const std::string& path);

    bool nextCond(Addr pc) override;
    Addr nextIndirect(Addr pc) override;
    void seek(std::uint64_t idx) override;
    std::uint64_t position() const override { return pos_; }

    const TraceMeta& meta() const { return reader_.meta(); }

  private:
    [[noreturn]] void fail(const std::string& detail) const;
    std::uint8_t expect(Addr pc, bool cond);
    void ensureBlock();

    TraceReader reader_;
    DecodedBlock block_;
    std::uint64_t pos_ = 0;
};

/**
 * Capture mode: architecturally execute @p program for
 * @p insts + slack committed instructions and freeze the committed
 * control-flow stream (conditional directions, indirect targets) into
 * a CapturedOracle trace file at @p path. The recorded slack
 * (kCaptureSlackInsts) covers the frontend's speculative overrun
 * beyond the budget, so the written trace guarantees any replay of up
 * to @p insts committed instructions; meta.sourceInsts records that
 * guarantee. Returns the finalized header metadata.
 */
TraceMeta captureTrace(const prog::Program& program,
                       const std::string& path, std::uint64_t insts,
                       std::uint64_t seed = 0xD15EA5E,
                       unsigned fetch_width = 4);

/** Committed-instruction slack captureTrace records beyond its budget
 *  (bounds the frontend's maximum speculative overrun generously). */
inline constexpr std::uint64_t kCaptureSlackInsts = 65536;

/**
 * Check that a trace can drive a full-core replay of @p program with
 * oracle seed @p oracle_seed for @p total_insts committed instructions
 * (warmup + measured): captured kind, matching program fingerprint,
 * matching seed, sufficient guaranteed budget. Throws
 * guard::ConfigError naming the violated rule. Shared by the
 * Simulator constructor and cobra_serve admission, so a request is
 * rejected up front with exactly the message a point would fail with.
 */
void validateReplayMeta(const TraceMeta& meta,
                        const prog::Program& program,
                        std::uint64_t oracle_seed,
                        std::uint64_t total_insts);

} // namespace cobra::trace

#endif // COBRA_TRACE_REPLAY_HPP
