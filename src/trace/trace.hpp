/**
 * @file
 * Trace-driven evaluation substrate (paper §II-B). The paper's core
 * methodological argument is that trace-based simulators (ChampSim,
 * CBP) cannot model speculation, superscalar fetch, or update delay,
 * and therefore misestimate predictor accuracy. This module provides
 * exactly such an idealized trace-driven evaluator for the *same*
 * composed predictor pipelines the core model runs, so the modelling
 * error can be measured directly (bench_trace_vs_execution).
 */

#ifndef COBRA_TRACE_TRACE_HPP
#define COBRA_TRACE_TRACE_HPP

#include <cstdint>
#include <vector>

#include "bpu/composer.hpp"
#include "exec/oracle.hpp"
#include "program/program.hpp"

namespace cobra::trace {

struct DecodedTrace; // trace/replay.hpp

/** One record of a CBP-style conditional-branch trace. */
struct BranchRecord
{
    Addr pc = kInvalidAddr;   ///< Fetch-packet PC of the branch.
    unsigned slot = 0;        ///< Aligned slot within the packet.
    bool taken = false;
    Addr target = kInvalidAddr;
};

/** A recorded architectural branch trace. */
struct BranchTrace
{
    std::vector<BranchRecord> records;

    std::size_t size() const { return records.size(); }
};

/**
 * Record the committed conditional-branch stream of a program by
 * running the oracle executor directly (this is what a hardware
 * trace-capture or a functional simulator would produce).
 */
BranchTrace recordTrace(const prog::Program& program,
                        std::size_t num_branches,
                        std::uint64_t seed = 0xD15EA5E);

/** Results of a trace-driven evaluation. */
struct TraceResult
{
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;

    double
    accuracy() const
    {
        return branches == 0
                   ? 1.0
                   : 1.0 - static_cast<double>(mispredicts) / branches;
    }
};

/**
 * Idealized trace-driven evaluator: one branch at a time, histories
 * updated instantly and perfectly, updates applied immediately after
 * each prediction, no wrong-path pollution, no update delay, no
 * superscalar packet effects — the CBP-style methodology the paper
 * contrasts against.
 */
class TraceDrivenEvaluator
{
  public:
    /**
     * @param pred      The composed pipeline to evaluate (single-use).
     * @param ghistBits Global history length for the idealized run.
     */
    TraceDrivenEvaluator(bpu::ComposedPredictor pred,
                         unsigned ghist_bits = 64,
                         unsigned lhist_bits = 32);

    /**
     * Bind the devirtualized fused loop when the pipeline's tuple is
     * registered (bpu/specialize.hpp); bit-identical either way.
     */
    bool specialize() { return pred_.specialize(); }
    bool specialized() const { return pred_.specialized(); }

    /**
     * Route predictStep() through the composer's fused packet sweep
     * (ComposedPredictor::evaluatePacket) instead of the per-stage
     * evaluateStage() walk. Bit-identical results; off by default so
     * the serial evaluator stays the reference implementation the
     * exactness tests compare against. The batch evaluator turns
     * this on for its lanes.
     */
    void setFusedPredict(bool on) { fused_ = on; }
    bool fusedPredict() const { return fused_; }

    /** Evaluate the trace; skips the first @p warmup records. */
    TraceResult evaluate(const BranchTrace& trace,
                         std::size_t warmup = 0);

    /**
     * Evaluate the conditional-branch records of a decoded binary
     * trace (trace/replay.hpp); non-conditional records are skipped,
     * so a captured trace evaluates exactly like the recordTrace
     * stream of the same workload. @p warmup counts conditional
     * records.
     */
    TraceResult evaluate(const DecodedTrace& trace,
                         std::size_t warmup = 0);

    /**
     * Split-phase step API for the wavefront batch evaluator
     * (trace/batch_eval.hpp). One idealized step is predictStep()
     * immediately followed by updateStep() for the same record; the
     * split lets a caller schedule many independent lanes' phases
     * around each other. Each lane still sees exactly the serial
     * call sequence, so results are bit-identical to step().
     */
    void predictStep(Addr pc, unsigned slot, bool taken, Addr target,
                     bool measured, TraceResult& res);

    /** Phase 2: resolve/update the record passed to predictStep(). */
    void updateStep();

    /**
     * Architecturally inert host-cache hint: pull the rows the next
     * record's predict phase will index toward the cache while other
     * lanes' work is in flight.
     */
    void prefetchNext(Addr pc);

    /** One idealized predict/update step; counts when @p measured. */
    void
    step(Addr pc, unsigned slot, bool taken, Addr target,
         bool measured, TraceResult& res)
    {
        predictStep(pc, slot, taken, target, measured, res);
        updateStep();
    }

  private:
    bpu::ComposedPredictor pred_;
    HistoryRegister ghist_;
    unsigned lhistBits_;
    std::vector<std::uint64_t> lhist_;

    // Hoisted per-record scratch: QueryState::reset() reuses its
    // component-result storage across records, so the stream loop
    // stops constructing/allocating per branch.
    unsigned numComps_;
    bool fused_ = false;
    bpu::QueryState q_;
    bpu::PredictionBundle bundle_;
    bpu::MetadataBundle metas_;

    // The record in flight between the two phases.
    Addr pc_ = kInvalidAddr;
    Addr target_ = kInvalidAddr;
    unsigned slot_ = 0;
    std::size_t lidx_ = 0;
    bool taken_ = false;
    bool mispredicted_ = false;
};

} // namespace cobra::trace

#endif // COBRA_TRACE_TRACE_HPP
