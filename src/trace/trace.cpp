#include "trace/trace.hpp"

#include "trace/replay.hpp"

namespace cobra::trace {

BranchTrace
recordTrace(const prog::Program& program, std::size_t num_branches,
            std::uint64_t seed)
{
    exec::Oracle oracle(program, seed);
    BranchTrace trace;
    trace.records.reserve(num_branches);
    const unsigned width = 4;
    while (trace.records.size() < num_branches) {
        const exec::DynInst& di = oracle.consume();
        if (di.isCondBranch()) {
            BranchRecord r;
            // Packet-align the PC the way the fetch unit would.
            r.pc = di.pc;
            r.slot = static_cast<unsigned>((di.pc >> 2) & (width - 1));
            r.taken = di.taken;
            r.target = di.taken ? di.nextPc : kInvalidAddr;
            trace.records.push_back(r);
        }
        oracle.retireUpTo(di.seq);
    }
    return trace;
}

TraceDrivenEvaluator::TraceDrivenEvaluator(bpu::ComposedPredictor pred,
                                           unsigned ghist_bits,
                                           unsigned lhist_bits)
    : pred_(std::move(pred)), ghist_(ghist_bits),
      lhistBits_(lhist_bits), lhist_(256, 0),
      numComps_(static_cast<unsigned>(pred_.components().size()))
{
}

void
TraceDrivenEvaluator::predictStep(Addr pc, unsigned slot_idx,
                                  bool taken, Addr target,
                                  bool measured, TraceResult& res)
{
    lidx_ = (pc >> 4) % lhist_.size();

    // Idealized predict: perfect, instantly-updated histories.
    q_.reset(pc, pred_.width(), numComps_, pred_.width());
    q_.captureHistory(ghist_, lhist_[lidx_]);
    if (fused_) {
        pred_.evaluatePacket(q_, bundle_);
    } else {
        bundle_ = bpu::PredictionBundle{};
        bundle_.width = pred_.width();
        for (unsigned d = 1; d <= pred_.maxLatency(); ++d)
            bundle_ = pred_.evaluateStage(q_, d);
    }

    const auto& slot = bundle_.slots[slot_idx];
    const bool pred = slot.valid && slot.taken;
    if (measured) {
        ++res.branches;
        res.mispredicts += pred != taken;
    }

    pc_ = pc;
    slot_ = slot_idx;
    taken_ = taken;
    target_ = target;
    mispredicted_ = pred != taken;
}

void
TraceDrivenEvaluator::updateStep()
{
    // Immediate, in-order update — no speculation, no delay.
    bpu::ResolveEvent ev;
    ev.pc = pc_;
    ev.ghist = &q_.ghist();
    ev.lhist = q_.lhist();
    ev.brMask[slot_] = true;
    ev.takenMask[slot_] = taken_;
    ev.cfiValid = taken_;
    ev.cfiIdx = slot_;
    ev.cfiType = bpu::CfiType::Br;
    ev.cfiTaken = taken_;
    ev.target = target_;
    ev.mispredicted = mispredicted_;
    ev.predicted = &bundle_;

    // Fire (speculative components like the loop predictor count
    // at query time, and in a trace model speculation is perfect).
    bpu::FireEvent fev;
    fev.pc = pc_;
    fev.finalPred = &bundle_;
    fev.ghist = &q_.ghist();
    fev.lhist = q_.lhist();
    metas_ = q_.metadata();
    pred_.fire(fev, metas_);
    if (ev.mispredicted) {
        // Immediate resolution: the fast mispredict event fires
        // right away (perfect repair, zero delay).
        pred_.mispredict(ev, metas_);
    }
    pred_.update(ev, metas_);

    ghist_.push(taken_);
    lhist_[lidx_] = ((lhist_[lidx_] << 1) | (taken_ ? 1 : 0)) &
                    maskBits(lhistBits_);
}

void
TraceDrivenEvaluator::prefetchNext(Addr pc)
{
    bpu::PredictContext ctx;
    ctx.pc = pc;
    ctx.validSlots = pred_.width();
    ctx.ghist = &ghist_;
    ctx.lhist = lhist_[(pc >> 4) % lhist_.size()];
    pred_.prefetchAll(ctx);
}

TraceResult
TraceDrivenEvaluator::evaluate(const BranchTrace& trace,
                               std::size_t warmup)
{
    TraceResult res;
    for (std::size_t n = 0; n < trace.records.size(); ++n) {
        const BranchRecord& r = trace.records[n];
        step(r.pc, r.slot, r.taken, r.target, n >= warmup, res);
    }
    return res;
}

TraceResult
TraceDrivenEvaluator::evaluate(const DecodedTrace& trace,
                               std::size_t warmup)
{
    TraceResult res;
    std::size_t cond = 0;
    for (std::size_t n = 0; n < trace.size(); ++n) {
        if (trace.typeAt(n) != RecordType::Cond)
            continue;
        step(trace.pc[n], trace.slotAt(n), trace.takenAt(n),
             trace.target[n], cond >= warmup, res);
        ++cond;
    }
    return res;
}

} // namespace cobra::trace
