#include "trace/trace.hpp"

#include "trace/replay.hpp"

namespace cobra::trace {

BranchTrace
recordTrace(const prog::Program& program, std::size_t num_branches,
            std::uint64_t seed)
{
    exec::Oracle oracle(program, seed);
    BranchTrace trace;
    trace.records.reserve(num_branches);
    const unsigned width = 4;
    while (trace.records.size() < num_branches) {
        const exec::DynInst& di = oracle.consume();
        if (di.isCondBranch()) {
            BranchRecord r;
            // Packet-align the PC the way the fetch unit would.
            r.pc = di.pc;
            r.slot = static_cast<unsigned>((di.pc >> 2) & (width - 1));
            r.taken = di.taken;
            r.target = di.taken ? di.nextPc : kInvalidAddr;
            trace.records.push_back(r);
        }
        oracle.retireUpTo(di.seq);
    }
    return trace;
}

TraceDrivenEvaluator::TraceDrivenEvaluator(bpu::ComposedPredictor pred,
                                           unsigned ghist_bits,
                                           unsigned lhist_bits)
    : pred_(std::move(pred)), ghist_(ghist_bits),
      lhistBits_(lhist_bits), lhist_(256, 0)
{
}

void
TraceDrivenEvaluator::step(Addr pc, unsigned slot_idx, bool taken,
                           Addr target, bool measured, TraceResult& res)
{
    const unsigned numComps =
        static_cast<unsigned>(pred_.components().size());
    const std::size_t lidx = (pc >> 4) % lhist_.size();

    // Idealized predict: perfect, instantly-updated histories.
    bpu::QueryState q;
    q.reset(pc, pred_.width(), numComps, pred_.width());
    q.captureHistory(ghist_, lhist_[lidx]);
    bpu::PredictionBundle bundle;
    for (unsigned d = 1; d <= pred_.maxLatency(); ++d)
        bundle = pred_.evaluateStage(q, d);

    const auto& slot = bundle.slots[slot_idx];
    const bool pred = slot.valid && slot.taken;
    if (measured) {
        ++res.branches;
        res.mispredicts += pred != taken;
    }

    // Immediate, in-order update — no speculation, no delay.
    bpu::ResolveEvent ev;
    ev.pc = pc;
    ev.ghist = &q.ghist();
    ev.lhist = q.lhist();
    ev.brMask[slot_idx] = true;
    ev.takenMask[slot_idx] = taken;
    ev.cfiValid = taken;
    ev.cfiIdx = slot_idx;
    ev.cfiType = bpu::CfiType::Br;
    ev.cfiTaken = taken;
    ev.target = target;
    ev.mispredicted = pred != taken;
    ev.predicted = &bundle;

    // Fire (speculative components like the loop predictor count
    // at query time, and in a trace model speculation is perfect).
    bpu::FireEvent fev;
    fev.pc = pc;
    fev.finalPred = &bundle;
    fev.ghist = &q.ghist();
    fev.lhist = q.lhist();
    bpu::MetadataBundle metas = q.metadata();
    pred_.fire(fev, metas);
    if (ev.mispredicted) {
        // Immediate resolution: the fast mispredict event fires
        // right away (perfect repair, zero delay).
        pred_.mispredict(ev, metas);
    }
    pred_.update(ev, metas);

    ghist_.push(taken);
    lhist_[lidx] = ((lhist_[lidx] << 1) | (taken ? 1 : 0)) &
                   maskBits(lhistBits_);
}

TraceResult
TraceDrivenEvaluator::evaluate(const BranchTrace& trace,
                               std::size_t warmup)
{
    TraceResult res;
    for (std::size_t n = 0; n < trace.records.size(); ++n) {
        const BranchRecord& r = trace.records[n];
        step(r.pc, r.slot, r.taken, r.target, n >= warmup, res);
    }
    return res;
}

TraceResult
TraceDrivenEvaluator::evaluate(const DecodedTrace& trace,
                               std::size_t warmup)
{
    TraceResult res;
    std::size_t cond = 0;
    for (std::size_t n = 0; n < trace.size(); ++n) {
        if (trace.typeAt(n) != RecordType::Cond)
            continue;
        step(trace.pc[n], trace.slotAt(n), trace.takenAt(n),
             trace.target[n], cond >= warmup, res);
        ++cond;
    }
    return res;
}

} // namespace cobra::trace
