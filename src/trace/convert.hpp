/**
 * @file
 * Importers for the course-trace formats of ROADMAP item 2 into the
 * binary container (trace/format.hpp):
 *
 *  - CBP-style text records (`int_1` / `fp_1` / `mm_1` and friends):
 *    one branch per line, `<pc> <outcome>`, pc in hex (with or
 *    without 0x) and outcome one of 0/1/N/T/n/t. Blank lines and
 *    `#` comments are skipped.
 *  - bzip2'd Alpha traces (the `bunzip2 -kc <trace> | ./predictor`
 *    corpus): the same line records, bzip2-compressed on disk.
 *    Available when the build has libbz2 (bz2Available()).
 *
 * Imported traces are TraceKind::External: they carry no Program
 * fingerprint and drive the idealized TraceDrivenEvaluator (and any
 * future trace-driven frontend), not full-core replay.
 */

#ifndef COBRA_TRACE_CONVERT_HPP
#define COBRA_TRACE_CONVERT_HPP

#include <cstdint>
#include <iosfwd>
#include <string>

#include "trace/format.hpp"

namespace cobra::trace {

/** True when this build can read bzip2'd Alpha traces. */
bool bz2Available();

/** Import statistics returned by the converters. */
struct ImportStats
{
    std::uint64_t lines = 0;   ///< Non-blank, non-comment lines read.
    std::uint64_t records = 0; ///< Records written (== lines).
    std::uint64_t taken = 0;
};

/**
 * Parse one CBP text record line into @p out. Returns false for
 * blank/comment lines; malformed lines raise guard::CheckpointError
 * carrying @p lineno. Slots are derived from the pc and
 * @p fetch_width, matching capture mode.
 */
bool parseCbpLine(const std::string& line, std::uint64_t lineno,
                  unsigned fetch_width, TraceRecord& out);

/**
 * Import a CBP-style text stream into @p writer (caller finalizes).
 */
ImportStats importCbpText(std::istream& in, unsigned fetch_width,
                          TraceWriter& writer);

/**
 * Convert a CBP text file at @p in_path into a binary trace at
 * @p out_path (External kind, named @p name).
 */
ImportStats convertCbpFile(const std::string& in_path,
                           const std::string& out_path,
                           const std::string& name,
                           unsigned fetch_width = 4);

/**
 * Convert a bzip2'd Alpha trace at @p in_path into a binary trace at
 * @p out_path. Raises guard::CheckpointError when the build has no
 * libbz2 or the stream is corrupt.
 */
ImportStats convertAlphaBz2File(const std::string& in_path,
                                const std::string& out_path,
                                const std::string& name,
                                unsigned fetch_width = 4);

} // namespace cobra::trace

#endif // COBRA_TRACE_CONVERT_HPP
