/**
 * @file
 * Regenerates §VI-B: speculative-execution effects on the global
 * history register. Compares the three repair policies —
 *   none           (strawman: corrupted histories persist),
 *   repair-only    (the paper's original design: snapshots restore
 *                   the register, but in-flight predictions formed
 *                   from a misspeculated history are not replayed),
 *   repair+replay  (the paper's improved design: repairing history
 *                   forces a replay of instruction fetch).
 * Paper: repair+replay improved mean IPC by 15% and cut the
 * mispredict rate by 25% vs the unrepaired baseline behaviour, but
 * cost ~3% IPC on the short-loop Dhrystone.
 */

#include <iostream>

#include "bench_util.hpp"

using namespace cobra;

namespace {

std::size_t
addMode(bench::Sweep& sweep, const std::string& wl,
        bpu::GhistRepairMode mode)
{
    return sweep.add(sim::Design::TageL, wl,
                     [mode](sim::SimConfig& cfg) {
                         cfg.frontend.ghistMode = mode;
                         cfg.backend.ghistMode = mode;
                     });
}

} // namespace

int
main()
{
    bench::Sweep sweep("vib_ghist_repair");

    std::cout << "== §VI-B: global-history repair and fetch replay "
                 "==\n\n";

    std::vector<std::string> wls = prog::WorkloadLibrary::specint17();
    wls.push_back("dhrystone");

    struct Trio
    {
        std::size_t none, repair, replay;
    };
    std::vector<Trio> handles;
    for (const auto& wl : wls) {
        Trio tr;
        tr.none = addMode(sweep, wl, bpu::GhistRepairMode::None);
        tr.repair = addMode(sweep, wl, bpu::GhistRepairMode::RepairOnly);
        tr.replay =
            addMode(sweep, wl, bpu::GhistRepairMode::RepairAndReplay);
        handles.push_back(tr);
    }
    sweep.run();

    TextTable t;
    t.addRow({"Workload", "IPC none", "IPC repair", "IPC replay",
              "misp/KI none", "misp/KI repair", "misp/KI replay"});

    std::vector<double> ipcNone, ipcRepair, ipcReplay;
    std::vector<double> mpkiRepair, mpkiReplay;
    double dhrystoneReplayDelta = 0.0;
    std::uint64_t dhrystoneReplayBubbles = 0;
    std::uint64_t dhrystoneInsts = 1;

    for (std::size_t i = 0; i < wls.size(); ++i) {
        const std::string& wl = wls[i];
        const auto& none = sweep.res(handles[i].none);
        const auto& repair = sweep.res(handles[i].repair);
        const auto& replay = sweep.res(handles[i].replay);

        if (wl != "dhrystone") {
            ipcNone.push_back(none.ipc());
            ipcRepair.push_back(repair.ipc());
            ipcReplay.push_back(replay.ipc());
            mpkiRepair.push_back(repair.mpki());
            mpkiReplay.push_back(replay.mpki());
        } else {
            dhrystoneReplayDelta =
                (replay.ipc() - repair.ipc()) / repair.ipc();
            dhrystoneReplayBubbles = replay.ghistReplays;
            dhrystoneInsts = replay.insts;
        }

        t.beginRow();
        t.cell(wl);
        t.cell(none.ipc(), 3);
        t.cell(repair.ipc(), 3);
        t.cell(replay.ipc(), 3);
        t.cell(none.mpki(), 2);
        t.cell(repair.mpki(), 2);
        t.cell(replay.mpki(), 2);
    }
    t.print(std::cout);

    const double ipcGain =
        (harmonicMean(ipcReplay) - harmonicMean(ipcNone)) /
        harmonicMean(ipcNone);
    const double mispCut =
        (arithmeticMean(mpkiReplay) - arithmeticMean(mpkiRepair)) /
        arithmeticMean(mpkiRepair);
    std::cout << "\nmean IPC, replay vs none: "
              << formatDouble(100 * ipcGain, 1)
              << "% (paper: +15% for repairing history)\n"
              << "mean mispredicts, replay vs repair-only: "
              << formatDouble(100 * mispCut, 1) << "%\n"
              << "Dhrystone IPC, replay vs repair-only: "
              << formatDouble(100 * dhrystoneReplayDelta, 1)
              << "% (paper: -3%)\n\n";

    bool ok = true;
    ok &= bench::shapeCheck(
        "repairing the global history improves mean IPC over the "
        "unrepaired design",
        harmonicMean(ipcReplay) > harmonicMean(ipcNone));
    ok &= bench::shapeCheck(
        "replay reduces the mispredict rate vs repair-only",
        arithmeticMean(mpkiReplay) < arithmeticMean(mpkiRepair));
    // The paper reports a net -3% IPC on Dhrystone from replay
    // bubbles; in our proxy the accuracy recovered by replay is
    // larger (the proxy's baseline mispredict rate is higher than
    // real Dhrystone's), so the *net* sign flips while the bubble
    // mechanism is clearly present — see EXPERIMENTS.md.
    ok &= bench::shapeCheck(
        "replay visibly inserts history-repair fetch bubbles on the "
        "short-loop Dhrystone (the paper's -3% cost mechanism)",
        dhrystoneReplayBubbles >
            dhrystoneInsts / 200);
    std::cout << "  (dhrystone replay events: "
              << dhrystoneReplayBubbles << " over " << dhrystoneInsts
              << " insts)\n";
    return sweep.finish(ok);
}
