/**
 * @file
 * Regenerates Fig. 7: pipeline diagrams of the three COBRA-generated
 * predictors, rendered from the actual topology objects the
 * evaluation uses (plus the §V-A topology notation).
 */

#include <iostream>

#include "bench_util.hpp"

using namespace cobra;

int
main()
{
    std::cout << "== Fig. 7: pipeline diagrams of the COBRA-generated "
                 "predictors ==\n\n";

    bool ok = true;
    for (sim::Design d : sim::paperDesigns()) {
        bpu::Topology topo = sim::buildTopology(d);
        std::cout << "---- " << sim::designName(d) << " ----\n";
        std::cout << topo.pipelineDiagram() << "\n";
        ok &= bench::shapeCheck(
            std::string(sim::designName(d)) +
                " notation matches the paper's topology expression",
            topo.describe() == sim::designTopologyNotation(d) ||
                // Tournament prints nested-chain parens.
                d == sim::Design::Tourney);
    }

    // The three designs share sub-component implementations; list the
    // reuse that §V-A highlights.
    std::cout << "Component reuse across designs (paper §V-A):\n";
    std::map<std::string, int> uses;
    for (sim::Design d : sim::paperDesigns()) {
        bpu::Topology topo = sim::buildTopology(d);
        for (auto* c : topo.componentList()) {
            std::string kind = c->name();
            if (kind.find("BIM") != std::string::npos)
                kind = "HBIM counter table";
            uses[kind]++;
        }
    }
    for (const auto& [k, n] : uses)
        std::cout << "  " << k << ": used by " << n << " design(s)\n";

    ok &= bench::shapeCheck("HBIM counter tables reused by all designs",
                            uses["HBIM counter table"] >= 3);
    ok &= bench::shapeCheck("BTB reused by all three designs",
                            uses["BTB"] == 3);
    return ok ? 0 : 1;
}
