/**
 * @file
 * Wavefront batch-evaluation harness (PR 10 gate). The search tiers'
 * functional metric is a §II-B trace walk per candidate;
 * trace::BatchTraceEvaluator streams the shared trace once across
 * all candidate lanes. Three checks:
 *
 *  1. Bit identity: every lane's TraceResult must equal a solo
 *     serial TraceDrivenEvaluator run of the same design — the
 *     batch is only admissible as a search tier if it is a perfect
 *     stand-in (tests/test_batch_eval.cpp covers the full matrix;
 *     this re-checks at bench scale).
 *
 *  2. Single-worker ratio: batched kilo-branch-evals/s vs the serial
 *     per-candidate walk, measured in the same run on one worker.
 *     The per-lane table work is identical on both sides, so this
 *     ratio isolates the batch scheduling overhead (plus the small
 *     fused-sweep/shared-decode win) from host speed — the gate is
 *     host-independent and asserts batching is never a tax.
 *
 *  3. Pool scaling: the same candidate set batched on the SweepEngine
 *     pool at jobs = min(hardware, 16). Lanes are embarrassingly
 *     parallel, so this is where the wall-clock win lives; the >= 3x
 *     ISSUE target is gated where >= 16 hardware threads exist and
 *     reduced/SKIPped on smaller hosts (same policy as
 *     bench_host_throughput's parallel-scaling leg — a pool speedup
 *     measured without real cores is noise, not signal).
 *
 * JSON side-cars (for tools/check_perf_regression.py, unchanged;
 * "kilocycles_per_sec" carries kilo-branch-evals/s here):
 *   bench_results/bench_batch_eval.json    batched points + speedups
 *   bench_results/BASELINE_batch_eval.json serial points (the
 *                                          same-run denominator)
 *
 * Gate: python3 tools/check_perf_regression.py \
 *         --fresh bench_results/bench_batch_eval.json \
 *         --baseline bench_results/BASELINE_batch_eval.json \
 *         --committed <committed bench_batch_eval.json>
 *
 * Override the repetition count with COBRA_THROUGHPUT_REPS.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "search/space.hpp"
#include "sim/presets.hpp"
#include "sim/sweep.hpp"
#include "trace/batch_eval.hpp"
#include "trace/trace.hpp"

using namespace cobra;

namespace {

struct Point
{
    const char* wl;
    unsigned lanes;
};

/** The tier-0 shape: one shared trace, many candidate designs. */
constexpr Point kPoints[] = {
    {"mcf", 16},
    {"leela", 16},
    {"mcf", 8},
};
constexpr unsigned kMaxLanes = 16;

/**
 * The candidate set the search driver would evaluate: the four
 * paper-preset anchors plus seeded SearchSpace samples — fixed seed,
 * so every run (and every host) measures the same designs.
 */
std::vector<sim::DesignSpec>
makeLaneSpecs()
{
    std::vector<sim::DesignSpec> specs;
    for (sim::Design d : {sim::Design::Tourney, sim::Design::B2,
                          sim::Design::TageL, sim::Design::RefBig})
        specs.push_back(sim::presetSpec(d));
    search::SearchSpace space(0xC0B7A);
    while (specs.size() < kMaxLanes)
        specs.push_back(space.sample());
    return specs;
}

std::vector<trace::TraceResult>
serialRun(const trace::BranchTrace& tr, std::size_t warmup,
          const std::vector<sim::DesignSpec>& specs, unsigned lanes)
{
    // Exactly the pre-batching search tier: a fresh generic
    // evaluator per candidate, one full trace walk each.
    std::vector<trace::TraceResult> res;
    for (unsigned k = 0; k < lanes; ++k) {
        const sim::DesignSpec& spec = specs[k];
        bpu::ComposedPredictor pred(sim::buildTopology(spec),
                                    spec.fetchWidth);
        trace::TraceDrivenEvaluator ev(std::move(pred),
                                       spec.bpu.ghistBits,
                                       spec.bpu.lhistBits);
        res.push_back(ev.evaluate(tr, warmup));
    }
    return res;
}

std::vector<trace::BatchLaneResult>
batchRun(const trace::BranchTrace& tr, std::size_t warmup,
         const std::vector<sim::DesignSpec>& specs, unsigned lanes,
         unsigned jobs)
{
    trace::BatchTraceEvaluator be(jobs);
    for (unsigned k = 0; k < lanes; ++k) {
        const sim::DesignSpec* spec = &specs[k];
        trace::BatchLane lane;
        lane.label = spec->name;
        lane.predictor = [spec] {
            return bpu::ComposedPredictor(sim::buildTopology(*spec),
                                          spec->fetchWidth);
        };
        lane.ghistBits = spec->bpu.ghistBits;
        lane.lhistBits = spec->bpu.lhistBits;
        be.addLane(std::move(lane));
    }
    return be.evaluate(tr, warmup);
}

} // namespace

int
main()
{
    bool ok = true;
    prog::WorkloadCache cache;

    const bool fast = [] {
        const char* f = std::getenv("COBRA_FAST");
        return f != nullptr && f[0] == '1';
    }();
    const std::size_t branches = fast ? 20'000 : 60'000;
    const std::size_t warmup = fast ? 5'000 : 15'000;
    unsigned reps = 3;
    if (const char* env = std::getenv("COBRA_THROUGHPUT_REPS"))
        reps = std::max(1u, static_cast<unsigned>(std::atoi(env)));

    const std::vector<sim::DesignSpec> specs = makeLaneSpecs();

    std::cout << "batched vs serial functional evaluation (one "
                 "worker, best of "
              << reps << ", " << branches << " branches, warmup "
              << warmup << ")\n\n";

    TextTable t;
    t.addRow({"point", "batched kbe/s", "serial kbe/s", "speedup"});
    double logSum = 0.0;
    bool identical = true;
    std::size_t specializedLanes = 0;
    std::ostringstream pointsJson;
    std::ostringstream baselineJson;
    for (std::size_t pi = 0; pi < std::size(kPoints); ++pi) {
        const Point& p = kPoints[pi];
        const trace::BranchTrace tr =
            trace::recordTrace(cache.get(p.wl), branches);

        double serialWall = 1e300;
        double batchWall = 1e300;
        std::vector<trace::TraceResult> sres;
        std::vector<trace::BatchLaneResult> bres;
        for (unsigned r = 0; r < reps; ++r) {
            auto t0 = std::chrono::steady_clock::now();
            sres = serialRun(tr, warmup, specs, p.lanes);
            auto t1 = std::chrono::steady_clock::now();
            serialWall = std::min(
                serialWall,
                std::chrono::duration<double>(t1 - t0).count());

            t0 = std::chrono::steady_clock::now();
            bres = batchRun(tr, warmup, specs, p.lanes, 1);
            t1 = std::chrono::steady_clock::now();
            batchWall = std::min(
                batchWall,
                std::chrono::duration<double>(t1 - t0).count());
        }

        for (unsigned k = 0; k < p.lanes; ++k) {
            if (!bres[k].ok()) {
                std::cerr << "lane " << bres[k].label
                          << " failed: " << bres[k].error << "\n";
                return 1;
            }
            identical &= bres[k].result.branches == sres[k].branches &&
                         bres[k].result.mispredicts ==
                             sres[k].mispredicts;
            if (pi == 0)
                specializedLanes += bres[k].loop == "specialized";
        }

        const double evals =
            static_cast<double>(p.lanes) *
            static_cast<double>(tr.size()) / 1000.0;
        const double serialRate = evals / serialWall;
        const double batchRate = evals / batchWall;
        const double speedup = serialWall / batchWall;
        logSum += std::log(speedup);

        const std::string label =
            std::string(p.wl) + "/lanes" + std::to_string(p.lanes);
        t.addRow({label, formatDouble(batchRate, 1),
                  formatDouble(serialRate, 1),
                  formatDouble(speedup, 2) + "x"});
        if (pi != 0) {
            pointsJson << ",\n";
            baselineJson << ",\n";
        }
        pointsJson << "    { \"label\": \"" << sim::jsonEscape(label)
                   << "\", \"lanes\": " << p.lanes
                   << ", \"kilocycles_per_sec\": " << batchRate
                   << ", \"baseline_kilocycles_per_sec\": "
                   << serialRate << ", \"speedup\": " << speedup
                   << " }";
        baselineJson << "    { \"label\": \"" << sim::jsonEscape(label)
                     << "\", \"kilocycles_per_sec\": " << serialRate
                     << " }";
    }
    t.print(std::cout);

    const double geomean = std::exp(
        logSum / static_cast<double>(std::size(kPoints)));
    std::cout << "\nbatched geomean vs serial (one worker): "
              << formatDouble(geomean, 2) << "x\n"
              << "specialized lanes: " << specializedLanes << "/"
              << kMaxLanes << "\n\n";

    ok &= bench::shapeCheck(
        "batched results bit-identical to serial on every lane",
        identical);
    ok &= bench::shapeCheck(
        "some lanes take the devirtualized fast path",
        specializedLanes > 0);
    // The per-lane table work is identical on both sides, so a
    // single worker can only win the scheduling margin (fused sweep,
    // shared block decode). The gate asserts batching never *costs*
    // throughput; the wall-clock win is the pool leg below.
    ok &= bench::shapeCheck(
        "one-worker batched geomean >= 0.9x serial (never a tax)",
        geomean >= 0.9);

    // ---- Pool scaling --------------------------------------------------
    const unsigned hw = std::thread::hardware_concurrency();
    const unsigned poolJobs = std::min(hw == 0 ? 1u : hw, 16u);
    double poolSpeedup = 0.0;
    if (hw < 2) {
        std::cout << "\n  [SHAPE SKIP] pool scaling: host reports "
                  << hw << " hardware thread(s); the lanes are "
                  << "independent, but a pool speedup measured "
                  << "without real cores is noise\n";
    } else {
        const trace::BranchTrace tr =
            trace::recordTrace(cache.get("mcf"), branches);
        double serialWall = 1e300;
        double poolWall = 1e300;
        for (unsigned r = 0; r < reps; ++r) {
            auto t0 = std::chrono::steady_clock::now();
            serialRun(tr, warmup, specs, kMaxLanes);
            auto t1 = std::chrono::steady_clock::now();
            serialWall = std::min(
                serialWall,
                std::chrono::duration<double>(t1 - t0).count());

            t0 = std::chrono::steady_clock::now();
            const auto outs =
                batchRun(tr, warmup, specs, kMaxLanes, poolJobs);
            t1 = std::chrono::steady_clock::now();
            poolWall = std::min(
                poolWall,
                std::chrono::duration<double>(t1 - t0).count());
            for (const auto& o : outs)
                identical &= o.ok();
        }
        poolSpeedup = serialWall / poolWall;
        std::cout << "\n16-lane batch: serial "
                  << formatDouble(serialWall, 2) << " s, jobs="
                  << poolJobs << " " << formatDouble(poolWall, 2)
                  << " s, speedup " << formatDouble(poolSpeedup, 2)
                  << "x\n";
        // The full >= 3x ISSUE target applies where a >= 16-worker
        // pool exists; smaller real-core hosts gate a scaled-down
        // floor.
        const double target = hw >= 16 ? 3.0 : hw >= 4 ? 2.0 : 1.2;
        ok &= bench::shapeCheck(
            "16-lane pool speedup >= " + formatDouble(target, 1) +
                "x at jobs=" + std::to_string(poolJobs),
            poolSpeedup >= target);
    }

    // ---- JSON report ---------------------------------------------------
    try {
        std::filesystem::create_directories("bench_results");
        std::ofstream j("bench_results/bench_batch_eval.json");
        j << "{\n  \"bench\": \"batch_eval\",\n"
          << "  \"note\": \"kilocycles_per_sec carries kilo-branch-"
          << "evals/s (lanes x trace records / wall), one worker; "
          << "pool_speedup is the jobs=" << poolJobs
          << " wall-clock ratio (0 when the host has no real "
          << "cores)\",\n"
          << "  \"shape_ok\": " << (ok ? "true" : "false") << ",\n"
          << "  \"reps\": " << reps << ",\n"
          << "  \"trace_branches\": " << branches << ",\n"
          << "  \"trace_warmup\": " << warmup << ",\n"
          << "  \"hardware_threads\": " << hw << ",\n"
          << "  \"pool_jobs\": " << poolJobs << ",\n"
          << "  \"pool_speedup\": " << poolSpeedup << ",\n"
          << "  \"specialized_lanes\": " << specializedLanes << ",\n"
          << "  \"geomean_speedup\": " << geomean << ",\n"
          << "  \"points\": [\n"
          << pointsJson.str() << "\n  ]\n}\n";
        std::ofstream b("bench_results/BASELINE_batch_eval.json");
        b << "{\n  \"bench\": \"batch_eval_baseline\",\n"
          << "  \"note\": \"serial per-candidate kilo-branch-evals/s "
          << "from the same run as bench_batch_eval.json; the "
          << "denominator check_perf_regression.py divides by\",\n"
          << "  \"points\": [\n"
          << baselineJson.str() << "\n  ]\n}\n";
    } catch (const std::exception& e) {
        std::cerr << "[bench] JSON emit failed: " << e.what() << "\n";
    }

    return ok ? 0 : 1;
}
