/**
 * @file
 * Regenerates §VI-A: pipelining the TAGE final decision from 2 to 3
 * cycles (the physical-design fix for the arbitration critical path)
 * must leave prediction accuracy unchanged and cost only ~1% IPC,
 * because not all branches are hard and decode backpressure hides
 * temporary fetch stalls. Thanks to the COBRA interface, changing the
 * component latency requires no change to the topology.
 */

#include <iostream>

#include "bench_util.hpp"
#include "components/bim.hpp"
#include "components/btb.hpp"
#include "components/loop.hpp"
#include "components/tage.hpp"

using namespace cobra;
using namespace cobra::comps;

namespace {

/** TAGE-L with a configurable final-decision latency (2 or 3). */
bpu::Topology
tageLWithLatency(unsigned latency)
{
    bpu::Topology topo;
    LoopParams lp;
    lp.entries = 256;
    lp.latency = latency;
    lp.fetchWidth = 4;
    auto* loop = topo.make<LoopPredictor>("LOOP", lp);

    TageParams tp = TageParams::tageL(4);
    tp.latency = latency;
    for (auto& t : tp.tables)
        t.sets = 1024;
    auto* tage = topo.make<Tage>("TAGE", tp);

    BtbParams bp;
    bp.sets = 256;
    bp.ways = 2;
    bp.latency = 2;
    bp.fetchWidth = 4;
    auto* btb = topo.make<Btb>("BTB", bp);

    HbimParams ip;
    ip.sets = 4096;
    ip.mode = IndexMode::Pc;
    ip.latency = 2;
    ip.fetchWidth = 4;
    auto* bim = topo.make<Hbim>("BIM", ip);

    MicroBtbParams up;
    up.entries = 32;
    up.fetchWidth = 4;
    auto* ubtb = topo.make<MicroBtb>("uBTB", up);

    topo.setRoot(topo.chainOf({loop, tage, btb, bim, ubtb}));
    topo.validate();
    return topo;
}

} // namespace

int
main()
{
    bench::Sweep sweep("via_tage_latency");

    std::cout << "== §VI-A: TAGE final-decision latency 2 vs 3 cycles "
                 "==\n\n";
    std::cout << "topology (2-cycle): " << tageLWithLatency(2).describe()
              << "\n";
    std::cout << "topology (3-cycle): " << tageLWithLatency(3).describe()
              << "\n\n";

    const std::vector<std::string> wls =
        prog::WorkloadLibrary::specint17();
    std::vector<std::pair<std::size_t, std::size_t>> handles;
    for (const auto& wl : wls) {
        const std::size_t fast =
            sweep.add("tage-lat2/" + wl, wl,
                      [] { return tageLWithLatency(2); },
                      sim::Design::TageL);
        const std::size_t slow =
            sweep.add("tage-lat3/" + wl, wl,
                      [] { return tageLWithLatency(3); },
                      sim::Design::TageL);
        handles.emplace_back(fast, slow);
    }
    sweep.run();

    TextTable t;
    t.addRow({"Workload", "IPC@2cyc", "IPC@3cyc", "IPC delta",
              "acc@2cyc", "acc@3cyc"});

    std::vector<double> ipcDeltas;
    std::vector<double> accDeltas;
    for (std::size_t i = 0; i < wls.size(); ++i) {
        const std::string& wl = wls[i];
        const auto& rf = sweep.res(handles[i].first);
        const auto& rs = sweep.res(handles[i].second);

        const double dIpc = (rs.ipc() - rf.ipc()) / rf.ipc();
        ipcDeltas.push_back(dIpc);
        accDeltas.push_back(rs.accuracy() - rf.accuracy());

        t.beginRow();
        t.cell(wl);
        t.cell(rf.ipc(), 3);
        t.cell(rs.ipc(), 3);
        t.cell(formatDouble(100 * dIpc, 2) + "%");
        t.cell(rf.accuracy(), 4);
        t.cell(rs.accuracy(), 4);
    }
    t.print(std::cout);

    const double meanIpcDelta = arithmeticMean(ipcDeltas);
    const double meanAccDelta = arithmeticMean(accDeltas);
    std::cout << "\nmean IPC delta: "
              << formatDouble(100 * meanIpcDelta, 2)
              << "%  (paper: ~ -1%)\n"
              << "mean accuracy delta: "
              << formatDouble(100 * meanAccDelta, 3)
              << " pp (paper: no impact)\n\n";

    bool ok = true;
    ok &= bench::shapeCheck(
        "delaying the TAGE response has no accuracy impact (|d| < "
        "0.5 pp)",
        std::abs(meanAccDelta) < 0.005);
    ok &= bench::shapeCheck(
        "IPC degradation is minimal (between -5% and +1%)",
        meanIpcDelta > -0.05 && meanIpcDelta < 0.01);
    return sweep.finish(ok);
}
