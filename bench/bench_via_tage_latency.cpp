/**
 * @file
 * Regenerates §VI-A: pipelining the TAGE final decision from 2 to 3
 * cycles (the physical-design fix for the arbitration critical path)
 * must leave prediction accuracy unchanged and cost only ~1% IPC,
 * because not all branches are hard and decode backpressure hides
 * temporary fetch stalls. Thanks to the COBRA interface, changing the
 * component latency requires no change to the topology.
 */

#include <iostream>

#include "bench_util.hpp"
#include "components/bim.hpp"
#include "components/btb.hpp"
#include "components/loop.hpp"
#include "components/tage.hpp"

using namespace cobra;
using namespace cobra::comps;

namespace {

/** TAGE-L with a configurable final-decision latency (2 or 3). */
bpu::Topology
tageLWithLatency(unsigned latency)
{
    bpu::Topology topo;
    LoopParams lp;
    lp.entries = 256;
    lp.latency = latency;
    lp.fetchWidth = 4;
    auto* loop = topo.make<LoopPredictor>("LOOP", lp);

    TageParams tp = TageParams::tageL(4);
    tp.latency = latency;
    for (auto& t : tp.tables)
        t.sets = 1024;
    auto* tage = topo.make<Tage>("TAGE", tp);

    BtbParams bp;
    bp.sets = 256;
    bp.ways = 2;
    bp.latency = 2;
    bp.fetchWidth = 4;
    auto* btb = topo.make<Btb>("BTB", bp);

    HbimParams ip;
    ip.sets = 4096;
    ip.mode = IndexMode::Pc;
    ip.latency = 2;
    ip.fetchWidth = 4;
    auto* bim = topo.make<Hbim>("BIM", ip);

    MicroBtbParams up;
    up.entries = 32;
    up.fetchWidth = 4;
    auto* ubtb = topo.make<MicroBtb>("uBTB", up);

    topo.setRoot(topo.chainOf({loop, tage, btb, bim, ubtb}));
    topo.validate();
    return topo;
}

} // namespace

int
main()
{
    const bench::RunScale scale = bench::RunScale::fromEnv();
    bench::WorkloadCache cache;

    std::cout << "== §VI-A: TAGE final-decision latency 2 vs 3 cycles "
                 "==\n\n";
    std::cout << "topology (2-cycle): " << tageLWithLatency(2).describe()
              << "\n";
    std::cout << "topology (3-cycle): " << tageLWithLatency(3).describe()
              << "\n\n";

    TextTable t;
    t.addRow({"Workload", "IPC@2cyc", "IPC@3cyc", "IPC delta",
              "acc@2cyc", "acc@3cyc"});

    std::vector<double> ipcDeltas;
    std::vector<double> accDeltas;
    for (const auto& wl : prog::WorkloadLibrary::specint17()) {
        const prog::Program& p = cache.get(wl);
        sim::SimConfig cfg = sim::makeConfig(sim::Design::TageL);
        cfg.warmupInsts = scale.warmup;
        cfg.maxInsts = scale.measure;

        sim::Simulator fast(p, tageLWithLatency(2), cfg);
        const auto rf = fast.run();
        sim::Simulator slow(p, tageLWithLatency(3), cfg);
        const auto rs = slow.run();

        const double dIpc = (rs.ipc() - rf.ipc()) / rf.ipc();
        ipcDeltas.push_back(dIpc);
        accDeltas.push_back(rs.accuracy() - rf.accuracy());

        t.beginRow();
        t.cell(wl);
        t.cell(rf.ipc(), 3);
        t.cell(rs.ipc(), 3);
        t.cell(formatDouble(100 * dIpc, 2) + "%");
        t.cell(rf.accuracy(), 4);
        t.cell(rs.accuracy(), 4);
    }
    t.print(std::cout);

    const double meanIpcDelta = arithmeticMean(ipcDeltas);
    const double meanAccDelta = arithmeticMean(accDeltas);
    std::cout << "\nmean IPC delta: "
              << formatDouble(100 * meanIpcDelta, 2)
              << "%  (paper: ~ -1%)\n"
              << "mean accuracy delta: "
              << formatDouble(100 * meanAccDelta, 3)
              << " pp (paper: no impact)\n\n";

    bool ok = true;
    ok &= bench::shapeCheck(
        "delaying the TAGE response has no accuracy impact (|d| < "
        "0.5 pp)",
        std::abs(meanAccDelta) < 0.005);
    ok &= bench::shapeCheck(
        "IPC degradation is minimal (between -5% and +1%)",
        meanIpcDelta > -0.05 && meanIpcDelta < 0.01);
    return ok ? 0 : 1;
}
