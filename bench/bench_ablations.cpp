/**
 * @file
 * Design-space ablations called out in DESIGN.md:
 *  (a) §IV-A1 — the three reasonable loop-predictor integration
 *      topologies for a tournament design, expressed and evaluated
 *      through the composer;
 *  (b) history-file capacity — the management-structure backpressure
 *      the paper's generated structures must absorb (§IV-B1);
 *  (c) uBTB presence — the value of a 1-cycle next-line component in
 *      hiding taken-branch fetch bubbles (§II, predictor delay).
 */

#include <iostream>

#include "bench_util.hpp"
#include "components/bim.hpp"
#include "components/btb.hpp"
#include "components/loop.hpp"
#include "components/stat_corrector.hpp"
#include "components/tage.hpp"
#include "components/tourney.hpp"

using namespace cobra;
using namespace cobra::comps;

namespace {

enum class LoopPlacement { OnGlobal, OnLocal, OnTop };

bpu::Topology
tourneyWithLoop(LoopPlacement place)
{
    bpu::Topology topo;
    HbimParams gp;
    gp.sets = 4096;
    gp.mode = IndexMode::GshareHash;
    gp.histBits = 12;
    gp.latency = 2;
    gp.fetchWidth = 4;
    auto* gbim = topo.make<Hbim>("GBIM", gp);

    HbimParams lp;
    lp.sets = 1024;
    lp.mode = IndexMode::LshareHash;
    lp.histBits = 10;
    lp.latency = 2;
    lp.fetchWidth = 4;
    auto* lbim = topo.make<Hbim>("LBIM", lp);

    TourneyParams tp;
    tp.sets = 1024;
    tp.histBits = 10;
    tp.latency = 3;
    tp.fetchWidth = 4;
    auto* tourney = topo.make<Tourney>("TOURNEY", tp);

    LoopParams loopP;
    loopP.entries = 128;
    loopP.latency = place == LoopPlacement::OnTop ? 3u : 2u;
    loopP.fetchWidth = 4;
    auto* loop = topo.make<LoopPredictor>("LOOP", loopP);

    switch (place) {
      case LoopPlacement::OnGlobal:
        topo.setRoot(topo.arb(
            tourney, {topo.chain({topo.leaf(loop), topo.leaf(gbim)}),
                      topo.leaf(lbim)}));
        break;
      case LoopPlacement::OnLocal:
        topo.setRoot(topo.arb(
            tourney, {topo.leaf(gbim),
                      topo.chain({topo.leaf(loop), topo.leaf(lbim)})}));
        break;
      case LoopPlacement::OnTop:
        topo.setRoot(topo.chain(
            {topo.leaf(loop),
             topo.arb(tourney, {topo.leaf(gbim), topo.leaf(lbim)})}));
        break;
    }
    topo.validate();
    return topo;
}

bpu::Topology
tageLNoUbtb()
{
    bpu::Topology topo;
    LoopParams lp;
    lp.entries = 256;
    lp.latency = 3;
    lp.fetchWidth = 4;
    auto* loop = topo.make<LoopPredictor>("LOOP", lp);
    TageParams tp = TageParams::tageL(4);
    for (auto& t : tp.tables)
        t.sets = 1024;
    auto* tage = topo.make<Tage>("TAGE", tp);
    BtbParams bp;
    bp.sets = 256;
    bp.ways = 2;
    bp.latency = 2;
    bp.fetchWidth = 4;
    auto* btb = topo.make<Btb>("BTB", bp);
    HbimParams ip;
    ip.sets = 4096;
    ip.mode = IndexMode::Pc;
    ip.latency = 2;
    ip.fetchWidth = 4;
    auto* bim = topo.make<Hbim>("BIM", ip);
    topo.setRoot(topo.chainOf({loop, tage, btb, bim}));
    topo.validate();
    return topo;
}

} // namespace

int
main()
{
    bench::Sweep sweep("ablations");
    bool ok = true;

    // Queue every section's points up front so one parallel run
    // covers the whole harness; handles are read back per section.
    const LoopPlacement places[] = {LoopPlacement::OnGlobal,
                                    LoopPlacement::OnLocal,
                                    LoopPlacement::OnTop};
    const std::vector<std::string> wlsA = {"x264", "exchange2"};
    std::vector<std::vector<std::size_t>> hA;
    for (LoopPlacement place : places) {
        std::vector<std::size_t> row;
        for (const std::string& wl : wlsA)
            row.push_back(sweep.add(
                "loop-placement/" + wl, wl,
                [place] { return tourneyWithLoop(place); },
                sim::Design::Tourney));
        hA.push_back(row);
    }

    const unsigned hfEntries[] = {8u, 16u, 32u, 64u, 128u};
    const std::vector<std::string> wlsB = {"gcc", "x264"};
    std::vector<std::vector<std::size_t>> hB;
    for (unsigned entries : hfEntries) {
        std::vector<std::size_t> row;
        for (const std::string& wl : wlsB)
            row.push_back(sweep.add(
                sim::Design::TageL, wl,
                [entries](sim::SimConfig& cfg) {
                    cfg.bpu.historyFileEntries = entries;
                }));
        hB.push_back(row);
    }

    const std::vector<std::string> wlsC = {"dhrystone", "x264",
                                           "xalancbmk"};
    std::vector<std::pair<std::size_t, std::size_t>> hC;
    for (const std::string& wl : wlsC) {
        const std::size_t with = sweep.add(sim::Design::TageL, wl);
        const std::size_t without =
            sweep.add("no-ubtb/" + wl, wl, [] { return tageLNoUbtb(); },
                      sim::Design::TageL);
        hC.emplace_back(with, without);
    }

    auto tageScL = [] {
            bpu::Topology topo;
            StatCorrectorParams scp;
            scp.sets = 512;
            scp.latency = 3;
            scp.fetchWidth = 4;
            auto* sc = topo.make<StatCorrector>("SC", scp);
            LoopParams lp;
            lp.entries = 256;
            lp.latency = 3;
            lp.fetchWidth = 4;
            auto* loop = topo.make<LoopPredictor>("LOOP", lp);
            TageParams tp = TageParams::tageL(4);
            for (auto& t : tp.tables)
                t.sets = 1024;
            auto* tage = topo.make<Tage>("TAGE", tp);
            BtbParams bp;
            bp.sets = 256;
            bp.ways = 2;
            bp.latency = 2;
            bp.fetchWidth = 4;
            auto* btb = topo.make<Btb>("BTB", bp);
            HbimParams ip;
            ip.sets = 4096;
            ip.mode = IndexMode::Pc;
            ip.latency = 2;
            ip.fetchWidth = 4;
            auto* bim = topo.make<Hbim>("BIM", ip);
            MicroBtbParams up;
            up.entries = 32;
            up.fetchWidth = 4;
            auto* ubtb = topo.make<MicroBtb>("uBTB", up);
            // SC3 > LOOP3 > TAGE3 > BTB2 > BIM2 > uBTB1
            topo.setRoot(
                topo.chainOf({sc, loop, tage, btb, bim, ubtb}));
            topo.validate();
            return topo;
        };

    const std::vector<std::string> wlsD = {"mcf", "deepsjeng", "leela",
                                           "coremark"};
    std::vector<std::pair<std::size_t, std::size_t>> hD;
    for (const std::string& wl : wlsD) {
        const std::size_t base = sweep.add(sim::Design::TageL, wl);
        const std::size_t sc = sweep.add("tage-sc-l/" + wl, wl, tageScL,
                                         sim::Design::TageL);
        hD.emplace_back(base, sc);
    }

    std::cerr << "[bench] running ablation grid on " << sweep.jobs()
              << " job(s)\n";
    sweep.run();

    // ---- (a) §IV-A1 loop placement ------------------------------------
    std::cout << "== Ablation (a): loop-predictor placement in a "
                 "tournament design (§IV-A1) ==\n\n";
    {
        TextTable t;
        t.addRow({"Topology", "x264 acc", "exchange2 acc",
                  "x264 IPC", "exchange2 IPC"});
        double bestTopAcc = 0, bestAnyAcc = 0;
        for (std::size_t pi = 0; pi < std::size(places); ++pi) {
            bpu::Topology topoDesc = tourneyWithLoop(places[pi]);
            t.beginRow();
            t.cell(topoDesc.describe());
            double accs[2], ipcs[2];
            for (std::size_t i = 0; i < wlsA.size(); ++i) {
                const auto& r = sweep.res(hA[pi][i]);
                accs[i] = r.accuracy();
                ipcs[i] = r.ipc();
            }
            t.cell(accs[0], 4);
            t.cell(accs[1], 4);
            t.cell(ipcs[0], 3);
            t.cell(ipcs[1], 3);
            const double mean = (accs[0] + accs[1]) / 2;
            bestAnyAcc = std::max(bestAnyAcc, mean);
            if (places[pi] == LoopPlacement::OnTop)
                bestTopAcc = mean;
        }
        t.print(std::cout);
        std::cout << "\n";
        ok &= bench::shapeCheck(
            "correcting the final tournament prediction (LOOP on "
            "top) is competitive with per-side placement",
            bestTopAcc > bestAnyAcc - 0.01);
    }

    // ---- (b) history-file capacity --------------------------------------
    std::cout << "\n== Ablation (b): history-file capacity (§IV-B1) "
                 "==\n\n";
    {
        TextTable t;
        t.addRow({"Entries", "gcc IPC", "x264 IPC"});
        double ipcSmall = 0, ipcBig = 0;
        for (std::size_t ei = 0; ei < std::size(hfEntries); ++ei) {
            t.beginRow();
            t.cell(std::to_string(hfEntries[ei]));
            double vals[2];
            for (std::size_t i = 0; i < wlsB.size(); ++i) {
                const auto& r = sweep.res(hB[ei][i]);
                vals[i] = r.ipc();
                t.cell(r.ipc(), 3);
            }
            if (hfEntries[ei] == 8)
                ipcSmall = vals[1];
            if (hfEntries[ei] == 128)
                ipcBig = vals[1];
        }
        t.print(std::cout);
        std::cout << "\n";
        ok &= bench::shapeCheck(
            "an undersized history file backpressures fetch and "
            "costs IPC",
            ipcSmall < ipcBig * 0.95);
    }

    // ---- (c) uBTB presence ----------------------------------------------
    std::cout << "\n== Ablation (c): 1-cycle uBTB presence ==\n\n";
    {
        TextTable t;
        t.addRow({"Workload", "IPC with uBTB", "IPC without",
                  "delta"});
        double meanDelta = 0;
        int n = 0;
        for (std::size_t i = 0; i < wlsC.size(); ++i) {
            const auto& rw = sweep.res(hC[i].first);
            const auto& ro = sweep.res(hC[i].second);
            const double delta = (rw.ipc() - ro.ipc()) / ro.ipc();
            meanDelta += delta;
            ++n;
            t.beginRow();
            t.cell(wlsC[i]);
            t.cell(rw.ipc(), 3);
            t.cell(ro.ipc(), 3);
            t.cell(formatDouble(100 * delta, 1) + "%");
        }
        t.print(std::cout);
        meanDelta /= n;
        std::cout << "\n";
        ok &= bench::shapeCheck(
            "the 1-cycle uBTB hides taken-branch bubbles (IPC gain)",
            meanDelta > 0.0);
    }

    // ---- (d) statistical corrector (TAGE-SC-L completion) --------------
    std::cout << "\n== Ablation (d): statistical corrector (the paper "
                 "calls TAGE-L 'TAGE-SC-L with no statistical "
                 "corrector') ==\n\n";
    {
        TextTable t;
        t.addRow({"Workload", "TAGE-L acc", "TAGE-SC-L acc",
                  "delta (pp)"});
        double sumDelta = 0;
        int n = 0;
        for (std::size_t i = 0; i < wlsD.size(); ++i) {
            const auto& rb = sweep.res(hD[i].first);
            const auto& rs = sweep.res(hD[i].second);
            const double delta = rs.accuracy() - rb.accuracy();
            sumDelta += delta;
            ++n;
            t.beginRow();
            t.cell(wlsD[i]);
            t.cell(rb.accuracy(), 4);
            t.cell(rs.accuracy(), 4);
            t.cell(formatDouble(100 * delta, 2));
        }
        t.print(std::cout);
        std::cout << "\n";
        ok &= bench::shapeCheck(
            "the statistical corrector does not hurt accuracy on "
            "hard workloads (mean delta > -0.2 pp)",
            sumDelta / n > -0.002);
    }

    return sweep.finish(ok);
}
