/**
 * @file
 * Regenerates Fig. 4 (§IV-A): the two orderings of the same three
 * sub-components, LOOP2 > PHT2 > uBTB1 versus uBTB1 > PHT2 > LOOP2,
 * produce identical Fetch-1 predictions but different Fetch-2
 * behaviour — and measurably different end-to-end results, because
 * the second topology lets stale uBTB hits overrule the PHT.
 */

#include <iostream>

#include "bench_util.hpp"
#include "components/bim.hpp"
#include "components/btb.hpp"
#include "components/loop.hpp"

using namespace cobra;
using namespace cobra::comps;

namespace {

bpu::Topology
makeTopology(bool loopOnTop)
{
    bpu::Topology topo;
    MicroBtbParams up;
    up.entries = 32;
    up.fetchWidth = 4;
    auto* ubtb = topo.make<MicroBtb>("uBTB", up);

    HbimParams hp;
    hp.sets = 2048;
    hp.mode = IndexMode::GshareHash;
    hp.histBits = 10;
    hp.latency = 2;
    hp.fetchWidth = 4;
    auto* pht = topo.make<Hbim>("PHT", hp);

    LoopParams lp;
    lp.entries = 128;
    lp.latency = 2;
    lp.fetchWidth = 4;
    auto* loop = topo.make<LoopPredictor>("LOOP", lp);

    if (loopOnTop)
        topo.setRoot(topo.chainOf({loop, pht, ubtb}));
    else
        topo.setRoot(topo.chainOf({ubtb, pht, loop}));
    topo.validate();
    return topo;
}

} // namespace

int
main()
{
    std::cout << "== Fig. 4: two orderings of {uBTB1, PHT2, LOOP2} ==\n\n";

    for (bool loopOnTop : {true, false}) {
        bpu::Topology t = makeTopology(loopOnTop);
        std::cout << t.pipelineDiagram() << "\n";
    }

    bench::Sweep sweep("fig4_topologies");
    const std::vector<std::string> workloads = {"x264", "exchange2",
                                                "dhrystone"};
    std::vector<std::pair<std::size_t, std::size_t>> handles;
    for (const std::string& wl : workloads) {
        const std::size_t a =
            sweep.add("LOOP>PHT>uBTB/" + wl, wl,
                      [] { return makeTopology(true); },
                      sim::Design::TageL);
        const std::size_t b =
            sweep.add("uBTB>PHT>LOOP/" + wl, wl,
                      [] { return makeTopology(false); },
                      sim::Design::TageL);
        handles.emplace_back(a, b);
    }
    sweep.run();

    TextTable t;
    t.addRow({"Workload", "LOOP>PHT>uBTB acc", "uBTB>PHT>LOOP acc",
              "LOOP>PHT>uBTB IPC", "uBTB>PHT>LOOP IPC"});

    double accA = 0, accB = 0;
    for (std::size_t i = 0; i < workloads.size(); ++i) {
        const auto& ra = sweep.res(handles[i].first);
        const auto& rb = sweep.res(handles[i].second);
        accA += ra.accuracy();
        accB += rb.accuracy();

        t.beginRow();
        t.cell(workloads[i]);
        t.cell(ra.accuracy(), 4);
        t.cell(rb.accuracy(), 4);
        t.cell(ra.ipc(), 3);
        t.cell(rb.ipc(), 3);
    }
    t.print(std::cout);

    std::cout << "\n";
    bool ok = true;
    ok &= bench::shapeCheck(
        "LOOP>PHT>uBTB (later components override) is at least as "
        "accurate as uBTB>PHT>LOOP on loop-heavy code",
        accA >= accB - 0.003);
    return sweep.finish(ok);
}
