/**
 * @file
 * Regenerates §VI-C: decoding short-forwards-branches ("hammocks")
 * into set-flag / conditional-execute micro-ops. Paper: on CoreMark
 * with the TAGE-L predictor, the optimization improved 4.9 -> 6.1
 * CoreMarks/MHz (i.e., IPC) and 97% -> 99.1% branch prediction
 * accuracy, through two effects — converted branches stop
 * mispredicting, and predictor capacity is freed for other branches.
 */

#include <iostream>

#include "bench_util.hpp"

using namespace cobra;

int
main()
{
    bench::Sweep sweep("vic_sfb");

    std::cout << "== §VI-C: short-forwards-branch predication ==\n\n";

    const std::vector<std::string> workloads = {"coremark",
                                                "dhrystone"};
    const std::vector<sim::Design> designs = sim::paperDesigns();
    struct Pair
    {
        std::size_t off, on;
    };
    std::vector<Pair> handles;
    for (const std::string& wl : workloads) {
        for (sim::Design d : designs) {
            Pair pr;
            pr.off = sweep.add(d, wl);
            pr.on = sweep.add(d, wl, [](sim::SimConfig& cfg) {
                cfg.backend.sfbEnabled = true;
            });
            handles.push_back(pr);
        }
    }
    sweep.run();

    TextTable t;
    t.addRow({"Workload", "Design", "IPC off", "IPC on", "acc off",
              "acc on", "SFB conversions"});

    double coremarkAccOff = 0, coremarkAccOn = 0;
    double coremarkIpcOff = 0, coremarkIpcOn = 0;
    int designsImprovedAcc = 0;

    std::size_t pi = 0;
    for (const std::string& wl : workloads) {
        for (sim::Design d : designs) {
            const auto& off = sweep.res(handles[pi].off);
            const auto& on = sweep.res(handles[pi].on);
            ++pi;
            if (wl == "coremark") {
                if (on.accuracy() > off.accuracy())
                    ++designsImprovedAcc;
                if (d == sim::Design::TageL) {
                    coremarkAccOff = off.accuracy();
                    coremarkAccOn = on.accuracy();
                    coremarkIpcOff = off.ipc();
                    coremarkIpcOn = on.ipc();
                }
            }
            t.beginRow();
            t.cell(wl);
            t.cell(sim::designName(d));
            t.cell(off.ipc(), 3);
            t.cell(on.ipc(), 3);
            t.cell(off.accuracy(), 4);
            t.cell(on.accuracy(), 4);
            t.cell(on.sfbConversions);
        }
    }
    t.print(std::cout);

    std::cout << "\nCoreMark proxy with TAGE-L: IPC "
              << formatDouble(coremarkIpcOff, 3) << " -> "
              << formatDouble(coremarkIpcOn, 3) << " ("
              << formatDouble(
                     100 * (coremarkIpcOn / coremarkIpcOff - 1), 1)
              << "%), accuracy "
              << formatDouble(100 * coremarkAccOff, 1) << "% -> "
              << formatDouble(100 * coremarkAccOn, 1) << "%\n"
              << "Paper: 4.9 -> 6.1 CoreMarks/MHz (+24%), accuracy "
                 "97% -> 99.1%\n\n";

    bool ok = true;
    ok &= bench::shapeCheck(
        "SFB improves the accuracy of all three predictor designs "
        "on hammock-heavy code (paper §VI-C)",
        designsImprovedAcc == 3);
    ok &= bench::shapeCheck(
        "SFB improves CoreMark-proxy IPC with TAGE-L",
        coremarkIpcOn > coremarkIpcOff);
    ok &= bench::shapeCheck(
        "the accuracy gain is substantial (> 2 pp)",
        coremarkAccOn - coremarkAccOff > 0.02);
    return sweep.finish(ok);
}
